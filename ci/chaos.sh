#!/usr/bin/env bash
# Chaos-recovery gate: run the celegans assembly as a checkpointed 4-process
# job and kill rank 2 mid-Alignment with a deterministic injected fault
# (ELBA_FAULT). The proc supervisor must classify the death, relaunch the
# worker group from the last committed checkpoint, and finish. benchguard
# then requires the recovered run's manifest to match the given baseline (an
# undisturbed in-process run of the same assembly) exactly — contig checksum
# and traffic totals bit-identical, recovery invisible in the output — and
# the manifest to record exactly one supervised restart, proving the fault
# actually fired and was actually recovered from.
#
# Usage: ci/chaos.sh <baseline-manifest.json> [manifest-out]
set -euo pipefail

BASELINE="${1:?usage: ci/chaos.sh <baseline-manifest.json> [manifest-out]}"
OUT="${2:-RUN_chaos.json}"
SIZE="${SIZE:-150000}"
NP=4

SCRATCH="$(mktemp -d)"
ELBA="$SCRATCH/elba"
CKPT="$SCRATCH/checkpoints"
go build -o "$ELBA" ./cmd/elba

ELBA_FAULT="kill:rank=2,stage=Alignment,n=1" \
  "$ELBA" -preset celegans -size "$SIZE" -transport proc -np $NP \
  -checkpoint "$CKPT" -max-restarts 2 -manifest "$OUT"

go run ./cmd/benchguard -manifest "$OUT" -manifest-baseline "$BASELINE" \
  -manifest-restarts 1
