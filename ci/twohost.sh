#!/usr/bin/env bash
# Two-host deployment gate: run the celegans assembly as two separately
# launched process groups joined through a standalone rendezvous — ranks 0,1
# listening on 127.0.0.1 and ranks 2,3 on 127.0.0.2, the CI stand-in for two
# machines. Rank 0 writes the run manifest; benchguard then requires the
# contig checksum and traffic totals to match the given baseline manifest
# (an in-process run of the same assembly) exactly.
#
# Usage: ci/twohost.sh <baseline-manifest.json> [manifest-out]
set -euo pipefail

BASELINE="${1:?usage: ci/twohost.sh <baseline-manifest.json> [manifest-out]}"
OUT="${2:-RUN_twohost.json}"
SIZE="${SIZE:-150000}"
NP=4

ELBA="$(mktemp -d)/elba"
go build -o "$ELBA" ./cmd/elba

RDV="127.0.0.1:$((20000 + RANDOM % 20000))"
pids=()
cleanup() { kill "${pids[@]}" 2>/dev/null || true; }
trap cleanup EXIT

"$ELBA" -serve-rendezvous "$RDV" -np $NP &
pids+=($!)
sleep 1

# Every rank gets the same flags, -manifest included, so every process
# collects the metrics that rank 0's manifest gathers; worker ranks never
# write the file (only rank 0 produces output).
common=(-preset celegans -size "$SIZE" -transport tcp -join "$RDV" -np $NP -manifest "$OUT")

# Group B ("host" 127.0.0.2), launched first: bootstrap order must not
# matter, every rank just dials the rendezvous.
"$ELBA" "${common[@]}" -rank 2 -listen 127.0.0.2:0 &
pids+=($!)
"$ELBA" "${common[@]}" -rank 3 -listen 127.0.0.2:0 &
pids+=($!)
# Group A ("host" 127.0.0.1); rank 0 gathers the results and writes the
# manifest.
"$ELBA" "${common[@]}" -rank 1 -listen 127.0.0.1:0 &
pids+=($!)
"$ELBA" "${common[@]}" -rank 0 -listen 127.0.0.1:0

wait "${pids[@]}"
trap - EXIT

go run ./cmd/benchguard -manifest "$OUT" -manifest-baseline "$BASELINE"
