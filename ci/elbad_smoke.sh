#!/usr/bin/env bash
# Assembly-as-a-service smoke gate: start elbad with the artifact cache on,
# run a two-point TR-fuzz sweep as two daemon jobs, and prove the cache did
# its job. The two jobs share their option prefix through Alignment, so the
# pipeline must align exactly once: job A misses and commits the
# post-Alignment entry, job B hits it and resumes. benchguard then requires
#   - job B's manifest to match a cold standalone `elba` run at B's options
#     exactly (contig checksum + traffic totals: a hit is bit-identical),
#   - job A to report no cache hit and job B to report one,
#   - job B's performed alignment work to be at most half of job A's
#     (align_cells_ratio<=0.5; it is 0 on a true hit),
# and the daemon's contigs must byte-match the standalone run's FASTA.
#
# Usage: ci/elbad_smoke.sh
set -euo pipefail

SIZE="${SIZE:-60000}"
P=4
PORT="${PORT:-8642}"
BASE="http://127.0.0.1:$PORT"

SCRATCH="$(mktemp -d)"
go build -o "$SCRATCH/elbad" ./cmd/elbad
go build -o "$SCRATCH/elba" ./cmd/elba
go build -o "$SCRATCH/benchguard" ./cmd/benchguard

"$SCRATCH/elbad" -listen "127.0.0.1:$PORT" -cache "$SCRATCH/cache" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null

# submit_job <spec-json> -> job id (the daemon numbers jobs job-1, job-2, …)
submit_job() {
  curl -sf -X POST "$BASE/jobs" -d "$1" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

# wait_job <id>: poll until terminal; fail unless the job lands in done.
wait_job() {
  local id="$1" status
  for _ in $(seq 600); do
    status="$(curl -sf "$BASE/jobs/$id")"
    case "$status" in
      *'"state":"done"'*) return 0 ;;
      *'"state":"failed"'* | *'"state":"cancelled"'*)
        echo "elbad_smoke: job $id did not finish: $status" >&2
        return 1 ;;
    esac
    sleep 0.5
  done
  echo "elbad_smoke: job $id timed out: $status" >&2
  return 1
}

SPEC_COMMON="\"preset\":\"celegans\",\"genome_len\":$SIZE,\"p\":$P,\"threads\":1"
A="$(submit_job "{$SPEC_COMMON,\"tr_fuzz\":150}")"
wait_job "$A"
B="$(submit_job "{$SPEC_COMMON,\"tr_fuzz\":500}")"
wait_job "$B"

curl -sf "$BASE/jobs/$A/manifest" >"$SCRATCH/A.json"
curl -sf "$BASE/jobs/$B/manifest" >"$SCRATCH/B.json"
curl -sf "$BASE/jobs/$B/contigs" >"$SCRATCH/b.fa"
echo "elbad_smoke: cache after sweep: $(curl -sf "$BASE/cache")"

# Cold ground truth at job B's options, no daemon and no cache involved.
"$SCRATCH/elba" -preset celegans -size "$SIZE" -seed 1 -p $P -threads 1 \
  -trfuzz 500 -manifest "$SCRATCH/COLD.json" -out "$SCRATCH/cold.fa"

"$SCRATCH/benchguard" -manifest "$SCRATCH/B.json" -manifest-baseline "$SCRATCH/COLD.json"
"$SCRATCH/benchguard" -manifest "$SCRATCH/A.json" -assert 'cache_hit<=0'
"$SCRATCH/benchguard" -manifest "$SCRATCH/B.json" -manifest-pair "$SCRATCH/A.json" \
  -assert 'cache_hit>=1,align_cells_ratio<=0.5'
cmp "$SCRATCH/b.fa" "$SCRATCH/cold.fa"

echo "elbad_smoke: PASS (job $B reused job $A's alignment; contigs bit-identical to cold run)"
