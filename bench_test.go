// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5–6). Run with
//
//	go test -bench=. -benchtime=1x .
//
// Each benchmark reports the figure's quantities via b.ReportMetric, and the
// cmd/experiments tool prints the same numbers as readable tables. Dataset
// sizes are laptop-scale substitutes for the paper's organisms (see
// DESIGN.md §2 and Table2Row's scale factor); the SHAPE of each result —
// who wins, how stages scale, where the breakdown mass sits — is the
// reproduction target, not absolute numbers from a 128-node Cray.
package repro

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/baseline"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/quality"
	"repro/internal/readsim"
)

// Bench-scale genome sizes (bases): small enough for CI, large enough for
// hundreds of reads per dataset.
func benchSize(p readsim.Preset) int {
	switch p {
	case readsim.CElegansLike:
		return 60000
	case readsim.OSativaLike:
		return 80000
	case readsim.HSapiensLike:
		return 40000
	}
	return 50000
}

const benchSeed = 97

// runCache memoizes pipeline runs per (preset, P, backend): several
// benchmarks reuse the same run (e.g. Fig 4 efficiency needs the P=1
// baseline).
type runKey struct {
	preset, p int
	backend   string
	threads   int // 0 = Options default (auto split)
}

var (
	runMu    sync.Mutex
	runCache = map[runKey]*pipeline.Output{}
)

func benchRun(b *testing.B, preset readsim.Preset, p int) *pipeline.Output {
	return benchRunBackend(b, preset, p, "")
}

func benchRunBackend(b *testing.B, preset readsim.Preset, p int, backend string) *pipeline.Output {
	return benchRunThreads(b, preset, p, backend, 0)
}

func benchRunThreads(b *testing.B, preset readsim.Preset, p int, backend string, threads int) *pipeline.Output {
	b.Helper()
	runMu.Lock()
	defer runMu.Unlock()
	key := runKey{int(preset), p, backend, threads}
	if out, ok := runCache[key]; ok {
		return out
	}
	ds := readsim.Generate(preset, benchSize(preset), benchSeed)
	opt := pipeline.PresetOptions(preset, p)
	opt.AlignBackend = backend
	opt.Threads = threads
	out, err := pipeline.Run(readsim.Seqs(ds.Reads), opt)
	if err != nil {
		b.Fatal(err)
	}
	runCache[key] = out
	return out
}

func benchDataset(preset readsim.Preset) *readsim.Dataset {
	return readsim.Generate(preset, benchSize(preset), benchSeed)
}

// calibrationOf derives per-stage rates from a cached P=1, Threads=1 run:
// rates must mean single-worker throughput (perfmodel.Calibration), so the
// calibration run pins Threads explicitly rather than inheriting the
// GOMAXPROCS auto-split — otherwise StageTimeT would divide an
// already-threaded rate by the Amdahl speedup a second time.
func calibrationOf(b *testing.B, preset readsim.Preset) perfmodel.Calibration {
	// Every caller computes metrics after its timed loop; on a cache miss
	// this runs a full pipeline, which must not count into ns/op.
	b.StopTimer()
	base := benchRunThreads(b, preset, 1, "", 1)
	return perfmodel.Calibrate(base.Stats.Timers, pipeline.MainStages)
}

// BenchmarkTable1_Environment records the host substitute for the paper's
// machine table (documentation-only).
func BenchmarkTable1_Environment(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(float64(runtime.NumCPU()), "host_cpus")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkTable2_Datasets regenerates the dataset table: reads, mean
// length, depth and error rate per preset.
func BenchmarkTable2_Datasets(b *testing.B) {
	for _, preset := range []readsim.Preset{readsim.OSativaLike, readsim.CElegansLike, readsim.HSapiensLike} {
		preset := preset
		b.Run(preset.String(), func(b *testing.B) {
			var ds *readsim.Dataset
			for i := 0; i < b.N; i++ {
				ds = readsim.Generate(preset, benchSize(preset), benchSeed)
			}
			b.ReportMetric(float64(len(ds.Reads)), "reads")
			b.ReportMetric(float64(ds.MeanLen), "mean_len")
			b.ReportMetric(ds.Depth, "depth")
			b.ReportMetric(ds.ErrorRate*100, "error_pct")
		})
	}
}

// benchScaling is the shared body of the Figure 4 and Figure 6 scaling
// benchmarks: per P, report modeled distributed seconds and efficiency.
func benchScaling(b *testing.B, preset readsim.Preset) {
	for _, p := range []int{1, 4, 16} {
		p := p
		b.Run("P="+itoa(p), func(b *testing.B) {
			var out *pipeline.Output
			for i := 0; i < b.N; i++ {
				runMu.Lock()
				delete(runCache, runKey{int(preset), p, "", 0}) // measure a fresh run
				runMu.Unlock()
				out = benchRun(b, preset, p)
			}
			cal := calibrationOf(b, preset)
			base := benchRun(b, preset, 1)
			baseT := perfmodel.Total(base.Stats.Timers, pipeline.MainStages, cal, perfmodel.Aries())
			t := perfmodel.Total(out.Stats.Timers, pipeline.MainStages, cal, perfmodel.Aries())
			b.ReportMetric(t, "modeled_s")
			b.ReportMetric(100*perfmodel.Efficiency(1, baseT, p, t), "efficiency_pct")
			b.ReportMetric(float64(out.Stats.CommBytes)/1e6, "comm_MB")
		})
	}
}

// BenchmarkFig4_StrongScaling reproduces Figure 4: strong scaling on the
// two low-error datasets.
func BenchmarkFig4_StrongScaling(b *testing.B) {
	b.Run("celegans", func(b *testing.B) { benchScaling(b, readsim.CElegansLike) })
	b.Run("osativa", func(b *testing.B) { benchScaling(b, readsim.OSativaLike) })
}

// benchBreakdown reports per-stage modeled milliseconds at P ranks.
func benchBreakdown(b *testing.B, preset readsim.Preset, p int) {
	var out *pipeline.Output
	for i := 0; i < b.N; i++ {
		out = benchRun(b, preset, p)
	}
	cal := calibrationOf(b, preset)
	for _, s := range pipeline.MainStages {
		t := perfmodel.StageTime(out.Stats.Timers, s, cal, perfmodel.Aries())
		b.ReportMetric(t*1000, s+"_ms")
	}
}

// BenchmarkFig5_Breakdown reproduces Figure 5: the per-stage runtime
// breakdown on the low-error datasets.
func BenchmarkFig5_Breakdown(b *testing.B) {
	b.Run("celegans/P=16", func(b *testing.B) { benchBreakdown(b, readsim.CElegansLike, 16) })
	b.Run("osativa/P=16", func(b *testing.B) { benchBreakdown(b, readsim.OSativaLike, 16) })
}

// BenchmarkFig6_HSapiens reproduces Figure 6: scaling and breakdown on the
// high-error dataset.
func BenchmarkFig6_HSapiens(b *testing.B) {
	b.Run("scaling", func(b *testing.B) { benchScaling(b, readsim.HSapiensLike) })
	b.Run("breakdown/P=16", func(b *testing.B) { benchBreakdown(b, readsim.HSapiensLike, 16) })
}

// BenchmarkTable3_Speedup reproduces Table 3: ELBA versus the multithreaded
// shared-memory comparator, reporting the modeled speedup at P=16.
func BenchmarkTable3_Speedup(b *testing.B) {
	for _, preset := range []readsim.Preset{readsim.CElegansLike, readsim.OSativaLike} {
		preset := preset
		b.Run(preset.String(), func(b *testing.B) {
			ds := benchDataset(preset)
			reads := readsim.Seqs(ds.Reads)
			opt := pipeline.PresetOptions(preset, 1)
			cfg := baseline.Config{
				K: opt.K, ReliableLow: opt.ReliableLow, ReliableHigh: opt.ReliableHigh,
				Align: align.DefaultParams(opt.XDrop), MinOverlap: opt.MinOverlap,
				MinScoreFrac: opt.MinScoreFrac, MaxOverhang: opt.MaxOverhang,
				Threads: runtime.NumCPU(),
			}
			var bogSec float64
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				baseline.BestOverlapAssemble(reads, cfg)
				bogSec = time.Since(t0).Seconds()
			}
			cal := calibrationOf(b, preset)
			out := benchRun(b, preset, 16)
			elbaSec := perfmodel.Total(out.Stats.Timers, pipeline.MainStages, cal, perfmodel.Aries())
			b.ReportMetric(bogSec, "baseline_s")
			b.ReportMetric(elbaSec, "elba16_modeled_s")
			if elbaSec > 0 {
				b.ReportMetric(bogSec/elbaSec, "speedup")
			}
		})
	}
}

// BenchmarkTable4_Quality reproduces Table 4: assembly-quality metrics for
// ELBA and the comparator on both low-error datasets.
func BenchmarkTable4_Quality(b *testing.B) {
	for _, preset := range []readsim.Preset{readsim.OSativaLike, readsim.CElegansLike} {
		preset := preset
		b.Run(preset.String()+"/elba", func(b *testing.B) {
			var rep *quality.Report
			for i := 0; i < b.N; i++ {
				out := benchRun(b, preset, 4)
				ds := benchDataset(preset)
				seqs := make([][]byte, len(out.Contigs))
				for j, c := range out.Contigs {
					seqs[j] = c.Seq
				}
				rep = quality.Evaluate(ds.Genome, seqs)
			}
			reportQuality(b, rep)
		})
		b.Run(preset.String()+"/bestoverlap", func(b *testing.B) {
			var rep *quality.Report
			for i := 0; i < b.N; i++ {
				ds := benchDataset(preset)
				opt := pipeline.PresetOptions(preset, 1)
				cfg := baseline.Config{
					K: opt.K, ReliableLow: opt.ReliableLow, ReliableHigh: opt.ReliableHigh,
					Align: align.DefaultParams(opt.XDrop), MinOverlap: opt.MinOverlap,
					MinScoreFrac: opt.MinScoreFrac, MaxOverhang: opt.MaxOverhang,
					Threads: runtime.NumCPU(),
				}
				res := baseline.BestOverlapAssemble(readsim.Seqs(ds.Reads), cfg)
				seqs := make([][]byte, len(res.Contigs))
				for j, c := range res.Contigs {
					seqs[j] = c.Seq
				}
				rep = quality.Evaluate(ds.Genome, seqs)
			}
			reportQuality(b, rep)
		})
	}
}

func reportQuality(b *testing.B, rep *quality.Report) {
	b.ReportMetric(rep.Completeness, "completeness_pct")
	b.ReportMetric(float64(rep.LongestContig), "longest_contig")
	b.ReportMetric(float64(rep.NumContigs), "contigs")
	b.ReportMetric(float64(rep.Misassemblies), "misassembled")
	b.ReportMetric(float64(rep.N50), "n50")
}

// BenchmarkBackends_ErrorRates is the alignment-backend head-to-head through
// the FULL pipeline on a low-error and a high-error readsim preset: per
// backend it reports the Alignment stage's work counter, its modeled time,
// and the contig quality (per internal/quality) of the resulting assembly.
// The expectation this measures: WFA's penalty-proportional work beats the
// x-drop band at 0.5% error and loses its edge at 15%, while contig quality
// stays within tolerance of the x-drop backend throughout.
func BenchmarkBackends_ErrorRates(b *testing.B) {
	for _, preset := range []readsim.Preset{readsim.CElegansLike, readsim.HSapiensLike} {
		preset := preset
		for _, backend := range pipeline.AlignBackends() {
			backend := backend
			b.Run(preset.String()+"/"+backend, func(b *testing.B) {
				// Allocation metrics feed the benchguard alloc gate: for a
				// pinned seed the hot kernels allocate near-deterministically,
				// so allocs/op regressions mean a kernel lost its leanness.
				b.ReportAllocs()
				var out *pipeline.Output
				for i := 0; i < b.N; i++ {
					runMu.Lock()
					delete(runCache, runKey{int(preset), 4, backend, 0}) // measure a fresh run
					runMu.Unlock()
					out = benchRunBackend(b, preset, 4, backend)
				}
				cal := calibrationOf(b, preset)
				b.ReportMetric(float64(out.Stats.Timers.Get("Alignment").SumWork), "align_cells")
				b.ReportMetric(1000*perfmodel.StageTime(out.Stats.Timers, "Alignment", cal, perfmodel.Aries()), "align_modeled_ms")
				b.ReportMetric(out.Stats.Timers.Dur("Alignment").Seconds()*1000, "align_wall_ms")
				// Communication counters are deterministic for the pinned
				// seed (and identical in sync/async comm modes), so the CI
				// gate can watch them like align_cells.
				b.ReportMetric(float64(out.Stats.CommBytes), "comm_bytes")
				b.ReportMetric(float64(out.Stats.CommMsgs), "comm_messages")
				ds := benchDataset(preset)
				seqs := make([][]byte, len(out.Contigs))
				for j, c := range out.Contigs {
					seqs[j] = c.Seq
				}
				rep := quality.Evaluate(ds.Genome, seqs)
				reportQuality(b, rep)
			})
		}
	}
}

// BenchmarkThreads is the intra-rank worker-pool sweep: the same preset at
// one simulated rank with 1/2/4/8 workers on the alignment/k-mer hot paths.
// Per worker count it reports the Alignment stage's wall clock, the speedup
// over the single-worker run, the (schedule-invariant) work counter and
// whether the contigs are byte-identical to the T=1 run (they must be; the
// determinism test asserts it, this metric just surfaces it next to the
// timings). Wall-clock speedup saturates at the host's core count.
func BenchmarkThreads(b *testing.B) {
	const preset = readsim.CElegansLike
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run("T="+itoa(th), func(b *testing.B) {
			b.ReportAllocs()
			var out *pipeline.Output
			for i := 0; i < b.N; i++ {
				runMu.Lock()
				delete(runCache, runKey{int(preset), 1, "", th}) // measure a fresh run
				runMu.Unlock()
				out = benchRunThreads(b, preset, 1, "", th)
			}
			b.StopTimer() // the T=1 reference run must not count into ns/op
			base := benchRunThreads(b, preset, 1, "", 1)
			alignMS := out.Stats.Timers.Dur("Alignment").Seconds() * 1000
			b.ReportMetric(alignMS, "align_wall_ms")
			if alignMS > 0 {
				b.ReportMetric(base.Stats.Timers.Dur("Alignment").Seconds()*1000/alignMS, "align_speedup_x")
			}
			b.ReportMetric(float64(out.Stats.Timers.Get("Alignment").SumWork), "align_cells")
			b.ReportMetric(float64(out.Stats.CommBytes), "comm_bytes")
			b.ReportMetric(float64(out.Stats.CommMsgs), "comm_messages")
			identical := 1.0
			if len(out.Contigs) != len(base.Contigs) {
				identical = 0
			} else {
				for i := range base.Contigs {
					if string(base.Contigs[i].Seq) != string(out.Contigs[i].Seq) {
						identical = 0
						break
					}
				}
			}
			b.ReportMetric(identical, "contigs_identical")
		})
	}
}

// BenchmarkTransports runs the same P=4 assembly over the in-process
// mailbox and the loopback TCP mesh, recording the socket tax in the
// BENCH_* trajectory. Both legs must stay bit-identical (contigs and
// traffic counters) — the wire codec's equivalence contract measured on
// real output, not just asserted in unit tests.
func BenchmarkTransports(b *testing.B) {
	const preset = readsim.CElegansLike
	ds := readsim.Generate(preset, benchSize(preset), benchSeed)
	reads := readsim.Seqs(ds.Reads)
	base := benchRun(b, preset, 4) // in-process reference, shared with other benchmarks
	for _, tr := range pipeline.Transports() {
		tr := tr
		b.Run(tr, func(b *testing.B) {
			var out *pipeline.Output
			for i := 0; i < b.N; i++ {
				opt := pipeline.PresetOptions(preset, 4)
				opt.Transport = tr
				var err error
				out, err = pipeline.Run(reads, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(out.Stats.CommBytes), "comm_bytes")
			b.ReportMetric(float64(out.Stats.CommMsgs), "comm_messages")
			identical := 1.0
			if len(out.Contigs) != len(base.Contigs) ||
				out.Stats.CommBytes != base.Stats.CommBytes ||
				out.Stats.CommMsgs != base.Stats.CommMsgs {
				identical = 0
			} else {
				for i := range base.Contigs {
					if string(base.Contigs[i].Seq) != string(out.Contigs[i].Seq) {
						identical = 0
						break
					}
				}
			}
			b.ReportMetric(identical, "contigs_identical")
		})
	}
}

// BenchmarkContigPhase_Shares verifies the §6.1 claims: the induced
// subgraph (plus sequence communication) dominates contig generation and
// ExtractContig stays a small share of the pipeline.
func BenchmarkContigPhase_Shares(b *testing.B) {
	var out *pipeline.Output
	for i := 0; i < b.N; i++ {
		out = benchRun(b, readsim.CElegansLike, 16)
	}
	var phase time.Duration
	for _, s := range pipeline.ContigStages {
		phase += out.Stats.Timers.Dur(s)
	}
	induced := out.Stats.Timers.Dur("CG:InducedSubgraph") + out.Stats.Timers.Dur("CG:SequenceComm")
	if phase > 0 {
		b.ReportMetric(100*float64(induced)/float64(phase), "induced_share_pct")
	}
	total := out.Stats.StageTotal()
	if total > 0 {
		b.ReportMetric(100*float64(out.Stats.Timers.Dur("ExtractContig"))/float64(total), "extract_share_pct")
	}
}

// BenchmarkAblation_Partitioning compares LPT against the unsorted greedy
// (the paper's 2−1/P vs (4P−1)/(3P) discussion) on a contig-size-like
// distribution.
func BenchmarkAblation_Partitioning(b *testing.B) {
	sizes := contigLikeSizes(4000)
	for _, p := range []int{64, 1024} {
		p := p
		b.Run("LPT/P="+itoa(p), func(b *testing.B) {
			var m int64
			for i := 0; i < b.N; i++ {
				_, loads := partition.LPT(sizes, p)
				m = partition.Makespan(loads)
			}
			lb := partition.LowerBound(sizes, p)
			b.ReportMetric(float64(m)/float64(lb), "makespan_over_lb")
		})
		b.Run("Greedy/P="+itoa(p), func(b *testing.B) {
			var m int64
			for i := 0; i < b.N; i++ {
				_, loads := partition.Greedy(sizes, p)
				m = partition.Makespan(loads)
			}
			lb := partition.LowerBound(sizes, p)
			b.ReportMetric(float64(m)/float64(lb), "makespan_over_lb")
		})
	}
}

func contigLikeSizes(n int) []int64 {
	sizes := make([]int64, n)
	x := uint64(88172645463325252)
	for i := range sizes {
		// xorshift: deterministic, no seeding dependencies
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := int64(x%97) + 2
		sizes[i] = v * v / 10
		if sizes[i] < 2 {
			sizes[i] = 2
		}
	}
	return sizes
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkStageSweep pins the stage-graph engine's artifact-reuse claim: a
// TR-fuzz sweep resumed from one RunUntil(Alignment) snapshot must align
// every candidate pair exactly once, where N independent full runs align N
// times — so align_cells_ratio (swept / full) must stay well under 1 (CI
// asserts ≤ 0.5; with three sweep points it sits near 1/3), with contig
// sets identical point for point.
func BenchmarkStageSweep(b *testing.B) {
	ds := readsim.Generate(readsim.CElegansLike, 30000, benchSeed)
	reads := readsim.Seqs(ds.Reads)
	base := pipeline.PresetOptions(readsim.CElegansLike, 4)
	base.AlignBackend = pipeline.BackendWFA
	fuzzes := []int32{0, 150, 500}

	var sweptCells, fullCells int64
	identical := 1.0
	for i := 0; i < b.N; i++ {
		sweptCells, fullCells = 0, 0
		eng, err := pipeline.Plan(base)
		if err != nil {
			b.Fatal(err)
		}
		arts, err := eng.RunUntil(context.Background(), reads, pipeline.StageAlignment)
		if err != nil {
			b.Fatal(err)
		}
		sweptCells = arts.Aggregate().Get("Alignment").SumWork
		for _, fz := range fuzzes {
			opt := base
			opt.TRFuzz = fz
			swept, err := pipeline.Plan(opt)
			if err != nil {
				b.Fatal(err)
			}
			chain, err := swept.ResumeFrom(context.Background(), arts, pipeline.StageExtractContig)
			if err != nil {
				b.Fatal(err)
			}
			sweptOut, err := chain.Output()
			if err != nil {
				b.Fatal(err)
			}
			full, err := pipeline.Run(reads, opt)
			if err != nil {
				b.Fatal(err)
			}
			fullCells += full.Stats.Timers.Get("Alignment").SumWork
			if len(sweptOut.Contigs) != len(full.Contigs) {
				identical = 0
			} else {
				for i := range full.Contigs {
					if string(sweptOut.Contigs[i].Seq) != string(full.Contigs[i].Seq) {
						identical = 0
						break
					}
				}
			}
		}
	}
	b.ReportMetric(float64(sweptCells), "align_cells_swept")
	b.ReportMetric(float64(fullCells), "align_cells_full")
	if fullCells > 0 {
		b.ReportMetric(float64(sweptCells)/float64(fullCells), "align_cells_ratio")
	}
	b.ReportMetric(identical, "contigs_identical")
}
