package elba_test

import (
	"fmt"

	"repro/elba"
)

// Example assembles a small simulated dataset end to end: simulate, run the
// distributed pipeline on a 2×2 grid, and evaluate against the reference.
// The wavefront alignment backend keeps the demo fast on this low-error
// preset; drop the AlignBackend line for the paper's x-drop DP (the contigs
// are the same either way).
func Example() {
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	opt := elba.PresetOptions(elba.CElegansLike, 4)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Println(len(out.Contigs) > 0, rep.Completeness > 90, rep.Misassemblies == 0)
	// Output: true true true
}

// ExampleMergeContigs shows the §7 polishing pass joining overlapping
// contigs into longer sequences.
func ExampleMergeContigs() {
	ds := elba.SimulateDataset(elba.CElegansLike, 25_000, 5)
	opt := elba.PresetOptions(elba.CElegansLike, 1)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	merged := elba.MergeContigs(out.Contigs, elba.DefaultPolishConfig())
	fmt.Println(len(merged) <= len(out.Contigs))
	// Output: true
}
