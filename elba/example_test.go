package elba_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"repro/elba"
)

// ExampleAssembler demonstrates the stable facade: configure once with
// functional options (all parameter errors surface at New, together), then
// assemble any Source under a context.
func ExampleAssembler() {
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
	)
	if err != nil {
		panic(err)
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	out, err := asm.Assemble(context.Background(), elba.FromDataset(ds))
	if err != nil {
		panic(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Println(len(out.Contigs) > 0, rep.Completeness > 90, rep.Misassemblies == 0)
	// Output: true true true
}

// ExampleAssembler_ResumeFrom runs the pipeline once up to the Alignment
// stage, then resumes the snapshot under two transitive-reduction
// configurations — the expensive k-mer/SpGEMM/alignment phase executes a
// single time for the whole sweep, and the snapshot stays reusable.
func ExampleAssembler_ResumeFrom() {
	ctx := context.Background()
	src := elba.FromSimulation(elba.CElegansLike, 30_000, 42)
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
	)
	if err != nil {
		panic(err)
	}
	arts, err := asm.RunUntil(ctx, src, elba.StageAlignment)
	if err != nil {
		panic(err)
	}
	var contigCounts []int
	for _, fuzz := range []int32{150, 500} {
		swept, err := elba.New(
			elba.WithPreset(elba.CElegansLike),
			elba.WithRanks(4),
			elba.WithBackend(elba.BackendWFA),
			elba.WithTRFuzz(fuzz),
		)
		if err != nil {
			panic(err)
		}
		chain, err := swept.ResumeFrom(ctx, arts, elba.StageExtractContig)
		if err != nil {
			panic(err)
		}
		out, err := chain.Output()
		if err != nil {
			panic(err)
		}
		contigCounts = append(contigCounts, len(out.Contigs))
	}
	fmt.Println(arts.Stage() == elba.StageAlignment, len(contigCounts) == 2, contigCounts[0] > 0)
	// Output: true true true
}

// Example assembles a small simulated dataset end to end: simulate, run the
// distributed pipeline on a 2×2 grid, and evaluate against the reference.
// The wavefront alignment backend keeps the demo fast on this low-error
// preset; drop the AlignBackend line for the paper's x-drop DP (the contigs
// are the same either way).
func Example() {
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	opt := elba.PresetOptions(elba.CElegansLike, 4)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Println(len(out.Contigs) > 0, rep.Completeness > 90, rep.Misassemblies == 0)
	// Output: true true true
}

// ExampleWithTransport runs the same assembly over the in-process mailbox
// transport and the TCP socket mesh: the transport decides where ranks live
// (goroutines, OS processes, machines — see OPERATIONS.md for the
// multi-host deployment), never what they compute, so contigs and traffic
// counters are bit-identical.
func ExampleWithTransport() {
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	outs := make(map[string]*elba.Output)
	for _, tr := range []string{elba.TransportInproc, elba.TransportTCP} {
		asm, err := elba.New(
			elba.WithPreset(elba.CElegansLike),
			elba.WithRanks(4),
			elba.WithBackend(elba.BackendWFA),
			elba.WithTransport(tr),
		)
		if err != nil {
			panic(err)
		}
		out, err := asm.Assemble(context.Background(), elba.FromDataset(ds))
		if err != nil {
			panic(err)
		}
		outs[tr] = out
	}
	a, b := outs[elba.TransportInproc], outs[elba.TransportTCP]
	same := len(a.Contigs) == len(b.Contigs)
	for i := range a.Contigs {
		same = same && bytes.Equal(a.Contigs[i].Seq, b.Contigs[i].Seq)
	}
	fmt.Println(same,
		a.Stats.CommBytes == b.Stats.CommBytes,
		a.Stats.CommMsgs == b.Stats.CommMsgs)
	// Output: true true true
}

// ExampleWithFailureHandler demonstrates the failure hook: when a run's
// world is torn down early — here by context cancellation as the Alignment
// stage starts; in a multi-process run, by a rank dying — the handler
// receives the cause exactly once, before Assemble returns its error. For
// transport-attributed deaths, FailedRank(err) recovers which rank was
// lost.
func ExampleWithFailureHandler() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	failed := make(chan error, 1)
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
		elba.WithFailureHandler(func(err error) { failed <- err }),
		elba.WithObserver(elba.Observer{StageStart: func(stage string, _, _ int) {
			if stage == elba.StageAlignment {
				cancel()
			}
		}}),
	)
	if err != nil {
		panic(err)
	}
	_, err = asm.Assemble(ctx, elba.FromSimulation(elba.CElegansLike, 20_000, 42))
	cause := <-failed
	_, attributed := elba.FailedRank(cause)
	fmt.Println(err != nil, errors.Is(cause, context.Canceled), attributed)
	// Output: true true false
}

// ExampleMergeContigs shows the §7 polishing pass joining overlapping
// contigs into longer sequences.
func ExampleMergeContigs() {
	ds := elba.SimulateDataset(elba.CElegansLike, 25_000, 5)
	opt := elba.PresetOptions(elba.CElegansLike, 1)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	merged := elba.MergeContigs(out.Contigs, elba.DefaultPolishConfig())
	fmt.Println(len(merged) <= len(out.Contigs))
	// Output: true
}
