package elba_test

import (
	"context"
	"fmt"

	"repro/elba"
)

// ExampleAssembler demonstrates the stable facade: configure once with
// functional options (all parameter errors surface at New, together), then
// assemble any Source under a context.
func ExampleAssembler() {
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
	)
	if err != nil {
		panic(err)
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	out, err := asm.Assemble(context.Background(), elba.FromDataset(ds))
	if err != nil {
		panic(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Println(len(out.Contigs) > 0, rep.Completeness > 90, rep.Misassemblies == 0)
	// Output: true true true
}

// ExampleAssembler_ResumeFrom runs the pipeline once up to the Alignment
// stage, then resumes the snapshot under two transitive-reduction
// configurations — the expensive k-mer/SpGEMM/alignment phase executes a
// single time for the whole sweep, and the snapshot stays reusable.
func ExampleAssembler_ResumeFrom() {
	ctx := context.Background()
	src := elba.FromSimulation(elba.CElegansLike, 30_000, 42)
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
	)
	if err != nil {
		panic(err)
	}
	arts, err := asm.RunUntil(ctx, src, elba.StageAlignment)
	if err != nil {
		panic(err)
	}
	var contigCounts []int
	for _, fuzz := range []int32{150, 500} {
		swept, err := elba.New(
			elba.WithPreset(elba.CElegansLike),
			elba.WithRanks(4),
			elba.WithBackend(elba.BackendWFA),
			elba.WithTRFuzz(fuzz),
		)
		if err != nil {
			panic(err)
		}
		chain, err := swept.ResumeFrom(ctx, arts, elba.StageExtractContig)
		if err != nil {
			panic(err)
		}
		out, err := chain.Output()
		if err != nil {
			panic(err)
		}
		contigCounts = append(contigCounts, len(out.Contigs))
	}
	fmt.Println(arts.Stage() == elba.StageAlignment, len(contigCounts) == 2, contigCounts[0] > 0)
	// Output: true true true
}

// Example assembles a small simulated dataset end to end: simulate, run the
// distributed pipeline on a 2×2 grid, and evaluate against the reference.
// The wavefront alignment backend keeps the demo fast on this low-error
// preset; drop the AlignBackend line for the paper's x-drop DP (the contigs
// are the same either way).
func Example() {
	ds := elba.SimulateDataset(elba.CElegansLike, 30_000, 42)
	opt := elba.PresetOptions(elba.CElegansLike, 4)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Println(len(out.Contigs) > 0, rep.Completeness > 90, rep.Misassemblies == 0)
	// Output: true true true
}

// ExampleMergeContigs shows the §7 polishing pass joining overlapping
// contigs into longer sequences.
func ExampleMergeContigs() {
	ds := elba.SimulateDataset(elba.CElegansLike, 25_000, 5)
	opt := elba.PresetOptions(elba.CElegansLike, 1)
	opt.AlignBackend = elba.BackendWFA
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		panic(err)
	}
	merged := elba.MergeContigs(out.Contigs, elba.DefaultPolishConfig())
	fmt.Println(len(merged) <= len(out.Contigs))
	// Output: true
}
