package elba_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/elba"
)

// TestNewValidatesUpfront: every bad option surfaces at New, together, with
// field names.
func TestNewValidatesUpfront(t *testing.T) {
	_, err := elba.New(
		elba.WithRanks(3),
		elba.WithK(99),
		elba.WithBackend("quantum"),
		elba.WithThreads(-1),
	)
	if err == nil {
		t.Fatal("invalid assembler built")
	}
	for _, want := range []string{"Options.P", "Options.K", "Options.AlignBackend", "Options.Threads"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not name %s:\n%v", want, err)
		}
	}
}

// TestAssemblerMatchesLegacyAssemble: the facade and the compat wrapper are
// the same engine — byte-identical contigs, equal counters.
func TestAssemblerMatchesLegacyAssemble(t *testing.T) {
	ds := elba.SimulateDataset(elba.CElegansLike, 25_000, 11)
	opt := elba.PresetOptions(elba.CElegansLike, 4)
	opt.AlignBackend = elba.BackendWFA
	legacy, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := elba.New(
		elba.WithPreset(elba.CElegansLike),
		elba.WithRanks(4),
		elba.WithBackend(elba.BackendWFA),
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := asm.Assemble(context.Background(), elba.FromDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) != len(legacy.Contigs) {
		t.Fatalf("facade %d contigs, legacy %d", len(out.Contigs), len(legacy.Contigs))
	}
	for i := range legacy.Contigs {
		if !bytes.Equal(out.Contigs[i].Seq, legacy.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between facade and legacy paths", i)
		}
	}
	if out.Stats.CommBytes != legacy.Stats.CommBytes || out.Stats.CommMsgs != legacy.Stats.CommMsgs {
		t.Fatalf("traffic differs: facade %d/%d, legacy %d/%d",
			out.Stats.CommBytes, out.Stats.CommMsgs, legacy.Stats.CommBytes, legacy.Stats.CommMsgs)
	}
}

// TestSourcesAgree: FASTA round-trip and in-memory sources feed identical
// reads.
func TestSourcesAgree(t *testing.T) {
	ds := elba.SimulateDataset(elba.CElegansLike, 20_000, 13)
	asm, err := elba.New(elba.WithPreset(elba.CElegansLike), elba.WithBackend(elba.BackendWFA))
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := asm.Assemble(context.Background(), elba.FromReads(ds.Reads))
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the reads through FASTA.
	var buf bytes.Buffer
	for i, r := range elba.ReadSeqs(ds.Reads) {
		fmt.Fprintf(&buf, ">read_%d\n%s\n", i, r)
	}
	fromFasta, err := asm.Assemble(context.Background(), elba.FromFasta(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromMem.Contigs) != len(fromFasta.Contigs) {
		t.Fatalf("source mismatch: %d vs %d contigs", len(fromMem.Contigs), len(fromFasta.Contigs))
	}
	for i := range fromMem.Contigs {
		if !bytes.Equal(fromMem.Contigs[i].Seq, fromFasta.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between sources", i)
		}
	}
}

// TestOptionOrder: WithPreset preserves an earlier WithRanks, later options
// override preset fields.
func TestOptionOrder(t *testing.T) {
	asm, err := elba.New(
		elba.WithRanks(4),
		elba.WithPreset(elba.HSapiensLike),
		elba.WithK(19),
	)
	if err != nil {
		t.Fatal(err)
	}
	o := asm.Options()
	if o.P != 4 {
		t.Fatalf("P = %d, want preserved 4", o.P)
	}
	if o.K != 19 {
		t.Fatalf("K = %d, want overridden 19", o.K)
	}
	if o.XDrop != 30 {
		t.Fatalf("XDrop = %d, want the hsapiens preset's 30", o.XDrop)
	}
}

// TestFlagsApply: the shared flag helper round-trips onto Options and
// rejects a bad -comm spelling.
func TestFlagsApply(t *testing.T) {
	var f elba.Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-backend", "wfa", "-threads", "3", "-comm", "sync"}); err != nil {
		t.Fatal(err)
	}
	opt := elba.DefaultOptions(4)
	if err := f.Apply(&opt); err != nil {
		t.Fatal(err)
	}
	if opt.AlignBackend != elba.BackendWFA || opt.Threads != 3 || opt.Async {
		t.Fatalf("Apply mismatch: %+v", opt)
	}
	if f.AsyncMode() {
		t.Fatal("AsyncMode true for -comm sync")
	}
	f.Comm = "carrier-pigeon"
	if err := f.Apply(&opt); err == nil {
		t.Fatal("bad -comm accepted")
	}
}

func TestParsePreset(t *testing.T) {
	for name, want := range map[string]elba.Preset{
		"celegans": elba.CElegansLike,
		"osativa":  elba.OSativaLike,
		"hsapiens": elba.HSapiensLike,
	} {
		got, err := elba.ParsePreset(name)
		if err != nil || got != want {
			t.Errorf("ParsePreset(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := elba.ParsePreset("ecoli"); err == nil {
		t.Error("unknown preset accepted")
	}
}
