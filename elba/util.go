package elba

import (
	"fmt"

	"repro/internal/align"
)

// alignParams derives the aligner scoring from pipeline options.
func alignParams(o Options) align.Params { return align.DefaultParams(o.XDrop) }

// contigName formats a FASTA id carrying the read count and circularity.
func contigName(i int, c Contig) string {
	circ := ""
	if c.Circular {
		circ = " circular"
	}
	return fmt.Sprintf("contig_%05d len=%d reads=%d%s", i, len(c.Seq), len(c.Reads), circ)
}
