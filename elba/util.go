package elba

import (
	"fmt"
	"io"

	"repro/internal/align"
	"repro/internal/fasta"
)

// readFastaSeqs parses a FASTA stream into raw read sequences.
func readFastaSeqs(r io.Reader) ([][]byte, error) {
	recs, err := fasta.Read(r)
	if err != nil {
		return nil, err
	}
	reads := make([][]byte, len(recs))
	for i, rec := range recs {
		reads[i] = rec.Seq
	}
	return reads, nil
}

// alignParams derives the aligner scoring from pipeline options.
func alignParams(o Options) align.Params { return align.DefaultParams(o.XDrop) }

// contigName formats a FASTA id carrying the read count and circularity.
func contigName(i int, c Contig) string {
	circ := ""
	if c.Circular {
		circ = " circular"
	}
	return fmt.Sprintf("contig_%05d len=%d reads=%d%s", i, len(c.Seq), len(c.Reads), circ)
}
