package elba_test

import (
	"testing"

	"repro/elba"
)

// TestAlignBackendQualityParity runs the quickstart-scale dataset (50 kbp
// C. elegans-like, 2×2 grid) through the full pipeline once per alignment
// backend and requires the WFA assembly's quality to stay within tolerance
// of the x-drop assembly. On this error rate the two backends agree almost
// everywhere, so the tolerances are loose only to absorb borderline-pair
// pruning differences, not systematic quality loss.
func TestAlignBackendQualityParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline backend comparison in -short mode")
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 50_000, 42)
	reports := map[string]*elba.QualityReport{}
	for _, backend := range elba.AlignBackends() {
		opt := elba.PresetOptions(elba.CElegansLike, 4)
		opt.AlignBackend = backend
		out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if len(out.Contigs) == 0 {
			t.Fatalf("%s: no contigs", backend)
		}
		reports[backend] = elba.Evaluate(ds.Genome, out.Contigs)
	}
	xd, wf := reports[elba.BackendXDrop], reports[elba.BackendWFA]
	t.Logf("xdrop: completeness=%.2f N50=%d contigs=%d mis=%d", xd.Completeness, xd.N50, xd.NumContigs, xd.Misassemblies)
	t.Logf("wfa:   completeness=%.2f N50=%d contigs=%d mis=%d", wf.Completeness, wf.N50, wf.NumContigs, wf.Misassemblies)
	if d := xd.Completeness - wf.Completeness; d > 5 || d < -5 {
		t.Errorf("completeness diverges: xdrop %.2f%% vs wfa %.2f%%", xd.Completeness, wf.Completeness)
	}
	if r := float64(wf.N50) / float64(xd.N50); r < 0.7 || r > 1.43 {
		t.Errorf("N50 diverges: xdrop %d vs wfa %d", xd.N50, wf.N50)
	}
	if d := wf.Misassemblies - xd.Misassemblies; d > 2 || d < -2 {
		t.Errorf("misassemblies diverge: xdrop %d vs wfa %d", xd.Misassemblies, wf.Misassemblies)
	}
}

// TestUnknownBackendRejected makes sure typos surface as errors, not silent
// fallbacks to the default aligner.
func TestUnknownBackendRejected(t *testing.T) {
	opt := elba.DefaultOptions(1)
	opt.AlignBackend = "smith-waterman"
	_, err := elba.Assemble([][]byte{[]byte("ACGTACGTACGT")}, opt)
	if err == nil {
		t.Fatal("unknown AlignBackend must error")
	}
}
