package elba_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/elba"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 30000, 5)
	if len(ds.Reads) == 0 || len(ds.Genome) != 30000 {
		t.Fatal("dataset generation failed")
	}
	opt := elba.PresetOptions(elba.CElegansLike, 4)
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	if rep.Completeness < 50 {
		t.Fatalf("completeness %.1f", rep.Completeness)
	}
	if rep.GenomeLen != 30000 {
		t.Fatal("report genome length")
	}
}

func TestWriteContigsAndAssembleFastaRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 20000, 9)
	opt := elba.PresetOptions(elba.CElegansLike, 1)
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := elba.WriteContigs(&buf, out.Contigs); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, ">contig_00000") {
		t.Fatalf("missing contig header in:\n%.200s", text)
	}
	// Reads written as FASTA must assemble identically via AssembleFasta.
	var readsFasta bytes.Buffer
	for i, r := range ds.Reads {
		fmt.Fprintf(&readsFasta, ">read_%06d\n%s\n", i, r.Seq)
	}
	out2, err := elba.AssembleFasta(&readsFasta, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Contigs) != len(out.Contigs) {
		t.Fatalf("FASTA path gave %d contigs, direct %d", len(out2.Contigs), len(out.Contigs))
	}
	for i := range out.Contigs {
		if !bytes.Equal(out.Contigs[i].Seq, out2.Contigs[i].Seq) {
			t.Fatal("contigs differ between input paths")
		}
	}
}

func TestBaselineViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-memory baseline assembly in -short mode")
	}
	ds := elba.SimulateDataset(elba.CElegansLike, 25000, 11)
	opt := elba.PresetOptions(elba.CElegansLike, 1)
	res := elba.BestOverlapBaseline(elba.ReadSeqs(ds.Reads), elba.BaselineFromOptions(opt, 2))
	if len(res.Contigs) == 0 {
		t.Fatal("baseline produced no contigs")
	}
	rep := elba.Evaluate(ds.Genome, res.Contigs)
	if rep.Completeness < 40 {
		t.Fatalf("baseline completeness %.1f", rep.Completeness)
	}
}
