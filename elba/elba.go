// Package elba is the public API of this reproduction of "Distributed-Memory
// Parallel Contig Generation for De Novo Long-Read Genome Assembly"
// (Guidi et al., ICPP 2022).
//
// ELBA assembles long erroneous reads into contigs with the
// Overlap–Layout–Consensus paradigm, executed as sparse matrix computations
// on a (simulated) distributed-memory machine: overlap detection is a
// distributed SpGEMM C = A·Aᵀ, the layout phase is a bidirected transitive
// reduction, and the contig generation phase — the paper's contribution —
// masks branches, finds linear components with Awerbuch–Shiloach connected
// components, load-balances contigs with LPT multiway number partitioning,
// redistributes each contig's reads to one rank via the induced-subgraph
// communication, and assembles locally with a linear DFS walk.
//
// Quick start — configure an Assembler with functional options, then
// assemble any Source (in-memory reads, FASTA, or a simulated dataset):
//
//	ds := elba.SimulateDataset(elba.CElegansLike, 100_000, 42)
//	asm, err := elba.New(elba.WithPreset(elba.CElegansLike), elba.WithRanks(4))
//	out, err := asm.Assemble(ctx, elba.FromDataset(ds))
//	rep := elba.Evaluate(ds.Genome, out.Contigs)
//
// New validates everything upfront: a bad rank count, k-mer length, backend
// name and negative thresholds are reported together, each error naming its
// field. Cancelling ctx aborts a running assembly promptly.
//
// The pipeline is a stage graph (FastaReader → CountKmer → DetectOverlap →
// Alignment → TrReduction → ExtractContig), and the Assembler exposes it:
// RunUntil stops after any stage and returns an Artifacts snapshot;
// ResumeFrom continues a snapshot — any number of times, under different
// downstream parameters — without re-running the expensive overlap phase.
// A TR-parameter sweep therefore aligns once:
//
//	arts, err := asm.RunUntil(ctx, elba.FromDataset(ds), elba.StageAlignment)
//	loose, _ := elba.New(elba.WithPreset(elba.CElegansLike), elba.WithRanks(4), elba.WithTRFuzz(500))
//	chain, err := loose.ResumeFrom(ctx, arts, elba.StageExtractContig)
//	out, err := chain.Output()
//
// Contigs are bit-identical between monolithic, staged and resumed
// execution.
//
// The Alignment stage dispatches through a pluggable backend: the default
// x-drop DP, or gap-affine wavefront alignment (much faster on low-error
// reads) via elba.WithBackend(elba.BackendWFA). Execution is hybrid like
// the paper's MPI + threads design: each simulated rank drives the
// alignment and k-mer hot paths through an intra-rank worker pool of
// WithThreads workers, and with WithAsync(true) (the default) the
// communication-heavy exchanges run on the nonblocking mpi layer,
// overlapped against local computation. Contigs are bit-identical at any
// thread count and in either communication mode.
//
// Ranks talk over a pluggable transport, selected with
// WithTransport(elba.TransportInproc) — goroutines sharing in-process
// mailboxes, the default — or WithTransport(elba.TransportTCP), a socket
// mesh: loopback inside one process by default, or spanning OS processes
// and machines when each process joins a rendezvous (`elba -serve-rendezvous`
// plus one `elba -transport tcp -join host:port -rank R -np P` worker per
// rank; see OPERATIONS.md). The third transport, TransportProc, is the
// single-host special case driven by the cmd/elba launcher (`elba
// -transport proc -np 4`), which re-execs one worker per rank. Contigs and
// byte/message counters are identical on every transport. If a rank
// process dies mid-run its peers abort promptly with an error naming the
// dead rank and the per-stage restart point; WithFailureHandler observes
// the cause and FailedRank recovers the attribution.
//
// Observability is opt-in and result-neutral: WithTrace records per-rank
// event spans (stage bodies, pool chunks, mpi sends/receives/waits) for
// Perfetto (`elba -traceout run.json`, then load run.json in
// ui.perfetto.dev); WithMetrics collects typed counters/gauges/histograms;
// and Output.Manifest builds the machine-readable RUN.json run record
// (options, per-stage comm breakdown with the overlap/exposed split, contig
// checksum) that benchguard -manifest verifies. Contigs and byte/message
// counters are bit-identical with observability on or off.
//
// The pre-Assembler entry points (Assemble, AssembleFasta, DefaultOptions,
// PresetOptions) remain as thin wrappers over the same engine.
package elba

import (
	"errors"
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/polish"
	"repro/internal/quality"
	"repro/internal/readsim"
)

// Options parameterizes an assembly run; P is the simulated rank count and
// must be a perfect square (the paper's 2D grid requirement). The
// AlignBackend field selects the Alignment-stage implementation
// (BackendXDrop or BackendWFA; empty means x-drop). The Threads field sets
// the intra-rank worker count for the alignment and k-mer hot paths — the
// hybrid ranks × threads model (0 = GOMAXPROCS split across ranks). The
// Async field (default true) overlaps the SUMMA, k-mer and read-sequence
// exchanges against computation via nonblocking communication. Contigs are
// bit-identical for every Threads and Async value.
//
// Options.Fingerprint and Options.FingerprintThrough(stage) are the stable
// content addresses of the result-determining options: FingerprintThrough
// covers only the options consumed by stages up to and including stage (the
// "option prefix"), which is what checkpoint validation enforces and the
// elbad artifact cache keys on — two option sets sharing a prefix through
// Alignment may share one post-Alignment artifact.
type Options = pipeline.Options

// Alignment backend names for Options.AlignBackend.
const (
	BackendXDrop = pipeline.BackendXDrop // banded antidiagonal x-drop DP
	BackendWFA   = pipeline.BackendWFA   // gap-affine wavefront alignment
)

// AlignBackends lists the built-in alignment backends.
func AlignBackends() []string { return pipeline.AlignBackends() }

// Transport names for Options.Transport. The in-process mailbox is the
// reference configuration; the tcp transport runs the same program over a
// loopback socket mesh, and `elba -transport proc` runs every rank as a
// separate OS process. Contigs are bit-identical and traffic counters equal
// across all transports.
const (
	TransportInproc = pipeline.TransportInproc // goroutines + in-process mailboxes (default)
	TransportTCP    = pipeline.TransportTCP    // loopback TCP mesh within one process
	TransportProc   = pipeline.TransportProc   // one OS process per rank (cmd/elba -transport proc)
)

// Transports lists the transports selectable through the library API.
func Transports() []string { return pipeline.Transports() }

// FailedRank reports the world rank a failure is attributed to, when the
// transport could name one — a worker process that died mid-run, a broken
// mesh connection, a peer that aborted the job. It unwraps the error chains
// returned by Assemble/RunUntil/ResumeFrom on a distributed run and the
// causes delivered to WithFailureHandler; ok is false for errors with no
// rank attribution (validation errors, context cancellation).
func FailedRank(err error) (rank int, ok bool) {
	var rf *transport.RankFailure
	if errors.As(err, &rf) {
		return rf.Rank, true
	}
	return 0, false
}

// Output is an assembled contig set plus run statistics.
type Output = pipeline.Output

// Stats carries per-stage timings (paper Figure 5 names) and counters.
type Stats = pipeline.Stats

// Contig is one assembled chain of reads.
type Contig = core.Contig

// Trace collects per-rank event spans for Perfetto export (WithTrace);
// write it with Trace.WriteFile after the run.
type Trace = obs.Trace

// MetricSet collects per-rank typed metrics (WithMetrics); snapshot it with
// MetricSet.WriteFile or fold it into the manifest.
type MetricSet = obs.MetricSet

// Manifest is the machine-readable run record (RUN.json), built by
// Output.Manifest(opt); obs-level Verify checks its internal invariants.
type Manifest = obs.Manifest

// NewTrace allocates one event lane per rank (pass at least the rank count).
func NewTrace(ranks int) *Trace { return obs.NewTrace(ranks) }

// NewMetricSet allocates one metric registry per rank.
func NewMetricSet(ranks int) *MetricSet { return obs.NewMetricSet(ranks) }

// QualityReport holds the Table 4 metrics (completeness, longest contig,
// contig count, misassemblies) plus N50 and coverage uniformity.
type QualityReport = quality.Report

// Dataset is a synthetic Table 2 dataset substitute: reference genome plus
// simulated reads.
type Dataset = readsim.Dataset

// Read is a simulated read with its ground-truth placement.
type Read = readsim.Read

// BaselineConfig parameterizes the shared-memory comparator assembler.
type BaselineConfig = baseline.Config

// BaselineResult is the comparator's output.
type BaselineResult = baseline.Result

// Dataset presets mirroring the paper's Table 2.
const (
	CElegansLike = readsim.CElegansLike
	OSativaLike  = readsim.OSativaLike
	HSapiensLike = readsim.HSapiensLike
)

// DefaultOptions returns the low-error-rate configuration (k=31, x=15) at P
// simulated ranks.
func DefaultOptions(p int) Options { return pipeline.DefaultOptions(p) }

// PresetOptions returns per-dataset parameters mirroring §5 (k=17 for the
// high-error preset).
func PresetOptions(preset readsim.Preset, p int) Options {
	return pipeline.PresetOptions(preset, p)
}

// Assemble runs the full distributed pipeline on the given read sequences.
func Assemble(reads [][]byte, opt Options) (*Output, error) {
	return pipeline.Run(reads, opt)
}

// AssembleFasta reads a FASTA stream and assembles it.
func AssembleFasta(r io.Reader, opt Options) (*Output, error) {
	reads, err := readFastaSeqs(r)
	if err != nil {
		return nil, err
	}
	return Assemble(reads, opt)
}

// SimulateDataset generates a deterministic synthetic dataset mirroring a
// Table 2 row at the given genome size.
func SimulateDataset(preset readsim.Preset, genomeLen int, seed int64) *Dataset {
	return readsim.Generate(preset, genomeLen, seed)
}

// ReadSeqs extracts the raw sequences from simulated reads.
func ReadSeqs(reads []Read) [][]byte { return readsim.Seqs(reads) }

// Evaluate computes assembly-quality metrics against a known reference.
func Evaluate(reference []byte, contigs []Contig) *QualityReport {
	seqs := make([][]byte, len(contigs))
	for i, c := range contigs {
		seqs[i] = c.Seq
	}
	return quality.Evaluate(reference, seqs)
}

// BestOverlapBaseline runs the shared-memory greedy best-overlap-graph
// comparator (the Tables 3–4 stand-in for Hifiasm/HiCanu).
func BestOverlapBaseline(reads [][]byte, cfg BaselineConfig) *BaselineResult {
	return baseline.BestOverlapAssemble(reads, cfg)
}

// BaselineFromOptions derives a comparator config matching the pipeline's
// overlap parameters with the given thread count.
func BaselineFromOptions(o Options, threads int) BaselineConfig {
	return BaselineConfig{
		K:            o.K,
		ReliableLow:  o.ReliableLow,
		ReliableHigh: o.ReliableHigh,
		Align:        alignParams(o),
		MinOverlap:   o.MinOverlap,
		MinScoreFrac: o.MinScoreFrac,
		MaxOverhang:  o.MaxOverhang,
		Threads:      threads,
	}
}

// PolishConfig parameterizes the contig-merging pass.
type PolishConfig = polish.Config

// DefaultPolishConfig suits contigs from the low-error presets.
func DefaultPolishConfig() PolishConfig { return polish.DefaultConfig() }

// MergeContigs implements the paper's future-work polishing idea (§7):
// overlap detection within the contig set joins overlapping contigs into
// longer sequences; contained contigs are dropped.
func MergeContigs(contigs []Contig, cfg PolishConfig) []Contig {
	return polish.Merge(contigs, cfg)
}

// WriteContigs serializes contigs as FASTA records named contig_0000….
func WriteContigs(w io.Writer, contigs []Contig) error {
	recs := make([]fasta.Record, len(contigs))
	for i, c := range contigs {
		recs[i] = fasta.Record{ID: contigName(i, c), Seq: c.Seq}
	}
	return fasta.Write(w, recs, 80)
}
