package elba

import (
	"context"
	"io"
	"os"

	"repro/internal/pipeline"
	"repro/internal/readsim"
)

// Preset selects a Table 2 dataset substitute (CElegansLike, OSativaLike,
// HSapiensLike).
type Preset = readsim.Preset

// Stage names of the pipeline graph, for Assembler.RunUntil/ResumeFrom, in
// execution order.
const (
	StageFastaReader   = pipeline.StageFastaReader
	StageCountKmer     = pipeline.StageCountKmer
	StageDetectOverlap = pipeline.StageDetectOverlap
	StageAlignment     = pipeline.StageAlignment
	StageTrReduction   = pipeline.StageTrReduction
	StageExtractContig = pipeline.StageExtractContig
)

// StageNames lists the pipeline's stages in execution order.
func StageNames() []string { return pipeline.StageNames() }

// Artifacts is a resume point: the typed bag of everything a partial run
// produced (world, grid, read store, overlap result, string graph, contigs).
// Produced by Assembler.RunUntil, consumed — any number of times — by
// Assembler.ResumeFrom; call Output once the final stage has run.
type Artifacts = pipeline.Artifacts

// Observer streams per-stage progress (start callbacks, post-stage wall time
// and cross-rank trace aggregates) from a running assembly.
type Observer = pipeline.Observer

// Option configures an Assembler. Options apply in the order given, so put
// WithPreset first: it swaps in the whole per-dataset parameter set
// (preserving a previously chosen rank count), and later options override
// individual fields.
type Option func(*Assembler)

// WithPreset tunes all parameters for a Table 2 dataset substitute, like
// PresetOptions (k=17 for the high-error preset, paper defaults otherwise).
func WithPreset(p Preset) Option {
	return func(a *Assembler) { a.opt = pipeline.PresetOptions(p, a.opt.P) }
}

// WithRanks sets the simulated rank count P (a perfect square: 1, 4, 9, …).
func WithRanks(p int) Option { return func(a *Assembler) { a.opt.P = p } }

// WithThreads sets the intra-rank worker count for the alignment and k-mer
// hot paths (0 = GOMAXPROCS split across ranks).
func WithThreads(n int) Option { return func(a *Assembler) { a.opt.Threads = n } }

// WithBackend selects the alignment backend (BackendXDrop or BackendWFA).
func WithBackend(name string) Option { return func(a *Assembler) { a.opt.AlignBackend = name } }

// WithK overrides the k-mer length.
func WithK(k int) Option { return func(a *Assembler) { a.opt.K = k } }

// WithXDrop overrides the x-drop / wavefront-prune threshold.
func WithXDrop(x int32) Option { return func(a *Assembler) { a.opt.XDrop = x } }

// WithAsync selects nonblocking (true, the default) or blocking
// communication; contigs are identical either way.
func WithAsync(async bool) Option { return func(a *Assembler) { a.opt.Async = async } }

// WithTransport selects the rank transport (TransportInproc or
// TransportTCP; TransportProc additionally needs the cmd/elba process
// launcher). Contigs and traffic counters are identical across transports.
func WithTransport(name string) Option { return func(a *Assembler) { a.opt.Transport = name } }

// WithFailureHandler registers fn to run exactly once if a run's world is
// torn down early — a rank process died, a peer aborted the job, or the
// context was cancelled — with the cause. When the transport can attribute
// the failure to a specific rank (a worker killed mid-run, a broken
// connection), FailedRank(err) reports which one; the same attribution is
// woven into the error Assemble returns, along with the per-stage restart
// point when earlier stages completed. fn runs on the goroutine that
// detected the failure, before the run returns: keep it quick (log, flip a
// flag) and do not call back into the assembler from it.
func WithFailureHandler(fn func(error)) Option {
	return func(a *Assembler) { a.opt.OnFailure = fn }
}

// WithCheckpoint makes every run of the assembler write durable checkpoints
// under dir: after each completed stage (every = "" or "all"), or only after
// the named stage, the engine persists per-rank state files plus a
// rank-0-committed manifest to dir/<stage>/. A later assembler with equal
// algorithmic options finishes the run with AssembleFrom(dir). Checkpointing
// never changes contigs, traffic counters or the run manifest.
func WithCheckpoint(dir, every string) Option {
	return func(a *Assembler) {
		a.opt.CheckpointDir = dir
		a.opt.CheckpointEvery = every
	}
}

// WithTRFuzz overrides the transitive-reduction fuzz — a downstream-only
// parameter, so chains resumed from a post-Alignment snapshot may differ in
// it freely.
func WithTRFuzz(fuzz int32) Option { return func(a *Assembler) { a.opt.TRFuzz = fuzz } }

// WithMaxOverhang overrides the dovetail overhang tolerance.
func WithMaxOverhang(h int32) Option { return func(a *Assembler) { a.opt.MaxOverhang = h } }

// WithOptions replaces the whole option set (the escape hatch for fields
// without a dedicated Option).
func WithOptions(o Options) Option { return func(a *Assembler) { a.opt = o } }

// WithObserver attaches a progress observer to every run of the assembler.
func WithObserver(obs Observer) Option {
	return func(a *Assembler) { a.obs = append(a.obs, obs) }
}

// WithTrace attaches an event trace (NewTrace(p) with p ≥ the rank count):
// stage bodies, worker-pool chunks and mpi operations record spans into
// per-rank ring buffers, exported with Trace.WriteFile as Perfetto-loadable
// JSON. Tracing never changes contigs or traffic counters.
func WithTrace(t *Trace) Option { return func(a *Assembler) { a.opt.Trace = t } }

// WithMetrics attaches a metric set (NewMetricSet(p) with p ≥ the rank
// count): the mpi layer and the hot-path stages register typed counters,
// gauges and histograms per rank, merged deterministically for the manifest
// and MetricSet.WriteFile.
func WithMetrics(m *MetricSet) Option { return func(a *Assembler) { a.opt.Metrics = m } }

// Assembler is the configured entry point of the public API: build one with
// New (all parameter errors surface there, together), then Assemble — or
// RunUntil / ResumeFrom for partial runs and parameter sweeps that reuse
// the expensive overlap phase. An Assembler is immutable after New and safe
// to reuse across inputs.
type Assembler struct {
	opt Options
	obs []Observer
}

// New builds an Assembler from functional options over the low-error
// defaults at P=1. It validates everything upfront: a bad rank count,
// k-mer length, backend name and negative thresholds are all reported in
// one error rather than surfacing deep inside a run.
func New(opts ...Option) (*Assembler, error) {
	a := &Assembler{opt: pipeline.DefaultOptions(1)}
	for _, o := range opts {
		o(a)
	}
	if err := a.opt.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Options returns the assembler's validated option set.
func (a *Assembler) Options() Options { return a.opt }

func (a *Assembler) engine() (*pipeline.Engine, error) {
	return pipeline.Plan(a.opt, a.obs...)
}

// Assemble runs the full pipeline on the source's reads. Cancelling ctx
// aborts the run promptly: every simulated rank unwinds and Assemble
// returns ctx.Err().
func (a *Assembler) Assemble(ctx context.Context, src Source) (*Output, error) {
	reads, err := src.Reads()
	if err != nil {
		return nil, err
	}
	eng, err := a.engine()
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx, reads)
}

// AssembleFrom finishes a run from the most advanced committed checkpoint
// under dir (written by an assembler configured with checkpointing — see
// Options.CheckpointDir): it loads the per-rank state onto a fresh world,
// verifies the checkpoint's options fingerprint and reads checksum against
// this assembler and source, resumes the remaining stages, and returns the
// completed Output. Contigs and traffic counters are bit-identical to an
// undisturbed run. src must serve the original input; mismatched options or
// reads are refused with an explanatory error, and a corrupt or truncated
// rank file fails with an error naming the rank and file.
func (a *Assembler) AssembleFrom(ctx context.Context, src Source, dir string) (*Output, error) {
	reads, err := src.Reads()
	if err != nil {
		return nil, err
	}
	eng, err := a.engine()
	if err != nil {
		return nil, err
	}
	arts, err := eng.LoadCheckpoint(ctx, reads, dir)
	if err != nil {
		return nil, err
	}
	defer arts.Close()
	fin, err := eng.ResumeFrom(ctx, arts, StageExtractContig)
	if err != nil {
		return nil, err
	}
	return fin.Output()
}

// LoadCheckpoint restores the most advanced committed checkpoint under dir
// as an Artifacts snapshot on a fresh world — the resume point a crashed run
// left behind. Continue it with ResumeFrom (possibly under downstream-
// modified options, like any snapshot); AssembleFrom is the one-call
// wrapper. The caller owns the returned artifacts' world (Close it).
func (a *Assembler) LoadCheckpoint(ctx context.Context, src Source, dir string) (*Artifacts, error) {
	reads, err := src.Reads()
	if err != nil {
		return nil, err
	}
	eng, err := a.engine()
	if err != nil {
		return nil, err
	}
	return eng.LoadCheckpoint(ctx, reads, dir)
}

// RunUntil executes the pipeline's stage graph up to and including stage
// (e.g. StageAlignment) and returns the Artifacts snapshot for later
// ResumeFrom calls.
func (a *Assembler) RunUntil(ctx context.Context, src Source, stage string) (*Artifacts, error) {
	reads, err := src.Reads()
	if err != nil {
		return nil, err
	}
	eng, err := a.engine()
	if err != nil {
		return nil, err
	}
	return eng.RunUntil(ctx, reads, stage)
}

// ResumeFrom continues a snapshot through stage, under THIS assembler's
// options — which may differ from the snapshot's in parameters downstream
// of the resume point (TR fuzz, overhang, …). The snapshot is never
// modified, so one RunUntil(…, StageAlignment) can seed a whole parameter
// sweep without re-running k-mer counting, SpGEMM or alignment.
func (a *Assembler) ResumeFrom(ctx context.Context, arts *Artifacts, stage string) (*Artifacts, error) {
	eng, err := a.engine()
	if err != nil {
		return nil, err
	}
	return eng.ResumeFrom(ctx, arts, stage)
}

// Source abstracts where reads come from: in-memory sequences, FASTA
// streams or files, and simulated datasets.
type Source interface {
	// Reads returns the read sequences to assemble.
	Reads() ([][]byte, error)
}

type seqsSource [][]byte

func (s seqsSource) Reads() ([][]byte, error) { return s, nil }

// FromSeqs wraps in-memory read sequences as a Source.
func FromSeqs(reads [][]byte) Source { return seqsSource(reads) }

// FromReads wraps simulated reads (with ground-truth placements) as a
// Source of their sequences.
func FromReads(reads []Read) Source { return seqsSource(readsim.Seqs(reads)) }

// FromDataset assembles a simulated dataset's reads.
func FromDataset(ds *Dataset) Source { return seqsSource(readsim.Seqs(ds.Reads)) }

type fastaSource struct{ r io.Reader }

func (s fastaSource) Reads() ([][]byte, error) { return readFastaSeqs(s.r) }

// FromFasta reads a FASTA stream as a Source. The stream is consumed on the
// first Reads call.
func FromFasta(r io.Reader) Source { return fastaSource{r: r} }

type fastaFileSource string

func (s fastaFileSource) Reads() ([][]byte, error) {
	f, err := os.Open(string(s))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFastaSeqs(f)
}

// FromFastaFile opens and reads a FASTA file on each Reads call.
func FromFastaFile(path string) Source { return fastaFileSource(path) }

type simSource struct {
	preset    Preset
	genomeLen int
	seed      int64
}

func (s simSource) Reads() ([][]byte, error) {
	return readsim.Seqs(readsim.Generate(s.preset, s.genomeLen, s.seed).Reads), nil
}

// FromSimulation generates a deterministic synthetic dataset on demand and
// serves its reads (SimulateDataset as a Source; use FromDataset to also
// keep the reference genome for evaluation).
func FromSimulation(preset Preset, genomeLen int, seed int64) Source {
	return simSource{preset: preset, genomeLen: genomeLen, seed: seed}
}
