package elba

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/readsim"
)

// Flags is the flag→Options plumbing shared by cmd/elba and cmd/experiments
// (previously copied between them): the execution knobs every command
// exposes, with one Register/Apply pair so the flag names, defaults and help
// strings cannot drift apart.
type Flags struct {
	Backend   string // -backend: alignment backend name
	Threads   int    // -threads: intra-rank workers (0 = auto split)
	Comm      string // -comm: async | sync
	Transport string // -transport: inproc | tcp | proc (proc: cmd/elba only)
}

// Register declares the shared flags on fs (pass flag.CommandLine for the
// process-wide set).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Backend, "backend", BackendXDrop,
		"alignment backend: "+strings.Join(AlignBackends(), " | "))
	fs.IntVar(&f.Threads, "threads", 0,
		"intra-rank workers for the alignment/k-mer hot paths (0 = GOMAXPROCS split across ranks)")
	fs.StringVar(&f.Comm, "comm", "async",
		"communication mode: async (nonblocking, comm/compute overlap) | sync (blocking); contigs are identical either way")
	fs.StringVar(&f.Transport, "transport", TransportInproc,
		"rank transport: inproc (goroutines + mailboxes) | tcp (loopback socket mesh) | proc (one OS process per rank; elba only); contigs are identical on all")
}

// Validate checks the -comm spelling (flag syntax, not an Options field);
// backend and thread values are validated with everything else by
// Options.Validate at New/Run time.
func (f *Flags) Validate() error {
	switch f.Comm {
	case "async", "sync":
	default:
		return fmt.Errorf("unknown -comm mode %q (want async|sync)", f.Comm)
	}
	switch f.Transport {
	case "", TransportInproc, TransportTCP, TransportProc:
	default:
		return fmt.Errorf("unknown -transport %q (want inproc|tcp|proc)", f.Transport)
	}
	return nil
}

// Apply validates the flags and copies them onto opt. The proc transport is
// copied verbatim; commands without the process launcher surface the
// validation error from Options.Validate (only cmd/elba sets the endpoint
// hook that makes proc runnable).
func (f *Flags) Apply(opt *Options) error {
	if err := f.Validate(); err != nil {
		return err
	}
	opt.Async = f.AsyncMode()
	opt.AlignBackend = f.Backend
	opt.Threads = f.Threads
	opt.Transport = f.Transport
	return nil
}

// AsyncMode reports the parsed -comm flag as a boolean (async unless
// "sync"); valid once Validate has accepted the spelling. Commands that
// parameterize runs beyond the flag defaults (cmd/experiments sweeps) read
// this instead of Apply.
func (f *Flags) AsyncMode() bool { return f.Comm != "sync" }

// ParsePreset resolves a preset name (celegans | osativa | hsapiens) — the
// -preset flag spelling shared by the commands.
func ParsePreset(name string) (Preset, error) {
	switch name {
	case "celegans":
		return readsim.CElegansLike, nil
	case "osativa":
		return readsim.OSativaLike, nil
	case "hsapiens":
		return readsim.HSapiensLike, nil
	}
	return 0, fmt.Errorf("unknown preset %q (want celegans|osativa|hsapiens)", name)
}
