// Package repro reproduces "Distributed-Memory Parallel Contig Generation
// for De Novo Long-Read Genome Assembly" (Guidi, Raulet, Rokhsar, Oliker,
// Yelick, Buluç — ICPP 2022) as a pure-Go library.
//
// The public API lives in repro/elba; the paper's primary contribution
// (Algorithm 2, distributed contig generation) is internal/core; the
// substrates it depends on (simulated MPI runtime, 2D process grid,
// distributed sparse matrices with SUMMA SpGEMM, distributed k-mer counting,
// x-drop alignment, bidirected string-graph semantics, transitive reduction,
// LACC connected components, LPT partitioning, read simulator, quality
// evaluator and baseline assemblers) each have their own package under
// internal/. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// the paper-versus-measured record of every table and figure.
//
// The benchmark harness in bench_test.go regenerates each table and figure:
//
//	go test -bench=Fig4 -benchtime=1x .
//	go run ./cmd/experiments -exp all
package repro
