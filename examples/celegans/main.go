// The Table 4 scenario: assemble a C. elegans-like dataset with ELBA and
// with the shared-memory best-overlap-graph comparator, and print the
// quality table (completeness, longest contig, contig count,
// misassemblies) for both.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/elba"
)

func main() {
	ds := elba.SimulateDataset(elba.CElegansLike, 120_000, 7)
	fmt.Println(ds.Table2Row())
	reads := elba.ReadSeqs(ds.Reads)

	// ELBA on 9 simulated ranks.
	opt := elba.PresetOptions(elba.CElegansLike, 9)
	t0 := time.Now()
	out, err := elba.Assemble(reads, opt)
	if err != nil {
		log.Fatal(err)
	}
	elbaTime := time.Since(t0)
	elbaRep := elba.Evaluate(ds.Genome, out.Contigs)

	// The comparator: multithreaded greedy best-overlap-graph assembler.
	bcfg := elba.BaselineFromOptions(opt, runtime.NumCPU())
	t0 = time.Now()
	bres := elba.BestOverlapBaseline(reads, bcfg)
	bogTime := time.Since(t0)
	bogRep := elba.Evaluate(ds.Genome, bres.Contigs)

	fmt.Printf("\n%-22s %14s %14s %9s %13s %10s\n",
		"tool", "completeness", "longest", "contigs", "misassembled", "runtime")
	row := func(name string, r *elba.QualityReport, d time.Duration) {
		fmt.Printf("%-22s %13.2f%% %14d %9d %13d %10s\n",
			name, r.Completeness, r.LongestContig, r.NumContigs, r.Misassemblies, d.Round(time.Millisecond))
	}
	row("ELBA (9 ranks)", elbaRep, elbaTime)
	row("BestOverlap (greedy)", bogRep, bogTime)
	fmt.Println("\nLike the paper's Table 4: ELBA reaches competitive completeness and few")
	fmt.Println("misassemblies, with shorter contigs (no polishing phase, §6.2).")
}
