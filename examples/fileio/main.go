// File-based workflow: the same loop a user runs with the CLI tools, done
// through the library — simulate a dataset to FASTA files, assemble from
// the FASTA, polish, write contigs, and evaluate against the reference.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/elba"
	"repro/internal/fasta"
)

func main() {
	dir, err := os.MkdirTemp("", "elba-fileio")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	readsPath := filepath.Join(dir, "reads.fa")
	refPath := filepath.Join(dir, "ref.fa")
	contigsPath := filepath.Join(dir, "contigs.fa")

	// 1. Simulate and persist a dataset.
	ds := elba.SimulateDataset(elba.CElegansLike, 60_000, 23)
	writeFasta(readsPath, readRecords(ds))
	writeFasta(refPath, []fasta.Record{{ID: "reference", Seq: ds.Genome}})
	fmt.Printf("wrote %d reads to %s\n", len(ds.Reads), readsPath)

	// 2. Assemble from the FASTA file.
	f, err := os.Open(readsPath)
	if err != nil {
		log.Fatal(err)
	}
	out, err := elba.AssembleFasta(f, elba.PresetOptions(elba.CElegansLike, 4))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Polish (merge overlapping contigs) and write the assembly.
	out.Contigs = elba.MergeContigs(out.Contigs, elba.DefaultPolishConfig())
	cf, err := os.Create(contigsPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := elba.WriteContigs(cf, out.Contigs); err != nil {
		log.Fatal(err)
	}
	cf.Close()
	fmt.Printf("wrote %d contigs to %s\n", len(out.Contigs), contigsPath)

	// 4. Evaluate against the persisted reference.
	rf, err := os.Open(refPath)
	if err != nil {
		log.Fatal(err)
	}
	refRecs, err := fasta.Read(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	rep := elba.Evaluate(refRecs[0].Seq, out.Contigs)
	fmt.Printf("completeness %.2f%%, longest %d, N50 %d, misassembled %d\n",
		rep.Completeness, rep.LongestContig, rep.N50, rep.Misassemblies)
}

func readRecords(ds *elba.Dataset) []fasta.Record {
	recs := make([]fasta.Record, len(ds.Reads))
	for i, r := range ds.Reads {
		recs[i] = fasta.Record{ID: fmt.Sprintf("read_%06d", i), Seq: r.Seq}
	}
	return recs
}

func writeFasta(path string, recs []fasta.Record) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fasta.Write(f, recs, 80); err != nil {
		log.Fatal(err)
	}
}
