// Quickstart: simulate a small genome, assemble it on 4 simulated ranks,
// and check the contigs against the reference — the smallest end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"repro/elba"
)

func main() {
	// 1. A synthetic 50 kbp C. elegans-like dataset (depth 40, 0.5% error).
	ds := elba.SimulateDataset(elba.CElegansLike, 50_000, 42)
	fmt.Println(ds.Table2Row())

	// 2. Assemble on a 2×2 simulated process grid with the paper's
	//    low-error parameters (k=31, x-drop 15).
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), elba.PresetOptions(elba.CElegansLike, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d contigs from %d reads (%d candidate pairs, %d overlaps kept)\n",
		len(out.Contigs), out.Stats.NumReads, out.Stats.CandidatePairs, out.Stats.KeptOverlaps)
	for i, c := range out.Contigs {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(out.Contigs)-5)
			break
		}
		fmt.Printf("  contig %d: %6d bases from %4d reads\n", i, len(c.Seq), len(c.Reads))
	}

	// 3. Evaluate against the known reference (the QUAST substitute).
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Printf("completeness %.2f%%, longest %d, N50 %d, misassembled %d\n",
		rep.Completeness, rep.LongestContig, rep.N50, rep.Misassemblies)
}
