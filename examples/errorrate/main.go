// The Figure 6 scenario: the high-error H. sapiens-like dataset (15% error,
// k=17), plus an error-rate sweep showing how assembly quality degrades —
// the motivation for the paper's choice of per-dataset parameters (§5).
package main

import (
	"fmt"
	"log"

	"repro/elba"
	"repro/internal/pipeline"
	"repro/internal/readsim"
)

func main() {
	// Part 1: H. sapiens-like preset end to end.
	ds := elba.SimulateDataset(elba.HSapiensLike, 60_000, 13)
	fmt.Println(ds.Table2Row())
	out, err := elba.Assemble(elba.ReadSeqs(ds.Reads), elba.PresetOptions(elba.HSapiensLike, 4))
	if err != nil {
		log.Fatal(err)
	}
	rep := elba.Evaluate(ds.Genome, out.Contigs)
	fmt.Printf("15%% error, k=17: %d contigs, longest %d, completeness %.1f%%\n\n",
		len(out.Contigs), rep.LongestContig, rep.Completeness)
	fmt.Println("Stage breakdown (max across ranks):")
	fmt.Print(out.Stats.Timers.Breakdown(pipeline.MainStages))

	// Part 2: error-rate sweep on a fixed genome.
	fmt.Printf("\n%-8s %8s %10s %14s %9s\n", "error", "contigs", "longest", "completeness", "overlaps")
	genome := readsim.Genome(readsim.GenomeConfig{Length: 50_000, Seed: 17})
	for _, e := range []float64{0, 0.005, 0.02, 0.05, 0.10} {
		reads := readsim.Simulate(genome, readsim.ReadConfig{
			Depth: 15, MeanLen: 2500, ErrorRate: e, Seed: 19,
		})
		opt := elba.PresetOptions(elba.CElegansLike, 4)
		opt.K = 21 // shorter k survives higher error rates
		opt.XDrop = 30
		opt.MinScoreFrac = 0.2
		res, err := elba.Assemble(readsim.Seqs(reads), opt)
		if err != nil {
			log.Fatal(err)
		}
		r := elba.Evaluate(genome, res.Contigs)
		fmt.Printf("%-8.1f %8d %10d %13.1f%% %9d\n",
			e*100, len(res.Contigs), r.LongestContig, r.Completeness, res.Stats.KeptOverlaps)
	}
}
