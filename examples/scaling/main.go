// The Figure 4 scenario: strong scaling of the whole pipeline across
// simulated rank counts, reporting modeled distributed runtime (work and
// traffic counters + calibrated rates + Aries-like network model — the
// hardware substitution of DESIGN.md), wall time and parallel efficiency.
package main

import (
	"fmt"
	"log"

	"repro/elba"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/readsim"
)

func main() {
	ds := elba.SimulateDataset(elba.CElegansLike, 100_000, 11)
	fmt.Println(ds.Table2Row())
	reads := readsim.Seqs(ds.Reads)

	stages := pipeline.MainStages
	ranks := []int{1, 4, 16, 36}
	var cal perfmodel.Calibration
	var rows []perfmodel.ScalingRow
	var baseT float64
	for _, p := range ranks {
		out, err := elba.Assemble(reads, elba.PresetOptions(elba.CElegansLike, p))
		if err != nil {
			log.Fatal(err)
		}
		if cal == nil {
			// Rates come from the single-rank run, where measured stage
			// time is pure local compute.
			cal = perfmodel.Calibrate(out.Stats.Timers, stages)
		}
		t := perfmodel.Total(out.Stats.Timers, stages, cal, perfmodel.Aries())
		if baseT == 0 {
			baseT = t
		}
		rows = append(rows, perfmodel.ScalingRow{
			P:          p,
			Modeled:    t,
			Wall:       out.Stats.WallTime,
			Efficiency: perfmodel.Efficiency(ranks[0], baseT, p, t),
			CommBytes:  out.Stats.CommBytes,
		})
	}
	fmt.Println("\nStrong scaling (Figure 4 shape):")
	fmt.Print(perfmodel.FormatScaling(rows))
	fmt.Println("\nThe paper reports 75–80% efficiency at 128 Cori nodes; the modeled")
	fmt.Println("curve shows the same shape: near-linear compute scaling eroded by")
	fmt.Println("communication in the latency-bound later stages.")
}
