package fasta

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/mpi"
)

// DistStore is the block-distributed read store: world rank r owns the
// contiguous read-id range grid.BlockRange(n, P, r). Read lengths are
// replicated everywhere (they are a few bytes per read and every pipeline
// stage needs them); the sequences themselves live only on their owner.
type DistStore struct {
	Comm *mpi.Comm
	N    int      // total number of reads
	Lo   int      // first read id owned by this rank
	Hi   int      // one past the last read id owned
	Seqs [][]byte // Seqs[i] is read Lo+i
	Lens []int32  // global, replicated: Lens[g] = len of read g
}

// FromGlobal builds the store when every rank can deterministically produce
// the full read set (e.g. a seeded simulator): each rank keeps only its
// block. No communication.
func FromGlobal(c *mpi.Comm, all [][]byte) *DistStore {
	n := len(all)
	lo, hi := grid.BlockRange(n, c.Size(), c.Rank())
	seqs := make([][]byte, hi-lo)
	for i := range seqs {
		seqs[i] = all[lo+i]
	}
	lens := make([]int32, n)
	for g, s := range all {
		lens[g] = int32(len(s))
	}
	return &DistStore{Comm: c, N: n, Lo: lo, Hi: hi, Seqs: seqs, Lens: lens}
}

// Scatter distributes reads held by root across all ranks (the parallel
// FastaReader entry point). Non-root ranks pass nil.
func Scatter(c *mpi.Comm, root int, all [][]byte) *DistStore {
	var n int
	if c.Rank() == root {
		n = len(all)
	}
	n = int(mpi.Bcast(c, root, []int64{int64(n)})[0])
	// Flatten sequences into one byte buffer + offsets per destination so the
	// traffic counters see real volume.
	var myBuf []byte
	var myLens []int32
	if c.Rank() == root {
		bufParts := make([][]byte, c.Size())
		lenParts := make([][]int32, c.Size())
		for r := 0; r < c.Size(); r++ {
			lo, hi := grid.BlockRange(n, c.Size(), r)
			for g := lo; g < hi; g++ {
				bufParts[r] = append(bufParts[r], all[g]...)
				lenParts[r] = append(lenParts[r], int32(len(all[g])))
			}
		}
		myBuf = mpi.Scatterv(c, root, bufParts)
		myLens = mpi.Scatterv(c, root, lenParts)
	} else {
		myBuf = mpi.Scatterv[byte](c, root, nil)
		myLens = mpi.Scatterv[int32](c, root, nil)
	}
	lo, hi := grid.BlockRange(n, c.Size(), c.Rank())
	seqs := make([][]byte, hi-lo)
	off := 0
	for i, l := range myLens {
		seqs[i] = myBuf[off : off+int(l)]
		off += int(l)
	}
	// Replicate lengths.
	lens := make([]int32, 0, n)
	flat, _ := mpi.AllgathervFlat(c, myLens)
	lens = append(lens, flat...)
	return &DistStore{Comm: c, N: n, Lo: lo, Hi: hi, Seqs: seqs, Lens: lens}
}

// Owns reports whether this rank owns read g.
func (s *DistStore) Owns(g int) bool { return g >= s.Lo && g < s.Hi }

// Get returns the sequence of a locally owned read.
func (s *DistStore) Get(g int) []byte {
	if !s.Owns(g) {
		panic(fmt.Sprintf("fasta: rank %d asked locally for read %d outside [%d,%d)", s.Comm.Rank(), g, s.Lo, s.Hi))
	}
	return s.Seqs[g-s.Lo]
}

// Owner returns the rank owning read g.
func (s *DistStore) Owner(g int) int { return grid.BlockOwner(s.N, s.Comm.Size(), g) }

// Fetch retrieves the sequences of arbitrary global read ids (collective:
// every rank must call it, possibly with an empty request). Duplicate ids are
// allowed. The result maps each requested id to its sequence.
//
// Implementation: request ids go to their owners with one Alltoallv; owners
// answer with a second Alltoallv whose byte payload is chunk-limited like all
// sequence traffic.
func (s *DistStore) Fetch(ids []int) map[int][]byte {
	p := s.Comm.Size()
	// Deduplicate and route requests.
	uniq := make([]int, 0, len(ids))
	seen := make(map[int]struct{}, len(ids))
	for _, g := range ids {
		if _, ok := seen[g]; ok {
			continue
		}
		seen[g] = struct{}{}
		uniq = append(uniq, g)
	}
	sort.Ints(uniq)
	req := make([][]int64, p)
	for _, g := range uniq {
		o := s.Owner(g)
		req[o] = append(req[o], int64(g))
	}
	got := mpi.Alltoallv(s.Comm, req)
	// Serve: for every requester, concatenated bytes + lengths.
	respBuf := make([][]byte, p)
	for r := 0; r < p; r++ {
		for _, g64 := range got[r] {
			respBuf[r] = append(respBuf[r], s.Get(int(g64))...)
		}
	}
	back := mpi.AlltoallvChunked(s.Comm, respBuf)
	out := make(map[int][]byte, len(uniq))
	for r := 0; r < p; r++ {
		off := 0
		for _, g64 := range req[r] {
			g := int(g64)
			l := int(s.Lens[g])
			out[g] = back[r][off : off+l]
			off += l
		}
	}
	return out
}

// Len returns the length of any read (lengths are replicated).
func (s *DistStore) Len(g int) int { return int(s.Lens[g]) }

// RowColSequences implements diBELLA's sequence exchange for the alignment
// stage: every rank obtains the sequences of all reads in its matrix ROW
// range and COLUMN range. Because reads are block-distributed in world-rank
// order, the reads of grid row i live exactly on the ranks of grid row i, so
// an Allgatherv on the row communicator yields the row-range sequences; the
// column-range sequences then come from the transposed rank, the same
// pattern as the induced-subgraph assignment exchange (Figure 2).
//
// Returned slices are indexed from the row/column range start of an n×n
// matrix with n = s.N. Collective.
func (s *DistStore) RowColSequences(g *grid.Grid) (rowSeqs, colSeqs [][]byte) {
	// Flatten local reads into one buffer so traffic counters see volume.
	var flat []byte
	for _, seq := range s.Seqs {
		flat = append(flat, seq...)
	}
	rowFlat, _ := mpi.AllgathervFlat(g.RowComm, flat)
	rowLo, rowHi := g.MyRowRange(s.N)
	rowSeqs = unflatten(rowFlat, s.Lens[rowLo:rowHi])

	if g.Row == g.Col {
		colSeqs = rowSeqs
		return rowSeqs, colSeqs
	}
	partner := g.TransposedRank()
	const tag = 0x5e9 // arbitrary private tag for this exchange pattern
	mpi.SendChunked(g.Comm, partner, tag, rowFlat)
	colFlat := mpi.RecvChunked[byte](g.Comm, partner, tag)
	colLo, colHi := g.MyColRange(s.N)
	colSeqs = unflatten(colFlat, s.Lens[colLo:colHi])
	return rowSeqs, colSeqs
}

// unflatten splits a concatenated buffer back into per-read slices.
func unflatten(flat []byte, lens []int32) [][]byte {
	out := make([][]byte, len(lens))
	off := 0
	for i, l := range lens {
		out[i] = flat[off : off+int(l)]
		off += int(l)
	}
	if off != len(flat) {
		panic(fmt.Sprintf("fasta: sequence buffer has %d bytes, lengths demand %d", len(flat), off))
	}
	return out
}
