package fasta

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dna"
	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestReadBasic(t *testing.T) {
	in := ">r1 some description\nACGT\nACGT\n>r2\n\nTTTT\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "r1" || string(recs[0].Seq) != "ACGTACGT" {
		t.Fatalf("rec0: %+v", recs[0])
	}
	if recs[1].ID != "r2" || string(recs[1].Seq) != "TTTT" {
		t.Fatalf("rec1: %+v", recs[1])
	}
}

func TestReadNoTrailingNewlineAndCRLF(t *testing.T) {
	recs, err := Read(strings.NewReader(">a\r\nACG\r\nT"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("%+v", recs)
	}
}

func TestReadRejectsLeadingSequence(t *testing.T) {
	if _, err := Read(strings.NewReader("ACGT\n>a\nACGT\n")); err == nil {
		t.Fatal("expected error for sequence before header")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{0, 1, 7, 80} {
		var recs []Record
		for i := 0; i < 20; i++ {
			seq := make([]byte, rng.Intn(300))
			for j := range seq {
				seq[j] = dna.Bases[rng.Intn(4)]
			}
			recs = append(recs, Record{ID: fmt.Sprintf("read_%d", i), Seq: seq})
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs, width); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(recs) {
			t.Fatalf("width %d: %d != %d records", width, len(back), len(recs))
		}
		for i := range recs {
			if back[i].ID != recs[i].ID || !bytes.Equal(back[i].Seq, recs[i].Seq) {
				t.Fatalf("width %d: record %d mismatch", width, i)
			}
		}
	}
}

func makeReads(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	reads := make([][]byte, n)
	for i := range reads {
		s := make([]byte, 10+rng.Intn(50))
		for j := range s {
			s[j] = dna.Bases[rng.Intn(4)]
		}
		reads[i] = s
	}
	return reads
}

func TestDistStoreFromGlobal(t *testing.T) {
	for _, p := range []int{1, 3, 4, 7} {
		reads := makeReads(23, 5)
		err := mpi.Run(p, func(c *mpi.Comm) {
			st := FromGlobal(c, reads)
			if st.N != 23 {
				panic("N wrong")
			}
			total := mpi.Allreduce(c, st.Hi-st.Lo, func(a, b int) int { return a + b })
			if total != 23 {
				panic("blocks do not cover")
			}
			for g := st.Lo; g < st.Hi; g++ {
				if !bytes.Equal(st.Get(g), reads[g]) {
					panic("local read wrong")
				}
			}
			for g := 0; g < st.N; g++ {
				if st.Len(g) != len(reads[g]) {
					panic("replicated length wrong")
				}
				if st.Owner(g) < 0 || st.Owner(g) >= p {
					panic("owner out of range")
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestDistStoreScatterMatchesFromGlobal(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		reads := makeReads(31, 9)
		err := mpi.Run(p, func(c *mpi.Comm) {
			var input [][]byte
			if c.Rank() == 0 {
				input = reads
			}
			st := Scatter(c, 0, input)
			ref := FromGlobal(c, reads)
			if st.Lo != ref.Lo || st.Hi != ref.Hi || st.N != ref.N {
				panic("ranges differ")
			}
			if !reflect.DeepEqual(st.Lens, ref.Lens) {
				panic("lens differ")
			}
			for g := st.Lo; g < st.Hi; g++ {
				if !bytes.Equal(st.Get(g), ref.Get(g)) {
					panic("seq differs")
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestDistStoreFetch(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		reads := makeReads(40, 11)
		err := mpi.Run(p, func(c *mpi.Comm) {
			st := FromGlobal(c, reads)
			// Each rank fetches a strided subset, including remote ids and
			// duplicates.
			var ids []int
			for g := c.Rank(); g < st.N; g += 3 {
				ids = append(ids, g, g) // duplicate on purpose
			}
			got := st.Fetch(ids)
			for _, g := range ids {
				if !bytes.Equal(got[g], reads[g]) {
					panic(fmt.Sprintf("fetch read %d wrong", g))
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestRowColSequences(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16} {
		reads := makeReads(37, 13)
		err := mpi.Run(p, func(c *mpi.Comm) {
			g := grid.New(c)
			st := FromGlobal(c, reads)
			rowSeqs, colSeqs := st.RowColSequences(g)
			rlo, rhi := g.MyRowRange(st.N)
			if len(rowSeqs) != rhi-rlo {
				panic("row span wrong")
			}
			for i, seq := range rowSeqs {
				if !bytes.Equal(seq, reads[rlo+i]) {
					panic(fmt.Sprintf("row read %d wrong", rlo+i))
				}
			}
			clo, chi := g.MyColRange(st.N)
			if len(colSeqs) != chi-clo {
				panic("col span wrong")
			}
			for i, seq := range colSeqs {
				if !bytes.Equal(seq, reads[clo+i]) {
					panic(fmt.Sprintf("col read %d wrong", clo+i))
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestRowColSequencesChunked(t *testing.T) {
	old := mpi.MaxMessageBytes
	mpi.MaxMessageBytes = 256 // force chunking of the transpose exchange
	defer func() { mpi.MaxMessageBytes = old }()
	reads := makeReads(25, 17)
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		st := FromGlobal(c, reads)
		_, colSeqs := st.RowColSequences(g)
		clo, _ := g.MyColRange(st.N)
		for i, seq := range colSeqs {
			if !bytes.Equal(seq, reads[clo+i]) {
				panic("chunked col read wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistStoreFetchChunked(t *testing.T) {
	old := mpi.MaxMessageBytes
	mpi.MaxMessageBytes = 128 // force the chunked path
	defer func() { mpi.MaxMessageBytes = old }()
	reads := makeReads(12, 3)
	var mu sync.Mutex
	fetched := 0
	err := mpi.Run(4, func(c *mpi.Comm) {
		st := FromGlobal(c, reads)
		ids := []int{0, 5, 11}
		got := st.Fetch(ids)
		for _, g := range ids {
			if !bytes.Equal(got[g], reads[g]) {
				panic("chunked fetch wrong")
			}
		}
		mu.Lock()
		fetched++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 4 {
		t.Fatal("not all ranks fetched")
	}
}
