// Package fasta provides FASTA parsing/serialization and the distributed
// read store used throughout the pipeline (Algorithm 1 line 2 and the read
// sequence communication of §4.3).
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	ID  string
	Seq []byte
}

// Read parses all records from r. Sequence lines may be wrapped; blank lines
// are ignored; the ID is the header up to the first whitespace.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var recs []Record
	var cur *Record
	lineno := 0
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, err
		}
		lineno++
		line = bytes.TrimRight(line, "\r\n")
		if len(line) > 0 {
			if line[0] == '>' {
				header := strings.TrimSpace(string(line[1:]))
				id := header
				if i := strings.IndexAny(header, " \t"); i >= 0 {
					id = header[:i]
				}
				recs = append(recs, Record{ID: id})
				cur = &recs[len(recs)-1]
			} else {
				if cur == nil {
					return nil, fmt.Errorf("fasta: line %d: sequence data before any header", lineno)
				}
				cur.Seq = append(cur.Seq, line...)
			}
		}
		if atEOF {
			break
		}
	}
	return recs, nil
}

// Write serializes records to w with lines wrapped at width columns
// (0 means no wrapping).
func Write(w io.Writer, recs []Record, width int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.ID); err != nil {
			return err
		}
		seq := rec.Seq
		if width <= 0 {
			if _, err := bw.Write(seq); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			continue
		}
		for off := 0; off < len(seq); off += width {
			end := off + width
			if end > len(seq) {
				end = len(seq)
			}
			if _, err := bw.Write(seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		if len(seq) == 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
