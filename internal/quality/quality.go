// Package quality evaluates assemblies against a known reference — the
// QUAST substitute for Table 4. It reports the paper's four metrics
// (completeness, longest contig, contig count, misassembled contigs) plus
// N50 and the coverage uniformity §6.1 mentions.
//
// Contigs are anchored to the reference with unique k-mer seeds and chained
// by diagonal consistency; a contig whose chained segments map to discordant
// reference loci (relocation over 1 kbp, QUAST's threshold, or a strand
// flip) counts as misassembled.
package quality

import (
	"math"
	"sort"

	"repro/internal/kmer"
)

// anchorK is the seed length for mapping contigs onto the reference.
const anchorK = 31

// RelocationThreshold is QUAST's default misassembly distance (1 kbp).
const RelocationThreshold = 1000

// minSegmentAnchors is how many consistent anchors a segment needs before
// it participates in misassembly calls (guards against stray seeds).
const minSegmentAnchors = 3

// Report holds the Table 4 metrics for one assembly.
type Report struct {
	GenomeLen        int
	NumContigs       int     // size of the contig set
	TotalLen         int64   // total assembled bases
	LongestContig    int     // bases
	N50              int     // bases
	Completeness     float64 // % of reference covered by ≥1 aligned contig
	Misassemblies    int     // contigs with discordant segments
	Unaligned        int     // contigs with no reference anchor
	CoverageMean     float64 // mean per-base contig coverage of the reference
	CoverageCV       float64 // coefficient of variation (uniformity; lower=better)
	DuplicationRatio float64 // aligned bases / covered reference bases
}

// refIndex maps each unique canonical k-mer of the reference to its
// position and strand.
type refIndex struct {
	pos map[kmer.Kmer]int32 // position of the k-mer window (forward coords)
	rc  map[kmer.Kmer]bool  // true if the canonical form is the rc window
}

func indexReference(ref []byte) *refIndex {
	multi := map[kmer.Kmer]int{}
	idx := &refIndex{pos: map[kmer.Kmer]int32{}, rc: map[kmer.Kmer]bool{}}
	for i := 0; i+anchorK <= len(ref); i++ {
		fwd := kmer.Encode(ref[i:i+anchorK], anchorK)
		canon, isRC := fwd, false
		if r := kmer.RevComp(fwd, anchorK); r < fwd {
			canon, isRC = r, true
		}
		multi[canon]++
		if multi[canon] == 1 {
			idx.pos[canon] = int32(i)
			idx.rc[canon] = isRC
		}
	}
	// Drop repeated k-mers: only unique anchors are unambiguous.
	for km, c := range multi {
		if c > 1 {
			delete(idx.pos, km)
			delete(idx.rc, km)
		}
	}
	return idx
}

// anchor is one contig→reference seed match.
type anchor struct {
	cpos, rpos int32
	forward    bool // contig strand agrees with reference strand
}

// segment is a chain of diagonal-consistent anchors.
type segment struct {
	refLo, refHi int32 // covered reference range (half-open)
	anchors      int
	forward      bool
}

// mapContig anchors a contig and chains the anchors into segments.
func mapContig(idx *refIndex, contig []byte) []segment {
	if len(contig) < anchorK {
		return nil
	}
	var anchors []anchor
	step := len(contig) / 200
	if step < 7 {
		step = 7
	}
	for i := 0; i+anchorK <= len(contig); i += step {
		fwd := kmer.Encode(contig[i:i+anchorK], anchorK)
		canon, isRC := fwd, false
		if r := kmer.RevComp(fwd, anchorK); r < fwd {
			canon, isRC = r, true
		}
		rp, ok := idx.pos[canon]
		if !ok {
			continue
		}
		// Contig window orientation vs reference window orientation.
		sameStrand := isRC == idx.rc[canon]
		anchors = append(anchors, anchor{cpos: int32(i), rpos: rp, forward: sameStrand})
	}
	if len(anchors) == 0 {
		return nil
	}
	// Chain by diagonal consistency in contig order.
	var segs []segment
	var cur *segment
	var lastDiag int32
	for _, a := range anchors {
		diag := a.rpos - a.cpos
		if !a.forward {
			diag = a.rpos + a.cpos
		}
		if cur != nil && a.forward == cur.forward && abs32(diag-lastDiag) <= RelocationThreshold/2 {
			if a.rpos < cur.refLo {
				cur.refLo = a.rpos
			}
			if a.rpos+anchorK > cur.refHi {
				cur.refHi = a.rpos + anchorK
			}
			cur.anchors++
			lastDiag = diag
			continue
		}
		segs = append(segs, segment{})
		cur = &segs[len(segs)-1]
		cur.refLo, cur.refHi = a.rpos, a.rpos+anchorK
		cur.anchors = 1
		cur.forward = a.forward
		lastDiag = diag
	}
	return segs
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// Evaluate computes the report for a contig set against the reference.
func Evaluate(ref []byte, contigs [][]byte) *Report {
	rep := &Report{GenomeLen: len(ref), NumContigs: len(contigs)}
	lens := make([]int, len(contigs))
	for i, c := range contigs {
		lens[i] = len(c)
		rep.TotalLen += int64(len(c))
		if len(c) > rep.LongestContig {
			rep.LongestContig = len(c)
		}
	}
	rep.N50 = n50(lens)

	idx := indexReference(ref)
	coverage := make([]int32, len(ref))
	var alignedBases int64
	for _, c := range contigs {
		segs := mapContig(idx, c)
		if len(segs) == 0 {
			rep.Unaligned++
			continue
		}
		// Misassembly: more than one substantial segment with discordant
		// placement (strand flip or relocation beyond the threshold).
		var solid []segment
		for _, s := range segs {
			if s.anchors >= minSegmentAnchors {
				solid = append(solid, s)
			}
		}
		mis := false
		for i := 1; i < len(solid); i++ {
			if solid[i].forward != solid[i-1].forward {
				mis = true
				break
			}
			gap := int32(0)
			if solid[i].refLo > solid[i-1].refHi {
				gap = solid[i].refLo - solid[i-1].refHi
			} else if solid[i-1].refLo > solid[i].refHi {
				gap = solid[i-1].refLo - solid[i].refHi
			}
			if gap > RelocationThreshold {
				mis = true
				break
			}
		}
		if mis {
			rep.Misassemblies++
		}
		for _, s := range segs {
			alignedBases += int64(s.refHi - s.refLo)
			for p := s.refLo; p < s.refHi && p < int32(len(ref)); p++ {
				if p >= 0 {
					coverage[p]++
				}
			}
		}
	}
	covered := 0
	var sum, sumSq float64
	for _, c := range coverage {
		if c > 0 {
			covered++
		}
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	if len(ref) > 0 {
		rep.Completeness = 100 * float64(covered) / float64(len(ref))
		mean := sum / float64(len(ref))
		rep.CoverageMean = mean
		if mean > 0 {
			variance := sumSq/float64(len(ref)) - mean*mean
			if variance < 0 {
				variance = 0
			}
			rep.CoverageCV = math.Sqrt(variance) / mean
		}
	}
	if covered > 0 {
		rep.DuplicationRatio = float64(alignedBases) / float64(covered)
	}
	return rep
}

// n50 is the standard contiguity statistic: the length x such that contigs
// of length ≥ x cover half the total assembly.
func n50(lens []int) int {
	if len(lens) == 0 {
		return 0
	}
	sorted := append([]int(nil), lens...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var total, acc int64
	for _, l := range sorted {
		total += int64(l)
	}
	for _, l := range sorted {
		acc += int64(l)
		if 2*acc >= total {
			return l
		}
	}
	return sorted[len(sorted)-1]
}
