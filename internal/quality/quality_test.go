package quality

import (
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

func TestPerfectAssembly(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 1})
	rep := Evaluate(ref, [][]byte{ref})
	if rep.Completeness < 99.5 {
		t.Fatalf("completeness %.2f", rep.Completeness)
	}
	if rep.Misassemblies != 0 || rep.Unaligned != 0 {
		t.Fatalf("mis=%d unaligned=%d", rep.Misassemblies, rep.Unaligned)
	}
	if rep.LongestContig != len(ref) || rep.N50 != len(ref) {
		t.Fatalf("longest=%d n50=%d", rep.LongestContig, rep.N50)
	}
}

func TestReverseComplementContigAligns(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 15000, Seed: 2})
	rep := Evaluate(ref, [][]byte{dna.RevComp(ref)})
	if rep.Completeness < 99.5 || rep.Misassemblies != 0 {
		t.Fatalf("rc contig: completeness %.2f mis %d", rep.Completeness, rep.Misassemblies)
	}
}

func TestPartialCoverage(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 3})
	// Two contigs covering half the genome.
	rep := Evaluate(ref, [][]byte{ref[:5000], ref[10000:15000]})
	if rep.Completeness < 45 || rep.Completeness > 55 {
		t.Fatalf("completeness %.2f, want ≈50", rep.Completeness)
	}
	if rep.NumContigs != 2 {
		t.Fatal("contig count")
	}
}

func TestMisassemblyDetectedRelocation(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 4})
	// A chimeric contig joining two loci 15 kbp apart.
	chimera := append(append([]byte(nil), ref[2000:6000]...), ref[21000:25000]...)
	rep := Evaluate(ref, [][]byte{chimera})
	if rep.Misassemblies != 1 {
		t.Fatalf("misassemblies = %d, want 1", rep.Misassemblies)
	}
}

func TestMisassemblyDetectedInversion(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 5})
	// A contig whose second half is strand-flipped.
	inv := append(append([]byte(nil), ref[2000:6000]...), dna.RevComp(ref[6000:10000])...)
	rep := Evaluate(ref, [][]byte{inv})
	if rep.Misassemblies != 1 {
		t.Fatalf("misassemblies = %d, want 1", rep.Misassemblies)
	}
}

func TestAdjacentSegmentsNotMisassembled(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 6})
	// A contig with a 300-base novel insertion (below the relocation
	// threshold) must not count as misassembled.
	ins := readsim.Genome(readsim.GenomeConfig{Length: 300, Seed: 7})
	noisy := append(append(append([]byte(nil), ref[2000:8000]...), ins...), ref[8000:14000]...)
	rep := Evaluate(ref, [][]byte{noisy})
	if rep.Misassemblies != 0 {
		t.Fatalf("misassemblies = %d, want 0", rep.Misassemblies)
	}
}

func TestUnalignedContig(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 8})
	alien := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 9})
	rep := Evaluate(ref, [][]byte{alien})
	if rep.Unaligned != 1 {
		t.Fatalf("unaligned = %d", rep.Unaligned)
	}
	if rep.Completeness > 1 {
		t.Fatalf("alien contig covered the genome: %.2f", rep.Completeness)
	}
}

func TestN50(t *testing.T) {
	// lengths 10,8,6,4,2: total 30; cumulative 10,18 ≥ 15 → N50 = 8.
	if got := n50([]int{4, 10, 2, 8, 6}); got != 8 {
		t.Fatalf("n50 = %d, want 8", got)
	}
	if got := n50(nil); got != 0 {
		t.Fatal("empty n50")
	}
	if got := n50([]int{5}); got != 5 {
		t.Fatal("single n50")
	}
}

func TestCoverageUniformity(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 10})
	// Uniform single coverage: CV ≈ 0.
	rep := Evaluate(ref, [][]byte{ref})
	if rep.CoverageCV > 0.15 {
		t.Fatalf("uniform coverage CV %.3f", rep.CoverageCV)
	}
	// Double-covering half the genome raises the CV.
	rep2 := Evaluate(ref, [][]byte{ref, ref[:10000]})
	if rep2.CoverageCV <= rep.CoverageCV {
		t.Fatalf("CV did not increase: %.3f vs %.3f", rep2.CoverageCV, rep.CoverageCV)
	}
	if rep2.DuplicationRatio <= 1.0 {
		t.Fatalf("duplication ratio %.2f", rep2.DuplicationRatio)
	}
}

func TestShortContigSkipped(t *testing.T) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 11})
	rep := Evaluate(ref, [][]byte{ref[:10]}) // shorter than anchor k
	if rep.Unaligned != 1 {
		t.Fatalf("short contig should be unaligned, got %d", rep.Unaligned)
	}
}
