package quality

import (
	"testing"

	"repro/internal/readsim"
)

func BenchmarkEvaluate(b *testing.B) {
	ref := readsim.Genome(readsim.GenomeConfig{Length: 500000, Seed: 3})
	// A realistic contig set: 20 windows with small gaps.
	var contigs [][]byte
	step := len(ref) / 20
	for pos := 0; pos+step <= len(ref); pos += step {
		contigs = append(contigs, ref[pos:pos+step-500])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(ref, contigs)
	}
}
