// Package polish implements the paper's stated future work (§7): "use the
// sparse matrix abstraction to find similarities within the contig set and
// obtain even longer sequences". Contigs are treated as reads and pushed
// through the same overlap machinery (k-mer seeding, x-drop alignment,
// containment removal, mutual-best dovetails, linear walks), greedily
// merging chains of overlapping contigs into super-contigs.
//
// Because assembly-stage contigs already share read ends, adjacent contigs
// separated only by a masked branch vertex or a dropped overlap often
// overlap by a near-read-length region — exactly what this pass stitches.
package polish

import (
	"repro/internal/align"
	"repro/internal/baseline"
	"repro/internal/core"
)

// Config parameterizes the merge pass.
type Config struct {
	K            int     // seed length for contig-contig overlap detection
	MinOverlap   int32   // minimum contig-contig overlap to merge across
	MinScoreFrac float64 // alignment score density gate
	MaxOverhang  int32   // dovetail tolerance
	XDrop        int32
	Threads      int
}

// DefaultConfig suits contigs from the low-error presets.
func DefaultConfig() Config {
	return Config{K: 31, MinOverlap: 200, MinScoreFrac: 0.5, MaxOverhang: 120, XDrop: 20, Threads: 0}
}

// Merge joins overlapping contigs into longer ones. Contigs that do not
// overlap anything pass through unchanged; contigs contained in another are
// dropped; merged contigs concatenate the underlying read lists in walk
// order. The result is canonically sorted.
func Merge(contigs []core.Contig, cfg Config) []core.Contig {
	if len(contigs) < 2 {
		return contigs
	}
	seqs := make([][]byte, len(contigs))
	for i, c := range contigs {
		seqs[i] = c.Seq
	}
	res := baseline.BestOverlapAssemble(seqs, baseline.Config{
		K:           cfg.K,
		ReliableLow: 2,
		// Contig k-mers are near-unique; only true overlaps repeat. Repeats
		// across many contigs are exactly the junctions we must not merge
		// blindly, so the high cut stays tight.
		ReliableHigh: 8,
		Align:        align.DefaultParams(cfg.XDrop),
		MinOverlap:   cfg.MinOverlap,
		MinScoreFrac: cfg.MinScoreFrac,
		MaxOverhang:  cfg.MaxOverhang,
		Threads:      cfg.Threads,
	})

	used := make([]bool, len(contigs))
	var out []core.Contig
	for _, merged := range res.Contigs {
		// merged.Reads are indices into the input contig list.
		super := core.Contig{Seq: merged.Seq, Circular: merged.Circular}
		for _, ci := range merged.Reads {
			used[ci] = true
			super.Reads = append(super.Reads, contigs[ci].Reads...)
		}
		out = append(out, super)
	}
	for _, id := range res.ContainedIDs {
		used[id] = true // contained contigs are redundant: drop
	}
	for i, c := range contigs {
		if !used[i] {
			out = append(out, c)
		}
	}
	core.SortContigs(out)
	return out
}
