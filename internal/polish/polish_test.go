package polish

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/readsim"
)

func contigOf(seq []byte, reads ...int32) core.Contig {
	return core.Contig{Seq: seq, Reads: reads}
}

func TestMergeTwoOverlappingContigs(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 12000, Seed: 3})
	a := contigOf(g[:7000], 0, 1, 2)
	b := contigOf(g[6000:], 3, 4)
	out := Merge([]core.Contig{a, b}, DefaultConfig())
	if len(out) != 1 {
		t.Fatalf("got %d contigs, want 1", len(out))
	}
	if !bytes.Equal(out[0].Seq, g) && !bytes.Equal(out[0].Seq, dna.RevComp(g)) {
		t.Fatalf("merged contig (%d bases) does not spell the genome (%d)", len(out[0].Seq), len(g))
	}
	if len(out[0].Reads) != 5 {
		t.Fatalf("merged read list %v", out[0].Reads)
	}
}

func TestMergeReverseComplementContig(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 10000, Seed: 5})
	a := contigOf(g[:6000], 0)
	b := contigOf(dna.RevComp(g[5000:]), 1) // stored flipped
	out := Merge([]core.Contig{a, b}, DefaultConfig())
	if len(out) != 1 {
		t.Fatalf("got %d contigs, want 1", len(out))
	}
	if !bytes.Equal(out[0].Seq, g) && !bytes.Equal(out[0].Seq, dna.RevComp(g)) {
		t.Fatal("rc merge wrong")
	}
}

func TestMergeKeepsDisjointContigs(t *testing.T) {
	g1 := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 7})
	g2 := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 8})
	out := Merge([]core.Contig{contigOf(g1, 0), contigOf(g2, 1)}, DefaultConfig())
	if len(out) != 2 {
		t.Fatalf("disjoint contigs merged: %d", len(out))
	}
}

func TestMergeDropsContainedContig(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 9000, Seed: 9})
	big := contigOf(g, 0)
	small := contigOf(g[3000:5000], 1)
	out := Merge([]core.Contig{big, small}, DefaultConfig())
	if len(out) != 1 {
		t.Fatalf("contained contig survived: %d contigs", len(out))
	}
	if len(out[0].Seq) != len(g) {
		t.Fatal("wrong survivor")
	}
}

func TestMergeChainOfThree(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 15000, Seed: 11})
	out := Merge([]core.Contig{
		contigOf(g[:6000], 0),
		contigOf(g[5000:11000], 1),
		contigOf(g[10000:], 2),
	}, DefaultConfig())
	if len(out) != 1 {
		t.Fatalf("got %d contigs, want 1", len(out))
	}
	if !bytes.Equal(out[0].Seq, g) && !bytes.Equal(out[0].Seq, dna.RevComp(g)) {
		t.Fatalf("3-chain merge: %d bases, want %d", len(out[0].Seq), len(g))
	}
}

func TestMergeIdempotent(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 12000, Seed: 13})
	once := Merge([]core.Contig{contigOf(g[:7000], 0), contigOf(g[6000:], 1)}, DefaultConfig())
	twice := Merge(once, DefaultConfig())
	if len(once) != len(twice) {
		t.Fatalf("merge not idempotent: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if !bytes.Equal(once[i].Seq, twice[i].Seq) {
			t.Fatal("re-merge changed a contig")
		}
	}
}

func TestMergeSmallInputs(t *testing.T) {
	if out := Merge(nil, DefaultConfig()); out != nil {
		t.Fatal("nil input")
	}
	one := []core.Contig{contigOf([]byte(strings.Repeat("ACGT", 100)), 0)}
	if out := Merge(one, DefaultConfig()); len(out) != 1 {
		t.Fatal("single contig must pass through")
	}
}

// TestMergeImprovesPipelineOutput: the integration story — polish must never
// reduce completeness and typically reduces the contig count.
func TestMergeImprovesPipelineOutput(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 15})
	// Three overlapping windows as synthetic "assembly output".
	contigs := []core.Contig{
		contigOf(g[:8000], 0),
		contigOf(dna.RevComp(g[7000:15000]), 1),
		contigOf(g[14000:], 2),
	}
	merged := Merge(contigs, DefaultConfig())
	if len(merged) >= len(contigs) {
		t.Fatalf("no merging happened: %d -> %d", len(contigs), len(merged))
	}
	if len(merged[0].Seq) <= 8000 {
		t.Fatalf("longest did not grow: %d", len(merged[0].Seq))
	}
}
