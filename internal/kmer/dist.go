package kmer

import (
	"slices"

	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/par"
)

// ATriple is one nonzero of the |reads| × |k-mers| matrix A: read Row
// contains reliable k-mer column Col at Val.Pos / Val.RC.
type ATriple struct {
	Row int32 // global read id
	Col int32 // reliable k-mer column id
	Val Occur
}

// Result is the outcome of the distributed counting stage on one rank.
type Result struct {
	K           int
	NumCols     int       // global number of reliable k-mer columns
	Triples     []ATriple // triples for the reads owned by this rank
	Occurrences int64     // k-mer occurrences this rank extracted (work units)
}

// CountAndBuild is the distributed k-mer counter (Algorithm 1 lines 3–4).
//
// Protocol (all collectives on the full communicator):
//  1. Every rank extracts canonical k-mers from its reads and routes one
//     record per (read, k-mer) occurrence to the k-mer's hash owner
//     (Alltoallv #1).
//  2. Owners count occurrences, select reliable k-mers in [low, high], sort
//     them, and assign globally consecutive column ids via Exscan. Counting
//     is the two-phase Bloom-filtered scheme of count.go when low ≥ 2
//     (singletons never enter the table); low < 2 bypasses the filter so
//     every count is taken exactly.
//  3. Owners answer every received occurrence with its column id or -1
//     (Alltoallv #2, reply shape mirrors the request shape).
//  4. Ranks assemble local A-matrix triples from the replies.
//
// threads sets the intra-rank worker count for the extraction scan (step 1),
// the rank's compute-heavy loop; ≤ 1 scans serially. Routing order — and
// with it every downstream collective — is identical for any thread count,
// because extraction results are folded in read order.
//
// async selects the nonblocking exchange schedule: receives for Alltoallv #1
// are posted before the extraction scan and the packing loop even start, so
// remote occurrence records land while this rank is still packing, and the
// owner-side admission pass of step 2 consumes each incoming part as it
// arrives instead of blocking for the full exchange (the exact tally runs
// over the retained parts in rank order in both modes). Counts, column ids,
// triples, and byte/message counters are identical in both modes.
func CountAndBuild(store *fasta.DistStore, k int, low, high int32, threads int, async bool) *Result {
	c := store.Comm
	p := c.Size()

	// In async mode, post all receives up front (the overlap schedule: the
	// matching sends are buffered, so every transfer can complete while this
	// rank is extracting and packing).
	var tag int64
	var pending []*mpi.RecvRequest[uint64]
	if async {
		tag = mpi.ReserveTag(c)
		pending = make([]*mpi.RecvRequest[uint64], p)
		for off := 1; off < p; off++ {
			src := (c.Rank() - off + p) % p
			pending[src] = mpi.Irecv[uint64](c, src, tag)
		}
	}

	// 1. Extract (in parallel, indexed by read) and route (serially, in read
	// order — the fold keeps the wire layout deterministic). Workers reuse
	// their scratch across reads and retain each read's k-mers in one
	// exact-size copy.
	type occRec struct {
		Read int32
		Pos  int32
		RC   bool
	}
	perRead := make([][]KPos, store.Hi-store.Lo)
	pool := par.NewPool(threads, func(int) *ExtractScratch { return new(ExtractScratch) })
	pool.SetTrace(c.Lane(), "kmer.extract")
	par.ForEach(pool, len(perRead), func(sc *ExtractScratch, i int) {
		if kps := sc.ExtractInto(store.Seqs[i], k); len(kps) > 0 {
			perRead[i] = append(make([]KPos, 0, len(kps)), kps...)
		}
	})
	// Counting pre-pass sizes the per-destination buffers exactly — the
	// routing loop never append-grows.
	destOcc := make([]int, p)
	for i := range perRead {
		for _, kp := range perRead[i] {
			destOcc[Owner(kp.Kmer, p)]++
		}
	}
	sendKmers := make([][]uint64, p)
	sendMeta := make([][]occRec, p) // stays local, parallel to sendKmers
	for r := 0; r < p; r++ {
		sendKmers[r] = make([]uint64, 0, destOcc[r])
		sendMeta[r] = make([]occRec, 0, destOcc[r])
	}
	for g := store.Lo; g < store.Hi; g++ {
		for _, kp := range perRead[g-store.Lo] {
			o := Owner(kp.Kmer, p)
			sendKmers[o] = append(sendKmers[o], uint64(kp.Kmer))
			sendMeta[o] = append(sendMeta[o], occRec{Read: int32(g), Pos: kp.Pos, RC: kp.RC})
		}
	}

	// 2. Count and select on owners. Phase 1 (admission) streams: the async
	// path observes the local part first, then each remote part in rank order
	// as its posted receive drains — admission of part r overlaps the
	// transfer of parts after r. Phase 2 (the exact tally) runs over the
	// retained parts in rank order in both modes, so stored counts never
	// depend on the arrival schedule.
	var occ int64
	for r := 0; r < p; r++ {
		occ += int64(len(sendKmers[r]))
	}
	// The rank's own outgoing total is the sizing proxy for what it will
	// receive: the k-mer hash spreads occurrences uniformly across owners.
	cnt := newCounter(low, int(occ))
	recvKmers := make([][]uint64, p)
	if async {
		for off := 1; off < p; off++ {
			dst := (c.Rank() + off) % p
			mpi.Isend(c, dst, tag, sendKmers[dst]).Wait()
		}
		recvKmers[c.Rank()] = sendKmers[c.Rank()]
		cnt.observe(recvKmers[c.Rank()])
		for src := 0; src < p; src++ {
			if pending[src] == nil {
				continue
			}
			recvKmers[src] = pending[src].WaitValue()
			cnt.observe(recvKmers[src])
		}
	} else {
		recvKmers = mpi.Alltoallv(c, sendKmers)
		for _, part := range recvKmers {
			cnt.observe(part)
		}
	}
	for _, part := range recvKmers {
		cnt.tally(part)
	}
	reliable := cnt.table.SelectReliable(low, high)
	nLocal := len(reliable)
	if reg := c.Metrics(); reg != nil {
		// All values here are schedule-invariant except table_entries, whose
		// admitted set may differ on singletons between observation orders
		// (see count.go); the manifest's determinism gate therefore compares
		// counters, not gauges.
		reg.Counter("kmer.occurrences").Add(occ)
		reg.Counter("kmer.reliable").Add(int64(nLocal))
		reg.Gauge("kmer.table_entries").Set(int64(cnt.table.Len()))
		if cnt.bloom != nil {
			reg.Gauge("kmer.bloom_bits_set").Set(cnt.bloom.bitsSet())
			reg.Gauge("kmer.bloom_bits").Set(int64(len(cnt.bloom.words) * 64))
		}
	}
	offset := mpi.Exscan(c, nLocal, func(a, b int) int { return a + b })
	total := mpi.Allreduce(c, nLocal, func(a, b int) int { return a + b })
	colOf := NewCountTable(nLocal)
	for i, km := range reliable {
		colOf.Put(km, int32(offset+i))
	}

	// 3. Reply with column ids, mirroring the request shape — including
	// parts whose entries are all -1 (no reliable k-mer matched). The shape
	// mirror is load-bearing: the requester indexes replies positionally
	// against its retained sendMeta, so compacting all-miss parts would need
	// an extra index channel that costs more than the -1 words it saves, and
	// would change the wire traffic between runs with different [low, high].
	// TestReplyShapeMirrorsRequests pins this: both comm modes produce the
	// same reply shape even when every part is all-miss.
	reply := make([][]int32, p)
	for r := 0; r < p; r++ {
		reply[r] = make([]int32, len(recvKmers[r]))
		for i, km := range recvKmers[r] {
			if col, ok := colOf.Get(Kmer(km)); ok {
				reply[r][i] = col
			} else {
				reply[r][i] = -1
			}
		}
	}
	var cols [][]int32
	if async {
		cols = mpi.IAlltoallv(c, reply).WaitValue()
	} else {
		cols = mpi.Alltoallv(c, reply)
	}

	// 4. Assemble triples (sized exactly by a survivor pre-pass).
	var nTriples int
	for r := 0; r < p; r++ {
		for _, col := range cols[r] {
			if col >= 0 {
				nTriples++
			}
		}
	}
	triples := make([]ATriple, 0, nTriples)
	for r := 0; r < p; r++ {
		for i, col := range cols[r] {
			if col < 0 {
				continue
			}
			m := sendMeta[r][i]
			triples = append(triples, ATriple{Row: m.Read, Col: col, Val: Occur{Pos: m.Pos, RC: m.RC}})
		}
	}
	slices.SortFunc(triples, func(a, b ATriple) int {
		if a.Row != b.Row {
			return int(a.Row - b.Row)
		}
		return int(a.Col - b.Col)
	})
	return &Result{K: k, NumCols: total, Triples: triples, Occurrences: occ}
}
