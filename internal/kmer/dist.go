package kmer

import (
	"sort"

	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/par"
)

// ATriple is one nonzero of the |reads| × |k-mers| matrix A: read Row
// contains reliable k-mer column Col at Val.Pos / Val.RC.
type ATriple struct {
	Row int32 // global read id
	Col int32 // reliable k-mer column id
	Val Occur
}

// Result is the outcome of the distributed counting stage on one rank.
type Result struct {
	K           int
	NumCols     int       // global number of reliable k-mer columns
	Triples     []ATriple // triples for the reads owned by this rank
	Occurrences int64     // k-mer occurrences this rank extracted (work units)
}

// CountAndBuild is the distributed k-mer counter (Algorithm 1 lines 3–4).
//
// Protocol (all collectives on the full communicator):
//  1. Every rank extracts canonical k-mers from its reads and routes one
//     record per (read, k-mer) occurrence to the k-mer's hash owner
//     (Alltoallv #1).
//  2. Owners count occurrences, select reliable k-mers in [low, high], sort
//     them, and assign globally consecutive column ids via Exscan.
//  3. Owners answer every received occurrence with its column id or -1
//     (Alltoallv #2, reply shape mirrors the request shape).
//  4. Ranks assemble local A-matrix triples from the replies.
//
// threads sets the intra-rank worker count for the extraction scan (step 1),
// the rank's compute-heavy loop; ≤ 1 scans serially. Routing order — and
// with it every downstream collective — is identical for any thread count,
// because extraction results are folded in read order.
//
// async selects the nonblocking exchange schedule: receives for Alltoallv #1
// are posted before the extraction scan and the packing loop even start, so
// remote occurrence records land while this rank is still packing, and the
// owner-side counting of step 2 consumes each incoming part as it arrives
// instead of blocking for the full exchange. Counts, column ids, triples,
// and byte/message counters are identical in both modes.
func CountAndBuild(store *fasta.DistStore, k int, low, high int32, threads int, async bool) *Result {
	c := store.Comm
	p := c.Size()

	// In async mode, post all receives up front (the overlap schedule: the
	// matching sends are buffered, so every transfer can complete while this
	// rank is extracting and packing).
	var tag int64
	var pending []*mpi.RecvRequest[uint64]
	if async {
		tag = mpi.ReserveTag(c)
		pending = make([]*mpi.RecvRequest[uint64], p)
		for off := 1; off < p; off++ {
			src := (c.Rank() - off + p) % p
			pending[src] = mpi.Irecv[uint64](c, src, tag)
		}
	}

	// 1. Extract (in parallel, indexed by read) and route (serially, in read
	// order — the fold keeps the wire layout deterministic).
	type occRec struct {
		Read int32
		Pos  int32
		RC   bool
	}
	perRead := make([][]KPos, store.Hi-store.Lo)
	pool := par.NewPool(threads, func(int) struct{} { return struct{}{} })
	par.ForEach(pool, len(perRead), func(_ struct{}, i int) {
		perRead[i] = Extract(store.Seqs[i], k)
	})
	sendKmers := make([][]uint64, p)
	sendMeta := make([][]occRec, p) // stays local, parallel to sendKmers
	for g := store.Lo; g < store.Hi; g++ {
		for _, kp := range perRead[g-store.Lo] {
			o := Owner(kp.Kmer, p)
			sendKmers[o] = append(sendKmers[o], uint64(kp.Kmer))
			sendMeta[o] = append(sendMeta[o], occRec{Read: int32(g), Pos: kp.Pos, RC: kp.RC})
		}
	}

	// 2. Count and select on owners. The async path streams: the local part
	// first, then each remote part in rank order as its posted receive
	// drains — counting part r overlaps the transfer of parts after r.
	counts := make(map[Kmer]int32)
	countPart := func(part []uint64) {
		for _, km := range part {
			counts[Kmer(km)]++
		}
	}
	recvKmers := make([][]uint64, p)
	if async {
		for off := 1; off < p; off++ {
			dst := (c.Rank() + off) % p
			mpi.Isend(c, dst, tag, sendKmers[dst]).Wait()
		}
		recvKmers[c.Rank()] = sendKmers[c.Rank()]
		countPart(recvKmers[c.Rank()])
		for src := 0; src < p; src++ {
			if pending[src] == nil {
				continue
			}
			recvKmers[src] = pending[src].WaitValue()
			countPart(recvKmers[src])
		}
	} else {
		recvKmers = mpi.Alltoallv(c, sendKmers)
		for _, part := range recvKmers {
			countPart(part)
		}
	}
	reliable := SelectReliable(counts, low, high)
	nLocal := len(reliable)
	offset := mpi.Exscan(c, nLocal, func(a, b int) int { return a + b })
	total := mpi.Allreduce(c, nLocal, func(a, b int) int { return a + b })
	colOf := make(map[Kmer]int32, nLocal)
	for i, km := range reliable {
		colOf[km] = int32(offset + i)
	}

	// 3. Reply with column ids, mirroring the request shape.
	reply := make([][]int32, p)
	for r := 0; r < p; r++ {
		reply[r] = make([]int32, len(recvKmers[r]))
		for i, km := range recvKmers[r] {
			if col, ok := colOf[Kmer(km)]; ok {
				reply[r][i] = col
			} else {
				reply[r][i] = -1
			}
		}
	}
	var cols [][]int32
	if async {
		cols = mpi.IAlltoallv(c, reply).WaitValue()
	} else {
		cols = mpi.Alltoallv(c, reply)
	}

	// 4. Assemble triples.
	var triples []ATriple
	for r := 0; r < p; r++ {
		for i, col := range cols[r] {
			if col < 0 {
				continue
			}
			m := sendMeta[r][i]
			triples = append(triples, ATriple{Row: m.Read, Col: col, Val: Occur{Pos: m.Pos, RC: m.RC}})
		}
	}
	sort.Slice(triples, func(i, j int) bool {
		if triples[i].Row != triples[j].Row {
			return triples[i].Row < triples[j].Row
		}
		return triples[i].Col < triples[j].Col
	})
	var occ int64
	for r := 0; r < p; r++ {
		occ += int64(len(sendKmers[r]))
	}
	return &Result{K: k, NumCols: total, Triples: triples, Occurrences: occ}
}
