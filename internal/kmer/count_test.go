package kmer

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/readsim"
)

// randParts builds occurrence parts over a small k-mer universe so duplicate
// counts and Bloom collisions are common.
func randParts(rng *rand.Rand, nParts, maxLen, universe int) [][]uint64 {
	parts := make([][]uint64, nParts)
	for r := range parts {
		n := rng.Intn(maxLen + 1)
		parts[r] = make([]uint64, n)
		for i := range parts[r] {
			parts[r][i] = uint64(rng.Intn(universe))
		}
	}
	return parts
}

// TestCountOccurrencesMatchesMap pins the two-phase Bloom-filtered kernel to
// the map reference: for low ≥ 2 every selected k-mer and count must agree;
// for low = 1 (filter bypass) every count must agree exactly.
func TestCountOccurrencesMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		parts := randParts(rng, 1+rng.Intn(5), 400, 1+rng.Intn(300))
		ref := CountOccurrencesMap(parts)
		for _, low := range []int32{1, 2, 3} {
			got := CountOccurrences(parts, low)
			// Every k-mer with count ≥ max(low,2) must be admitted with its
			// exact count; admitted singletons (false positives) keep exact
			// count 1.
			for km, want := range ref {
				c, ok := got.Get(km)
				if want >= low && want >= 2 && !ok {
					t.Fatalf("trial %d low=%d: k-mer %d (count %d) missing from table", trial, low, km, want)
				}
				if ok && c != want {
					t.Fatalf("trial %d low=%d: k-mer %d count %d, want %d", trial, low, km, c, want)
				}
			}
			for _, high := range []int32{1, 4, 1 << 20} {
				want := SelectReliable(ref, low, high)
				if sel := got.SelectReliable(low, high); !reflect.DeepEqual(sel, want) {
					t.Fatalf("trial %d low=%d high=%d: selection %v, want %v", trial, low, high, sel, want)
				}
			}
		}
	}
}

// TestCountOccurrencesLowBypass checks the low < 2 path admits everything:
// singletons must be counted even though no Bloom filter runs.
func TestCountOccurrencesLowBypass(t *testing.T) {
	parts := [][]uint64{{7, 7, 9}, {11}}
	got := CountOccurrences(parts, 1)
	for km, want := range map[Kmer]int32{7: 2, 9: 1, 11: 1} {
		if c, ok := got.Get(km); !ok || c != want {
			t.Fatalf("k-mer %d: count %d (present=%v), want %d", km, c, ok, want)
		}
	}
	if got.Len() != 3 {
		t.Fatalf("table holds %d k-mers, want 3", got.Len())
	}
}

// TestCounterTinyBloomCollisions forces heavy false-positive pressure with a
// single-block filter: selection over [2, high] must still match the map
// reference exactly, because admitted singletons carry exact count 1.
func TestCounterTinyBloomCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		parts := randParts(rng, 3, 500, 2000)
		c := &counter{low: 2, bloom: newBloomBlocks(1), table: NewCountTable(8)}
		for _, p := range parts {
			c.observe(p)
		}
		for _, p := range parts {
			c.tally(p)
		}
		ref := CountOccurrencesMap(parts)
		want := SelectReliable(ref, 2, 1<<20)
		if got := c.table.SelectReliable(2, 1<<20); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: tiny-bloom selection diverged (%d vs %d k-mers)", trial, len(got), len(want))
		}
		// The saturated filter admits nearly everything — counts must still
		// be exact for whatever made it in.
		for km, n := range ref {
			if cnt, ok := c.table.Get(km); ok && cnt != n {
				t.Fatalf("trial %d: k-mer %d count %d, want %d", trial, km, cnt, n)
			}
		}
	}
}

// TestCountObserveOrderInvariance shuffles the observation order (the async
// schedule observes parts as they arrive) and checks the reliable selection
// never moves.
func TestCountObserveOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	parts := randParts(rng, 6, 300, 150)
	var occ int
	for _, p := range parts {
		occ += len(p)
	}
	base := CountOccurrences(parts, 2).SelectReliable(2, 1<<20)
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(parts))
		c := newCounter(2, occ)
		for _, i := range order {
			c.observe(parts[i])
		}
		for _, p := range parts { // tally always runs in rank order
			c.tally(p)
		}
		if got := c.table.SelectReliable(2, 1<<20); !reflect.DeepEqual(got, base) {
			t.Fatalf("trial %d: selection depends on observe order", trial)
		}
	}
}

// TestCountTableBasics exercises the open-addressing table around growth and
// the Put/Get column-index usage.
func TestCountTableBasics(t *testing.T) {
	tab := NewCountTable(0)
	const n = 5000 // forces several grows past the 1024 floor
	for i := 0; i < n; i++ {
		tab.Put(Kmer(i*i), int32(i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := tab.Get(Kmer(i * i)); !ok || v != int32(i) {
			t.Fatalf("Get(%d) = %d,%v want %d", i*i, v, ok, i)
		}
	}
	if _, ok := tab.Get(Kmer(7)); ok {
		t.Fatal("Get of absent key reported present")
	}
}

// TestExtractIntoMatchesExtract pins the scratch-reusing scan to the
// allocating one across many reads through one shared scratch.
func TestExtractIntoMatchesExtract(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 51})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 4, MeanLen: 300, Seed: 52}))
	reads = append(reads, []byte("ACGTNNNACGTACGT"), []byte("AC"), nil)
	var sc ExtractScratch
	for _, k := range []int{5, 17, 31} {
		for i, seq := range reads {
			want := Extract(seq, k)
			got := sc.ExtractInto(seq, k)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d read %d: ExtractInto diverges from Extract", k, i)
			}
		}
	}
}

// TestReplyShapeMirrorsRequests pins the documented protocol decision that
// reply parts always mirror the request shape — even when every entry is -1
// because no reliable k-mer exists — and that both comm modes agree on it:
// with low above any count, the column exchange must still move the same
// bytes and messages as the sync run, and produce zero triples.
func TestReplyShapeMirrorsRequests(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: 61})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 5, MeanLen: 350, Seed: 62}))
	const k = 15
	for _, p := range []int{1, 4, 9} {
		var traffic [2][2]int64
		var results [2]*Result
		for mode, async := range []bool{false, true} {
			w := mpi.NewWorld(p)
			err := w.Run(func(c *mpi.Comm) {
				store := fasta.FromGlobal(c, reads)
				res := CountAndBuild(store, k, 1<<30, 1<<30, 1, async)
				if res.NumCols != 0 {
					panic("expected no reliable k-mers")
				}
				if len(res.Triples) != 0 {
					panic("all-miss run produced triples")
				}
				if c.Rank() == 0 {
					results[mode] = res
				}
			})
			if err != nil {
				t.Fatalf("P=%d async=%v: %v", p, async, err)
			}
			traffic[mode] = [2]int64{w.TotalBytes(), w.TotalMsgs()}
		}
		if traffic[0] != traffic[1] {
			t.Fatalf("P=%d: all-miss reply traffic differs: sync %v, async %v", p, traffic[0], traffic[1])
		}
		if !reflect.DeepEqual(results[0].Triples, results[1].Triples) {
			t.Fatalf("P=%d: all-miss triples differ across modes", p)
		}
	}
}
