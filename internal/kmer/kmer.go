// Package kmer implements 2-bit k-mer encoding (k ≤ 31), canonical forms,
// and the distributed k-mer counting / reliable-k-mer selection stage that
// produces the |reads| × |k-mers| matrix A of Algorithm 1 (lines 3–4).
package kmer

import (
	"fmt"
	"sort"

	"repro/internal/dna"
)

// MaxK is the largest k that fits 2 bits per base in a uint64.
const MaxK = 31

// Kmer is a 2-bit packed k-mer; bases are packed most-significant-first so
// integer order equals lexicographic order.
type Kmer uint64

// Decode expands a packed k-mer back to ASCII (mostly for tests/debugging).
func Decode(km Kmer, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = dna.Base(byte(km & 3))
		km >>= 2
	}
	return out
}

// Encode packs seq[0:k]; panics if a non-base is present.
func Encode(seq []byte, k int) Kmer {
	if k > MaxK || k <= 0 {
		panic(fmt.Sprintf("kmer: k=%d out of range (1..%d)", k, MaxK))
	}
	var km Kmer
	for i := 0; i < k; i++ {
		c := dna.Code(seq[i])
		if c == 0xFF {
			panic(fmt.Sprintf("kmer: non-base %q at %d", seq[i], i))
		}
		km = km<<2 | Kmer(c)
	}
	return km
}

// RevComp returns the reverse complement of a packed k-mer.
func RevComp(km Kmer, k int) Kmer {
	var rc Kmer
	for i := 0; i < k; i++ {
		rc = rc<<2 | Kmer(3-(km&3))
		km >>= 2
	}
	return rc
}

// Occur is one occurrence of a canonical k-mer in a read: the start position
// of the k-mer window on the read's forward strand and whether the canonical
// form is the reverse complement of the window.
type Occur struct {
	Pos int32
	RC  bool
}

// KPos is a canonical k-mer occurrence during extraction.
type KPos struct {
	Kmer Kmer
	Pos  int32
	RC   bool
}

// Extract lists the canonical k-mers of seq with a rolling encoder,
// deduplicated so that each canonical k-mer appears at most once per read
// (first occurrence wins — a deterministic choice). The result is freshly
// allocated; hot loops that process one read at a time should hold an
// ExtractScratch and call ExtractInto instead.
func Extract(seq []byte, k int) []KPos {
	var sc ExtractScratch
	return sc.ExtractInto(seq, k)
}

// ExtractScratch is the reusable state of the extraction scan: the output
// buffer and an open-addressing per-read dedup set whose slots are
// invalidated in O(1) between reads by a generation tag instead of a clear.
// A scratch is single-goroutine state; the distributed counter gives each
// pool worker its own (package par's per-worker state).
type ExtractScratch struct {
	out  []KPos
	kms  []Kmer
	gens []uint32
	gen  uint32
	mask uint64
}

// ensure sizes the dedup set for up to n distinct k-mers and opens a fresh
// generation.
func (sc *ExtractScratch) ensure(n int) {
	need := 1024
	for need < 2*n {
		need <<= 1
	}
	if len(sc.kms) < need {
		sc.kms = make([]Kmer, need)
		sc.gens = make([]uint32, need)
		sc.mask = uint64(need - 1)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 { // generation counter wrapped: hard-reset the tags
		clear(sc.gens)
		sc.gen = 1
	}
}

// seen reports whether km was already recorded this generation, recording it
// otherwise.
func (sc *ExtractScratch) seen(km Kmer) bool {
	i := hash(km) & sc.mask
	for sc.gens[i] == sc.gen {
		if sc.kms[i] == km {
			return true
		}
		i = (i + 1) & sc.mask
	}
	sc.kms[i], sc.gens[i] = km, sc.gen
	return false
}

// ExtractInto is Extract with scratch reuse: the returned slice aliases the
// scratch's buffer and is valid until the next call. Callers that retain
// results across calls must copy.
func (sc *ExtractScratch) ExtractInto(seq []byte, k int) []KPos {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d out of range (1..%d)", k, MaxK))
	}
	if len(seq) < k {
		return nil
	}
	windows := len(seq) - k + 1
	if cap(sc.out) < windows {
		sc.out = make([]KPos, 0, windows)
	}
	sc.ensure(windows)
	out := sc.out[:0]
	mask := Kmer(1)<<(2*uint(k)) - 1
	shift := 2 * uint(k-1)
	var fwd, rc Kmer
	valid := 0
	for i := 0; i < len(seq); i++ {
		c := dna.Code(seq[i])
		if c == 0xFF {
			valid = 0
			fwd, rc = 0, 0
			continue
		}
		fwd = (fwd<<2 | Kmer(c)) & mask
		rc = rc>>2 | Kmer(3-c)<<shift
		valid++
		if valid < k {
			continue
		}
		canon, isRC := fwd, false
		if rc < fwd {
			canon, isRC = rc, true
		}
		if sc.seen(canon) {
			continue
		}
		out = append(out, KPos{Kmer: canon, Pos: int32(i - k + 1), RC: isRC})
	}
	sc.out = out
	return out
}

// hash mixes a k-mer for owner selection (splitmix64 finalizer).
func hash(km Kmer) uint64 {
	x := uint64(km) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the rank responsible for counting km.
func Owner(km Kmer, p int) int { return int(hash(km) % uint64(p)) }

// CountSerial counts, for each canonical k-mer, in how many reads it occurs.
// Shared-memory reference used by the baselines and by tests of the
// distributed counter; the extraction scan reuses one scratch across reads.
func CountSerial(reads [][]byte, k int) map[Kmer]int32 {
	counts := make(map[Kmer]int32)
	var sc ExtractScratch
	for _, seq := range reads {
		for _, kp := range sc.ExtractInto(seq, k) {
			counts[kp.Kmer]++
		}
	}
	return counts
}

// SelectReliable returns the sorted canonical k-mers whose read-count lies in
// [low, high]: k-mers seen once are likely sequencing errors, k-mers seen far
// more often than the depth are repeats that would densify C = A·Aᵀ.
func SelectReliable(counts map[Kmer]int32, low, high int32) []Kmer {
	out := make([]Kmer, 0, len(counts))
	for km, c := range counts {
		if c >= low && c <= high {
			out = append(out, km)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
