package kmer

import (
	"math/bits"
	"slices"
)

// This file is the allocation-lean counting substrate behind CountAndBuild:
// a cache-line-blocked Bloom filter that absorbs first occurrences (HipMer's
// singleton shield — erroneous k-mers are mostly singletons and must never
// enter the count table) and an open-addressing Kmer→int32 table that
// replaces the builtin map on the owner-side counting hot path.
//
// Counting is two-phase over the received occurrence parts:
//
//	observe: a k-mer already marked in the filter is admitted to the table
//	         (it has possibly been seen before); an unmarked k-mer only sets
//	         its filter bits. Singletons therefore stay out of the table —
//	         except for the filter's false positives, which are admitted
//	         with an eventual exact count of 1 and dropped by the [low,high]
//	         selection (the scheme requires low ≥ 2; CountAndBuild bypasses
//	         the filter entirely when low < 2).
//	tally:   every occurrence of an admitted k-mer increments its exact
//	         count. Counts of admitted k-mers are exact, so reliable-k-mer
//	         selection is identical to the map-based reference — the filter
//	         can only add count-1 entries that the selection removes.
//
// The admitted set can differ with observation order (false positives depend
// on which bits were set first — the async schedule observes parts as they
// arrive), but only on singletons: a k-mer occurring ≥ 2 times is admitted in
// every order, at the latest when its second occurrence finds the bits its
// first occurrence set. Selection over [low ≥ 2, high] is therefore
// schedule-invariant, which is what keeps contigs and traffic counters
// bit-identical across sync/async and thread counts.

// emptyKmer marks a vacant table slot: k ≤ 31 packs into at most 62 bits, so
// the all-ones word can never be a canonical k-mer.
const emptyKmer = ^Kmer(0)

// tableHash re-finalizes hash(km) for table slots and Bloom blocks. The
// extra mix is load-bearing: Owner routing selects this rank's k-mers by
// hash(km) mod P, so every k-mer an owner counts shares its low hash bits
// at power-of-two rank counts — indexing the table or filter with hash(km)
// directly would leave only 1/P of the blocks and start slots reachable,
// saturating the filter and clustering the probes exactly where the
// pipeline runs (P = 4, 16). A second finalizer round decorrelates the
// bits (murmur3's 64-bit finalizer).
func tableHash(km Kmer) uint64 {
	h := hash(km)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// CountTable is an open-addressing Kmer → int32 hash table (linear probing,
// power-of-two capacity, splitmix-hashed keys). It is the allocation-lean
// replacement for map[Kmer]int32 on the counting hot path, and doubles as the
// k-mer → column-id index of the reply step.
type CountTable struct {
	kms  []Kmer
	vals []int32
	n    int
	mask uint64
}

// NewCountTable allocates a table pre-sized for about capHint entries.
func NewCountTable(capHint int) *CountTable {
	size := 1024
	for size < 2*capHint {
		size <<= 1
	}
	t := &CountTable{kms: make([]Kmer, size), vals: make([]int32, size), mask: uint64(size - 1)}
	for i := range t.kms {
		t.kms[i] = emptyKmer
	}
	return t
}

// Len returns the number of stored k-mers.
func (t *CountTable) Len() int { return t.n }

// slot returns the index holding km, or the vacant slot where it belongs.
func (t *CountTable) slot(km Kmer) int {
	i := tableHash(km) & t.mask
	for t.kms[i] != emptyKmer && t.kms[i] != km {
		i = (i + 1) & t.mask
	}
	return int(i)
}

func (t *CountTable) grow() {
	old := *t
	size := len(old.kms) * 2
	t.kms = make([]Kmer, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	for i := range t.kms {
		t.kms[i] = emptyKmer
	}
	for i, km := range old.kms {
		if km != emptyKmer {
			j := t.slot(km)
			t.kms[j], t.vals[j] = km, old.vals[i]
		}
	}
}

// insert places km at a vacant slot with value v (caller guarantees absence).
func (t *CountTable) insert(i int, km Kmer, v int32) {
	t.kms[i], t.vals[i] = km, v
	t.n++
	if 2*t.n >= len(t.kms) {
		t.grow()
	}
}

// Admit inserts km with value 0 if absent (phase-1 admission; no-op when
// already present).
func (t *CountTable) Admit(km Kmer) {
	if i := t.slot(km); t.kms[i] == emptyKmer {
		t.insert(i, km, 0)
	}
}

// AddIfPresent increments km's value when km is in the table (phase-2 tally).
func (t *CountTable) AddIfPresent(km Kmer) {
	if i := t.slot(km); t.kms[i] == km {
		t.vals[i]++
	}
}

// Put stores v under km, inserting or overwriting.
func (t *CountTable) Put(km Kmer, v int32) {
	i := t.slot(km)
	if t.kms[i] == km {
		t.vals[i] = v
		return
	}
	t.insert(i, km, v)
}

// Get returns km's value and whether it is present.
func (t *CountTable) Get(km Kmer) (int32, bool) {
	if i := t.slot(km); t.kms[i] == km {
		return t.vals[i], true
	}
	return 0, false
}

// SelectReliable returns the sorted k-mers whose value lies in [low, high] —
// the table counterpart of the package-level SelectReliable.
func (t *CountTable) SelectReliable(low, high int32) []Kmer {
	out := make([]Kmer, 0, t.n)
	for i, km := range t.kms {
		if km != emptyKmer && t.vals[i] >= low && t.vals[i] <= high {
			out = append(out, km)
		}
	}
	slices.Sort(out)
	return out
}

// bloomBlockWords is the words-per-block of the blocked Bloom filter: 8
// uint64 = one 64-byte cache line, so a membership probe touches one line.
const bloomBlockWords = 8

// bloomProbes is the number of bits set/tested per key within its block.
const bloomProbes = 4

// blockedBloom is a cache-line-blocked Bloom filter: the low hash bits pick a
// 512-bit block, higher bits pick bloomProbes bit positions inside it. With
// the sizing policy of newBloom (~12 bits per expected key) the false
// positive rate stays around 1%, and a false positive merely admits a
// singleton to the count table (see the file comment), so precision is a
// space/time knob, not a correctness one.
type blockedBloom struct {
	words []uint64
	mask  uint64 // block count - 1 (block count is a power of two)
}

// newBloom sizes a filter for the expected number of distinct keys.
func newBloom(expected int) *blockedBloom {
	nblocks := 1
	for nblocks*bloomBlockWords*64 < expected*12 {
		nblocks <<= 1
	}
	return newBloomBlocks(nblocks)
}

// newBloomBlocks builds a filter with an explicit power-of-two block count —
// tests use tiny filters to force false-positive collisions.
func newBloomBlocks(nblocks int) *blockedBloom {
	if nblocks&(nblocks-1) != 0 || nblocks <= 0 {
		panic("kmer: bloom block count must be a positive power of two")
	}
	return &blockedBloom{words: make([]uint64, nblocks*bloomBlockWords), mask: uint64(nblocks - 1)}
}

// bitsSet returns the number of set bits across the whole filter — the
// occupancy numerator of the kmer.bloom_bits_set metric (occupancy near 50%
// means the sizing proxy undershot and false-positive admissions rise).
func (b *blockedBloom) bitsSet() int64 {
	var n int64
	for _, w := range b.words {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// testAndSet reports whether all of h's bits were already set, setting them
// either way ("possibly seen before" — the phase-1 admission test).
func (b *blockedBloom) testAndSet(h uint64) bool {
	blk := (h & b.mask) * bloomBlockWords
	// Probe bits come from the high half so they never overlap the block
	// index (block counts stay far below 2^28).
	x := h >> 28
	present := true
	for i := 0; i < bloomProbes; i++ {
		pos := x & 511 // 9 bits: word 3, bit 6
		x >>= 9
		w, bit := blk+pos>>6, uint(pos&63)
		if b.words[w]&(1<<bit) == 0 {
			present = false
			b.words[w] |= 1 << bit
		}
	}
	return present
}

// counter is the streaming two-phase counting state of one owner rank.
type counter struct {
	low   int32
	bloom *blockedBloom // nil when low < 2: every k-mer is admitted
	table *CountTable
}

// newCounter sizes the counting state for about expectedOcc incoming
// occurrences (the rank's own outgoing total is the proxy CountAndBuild uses:
// the k-mer hash spreads occurrences uniformly, so in ≈ out).
func newCounter(low int32, expectedOcc int) *counter {
	c := &counter{low: low}
	if low >= 2 {
		c.bloom = newBloom(expectedOcc)
		// Most k-mers are singletons at the counting stage (sequencing
		// errors); the admitted set is far smaller than the occurrence count.
		c.table = NewCountTable(expectedOcc / 4)
	} else {
		c.table = NewCountTable(expectedOcc)
	}
	return c
}

// observe runs phase 1 (admission) over one received part; parts may be
// observed in any order (see the file comment for why selection stays
// order-invariant).
func (c *counter) observe(part []uint64) {
	if c.bloom == nil {
		for _, w := range part {
			c.table.Admit(Kmer(w))
		}
		return
	}
	for _, w := range part {
		km := Kmer(w)
		if c.bloom.testAndSet(tableHash(km)) {
			c.table.Admit(km)
		}
	}
}

// tally runs phase 2 (exact counting) over one part; CountAndBuild tallies
// the retained parts in rank order in both comm modes.
func (c *counter) tally(part []uint64) {
	for _, w := range part {
		c.table.AddIfPresent(Kmer(w))
	}
}

// CountOccurrences is the two-phase Bloom-filtered counting kernel over
// complete occurrence parts (packed canonical k-mers): k-mers seen once never
// enter the table when low ≥ 2, and every stored count is exact. It returns
// the same reliable selection as the map-based reference for any low ≥ 1
// (when low < 2 the filter is bypassed so singletons are counted too).
func CountOccurrences(parts [][]uint64, low int32) *CountTable {
	var occ int
	for _, p := range parts {
		occ += len(p)
	}
	c := newCounter(low, occ)
	for _, p := range parts {
		c.observe(p)
	}
	for _, p := range parts {
		c.tally(p)
	}
	return c.table
}

// CountOccurrencesMap is the retained map-based reference kernel, used by the
// differential tests and the cmd/experiments -exp mem before/after table.
func CountOccurrencesMap(parts [][]uint64) map[Kmer]int32 {
	counts := make(map[Kmer]int32)
	for _, p := range parts {
		for _, w := range p {
			counts[Kmer(w)]++
		}
	}
	return counts
}
