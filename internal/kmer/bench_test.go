package kmer

import (
	"fmt"
	"testing"

	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/readsim"
)

func BenchmarkExtract(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 100000, Seed: 1})
	for _, k := range []int{17, 31} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(g)))
			for i := 0; i < b.N; i++ {
				Extract(g, k)
			}
		})
	}
}

// BenchmarkExtractInto is the scratch-reusing scan the pool workers and
// CountSerial run: steady-state it must not allocate at all.
func BenchmarkExtractInto(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 100000, Seed: 1})
	var sc ExtractScratch
	sc.ExtractInto(g, 31) // warm the scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(g)))
	for i := 0; i < b.N; i++ {
		sc.ExtractInto(g, 31)
	}
}

func BenchmarkCountSerial(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: 2})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 10, MeanLen: 3000, Seed: 3}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountSerial(reads, 31)
	}
}

// BenchmarkCountOccurrences is the owner-side counting kernel head-to-head:
// the retained map reference vs the blocked-Bloom two-phase scheme, on the
// occurrence stream CountAndBuild routes at P=1.
func BenchmarkCountOccurrences(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: 2})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 10, MeanLen: 3000, Seed: 3}))
	var occs []uint64
	var sc ExtractScratch
	for _, r := range reads {
		for _, kp := range sc.ExtractInto(r, 31) {
			occs = append(occs, uint64(kp.Kmer))
		}
	}
	parts := [][]uint64{occs}
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CountOccurrencesMap(parts)
		}
	})
	b.Run("bloom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CountOccurrences(parts, 2)
		}
	})
}

func BenchmarkCountAndBuildDistributed(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: 4})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 10, MeanLen: 3000, Seed: 5}))
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			err := mpi.Run(p, func(c *mpi.Comm) {
				store := fasta.FromGlobal(c, reads)
				for i := 0; i < b.N; i++ {
					CountAndBuild(store, 31, 2, 100, 1, false)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
