package kmer

import (
	"fmt"
	"testing"

	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/readsim"
)

func BenchmarkExtract(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 100000, Seed: 1})
	for _, k := range []int{17, 31} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(g)))
			for i := 0; i < b.N; i++ {
				Extract(g, k)
			}
		})
	}
}

func BenchmarkCountSerial(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: 2})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 10, MeanLen: 3000, Seed: 3}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountSerial(reads, 31)
	}
}

func BenchmarkCountAndBuildDistributed(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: 4})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 10, MeanLen: 3000, Seed: 5}))
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				store := fasta.FromGlobal(c, reads)
				for i := 0; i < b.N; i++ {
					CountAndBuild(store, 31, 2, 100, 1, false)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
