package kmer

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/readsim"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Bases[rng.Intn(4)]
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%MaxK) + 1
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, k)
		return bytes.Equal(Decode(Encode(s, k), k), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOrderIsLexicographic(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%MaxK) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randSeq(rng, k), randSeq(rng, k)
		return (Encode(a, k) < Encode(b, k)) == (bytes.Compare(a, b) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRevCompMatchesASCII(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%MaxK) + 1
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, k)
		return RevComp(Encode(s, k), k) == Encode(dna.RevComp(s), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(km uint64, kk uint8) bool {
		k := int(kk%MaxK) + 1
		mask := Kmer(1)<<(2*uint(k)) - 1
		v := Kmer(km) & mask
		return RevComp(RevComp(v, k), k) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 3
		s := randSeq(rng, rng.Intn(120)+k)
		got := Extract(s, k)
		// Naive reference.
		type ref struct {
			km  Kmer
			pos int32
			rc  bool
		}
		var want []ref
		seen := map[Kmer]bool{}
		for i := 0; i+k <= len(s); i++ {
			fwd := Encode(s[i:i+k], k)
			rc := RevComp(fwd, k)
			canon, isRC := fwd, false
			if rc < fwd {
				canon, isRC = rc, true
			}
			if seen[canon] {
				continue
			}
			seen[canon] = true
			want = append(want, ref{canon, int32(i), isRC})
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Kmer != want[i].km || got[i].Pos != want[i].pos || got[i].RC != want[i].rc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCanonicalStrandSymmetry(t *testing.T) {
	// A read and its reverse complement must yield the same canonical k-mer
	// set — the property that makes overlap detection strand-blind.
	rng := rand.New(rand.NewSource(4))
	s := randSeq(rng, 200)
	k := 15
	a := Extract(s, k)
	b := Extract(dna.RevComp(s), k)
	setA := map[Kmer]bool{}
	for _, kp := range a {
		setA[kp.Kmer] = true
	}
	setB := map[Kmer]bool{}
	for _, kp := range b {
		setB[kp.Kmer] = true
	}
	if !reflect.DeepEqual(setA, setB) {
		t.Fatal("canonical k-mer sets differ between strands")
	}
}

func TestExtractSkipsShortAndInvalid(t *testing.T) {
	if got := Extract([]byte("ACG"), 5); got != nil {
		t.Fatal("short read must have no k-mers")
	}
	// An N resets the window: ACGTNACGT with k=4 has windows ACGT (pos 0)
	// and ACGT (pos 5) — deduped to one occurrence.
	got := Extract([]byte("ACGTNACGT"), 4)
	if len(got) != 1 || got[0].Pos != 0 {
		t.Fatalf("invalid-base handling wrong: %+v", got)
	}
}

func TestSelectReliableBounds(t *testing.T) {
	counts := map[Kmer]int32{1: 1, 2: 2, 3: 5, 4: 9, 5: 2}
	got := SelectReliable(counts, 2, 5)
	want := []Kmer{2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCountSerialSimple(t *testing.T) {
	reads := [][]byte{[]byte("ACGTAC"), []byte("ACGTTT"), dna.RevComp([]byte("ACGTAC"))}
	counts := CountSerial(reads, 4)
	acgt := Encode([]byte("ACGT"), 4)
	rc := RevComp(acgt, 4)
	canon := acgt
	if rc < acgt {
		canon = rc
	}
	if counts[canon] != 3 {
		t.Fatalf("ACGT canonical count = %d, want 3", counts[canon])
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 8000, Seed: 21})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 8, MeanLen: 600, Seed: 22}))
	k, low, high := 15, int32(2), int32(60)

	// Serial reference.
	counts := CountSerial(reads, k)
	reliable := SelectReliable(counts, low, high)
	nRef := len(reliable)

	type key struct {
		row int32
		pos int32
		rc  bool
	}
	for _, p := range []int{1, 4, 9} {
		var got []ATriple
		err := mpi.Run(p, func(c *mpi.Comm) {
			store := fasta.FromGlobal(c, reads)
			res := CountAndBuild(store, k, low, high, 1, false)
			if res.NumCols != nRef {
				panic("reliable column count differs from serial")
			}
			all, _ := mpi.AllgathervFlat(c, res.Triples)
			if c.Rank() == 0 {
				got = all
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		// Reference triples: every (read, reliable kmer) occurrence.
		colOf := map[Kmer]int32{}
		for i, km := range reliable {
			colOf[km] = int32(i)
		}
		var wantKeys []key
		for r, seq := range reads {
			for _, kp := range Extract(seq, k) {
				if _, ok := colOf[kp.Kmer]; ok {
					wantKeys = append(wantKeys, key{int32(r), kp.Pos, kp.RC})
				}
			}
		}
		if len(got) != len(wantKeys) {
			t.Fatalf("P=%d: %d triples, want %d", p, len(got), len(wantKeys))
		}
		gotKeys := make([]key, len(got))
		for i, tr := range got {
			gotKeys[i] = key{tr.Row, tr.Val.Pos, tr.Val.RC}
		}
		less := func(a, b key) bool {
			if a.row != b.row {
				return a.row < b.row
			}
			if a.pos != b.pos {
				return a.pos < b.pos
			}
			return !a.rc && b.rc
		}
		sort.Slice(gotKeys, func(i, j int) bool { return less(gotKeys[i], gotKeys[j]) })
		sort.Slice(wantKeys, func(i, j int) bool { return less(wantKeys[i], wantKeys[j]) })
		if !reflect.DeepEqual(gotKeys, wantKeys) {
			t.Fatalf("P=%d: triple sets differ", p)
		}
	}
}

func TestDistributedColumnIdsConsistent(t *testing.T) {
	// The same k-mer must get the same column id no matter which rank asks:
	// check that (kmer → col) is a function by grouping triples of identical
	// (pos-independent) k-mers. We reconstruct k-mers from reads.
	g := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: 31})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 6, MeanLen: 400, Seed: 32}))
	k := 13
	err := mpi.Run(4, func(c *mpi.Comm) {
		store := fasta.FromGlobal(c, reads)
		res := CountAndBuild(store, k, 2, 1000, 2, false)
		type pair struct {
			km  uint64
			col int32
		}
		var local []pair
		for _, tr := range res.Triples {
			seq := store.Get(int(tr.Row))
			fwd := Encode(seq[tr.Val.Pos:int(tr.Val.Pos)+k], k)
			canon := fwd
			if rc := RevComp(fwd, k); rc < fwd {
				canon = rc
			}
			local = append(local, pair{uint64(canon), tr.Col})
		}
		all, _ := mpi.AllgathervFlat(c, local)
		colOf := map[uint64]int32{}
		for _, pr := range all {
			if prev, ok := colOf[pr.km]; ok && prev != pr.col {
				panic("same k-mer mapped to different columns")
			}
			colOf[pr.km] = pr.col
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountAndBuildAsyncMatchesSync(t *testing.T) {
	// The nonblocking exchange schedule (receives posted before the
	// extraction scan, parts counted as they arrive) must produce identical
	// results and identical traffic to the blocking protocol on every P.
	g := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 71})
	reads := readsim.Seqs(readsim.Simulate(g, readsim.ReadConfig{Depth: 6, MeanLen: 450, Seed: 72}))
	k := 15
	for _, p := range []int{1, 4, 9} {
		results := make([]*Result, 2)
		traffic := make([][2]int64, 2)
		for mode, async := range []bool{false, true} {
			w := mpi.NewWorld(p)
			err := w.Run(func(c *mpi.Comm) {
				store := fasta.FromGlobal(c, reads)
				res := CountAndBuild(store, k, 2, 1000, 2, async)
				if c.Rank() == 0 {
					results[mode] = res
				}
			})
			if err != nil {
				t.Fatalf("P=%d async=%v: %v", p, async, err)
			}
			traffic[mode] = [2]int64{w.TotalBytes(), w.TotalMsgs()}
		}
		if results[0].NumCols != results[1].NumCols {
			t.Fatalf("P=%d: column counts differ: %d vs %d", p, results[0].NumCols, results[1].NumCols)
		}
		if !reflect.DeepEqual(results[0].Triples, results[1].Triples) {
			t.Fatalf("P=%d: triples differ between sync and async", p)
		}
		if traffic[0] != traffic[1] {
			t.Fatalf("P=%d: traffic differs: sync %v, async %v", p, traffic[0], traffic[1])
		}
	}
}
