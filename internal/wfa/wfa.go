// Package wfa implements gap-affine wavefront alignment (Marco-Sola et al.,
// Bioinformatics 2021) as a pluggable backend for the Alignment stage: the
// same seed-anchored bidirectional extension contract as the x-drop DP
// (align.Aligner), but O(n·s) in the alignment penalty s instead of
// O(n·band). On low-divergence pairs (PacBio HiFi-style reads) the penalty —
// and with it the number of wavefront offsets computed — stays tiny, so WFA
// wins exactly where the x-drop still pays its per-antidiagonal band cost.
//
// The wavefront runs in a "doubled score" dual space: with penalties
// mismatch = 2·(match − mismatchScore) and gapExt = match − 2·gapScore
// (DualParams), minimizing WFA penalty q is equivalent to maximizing the
// classic linear-gap score, via 2·score = match·(v+h) − q for a cell that
// has consumed v bases of s and h of t. Extension results therefore convert
// back to x-drop-compatible scores and extents exactly. An adaptive
// wavefront-pruning heuristic plays the role of the x-drop cutoff: any
// diagonal whose dual score lags the running best by more than 2·Drop is
// removed from the wavefront, which bounds both the wavefront width and the
// number of waves.
package wfa

import (
	"repro/internal/align"
)

// Params are the wavefront penalties (all ≥ 0, dual doubled-score units)
// plus the knobs shared with the x-drop backend.
type Params struct {
	Match    int32 // classic per-base match score (> 0); converts offsets back into scores
	Mismatch int32 // substitution penalty (≥ 1)
	GapOpen  int32 // gap-open penalty, charged once per gap run (0 = linear gaps)
	GapExt   int32 // per-base gap-extension penalty (≥ 1)
	// Drop is the adaptive-pruning threshold in classic score units, the
	// x-drop analog: diagonals whose score falls more than Drop below the
	// running best leave the wavefront.
	Drop int32
	// Cells, when non-nil, accumulates the number of wavefront offsets
	// computed — the work counter behind package perfmodel (the aligner
	// wrapper supplies its own; see New).
	Cells *int64
}

// DualParams converts x-drop scoring parameters into the equivalent
// linear-gap wavefront penalties: alignments ranked identically, scores
// convertible exactly. With align.DefaultParams (+1/−2/−2) this yields
// mismatch 6, gapExt 5, gapOpen 0.
func DualParams(a align.Params) Params {
	return Params{
		Match:    a.Match,
		Mismatch: 2 * (a.Match - a.Mismatch),
		GapOpen:  0,
		GapExt:   a.Match - 2*a.Gap,
		Drop:     a.XDrop,
	}
}

// DefaultParams mirrors align.DefaultParams(drop) in wavefront space.
func DefaultParams(drop int32) Params {
	return DualParams(align.DefaultParams(drop))
}

const none = int32(-1 << 30)

// wave holds the furthest-reaching offsets of one penalty level: off[k-lo]
// is h, the number of t bases consumed on diagonal k = h − v (none = no
// live cell). Empty waves have a nil off.
type wave struct {
	lo  int32
	off []int32
}

func (w wave) empty() bool { return len(w.off) == 0 }

// get returns the offset of diagonal k, or none.
func (w wave) get(k int32) int32 {
	if idx := k - w.lo; idx >= 0 && idx < int32(len(w.off)) {
		return w.off[idx]
	}
	return none
}

// Aligner is the wavefront backend; it satisfies align.Aligner. Instances
// keep their wavefront storage across calls and are not safe for concurrent
// use — the overlap stage builds one per simulated rank.
type Aligner struct {
	p     Params
	cells int64
	// Wavefront components indexed by penalty: match/mismatch (m),
	// insertion-in-t (i) and deletion-from-t (d), reused across calls.
	m, i, d []wave
	// scratch backs the wrapper's reverse-complement/reversed-prefix copies;
	// ext is the pre-bound extension func so SeedExtend closes over nothing.
	scratch align.Scratch
	ext     align.ExtendFunc
}

// New builds a wavefront backend. Any Cells pointer in p is replaced by the
// aligner's own cumulative work counter (see Work).
func New(p Params) *Aligner {
	if p.Match <= 0 || p.Mismatch < 1 || p.GapExt < 1 || p.GapOpen < 0 {
		panic("wfa: need Match > 0, Mismatch ≥ 1, GapExt ≥ 1, GapOpen ≥ 0")
	}
	a := &Aligner{p: p}
	a.p.Cells = &a.cells
	a.ext = a.Extend
	return a
}

// Name implements align.Aligner.
func (a *Aligner) Name() string { return "wfa" }

// Work implements align.Aligner: wavefront offsets computed plus match-run
// cells visited, the WFA equivalent of the x-drop's DP-cell counter.
func (a *Aligner) Work() int64 { return a.cells }

// SeedExtend implements align.Aligner via the shared bidirectional wrapper,
// with the instance's scratch buffers.
func (a *Aligner) SeedExtend(u, v []byte, k int32, seed align.Seed) align.Result {
	return align.SeedExtendWithScratch(&a.scratch, u, v, k, seed, a.p.Match, a.ext)
}

// Extend is the extension primitive (align.ExtendFunc): the best local
// extension of s versus t from (0,0) forward, returning the classic score
// and half-open extents. Semantics match the x-drop extend; only the search
// order differs (per-penalty wavefronts instead of per-antidiagonal bands).
func (a *Aligner) Extend(s, t []byte) (score, si, ti int32) {
	ns, nt := int32(len(s)), int32(len(t))
	if ns == 0 || nt == 0 {
		return 0, 0, 0
	}
	p := a.p
	x, oe, e := p.Mismatch, p.GapOpen+p.GapExt, p.GapExt
	lookback := x
	if oe > lookback {
		lookback = oe
	}
	drop2 := 2 * p.Drop

	a.m, a.i, a.d = a.m[:0], a.i[:0], a.d[:0]
	var cells int64
	defer func() {
		if p.Cells != nil {
			*p.Cells += cells
		}
	}()

	// best2 is the doubled classic score of the best cell seen; ties break
	// like the x-drop: furthest v+h, then furthest v.
	best2, bv, bh := int32(0), int32(0), int32(0)
	better := func(s2, v, h int32) bool {
		if s2 != best2 {
			return s2 > best2
		}
		if v+h != bv+bh {
			return v+h > bv+bh
		}
		return v > bv
	}
	// scan match-extends one wave along its diagonals, updates the best
	// cell, applies the adaptive prune, and reports whether the wave is
	// still live.
	scan := func(w *wave, q int32, isM bool) bool {
		live := false
		liveLo, liveHi := int32(len(w.off)), int32(-1)
		for idx := range w.off {
			h := w.off[idx]
			if h <= none/2 {
				continue
			}
			k := w.lo + int32(idx)
			if isM {
				// Furthest-reaching match run.
				for h < nt && h-k < ns && s[h-k] == t[h] {
					h++
					cells++
				}
				w.off[idx] = h
				if s2 := p.Match*(2*h-k) - q; better(s2, h-k, h) {
					best2, bv, bh = s2, h-k, h
				}
			}
			// Adaptive prune: the x-drop rule in dual space.
			if p.Match*(2*h-k)-q < best2-drop2 {
				w.off[idx] = none
				continue
			}
			live = true
			if int32(idx) < liveLo {
				liveLo = int32(idx)
			}
			if int32(idx) > liveHi {
				liveHi = int32(idx)
			}
		}
		if !live {
			*w = wave{}
			return false
		}
		w.lo, w.off = w.lo+liveLo, w.off[liveLo:liveHi+1]
		return true
	}
	at := func(c []wave, q int32) wave {
		if q < 0 || q >= int32(len(c)) {
			return wave{}
		}
		return c[q]
	}

	// Penalty 0: the single cell (0,0) in M; I and D start empty.
	a.m = append(a.m, wave{lo: 0, off: []int32{0}})
	a.i = append(a.i, wave{})
	a.d = append(a.d, wave{})
	cells++
	scan(&a.m[0], 0, true)
	lastLive := int32(0)

	// Safety cap: beyond it every cell's dual score is under best2 − drop2
	// (best2 ≥ 0), so the prune has necessarily emptied all wavefronts.
	qcap := p.Match*(ns+nt) + drop2 + lookback + 1
	for q := int32(1); q-lastLive <= lookback && q < qcap; q++ {
		mx, mo := at(a.m, q-x), at(a.m, q-oe)
		ie, de := at(a.i, q-e), at(a.d, q-e)
		lo, hi := int32(1)<<30, int32(-1)<<30
		span := func(slo, shi, dk int32) {
			if slo+dk < lo {
				lo = slo + dk
			}
			if shi+dk > hi {
				hi = shi + dk
			}
		}
		if !mx.empty() {
			span(mx.lo, mx.lo+int32(len(mx.off))-1, 0)
		}
		if !mo.empty() {
			span(mo.lo, mo.lo+int32(len(mo.off))-1, -1)
			span(mo.lo, mo.lo+int32(len(mo.off))-1, 1)
		}
		if !ie.empty() {
			span(ie.lo, ie.lo+int32(len(ie.off))-1, 1)
		}
		if !de.empty() {
			span(de.lo, de.lo+int32(len(de.off))-1, -1)
		}
		if lo > hi {
			a.m, a.i, a.d = append(a.m, wave{}), append(a.i, wave{}), append(a.d, wave{})
			continue
		}
		width := hi - lo + 1
		iOff := make([]int32, width)
		dOff := make([]int32, width)
		mOff := make([]int32, width)
		cells += 3 * int64(width)
		for k := lo; k <= hi; k++ {
			// I: gap in s (consume t): offset +1 from diagonal k−1.
			ins := maxOff(mo.get(k-1), ie.get(k-1))
			if ins > none/2 {
				ins++
			}
			if ins > nt || ins-k > ns || ins-k < 0 {
				ins = none
			}
			// D: gap in t (consume s): offset unchanged from diagonal k+1.
			del := maxOff(mo.get(k+1), de.get(k+1))
			if del > nt || del-k > ns || del < 0 {
				del = none
			}
			// M: mismatch (consume both) from the same diagonal, or close a
			// gap from the I/D cells just computed.
			mis := mx.get(k)
			if mis > none/2 {
				mis++
			}
			if mis > nt || mis-k > ns || mis-k < 1 {
				mis = none
			}
			iOff[k-lo], dOff[k-lo] = ins, del
			mOff[k-lo] = maxOff(mis, maxOff(ins, del))
		}
		wi := wave{lo: lo, off: iOff}
		wd := wave{lo: lo, off: dOff}
		wm := wave{lo: lo, off: mOff}
		liveQ := scan(&wm, q, true)
		if scan(&wi, q, false) {
			liveQ = true
		}
		if scan(&wd, q, false) {
			liveQ = true
		}
		a.m, a.i, a.d = append(a.m, wm), append(a.i, wi), append(a.d, wd)
		if liveQ {
			lastLive = q
		}
	}
	return best2 / 2, bv, bh
}

func maxOff(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
