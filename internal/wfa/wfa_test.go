package wfa

import (
	"testing"

	"repro/internal/readsim"
)

func TestExtendExactMatch(t *testing.T) {
	a := New(DefaultParams(10))
	s := []byte("ACGTACGTAC")
	score, si, ti := a.Extend(s, s)
	if score != int32(len(s)) || si != int32(len(s)) || ti != int32(len(s)) {
		t.Fatalf("score=%d si=%d ti=%d", score, si, ti)
	}
}

func TestExtendUnequalLengths(t *testing.T) {
	a := New(DefaultParams(10))
	g := readsim.Genome(readsim.GenomeConfig{Length: 300, Seed: 1})
	score, si, ti := a.Extend(g[:120], g[:300])
	if score != 120 || si != 120 || ti != 120 {
		t.Fatalf("prefix overlap: score=%d si=%d ti=%d, want 120,120,120", score, si, ti)
	}
}

func TestExtendStopsAtDivergence(t *testing.T) {
	a := New(DefaultParams(4))
	s := []byte("AAAAAAAAAA" + "CCCCCCCCCCCCCCCC")
	u := []byte("AAAAAAAAAA" + "GGGGGGGGGGGGGGGG")
	score, si, ti := a.Extend(s, u)
	if score != 10 || si != 10 || ti != 10 {
		t.Fatalf("divergence: score=%d si=%d ti=%d, want 10,10,10", score, si, ti)
	}
}

func TestExtendCrossesSubstitution(t *testing.T) {
	a := New(DefaultParams(10))
	s := []byte("ACGTACGTAAACGTACGTAC")
	u := append([]byte(nil), s...)
	u[10] = 'T'
	score, si, ti := a.Extend(s, u)
	if si != int32(len(s)) || ti != int32(len(u)) {
		t.Fatalf("did not cross substitution: si=%d ti=%d", si, ti)
	}
	// 19 matches + 1 mismatch (−2) = 17 under the dual of +1/−2/−2.
	if score != 17 {
		t.Fatalf("score=%d want 17", score)
	}
}

func TestExtendCrossesIndel(t *testing.T) {
	a := New(DefaultParams(12))
	s := []byte("ACGTACGTACGTACGTACGT")
	u := append(append([]byte(nil), s[:9]...), s[10:]...)
	score, si, ti := a.Extend(s, u)
	if si != int32(len(s)) || ti != int32(len(u)) {
		t.Fatalf("did not cross deletion: si=%d ti=%d", si, ti)
	}
	// 19 matches + 1 gap (−2) = 17.
	if score != 17 {
		t.Fatalf("score=%d want 17", score)
	}
}

func TestExtendEmptyInputs(t *testing.T) {
	a := New(DefaultParams(5))
	if s, i, j := a.Extend(nil, []byte("ACGT")); s != 0 || i != 0 || j != 0 {
		t.Fatal("empty s must be zero extension")
	}
	if s, i, j := a.Extend([]byte("ACGT"), nil); s != 0 || i != 0 || j != 0 {
		t.Fatal("empty t must be zero extension")
	}
}

func TestAdaptivePruneLimitsWastedWork(t *testing.T) {
	// Unrelated sequences must terminate with a short extension and a small
	// work counter, not explore O(n²) offsets: the adaptive prune is the
	// x-drop cutoff of this backend.
	a := New(DefaultParams(8))
	g := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 7})
	h := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 8})
	score, si, ti := a.Extend(g, h)
	if si > 200 || ti > 200 {
		t.Fatalf("prune failed to stop: si=%d ti=%d score=%d", si, ti, score)
	}
	if w := a.Work(); w > 100_000 {
		t.Fatalf("work counter %d suggests the prune is not bounding the wavefront", w)
	}
}

func TestWorkCounterGrowsWithPenalty(t *testing.T) {
	// The same pair at higher divergence must report more work: perfmodel
	// depends on the counter tracking actual effort.
	g := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: 11})
	clean := readsim.Simulate(g, readsim.ReadConfig{Depth: 0.999, MeanLen: 3800, ErrorRate: 0.002, Seed: 5, ForwardOnly: true})
	noisy := readsim.Simulate(g, readsim.ReadConfig{Depth: 0.999, MeanLen: 3800, ErrorRate: 0.10, Seed: 5, ForwardOnly: true})
	if len(clean) == 0 || len(noisy) == 0 {
		t.Skip("no reads")
	}
	a1 := New(DefaultParams(40))
	a1.Extend(g[clean[0].Pos:], clean[0].Seq)
	a2 := New(DefaultParams(40))
	a2.Extend(g[noisy[0].Pos:], noisy[0].Seq)
	if a1.Work() == 0 || a2.Work() <= a1.Work() {
		t.Fatalf("work: clean=%d noisy=%d, want 0 < clean < noisy", a1.Work(), a2.Work())
	}
}

func TestNewRejectsDegeneratePenalties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must reject zero GapExt (free gaps never terminate)")
		}
	}()
	New(Params{Match: 1, Mismatch: 6, GapExt: 0, Drop: 10})
}
