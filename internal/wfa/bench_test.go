package wfa

import (
	"fmt"
	"testing"

	"repro/internal/align"
	"repro/internal/readsim"
)

// BenchmarkExtendBackends is the extension-primitive head-to-head across the
// error-rate regimes of the readsim presets (0.5% C. elegans/O. sativa, 15%
// H. sapiens): the WFA claim is O(n·s) beating O(n·band) at low divergence.
func BenchmarkExtendBackends(b *testing.B) {
	for _, er := range []float64{0.005, 0.05, 0.15} {
		g := readsim.Genome(readsim.GenomeConfig{Length: 9000, Seed: 2})
		reads := readsim.Simulate(g, readsim.ReadConfig{
			Depth: 0.999, MeanLen: 8000, ErrorRate: er, Seed: 3, ForwardOnly: true,
		})
		if len(reads) == 0 {
			b.Fatal("no reads")
		}
		r := reads[0]
		s, t := g[r.Pos:], r.Seq
		drop := int32(15)
		if er > 0.01 {
			drop = 40
		}
		b.Run(fmt.Sprintf("err=%g/xdrop", er), func(b *testing.B) {
			xd := align.NewXDrop(align.DefaultParams(drop))
			b.SetBytes(int64(len(t)))
			for i := 0; i < b.N; i++ {
				xd.Extend(s, t)
			}
			b.ReportMetric(float64(xd.Work())/float64(b.N), "cells/op")
		})
		b.Run(fmt.Sprintf("err=%g/wfa", er), func(b *testing.B) {
			wf := New(DefaultParams(drop))
			b.SetBytes(int64(len(t)))
			for i := 0; i < b.N; i++ {
				wf.Extend(s, t)
			}
			b.ReportMetric(float64(wf.Work())/float64(b.N), "cells/op")
		})
	}
}

// BenchmarkSeedExtendRC mirrors the align package benchmark for the
// wavefront backend: seed-anchored bidirectional extension with an RC seed.
func BenchmarkSeedExtendRC(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 4})
	u := g[:4000]
	v := g[2000:]
	k := int32(17)
	seed := align.Seed{PU: 3000, PV: int32(len(v)) - (3000 - 2000) - k, RC: true}
	vr := make([]byte, len(v))
	for i := range v {
		vr[len(v)-1-i] = map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}[v[i]]
	}
	wf := New(DefaultParams(15))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf.SeedExtend(u, vr, k, seed)
	}
}
