package wfa

// Cross-validation between the wavefront backend and the x-drop backend:
// both implement the same seed-and-extend contract with equivalent scoring
// (DualParams), so on error-free overlaps they must report identical scores
// and extents, and on noisy pairs identities within tolerance (the two
// pruning heuristics may cut borderline paths differently).

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/readsim"
)

func backendPair(drop int32) (*align.XDropAligner, *Aligner) {
	return align.NewXDrop(align.DefaultParams(drop)), New(DefaultParams(drop))
}

func TestAgreementErrorFreeRandomized(t *testing.T) {
	const k = int32(17)
	xd, wf := backendPair(15)
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		g := readsim.Genome(readsim.GenomeConfig{Length: 600 + rng.Intn(1400), Seed: rng.Int63()})
		// u covers a prefix window, v a suffix window, overlapping ≥ k+20.
		lu := 200 + rng.Intn(len(g)-250)
		minOv := int(k) + 20
		s0 := rng.Intn(lu - minOv)
		u := g[:lu]
		v := append([]byte(nil), g[s0:]...)
		// Seed anywhere inside the true overlap.
		gs := s0 + rng.Intn(lu-s0-int(k)+1)
		seed := align.Seed{PU: int32(gs), PV: int32(gs - s0)}
		if rng.Intn(2) == 1 {
			// Present v reverse-complemented with the matching RC seed.
			seed.PV = int32(len(v)) - seed.PV - k
			seed.RC = true
			v = dna.RevComp(v)
		}
		ax := xd.SeedExtend(u, v, k, seed)
		aw := wf.SeedExtend(u, v, k, seed)
		if ax.Score != aw.Score || ax.BU != aw.BU || ax.EU != aw.EU ||
			ax.BV != aw.BV || ax.EV != aw.EV || ax.RC != aw.RC {
			t.Fatalf("trial %d: error-free disagreement\nxdrop u[%d,%d) v[%d,%d) score=%d\nwfa   u[%d,%d) v[%d,%d) score=%d",
				trial, ax.BU, ax.EU, ax.BV, ax.EV, ax.Score,
				aw.BU, aw.EU, aw.BV, aw.EV, aw.Score)
		}
	}
}

func TestAgreementNoisyWithinTolerance(t *testing.T) {
	const k = 17
	for _, errRate := range []float64{0.03, 0.10, 0.15} {
		xd, wf := backendPair(40)
		g := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: int64(1000 * errRate)})
		reads := readsim.Simulate(g, readsim.ReadConfig{
			Depth: 3, MeanLen: 1500, ErrorRate: errRate, Seed: 23, ForwardOnly: true,
		})
		compared := 0
		for _, r := range reads {
			u := g
			v := r.Seq
			// Shared exact k-mer as seed (what the k-mer stage would find).
			idx := map[string]int32{}
			for i := 0; i+k <= len(u); i++ {
				idx[string(u[i:i+k])] = int32(i)
			}
			seed, found := align.Seed{}, false
			for j := 0; j+k <= len(v); j++ {
				if i, ok := idx[string(v[j:j+k])]; ok {
					seed, found = align.Seed{PU: i, PV: int32(j)}, true
					break
				}
			}
			if !found {
				continue
			}
			compared++
			ax := xd.SeedExtend(u, v, int32(k), seed)
			aw := wf.SeedExtend(u, v, int32(k), seed)
			// Identity proxy: score density over the aligned span. The two
			// prunes may cut borderline tails differently, so compare
			// densities, not exact extents.
			idX := density(ax)
			idW := density(aw)
			if d := idX - idW; d > 0.15 || d < -0.15 {
				t.Fatalf("err=%.0f%%: identities diverge: xdrop %.3f (span %d) vs wfa %.3f (span %d)",
					errRate*100, idX, ax.EU-ax.BU, idW, aw.EU-aw.BU)
			}
		}
		if compared < 3 {
			t.Fatalf("err=%.0f%%: only %d comparable pairs; test is vacuous", errRate*100, compared)
		}
	}
}

func density(a align.Result) float64 {
	span := a.EU - a.BU
	if sv := a.EV - a.BV; sv > span {
		span = sv
	}
	if span == 0 {
		return 0
	}
	return float64(a.Score) / float64(span)
}

func TestAgreementSeedAtReadBoundary(t *testing.T) {
	const k = int32(15)
	xd, wf := backendPair(15)
	g := readsim.Genome(readsim.GenomeConfig{Length: 400, Seed: 5})
	u := g[:200]
	v := append([]byte(nil), g[100:300]...)
	cases := []align.Seed{
		{PU: 100, PV: 0},                    // seed at v start: no left extension
		{PU: int32(len(u)) - k, PV: 85},     // seed flush with u end: no right extension
		{PU: 100 + 0, PV: 0, RC: false},     // both boundary-adjacent
		{PU: int32(len(u)) - k, PV: 85 + 0}, // duplicate orientation guard
	}
	for i, seed := range cases {
		ax := xd.SeedExtend(u, v, k, seed)
		aw := wf.SeedExtend(u, v, k, seed)
		if ax != aw {
			t.Fatalf("case %d: boundary seed disagreement: xdrop %+v wfa %+v", i, ax, aw)
		}
	}
	// A read that is exactly one k-mer: both extensions are empty.
	kmer := append([]byte(nil), g[50:50+k]...)
	ax := xd.SeedExtend(kmer, g, k, align.Seed{PU: 0, PV: 50})
	aw := wf.SeedExtend(kmer, g, k, align.Seed{PU: 0, PV: 50})
	if ax != aw || ax.Score != k {
		t.Fatalf("k-mer-long read: xdrop %+v wfa %+v", ax, aw)
	}
}

func TestAgreementAllMismatchTails(t *testing.T) {
	const k = int32(15)
	xd, wf := backendPair(10)
	core := readsim.Genome(readsim.GenomeConfig{Length: 60, Seed: 9})
	u := append(append([]byte(nil), core...), []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")...)
	v := append(append([]byte(nil), core...), []byte("CCCCCCCCCCCCCCCCCCCCCCCCCCCCCC")...)
	seed := align.Seed{PU: 20, PV: 20}
	ax := xd.SeedExtend(u, v, k, seed)
	aw := wf.SeedExtend(u, v, k, seed)
	if ax != aw {
		t.Fatalf("all-mismatch tails: xdrop %+v wfa %+v", ax, aw)
	}
	if ax.EU > int32(len(core)) || ax.EV > int32(len(core)) {
		t.Fatalf("extension ran into the all-mismatch tail: u[%d,%d) v[%d,%d)", ax.BU, ax.EU, ax.BV, ax.EV)
	}
}
