package partition

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchSizes(n int) []int64 {
	rng := rand.New(rand.NewSource(9))
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(5000) + 2)
	}
	return sizes
}

func BenchmarkLPT(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		sizes := benchSizes(n)
		b.Run(fmt.Sprintf("n=%d/P=1024", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LPT(sizes, 1024)
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B) {
	sizes := benchSizes(100000)
	b.Run("n=100000/P=1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Greedy(sizes, 1024)
		}
	})
}
