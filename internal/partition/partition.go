// Package partition implements the multiway number partitioning of §4.3:
// assigning contigs (weighted by estimated size) to P processes so the
// local-assembly makespan is minimized. The paper uses Graham's Longest
// Processing Time (LPT) greedy: sort sizes descending, repeatedly give the
// next contig to the least-loaded process. LPT guarantees a makespan within
// (4P−1)/(3P) of optimal; the unsorted greedy variant (kept for the ablation
// benchmark) only guarantees 2−1/P.
package partition

import (
	"container/heap"
	"sort"
)

// procHeap is a min-heap of (load, proc); ties break on the lower process
// id, which keeps the assignment deterministic.
type procHeap struct {
	load []int64
	proc []int32
}

func (h *procHeap) Len() int { return len(h.load) }
func (h *procHeap) Less(i, j int) bool {
	if h.load[i] != h.load[j] {
		return h.load[i] < h.load[j]
	}
	return h.proc[i] < h.proc[j]
}
func (h *procHeap) Swap(i, j int) {
	h.load[i], h.load[j] = h.load[j], h.load[i]
	h.proc[i], h.proc[j] = h.proc[j], h.proc[i]
}
func (h *procHeap) Push(x any) { panic("fixed-size heap") }
func (h *procHeap) Pop() any   { panic("fixed-size heap") }

// assignGreedy gives each size (in the given order) to the least-loaded
// process.
func assignGreedy(order []int32, sizes []int64, p int) ([]int32, []int64) {
	h := &procHeap{load: make([]int64, p), proc: make([]int32, p)}
	for i := range h.proc {
		h.proc[i] = int32(i)
	}
	heap.Init(h)
	assign := make([]int32, len(sizes))
	for _, idx := range order {
		assign[idx] = h.proc[0]
		h.load[0] += sizes[idx]
		heap.Fix(h, 0)
	}
	loads := make([]int64, p)
	for i := range h.load {
		loads[h.proc[i]] = h.load[i]
	}
	return assign, loads
}

// LPT partitions sizes into p subsets with the Longest Processing Time
// rule, returning the subset index of each input and the subset sums.
// Equal sizes keep their input order (deterministic across runs and ranks).
func LPT(sizes []int64, p int) (assign []int32, loads []int64) {
	order := make([]int32, len(sizes))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	return assignGreedy(order, sizes, p)
}

// Greedy partitions sizes in their input order (no sort) — the O(n) variant
// the paper mentions with approximation ratio 2−1/P.
func Greedy(sizes []int64, p int) (assign []int32, loads []int64) {
	order := make([]int32, len(sizes))
	for i := range order {
		order[i] = int32(i)
	}
	return assignGreedy(order, sizes, p)
}

// Makespan returns the largest subset sum.
func Makespan(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// LowerBound returns max(ceil(sum/p), max size): no partition can beat it.
func LowerBound(sizes []int64, p int) int64 {
	var sum, mx int64
	for _, s := range sizes {
		sum += s
		if s > mx {
			mx = s
		}
	}
	lb := (sum + int64(p) - 1) / int64(p)
	if mx > lb {
		return mx
	}
	return lb
}

// OptimalMakespan solves the partition exactly by branch and bound — only
// for tests and tiny inputs (exponential).
func OptimalMakespan(sizes []int64, p int) int64 {
	if len(sizes) == 0 {
		return 0
	}
	sorted := append([]int64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	best := Makespan(func() []int64 { _, l := LPT(sizes, p); return l }())
	loads := make([]int64, p)
	lb := LowerBound(sizes, p)
	var rec func(i int)
	rec = func(i int) {
		if best == lb {
			return
		}
		if i == len(sorted) {
			if m := Makespan(loads); m < best {
				best = m
			}
			return
		}
		seen := map[int64]bool{}
		for j := 0; j < p; j++ {
			if seen[loads[j]] {
				continue // symmetric branch
			}
			seen[loads[j]] = true
			if loads[j]+sorted[i] >= best {
				continue
			}
			loads[j] += sorted[i]
			rec(i + 1)
			loads[j] -= sorted[i]
		}
	}
	rec(0)
	return best
}
