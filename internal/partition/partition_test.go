package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLPTSimple(t *testing.T) {
	// Graham's classic worst case: {5,5,4,4,3,3,3} on 3 machines. LPT yields
	// makespan 11; the optimum is 9 ({5,4},{5,4},{3,3,3}) — the 11/9 ratio
	// example behind the (4P−1)/(3P) bound.
	sizes := []int64{5, 5, 4, 4, 3, 3, 3}
	assign, loads := LPT(sizes, 3)
	if len(assign) != len(sizes) {
		t.Fatal("assign length")
	}
	if Makespan(loads) != 11 {
		t.Fatalf("LPT makespan %d, want 11", Makespan(loads))
	}
	if opt := OptimalMakespan(sizes, 3); opt != 9 {
		t.Fatalf("optimal makespan %d, want 9", opt)
	}
	// Loads must account for every size.
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 27 {
		t.Fatalf("loads sum %d", sum)
	}
}

func TestAssignmentConsistentWithLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		p := rng.Intn(8) + 1
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(1000) + 1)
		}
		assign, loads := LPT(sizes, p)
		check := make([]int64, p)
		for i, a := range assign {
			if a < 0 || int(a) >= p {
				return false
			}
			check[a] += sizes[i]
		}
		for i := range loads {
			if check[i] != loads[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTApproximationBound(t *testing.T) {
	// LPT makespan ≤ (4P−1)/(3P) × OPT (Graham 1969).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		p := rng.Intn(4) + 2
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(100) + 1)
		}
		_, loads := LPT(sizes, p)
		got := Makespan(loads)
		opt := OptimalMakespan(sizes, p)
		// Integer-safe comparison: got*3P ≤ opt*(4P−1).
		return got*int64(3*p) <= opt*int64(4*p-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBoundAndLPTUsuallyBetter(t *testing.T) {
	// The unsorted greedy respects 2−1/P; across many random instances LPT's
	// makespan must be no worse on average (the ablation claim).
	rng := rand.New(rand.NewSource(7))
	var lptTotal, greedyTotal int64
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40) + 5
		p := rng.Intn(6) + 2
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(500) + 1)
		}
		_, l1 := LPT(sizes, p)
		_, l2 := Greedy(sizes, p)
		lptTotal += Makespan(l1)
		greedyTotal += Makespan(l2)
		lb := LowerBound(sizes, p)
		if Makespan(l2)*int64(p) > lb*int64(2*p-1) {
			t.Fatalf("greedy exceeded 2-1/P bound: %d vs lb %d (p=%d)", Makespan(l2), lb, p)
		}
	}
	if lptTotal > greedyTotal {
		t.Fatalf("LPT (%d) worse than greedy (%d) in aggregate", lptTotal, greedyTotal)
	}
}

func TestDeterminism(t *testing.T) {
	sizes := []int64{7, 7, 7, 5, 5, 5, 3, 3}
	a1, _ := LPT(sizes, 3)
	for i := 0; i < 10; i++ {
		a2, _ := LPT(sizes, 3)
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatal("LPT not deterministic")
			}
		}
	}
}

func TestFewerItemsThanProcessors(t *testing.T) {
	// n < P: the paper notes some processes idle. Loads beyond n must be 0.
	sizes := []int64{10, 20}
	assign, loads := LPT(sizes, 5)
	if Makespan(loads) != 20 {
		t.Fatal("makespan")
	}
	if assign[0] == assign[1] {
		t.Fatal("two items should land on different processors")
	}
	zero := 0
	for _, l := range loads {
		if l == 0 {
			zero++
		}
	}
	if zero != 3 {
		t.Fatalf("%d idle processors, want 3", zero)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	assign, loads := LPT(nil, 4)
	if len(assign) != 0 || Makespan(loads) != 0 {
		t.Fatal("empty input")
	}
	assign, loads = LPT([]int64{42}, 1)
	if assign[0] != 0 || loads[0] != 42 {
		t.Fatal("single input")
	}
}

func TestLowerBound(t *testing.T) {
	if LowerBound([]int64{10, 1, 1}, 3) != 10 {
		t.Fatal("max-dominated lower bound")
	}
	if LowerBound([]int64{4, 4, 4}, 2) != 6 {
		t.Fatal("sum-dominated lower bound")
	}
}
