// Package obs is the observability substrate of the pipeline: per-rank event
// tracing with Chrome trace-event (Perfetto) export, a typed metrics registry
// with deterministic cross-rank merging, and the machine-readable run
// manifest (RUN.json) that benchguard and CI consume.
//
// The package is a leaf — it imports only the standard library — so every
// layer of the stack (mpi, par, kmer, spmat, overlap, pipeline, elba) can
// report into it without import cycles. All recording entry points are
// nil-safe: a nil *Lane, *Registry, *Counter, *Gauge or *Histogram turns the
// call into an immediate return, which is what makes observability zero-cost
// when disabled — hot paths guard with one nil check and never allocate.
//
// Span model (DESIGN.md §10): one Lane per simulated rank, exported as one
// Perfetto process (pid = rank). Within a lane, thread id 0 is the rank's
// main goroutine — stage spans, blocking-receive waits and nonblocking Wait
// spans land there — and thread id 1+w is worker w of the rank's intra-rank
// pool, carrying the worker-pool task spans. Sends are instant events (they
// are buffered and complete at post time; a zero-duration span would only
// clutter the timeline).
//
// Lanes are ring buffers of fixed capacity: when full, the oldest event is
// overwritten and a dropped counter advances, so tracing a long run costs
// bounded memory and the tail — usually the interesting part — survives.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultLaneCap is the per-rank event capacity of NewTrace.
const DefaultLaneCap = 1 << 16

// Arg is one key/value annotation of an event (src, dst, tag, bytes, …).
type Arg struct {
	K string
	V int64
}

// Event is one recorded trace event. Ph is 'X' for a complete span (Ts..Ts+Dur)
// or 'i' for an instant, matching the Chrome trace-event phase letters.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TID  int32
	Ts   int64 // nanoseconds since the trace epoch
	Dur  int64 // nanoseconds; spans only
	Args []Arg
}

// Lane records events for one rank. All methods are safe on a nil receiver
// (no-ops) and safe for concurrent use — a rank's pool workers and posted
// receive matchers record into the same lane as the rank goroutine.
type Lane struct {
	epoch   time.Time
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event when full
	n       int
	dropped int64
}

// Start returns the current trace timestamp, to be passed to Span when the
// spanned work completes. On a nil lane it returns 0; pair it with the same
// nil lane's Span, which discards it.
func (l *Lane) Start() int64 {
	if l == nil {
		return 0
	}
	return int64(time.Since(l.epoch))
}

// Span records a complete span on thread tid from start (a Start result) to
// now. No-op on a nil lane.
func (l *Lane) Span(tid int32, cat, name string, start int64, args ...Arg) {
	if l == nil {
		return
	}
	now := int64(time.Since(l.epoch))
	l.record(Event{Name: name, Cat: cat, Ph: 'X', TID: tid, Ts: start, Dur: now - start, Args: args})
}

// Instant records a zero-duration event on thread tid. No-op on a nil lane.
func (l *Lane) Instant(tid int32, cat, name string, args ...Arg) {
	if l == nil {
		return
	}
	l.record(Event{Name: name, Cat: cat, Ph: 'i', TID: tid, Ts: int64(time.Since(l.epoch)), Args: args})
}

func (l *Lane) record(e Event) {
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
	}
	l.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first. Nil lane: nil.
func (l *Lane) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%len(l.buf)]
	}
	return out
}

// Dropped returns how many events were overwritten by the ring. Nil lane: 0.
func (l *Lane) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Trace is a set of per-rank lanes sharing one epoch, so timestamps from
// different ranks line up on the exported timeline.
type Trace struct {
	epoch time.Time
	lanes []*Lane
}

// NewTrace creates a trace with one DefaultLaneCap-event lane per rank.
func NewTrace(ranks int) *Trace { return NewTraceCap(ranks, DefaultLaneCap) }

// NewTraceCap creates a trace with a custom per-rank event capacity.
func NewTraceCap(ranks, capacity int) *Trace {
	if ranks < 1 {
		panic(fmt.Sprintf("obs: trace needs at least 1 rank, got %d", ranks))
	}
	if capacity < 1 {
		capacity = 1
	}
	t := &Trace{epoch: time.Now(), lanes: make([]*Lane, ranks)}
	for i := range t.lanes {
		t.lanes[i] = &Lane{epoch: t.epoch, buf: make([]Event, capacity)}
	}
	return t
}

// Ranks returns the number of lanes. Nil trace: 0.
func (t *Trace) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// Rank returns rank i's lane. Nil trace: nil (all Lane methods tolerate it).
func (t *Trace) Rank(i int) *Lane {
	if t == nil {
		return nil
	}
	return t.lanes[i]
}

// jsonEvent is the Chrome trace-event wire form.
type jsonEvent struct {
	Name string           `json:"name,omitempty"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int32            `json:"tid"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  *float64         `json:"dur,omitempty"`
	S    string           `json:"s,omitempty"` // instant scope
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteJSON exports the trace as Chrome trace-event JSON loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing: ranks appear as processes
// ("rank N"), thread 0 as "rank main", thread 1+w as "worker w". Output is
// deterministic for a given set of recorded events (ranks ascending, each
// lane's events sorted by timestamp).
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a nil trace")
	}
	var evs []jsonEvent
	type metaEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int32          `json:"tid"`
		Args map[string]any `json:"args"`
	}
	var metas []metaEvent
	for pid, l := range t.lanes {
		events := l.Events()
		sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
		metas = append(metas,
			metaEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": fmt.Sprintf("rank %d", pid)}},
			metaEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Args: map[string]any{"sort_index": pid}})
		tids := map[int32]bool{}
		for _, e := range events {
			tids[e.TID] = true
		}
		var order []int32
		for tid := range tids {
			order = append(order, tid)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, tid := range order {
			name := "rank main"
			if tid > 0 {
				name = fmt.Sprintf("worker %d", tid-1)
			}
			metas = append(metas,
				metaEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}},
				metaEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"sort_index": tid}})
		}
		for _, e := range events {
			je := jsonEvent{Name: e.Name, Cat: e.Cat, Ph: string(rune(e.Ph)), Pid: pid,
				Tid: e.TID, Ts: float64(e.Ts) / 1e3}
			if e.Ph == 'X' {
				d := float64(e.Dur) / 1e3
				je.Dur = &d
			}
			if e.Ph == 'i' {
				je.S = "t" // thread-scoped instant
			}
			if len(e.Args) > 0 {
				je.Args = make(map[string]int64, len(e.Args))
				for _, a := range e.Args {
					je.Args[a.K] = a.V
				}
			}
			evs = append(evs, je)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{TraceEvents: concatAny(metas, evs), DisplayTimeUnit: "ms"})
}

func concatAny[A, B any](as []A, bs []B) []any {
	out := make([]any, 0, len(as)+len(bs))
	for _, a := range as {
		out = append(out, a)
	}
	for _, b := range bs {
		out = append(out, b)
	}
	return out
}

// WriteFile writes the Perfetto JSON export to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
