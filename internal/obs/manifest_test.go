package obs

import (
	"bytes"
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		Schema:  ManifestSchema,
		P:       4,
		Threads: 2,
		WallNS:  12345,
		Stages: []StageStats{
			{Name: "CountKmer", WallNS: 10, Work: 100, Bytes: 800, Msgs: 4,
				OverlapBytes: 600, OverlapMsgs: 3, ExposedBytes: 200, ExposedMsgs: 1},
		},
		Comm:    CommTotals{Bytes: 800, Msgs: 4},
		Contigs: ContigSummary{Count: 2, TotalBases: 99, Checksum: ChecksumSeqs([][]byte{[]byte("ACGT")})},
	}
}

func TestChecksumSeqs(t *testing.T) {
	a := ChecksumSeqs([][]byte{[]byte("ACGT"), []byte("TTTT")})
	b := ChecksumSeqs([][]byte{[]byte("ACGT"), []byte("TTTT")})
	if a != b {
		t.Fatal("checksum not deterministic")
	}
	if c := ChecksumSeqs([][]byte{[]byte("ACGTT"), []byte("TTT")}); c == a {
		t.Fatal("length prefix must separate sequences")
	}
	if c := ChecksumSeqs([][]byte{[]byte("TTTT"), []byte("ACGT")}); c == a {
		t.Fatal("checksum must be order sensitive")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("checksum %q lacks algorithm prefix", a)
	}
}

func TestManifestVerify(t *testing.T) {
	if bad := validManifest().Verify(); len(bad) != 0 {
		t.Fatalf("valid manifest rejected: %v", bad)
	}
	m := validManifest()
	m.Stages[0].OverlapBytes = 700 // breaks overlap+exposed == total
	if bad := m.Verify(); len(bad) != 1 || !strings.Contains(bad[0], "overlap_bytes") {
		t.Fatalf("byte-split violation not caught: %v", bad)
	}
	m = validManifest()
	m.Stages[0].ExposedMsgs = 2
	if bad := m.Verify(); len(bad) != 1 || !strings.Contains(bad[0], "overlap_msgs") {
		t.Fatalf("msg-split violation not caught: %v", bad)
	}
	m = validManifest()
	m.Schema = "elba/run-manifest/v0"
	if bad := m.Verify(); len(bad) != 1 || !strings.Contains(bad[0], "schema") {
		t.Fatalf("schema violation not caught: %v", bad)
	}
	m = validManifest()
	m.Contigs.Checksum = ""
	if bad := m.Verify(); len(bad) != 1 || !strings.Contains(bad[0], "checksum") {
		t.Fatalf("missing checksum not caught: %v", bad)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := validManifest()
	m.Metrics = []Metric{{Name: "align.cells", Kind: KindHistogram, Count: 3, Sum: 42}}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != m.Schema || got.P != m.P || got.Contigs.Checksum != m.Contigs.Checksum {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Stages) != 1 || got.Stages[0].OverlapBytes != 600 {
		t.Fatalf("round trip lost stages: %+v", got.Stages)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Sum != 42 {
		t.Fatalf("round trip lost metrics: %+v", got.Metrics)
	}
	if bad := got.Verify(); len(bad) != 0 {
		t.Fatalf("round-tripped manifest invalid: %v", bad)
	}
}
