package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone, atomically updated counter. All methods are no-ops
// (or zero) on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add accumulates n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the accumulated total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value gauge with a high-watermark. All methods are no-ops
// (or zero) on a nil receiver.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the watermark if exceeded.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the gauge by delta (e.g. +1/-1 around a queue) and raises the
// watermark if the new value exceeds it.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-watermark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds values ≤ 0, bucket i ≥ 1 holds values of bit length i (2^(i-1) ≤ v <
// 2^i).
const histBuckets = 65

// Histogram is a power-of-two-bucketed distribution of int64 observations
// (message sizes, alignment cells, panel nnz). All methods are no-ops (or
// zero values) on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	minInit sync.Once
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.minInit.Do(func() { h.min.Store(math.MaxInt64) })
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Metric kinds in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Bucket is one histogram bucket in a snapshot: N observations with value ≤
// Hi (and greater than the previous bucket's Hi).
type Bucket struct {
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// Metric is one metric's snapshot, JSON-friendly for the manifest. Counters
// use Value; gauges use Value and Max; histograms use Count/Sum/Min/Max and
// Buckets.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   int64    `json:"value,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Min     int64    `json:"min,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds one rank's metrics. Handle lookups (Counter, Gauge,
// Histogram) are mutex-protected and create on first use; hot paths hoist
// the returned handle and update it lock-free. All methods are nil-safe: a
// nil registry returns nil handles, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Nil registry: nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil registry: nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil registry:
// nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current state, sorted by name — the
// deterministic per-rank view. Nil registry: nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: KindHistogram, Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		if m.Count > 0 {
			m.Min = h.min.Load()
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				m.Buckets = append(m.Buckets, Bucket{Hi: bucketHi(i), N: n})
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// bucketHi returns bucket i's inclusive upper bound (0 for the ≤0 bucket,
// 2^i − 1 otherwise).
func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Merge folds per-rank snapshots into one deterministic cross-rank view:
// counter values and histogram counts/sums/buckets add, gauge values add
// (the cross-rank total) while maxima and minima take the extreme. Metrics
// are matched by name; the result is sorted by name.
func Merge(snaps ...[]Metric) []Metric {
	byName := map[string]*Metric{}
	var order []string
	for _, snap := range snaps {
		for _, m := range snap {
			acc, ok := byName[m.Name]
			if !ok {
				cp := m
				cp.Buckets = append([]Bucket(nil), m.Buckets...)
				byName[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			switch acc.Kind {
			case KindCounter:
				acc.Value += m.Value
			case KindGauge:
				acc.Value += m.Value
				if m.Max > acc.Max {
					acc.Max = m.Max
				}
			case KindHistogram:
				if m.Count > 0 && (acc.Count == 0 || m.Min < acc.Min) {
					acc.Min = m.Min
				}
				acc.Count += m.Count
				acc.Sum += m.Sum
				if m.Max > acc.Max {
					acc.Max = m.Max
				}
				acc.Buckets = mergeBuckets(acc.Buckets, m.Buckets)
			}
		}
	}
	sort.Strings(order)
	out := make([]Metric, len(order))
	for i, name := range order {
		out[i] = *byName[name]
	}
	return out
}

func mergeBuckets(a, b []Bucket) []Bucket {
	byHi := map[int64]int64{}
	for _, x := range a {
		byHi[x.Hi] += x.N
	}
	for _, x := range b {
		byHi[x.Hi] += x.N
	}
	out := make([]Bucket, 0, len(byHi))
	for hi, n := range byHi {
		out = append(out, Bucket{Hi: hi, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hi < out[j].Hi })
	return out
}

// MetricSet is the per-rank registry collection an assembly run reports
// into: one Registry per simulated rank, merged deterministically for the
// manifest and the -metrics snapshot. In a multi-process run each process
// populates only its own rank's registry; rank 0 absorbs the others'
// snapshots — streamed over the engine's control communicator — with
// SetSnapshot, so Merged and WriteJSON cover the whole world without a
// shared filesystem.
type MetricSet struct {
	regs []*Registry

	// imported holds per-rank snapshots streamed from other processes; a
	// non-nil entry overrides that rank's live registry in Merged/WriteJSON.
	mu       sync.Mutex
	imported [][]Metric
}

// NewMetricSet creates a set with one registry per rank.
func NewMetricSet(ranks int) *MetricSet {
	if ranks < 1 {
		panic(fmt.Sprintf("obs: metric set needs at least 1 rank, got %d", ranks))
	}
	s := &MetricSet{regs: make([]*Registry, ranks)}
	for i := range s.regs {
		s.regs[i] = NewRegistry()
	}
	return s
}

// Ranks returns the number of per-rank registries. Nil set: 0.
func (s *MetricSet) Ranks() int {
	if s == nil {
		return 0
	}
	return len(s.regs)
}

// Rank returns rank i's registry. Nil set: nil (nil-safe handles follow).
func (s *MetricSet) Rank(i int) *Registry {
	if s == nil {
		return nil
	}
	return s.regs[i]
}

// SetSnapshot installs a fixed snapshot for rank i, overriding its live
// registry in Merged and WriteJSON. A distributed run calls it at rank 0
// with the snapshots streamed from the other processes; installing nil
// reverts rank i to its live registry. Nil set: no-op.
func (s *MetricSet) SetSnapshot(i int, snap []Metric) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.imported == nil {
		s.imported = make([][]Metric, len(s.regs))
	}
	s.imported[i] = snap
}

// snapshot returns rank i's effective snapshot: the imported one when
// installed, the live registry's otherwise.
func (s *MetricSet) snapshot(i int) []Metric {
	s.mu.Lock()
	var imp []Metric
	if s.imported != nil {
		imp = s.imported[i]
	}
	s.mu.Unlock()
	if imp != nil {
		return imp
	}
	return s.regs[i].Snapshot()
}

// Merged returns the deterministic cross-rank merge of all per-rank
// snapshots. Nil set: nil.
func (s *MetricSet) Merged() []Metric {
	if s == nil {
		return nil
	}
	snaps := make([][]Metric, len(s.regs))
	for i := range s.regs {
		snaps[i] = s.snapshot(i)
	}
	return Merge(snaps...)
}

// WriteJSON writes the merged view plus every per-rank snapshot as indented
// JSON.
func (s *MetricSet) WriteJSON(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("obs: WriteJSON on a nil metric set")
	}
	perRank := make([][]Metric, len(s.regs))
	for i := range s.regs {
		perRank[i] = s.snapshot(i)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Ranks   int        `json:"ranks"`
		Merged  []Metric   `json:"merged"`
		PerRank [][]Metric `json:"per_rank"`
	}{Ranks: len(s.regs), Merged: s.Merged(), PerRank: perRank})
}

// WriteFile writes the metrics snapshot JSON to path.
func (s *MetricSet) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
