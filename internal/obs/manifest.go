package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ManifestSchema identifies the RUN.json layout; Verify rejects manifests
// from other schemas so benchguard fails loudly instead of misreading.
const ManifestSchema = "elba/run-manifest/v1"

// StageStats is one stage's row of the manifest: critical-path wall time,
// abstract work, and the communication totals with their overlap/exposed
// split. By construction OverlapBytes + ExposedBytes == Bytes and
// OverlapMsgs + ExposedMsgs == Msgs — Verify asserts both.
type StageStats struct {
	Name         string `json:"name"`
	WallNS       int64  `json:"wall_ns"` // max across ranks
	Work         int64  `json:"work"`    // summed work units (stage-specific)
	Bytes        int64  `json:"bytes"`   // summed across ranks
	Msgs         int64  `json:"msgs"`
	OverlapBytes int64  `json:"overlap_bytes"` // sent through the nonblocking layer
	OverlapMsgs  int64  `json:"overlap_msgs"`
	ExposedBytes int64  `json:"exposed_bytes"` // blocking remainder
	ExposedMsgs  int64  `json:"exposed_msgs"`
}

// CommTotals is the whole run's traffic (all ranks, all stages).
type CommTotals struct {
	Bytes int64 `json:"bytes"`
	Msgs  int64 `json:"msgs"`
}

// ContigSummary identifies the assembly output: Checksum is ChecksumSeqs
// over the canonically sorted contig sequences, so two runs produced
// bit-identical contigs iff their checksums match.
type ContigSummary struct {
	Count      int    `json:"count"`
	TotalBases int64  `json:"total_bases"`
	Checksum   string `json:"checksum"`
}

// Manifest is the machine-readable record of one assembly run (RUN.json).
// Options carries the full option set the run used (serialized as-is);
// Metrics is the deterministic cross-rank merge of the run's metric
// snapshots, present only when the run collected metrics.
type Manifest struct {
	Schema  string        `json:"schema"`
	Options any           `json:"options"`
	P       int           `json:"p"`
	Threads int           `json:"threads"`
	WallNS  int64         `json:"wall_ns"`
	Stages  []StageStats  `json:"stages"`
	Comm    CommTotals    `json:"comm"`
	Contigs ContigSummary `json:"contigs"`
	Metrics []Metric      `json:"metrics,omitempty"`
	// Restarts counts how many times the supervised proc launcher relaunched
	// the worker group before this run completed (0 for an undisturbed run).
	// Like wall time it is never part of baseline comparison — a recovered
	// run's checksum and traffic totals still must match the baseline — but
	// chaos CI gates on its exact value with benchguard -manifest-restarts.
	Restarts int `json:"restarts,omitempty"`
	// Cache records how a daemon (elbad) job obtained its alignment
	// artifacts: "hit" when the run resumed from a shared post-Alignment
	// cache entry, "miss" when it computed one, empty outside the daemon.
	// Informational like Restarts — never part of baseline comparison, but
	// benchguard's manifest-derived cache_hit metric gates on it in the
	// elbad smoke job.
	Cache string `json:"cache,omitempty"`
}

// ChecksumSeqs hashes a sequence list order- and content-sensitively
// (length-prefixed SHA-256), for the contig checksum.
func ChecksumSeqs(seqs [][]byte) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, s := range seqs {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write(s)
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// Verify checks the manifest's internal invariants and returns one message
// per violation (empty slice: all good): schema match, non-negative
// counters, the per-stage comm_overlap + comm_exposed == comm_total
// identities, and a present checksum whenever contigs exist.
func (m *Manifest) Verify() []string {
	var bad []string
	if m.Schema != ManifestSchema {
		bad = append(bad, fmt.Sprintf("schema %q, want %q", m.Schema, ManifestSchema))
	}
	if m.P < 1 {
		bad = append(bad, fmt.Sprintf("p = %d, want ≥ 1", m.P))
	}
	if m.Comm.Bytes < 0 || m.Comm.Msgs < 0 {
		bad = append(bad, fmt.Sprintf("negative comm totals: %d bytes, %d msgs", m.Comm.Bytes, m.Comm.Msgs))
	}
	for _, s := range m.Stages {
		if s.Bytes < 0 || s.Msgs < 0 || s.OverlapBytes < 0 || s.OverlapMsgs < 0 ||
			s.ExposedBytes < 0 || s.ExposedMsgs < 0 {
			bad = append(bad, fmt.Sprintf("stage %s: negative traffic counter", s.Name))
			continue
		}
		if s.OverlapBytes+s.ExposedBytes != s.Bytes {
			bad = append(bad, fmt.Sprintf("stage %s: overlap_bytes %d + exposed_bytes %d != bytes %d",
				s.Name, s.OverlapBytes, s.ExposedBytes, s.Bytes))
		}
		if s.OverlapMsgs+s.ExposedMsgs != s.Msgs {
			bad = append(bad, fmt.Sprintf("stage %s: overlap_msgs %d + exposed_msgs %d != msgs %d",
				s.Name, s.OverlapMsgs, s.ExposedMsgs, s.Msgs))
		}
	}
	if m.Contigs.Count > 0 && m.Contigs.Checksum == "" {
		bad = append(bad, fmt.Sprintf("%d contigs but empty checksum", m.Contigs.Count))
	}
	if m.Contigs.Count < 0 || m.Contigs.TotalBases < 0 {
		bad = append(bad, "negative contig summary")
	}
	return bad
}

// WriteJSON writes the manifest as indented JSON (deterministic field
// order: encoding/json emits struct fields in declaration order, and the
// stage and metric slices are already deterministically ordered).
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (the conventional name is RUN.json).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest from r. The Options field decodes to
// generic JSON (map[string]any); consumers needing typed options re-decode
// it themselves.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest: %w", err)
	}
	return &m, nil
}

// ReadManifestFile reads and parses the manifest at path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}
