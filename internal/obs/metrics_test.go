package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestNilMetricHandles(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("x"), r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live handles")
	}
	c.Add(5)
	g.Set(5)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || r.Snapshot() != nil {
		t.Fatal("nil handles not inert")
	}
	var s *MetricSet
	if s.Ranks() != 0 || s.Rank(0) != nil || s.Merged() != nil {
		t.Fatal("nil metric set not inert")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Add(4)
	g := r.Gauge("b.depth")
	g.Add(2)
	g.Add(3)
	g.Add(-4)
	h := r.Histogram("c.sizes")
	for _, v := range []int64{1, 7, 8, 1024, 0} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a.count" || snap[1].Name != "b.depth" || snap[2].Name != "c.sizes" {
		t.Fatalf("snapshot order wrong: %v", snap)
	}
	if snap[0].Value != 7 {
		t.Fatalf("counter = %d, want 7", snap[0].Value)
	}
	if snap[1].Value != 1 || snap[1].Max != 5 {
		t.Fatalf("gauge value/max = %d/%d, want 1/5", snap[1].Value, snap[1].Max)
	}
	hs := snap[2]
	if hs.Count != 5 || hs.Sum != 1040 || hs.Min != 0 || hs.Max != 1024 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
	// Buckets: 0 → hi 0; 1 → hi 1; 7,8 → hi 7 and 15; 1024 → hi 2047.
	wantHi := []int64{0, 1, 7, 15, 2047}
	if len(hs.Buckets) != len(wantHi) {
		t.Fatalf("bucket count %d, want %d: %v", len(hs.Buckets), len(wantHi), hs.Buckets)
	}
	for i, b := range hs.Buckets {
		if b.Hi != wantHi[i] {
			t.Fatalf("bucket %d hi = %d, want %d", i, b.Hi, wantHi[i])
		}
	}
	if bucketHi(64) != math.MaxInt64 {
		t.Fatal("top bucket must cap at MaxInt64")
	}
}

func TestMergeIsDeterministicAndAdditive(t *testing.T) {
	mk := func(scale int64) []Metric {
		r := NewRegistry()
		r.Counter("n").Add(10 * scale)
		r.Gauge("g").Set(5 * scale)
		h := r.Histogram("h")
		h.Observe(scale)
		h.Observe(100 * scale)
		return r.Snapshot()
	}
	a, b := mk(1), mk(3)
	m1 := Merge(a, b)
	m2 := Merge(b, a) // order-independent for these rules
	j1, _ := json.Marshal(m1)
	j2, _ := json.Marshal(m2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("merge not order independent:\n%s\n%s", j1, j2)
	}
	byName := map[string]Metric{}
	for _, m := range m1 {
		byName[m.Name] = m
	}
	if byName["n"].Value != 40 {
		t.Fatalf("counter merge = %d, want 40", byName["n"].Value)
	}
	if byName["g"].Value != 20 || byName["g"].Max != 15 {
		t.Fatalf("gauge merge = %+v", byName["g"])
	}
	h := byName["h"]
	if h.Count != 4 || h.Sum != 404 || h.Min != 1 || h.Max != 300 {
		t.Fatalf("histogram merge = %+v", h)
	}
}

func TestMetricSetMergedAndJSON(t *testing.T) {
	s := NewMetricSet(3)
	for i := 0; i < s.Ranks(); i++ {
		s.Rank(i).Counter("mpi.msgs").Add(int64(i + 1))
	}
	merged := s.Merged()
	if len(merged) != 1 || merged[0].Value != 6 {
		t.Fatalf("merged = %v, want one counter of 6", merged)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Ranks   int        `json:"ranks"`
		Merged  []Metric   `json:"merged"`
		PerRank [][]Metric `json:"per_rank"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ranks != 3 || len(doc.PerRank) != 3 || doc.PerRank[2][0].Value != 3 {
		t.Fatalf("metrics JSON wrong: %+v", doc)
	}
}
