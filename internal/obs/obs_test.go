package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilLaneIsNoOp(t *testing.T) {
	var l *Lane
	st := l.Start()
	l.Span(0, "c", "n", st)
	l.Instant(1, "c", "n", Arg{K: "k", V: 1})
	if l.Events() != nil || l.Dropped() != 0 {
		t.Fatal("nil lane recorded something")
	}
	var tr *Trace
	if tr.Ranks() != 0 || tr.Rank(0) != nil {
		t.Fatal("nil trace not inert")
	}
}

func TestLaneRecordsSpansAndInstants(t *testing.T) {
	tr := NewTrace(2)
	l := tr.Rank(1)
	st := l.Start()
	l.Span(0, "stage", "CountKmer", st, Arg{K: "rank", V: 1})
	l.Instant(0, "mpi", "send", Arg{K: "dst", V: 3}, Arg{K: "bytes", V: 800})
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Ph != 'X' || evs[0].Name != "CountKmer" || evs[0].Dur < 0 {
		t.Fatalf("span event wrong: %+v", evs[0])
	}
	if evs[1].Ph != 'i' || evs[1].Args[1].V != 800 {
		t.Fatalf("instant event wrong: %+v", evs[1])
	}
	if len(tr.Rank(0).Events()) != 0 {
		t.Fatal("rank 0 lane should be empty")
	}
}

func TestLaneRingOverwritesOldest(t *testing.T) {
	tr := NewTraceCap(1, 4)
	l := tr.Rank(0)
	for i := 0; i < 10; i++ {
		l.Instant(0, "c", "e", Arg{K: "i", V: int64(i)})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Args[0].V != want {
			t.Fatalf("event %d carries %d, want %d (newest must survive)", i, e.Args[0].V, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
}

func TestLaneConcurrentRecording(t *testing.T) {
	tr := NewTrace(1)
	l := tr.Rank(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Instant(int32(w), "c", "e")
			}
		}(w)
	}
	wg.Wait()
	if got := len(l.Events()); got != 800 {
		t.Fatalf("got %d events, want 800", got)
	}
}

func TestWriteJSONIsPerfettoShaped(t *testing.T) {
	tr := NewTrace(2)
	st := tr.Rank(0).Start()
	tr.Rank(0).Span(0, "stage", "Alignment", st)
	tr.Rank(0).Span(1, "pool", "align", st, Arg{K: "lo", V: 0}, Arg{K: "n", V: 5})
	tr.Rank(1).Instant(0, "mpi", "send", Arg{K: "dst", V: 0})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var spans, instants, procNames, threadNames int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if _, ok := e["dur"]; !ok {
				t.Fatalf("span without dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			switch e["name"] {
			case "process_name":
				procNames++
			case "thread_name":
				threadNames++
			}
		}
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 2/1", spans, instants)
	}
	if procNames != 2 {
		t.Fatalf("process_name metadata for %d ranks, want 2", procNames)
	}
	// rank 0: tids 0 and 1; rank 1: tid 0.
	if threadNames != 3 {
		t.Fatalf("thread_name metadata %d, want 3", threadNames)
	}
	if !strings.Contains(buf.String(), `"worker 0"`) {
		t.Fatal("pool worker thread not named")
	}
}
