// Package readsim generates synthetic genomes and simulated long reads.
//
// The paper evaluates on PacBio datasets for O. sativa, C. elegans and
// H. sapiens (Table 2). Those datasets (and the hardware to assemble them at
// full scale) are not available here, so this package provides the
// substitution documented in DESIGN.md: deterministic synthetic genomes with
// controllable repeat content plus a long-read simulator that preserves the
// knobs the evaluation's shape depends on — depth, read-length distribution,
// error rate and strand symmetry. Dataset presets mirror Table 2 at a
// laptop-tractable scale factor.
package readsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dna"
)

// GenomeConfig controls synthetic genome generation.
type GenomeConfig struct {
	Length int   // genome length in bases
	Seed   int64 // RNG seed; same seed → same genome
	// RepeatCount segments of RepeatLen bases are copied to random positions
	// to create the repeat structure that produces branching vertices in the
	// string graph. Zero means a repeat-free genome.
	RepeatCount int
	RepeatLen   int
}

// Genome generates a deterministic random genome.
func Genome(cfg GenomeConfig) []byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := make([]byte, cfg.Length)
	for i := range g {
		g[i] = dna.Bases[rng.Intn(4)]
	}
	for r := 0; r < cfg.RepeatCount; r++ {
		if cfg.RepeatLen <= 0 || cfg.RepeatLen >= cfg.Length {
			break
		}
		src := rng.Intn(cfg.Length - cfg.RepeatLen)
		dst := rng.Intn(cfg.Length - cfg.RepeatLen)
		copy(g[dst:dst+cfg.RepeatLen], g[src:src+cfg.RepeatLen])
	}
	return g
}

// ReadConfig controls the long-read simulator.
type ReadConfig struct {
	Depth       float64 // target coverage depth (Table 2 "Depth")
	MeanLen     int     // mean read length (Table 2 "Length")
	MinLen      int     // reads shorter than this are redrawn
	LenSigma    float64 // stddev of the length distribution as fraction of mean
	ErrorRate   float64 // total error rate (Table 2 "Error"); split 6:2:2 sub:ins:del
	Seed        int64
	ForwardOnly bool // if true, no reverse-complement reads (for debugging)
}

// Read is one simulated read with its ground truth.
type Read struct {
	Seq []byte
	Pos int  // start position on the reference
	End int  // one past the last reference base covered
	RC  bool // true if the read is the reverse complement of the reference
}

// Simulate draws reads from genome until the requested depth is reached.
// Reads are clipped at the genome ends (linear chromosome, as in the paper's
// model of a genome as linear chains).
func Simulate(genome []byte, cfg ReadConfig) []Read {
	if cfg.MeanLen <= 0 {
		panic("readsim: MeanLen must be positive")
	}
	if cfg.MinLen <= 0 {
		cfg.MinLen = cfg.MeanLen / 4
		if cfg.MinLen < 32 {
			cfg.MinLen = 32
		}
	}
	if cfg.LenSigma <= 0 {
		cfg.LenSigma = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	targetBases := int64(float64(len(genome)) * cfg.Depth)
	var got int64
	var reads []Read
	for got < targetBases {
		l := int(math.Round(rng.NormFloat64()*cfg.LenSigma*float64(cfg.MeanLen) + float64(cfg.MeanLen)))
		if l < cfg.MinLen {
			continue
		}
		if l > len(genome) {
			l = len(genome)
		}
		pos := rng.Intn(len(genome) - l + 1)
		frag := genome[pos : pos+l]
		rc := !cfg.ForwardOnly && rng.Intn(2) == 1
		seq := make([]byte, l)
		copy(seq, frag)
		if rc {
			dna.RevCompInPlace(seq)
		}
		if cfg.ErrorRate > 0 {
			seq = applyErrors(seq, cfg.ErrorRate, rng)
		}
		reads = append(reads, Read{Seq: seq, Pos: pos, End: pos + l, RC: rc})
		got += int64(l)
	}
	return reads
}

// applyErrors introduces substitutions, insertions and deletions at the given
// total rate, split 60/20/20 like typical long-read error profiles.
func applyErrors(seq []byte, rate float64, rng *rand.Rand) []byte {
	out := make([]byte, 0, len(seq)+len(seq)/8)
	for i := 0; i < len(seq); i++ {
		r := rng.Float64()
		switch {
		case r < rate*0.6: // substitution
			b := seq[i]
			nb := dna.Bases[rng.Intn(4)]
			for nb == b {
				nb = dna.Bases[rng.Intn(4)]
			}
			out = append(out, nb)
		case r < rate*0.8: // insertion before this base
			out = append(out, dna.Bases[rng.Intn(4)], seq[i])
		case r < rate: // deletion
			// skip the base
		default:
			out = append(out, seq[i])
		}
	}
	if len(out) == 0 {
		out = append(out, seq[0])
	}
	return out
}

// Seqs extracts just the sequences, the pipeline's input shape.
func Seqs(reads []Read) [][]byte {
	out := make([][]byte, len(reads))
	for i := range reads {
		out[i] = reads[i].Seq
	}
	return out
}

// Dataset bundles a generated reference with its simulated reads and the
// metadata row of Table 2.
type Dataset struct {
	Name      string
	Genome    []byte
	Reads     []Read
	Depth     float64
	MeanLen   int
	ErrorRate float64
	// ScaleFactor records how much smaller the synthetic genome is than the
	// organism's in Table 2 (documentation for EXPERIMENTS.md).
	ScaleFactor float64
}

// Table2Row formats the dataset like a row of the paper's Table 2.
func (d *Dataset) Table2Row() string {
	var bases int64
	for _, r := range d.Reads {
		bases += int64(len(r.Seq))
	}
	return fmt.Sprintf("%-16s depth=%.0f reads=%d meanLen=%d input=%.2fMB genome=%.2fMb err=%.1f%%",
		d.Name, d.Depth, len(d.Reads), d.MeanLen,
		float64(bases)/1e6, float64(len(d.Genome))/1e6, d.ErrorRate*100)
}

// Preset identifies one of the Table 2 dataset substitutes.
type Preset int

const (
	// CElegansLike mirrors C. elegans: depth 40, low error (0.5%).
	CElegansLike Preset = iota
	// OSativaLike mirrors O. sativa: depth 30, low error (0.5%), longer reads.
	OSativaLike
	// HSapiensLike mirrors H. sapiens: depth 10, high error (15%).
	HSapiensLike
)

// String names the preset after the organism it substitutes.
func (p Preset) String() string {
	switch p {
	case CElegansLike:
		return "C.elegans-like"
	case OSativaLike:
		return "O.sativa-like"
	case HSapiensLike:
		return "H.sapiens-like"
	}
	return "unknown"
}

// paperGenomeMb is the organism genome size of Table 2 in Mb.
func (p Preset) paperGenomeMb() float64 {
	switch p {
	case CElegansLike:
		return 100
	case OSativaLike:
		return 500
	case HSapiensLike:
		return 3200
	}
	return 0
}

// Generate builds a preset dataset. size is the synthetic genome length in
// bases; depth, read length ratio and error rate come from Table 2. Read
// lengths are scaled to genomeLen/20 capped at the Table 2 mean so a read
// still spans many overlaps without covering the whole toy genome.
//
// Genomes carry planted repeats longer than the reads, mirroring the repeat
// structure that fragments real assemblies (the reason the paper's O. sativa
// completeness is only 37%): repeats create the branch vertices that §4.2
// masks, so contigs break at repeat boundaries. O. sativa-like genomes get
// the heaviest repeat load (rice is repeat-rich).
func Generate(p Preset, size int, seed int64) *Dataset {
	var depth, errRate float64
	var paperLen int
	var repeatSpacing int // one planted repeat per this many bases (0 = none)
	switch p {
	case CElegansLike:
		depth, errRate, paperLen = 40, 0.005, 14550
		repeatSpacing = 40000
	case OSativaLike:
		depth, errRate, paperLen = 30, 0.005, 19695
		repeatSpacing = 20000
	case HSapiensLike:
		depth, errRate, paperLen = 10, 0.15, 7401
		repeatSpacing = 30000
	default:
		panic("readsim: unknown preset")
	}
	meanLen := size / 20
	if meanLen > paperLen {
		meanLen = paperLen
	}
	if meanLen < 200 {
		meanLen = 200
	}
	genome := Genome(GenomeConfig{
		Length:      size,
		Seed:        seed,
		RepeatCount: size / repeatSpacing,
		RepeatLen:   meanLen * 3 / 2, // longer than reads: unbridgeable
	})
	reads := Simulate(genome, ReadConfig{
		Depth:     depth,
		MeanLen:   meanLen,
		ErrorRate: errRate,
		Seed:      seed + 1,
	})
	return &Dataset{
		Name:        p.String(),
		Genome:      genome,
		Reads:       reads,
		Depth:       depth,
		MeanLen:     meanLen,
		ErrorRate:   errRate,
		ScaleFactor: p.paperGenomeMb() * 1e6 / float64(size),
	}
}
