package readsim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dna"
)

func TestGenomeDeterministic(t *testing.T) {
	a := Genome(GenomeConfig{Length: 5000, Seed: 42})
	b := Genome(GenomeConfig{Length: 5000, Seed: 42})
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give same genome")
	}
	c := Genome(GenomeConfig{Length: 5000, Seed: 43})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must differ")
	}
	if !dna.Valid(a) {
		t.Fatal("genome must be ACGT only")
	}
}

func TestGenomeRepeatsCreateDuplicates(t *testing.T) {
	g := Genome(GenomeConfig{Length: 20000, Seed: 1, RepeatCount: 3, RepeatLen: 500})
	if len(g) != 20000 {
		t.Fatal("length changed")
	}
	// Count 64-mers appearing more than once; with repeats there must be
	// hundreds, without essentially none.
	count := func(g []byte) int {
		seen := map[string]int{}
		for i := 0; i+64 <= len(g); i += 16 {
			seen[string(g[i:i+64])]++
		}
		dups := 0
		for _, c := range seen {
			if c > 1 {
				dups++
			}
		}
		return dups
	}
	plain := Genome(GenomeConfig{Length: 20000, Seed: 1})
	if count(g) <= count(plain) {
		t.Fatalf("repeats did not create duplicates: %d vs %d", count(g), count(plain))
	}
}

func TestSimulateErrorFreeReadsMatchReference(t *testing.T) {
	g := Genome(GenomeConfig{Length: 30000, Seed: 7})
	reads := Simulate(g, ReadConfig{Depth: 10, MeanLen: 2000, Seed: 3})
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
	for i, r := range reads {
		frag := g[r.Pos:r.End]
		want := frag
		if r.RC {
			want = dna.RevComp(frag)
		}
		if !bytes.Equal(r.Seq, want) {
			t.Fatalf("read %d does not match its reference window", i)
		}
	}
}

func TestSimulateDepthApproximatelyMet(t *testing.T) {
	g := Genome(GenomeConfig{Length: 50000, Seed: 7})
	depth := 15.0
	reads := Simulate(g, ReadConfig{Depth: depth, MeanLen: 3000, Seed: 3})
	var bases int64
	for _, r := range reads {
		bases += int64(r.End - r.Pos)
	}
	got := float64(bases) / float64(len(g))
	if got < depth || got > depth+0.5 {
		t.Fatalf("depth %.2f outside [%v, %v]", got, depth, depth+0.5)
	}
}

func TestSimulateErrorRateApproximatelyMet(t *testing.T) {
	g := Genome(GenomeConfig{Length: 40000, Seed: 9})
	rate := 0.10
	reads := Simulate(g, ReadConfig{Depth: 8, MeanLen: 2500, ErrorRate: rate, Seed: 5, ForwardOnly: true})
	// Estimate the error rate by counting mismatches in an (ungapped) sliding
	// comparison is unreliable with indels; instead compare total edit events
	// by length drift + sampled identity. Here we use a cheap proxy: the
	// fraction of 21-mers of the read found in the reference.
	k := 21
	index := map[string]struct{}{}
	for i := 0; i+k <= len(g); i++ {
		index[string(g[i:i+k])] = struct{}{}
	}
	var hit, total int
	for _, r := range reads {
		for i := 0; i+k <= len(r.Seq); i += 7 {
			if _, ok := index[string(r.Seq[i:i+k])]; ok {
				hit++
			}
			total++
		}
	}
	frac := float64(hit) / float64(total)
	// Expected k-mer survival ≈ (1-rate)^k = 0.9^21 ≈ 0.109.
	want := math.Pow(1-rate, float64(k))
	if frac < want*0.5 || frac > want*2.0 {
		t.Fatalf("k-mer survival %.3f far from expected %.3f", frac, want)
	}
}

func TestSimulateStrandMix(t *testing.T) {
	g := Genome(GenomeConfig{Length: 30000, Seed: 11})
	reads := Simulate(g, ReadConfig{Depth: 12, MeanLen: 1500, Seed: 13})
	rc := 0
	for _, r := range reads {
		if r.RC {
			rc++
		}
	}
	if rc == 0 || rc == len(reads) {
		t.Fatalf("strand mix degenerate: %d/%d rc", rc, len(reads))
	}
	fwd := Simulate(g, ReadConfig{Depth: 5, MeanLen: 1500, Seed: 13, ForwardOnly: true})
	for _, r := range fwd {
		if r.RC {
			t.Fatal("ForwardOnly produced rc read")
		}
	}
}

func TestPresetsMirrorTable2(t *testing.T) {
	for _, p := range []Preset{CElegansLike, OSativaLike, HSapiensLike} {
		d := Generate(p, 100000, 5)
		if len(d.Genome) != 100000 {
			t.Fatalf("%v: genome size wrong", p)
		}
		if d.ScaleFactor <= 0 {
			t.Fatalf("%v: scale factor missing", p)
		}
		switch p {
		case CElegansLike:
			if d.Depth != 40 || d.ErrorRate != 0.005 {
				t.Fatalf("%v: wrong Table 2 params", p)
			}
		case OSativaLike:
			if d.Depth != 30 || d.ErrorRate != 0.005 {
				t.Fatalf("%v: wrong Table 2 params", p)
			}
		case HSapiensLike:
			if d.Depth != 10 || d.ErrorRate != 0.15 {
				t.Fatalf("%v: wrong Table 2 params", p)
			}
		}
		if row := d.Table2Row(); len(row) == 0 {
			t.Fatal("empty table row")
		}
	}
}

func TestPresetDeterministic(t *testing.T) {
	a := Generate(CElegansLike, 50000, 3)
	b := Generate(CElegansLike, 50000, 3)
	if len(a.Reads) != len(b.Reads) {
		t.Fatal("read count differs")
	}
	for i := range a.Reads {
		if !bytes.Equal(a.Reads[i].Seq, b.Reads[i].Seq) {
			t.Fatal("read differs")
		}
	}
}
