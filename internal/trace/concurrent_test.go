package trace

import (
	"sync"
	"testing"
	"time"
)

// TestTimersConcurrentReporting exercises the thread-safety contract the
// intra-rank worker pools rely on: many goroutines reporting work, comm and
// durations into one rank's Timers (run under -race in CI).
func TestTimersConcurrentReporting(t *testing.T) {
	tm := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.AddWork("Alignment", 2)
				tm.Add("Alignment", time.Microsecond)
				tm.AddComm("Alignment", 10, 1)
				_ = tm.Entry("Alignment")
				_ = tm.Names()
			}
		}()
	}
	wg.Wait()
	e := tm.Entry("Alignment")
	if e.Work != workers*per*2 {
		t.Fatalf("work %d, want %d", e.Work, workers*per*2)
	}
	if e.Bytes != workers*per*10 || e.Msgs != workers*per {
		t.Fatalf("comm %d/%d, want %d/%d", e.Bytes, e.Msgs, workers*per*10, workers*per)
	}
	if e.Dur != time.Duration(workers*per)*time.Microsecond {
		t.Fatalf("dur %v", e.Dur)
	}
}

// TestTimersConcurrentMerge folds sub-stage timers while another goroutine
// reports — the ExtractContig/CG:* nesting pattern with workers active.
func TestTimersConcurrentMerge(t *testing.T) {
	tm := New()
	sub := New()
	sub.AddWork("CG:LocalAssembly", 7)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tm.AddWork("Alignment", 1)
		}
	}()
	go func() {
		defer wg.Done()
		tm.Merge(sub)
	}()
	wg.Wait()
	if got := tm.Entry("CG:LocalAssembly").Work; got != 7 {
		t.Fatalf("merged work %d, want 7", got)
	}
	if got := tm.Entry("Alignment").Work; got != 100 {
		t.Fatalf("reported work %d, want 100", got)
	}
}
