package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestStageAccumulatesTimeAndTraffic(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) {
		tm := New()
		tm.Stage("s1", c, func() {
			if c.Rank() == 0 {
				mpi.Send(c, 1, 0, make([]int64, 100))
			} else {
				mpi.Recv[int64](c, 0, 0)
			}
			time.Sleep(5 * time.Millisecond)
		})
		e := tm.Entry("s1")
		if e.Dur < 5*time.Millisecond {
			panic("stage too short")
		}
		if c.Rank() == 0 && (e.Bytes != 800 || e.Msgs != 1) {
			panic("traffic not attributed")
		}
		if c.Rank() == 1 && e.Bytes != 0 {
			panic("receiver should have sent nothing")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddWorkAndMerge(t *testing.T) {
	a := New()
	a.Add("x", time.Second)
	a.AddWork("x", 100)
	b := New()
	b.Add("x", 2*time.Second)
	b.AddWork("x", 50)
	b.AddComm("y", 10, 1)
	a.Merge(b)
	if a.Get("x") != 3*time.Second {
		t.Fatal("merge dur")
	}
	if a.Entry("x").Work != 150 {
		t.Fatal("merge work")
	}
	if a.Entry("y").Bytes != 10 {
		t.Fatal("merge comm")
	}
}

func TestMergeMaxAggregates(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		tm := New()
		tm.Add("stage", time.Duration(c.Rank()+1)*time.Millisecond)
		tm.AddWork("stage", int64(10*(c.Rank()+1)))
		tm.AddComm("stage", int64(100*(c.Rank()+1)), int64(c.Rank()))
		sum := MergeMax(c, tm)
		if c.Rank() == 0 {
			e := sum.Get("stage")
			if e.MaxDur != 4*time.Millisecond {
				panic("max dur wrong")
			}
			if e.MaxWork != 40 || e.SumWork != 100 {
				panic("work aggregation wrong")
			}
			if e.SumBytes != 1000 || e.MaxBytes != 400 || e.MaxMsgs != 3 {
				panic("traffic aggregation wrong")
			}
			if sum.Dur("stage") != 4*time.Millisecond {
				panic("accessor wrong")
			}
		} else if sum != nil {
			panic("non-root must get nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownFormatting(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		tm := New()
		tm.Add("alpha", 3*time.Second)
		tm.Add("beta", time.Second)
		sum := MergeMax(c, tm)
		out := sum.Breakdown(nil)
		if !strings.Contains(out, "alpha") || !strings.Contains(out, "75.0%") {
			panic("breakdown missing expected share:\n" + out)
		}
		// Restricted stage list changes the denominator.
		only := sum.Breakdown([]string{"beta"})
		if !strings.Contains(only, "100.0%") {
			panic("restricted breakdown wrong:\n" + only)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownGroupedGolden(t *testing.T) {
	RegisterSubStages("CG", "ExtractContig")
	build := func(insert func(tm *Timers)) *Summary {
		tm := New()
		insert(tm)
		return Aggregate([]*Timers{tm})
	}
	a := build(func(tm *Timers) {
		tm.Add("ExtractContig", 2*time.Second)
		tm.Add("CG:Walk", time.Second)
		tm.Add("Alignment", 6*time.Second)
		tm.Add("CG:Vote", 500*time.Millisecond)
	})
	// Same stages observed in a different order (rank scheduling is free to
	// reorder first-seen) must render byte-identically.
	b := build(func(tm *Timers) {
		tm.Add("CG:Vote", 500*time.Millisecond)
		tm.Add("Alignment", 6*time.Second)
		tm.Add("CG:Walk", time.Second)
		tm.Add("ExtractContig", 2*time.Second)
	})
	wantNames := []string{"Alignment", "ExtractContig", "CG:Vote", "CG:Walk"}
	gotNames := a.OrderedNames()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("OrderedNames = %v, want %v", gotNames, wantNames)
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("OrderedNames = %v, want %v", gotNames, wantNames)
		}
	}
	out, out2 := a.Breakdown(nil), b.Breakdown(nil)
	if out != out2 {
		t.Fatalf("breakdown depends on observation order:\n%s\nvs\n%s", out, out2)
	}
	const golden = `Alignment                        6s   75.0%       0.00 MB         0 msgs       0.00 MB overlap
ExtractContig                    2s   25.0%       0.00 MB         0 msgs       0.00 MB overlap
  CG:Vote                     500ms    6.2%       0.00 MB         0 msgs       0.00 MB overlap
  CG:Walk                        1s   12.5%       0.00 MB         0 msgs       0.00 MB overlap
Total                            8s
`
	if out != golden {
		t.Fatalf("breakdown drifted from golden:\ngot:\n%q\nwant:\n%q", out, golden)
	}
	// Sub-stages with an unregistered prefix trail the top-level stages.
	orphan := build(func(tm *Timers) {
		tm.Add("ZZ:late", time.Second)
		tm.Add("Alpha", time.Second)
	})
	names := orphan.OrderedNames()
	if len(names) != 2 || names[0] != "Alpha" || names[1] != "ZZ:late" {
		t.Fatalf("orphan sub-stage order = %v", names)
	}
}

func TestNamesOrder(t *testing.T) {
	tm := New()
	tm.Add("z", 1)
	tm.Add("a", 1)
	tm.Add("z", 1)
	names := tm.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Fatalf("names %v", names)
	}
}

func TestStageSplitsOverlapAndExposed(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) {
		tm := New()
		tm.Stage("mix", c, func() {
			// One blocking and one nonblocking send of the same size: half
			// the stage traffic must land in the overlap counter.
			if c.Rank() == 0 {
				mpi.Send(c, 1, 0, make([]int64, 100))
				mpi.Isend(c, 1, 1, make([]int64, 100)).Wait()
			} else {
				mpi.Recv[int64](c, 0, 0)
				mpi.Irecv[int64](c, 0, 1).Wait()
			}
		})
		e := tm.Entry("mix")
		if c.Rank() == 0 {
			if e.Bytes != 1600 || e.OverlapBytes != 800 || e.ExposedBytes() != 800 {
				panic("overlap split wrong")
			}
			if e.Msgs != 2 || e.OverlapMsgs != 1 || e.ExposedMsgs() != 1 {
				panic("message split wrong")
			}
		}
		if e.OverlapBytes+e.ExposedBytes() != e.Bytes {
			panic("overlap + exposed != total")
		}
		sum := MergeMax(c, tm)
		if c.Rank() == 0 {
			m := sum.Get("mix")
			if m.SumOverlapBytes != 800 || m.MaxOverlapBytes != 800 || m.SumExposedBytes() != 800 {
				panic("summary overlap aggregation wrong")
			}
			if m.MaxOverlapBytes > m.MaxBytes {
				panic("max overlap exceeds max bytes")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddCommOverlapAndMerge(t *testing.T) {
	a := New()
	a.AddComm("s", 100, 2)
	a.AddCommOverlap("s", 60, 1)
	b := New()
	b.AddCommOverlap("s", 40, 1)
	a.Merge(b)
	e := a.Entry("s")
	if e.Bytes != 200 || e.OverlapBytes != 100 || e.ExposedBytes() != 100 {
		panic("merge lost overlap accounting")
	}
	if e.Msgs != 4 || e.OverlapMsgs != 2 {
		panic("merge lost message accounting")
	}
}
