// Package trace provides per-rank stage timers, per-stage communication
// counters and abstract work counters. Together they feed the performance
// model (package perfmodel) that reproduces the paper's scaling figures on
// hosts with fewer cores than simulated ranks, and the runtime breakdowns of
// Figures 5 and 6.
//
// Communication splits into comm_overlap (sent through the nonblocking mpi
// layer, so it can hide behind computation) and comm_exposed (the blocking
// remainder); the two always sum to the stage total, and perfmodel's
// overlap term charges only the exposed share plus whatever overlappable
// traffic exceeds the stage's compute time.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/mpi"
)

// Entry is one stage's accounting on one rank. OverlapBytes/OverlapMsgs are
// the subset of Bytes/Msgs sent through the nonblocking layer — traffic the
// rank could hide behind computation; the exposed remainder is
// Bytes−OverlapBytes (so comm_overlap + comm_exposed == comm_total by
// construction). Blocking runs keep the overlap counters at zero.
type Entry struct {
	Dur          time.Duration // measured wall time on this rank
	Bytes        int64         // bytes this rank sent during the stage
	Msgs         int64         // messages this rank sent during the stage
	OverlapBytes int64         // of Bytes: sent nonblocking (overlappable)
	OverlapMsgs  int64         // of Msgs: sent nonblocking (overlappable)
	Work         int64         // abstract work units (stage-specific, e.g. DP cells)
}

// ExposedBytes returns the bytes whose transfer the rank had to wait for —
// the comm_exposed counter (Bytes − OverlapBytes).
func (e Entry) ExposedBytes() int64 { return e.Bytes - e.OverlapBytes }

// ExposedMsgs returns the messages not sent through the nonblocking layer.
func (e Entry) ExposedMsgs() int64 { return e.Msgs - e.OverlapMsgs }

// Timers accumulates per-stage entries on one rank. Each rank owns its
// Timers, but a rank's intra-rank worker pool (package par) may report work
// concurrently, so all mutating and reading accessors are mutex-protected.
type Timers struct {
	mu    sync.Mutex
	order []string
	m     map[string]*Entry
}

// New creates an empty timer set.
func New() *Timers {
	return &Timers{m: map[string]*Entry{}}
}

// entry returns the named entry; the caller must hold t.mu.
func (t *Timers) entry(name string) *Entry {
	e, ok := t.m[name]
	if !ok {
		e = &Entry{}
		t.m[name] = e
		t.order = append(t.order, name)
	}
	return e
}

// Stage times fn under name and attributes this rank's traffic delta of the
// interval to the stage. fn runs outside the lock, so stage bodies may
// themselves report into the same Timers.
func (t *Timers) Stage(name string, c *mpi.Comm, fn func()) {
	var b0, m0, ob0, om0 int64
	if c != nil {
		b0, m0 = c.BytesSent(), c.MsgsSent()
		ob0, om0 = c.BytesAsync(), c.MsgsAsync()
	}
	start := time.Now()
	fn()
	dur := time.Since(start)
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(name)
	e.Dur += dur
	if c != nil {
		e.Bytes += c.BytesSent() - b0
		e.Msgs += c.MsgsSent() - m0
		e.OverlapBytes += c.BytesAsync() - ob0
		e.OverlapMsgs += c.MsgsAsync() - om0
	}
}

// Add accumulates a duration under name.
func (t *Timers) Add(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entry(name).Dur += d
}

// AddWork accumulates abstract work units under name.
func (t *Timers) AddWork(name string, units int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entry(name).Work += units
}

// AddComm accumulates traffic under name.
func (t *Timers) AddComm(name string, bytes, msgs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(name)
	e.Bytes += bytes
	e.Msgs += msgs
}

// AddCommOverlap accumulates traffic under name that was sent through the
// nonblocking layer (also counted into the stage totals).
func (t *Timers) AddCommOverlap(name string, bytes, msgs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entry(name)
	e.Bytes += bytes
	e.Msgs += msgs
	e.OverlapBytes += bytes
	e.OverlapMsgs += msgs
}

// Get returns the accumulated duration of a stage.
func (t *Timers) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entry(name).Dur
}

// Entry returns a copy of the stage's accounting.
func (t *Timers) Entry(name string) Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return *t.entry(name)
}

// Names lists stages in first-seen order.
func (t *Timers) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Clone returns a deep copy (entries and first-seen order). The pipeline
// engine forks a rank's timers when resuming from an artifact snapshot, so
// the snapshot's accounting is never double-counted by the resumed chain.
func (t *Timers) Clone() *Timers {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := New()
	for _, n := range t.order {
		e := *t.m[n]
		out.m[n] = &e
		out.order = append(out.order, n)
	}
	return out
}

// Merge folds another rank-local timer set into this one (used to nest
// sub-stage timers).
func (t *Timers) Merge(other *Timers) {
	other.mu.Lock()
	defer other.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range other.order {
		src := other.m[n]
		e := t.entry(n)
		e.Dur += src.Dur
		e.Bytes += src.Bytes
		e.Msgs += src.Msgs
		e.OverlapBytes += src.OverlapBytes
		e.OverlapMsgs += src.OverlapMsgs
		e.Work += src.Work
	}
}

// SummaryEntry aggregates a stage across ranks.
type SummaryEntry struct {
	MaxDur          time.Duration // critical-path convention for breakdowns
	SumBytes        int64
	MaxBytes        int64
	SumMsgs         int64
	MaxMsgs         int64
	SumOverlapBytes int64
	MaxOverlapBytes int64
	SumOverlapMsgs  int64
	MaxOverlapMsgs  int64
	SumWork         int64
	MaxWork         int64
}

// SumExposedBytes returns the non-overlappable share of the stage's summed
// traffic (comm_exposed; SumBytes − SumOverlapBytes).
func (e SummaryEntry) SumExposedBytes() int64 { return e.SumBytes - e.SumOverlapBytes }

// SumExposedMsgs returns the messages not sent through the nonblocking layer
// (SumMsgs − SumOverlapMsgs); with SumExposedBytes it gives the manifest its
// overlap + exposed == total identities.
func (e SummaryEntry) SumExposedMsgs() int64 { return e.SumMsgs - e.SumOverlapMsgs }

// Summary is the cross-rank aggregate of per-rank Timers.
type Summary struct {
	order []string
	m     map[string]SummaryEntry
}

// Names lists stages in first-seen order.
func (s *Summary) Names() []string { return append([]string(nil), s.order...) }

// Get returns a stage's aggregate (zero value if absent).
func (s *Summary) Get(name string) SummaryEntry { return s.m[name] }

// Dur returns the stage's max-across-ranks duration.
func (s *Summary) Dur(name string) time.Duration { return s.m[name].MaxDur }

// Total sums all stage max-durations.
func (s *Summary) Total() time.Duration {
	var t time.Duration
	for _, e := range s.m {
		t += e.MaxDur
	}
	return t
}

// Record is one stage's accounting flattened to wire-encodable scalars: the
// form MergeMax exchanges between ranks and durable checkpoints persist
// (every field is a fixed-width integer or a string, so the typed wire codec
// carries it and the bytes are schedule-invariant).
type Record struct {
	Name    string
	Nanos   int64
	Bytes   int64
	Msgs    int64
	OvBytes int64
	OvMsgs  int64
	Work    int64
}

// Records flattens the timer set into per-stage records in first-seen order.
// FromRecords inverts it exactly.
func (t *Timers) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Record
	for _, n := range t.order {
		e := t.m[n]
		out = append(out, Record{Name: n, Nanos: int64(e.Dur), Bytes: e.Bytes, Msgs: e.Msgs,
			OvBytes: e.OverlapBytes, OvMsgs: e.OverlapMsgs, Work: e.Work})
	}
	return out
}

// FromRecords rebuilds a timer set from flattened records, preserving order —
// the checkpoint restore path; FromRecords(t.Records()) is equivalent to
// t.Clone().
func FromRecords(recs []Record) *Timers {
	t := New()
	for _, r := range recs {
		e := t.entry(r.Name)
		e.Dur = time.Duration(r.Nanos)
		e.Bytes = r.Bytes
		e.Msgs = r.Msgs
		e.OverlapBytes = r.OvBytes
		e.OverlapMsgs = r.OvMsgs
		e.Work = r.Work
	}
	return t
}

// foldWires aggregates per-rank records: durations, per-rank bytes/messages
// and work take the max (critical path); bytes and work are also summed.
func foldWires(parts [][]Record) *Summary {
	out := &Summary{m: map[string]SummaryEntry{}}
	for _, part := range parts {
		for _, w := range part {
			e, seen := out.m[w.Name]
			if !seen {
				out.order = append(out.order, w.Name)
			}
			if d := time.Duration(w.Nanos); d > e.MaxDur {
				e.MaxDur = d
			}
			e.SumBytes += w.Bytes
			if w.Bytes > e.MaxBytes {
				e.MaxBytes = w.Bytes
			}
			e.SumMsgs += w.Msgs
			if w.Msgs > e.MaxMsgs {
				e.MaxMsgs = w.Msgs
			}
			e.SumOverlapBytes += w.OvBytes
			if w.OvBytes > e.MaxOverlapBytes {
				e.MaxOverlapBytes = w.OvBytes
			}
			e.SumOverlapMsgs += w.OvMsgs
			if w.OvMsgs > e.MaxOverlapMsgs {
				e.MaxOverlapMsgs = w.OvMsgs
			}
			e.SumWork += w.Work
			if w.Work > e.MaxWork {
				e.MaxWork = w.Work
			}
			out.m[w.Name] = e
		}
	}
	return out
}

// MergeMax gathers per-rank timers at rank 0 and aggregates them: durations,
// per-rank bytes/messages and work take the max (critical path); bytes and
// work are also summed (totals). Collective; returns nil on non-zero ranks.
func MergeMax(c *mpi.Comm, t *Timers) *Summary {
	parts := mpi.Gatherv(c, 0, t.Records())
	if c.Rank() != 0 {
		return nil
	}
	return foldWires(parts)
}

// Aggregate folds several ranks' timer sets into one Summary with MergeMax's
// aggregation, but locally — no communication. The pipeline engine, which
// can reach every simulated rank's Timers through shared memory between
// stages, uses it to stream per-stage aggregates to observers without
// perturbing the run's traffic counters.
func Aggregate(ts []*Timers) *Summary {
	parts := make([][]Record, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			parts = append(parts, t.Records())
		}
	}
	return foldWires(parts)
}

// Sub-stage registry: stage names of the form "PREFIX:rest" are sub-stages;
// RegisterSubStages declares which top-level stage a prefix's timings nest
// inside, so deterministic breakdowns can group them under their parent
// instead of interleaving them by observation order.
var (
	subStageMu     sync.Mutex
	subStageParent = map[string]string{}
)

// RegisterSubStages declares that stages named "prefix:*" are sub-stages of
// parent. Packages register their prefixes in init (e.g. the contig stage
// registers "CG" under ExtractContig); re-registering a prefix overwrites.
func RegisterSubStages(prefix, parent string) {
	subStageMu.Lock()
	defer subStageMu.Unlock()
	subStageParent[prefix] = parent
}

// OrderedNames returns every stage of the summary in the deterministic
// display order: top-level stages (names without ':') sorted alphabetically,
// each immediately followed by its registered sub-stages (sorted); sub-stage
// groups whose prefix is unregistered or whose parent is absent follow at the
// end, grouped by prefix (prefixes and names sorted). First-seen order — a
// race-prone artifact of rank scheduling — never leaks into the result.
func (s *Summary) OrderedNames() []string {
	var parents []string
	subsByPrefix := map[string][]string{}
	for _, n := range s.order {
		if i := strings.IndexByte(n, ':'); i >= 0 {
			subsByPrefix[n[:i]] = append(subsByPrefix[n[:i]], n)
		} else {
			parents = append(parents, n)
		}
	}
	sort.Strings(parents)
	hasParent := map[string]bool{}
	for _, p := range parents {
		hasParent[p] = true
	}
	subStageMu.Lock()
	attached := map[string][]string{}
	var orphanPrefixes []string
	for prefix, subs := range subsByPrefix {
		sort.Strings(subs)
		if par, ok := subStageParent[prefix]; ok && hasParent[par] {
			attached[par] = append(attached[par], subs...)
		} else {
			orphanPrefixes = append(orphanPrefixes, prefix)
		}
	}
	subStageMu.Unlock()
	for _, subs := range attached {
		sort.Strings(subs)
	}
	sort.Strings(orphanPrefixes)
	out := make([]string, 0, len(s.order))
	for _, p := range parents {
		out = append(out, p)
		out = append(out, attached[p]...)
	}
	for _, prefix := range orphanPrefixes {
		out = append(out, subsByPrefix[prefix]...)
	}
	return out
}

// Breakdown formats the stage shares like the paper's Figure 5 legend,
// restricted to the given stages (in the given order). With nil it renders
// every stage in OrderedNames order — sorted top-level stages with their
// sub-stages indented beneath them — and percentages against the top-level
// total only, so nested sub-stage time is not double-counted.
func (s *Summary) Breakdown(stages []string) string {
	grouped := stages == nil
	if grouped {
		stages = s.OrderedNames()
	}
	var total time.Duration
	for _, n := range stages {
		if grouped && strings.IndexByte(n, ':') >= 0 {
			continue // nested inside its parent's time
		}
		total += s.m[n].MaxDur
	}
	var b strings.Builder
	for _, n := range stages {
		e := s.m[n]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(e.MaxDur) / float64(total)
		}
		label := n
		if grouped && strings.IndexByte(n, ':') >= 0 {
			label = "  " + n
		}
		fmt.Fprintf(&b, "%-22s %12s  %5.1f%%  %9.2f MB  %8d msgs  %9.2f MB overlap\n",
			label, e.MaxDur.Round(time.Microsecond), pct, float64(e.SumBytes)/1e6, e.MaxMsgs,
			float64(e.SumOverlapBytes)/1e6)
	}
	fmt.Fprintf(&b, "%-22s %12s\n", "Total", total.Round(time.Microsecond))
	return b.String()
}
