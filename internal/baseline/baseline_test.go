package baseline

import (
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/quality"
	"repro/internal/readsim"
)

func testConfig() Config {
	return Config{
		K:            21,
		ReliableLow:  2,
		ReliableHigh: 100,
		Align:        align.DefaultParams(25),
		MinOverlap:   100,
		MinScoreFrac: 0.5,
		MaxOverhang:  60,
		Threads:      4,
	}
}

func TestBestOverlapErrorFreeRoundTrip(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 25000, Seed: 81})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 2000, Seed: 82}))
	res := BestOverlapAssemble(reads, testConfig())
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	fw, rc := string(genome), string(dna.RevComp(genome))
	for i, c := range res.Contigs {
		if !strings.Contains(fw, string(c.Seq)) && !strings.Contains(rc, string(c.Seq)) {
			t.Fatalf("contig %d (%d bases) not a genome substring", i, len(c.Seq))
		}
	}
	if len(res.Contigs[0].Seq) < len(genome)/2 {
		t.Fatalf("longest contig %d of %d", len(res.Contigs[0].Seq), len(genome))
	}
	if res.Candidates == 0 || res.Overlaps == 0 {
		t.Fatalf("counters: %+v", res)
	}
}

func TestBestOverlapDeterministicAcrossThreads(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 15000, Seed: 83})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 1500, Seed: 84}))
	cfg := testConfig()
	cfg.Threads = 1
	a := BestOverlapAssemble(reads, cfg)
	cfg.Threads = 8
	b := BestOverlapAssemble(reads, cfg)
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("%d vs %d contigs", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if string(a.Contigs[i].Seq) != string(b.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between thread counts", i)
		}
	}
}

func TestBestOverlapQualityReasonable(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 85})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 15, MeanLen: 2200, Seed: 86}))
	res := BestOverlapAssemble(reads, testConfig())
	seqs := make([][]byte, len(res.Contigs))
	for i, c := range res.Contigs {
		seqs[i] = c.Seq
	}
	rep := quality.Evaluate(genome, seqs)
	if rep.Completeness < 60 {
		t.Fatalf("completeness %.1f", rep.Completeness)
	}
	if rep.Misassemblies > len(res.Contigs)/4+1 {
		t.Fatalf("misassemblies %d of %d contigs", rep.Misassemblies, len(res.Contigs))
	}
}

func TestBestOverlapContainedRemoved(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 10000, Seed: 87})
	var reads [][]byte
	for pos := 0; pos+2000 <= len(genome); pos += 700 {
		reads = append(reads, genome[pos:pos+2000])
	}
	reads = append(reads, genome[500:1200]) // strictly inside read 0
	res := BestOverlapAssemble(reads, testConfig())
	if res.Contained == 0 {
		t.Fatal("containment not detected")
	}
	for _, c := range res.Contigs {
		for _, r := range c.Reads {
			if int(r) == len(reads)-1 {
				t.Fatal("contained read used in a contig")
			}
		}
	}
}
