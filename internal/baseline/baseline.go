// Package baseline provides the shared-memory comparator assemblers for the
// paper's Tables 3 and 4. The closed-source/complex comparators (Hifiasm,
// HiCanu, miniasm, Canu) are substituted by same-class algorithms on our own
// substrate (DESIGN.md §2):
//
//   - BestOverlap: a multithreaded greedy best-overlap-graph assembler in
//     the spirit of Canu's Bogart and Miller et al. — the longest dovetail
//     per read end, mutual-best filtering, then non-branching path
//     extraction.
//   - The "serial ELBA" comparator (miniasm-flavoured OLC) is simply the
//     pipeline run at P = 1 and lives in the pipeline package.
//
// Everything here is plain shared memory: a k-mer inverted index instead of
// SpGEMM, a worker pool instead of a process grid.
package baseline

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/align"
	"repro/internal/bidir"
	"repro/internal/core"
	"repro/internal/kmer"
	"repro/internal/spmat"
)

// Config mirrors the pipeline's overlap parameters plus a thread count.
type Config struct {
	K            int
	ReliableLow  int32
	ReliableHigh int32
	Align        align.Params
	MinOverlap   int32
	MinScoreFrac float64
	MaxOverhang  int32
	Threads      int // worker pool size; 0 = GOMAXPROCS
}

// Result is the baseline assembly outcome.
type Result struct {
	Contigs      []core.Contig
	Overlaps     int     // surviving dovetail overlaps
	Contained    int     // reads removed by containment
	ContainedIDs []int32 // the removed reads (sorted)
	Candidates   int     // aligned candidate pairs
}

// pairKey packs an (i < j) read pair.
type pairKey int64

func mkPair(i, j int32) pairKey {
	if i > j {
		i, j = j, i
	}
	return pairKey(int64(i)<<32 | int64(uint32(j)))
}

// BestOverlapAssemble runs the full shared-memory baseline.
func BestOverlapAssemble(reads [][]byte, cfg Config) *Result {
	res := &Result{}
	// 1. Reliable k-mers via the serial counter.
	counts := kmer.CountSerial(reads, cfg.K)
	reliable := map[kmer.Kmer]bool{}
	for _, km := range kmer.SelectReliable(counts, cfg.ReliableLow, cfg.ReliableHigh) {
		reliable[km] = true
	}
	// 2. Inverted index → candidate pairs with up to 2 seeds.
	type occ struct {
		read int32
		pos  int32
		rc   bool
	}
	index := map[kmer.Kmer][]occ{}
	for r, seq := range reads {
		for _, kp := range kmer.Extract(seq, cfg.K) {
			if reliable[kp.Kmer] {
				index[kp.Kmer] = append(index[kp.Kmer], occ{int32(r), kp.Pos, kp.RC})
			}
		}
	}
	type cand struct {
		i, j  int32
		seeds []align.Seed
	}
	candOf := map[pairKey]*cand{}
	for _, occs := range index {
		for a := 0; a < len(occs); a++ {
			for b := a + 1; b < len(occs); b++ {
				oi, oj := occs[a], occs[b]
				if oi.read == oj.read {
					continue
				}
				if oi.read > oj.read {
					oi, oj = oj, oi
				}
				key := mkPair(oi.read, oj.read)
				c, ok := candOf[key]
				if !ok {
					c = &cand{i: oi.read, j: oj.read}
					candOf[key] = c
				}
				if len(c.seeds) < 2 {
					c.seeds = append(c.seeds, align.Seed{PU: oi.pos, PV: oj.pos, RC: oi.rc != oj.rc})
				}
			}
		}
	}
	cands := make([]*cand, 0, len(candOf))
	for _, c := range candOf {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	res.Candidates = len(cands)

	// 3. Parallel alignment + classification.
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	type verdict struct {
		aln       bidir.Aln
		keep      bool
		contained int32 // read id to drop, or -1
	}
	verdicts := make([]verdict, len(cands))
	var wg sync.WaitGroup
	chunk := (len(cands) + threads - 1) / threads
	cls := bidir.Params{MaxOverhang: cfg.MaxOverhang}
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for x := lo; x < hi; x++ {
				c := cands[x]
				a := align.Best(reads[c.i], reads[c.j], int32(cfg.K), c.seeds, cfg.Align)
				a.U, a.V = c.i, c.j
				v := verdict{aln: a, contained: -1}
				alnLen := a.EU - a.BU
				if a.EV-a.BV < alnLen {
					alnLen = a.EV - a.BV
				}
				if alnLen >= cfg.MinOverlap && float64(a.Score) >= cfg.MinScoreFrac*float64(alnLen) {
					switch _, kind := bidir.Classify(a, cls); kind {
					case bidir.Dovetail:
						v.keep = true
					case bidir.ContainsV:
						v.contained = c.j
					case bidir.ContainedU:
						v.contained = c.i
					}
				}
				verdicts[x] = v
			}
		}(lo, hi)
	}
	wg.Wait()

	dead := map[int32]bool{}
	for _, v := range verdicts {
		if v.contained >= 0 && !dead[v.contained] {
			dead[v.contained] = true
			res.ContainedIDs = append(res.ContainedIDs, v.contained)
		}
	}
	sort.Slice(res.ContainedIDs, func(i, j int) bool { return res.ContainedIDs[i] < res.ContainedIDs[j] })
	res.Contained = len(res.ContainedIDs)

	// 4. Best overlap per read end (Miller et al.): for each read end keep
	// the longest surviving dovetail.
	type bestEdge struct {
		aln   bidir.Aln
		edge  bidir.Edge
		ovLen int32
		to    int32
		valid bool
	}
	// ends[read][end]: end 0 = prefix, 1 = suffix.
	ends := make([][2]bestEdge, len(reads))
	consider := func(u, v int32, e bidir.Edge, a bidir.Aln, ovLen int32) {
		end := e.SrcBit() // the end of u the overlap occupies
		b := &ends[u][end]
		if !b.valid || ovLen > b.ovLen || (ovLen == b.ovLen && v < b.to) {
			*b = bestEdge{aln: a, edge: e, ovLen: ovLen, to: v, valid: true}
		}
	}
	for _, v := range verdicts {
		if !v.keep || dead[v.aln.U] || dead[v.aln.V] {
			continue
		}
		e, kind := bidir.Classify(v.aln, cls)
		if kind != bidir.Dovetail {
			continue
		}
		m, _ := bidir.Classify(v.aln.Mirror(), cls)
		ovLen := v.aln.EU - v.aln.BU
		consider(v.aln.U, v.aln.V, e, v.aln, ovLen)
		consider(v.aln.V, v.aln.U, m, v.aln.Mirror(), ovLen)
	}

	// 5. Mutual-best filtering: the edge u→v survives only if v's matching
	// end also elected u.
	type dedge struct {
		u, v int32
		e    bidir.Edge
	}
	var edges []dedge
	for u := range ends {
		for end := 0; end < 2; end++ {
			b := ends[u][end]
			if !b.valid {
				continue
			}
			back := ends[b.to][b.edge.DstBit()]
			if back.valid && back.to == int32(u) {
				edges = append(edges, dedge{u: int32(u), v: b.to, e: b.edge})
			}
		}
	}
	res.Overlaps = len(edges) / 2

	// 6. Non-branching path extraction: mutual-best edges give each read end
	// degree ≤ 1; reuse the paper's local assembly walker on the whole graph.
	var ts []spmat.Triple[bidir.Edge]
	for _, d := range edges {
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: d.v, Col: d.u, Val: d.e})
	}
	n := int32(len(reads))
	coo := spmat.NewCOO(n, n, ts, func(a, b bidir.Edge) bidir.Edge { return a })
	globals := make([]int32, n)
	for i := range globals {
		globals[i] = int32(i)
	}
	lg := &core.LocalGraph{Globals: globals, CSC: coo.ToCSC()}
	seqs := map[int32][]byte{}
	for i, r := range reads {
		seqs[int32(i)] = r
	}
	contigs := core.LocalAssembly(lg, seqs)
	core.SortContigs(contigs)
	res.Contigs = contigs
	return res
}
