package tcp

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
)

// mesh builds a local p-rank loopback mesh and registers cleanup.
func mesh(t *testing.T, p int) []transport.Transport {
	t.Helper()
	eps, err := NewLocal(p)
	if err != nil {
		t.Fatalf("NewLocal(%d): %v", p, err)
	}
	t.Cleanup(func() {
		var wg sync.WaitGroup
		for _, ep := range eps {
			wg.Add(1)
			go func(ep transport.Transport) { defer wg.Done(); ep.Close() }(ep)
		}
		wg.Wait()
	})
	return eps
}

// take blocks on scan-then-wait until a matching message arrives.
func take(t *testing.T, ep transport.Transport, src int, tag int64) transport.Message {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, notify, ok := ep.Match(src, tag)
		if ok {
			return m
		}
		select {
		case <-notify:
		case <-time.After(time.Until(deadline)):
			t.Fatalf("no message from %d tag %d", src, tag)
		}
	}
}

func TestMeshDeliversAllPairs(t *testing.T) {
	const p = 4
	eps := mesh(t, p)
	for i := 0; i < p; i++ {
		if eps[i].Self() != i || eps[i].Size() != p {
			t.Fatalf("endpoint %d misconfigured: self=%d size=%d", i, eps[i].Self(), eps[i].Size())
		}
	}
	// Every ordered pair, including self-sends.
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			payload := []byte{byte(src), byte(dst)}
			err := eps[src].Send(dst, transport.Message{Src: src, Tag: int64(10*src + dst), Payload: payload})
			if err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			m := take(t, eps[dst], src, int64(10*src+dst))
			if m.Src != src || m.Payload[0] != byte(src) || m.Payload[1] != byte(dst) {
				t.Fatalf("message %d->%d corrupted: %+v", src, dst, m)
			}
		}
	}
}

func TestFramesPreserveOrderAndContent(t *testing.T) {
	eps := mesh(t, 2)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1+i%97)
			for j := range buf {
				buf[j] = byte(i + j)
			}
			eps[0].Send(1, transport.Message{Src: 0, Tag: 42, Payload: buf})
		}
	}()
	for i := 0; i < n; i++ {
		m := take(t, eps[1], 0, 42)
		if len(m.Payload) != 1+i%97 {
			t.Fatalf("frame %d: len %d, want %d (ordering broken?)", i, len(m.Payload), 1+i%97)
		}
		for j, b := range m.Payload {
			if b != byte(i+j) {
				t.Fatalf("frame %d byte %d corrupted", i, j)
			}
		}
	}
}

func TestAbortReachesPeerFailureHandlers(t *testing.T) {
	eps := mesh(t, 3)
	fails := make(chan error, 2)
	eps[1].SetFailureHandler(func(err error) { fails <- err })
	eps[2].SetFailureHandler(func(err error) { fails <- err })
	eps[0].Abort(-1, "deliberate test abort")
	for i := 0; i < 2; i++ {
		select {
		case err := <-fails:
			if !strings.Contains(err.Error(), "deliberate test abort") {
				t.Fatalf("failure lacks abort reason: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("peer failure handler never fired after abort")
		}
	}
}

// TestCloseDrainDeliversInflightData pins the BYE contract: data written
// before Close must be matchable by the peer afterwards — TCP ordering puts
// the BYE behind the data, so nothing delivered is ever discarded.
func TestCloseDrainDeliversInflightData(t *testing.T) {
	eps, err := NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("last words before close")
	if err := eps[0].Send(1, transport.Message{Src: 0, Tag: 7, Payload: want}); err != nil {
		t.Fatal(err)
	}
	// Concurrent close on both ends, like World.Close does.
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep transport.Transport) { defer wg.Done(); ep.Close() }(ep)
	}
	wg.Wait()
	m, _, ok := eps[1].Match(0, 7)
	if !ok || string(m.Payload) != string(want) {
		t.Fatalf("pre-close data lost: ok=%v payload=%q", ok, m.Payload)
	}
}

func TestCloseIsIdempotentAndFailureSilent(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].SetFailureHandler(func(err error) { t.Errorf("closing endpoint reported failure: %v", err) })
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep transport.Transport) { defer wg.Done(); ep.Close() }(ep)
	}
	wg.Wait()
	if err := eps[0].Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestFailureBeforeHandlerRegistrationIsBuffered(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].Abort(-1, "early abort")
	// Rank 1's reader may observe the abort before anyone registers a
	// handler; registration must replay the buffered failure.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := make(chan error, 1)
		eps[1].SetFailureHandler(func(err error) {
			select {
			case got <- err:
			default:
			}
		})
		select {
		case err := <-got:
			if !strings.Contains(err.Error(), "early abort") {
				t.Fatalf("buffered failure lacks reason: %v", err)
			}
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("failure before handler registration was lost")
			}
		}
	}
}

func TestRendezvousRejectsDuplicateRank(t *testing.T) {
	if _, err := Connect("127.0.0.1:1", -1, 2); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := Connect("127.0.0.1:1", 2, 2); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}
