// Package tcp is the socket transport: it carries the mpi wire frames
// between ranks running as separate OS processes — on one host (`cmd/elba
// -transport proc -np P` re-execs one worker per rank) or across machines
// (`cmd/elba -transport tcp -join host:port -rank R -np P` joins a
// standalone rendezvous) — executing the same SPMD program as the
// in-process simulator on a real process mesh.
//
// Topology and lifecycle:
//
//   - A rendezvous server (ServeRendezvous, run by the launching process or
//     standalone via `cmd/elba -serve-rendezvous`) accepts one registration
//     per rank — {rank, advertised listen address} — and, once all P have
//     arrived, broadcasts the full address table to each. Registrations
//     that advertise an unspecified host (":port", "0.0.0.0:port") are
//     rewritten to the source address the server observed, so a worker
//     behind several interfaces still publishes a routable address.
//   - Join(rdv, self, p, cfg) registers with the rendezvous, then wires the
//     mesh: rank i dials every rank j < i and accepts from every j > i, so
//     each unordered pair shares exactly one TCP connection. A one-byte-ish
//     uvarint handshake identifies the dialer. By default the mesh listener
//     binds every interface and advertises the address this host used to
//     reach the rendezvous — routable from any machine that can reach the
//     rendezvous — with JoinConfig overriding bind and advertise addresses
//     for multi-homed hosts. Connect is Join with the default config.
//   - Messages are length-prefixed frames ([kind][tag][len][payload]); a
//     reader goroutine per peer drains them into the rank's mailbox
//     immediately, which both implements the buffered-send contract (a
//     sender never blocks on the receiver matching) and keeps kernel socket
//     buffers empty.
//   - Close performs a BYE handshake: send BYE to every peer, wait for
//     theirs, then close. TCP ordering guarantees a peer's BYE arrives after
//     all its data, so closing can never discard delivered-but-unread
//     frames (an early close with unread data would RST the connection).
//   - Abort broadcasts an ABORT frame carrying the reason and tears the
//     endpoint down without draining. A peer's reader surfaces the abort —
//     or a broken connection, which is how an outright-killed rank appears —
//     through the failure handler as a *transport.RankFailure naming the
//     dead rank; that is how one process's death or cancellation unwinds
//     the whole job with a diagnosable error.
//
// NewLocal builds a full P-endpoint mesh over loopback inside one process —
// the configuration the conformance and equivalence suites use to run the
// real socket path without forking. NewLocalHosts does the same with one
// listen host per rank (127.0.0.1, 127.0.0.2, …), simulating a multi-host
// deployment on distinct loopback interfaces.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi/transport"
)

// Frame kinds on a mesh connection.
const (
	frameMsg   = 0x01 // payload is an mpi wire frame
	frameAbort = 0x02 // payload is the abort reason; sender is dead
	frameBye   = 0x03 // orderly shutdown; no further frames follow
	framePing  = 0x04 // heartbeat probe, sent only on a write-idle connection
	framePong  = 0x05 // heartbeat reply; arrival alone proves the peer lives
)

// maxFrameLen bounds a single frame payload (matches the MPI 2^31-1 count
// limit the chunking layer enforces, plus codec header slack).
const maxFrameLen = 1<<31 - 1 + 64

// dialTimeout is the default bound on connection attempts (rendezvous and
// mesh); JoinConfig.DialTimeout overrides it per Join.
const dialTimeout = 30 * time.Second

// closeDrain bounds how long Close waits for a peer's BYE before closing
// anyway (a peer that crashed will never say goodbye).
const closeDrain = 10 * time.Second

// Heartbeat defaults (JoinConfig.HeartbeatInterval/-Timeout override; a
// negative value disables). A connection that is write-idle for the interval
// carries a PING; a reader that receives nothing — data, PING or PONG — for
// the timeout declares the peer failed. The timeout spans several intervals
// so one delayed probe never kills a healthy job.
const (
	defaultHeartbeatInterval = 2 * time.Second
	defaultHeartbeatTimeout  = 15 * time.Second
)

// Endpoint is one rank's socket endpoint. It implements
// transport.Transport, transport.QueueInstrumented and
// transport.PendingDumper.
type Endpoint struct {
	self, size int
	box        *transport.Mailbox
	peers      []*peerConn // indexed by rank; nil at self

	hbInterval time.Duration // ping a write-idle connection this often (≤0: never)
	hbTimeout  time.Duration // declare a silent peer dead after this long (≤0: never)
	hbStop     chan struct{} // closes the heartbeat goroutine; nil when disabled
	hbOnce     sync.Once

	mu      sync.Mutex
	failFn  func(error)
	failErr error
	failed  bool
	closing bool
}

// peerConn is the single connection shared with one peer rank.
type peerConn struct {
	nc        net.Conn
	wmu       sync.Mutex
	done      chan struct{} // closed when the reader exits (BYE, abort or error)
	lastWrite atomic.Int64  // unix nanos of the last frame written; heartbeats ping only idle conns
}

func (p *peerConn) writeFrame(kind byte, tag int64, payload []byte) error {
	var hdr [13]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(tag))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	p.wmu.Lock()
	defer p.wmu.Unlock()
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(p.nc)
	p.lastWrite.Store(time.Now().UnixNano())
	return err
}

// Self returns the rank this endpoint serves.
func (e *Endpoint) Self() int { return e.self }

// Size returns the job's rank count.
func (e *Endpoint) Size() int { return e.size }

// Send delivers m to dst: self-sends loop straight into the mailbox,
// everything else is one frame on the pair's connection. The write can
// block only on the kernel buffer — the peer's reader always drains — so
// buffered-send semantics hold.
func (e *Endpoint) Send(dst int, m transport.Message) error {
	if dst < 0 || dst >= e.size {
		return fmt.Errorf("tcp: dst rank %d out of range [0,%d)", dst, e.size)
	}
	if dst == e.self {
		e.box.Push(m)
		return nil
	}
	pc := e.peers[dst]
	if pc == nil {
		return fmt.Errorf("tcp: no connection to rank %d", dst)
	}
	if err := pc.writeFrame(frameMsg, m.Tag, m.Payload); err != nil {
		return fmt.Errorf("tcp: send to rank %d: %w", dst, err)
	}
	return nil
}

// Match removes the oldest queued message matching (src, tag); see
// transport.Transport.
func (e *Endpoint) Match(src int, tag int64) (transport.Message, <-chan struct{}, bool) {
	return e.box.Take(src, tag)
}

// SetFailureHandler registers fn; if the endpoint already failed (readers
// start at Connect time, possibly before the handler exists), fn fires
// immediately with the buffered cause.
func (e *Endpoint) SetFailureHandler(fn func(error)) {
	e.mu.Lock()
	e.failFn = fn
	var pending error
	if e.failed {
		pending = e.failErr
	}
	e.mu.Unlock()
	if pending != nil && fn != nil {
		fn(pending)
	}
}

// SetQueueDepthHook implements transport.QueueInstrumented.
func (e *Endpoint) SetQueueDepthHook(fn func(int64)) { e.box.SetDepthHook(fn) }

// PendingDump implements transport.PendingDumper.
func (e *Endpoint) PendingDump() string { return e.box.PendingDump() }

// fail reports the first endpoint failure to the handler (at most once).
// Failures during an orderly Close are expected teardown noise and dropped.
func (e *Endpoint) fail(err error) {
	e.mu.Lock()
	if e.failed || e.closing {
		e.mu.Unlock()
		return
	}
	e.failed = true
	e.failErr = err
	fn := e.failFn
	e.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// Abort tears the endpoint down without draining: every live peer gets an
// ABORT frame carrying reason (best effort, bounded by a write deadline),
// then all connections close. origin rides the frame's otherwise-unused tag
// field (-1 = this endpoint's own rank), so a cascading abort keeps the
// failure attributed to the rank that actually died — peers racing the
// origin's own abort against a relayed one see the same rank either way.
func (e *Endpoint) Abort(origin int, reason string) {
	e.mu.Lock()
	already := e.closing
	e.closing = true
	e.mu.Unlock()
	if already {
		return
	}
	e.stopHeartbeat()
	if origin < 0 {
		origin = e.self
	}
	payload := []byte(reason)
	for _, pc := range e.peers {
		if pc == nil {
			continue
		}
		// A connection whose deadline cannot even be set is already dead or
		// wedged: writing the abort frame to it could block teardown, so skip
		// the notification and just close — the peer's reader will surface
		// the broken connection instead.
		if err := pc.nc.SetWriteDeadline(time.Now().Add(2 * time.Second)); err != nil {
			pc.nc.Close()
			continue
		}
		pc.writeFrame(frameAbort, int64(origin), payload)
		pc.nc.Close()
	}
}

// Close drains politely: BYE to every peer, wait (bounded) for each peer's
// reader to see their BYE — by TCP ordering all their data precedes it —
// then close the sockets. Idempotent; concurrent with Abort it yields.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	already := e.closing
	e.closing = true
	e.mu.Unlock()
	if already {
		return nil
	}
	e.stopHeartbeat()
	for _, pc := range e.peers {
		if pc != nil {
			pc.writeFrame(frameBye, 0, nil)
		}
	}
	deadline := time.Now().Add(closeDrain)
	for _, pc := range e.peers {
		if pc == nil {
			continue
		}
		select {
		case <-pc.done:
		default:
			// One timer per peer, anchored to a common deadline: a shared
			// time.After channel would fire once and leave every later wait
			// blocking forever.
			t := time.NewTimer(time.Until(deadline))
			select {
			case <-pc.done:
			case <-t.C:
			}
			t.Stop()
		}
		pc.nc.Close()
	}
	return nil
}

// readFailure classifies a reader's error: a read-deadline expiry means the
// peer went silent past the heartbeat timeout — the signature of a hung
// process or an unreachable host, which never closes the connection — while
// anything else is the connection itself breaking (a killed process resets
// or closes its sockets).
func (e *Endpoint) readFailure(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("missed heartbeats for %v (process hung or host unreachable)", e.hbTimeout)
	}
	return fmt.Errorf("connection to rank %d broke: %w", e.self, err)
}

// readFullAlive fills buf from the peer's buffered reader, refreshing the
// connection's read deadline per chunk when heartbeat detection is on: a
// large frame that is still flowing never trips the timeout, a stalled one
// does.
func (e *Endpoint) readFullAlive(pc *peerConn, br *bufio.Reader, buf []byte) error {
	const chunk = 1 << 20
	for len(buf) > 0 {
		if e.hbTimeout > 0 {
			pc.nc.SetReadDeadline(time.Now().Add(e.hbTimeout))
		}
		n := len(buf)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// heartbeat pings every write-idle peer connection each interval, so a rank
// that is alive but has nothing to say still proves it: the peer's reader
// treats any arriving frame — data, PING or PONG — as liveness. Runs until
// Close or Abort stops it; write errors are left for the peer's reader to
// surface.
func (e *Endpoint) heartbeat() {
	t := time.NewTicker(e.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-e.hbStop:
			return
		case <-t.C:
		}
		idle := time.Now().Add(-e.hbInterval).UnixNano()
		for _, pc := range e.peers {
			if pc == nil {
				continue
			}
			select {
			case <-pc.done:
				continue
			default:
			}
			if pc.lastWrite.Load() > idle {
				continue // recent traffic already proved this rank alive
			}
			pc.writeFrame(framePing, 0, nil)
		}
	}
}

// stopHeartbeat shuts the heartbeat goroutine down (idempotent; no-op when
// heartbeats are disabled).
func (e *Endpoint) stopHeartbeat() {
	e.hbOnce.Do(func() {
		if e.hbStop != nil {
			close(e.hbStop)
		}
	})
}

// reader drains one peer connection into the mailbox until BYE, ABORT, a
// connection error, or — with heartbeat detection on — a silence longer than
// the heartbeat timeout.
func (e *Endpoint) reader(peer int, pc *peerConn) {
	defer close(pc.done)
	br := bufio.NewReaderSize(pc.nc, 1<<16)
	var hdr [13]byte
	for {
		if err := e.readFullAlive(pc, br, hdr[:]); err != nil {
			e.fail(&transport.RankFailure{Rank: peer, Err: e.readFailure(err)})
			return
		}
		kind := hdr[0]
		tag := int64(binary.LittleEndian.Uint64(hdr[1:9]))
		n := binary.LittleEndian.Uint32(hdr[9:13])
		if uint64(n) > maxFrameLen {
			e.fail(&transport.RankFailure{Rank: peer, Err: fmt.Errorf("sent rank %d an oversized frame (%d bytes)", e.self, n)})
			return
		}
		var payload []byte
		if n > 0 {
			payload = make([]byte, n)
			if err := e.readFullAlive(pc, br, payload); err != nil {
				e.fail(&transport.RankFailure{Rank: peer, Err: e.readFailure(err)})
				return
			}
		}
		switch kind {
		case frameMsg:
			e.box.Push(transport.Message{Src: peer, Tag: tag, Payload: payload})
		case framePing:
			// Reply so a one-sided conversation stays provably alive in both
			// directions; the reply errors, if any, surface on this reader.
			pc.writeFrame(framePong, 0, nil)
		case framePong:
			// Arrival alone refreshed the read deadline; nothing to do.
		case frameBye:
			return
		case frameAbort:
			// The tag field names the rank the abort is attributed to; a
			// relayed abort arrives from a messenger peer but still blames
			// the rank that died first.
			rank := peer
			if tag >= 0 && tag < int64(e.size) {
				rank = int(tag)
			}
			if rank != peer {
				e.fail(&transport.RankFailure{Rank: rank, Err: fmt.Errorf("aborted the job (relayed by rank %d): %s", peer, payload)})
			} else {
				e.fail(&transport.RankFailure{Rank: rank, Err: fmt.Errorf("aborted the job: %s", payload)})
			}
			return
		default:
			e.fail(&transport.RankFailure{Rank: peer, Err: fmt.Errorf("sent rank %d an unknown frame kind 0x%02x", e.self, kind)})
			return
		}
	}
}

// ServeRendezvous accepts exactly p rank registrations on ln and replies to
// each with the complete rank→address table, then closes everything. Run it
// in the launching process (or a goroutine of a single-process mesh) before
// workers call Connect.
func ServeRendezvous(ln net.Listener, p int) error {
	defer ln.Close()
	type reg struct {
		conn net.Conn
		bw   *bufio.Writer
	}
	regs := make([]*reg, p)
	addrs := make([]string, p)
	seen := 0
	for seen < p {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: rendezvous accept: %w", err)
		}
		conn.SetDeadline(time.Now().Add(dialTimeout))
		br := bufio.NewReader(conn)
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			conn.Close()
			return fmt.Errorf("tcp: rendezvous registration: %w", err)
		}
		addr, err := readString(br)
		if err != nil {
			conn.Close()
			return fmt.Errorf("tcp: rendezvous registration: %w", err)
		}
		// A worker advertising an unspecified host (":port", "0.0.0.0:port")
		// gets it rewritten to the source IP this registration arrived from —
		// the one address the server knows is routable back to the worker.
		addr = rewriteUnspecified(addr, conn.RemoteAddr())
		if rank >= uint64(p) || regs[rank] != nil {
			conn.Close()
			return fmt.Errorf("tcp: rendezvous: bad or duplicate rank %d", rank)
		}
		regs[rank] = &reg{conn: conn, bw: bufio.NewWriter(conn)}
		addrs[rank] = addr
		seen++
	}
	var first error
	for _, r := range regs {
		for _, a := range addrs {
			writeString(r.bw, a)
		}
		if err := r.bw.Flush(); err != nil && first == nil {
			first = fmt.Errorf("tcp: rendezvous reply: %w", err)
		}
		r.conn.Close()
	}
	return first
}

// rewriteUnspecified replaces an unspecified or empty host in addr with the
// IP of from, keeping the port. Addresses with a concrete host pass through.
func rewriteUnspecified(addr string, from net.Addr) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host != "" {
		if ip := net.ParseIP(host); ip == nil || !ip.IsUnspecified() {
			return addr
		}
	}
	ra, ok := from.(*net.TCPAddr)
	if !ok {
		return addr
	}
	return net.JoinHostPort(ra.IP.String(), port)
}

// JoinConfig controls how Join binds and advertises one rank's mesh
// listener. The zero value suits most deployments: bind every interface on
// an ephemeral port and advertise the address this host used to reach the
// rendezvous.
type JoinConfig struct {
	// Listen is the mesh listener's bind address ("host:port"; empty means
	// ":0" — every interface, ephemeral port). Bind a specific interface on
	// a multi-homed host to pin mesh traffic to one network.
	Listen string
	// Advertise is the address published to peers through the rendezvous
	// ("host:port"). Empty derives a routable one: a listener bound to a
	// concrete IP advertises it; otherwise the IP of this host's route to
	// the rendezvous is used, and if even that is unspecified the rendezvous
	// server substitutes the source address it observed. Set it explicitly
	// only when peers must dial through an address this host cannot see
	// (NAT, port forwarding).
	Advertise string
	// DialTimeout bounds every connection attempt this Join makes — the
	// rendezvous and each mesh peer — and the total time Join keeps
	// retrying a rendezvous that is not answering yet (0 = 30s). Workers
	// may start before the rendezvous: Join redials with exponential
	// backoff and jitter until the budget runs out, so launch order does
	// not matter within it.
	DialTimeout time.Duration
	// HeartbeatInterval is how often a write-idle peer connection carries a
	// PING proving this rank alive (0 = 2s; negative disables sending
	// pings — peers with detection on will then declare this rank dead
	// during long silences).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay completely silent — no
	// data, PING or PONG — before its connection is declared dead and the
	// failure handler fires a RankFailure (0 = 15s; negative disables
	// detection, restoring block-forever reads). A hung-but-not-exited rank
	// never closes its sockets; this timeout is what surfaces it. Must
	// exceed the interval, ideally by several multiples.
	HeartbeatTimeout time.Duration
}

// dialBudget returns the effective connection-attempt budget.
func (c JoinConfig) dialBudget() time.Duration {
	if c.DialTimeout == 0 {
		return dialTimeout
	}
	return c.DialTimeout
}

// heartbeats returns the effective (interval, timeout) pair; a non-positive
// member means that half is disabled.
func (c JoinConfig) heartbeats() (time.Duration, time.Duration) {
	interval, timeout := c.HeartbeatInterval, c.HeartbeatTimeout
	if interval == 0 {
		interval = defaultHeartbeatInterval
	}
	if timeout == 0 {
		timeout = defaultHeartbeatTimeout
	}
	return interval, timeout
}

// Connect builds rank self's endpoint of a p-rank job with the default
// JoinConfig: register a routable listen address with the rendezvous at rdv,
// receive the address table, and wire one connection per peer (dial lower
// ranks, accept higher ones).
func Connect(rdv string, self, p int) (*Endpoint, error) {
	return Join(rdv, self, p, JoinConfig{})
}

// Join is Connect with explicit bind/advertise control — the entry point of
// a multi-host worker (`cmd/elba -transport tcp -join host:port -rank R`).
func Join(rdv string, self, p int, cfg JoinConfig) (*Endpoint, error) {
	if self < 0 || self >= p {
		return nil, fmt.Errorf("tcp: rank %d out of range [0,%d)", self, p)
	}
	dial := cfg.dialBudget()
	hbInterval, hbTimeout := cfg.heartbeats()
	if hbInterval > 0 && hbTimeout > 0 && hbTimeout <= hbInterval {
		return nil, fmt.Errorf("tcp: heartbeat timeout %v must exceed the interval %v", hbTimeout, hbInterval)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = ":0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", listen, err)
	}
	addrs, err := rendezvous(rdv, self, p, cfg.Advertise, ln, dial)
	if err != nil {
		ln.Close()
		return nil, err
	}
	e := &Endpoint{
		self:       self,
		size:       p,
		box:        transport.NewMailbox(),
		peers:      make([]*peerConn, p),
		hbInterval: hbInterval,
		hbTimeout:  hbTimeout,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	// Accept the p-1-self higher ranks; each identifies itself with a
	// uvarint handshake.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < p-1-self; n++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d mesh accept: %w", self, err)
				return
			}
			conn.SetDeadline(time.Now().Add(dial))
			// Read the handshake unbuffered: a buffered reader could swallow
			// the first bytes of the frames the dialer sends right after it.
			peer, err := binary.ReadUvarint(byteReader{conn})
			if err != nil || int(peer) <= self || int(peer) >= p || e.peers[peer] != nil {
				conn.Close()
				errs <- fmt.Errorf("tcp: rank %d mesh handshake from peer %d failed: %v", self, peer, err)
				return
			}
			conn.SetDeadline(time.Time{})
			e.peers[peer] = &peerConn{nc: conn, done: make(chan struct{})}
		}
	}()
	// Dial the lower ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for peer := 0; peer < self; peer++ {
			conn, err := net.DialTimeout("tcp", addrs[peer], dial)
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d dial rank %d: %w", self, peer, err)
				return
			}
			var hs [binary.MaxVarintLen64]byte
			if _, err := conn.Write(hs[:binary.PutUvarint(hs[:], uint64(self))]); err != nil {
				conn.Close()
				errs <- fmt.Errorf("tcp: rank %d handshake to rank %d: %w", self, peer, err)
				return
			}
			e.peers[peer] = &peerConn{nc: conn, done: make(chan struct{})}
		}
	}()
	wg.Wait()
	ln.Close()
	select {
	case err := <-errs:
		for _, pc := range e.peers {
			if pc != nil {
				pc.nc.Close()
			}
		}
		return nil, err
	default:
	}
	for peer, pc := range e.peers {
		if pc != nil {
			go e.reader(peer, pc)
		}
	}
	if e.hbInterval > 0 {
		e.hbStop = make(chan struct{})
		go e.heartbeat()
	}
	return e, nil
}

// rendezvous registers this rank's advertised address and returns the full
// address table. An empty advertise derives one from the mesh listener and
// the route to the rendezvous.
func rendezvous(rdv string, self, p int, advertise string, ln net.Listener, dial time.Duration) ([]string, error) {
	conn, err := dialRetry(rdv, dial)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial rendezvous %s: %w", rdv, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(dial))
	if advertise == "" {
		advertise = advertisedAddr(conn, ln)
	}
	bw := bufio.NewWriter(conn)
	var hs [binary.MaxVarintLen64]byte
	bw.Write(hs[:binary.PutUvarint(hs[:], uint64(self))])
	writeString(bw, advertise)
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("tcp: rendezvous register: %w", err)
	}
	br := bufio.NewReader(conn)
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i], err = readString(br)
		if err != nil {
			return nil, fmt.Errorf("tcp: rendezvous table: %w", err)
		}
	}
	return addrs, nil
}

// dialRetry dials addr until it answers or the timeout budget is spent,
// backing off exponentially with jitter between attempts. Workers routinely
// start before the rendezvous is listening — a supervised relaunch even
// guarantees it, racing fresh workers against a fresh rendezvous — so a
// refused connection inside the budget is a bootstrap-order race, not an
// error.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 50 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if backoff < 2*time.Second {
			backoff *= 2
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, err
		}
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
	}
}

// advertisedAddr derives the address peers should dial: a listener bound to
// a concrete IP advertises it; otherwise the IP this host used to reach the
// rendezvous (loopback for a local bootstrap, the outbound interface for a
// remote one) joined with the listener's port. If even the route IP is
// unspecified the host is left empty for the rendezvous server to rewrite.
func advertisedAddr(rdvConn net.Conn, ln net.Listener) string {
	la, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		return ln.Addr().String()
	}
	port := strconv.Itoa(la.Port)
	if len(la.IP) > 0 && !la.IP.IsUnspecified() {
		return net.JoinHostPort(la.IP.String(), port)
	}
	if ra, ok := rdvConn.LocalAddr().(*net.TCPAddr); ok && len(ra.IP) > 0 && !ra.IP.IsUnspecified() {
		return net.JoinHostPort(ra.IP.String(), port)
	}
	return net.JoinHostPort("", port)
}

// NewLocal wires a complete p-rank loopback mesh inside one process: a
// throwaway rendezvous plus p Joins. It exercises the full socket path —
// frames, readers, BYE/ABORT — and is what the conformance and equivalence
// suites run; close the endpoints (or the owning mpi.World) when done.
func NewLocal(p int) ([]transport.Transport, error) {
	hosts := make([]string, p)
	for i := range hosts {
		hosts[i] = "127.0.0.1"
	}
	return NewLocalHosts(hosts)
}

// NewLocalHosts wires a len(hosts)-rank mesh inside one process where rank
// i's listener binds hosts[i] on an ephemeral port — distinct loopback
// interfaces (127.0.0.1, 127.0.0.2, …) simulate a multi-host deployment, so
// the equivalence and fault-injection suites can exercise cross-"host"
// routing and advertise derivation without real machines.
func NewLocalHosts(hosts []string) ([]transport.Transport, error) {
	p := len(hosts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tcp: rendezvous listen: %w", err)
	}
	go ServeRendezvous(ln, p)
	eps := make([]transport.Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := Join(ln.Addr().String(), r, p,
				JoinConfig{Listen: net.JoinHostPort(hosts[r], "0")})
			if err != nil {
				errs[r] = err
				return
			}
			eps[r] = ep
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.Abort(-1, "mesh setup failed")
				}
			}
			return nil, err
		}
	}
	return eps, nil
}

func writeString(bw *bufio.Writer, s string) {
	var b [binary.MaxVarintLen64]byte
	bw.Write(b[:binary.PutUvarint(b[:], uint64(len(s)))])
	bw.WriteString(s)
}

// byteReader adapts a net.Conn for binary.ReadUvarint without buffering
// ahead.
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var p [1]byte
	_, err := io.ReadFull(b.r, p[:])
	return p[0], err
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string too long (%d)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
