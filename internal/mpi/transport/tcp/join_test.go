package tcp

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi/transport"
)

// startRendezvous serves a p-rank bootstrap on loopback and returns its
// address.
func startRendezvous(t *testing.T, p int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeRendezvous(ln, p) }()
	t.Cleanup(func() {
		if err := <-done; err != nil {
			t.Errorf("rendezvous: %v", err)
		}
	})
	return ln.Addr().String()
}

// closeAll closes endpoints concurrently, like World.Close (the BYE drain of
// each waits for its peers').
func closeAll(t *testing.T, eps []transport.Transport) {
	t.Helper()
	var wg sync.WaitGroup
	for _, ep := range eps {
		if ep == nil {
			continue
		}
		wg.Add(1)
		go func(ep transport.Transport) { defer wg.Done(); ep.Close() }(ep)
	}
	wg.Wait()
}

// exchangeAllPairs sends one tagged message per ordered rank pair and
// receives them all — the mesh works iff every connection does.
func exchangeAllPairs(t *testing.T, eps []transport.Transport) {
	t.Helper()
	p := len(eps)
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			payload := []byte{byte(src), byte(dst)}
			if err := eps[src].Send(dst, transport.Message{Src: src, Tag: int64(10*src + dst), Payload: payload}); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			m := take(t, eps[dst], src, int64(10*src+dst))
			if m.Src != src || m.Payload[0] != byte(src) || m.Payload[1] != byte(dst) {
				t.Fatalf("message %d->%d corrupted: %+v", src, dst, m)
			}
		}
	}
}

// secondLoopbackOrSkip skips the test on hosts without a dialable second
// loopback interface (127.0.0.2 works out of the box on Linux).
func secondLoopbackOrSkip(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.2:0")
	if err != nil {
		t.Skipf("second loopback interface unavailable: %v", err)
	}
	ln.Close()
}

// TestJoinTwoHostMesh wires a 4-rank mesh across two distinct loopback
// interfaces — ranks 0,1 on 127.0.0.1 and ranks 2,3 on 127.0.0.2 — the
// in-test stand-in for two machines. Every rank must learn a routable (here:
// interface-specific) address for every peer and deliver on all pairs.
func TestJoinTwoHostMesh(t *testing.T) {
	secondLoopbackOrSkip(t)
	hosts := []string{"127.0.0.1", "127.0.0.1", "127.0.0.2", "127.0.0.2"}
	eps, err := NewLocalHosts(hosts)
	if err != nil {
		t.Fatalf("NewLocalHosts: %v", err)
	}
	t.Cleanup(func() { closeAll(t, eps) })
	for i, ep := range eps {
		if ep.Self() != i || ep.Size() != len(hosts) {
			t.Fatalf("endpoint %d misconfigured: self=%d size=%d", i, ep.Self(), ep.Size())
		}
	}
	exchangeAllPairs(t, eps)
}

// TestJoinUnspecifiedListenAddress joins ranks that bind every interface
// (":0") and advertise no concrete host: each derives its advertised host
// from its route to the rendezvous, falling back to the server-side rewrite
// from the registration's source address. The mesh must still wire and
// deliver.
func TestJoinUnspecifiedListenAddress(t *testing.T) {
	const p = 3
	rdv := startRendezvous(t, p)
	eps := make([]transport.Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := Join(rdv, r, p, JoinConfig{Listen: ":0"})
			if err == nil {
				eps[r] = ep
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	t.Cleanup(func() { closeAll(t, eps) })
	exchangeAllPairs(t, eps)
}

// TestJoinRejectsBadRank pins the argument validation of the join path.
func TestJoinRejectsBadRank(t *testing.T) {
	if _, err := Join("127.0.0.1:1", -1, 2, JoinConfig{}); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := Join("127.0.0.1:1", 2, 2, JoinConfig{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// TestRewriteUnspecified pins the server-side advertise rewrite: a
// registration with an unspecified or empty host takes the host its
// connection actually came from; concrete hosts pass through untouched.
func TestRewriteUnspecified(t *testing.T) {
	from := &net.TCPAddr{IP: net.ParseIP("127.0.0.5"), Port: 33000}
	cases := []struct{ in, want string }{
		{":9000", "127.0.0.5:9000"},
		{"0.0.0.0:9000", "127.0.0.5:9000"},
		{"[::]:9000", "127.0.0.5:9000"},
		{"127.0.0.2:9000", "127.0.0.2:9000"},
		{"example.com:9000", "example.com:9000"},
	}
	for _, c := range cases {
		if got := rewriteUnspecified(c.in, from); got != c.want {
			t.Errorf("rewriteUnspecified(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestReaderFailureIsRankAttributed pins the typed failure contract: when a
// peer's connection dies abruptly (no BYE handshake, as a killed process
// would), the surviving side's failure handler receives a
// *transport.RankFailure naming that peer.
func TestReaderFailureIsRankAttributed(t *testing.T) {
	const p = 2
	rdv := startRendezvous(t, p)
	eps := make([]*Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = Join(rdv, r, p, JoinConfig{Listen: "127.0.0.1:0"})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	fails := make(chan error, 1)
	eps[0].SetFailureHandler(func(err error) {
		select {
		case fails <- err:
		default:
		}
	})
	// Abrupt death of rank 1: sever its side of every connection directly.
	for _, pc := range eps[1].peers {
		if pc != nil {
			pc.nc.Close()
		}
	}
	err := <-fails
	var rf *transport.RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("failure is not rank-attributed: %v", err)
	}
	if rf.Rank != 1 {
		t.Fatalf("failure names rank %d, want 1: %v", rf.Rank, err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("failure text does not name the dead rank: %v", err)
	}
	eps[0].Close()
	eps[1].Close()
}
