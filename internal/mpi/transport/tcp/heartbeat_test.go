package tcp

// Failure-detection hardening: a hung rank (process stopped, host
// unreachable) never closes its sockets, so only heartbeats can surface it;
// and workers that start before the rendezvous must retry instead of dying
// to a refused connection.

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
)

// joinPair wires a 2-rank loopback mesh with the given config on both sides.
func joinPair(t *testing.T, cfg JoinConfig) []*Endpoint {
	t.Helper()
	const p = 2
	rdv := startRendezvous(t, p)
	eps := make([]*Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := cfg
			c.Listen = "127.0.0.1:0"
			eps[r], errs[r] = Join(rdv, r, p, c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	return eps
}

// TestHeartbeatSurfacesHungPeer registers a fake rank 1 that completes the
// rendezvous and the mesh handshake, then goes silent forever without
// closing its connection — exactly what a SIGSTOPped process or an
// unreachable host looks like. Rank 0's failure handler must receive a
// RankFailure naming rank 1 and missed heartbeats; a plain blocking read
// would hang here forever.
func TestHeartbeatSurfacesHungPeer(t *testing.T) {
	const p = 2
	rdv := startRendezvous(t, p)
	cfg := JoinConfig{
		Listen:            "127.0.0.1:0",
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	}
	var (
		ep      *Endpoint
		joinErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep, joinErr = Join(rdv, 0, p, cfg)
	}()

	// The fake rank 1: a real rendezvous registration (so rank 0's table is
	// complete) and a real mesh handshake, then nothing, ever.
	dummyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dummyLn.Close()
	addrs, err := rendezvous(rdv, 1, p, dummyLn.Addr().String(), dummyLn, time.Second)
	if err != nil {
		t.Fatalf("fake rank rendezvous: %v", err)
	}
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("fake rank dial: %v", err)
	}
	defer conn.Close()
	var hs [binary.MaxVarintLen64]byte
	if _, err := conn.Write(hs[:binary.PutUvarint(hs[:], 1)]); err != nil {
		t.Fatalf("fake rank handshake: %v", err)
	}

	wg.Wait()
	if joinErr != nil {
		t.Fatalf("rank 0 join: %v", joinErr)
	}
	defer ep.Close()
	fails := make(chan error, 1)
	ep.SetFailureHandler(func(err error) {
		select {
		case fails <- err:
		default:
		}
	})
	select {
	case err := <-fails:
		var rf *transport.RankFailure
		if !errors.As(err, &rf) || rf.Rank != 1 {
			t.Fatalf("hung peer not attributed to rank 1: %v", err)
		}
		if !strings.Contains(err.Error(), "missed heartbeats") {
			t.Fatalf("hung peer not reported as missed heartbeats: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung peer never surfaced as a rank failure")
	}
}

// TestHeartbeatKeepsQuietMeshAlive holds a mesh idle for many multiples of
// the heartbeat timeout: the idle-connection pings must keep both readers
// satisfied, so no failure fires and the mesh still delivers afterwards.
func TestHeartbeatKeepsQuietMeshAlive(t *testing.T) {
	eps := joinPair(t, JoinConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
	})
	fails := make(chan error, 2)
	for _, ep := range eps {
		ep.SetFailureHandler(func(err error) { fails <- err })
	}
	time.Sleep(600 * time.Millisecond) // five timeouts of application silence
	select {
	case err := <-fails:
		t.Fatalf("idle-but-healthy mesh failed: %v", err)
	default:
	}
	if err := eps[0].Send(1, transport.Message{Src: 0, Tag: 7, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m := take(t, eps[1], 0, 7)
	if string(m.Payload) != "hi" {
		t.Fatalf("payload corrupted after idle period: %q", m.Payload)
	}
	closeAll(t, []transport.Transport{eps[0], eps[1]})
}

// TestJoinRetriesRendezvous starts the workers first and the rendezvous
// late — the supervised-relaunch bootstrap order — and requires Join to
// redial until it is up instead of dying to the first refused connection.
func TestJoinRetriesRendezvous(t *testing.T) {
	// Reserve an address, then free it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rdv := ln.Addr().String()
	ln.Close()

	const p = 2
	eps := make([]transport.Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = Join(rdv, r, p, JoinConfig{
				Listen:      "127.0.0.1:0",
				DialTimeout: 10 * time.Second,
			})
		}(r)
	}
	time.Sleep(300 * time.Millisecond) // let both workers fail a few dials
	ln, err = net.Listen("tcp", rdv)
	if err != nil {
		t.Fatalf("rebind rendezvous address: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeRendezvous(ln, p) }()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join with late rendezvous: %v", r, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	exchangeAllPairs(t, eps)
	closeAll(t, eps)
}

// TestJoinRejectsBadHeartbeatConfig pins the interval/timeout sanity check.
func TestJoinRejectsBadHeartbeatConfig(t *testing.T) {
	_, err := Join("127.0.0.1:1", 0, 2, JoinConfig{
		HeartbeatInterval: time.Second,
		HeartbeatTimeout:  time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "heartbeat timeout") {
		t.Fatalf("timeout ≤ interval accepted: %v", err)
	}
}

// TestAbortSurvivesDeadConnection aborts an endpoint whose connection is
// already closed (SetWriteDeadline errors on it): Abort must skip the peer
// without blocking or panicking.
func TestAbortSurvivesDeadConnection(t *testing.T) {
	eps := joinPair(t, JoinConfig{HeartbeatInterval: -1, HeartbeatTimeout: -1})
	eps[0].peers[1].nc.Close()
	doneAbort := make(chan struct{})
	go func() { eps[0].Abort(-1, "test abort over a dead connection"); close(doneAbort) }()
	select {
	case <-doneAbort:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort blocked on a dead connection")
	}
	eps[1].Close()
}
