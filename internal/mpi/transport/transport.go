// Package transport defines the byte-message seam beneath the mpi runtime:
// point-to-point delivery of tagged byte payloads between the P ranks of one
// job, with src/tag matching, plus endpoint lifecycle and failure
// propagation.
//
// Everything above this seam — collectives, the nonblocking layer, traffic
// counters, deadlock watchdogs, cancellation, observability — lives in
// package mpi and is transport-agnostic. Everything below it is "how bytes
// move": the in-process reference implementation in this file delivers
// through shared mailboxes; transport/tcp delivers over sockets between OS
// processes. A Transport never interprets payloads (the typed wire format is
// package mpi/wire's business) and never counts traffic (package mpi's
// business), so every implementation that satisfies the Transport contract
// yields bit-identical assemblies and equal byte/message counters by
// construction. The cross-transport conformance suite in package mpi
// (conformance_test.go) checks exactly that.
//
// One Transport value is one rank's endpoint. In-process worlds hold P
// endpoints sharing a hub; a multi-process world holds one endpoint per OS
// process, all wired to the same job by an out-of-band rendezvous.
package transport

import (
	"fmt"
	"sync"
)

// Message is one point-to-point transmission: an opaque payload from world
// rank Src under a matching tag. The payload is immutable by convention —
// senders must not modify it after Send, receivers must not modify it after
// Match (in-process delivery passes the same backing array to the receiver).
type Message struct {
	Src     int
	Tag     int64
	Payload []byte
}

// Transport is one rank's endpoint of a P-rank job.
//
// Send must be buffered (never block on the receiver making progress) and
// must preserve per-(Src, Tag) FIFO order. Match implements MPI-style
// matching: it removes and returns the oldest queued message from src with
// tag; when none is queued it returns a notify channel that is closed on the
// next local delivery, so a caller can scan-then-wait without missing a
// message (grab the channel, re-Match when it closes). Multiple goroutines
// of the owning rank may Match concurrently.
//
// Lifecycle: SetFailureHandler must be called (if at all) before the first
// Send or Match; the handler fires at most once, when the endpoint breaks —
// a peer aborted, a connection died. Transports that can attribute the
// failure to a specific peer deliver a *RankFailure naming the dead rank;
// messages already delivered before the failure stay matchable, so a
// receiver can drain what arrived before deciding how to unwind. Abort tears
// the endpoint down immediately and tells live peers to fail (best effort);
// Close drains politely and releases resources. Both are idempotent; the
// in-process transport has nothing to tear down, so for it they are no-ops.
type Transport interface {
	// Self returns the world rank this endpoint serves.
	Self() int
	// Size returns the job's rank count P.
	Size() int
	// Send queues m for rank dst. m.Src must be Self.
	Send(dst int, m Message) error
	// Match removes and returns the oldest message matching (src, tag).
	// When no match is queued it returns (zero, notify, false); notify is
	// closed on the next delivery to this endpoint.
	Match(src int, tag int64) (Message, <-chan struct{}, bool)
	// SetFailureHandler registers fn to run (once) when the endpoint fails.
	SetFailureHandler(fn func(error))
	// Abort tears the endpoint down without draining, propagating reason to
	// peers best-effort. origin is the world rank the failure is attributed
	// to, or -1 when this endpoint's own rank is the origin. A cascading
	// abort (a rank tearing down because it learned some other rank died)
	// passes the original rank, so peers racing both signals attribute the
	// failure to the rank that actually died, never to the messenger.
	Abort(origin int, reason string)
	// Close releases the endpoint after a polite drain.
	Close() error
}

// RankFailure is the error a transport delivers to its failure handler when
// a specific peer rank is lost: its process died, its connection broke, or it
// aborted the job. Rank is the world rank of the dead peer; Err carries the
// transport-level cause. Callers above the seam (package mpi, the pipeline
// engine) unwrap it with errors.As to name the failed rank in diagnostics and
// to decide restartability.
type RankFailure struct {
	Rank int
	Err  error
}

func (e *RankFailure) Error() string { return fmt.Sprintf("rank %d failed: %v", e.Rank, e.Err) }

// Unwrap exposes the transport-level cause to errors.Is/As chains.
func (e *RankFailure) Unwrap() error { return e.Err }

// QueueInstrumented is optionally implemented by transports whose local
// delivery queue can report depth changes (package mpi wires the hook to the
// mpi.mailbox_depth gauge). The hook must be set before the first delivery.
type QueueInstrumented interface {
	SetQueueDepthHook(fn func(delta int64))
}

// PendingDumper is optionally implemented by transports that can describe
// their queued-but-unmatched messages; package mpi includes the dump in
// deadlock-watchdog panics.
type PendingDumper interface {
	PendingDump() string
}

// Mailbox is the matching queue shared by the built-in transports: any
// goroutine may Push; the owning rank's goroutines (including posted
// nonblocking-receive matchers) Take concurrently. Wakeups must reach every
// waiter, so Push closes the current generation channel (a broadcast) and
// each waiter re-scans whenever the generation it grabbed under the lock is
// closed — a single-slot signal channel would wake one arbitrary waiter and
// strand the message's actual addressee until its watchdog fired.
type Mailbox struct {
	mu    sync.Mutex
	queue []Message
	gen   chan struct{} // closed and replaced on every push
	depth func(int64)   // optional queue-depth hook (mpi.mailbox_depth)
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox {
	return &Mailbox{gen: make(chan struct{})}
}

// SetDepthHook registers fn to observe queue-depth deltas. Call before the
// first Push.
func (m *Mailbox) SetDepthHook(fn func(delta int64)) { m.depth = fn }

// Push appends msg and wakes every waiter.
func (m *Mailbox) Push(msg Message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	if m.depth != nil {
		m.depth(1)
	}
	close(m.gen)
	m.gen = make(chan struct{})
	m.mu.Unlock()
}

// Take removes and returns the first message matching (src, tag), preserving
// FIFO order among matching messages. When no match is queued it returns the
// current generation channel, which is closed by the next Push — grabbing it
// under the same lock as the scan means a waiter can never miss the push
// that delivers its message.
func (m *Mailbox) Take(src int, tag int64) (Message, <-chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if msg.Src == src && msg.Tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			if m.depth != nil {
				m.depth(-1)
			}
			return msg, nil, true
		}
	}
	return Message{}, m.gen, false
}

// PendingDump formats queued messages for deadlock diagnostics.
func (m *Mailbox) PendingDump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ""
	for i, msg := range m.queue {
		if i == 8 {
			s += fmt.Sprintf(" …(%d more)", len(m.queue)-8)
			break
		}
		s += fmt.Sprintf(" (src=%d tag=%d len=%d)", msg.Src, msg.Tag, len(msg.Payload))
	}
	return s
}

// inprocHub is the shared state of an in-process job: one mailbox per rank.
type inprocHub struct {
	boxes []*Mailbox
}

// inproc is one rank's endpoint of an in-process job — the reference
// Transport implementation, extracted from the original simulated-world
// mailboxes. Send is a queue append, so "network" delivery is immediate and
// buffered; Abort/Close are no-ops because rank goroutines share the
// process and unwind through the mpi world's own cancellation.
type inproc struct {
	hub  *inprocHub
	self int
}

// NewInproc builds the endpoints of a p-rank in-process job, index i serving
// rank i. All endpoints share one delivery hub.
func NewInproc(p int) []Transport {
	if p <= 0 {
		panic(fmt.Sprintf("transport: job size %d must be positive", p))
	}
	hub := &inprocHub{boxes: make([]*Mailbox, p)}
	for i := range hub.boxes {
		hub.boxes[i] = NewMailbox()
	}
	eps := make([]Transport, p)
	for i := range eps {
		eps[i] = &inproc{hub: hub, self: i}
	}
	return eps
}

func (t *inproc) Self() int { return t.self }
func (t *inproc) Size() int { return len(t.hub.boxes) }

func (t *inproc) Send(dst int, m Message) error {
	if dst < 0 || dst >= len(t.hub.boxes) {
		return fmt.Errorf("transport: dst rank %d out of range [0,%d)", dst, len(t.hub.boxes))
	}
	t.hub.boxes[dst].Push(m)
	return nil
}

func (t *inproc) Match(src int, tag int64) (Message, <-chan struct{}, bool) {
	return t.hub.boxes[t.self].Take(src, tag)
}

func (t *inproc) SetFailureHandler(func(error)) {}
func (t *inproc) Abort(int, string)             {}
func (t *inproc) Close() error                  { return nil }

func (t *inproc) SetQueueDepthHook(fn func(int64)) {
	t.hub.boxes[t.self].SetDepthHook(fn)
}

func (t *inproc) PendingDump() string {
	return t.hub.boxes[t.self].PendingDump()
}
