package transport

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMailboxFIFOPerSrcTag(t *testing.T) {
	m := NewMailbox()
	for i := 0; i < 5; i++ {
		m.Push(Message{Src: 1, Tag: 7, Payload: []byte{byte(i)}})
		m.Push(Message{Src: 2, Tag: 7, Payload: []byte{byte(100 + i)}})
	}
	for i := 0; i < 5; i++ {
		got, _, ok := m.Take(1, 7)
		if !ok || got.Payload[0] != byte(i) {
			t.Fatalf("src 1 take %d: ok=%v payload=%v", i, ok, got.Payload)
		}
	}
	for i := 0; i < 5; i++ {
		got, _, ok := m.Take(2, 7)
		if !ok || got.Payload[0] != byte(100+i) {
			t.Fatalf("src 2 take %d: ok=%v payload=%v", i, ok, got.Payload)
		}
	}
	if _, _, ok := m.Take(1, 7); ok {
		t.Fatal("take from drained mailbox succeeded")
	}
}

func TestMailboxTagSelectivity(t *testing.T) {
	m := NewMailbox()
	m.Push(Message{Src: 0, Tag: 1})
	m.Push(Message{Src: 0, Tag: 2, Payload: []byte("two")})
	got, _, ok := m.Take(0, 2)
	if !ok || string(got.Payload) != "two" {
		t.Fatalf("tag-selective take: ok=%v payload=%q", ok, got.Payload)
	}
	if _, _, ok := m.Take(0, 2); ok {
		t.Fatal("tag 2 taken twice")
	}
	if _, _, ok := m.Take(0, 1); !ok {
		t.Fatal("tag 1 lost")
	}
}

// TestMailboxNotifyBroadcast pins the scan-then-wait contract: every waiter
// holding the generation channel from a failed Take is woken by the next
// Push, not just one of them.
func TestMailboxNotifyBroadcast(t *testing.T) {
	m := NewMailbox()
	const waiters = 8
	var wg sync.WaitGroup
	woke := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if _, notify, ok := m.Take(0, int64(i)); ok {
					woke <- i
					return
				} else {
					<-notify
				}
			}
		}(i)
	}
	// Deliver one message per waiter's tag; each Push must wake everyone so
	// the right waiter can claim its message.
	for i := 0; i < waiters; i++ {
		m.Push(Message{Src: 0, Tag: int64(i)})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters stranded: Push wakeup is not a broadcast")
	}
}

func TestMailboxNotifyGrabbedUnderScanLock(t *testing.T) {
	m := NewMailbox()
	_, notify, ok := m.Take(3, 9)
	if ok {
		t.Fatal("empty mailbox returned a message")
	}
	m.Push(Message{Src: 3, Tag: 9})
	select {
	case <-notify:
	case <-time.After(time.Second):
		t.Fatal("notify channel from failed Take not closed by Push")
	}
	if _, _, ok := m.Take(3, 9); !ok {
		t.Fatal("message missing after wakeup")
	}
}

func TestMailboxDepthHook(t *testing.T) {
	m := NewMailbox()
	var depth int64
	m.SetDepthHook(func(d int64) { depth += d })
	m.Push(Message{Src: 0, Tag: 0})
	m.Push(Message{Src: 0, Tag: 0})
	if depth != 2 {
		t.Fatalf("depth after 2 pushes = %d", depth)
	}
	m.Take(0, 0)
	if depth != 1 {
		t.Fatalf("depth after take = %d", depth)
	}
}

func TestInprocEndpoints(t *testing.T) {
	const p = 3
	eps := NewInproc(p)
	if len(eps) != p {
		t.Fatalf("got %d endpoints", len(eps))
	}
	for i, ep := range eps {
		if ep.Self() != i || ep.Size() != p {
			t.Fatalf("endpoint %d: self=%d size=%d", i, ep.Self(), ep.Size())
		}
	}
	if err := eps[0].Send(2, Message{Src: 0, Tag: 5, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	got, _, ok := eps[2].Match(0, 5)
	if !ok || string(got.Payload) != "x" {
		t.Fatalf("cross-endpoint delivery: ok=%v payload=%q", ok, got.Payload)
	}
	if err := eps[1].Send(p, Message{Src: 1}); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	// Lifecycle no-ops must be safe in any order.
	eps[0].SetFailureHandler(func(error) { t.Error("inproc endpoint reported a failure") })
	eps[0].Abort(-1, "nothing to tear down")
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPendingDumpNamesMessages(t *testing.T) {
	m := NewMailbox()
	m.Push(Message{Src: 4, Tag: 17, Payload: make([]byte, 3)})
	s := m.PendingDump()
	if !strings.Contains(s, "src=4") || !strings.Contains(s, "tag=17") || !strings.Contains(s, "len=3") {
		t.Fatalf("dump %q missing message coordinates", s)
	}
	for i := 0; i < 20; i++ {
		m.Push(Message{Src: i, Tag: 0})
	}
	if s := m.PendingDump(); !strings.Contains(s, "more") {
		t.Fatalf("dump of 21 messages not truncated: %q", s)
	}
}
