package mpi

// Nonblocking point-to-point operations and the asynchronous collectives
// built on them. They let a rank overlap communication with local
// computation — the mechanism diBELLA uses to hide its SUMMA broadcasts and
// sequence exchanges behind the local multiply and walk.
//
// Semantics in this simulator:
//
//   - Isend copies its payload and delivers immediately (buffered send
//     semantics, like the blocking Send), so the returned request is already
//     complete. Its traffic is counted into the BytesAsync/MsgsAsync overlap
//     counters at post time — which keeps per-stage traffic attribution
//     identical between blocking and nonblocking runs of the same program.
//   - Irecv posts a background matcher that drains the message into the
//     request as soon as it arrives, so by the time the rank calls Wait the
//     transfer has usually already completed — the wait time is the exposed
//     (non-overlapped) communication.
//   - Every request must be waited exactly once. A second Wait panics (the
//     MPI "request reuse" error made loud), and dropping a request without
//     waiting leaks its matcher goroutine for the life of the world.
//   - The deadlock watchdog of a posted receive arms only when Wait starts
//     blocking: a receive posted far ahead of its matching send (the whole
//     point of the overlap schedule) is never declared deadlocked while the
//     rank is still computing — only a rank actually stuck in Wait panics.
//   - Tags: the async collectives consume one communicator sequence number
//     each, exactly like their blocking counterparts, so SPMD programs may
//     freely interleave posted operations with later collectives. Hand-rolled
//     nonblocking exchanges reserve a tag with ReserveTag.
//
// Panics raised inside a background matcher (e.g. the deadlock watchdog) are
// captured and re-raised on the rank goroutine at Wait, where Run's recover
// turns them into a RankError.

import (
	"sync"
	"sync/atomic"

	"repro/internal/mpi/wire"
	"repro/internal/obs"
)

// Request is the common handle of all nonblocking operations: Waitall and
// misuse checking operate through it; the typed result accessors live on the
// concrete request types.
type Request interface {
	// Wait blocks until the operation completes. It must be called exactly
	// once; a second call panics.
	Wait()
	// Done reports completion without blocking or consuming the request.
	Done() bool
}

// Waitall waits every request, in order (MPI_Waitall).
func Waitall(reqs ...Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// ReserveTag consumes one communicator sequence number and returns it as a
// tag. SPMD programs calling it in the same order on every rank obtain
// matching tags without coordination — the hook for hand-rolled nonblocking
// exchanges (post Irecvs, pack, Isend) like the k-mer exchange.
func ReserveTag(c *Comm) int64 {
	return collTag(c)
}

// asyncView returns a copy of the communicator whose sends count into the
// overlap counters. The copy shares world/context/group (so it matches
// messages with the original) but must never touch the sequence counter:
// background goroutines use explicit tags only.
func (c *Comm) asyncView() *Comm {
	v := *c
	v.async = true
	return &v
}

// reqState is the shared completion/misuse machinery of the request types
// backed by a background goroutine. The armed channel defers the matcher's
// deadlock watchdog until Wait actually blocks.
type reqState struct {
	done     chan struct{}
	armed    chan struct{}
	armOnce  sync.Once
	waited   atomic.Bool
	panicked any // panic value transferred from a background goroutine
	// Optional observability handles (nil when tracing/metrics are off; set
	// via Comm.attachObs at post time): lane records an exposed-wait span
	// when Wait actually blocks, gauge tracks in-flight posted requests.
	lane  *obs.Lane
	gauge *obs.Gauge
}

func newReqState() reqState {
	return reqState{done: make(chan struct{}), armed: make(chan struct{})}
}

// Done reports completion without consuming the request.
func (r *reqState) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// wait arms the watchdog, blocks for completion, enforces single-use, and
// re-raises any panic captured in the background goroutine on the caller's
// goroutine.
func (r *reqState) wait(kind string) {
	if !r.waited.CompareAndSwap(false, true) {
		panic("mpi: " + kind + " request waited twice (requests are single-use)")
	}
	r.armOnce.Do(func() { close(r.armed) })
	if r.lane != nil && !r.Done() {
		// The request is still in flight when Wait starts: this block is the
		// exposed (non-overlapped) communication time.
		st := r.lane.Start()
		<-r.done
		r.lane.Span(0, "mpi", "wait:"+kind, st)
	} else {
		<-r.done
	}
	if r.panicked != nil {
		panic(r.panicked)
	}
}

// background runs fn in a goroutine, capturing its panic for re-raise at
// Wait and closing done when it returns.
func (r *reqState) background(fn func()) {
	r.gauge.Add(1) // nil-safe; mpi.inflight_reqs
	go func() {
		defer close(r.done)
		defer r.gauge.Add(-1)
		defer func() {
			if v := recover(); v != nil {
				r.panicked = v
			}
		}()
		fn()
	}()
}

// SendRequest is the handle of an Isend. The simulator's sends are buffered,
// so it is complete at creation; Wait only enforces the single-use contract.
type SendRequest struct {
	reqState
}

// Wait completes the send request (a no-op beyond misuse checking).
func (r *SendRequest) Wait() { r.wait("send") }

// Isend transmits data to dst under tag without blocking and counts the
// traffic as overlappable. The payload is encoded at post time, so the
// caller keeps ownership of data. The returned request is already complete
// (buffered semantics) but must still be waited exactly once.
func Isend[T any](c *Comm, dst int, tag int64, data []T) *SendRequest {
	frame := wire.Marshal(data)
	c.asyncView().sendRaw(dst, tag, frame, wire.DataLen(frame))
	r := &SendRequest{reqState: newReqState()}
	close(r.done)
	return r
}

// RecvRequest is the handle of an Irecv; Wait returns the received payload.
type RecvRequest[T any] struct {
	reqState
	val []T
}

// Wait blocks until the matching send arrives and returns its payload.
func (r *RecvRequest[T]) Wait() { r.wait("recv") }

// Value returns the received payload; valid only after Wait.
func (r *RecvRequest[T]) Value() []T { return r.val }

// WaitValue combines Wait and Value.
func (r *RecvRequest[T]) WaitValue() []T {
	r.Wait()
	return r.val
}

// Irecv posts a receive for the matching Send/Isend and returns immediately.
// A background matcher drains the message as soon as it arrives, so the
// transfer progresses while the rank computes.
func Irecv[T any](c *Comm, src int, tag int64) *RecvRequest[T] {
	r := &RecvRequest[T]{reqState: newReqState()}
	c.attachObs(&r.reqState)
	r.background(func() {
		r.val = mustUnmarshal[T](c.recvRawArmed(src, tag, r.armed))
	})
	return r
}

// IrecvChunked posts a receive for a buffer sent with SendChunked.
func IrecvChunked[T any](c *Comm, src int, tag int64) *RecvRequest[T] {
	r := &RecvRequest[T]{reqState: newReqState()}
	c.attachObs(&r.reqState)
	r.background(func() {
		n := mustUnmarshalOne[int64](c.recvRawArmed(src, tag, r.armed))
		out := make([]T, 0, n)
		for int64(len(out)) < n {
			out = append(out, mustUnmarshal[T](c.recvRawArmed(src, tag, r.armed))...)
		}
		r.val = out
	})
	return r
}

// BcastRequest is the handle of an IBcast; Wait returns the broadcast data.
type BcastRequest[T any] struct {
	reqState
	val []T
}

// Wait blocks until this rank's part of the broadcast tree (receive from
// parent, forwards to children) has completed and returns the data.
func (r *BcastRequest[T]) Wait() { r.wait("bcast") }

// Value returns the broadcast payload; valid only after Wait.
func (r *BcastRequest[T]) Value() []T { return r.val }

// WaitValue combines Wait and Value.
func (r *BcastRequest[T]) WaitValue() []T {
	r.Wait()
	return r.val
}

// IBcast starts a nonblocking broadcast of root's data (collective: every
// rank of c must post it, in the same program order as any other collective
// on c). The binomial tree — identical to the blocking Bcast, so message and
// byte counters match between modes — runs in the background; several
// IBcasts may be in flight at once, which is how the SUMMA loop prefetches
// round r+1's panels while multiplying round r.
func IBcast[T any](c *Comm, root int, data []T) *BcastRequest[T] {
	tag := collTag(c) // consumed on the caller goroutine, like every collective
	ac := c.asyncView()
	var frame []byte
	if c.rank == root {
		// Encoded on the caller goroutine at post time, so the caller keeps
		// ownership of data while the tree runs in the background.
		frame = wire.Marshal(data)
	}
	r := &BcastRequest[T]{reqState: newReqState()}
	c.attachObs(&r.reqState)
	r.background(func() {
		r.val = mustUnmarshal[T](bcastFrames(ac, root, tag, frame, r.armed))
	})
	return r
}

// AlltoallvRequest is the handle of an IAlltoallv; Wait returns the per-rank
// received slices. The pairwise receives drain in the background from post
// time; Wait itself collects on the calling goroutine, arming each posted
// receive's watchdog only then.
type AlltoallvRequest[T any] struct {
	waited atomic.Bool
	recvs  []*RecvRequest[T] // nil at self index
	out    [][]T
}

// Wait blocks until every pairwise receive has completed.
func (r *AlltoallvRequest[T]) Wait() {
	if !r.waited.CompareAndSwap(false, true) {
		panic("mpi: alltoallv request waited twice (requests are single-use)")
	}
	for src, rr := range r.recvs {
		if rr != nil {
			r.out[src] = rr.WaitValue()
		}
	}
}

// Done reports whether every pairwise receive has completed, without
// blocking or consuming the request.
func (r *AlltoallvRequest[T]) Done() bool {
	for _, rr := range r.recvs {
		if rr != nil && !rr.Done() {
			return false
		}
	}
	return true
}

// Value returns the received per-rank slices; valid only after Wait.
func (r *AlltoallvRequest[T]) Value() [][]T { return r.out }

// WaitValue combines Wait and Value.
func (r *AlltoallvRequest[T]) WaitValue() [][]T {
	r.Wait()
	return r.out
}

// iAlltoallv is the shared body of IAlltoallv and IAlltoallvChunked: post
// all receives first, then send (sends are buffered, so they complete at
// post time); the request finishes when the posted receives drain.
func iAlltoallv[T any](c *Comm, send [][]T, chunked bool) *AlltoallvRequest[T] {
	tag := collTag(c)
	p := c.Size()
	if len(send) != p {
		panic("mpi: IAlltoallv needs one slice per rank")
	}
	r := &AlltoallvRequest[T]{recvs: make([]*RecvRequest[T], p), out: make([][]T, p)}
	// Post receives before packing/sending anything — the classic overlap
	// schedule: remote data can land while this rank is still sending.
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		if chunked {
			r.recvs[src] = IrecvChunked[T](c, src, tag)
		} else {
			r.recvs[src] = Irecv[T](c, src, tag)
		}
	}
	cp := make([]T, len(send[c.rank]))
	copy(cp, send[c.rank])
	r.out[c.rank] = cp
	ac := c.asyncView()
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		if chunked {
			SendChunked(ac, dst, tag, send[dst])
		} else {
			Send(ac, dst, tag, send[dst])
		}
	}
	return r
}

// IAlltoallv starts a nonblocking Alltoallv (collective). All sends complete
// at post time; Wait returns when every pairwise receive has drained. Wire
// shape and counters are identical to the blocking Alltoallv.
func IAlltoallv[T any](c *Comm, send [][]T) *AlltoallvRequest[T] {
	return iAlltoallv(c, send, false)
}

// IAlltoallvChunked is IAlltoallv with every pairwise message honouring
// MaxMessageBytes via the chunked wire protocol — the nonblocking form of
// the paper's read-sequence exchange.
func IAlltoallvChunked[T any](c *Comm, send [][]T) *AlltoallvRequest[T] {
	return iAlltoallv(c, send, true)
}
