package wire

// Round-trip properties of the frame codec: every payload shape the pipeline
// sends must decode to a semantically equal value, and re-encoding the
// decoded value must reproduce the original bytes exactly — the invariant
// that keeps traffic counters equal across transports and processes. The
// fuzz targets push both directions: structured inputs through
// encode→decode→re-encode identity, and arbitrary bytes through the decoder
// without panics.

import (
	"bytes"
	"reflect"
	"testing"
)

// roundTrip asserts Marshal→Unmarshal→Marshal identity for a slice payload.
func roundTrip[T any](t *testing.T, name string, in []T) {
	t.Helper()
	frame := Marshal(in)
	out, err := Unmarshal[T](frame)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", name, err)
	}
	if len(out) != len(in) {
		t.Fatalf("%s: got %d elements, want %d", name, len(out), len(in))
	}
	for i := range in {
		if !equalLoose(reflect.ValueOf(out[i]), reflect.ValueOf(in[i])) {
			t.Fatalf("%s[%d]: got %#v, want %#v", name, i, out[i], in[i])
		}
	}
	again := Marshal(out)
	if !bytes.Equal(frame, again) {
		t.Fatalf("%s: re-encoded frame differs:\n  first  %x\n  second %x", name, frame, again)
	}
}

// equalLoose compares values treating nil and empty slices as equal at any
// nesting depth: the decoder cannot distinguish a sender's nil from an empty
// slice (both are zero-length on the wire), and no caller relies on the
// difference.
func equalLoose(a, b reflect.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !equalLoose(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !equalLoose(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

func TestRoundTripScalars(t *testing.T) {
	roundTrip(t, "int64", []int64{0, 1, -1, 1<<62 - 1, -(1 << 62)})
	roundTrip(t, "int", []int{42, -42, 1 << 40})
	roundTrip(t, "uint64", []uint64{0, ^uint64(0)})
	roundTrip(t, "int32", []int32{-2147483648, 2147483647})
	roundTrip(t, "uint8", []uint8{0, 128, 255})
	roundTrip(t, "bool", []bool{true, false, true})
	roundTrip(t, "float64", []float64{0, 1.5, -2.25e300})
	roundTrip(t, "float32", []float32{0, -1.5, 3.14159})
	roundTrip(t, "string", []string{"", "a", "hello, 世界"})
	roundTrip(t, "empty", []int64{})
	roundTrip(t, "nil", []int64(nil))
}

// The payload shapes the pipeline actually sends: struct triples, nested
// byte slices (read sequences), strings, padded structs.
func TestRoundTripStructShapes(t *testing.T) {
	type triple struct {
		Row, Col int32
		Val      int64
	}
	roundTrip(t, "triple", []triple{{1, 2, 3}, {-4, 5, -6}})

	type padded struct {
		A byte // 7 bytes of padding follow in memory
		B int64
		C byte
	}
	roundTrip(t, "padded", []padded{{1, -2, 3}, {255, 1 << 60, 0}})

	type seqMsg struct {
		ID  int64
		Seq []byte
	}
	roundTrip(t, "nested-bytes", []seqMsg{
		{1, []byte("ACGT")}, {2, nil}, {3, []byte{}}, {4, bytes.Repeat([]byte{7}, 300)},
	})

	type deep struct {
		Name string
		Rows [][]int32
	}
	roundTrip(t, "deep", []deep{
		{"a", [][]int32{{1, 2}, nil, {}}},
		{"", nil},
	})

	type arrayed struct {
		K [4]uint16
		V float64
	}
	roundTrip(t, "array-field", []arrayed{{[4]uint16{1, 2, 3, 4}, 0.5}})
}

// TestPaddedStructDeterminism encodes two memory-distinct but value-equal
// padded structs and requires identical frames: padding bytes must never
// leak into the encoding (they would make counters and checksums
// nondeterministic across processes).
func TestPaddedStructDeterminism(t *testing.T) {
	type padded struct {
		A byte
		B int64
	}
	mk := func() []padded {
		// Heap noise so any padding leak has a chance to differ.
		s := make([]padded, 1)
		s[0] = padded{A: 9, B: -1}
		return s
	}
	f1, f2 := Marshal(mk()), Marshal(mk())
	if !bytes.Equal(f1, f2) {
		t.Fatalf("value-equal padded structs encoded differently:\n  %x\n  %x", f1, f2)
	}
}

// TestDataLenCountsPayloadOnly pins the counter contract: 10 int64s charge
// exactly 80 bytes, whatever the frame header costs.
func TestDataLenCountsPayloadOnly(t *testing.T) {
	frame := Marshal(make([]int64, 10))
	if n := DataLen(frame); n != 80 {
		t.Fatalf("DataLen(10 int64s) = %d, want 80", n)
	}
	if n := DataLen(Marshal([]int64{})); n != 0 {
		t.Fatalf("DataLen(empty) = %d, want 0", n)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	frame := Marshal([]int64{1, 2, 3})
	if _, err := Unmarshal[int32](frame); err == nil {
		t.Fatal("int64 frame decoded as int32 without error")
	}
	type a struct{ X, Y int64 }
	type b struct{ X int64 }
	if _, err := Unmarshal[b](Marshal([]a{{1, 2}})); err == nil {
		t.Fatal("struct frame decoded as narrower struct without error")
	}
	// Same structure under different field names is intentionally accepted:
	// the fingerprint hashes kinds and widths, not names.
	type c struct{ P, Q int64 }
	if _, err := Unmarshal[c](Marshal([]a{{1, 2}})); err != nil {
		t.Fatalf("structurally identical type rejected: %v", err)
	}
}

func TestTruncatedAndGarbageFramesError(t *testing.T) {
	frame := Marshal([]int64{1, 2, 3})
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Unmarshal[int64](frame[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(frame))
		}
	}
	if _, err := Unmarshal[int64]([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err == nil {
		t.Fatal("garbage decoded without error")
	}
	// A huge declared count must error out, not attempt the allocation.
	bad := append([]byte(nil), Marshal([]int64{})[:6]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Unmarshal[int64](bad); err == nil {
		t.Fatal("absurd element count decoded without error")
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	type a struct{ X int64 }
	type b struct{ X int32 }
	if Fingerprint[a]() == Fingerprint[b]() {
		t.Fatal("int64 and int32 structs share a fingerprint")
	}
	if Fingerprint[int64]() == Fingerprint[uint64]() {
		t.Fatal("int64 and uint64 share a fingerprint")
	}
	if Fingerprint[[]byte]() == Fingerprint[string]() {
		t.Fatal("[]byte and string share a fingerprint (different recv types)")
	}
}

// FuzzRoundTripStruct drives a mixed struct payload (fixed ints, string,
// nested bytes, padding) from fuzzed scalars: decode must invert encode and
// re-encoding must be byte-identical.
func FuzzRoundTripStruct(f *testing.F) {
	f.Add(int64(1), uint32(2), "abc", []byte("ACGT"), true, 3.5)
	f.Add(int64(-1), uint32(0), "", []byte{}, false, -0.0)
	f.Add(int64(1<<62), ^uint32(0), "世界", bytes.Repeat([]byte{0xff}, 100), true, 1e-300)
	type msg struct {
		A int64
		B uint32
		S string
		P []byte
		F bool
		X float64
	}
	f.Fuzz(func(t *testing.T, a int64, b uint32, s string, p []byte, fl bool, x float64) {
		in := []msg{{a, b, s, p, fl, x}, {A: -a, B: b ^ 0xffff, S: s + s, P: nil, F: !fl, X: -x}}
		frame := Marshal(in)
		out, err := Unmarshal[msg](frame)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		again := Marshal(out)
		if !bytes.Equal(frame, again) {
			t.Fatalf("re-encode differs for %#v", in)
		}
		if len(out) != 2 || out[0].A != a || out[0].S != s || out[1].F == fl {
			t.Fatalf("decode mismatch: %#v vs %#v", out, in)
		}
		// NaN compares unequal to itself; compare bit patterns via re-encode
		// (done above) and direct equality only for ordinary values.
		if x == x && out[0].X != x {
			t.Fatalf("float mismatch: %v vs %v", out[0].X, x)
		}
	})
}

// FuzzDecodeArbitraryBytes feeds the decoder raw bytes: it may reject them,
// but must never panic, and anything it accepts must re-encode to a frame it
// accepts again (self-produced frames are canonical).
func FuzzDecodeArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal([]int64{1, 2, 3}))
	f.Add(Marshal([]string{"x", ""}))
	f.Add([]byte{0xe7, 0x00, 0xff, 0xff, 0xff, 0xff, 0x01})
	type msg struct {
		S string
		V []int64
	}
	f.Add(Marshal([]msg{{"a", []int64{1}}}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if out, err := Unmarshal[int64](raw); err == nil {
			redo, err2 := Unmarshal[int64](Marshal(out))
			if err2 != nil || !reflect.DeepEqual(out, redo) {
				t.Fatalf("accepted frame not canonical: %v / %v", err2, out)
			}
		}
		if out, err := Unmarshal[msg](raw); err == nil {
			if _, err2 := Unmarshal[msg](Marshal(out)); err2 != nil {
				t.Fatalf("accepted struct frame not canonical: %v", err2)
			}
		}
		if v, err := UnmarshalOne[string](raw); err == nil {
			if _, err2 := UnmarshalOne[string](MarshalOne(v)); err2 != nil {
				t.Fatalf("accepted one-frame not canonical: %v", err2)
			}
		}
	})
}
