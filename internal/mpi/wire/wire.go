// Package wire is the typed frame codec beneath package mpi: every payload a
// rank sends — packed k-mer triples, COO matrix panels, read sequences,
// count/meta vectors, contig records — is encoded into a self-describing
// byte frame that decodes byte-identically in any process, replacing the old
// in-process contract where payloads crossed ranks as Go values and byte
// counts came from reflection.
//
// Frame layout (all integers little-endian):
//
//	magic   1 byte  0xE7
//	kind    1 byte  0 = slice of values, 1 = single value
//	fp      4 bytes structural fingerprint of the element type
//	count   uvarint number of elements (slice frames only)
//	data    count encoded elements
//
// The fingerprint hashes the element type's structure (field kinds, widths
// and order — not names), so a frame is rejected when sender and receiver
// disagree about layout, while renaming a field stays wire-compatible.
// Element encoding: bools are one byte; fixed-width ints, uints and floats
// are little-endian two's-complement/IEEE at their natural width; int and
// uint are always 8 bytes (cross-process runs must not depend on the host's
// word size); strings, []byte and nested slices are uvarint-length-prefixed;
// arrays and structs concatenate their elements/fields in order. Pointers,
// maps, channels, funcs and interfaces are not encodable and panic at codec
// compilation with the offending type.
//
// DataLen reports a frame's element-payload bytes (frame length minus
// header), which is what the mpi traffic counters charge — so counters are
// equal across transports by construction, and a 10-element []int64 message
// still counts 80 bytes exactly as the reflection-based accounting did.
//
// Codecs are compiled per element type on first use and cached; types whose
// memory layout already matches the wire layout (fixed-width, no padding, no
// indirection) encode and decode as single bulk copies on little-endian
// hosts.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

const (
	magic     = 0xE7
	kindSlice = 0x00
	kindOne   = 0x01

	// headerLen is the fixed prefix before the optional count varint.
	headerLen = 1 + 1 + 4
)

// Marshal encodes a slice of values as one frame.
func Marshal[T any](data []T) []byte {
	c := codecFor[T]()
	n := len(data)
	buf := make([]byte, 0, headerLen+binary.MaxVarintLen64+c.sizeHint(n))
	buf = append(buf, magic, kindSlice)
	buf = binary.LittleEndian.AppendUint32(buf, c.fp)
	buf = binary.AppendUvarint(buf, uint64(n))
	if n == 0 {
		return buf
	}
	base := unsafe.Pointer(&data[0])
	if c.dense {
		return append(buf, unsafe.Slice((*byte)(base), n*int(c.memSize))...)
	}
	for i := 0; i < n; i++ {
		buf = c.enc(buf, unsafe.Add(base, uintptr(i)*c.memSize))
	}
	return buf
}

// MarshalOne encodes a single value as one frame.
func MarshalOne[T any](v T) []byte {
	c := codecFor[T]()
	buf := make([]byte, 0, headerLen+c.sizeHint(1))
	buf = append(buf, magic, kindOne)
	buf = binary.LittleEndian.AppendUint32(buf, c.fp)
	if c.dense {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v)), c.memSize)...)
	}
	return c.enc(buf, unsafe.Pointer(&v))
}

// Unmarshal decodes a slice frame produced by Marshal[T]. The result never
// aliases the frame.
func Unmarshal[T any](frame []byte) ([]T, error) {
	c := codecFor[T]()
	rest, err := checkHeader(frame, kindSlice, c)
	if err != nil {
		return nil, err
	}
	n, rest, err := readUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("wire: %s: bad element count: %w", c.name, err)
	}
	// An element encodes to at least c.minSize bytes, so a well-formed frame
	// bounds the count — reject early rather than allocating attacker-sized
	// slices from a corrupt varint.
	if c.minSize > 0 && n > uint64(len(rest))/uint64(c.minSize) {
		return nil, fmt.Errorf("wire: %s: count %d exceeds frame capacity %d", c.name, n, len(rest))
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("wire: %s: count %d exceeds limit", c.name, n)
	}
	if n == 0 {
		return []T{}, nil
	}
	out := make([]T, n)
	base := unsafe.Pointer(&out[0])
	if c.dense {
		want := int(n) * int(c.memSize)
		if len(rest) != want {
			return nil, fmt.Errorf("wire: %s: frame has %d payload bytes, want %d", c.name, len(rest), want)
		}
		copy(unsafe.Slice((*byte)(base), want), rest)
		return out, nil
	}
	for i := uint64(0); i < n; i++ {
		rest, err = c.dec(rest, unsafe.Add(base, uintptr(i)*c.memSize))
		if err != nil {
			return nil, fmt.Errorf("wire: %s: element %d: %w", c.name, i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %s: %d trailing bytes after %d elements", c.name, len(rest), n)
	}
	return out, nil
}

// UnmarshalOne decodes a single-value frame produced by MarshalOne[T].
func UnmarshalOne[T any](frame []byte) (T, error) {
	var v T
	c := codecFor[T]()
	rest, err := checkHeader(frame, kindOne, c)
	if err != nil {
		return v, err
	}
	if c.dense {
		if len(rest) != int(c.memSize) {
			return v, fmt.Errorf("wire: %s: frame has %d payload bytes, want %d", c.name, len(rest), c.memSize)
		}
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&v)), c.memSize), rest)
		return v, nil
	}
	rest, err = c.dec(rest, unsafe.Pointer(&v))
	if err != nil {
		return v, fmt.Errorf("wire: %s: %w", c.name, err)
	}
	if len(rest) != 0 {
		return v, fmt.Errorf("wire: %s: %d trailing bytes", c.name, len(rest))
	}
	return v, nil
}

// DataLen reports the element-payload bytes of a frame: its length minus the
// header and count prefix. This is the number the mpi traffic counters
// charge per message.
func DataLen(frame []byte) int64 {
	if len(frame) < headerLen {
		return 0
	}
	h := headerLen
	if frame[1] == kindSlice {
		_, n := binary.Uvarint(frame[headerLen:])
		if n <= 0 {
			return 0
		}
		h += n
	}
	return int64(len(frame) - h)
}

// Fingerprint returns the structural fingerprint of T as encoded in frame
// headers — exposed for conformance and fuzz tests.
func Fingerprint[T any]() uint32 { return codecFor[T]().fp }

func checkHeader(frame []byte, kind byte, c *codec) ([]byte, error) {
	if len(frame) < headerLen {
		return nil, fmt.Errorf("wire: %s: frame too short (%d bytes)", c.name, len(frame))
	}
	if frame[0] != magic {
		return nil, fmt.Errorf("wire: %s: bad magic 0x%02x", c.name, frame[0])
	}
	if frame[1] != kind {
		return nil, fmt.Errorf("wire: %s: frame kind %d, want %d", c.name, frame[1], kind)
	}
	if fp := binary.LittleEndian.Uint32(frame[2:6]); fp != c.fp {
		return nil, fmt.Errorf("wire: %s: type fingerprint 0x%08x does not match 0x%08x — sender and receiver disagree about the element layout", c.name, fp, c.fp)
	}
	return frame[headerLen:], nil
}

// codec is a compiled encoder/decoder for one element type.
type codec struct {
	name    string // Go type name, for error messages
	fp      uint32 // structural fingerprint
	memSize uintptr
	fixed   int  // encoded bytes per element; -1 if variable
	minSize int  // lower bound on encoded bytes per element
	dense   bool // memory layout == wire layout: bulk-copy eligible
	enc     func(dst []byte, p unsafe.Pointer) []byte
	dec     func(src []byte, p unsafe.Pointer) ([]byte, error)
}

func (c *codec) sizeHint(n int) int {
	if c.fixed >= 0 {
		return n * c.fixed
	}
	return n * 16 // variable-size elements: grow from a modest guess
}

var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

var codecs sync.Map // reflect.Type -> *codec

func codecFor[T any]() *codec {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if c, ok := codecs.Load(t); ok {
		return c.(*codec)
	}
	c := compile(t, nil)
	actual, _ := codecs.LoadOrStore(t, c)
	return actual.(*codec)
}

// compile builds the codec for t; seen guards against recursive types, which
// cannot occur in practice without pointers but would otherwise loop.
func compile(t reflect.Type, seen []reflect.Type) *codec {
	for _, s := range seen {
		if s == t {
			panic(fmt.Sprintf("wire: recursive type %v is not encodable", t))
		}
	}
	seen = append(seen, t)
	c := &codec{name: t.String(), memSize: t.Size()}
	h := fnv.New32a()
	fmt.Fprint(h, structure(t, seen[:len(seen)-1]))
	c.fp = h.Sum32()
	buildKind(c, t, seen)
	return c
}

// structure renders t's layout (kinds, widths, order — no names) for the
// fingerprint.
func structure(t reflect.Type, seen []reflect.Type) string {
	for _, s := range seen {
		if s == t {
			panic(fmt.Sprintf("wire: recursive type %v is not encodable", t))
		}
	}
	seen = append(seen, t)
	switch t.Kind() {
	case reflect.Bool:
		return "b"
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return fmt.Sprintf("i%d", t.Bits()/8)
	case reflect.Int:
		return "i8"
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return fmt.Sprintf("u%d", t.Bits()/8)
	case reflect.Uint:
		return "u8"
	case reflect.Float32, reflect.Float64:
		return fmt.Sprintf("f%d", t.Bits()/8)
	case reflect.String:
		return "s"
	case reflect.Slice:
		return "[" + structure(t.Elem(), seen)
	case reflect.Array:
		return fmt.Sprintf("a%d%s", t.Len(), structure(t.Elem(), seen))
	case reflect.Struct:
		s := "{"
		for i := 0; i < t.NumField(); i++ {
			s += structure(t.Field(i).Type, seen)
		}
		return s + "}"
	default:
		panic(fmt.Sprintf("wire: type %v (kind %v) is not encodable — only bools, fixed-width numbers, int/uint, strings, slices, arrays and structs of those cross the wire", t, t.Kind()))
	}
}

func buildKind(c *codec, t reflect.Type, seen []reflect.Type) {
	switch t.Kind() {
	case reflect.Bool:
		c.fixed, c.minSize = 1, 1
		c.dense = hostLittleEndian // bool is one byte of 0/1 in memory too
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			if *(*bool)(p) {
				return append(dst, 1)
			}
			return append(dst, 0)
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 1 {
				return nil, errShort
			}
			*(*bool)(p) = src[0] != 0
			return src[1:], nil
		}
	case reflect.Int8, reflect.Uint8:
		fixedInt(c, t, 1)
	case reflect.Int16, reflect.Uint16:
		fixedInt(c, t, 2)
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		fixedInt(c, t, 4)
	case reflect.Int64, reflect.Uint64, reflect.Float64:
		fixedInt(c, t, 8)
	case reflect.Int:
		c.fixed, c.minSize = 8, 8
		c.dense = hostLittleEndian && c.memSize == 8
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(*(*int)(p)))
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 8 {
				return nil, errShort
			}
			*(*int)(p) = int(int64(binary.LittleEndian.Uint64(src)))
			return src[8:], nil
		}
	case reflect.Uint:
		c.fixed, c.minSize = 8, 8
		c.dense = hostLittleEndian && c.memSize == 8
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(*(*uint)(p)))
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 8 {
				return nil, errShort
			}
			*(*uint)(p) = uint(binary.LittleEndian.Uint64(src))
			return src[8:], nil
		}
	case reflect.String:
		c.fixed, c.minSize = -1, 1
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			s := *(*string)(p)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			return append(dst, s...)
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			n, rest, err := readUvarint(src)
			if err != nil || n > uint64(len(rest)) {
				return nil, errShort
			}
			*(*string)(p) = string(rest[:n])
			return rest[n:], nil
		}
	case reflect.Slice:
		ec := compile(t.Elem(), seen)
		es := ec.memSize
		st := t
		c.fixed, c.minSize = -1, 1
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			sh := (*sliceHeader)(p)
			dst = binary.AppendUvarint(dst, uint64(sh.len))
			if sh.len == 0 {
				return dst
			}
			if ec.dense {
				return append(dst, unsafe.Slice((*byte)(sh.data), sh.len*int(es))...)
			}
			for i := 0; i < sh.len; i++ {
				dst = ec.enc(dst, unsafe.Add(sh.data, uintptr(i)*es))
			}
			return dst
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			n, rest, err := readUvarint(src)
			if err != nil {
				return nil, err
			}
			if ec.minSize > 0 && n > uint64(len(rest))/uint64(ec.minSize) {
				return nil, errShort
			}
			if n > math.MaxInt32 {
				return nil, errShort
			}
			sv := reflect.MakeSlice(st, int(n), int(n))
			if n > 0 {
				base := sv.UnsafePointer()
				if ec.dense {
					want := int(n) * int(es)
					if len(rest) < want {
						return nil, errShort
					}
					copy(unsafe.Slice((*byte)(base), want), rest)
					rest = rest[want:]
				} else {
					for i := uint64(0); i < n; i++ {
						rest, err = ec.dec(rest, unsafe.Add(base, uintptr(i)*es))
						if err != nil {
							return nil, err
						}
					}
				}
			}
			// Install through reflect so the write carries proper GC barriers
			// for the freshly built backing array.
			reflect.NewAt(st, p).Elem().Set(sv)
			return rest, nil
		}
	case reflect.Array:
		ec := compile(t.Elem(), seen)
		es, n := ec.memSize, t.Len()
		if ec.fixed >= 0 {
			c.fixed = n * ec.fixed
		} else {
			c.fixed = -1
		}
		c.minSize = n * ec.minSize
		c.dense = ec.dense && c.fixed >= 0 && uintptr(c.fixed) == c.memSize
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			for i := 0; i < n; i++ {
				dst = ec.enc(dst, unsafe.Add(p, uintptr(i)*es))
			}
			return dst
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			var err error
			for i := 0; i < n; i++ {
				src, err = ec.dec(src, unsafe.Add(p, uintptr(i)*es))
				if err != nil {
					return nil, err
				}
			}
			return src, nil
		}
	case reflect.Struct:
		type field struct {
			off uintptr
			c   *codec
		}
		fields := make([]field, t.NumField())
		fixed, minSize, dense := 0, 0, true
		for i := range fields {
			f := t.Field(i)
			fc := compile(f.Type, seen)
			fields[i] = field{off: f.Offset, c: fc}
			if fc.fixed < 0 || fixed < 0 {
				fixed = -1
			} else {
				fixed += fc.fixed
			}
			minSize += fc.minSize
			dense = dense && fc.dense
		}
		c.fixed, c.minSize = fixed, minSize
		// Dense only when the fields' wire bytes tile the struct exactly:
		// any padding would leak nondeterministic memory into frames.
		c.dense = dense && fixed >= 0 && uintptr(fixed) == c.memSize
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			for _, f := range fields {
				dst = f.c.enc(dst, unsafe.Add(p, f.off))
			}
			return dst
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			var err error
			for _, f := range fields {
				src, err = f.c.dec(src, unsafe.Add(p, f.off))
				if err != nil {
					return nil, err
				}
			}
			return src, nil
		}
	default:
		panic(fmt.Sprintf("wire: type %v (kind %v) is not encodable — only bools, fixed-width numbers, int/uint, strings, slices, arrays and structs of those cross the wire", t, t.Kind()))
	}
}

// fixedInt wires the codec for a fixed-width integer or float of w bytes;
// floats reuse the integer paths via their memory representation, which is
// exactly their IEEE bit pattern.
func fixedInt(c *codec, t reflect.Type, w int) {
	c.fixed, c.minSize = w, w
	c.dense = hostLittleEndian
	switch w {
	case 1:
		c.enc = func(dst []byte, p unsafe.Pointer) []byte { return append(dst, *(*byte)(p)) }
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 1 {
				return nil, errShort
			}
			*(*byte)(p) = src[0]
			return src[1:], nil
		}
	case 2:
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint16(dst, *(*uint16)(p))
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 2 {
				return nil, errShort
			}
			*(*uint16)(p) = binary.LittleEndian.Uint16(src)
			return src[2:], nil
		}
	case 4:
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint32(dst, *(*uint32)(p))
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 4 {
				return nil, errShort
			}
			*(*uint32)(p) = binary.LittleEndian.Uint32(src)
			return src[4:], nil
		}
	case 8:
		c.enc = func(dst []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint64(dst, *(*uint64)(p))
		}
		c.dec = func(src []byte, p unsafe.Pointer) ([]byte, error) {
			if len(src) < 8 {
				return nil, errShort
			}
			*(*uint64)(p) = binary.LittleEndian.Uint64(src)
			return src[8:], nil
		}
	}
}

// sliceHeader mirrors the runtime slice layout for direct element access.
type sliceHeader struct {
	data unsafe.Pointer
	len  int
	cap  int
}

var errShort = fmt.Errorf("truncated frame")

func readUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, src[n:], nil
}
