package mpi

// Cooperative cancellation of a simulated world.
//
// MPI has no first-class cancellation; a real ELBA run that must stop early
// is killed. The simulator can do better: a World carries a cancel channel
// that every blocked receive (and therefore every collective, which is built
// on receives) selects on. Cancelling the world wakes all of them at once;
// each panics with a private sentinel that Run recognises and swallows, so
// every rank goroutine — and every background matcher goroutine of a posted
// nonblocking receive — unwinds promptly instead of deadlocking on peers
// that died. RunCtx ties this to a context.Context, which is how the
// pipeline engine threads ctx through a run.
//
// Cancellation is one-way: a cancelled world stays cancelled, and every
// subsequent communication on it unwinds immediately. Callers that want to
// continue must build a fresh world (the pipeline engine treats cancelled
// artifacts as dead for this reason).

import (
	"context"
	"errors"

	"repro/internal/mpi/transport"
)

// cancelPanic unwinds a rank goroutine after a world cancellation. Run and
// the background matchers recognise it and do not report it as a rank error.
type cancelPanic struct{ err error }

func (p cancelPanic) String() string {
	return "mpi: world cancelled: " + p.err.Error()
}

// Cancel aborts the world: every rank blocked in a receive (or in any
// collective) wakes and unwinds, and every future communication on the world
// unwinds immediately. The first cause wins; nil means context.Canceled.
// Safe to call from any goroutine, any number of times.
//
// In a multi-process world the local endpoints are also aborted, which
// propagates the failure to peer processes (their transports invoke the
// failure handler, cancelling their worlds in turn) — the distributed
// analogue of every in-process rank selecting on one cancel channel.
func (w *World) Cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	w.cancelMu.Lock()
	first := w.cancelErr == nil
	var hook func(error)
	if first {
		w.cancelErr = cause
		close(w.cancelCh)
		hook = w.onCancel
	}
	w.cancelMu.Unlock()
	if first {
		if hook != nil {
			hook(cause)
		}
		origin := failureOrigin(cause)
		for _, r := range w.local {
			// Abort may block on socket writes; never under cancelMu, and
			// never on the canceller's goroutine.
			go w.eps[r].Abort(origin, cause.Error())
		}
	}
}

// failureOrigin extracts the world rank a cancellation cause is attributed
// to — a cascade triggered by a peer's death keeps blaming that peer when
// the abort is rebroadcast — or -1 when the cause is local (context
// cancellation, a rank panic).
func failureOrigin(cause error) int {
	var rf *transport.RankFailure
	if errors.As(cause, &rf) {
		return rf.Rank
	}
	return -1
}

// OnCancel registers fn to run exactly once when the world is cancelled —
// by context cancellation, a rank panic or send failure, or a
// transport-reported peer death (unwrap the cause with errors.As to a
// *transport.RankFailure to name a dead rank). fn runs on the goroutine
// that first cancels the world, before blocked ranks finish unwinding, so
// it must be quick and must not communicate on the world. Registering on an
// already-cancelled world fires fn immediately with the buffered cause; a
// later OnCancel replaces an unfired hook.
func (w *World) OnCancel(fn func(error)) {
	w.cancelMu.Lock()
	pending := w.cancelErr
	if pending == nil {
		w.onCancel = fn
	}
	w.cancelMu.Unlock()
	if pending != nil && fn != nil {
		fn(pending)
	}
}

// Err returns the cancellation cause, or nil while the world is live.
func (w *World) Err() error {
	w.cancelMu.Lock()
	defer w.cancelMu.Unlock()
	return w.cancelErr
}

// checkCancel panics with the cancellation sentinel if the world has been
// cancelled. Called on every receive wait so blocked ranks unwind promptly.
func (w *World) checkCancel() {
	select {
	case <-w.cancelCh:
		panic(cancelPanic{w.cancelErr})
	default:
	}
}

// RunCtx is Run under a context: if ctx is cancelled while ranks execute,
// the world is cancelled (waking every blocked rank) and RunCtx returns
// ctx.Err(). A world that was already cancelled returns its cause without
// starting any rank. A ctx that is already cancelled on entry likewise
// starts no rank, but it does cancel the world first — a run requested
// under a dead context poisons the world exactly as a mid-run cancellation
// would, so the OnCancel hook fires no matter where the cancellation lands
// relative to the stage boundaries above.
func (w *World) RunCtx(ctx context.Context, fn func(*Comm)) error {
	if err := w.Err(); err != nil {
		return err
	}
	if ctx == nil || ctx.Done() == nil {
		return w.runChecked(fn)
	}
	if err := ctx.Err(); err != nil {
		w.Cancel(err)
		return w.Err()
	}
	stop := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		select {
		case <-ctx.Done():
			w.Cancel(ctx.Err())
		case <-stop:
		}
	}()
	err := w.runChecked(fn)
	// Stand the watcher down and WAIT for it before deciding the outcome:
	// a cancellation racing the final ranks must either be reported by this
	// very call or not poison the world at all — never poison a snapshot
	// whose RunCtx already returned success.
	close(stop)
	<-parked
	if cerr := w.Err(); cerr != nil {
		return cerr
	}
	return err
}

// runChecked is Run with the cancellation cause taking precedence over the
// per-rank error report.
func (w *World) runChecked(fn func(*Comm)) error {
	err := w.Run(fn)
	if cerr := w.Err(); cerr != nil {
		return cerr
	}
	return err
}
