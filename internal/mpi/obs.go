package mpi

// Observability wiring. A world can carry an optional obs.Trace (per-rank
// event lanes) and obs.MetricSet (per-rank registries); when absent, every
// hook below compiles down to a nil check on the hot path. SetObs must be
// called before any rank goroutine starts (typically right after NewWorld) —
// the handles are cached per world rank and read without synchronization.

import (
	"repro/internal/mpi/transport"
	"repro/internal/obs"
)

// worldObs caches per-world-rank observability handles so the send/receive
// hot paths never take the registry mutex.
type worldObs struct {
	lanes         []*obs.Lane
	regs          []*obs.Registry
	msgBytes      []*obs.Histogram // mpi.msg_bytes: size of every sent message
	msgBytesAsync []*obs.Histogram // mpi.msg_bytes_async: nonblocking subset
	reqGauge      []*obs.Gauge     // mpi.inflight_reqs: posted, not yet drained
}

// SetObs attaches a trace and/or metric set to the world. Either may be nil
// (tracing and metrics are independent). It must be called before the first
// Run; the trace and metric set must cover at least Size() ranks.
func (w *World) SetObs(t *obs.Trace, m *obs.MetricSet) {
	if t == nil && m == nil {
		return
	}
	if t != nil && t.Ranks() < w.size {
		panic("mpi: trace covers fewer ranks than the world")
	}
	if m != nil && m.Ranks() < w.size {
		panic("mpi: metric set covers fewer ranks than the world")
	}
	o := &worldObs{
		lanes:         make([]*obs.Lane, w.size),
		regs:          make([]*obs.Registry, w.size),
		msgBytes:      make([]*obs.Histogram, w.size),
		msgBytesAsync: make([]*obs.Histogram, w.size),
		reqGauge:      make([]*obs.Gauge, w.size),
	}
	for i := 0; i < w.size; i++ {
		if t != nil {
			o.lanes[i] = t.Rank(i)
		}
		if m != nil {
			reg := m.Rank(i)
			o.regs[i] = reg
			o.msgBytes[i] = reg.Histogram("mpi.msg_bytes")
			o.msgBytesAsync[i] = reg.Histogram("mpi.msg_bytes_async")
			o.reqGauge[i] = reg.Gauge("mpi.inflight_reqs")
			// Queue-depth instrumentation is an optional transport capability
			// (remote ranks have no local endpoint to instrument).
			if ep := w.eps[i]; ep != nil {
				if qi, ok := ep.(transport.QueueInstrumented); ok {
					qi.SetQueueDepthHook(reg.Gauge("mpi.mailbox_depth").Add)
				}
			}
		}
	}
	w.obs = o
}

// Lane returns this rank's event lane, or nil when tracing is off. The
// returned lane's methods are nil-safe, so callers may use it unguarded in
// cold paths and nil-check only where allocation of span arguments matters.
func (c *Comm) Lane() *obs.Lane {
	o := c.world.obs
	if o == nil {
		return nil
	}
	return o.lanes[c.group[c.rank]]
}

// Metrics returns this rank's metric registry, or nil when metrics are off.
// Nil registries hand out nil handles whose methods are no-ops.
func (c *Comm) Metrics() *obs.Registry {
	o := c.world.obs
	if o == nil {
		return nil
	}
	return o.regs[c.group[c.rank]]
}

// attachObs points a request's completion machinery at this rank's lane and
// in-flight gauge, so Wait records an exposed-wait span and background
// matchers move the gauge.
func (c *Comm) attachObs(r *reqState) {
	o := c.world.obs
	if o == nil {
		return
	}
	w := c.group[c.rank]
	r.lane = o.lanes[w]
	r.gauge = o.reqGauge[w]
}
