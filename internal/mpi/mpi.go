// Package mpi implements a distributed-memory message-passing runtime with
// MPI-like semantics over pluggable transports.
//
// The ELBA paper targets MPI on thousands of ranks. Go has no MPI ecosystem,
// so this package provides the runtime itself, split along two seams:
//
//   - Below, a transport.Transport (package mpi/transport) moves tagged byte
//     messages between ranks with src/tag matching. The reference transport
//     delivers through in-process mailboxes — every rank a goroutine, as the
//     original simulator did; transport/tcp delivers over sockets so ranks
//     can be separate OS processes (cmd/elba -transport proc).
//   - Between, a wire codec (package mpi/wire) encodes every payload —
//     packed k-mer triples, COO panels, read sequences, count vectors — into
//     self-describing frames that decode byte-identically in any process.
//
// Above the seams live the MPI semantics, shared by all transports:
// point-to-point Send/Recv with buffered sends and (src, tag) matching, the
// usual collectives (Barrier, Bcast, Gather(v), Allgather(v), Alltoall(v),
// Reduce, Allreduce, ReduceScatter, Exscan) built on point-to-point exchange
// exactly as a small MPI implementation would, communicator Split (the
// row/column communicators of the 2D process grid), a nonblocking layer
// (Isend/Irecv/Request/Waitall, IBcast, IAlltoallv — see nonblocking.go)
// for overlapping communication with computation, cooperative cancellation
// (see cancel.go), and a recv deadlock watchdog.
//
// Because every payload is encoded at send and decoded at receive, a rank
// can never observe another rank's memory — algorithmic errors (reading a
// vector entry the rank does not own) fail in tests the same way they would
// on real distributed hardware — and the traffic counters charge the actual
// wire bytes, identically on every transport. The runtime keeps per-rank
// totals, the nonblocking (overlappable) subset, and per-communicator
// in-flight gauges; the cross-transport conformance suite
// (conformance_test.go) pins byte/message equality between the in-process
// and TCP transports.
//
// Worlds are built with NewWorld(p) (in-process: all p ranks local) or
// NewWorldTransport(endpoints...) (general: one endpoint per local rank; a
// multi-process job passes exactly one). World.Run executes a rank function
// on every local rank; in a multi-process world each process runs its own
// rank and the SPMD program must be identical everywhere, like real MPI.
package mpi

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/mpi/transport"
	"repro/internal/mpi/wire"
	"repro/internal/obs"
)

// DefaultRecvTimeout bounds how long a Recv waits before the runtime declares
// a deadlock. A multi-minute wait always means a mismatched send/receive
// pattern; panicking with context beats hanging.
var DefaultRecvTimeout = 120 * time.Second

// MaxMessageBytes mirrors the MPI count limit of 2^31-1 that the paper's
// sequence-communication step must work around. Sends whose encoded payload
// is larger than this panic, forcing callers to chunk exactly as ELBA does.
// Tests lower it to exercise the chunking path at small scale.
var MaxMessageBytes = int64(1<<31 - 1)

// Communicator context ids. The world communicator and the control plane use
// reserved even ids; Split derives odd ids by hashing, so a split
// communicator can never collide with either.
const (
	ctxWorld   uint64 = 1
	ctxControl uint64 = 2
)

// World owns the transport endpoints and counters for one machine's share of
// a P-rank job. In an in-process world every rank is local; in a
// multi-process world each OS process holds the endpoint(s) of its own
// rank(s) and the rest of eps is nil.
type World struct {
	size  int
	local []int                 // sorted world ranks served by this process
	eps   []transport.Transport // indexed by world rank; nil for remote ranks
	stats []RankStats
	// recvTimeout is read atomically (nanoseconds): background matcher
	// goroutines consult it while tests adjust it.
	recvTimeout int64
	// inflight tracks bytes sent but not yet received, per communicator
	// context id (uint64 → *int64). Incremented at send, decremented when the
	// receiver takes the message; a rank can read its communicator's gauge
	// with Comm.InflightBytes. Local traffic only in multi-process worlds.
	inflight sync.Map
	// Cancellation (see cancel.go): cancelCh is closed exactly once, after
	// cancelErr is set, so readers woken by the close always see the cause.
	cancelMu  sync.Mutex
	cancelCh  chan struct{}
	cancelErr error
	onCancel  func(error)
	// obs holds the optional tracing/metrics handles (see obs.go). Written
	// only by SetObs before ranks start; read without synchronization after.
	obs *worldObs
}

// RankStats counts traffic originated by one rank. The Async counters are
// the subset of the totals that was sent through the nonblocking layer
// (Isend and the collectives built on it) — the traffic a rank could have
// overlapped with computation; package trace turns their deltas into the
// comm_overlap/comm_exposed split. Bytes are encoded wire bytes (frame
// payloads, headers excluded), so counters are equal across transports.
type RankStats struct {
	MsgsSent   int64
	BytesSent  int64
	MsgsAsync  int64
	BytesAsync int64
	_          [4]int64 // pad to a cache line to avoid false sharing
}

// NewWorld creates an in-process world with p ranks — the reference
// configuration: every rank a goroutine, delivery through shared mailboxes.
func NewWorld(p int) *World {
	return NewWorldTransport(transport.NewInproc(p)...)
}

// NewWorldTransport creates a world over explicit transport endpoints, one
// per rank served by this process. All endpoints must report the same job
// size and distinct ranks. Endpoint failures (a peer process aborting, a
// connection dying) cancel the world, unwinding every local rank.
func NewWorldTransport(eps ...transport.Transport) *World {
	if len(eps) == 0 {
		panic("mpi: NewWorldTransport needs at least one endpoint")
	}
	size := eps[0].Size()
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size %d must be positive", size))
	}
	w := &World{
		size:     size,
		eps:      make([]transport.Transport, size),
		stats:    make([]RankStats, size),
		cancelCh: make(chan struct{}),
	}
	atomic.StoreInt64(&w.recvTimeout, int64(DefaultRecvTimeout))
	for _, ep := range eps {
		if ep.Size() != size {
			panic(fmt.Sprintf("mpi: endpoint sizes disagree (%d vs %d)", ep.Size(), size))
		}
		r := ep.Self()
		if r < 0 || r >= size {
			panic(fmt.Sprintf("mpi: endpoint rank %d out of range [0,%d)", r, size))
		}
		if w.eps[r] != nil {
			panic(fmt.Sprintf("mpi: duplicate endpoint for rank %d", r))
		}
		w.eps[r] = ep
		w.local = append(w.local, r)
		ep.SetFailureHandler(func(err error) {
			w.Cancel(fmt.Errorf("mpi: transport failure: %w", err))
		})
	}
	sort.Ints(w.local)
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Local returns the world ranks served by this process, ascending.
func (w *World) Local() []int {
	out := make([]int, len(w.local))
	copy(out, w.local)
	return out
}

// Distributed reports whether some ranks of the world live in other
// processes — in which case per-world aggregates (TotalBytes, Stats) cover
// only the local ranks and cross-rank sums must go through collectives.
func (w *World) Distributed() bool { return len(w.local) < w.size }

// Close releases the world's transport endpoints after a polite drain. Call
// it when a multi-process or socket-backed world is done; in-process worlds
// have nothing to release.
func (w *World) Close() error {
	if cause := w.Err(); cause != nil {
		// A cancelled world aborts instead of draining: Cancel broadcasts the
		// abort on a background goroutine, and a polite BYE issued here could
		// overtake it — telling peers this rank finished cleanly and leaving
		// them blocked instead of failed. Abort is idempotent, so whichever
		// broadcast runs first wins.
		origin := failureOrigin(cause)
		for _, r := range w.local {
			w.eps[r].Abort(origin, cause.Error())
		}
		return nil
	}
	// Close all local endpoints concurrently: the BYE drain of each waits
	// for its peers' BYEs, so in a world with several local endpoints a
	// sequential loop would stall every close behind the next one's.
	errs := make([]error, len(w.local))
	var wg sync.WaitGroup
	for i, r := range w.local {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			errs[i] = w.eps[r].Close()
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetRecvTimeout overrides the deadlock watchdog for this world.
func (w *World) SetRecvTimeout(d time.Duration) {
	atomic.StoreInt64(&w.recvTimeout, int64(d))
}

func (w *World) timeout() time.Duration {
	return time.Duration(atomic.LoadInt64(&w.recvTimeout))
}

// Stats returns a snapshot of per-rank traffic counters (local ranks only in
// a distributed world; remote entries are zero).
func (w *World) Stats() []RankStats {
	out := make([]RankStats, w.size)
	for i := range out {
		out[i].MsgsSent = atomic.LoadInt64(&w.stats[i].MsgsSent)
		out[i].BytesSent = atomic.LoadInt64(&w.stats[i].BytesSent)
		out[i].MsgsAsync = atomic.LoadInt64(&w.stats[i].MsgsAsync)
		out[i].BytesAsync = atomic.LoadInt64(&w.stats[i].BytesAsync)
	}
	return out
}

// TotalBytes returns the total bytes sent by all local ranks so far.
func (w *World) TotalBytes() int64 {
	var t int64
	for i := range w.stats {
		t += atomic.LoadInt64(&w.stats[i].BytesSent)
	}
	return t
}

// TotalMsgs returns the total messages sent by all local ranks so far.
func (w *World) TotalMsgs() int64 {
	var t int64
	for i := range w.stats {
		t += atomic.LoadInt64(&w.stats[i].MsgsSent)
	}
	return t
}

// inflightCounter returns the in-flight byte gauge for a communicator
// context, creating it on first use.
func (w *World) inflightCounter(ctx uint64) *int64 {
	if v, ok := w.inflight.Load(ctx); ok {
		return v.(*int64)
	}
	v, _ := w.inflight.LoadOrStore(ctx, new(int64))
	return v.(*int64)
}

// InflightBytes returns the bytes currently sent but not yet received across
// all communicators of the world (local endpoints only).
func (w *World) InflightBytes() int64 {
	var t int64
	w.inflight.Range(func(_, v any) bool {
		t += atomic.LoadInt64(v.(*int64))
		return true
	})
	return t
}

// Comm returns the world communicator for the given rank. Each rank goroutine
// must use its own Comm; Comms are not shared between goroutines. In a
// distributed world a Comm for a remote rank can be constructed (the engine
// keeps symmetric per-rank state) but panics on first communication.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{world: w, ctx: ctxWorld, rank: rank, group: group}
}

// ControlComm returns an out-of-band world communicator for the given rank
// whose traffic is invisible to every counter, gauge, histogram and trace —
// the engine's control plane for aggregating per-stage statistics across
// processes without perturbing the statistics themselves. It uses a reserved
// context, so control collectives never cross-match application traffic.
// Like Comm, each rank goroutine needs its own, and the same control
// communicator must be reused across calls so sequence numbers stay aligned.
func (w *World) ControlComm(rank int) *Comm {
	c := w.Comm(rank)
	c.ctx = ctxControl
	c.nocount = true
	return c
}

// RankError reports a panic raised inside one rank of a Run.
type RankError struct {
	Rank  int
	Value any
	Stack string
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v\n%s", e.Rank, e.Value, e.Stack)
}

// Run executes fn on p in-process ranks and waits for all of them. Panics in
// rank goroutines are recovered and returned as errors (first one wins).
func Run(p int, fn func(*Comm)) error {
	w := NewWorld(p)
	return w.Run(fn)
}

// Run executes fn on every local rank of the world and waits for completion.
// In-process worlds run all P ranks as goroutines; a multi-process world
// runs only this process's ranks, and every process must call Run with the
// same SPMD program.
func (w *World) Run(fn func(*Comm)) error {
	errs := make(chan *RankError, len(w.local))
	done := make(chan struct{})
	var pending atomic.Int64
	pending.Store(int64(len(w.local)))
	for _, r := range w.local {
		c := w.Comm(r)
		go func(rank int, c *Comm) {
			defer func() {
				if v := recover(); v != nil {
					// Cancellation unwinds ranks by design; only genuine
					// panics become rank errors.
					if _, cancelled := v.(cancelPanic); !cancelled {
						errs <- &RankError{Rank: rank, Value: v, Stack: string(debug.Stack())}
					}
				}
				if pending.Add(-1) == 0 {
					close(done)
				}
			}()
			fn(c)
		}(r, c)
	}
	<-done
	if err := w.Err(); err != nil {
		return err
	}
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// Comm is a communicator: a group of ranks with a private context id so
// concurrent collectives on different communicators never interfere.
type Comm struct {
	world *World
	ctx   uint64
	rank  int   // rank within this communicator
	group []int // world rank of each communicator rank
	seq   uint64
	// async marks sends issued through the nonblocking layer, counting them
	// into the BytesAsync/MsgsAsync overlap counters. Set only on the private
	// views Isend & friends derive via asyncView; user-held Comms are sync.
	async bool
	// nocount makes the communicator invisible to all counters, gauges,
	// histograms and trace instants, symmetrically on send and receive — the
	// control plane (ControlComm) must not perturb what it measures.
	nocount bool
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// World returns the underlying world (shared state; read-only use).
func (c *Comm) World() *World { return c.world }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

// BytesSent returns the bytes this rank has sent so far (any communicator).
func (c *Comm) BytesSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].BytesSent)
}

// MsgsSent returns the messages this rank has sent so far.
func (c *Comm) MsgsSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].MsgsSent)
}

// BytesAsync returns the bytes this rank has sent through the nonblocking
// layer so far (a subset of BytesSent).
func (c *Comm) BytesAsync() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].BytesAsync)
}

// MsgsAsync returns the messages this rank has sent through the nonblocking
// layer so far (a subset of MsgsSent).
func (c *Comm) MsgsAsync() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].MsgsAsync)
}

// InflightBytes returns the bytes currently sent but not yet received on
// this communicator (local ranks' traffic; a live gauge, not a monotone
// counter). After a Barrier following a fully-drained exchange it is zero.
func (c *Comm) InflightBytes() int64 {
	return atomic.LoadInt64(c.world.inflightCounter(c.ctx))
}

// nextSeq reserves a fresh operation sequence number. SPMD programs call
// collectives in the same order on every rank, so sequence numbers line up
// across the communicator without coordination (the MPI matching rule).
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// endpoint returns this rank's transport endpoint; a Comm constructed for a
// rank another process serves has none and must not communicate.
func (c *Comm) endpoint() transport.Transport {
	ep := c.world.eps[c.group[c.rank]]
	if ep == nil {
		panic(fmt.Sprintf("mpi: rank %d (world %d) is not served by this process", c.rank, c.group[c.rank]))
	}
	return ep
}

// wireTag folds the communicator context into the transport-level tag:
// transports match on (src world rank, tag) only, so distinct communicators
// must occupy distinct tag spaces. World-communicator tags pass through
// unchanged (readable in diagnostics); other contexts mix context and tag
// through splitmix64. Same (ctx, tag) always maps to the same wire tag, so
// per-pair FIFO order survives; distinct pairs colliding is as improbable as
// a Split context-id collision always was.
func wireTag(ctx uint64, tag int64) int64 {
	if ctx == ctxWorld {
		return tag
	}
	return int64(mix64(ctx, uint64(tag)))
}

// mix64 is a splitmix64-style mixer: deterministic across processes (unlike
// a seeded maphash), so communicator identities derived from it agree
// between the OS processes of a multi-process world.
func mix64(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= b
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sendRaw transmits an encoded frame to dst (communicator rank) under tag.
// dataBytes is the frame's element-payload size (wire.DataLen), which is
// what every counter charges. The frame must not be mutated after the call.
func (c *Comm) sendRaw(dst int, tag int64, frame []byte, dataBytes int64) {
	if dataBytes > MaxMessageBytes {
		panic(fmt.Sprintf("mpi: message of %d bytes exceeds MaxMessageBytes=%d (chunk the send as ELBA does)", dataBytes, MaxMessageBytes))
	}
	wdst := c.group[dst]
	wsrc := c.group[c.rank]
	ep := c.endpoint()
	if !c.nocount {
		atomic.AddInt64(&c.world.stats[wsrc].MsgsSent, 1)
		atomic.AddInt64(&c.world.stats[wsrc].BytesSent, dataBytes)
		if c.async {
			atomic.AddInt64(&c.world.stats[wsrc].MsgsAsync, 1)
			atomic.AddInt64(&c.world.stats[wsrc].BytesAsync, dataBytes)
		}
		atomic.AddInt64(c.world.inflightCounter(c.ctx), dataBytes)
		if o := c.world.obs; o != nil {
			o.msgBytes[wsrc].Observe(dataBytes)
			if c.async {
				o.msgBytesAsync[wsrc].Observe(dataBytes)
			}
			if l := o.lanes[wsrc]; l != nil {
				async := int64(0)
				if c.async {
					async = 1
				}
				l.Instant(0, "mpi", "send",
					obs.Arg{K: "dst", V: int64(wdst)}, obs.Arg{K: "tag", V: tag},
					obs.Arg{K: "bytes", V: dataBytes}, obs.Arg{K: "async", V: async})
			}
		}
	}
	err := ep.Send(wdst, transport.Message{Src: wsrc, Tag: wireTag(c.ctx, tag), Payload: frame})
	if err != nil {
		c.world.Cancel(fmt.Errorf("mpi: send to rank %d failed: %w", wdst, err))
		panic(cancelPanic{c.world.cancelErr})
	}
}

// armedNow is pre-closed: blocking receives arm their watchdog immediately.
var armedNow = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// recvRaw blocks until a message from src (communicator rank) with tag
// arrives and returns its frame, subject to the world deadlock watchdog.
func (c *Comm) recvRaw(src int, tag int64) []byte {
	return c.recvRawArmed(src, tag, armedNow)
}

// recvRawArmed is recvRaw with a deferred deadlock watchdog: the deadline
// starts only once armed is closed. Posted nonblocking receives pass their
// Wait signal, so a receive parked behind a long compute phase (whose
// matching send has legitimately not been posted yet) is never declared
// deadlocked — only a rank actually blocked in Wait/Recv trips the timer.
func (c *Comm) recvRawArmed(src int, tag int64, armed <-chan struct{}) []byte {
	ep := c.endpoint()
	wsrc := c.group[src]
	wtag := wireTag(c.ctx, tag)
	// Blocked-receive tracing: only direct blocking receives (armed ==
	// armedNow) record a span, and only if the first queue scan misses —
	// posted matchers report their exposed time via Wait instead.
	var lane *obs.Lane
	if o := c.world.obs; o != nil && !c.nocount && armed == (<-chan struct{})(armedNow) {
		lane = o.lanes[c.group[c.rank]]
	}
	blockStart := int64(-1)
	var deadline time.Time
	armedCh := armed // set to nil once consumed; a nil case blocks forever
	select {
	case <-armedCh:
		armedCh = nil
		deadline = time.Now().Add(c.world.timeout())
	default:
	}
	for {
		c.world.checkCancel()
		msg, gen, ok := ep.Match(wsrc, wtag)
		if ok {
			bytes := wire.DataLen(msg.Payload)
			if !c.nocount {
				atomic.AddInt64(c.world.inflightCounter(c.ctx), -bytes)
			}
			if blockStart >= 0 {
				lane.Span(0, "mpi", "recv.wait", blockStart,
					obs.Arg{K: "src", V: int64(wsrc)}, obs.Arg{K: "tag", V: tag},
					obs.Arg{K: "bytes", V: bytes})
			}
			return msg.Payload
		}
		if lane != nil && blockStart < 0 {
			blockStart = lane.Start()
		}
		var timer *time.Timer
		var expire <-chan time.Time
		if c.world.timeout() > 0 && armedCh == nil {
			remain := time.Until(deadline)
			if remain <= 0 {
				dump := ""
				if pd, ok := ep.(transport.PendingDumper); ok {
					dump = pd.PendingDump()
				}
				panic(fmt.Sprintf("mpi: rank %d (world %d) deadlocked waiting for ctx=%d src=%d tag=%d; pending:%s",
					c.rank, c.group[c.rank], c.ctx, src, tag, dump))
			}
			timer = time.NewTimer(remain)
			expire = timer.C
		}
		select {
		case <-gen:
			if timer != nil {
				timer.Stop()
			}
		case <-armedCh:
			// Wait just started: the deadline runs from here.
			armedCh = nil
			deadline = time.Now().Add(c.world.timeout())
		case <-expire:
			// Loop re-checks the queue, then panics via the deadline branch.
		case <-c.world.cancelCh:
			if timer != nil {
				timer.Stop()
			}
			panic(cancelPanic{c.world.cancelErr})
		}
	}
}

// Split partitions the communicator by color; ranks passing the same color
// form a new communicator ordered by (key, old rank). It must be called by
// every rank of c (a collective), like MPI_Comm_split.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := Allgather(c, ck{Color: color, Key: key, Rank: c.rank})
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	// Insertion sort by (key, rank): deterministic on every rank.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j-1].Key > members[j].Key ||
			(members[j-1].Key == members[j].Key && members[j-1].Rank > members[j].Rank)); j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	// A context id all members derive identically: a deterministic mix of
	// parent context, split sequence number and color. It must be identical
	// across OS processes, so no process-local hash seeds; odd ids never
	// collide with the reserved world/control contexts.
	ctx := mix64(mix64(c.ctx, c.seq), uint64(int64(color))) | 1
	return &Comm{world: c.world, ctx: ctx, rank: newRank, group: group, nocount: c.nocount}
}

// sizeOf returns the in-memory size of T's top-level representation; used
// only to estimate chunk element counts in SendChunked.
func sizeOf[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// mustUnmarshal decodes a received frame; a codec error here means sender
// and receiver disagree about the element type — a program bug on the order
// of an MPI datatype mismatch, so it panics.
func mustUnmarshal[T any](frame []byte) []T {
	v, err := wire.Unmarshal[T](frame)
	if err != nil {
		panic(fmt.Sprintf("mpi: recv type mismatch: %v", err))
	}
	return v
}

func mustUnmarshalOne[T any](frame []byte) T {
	v, err := wire.UnmarshalOne[T](frame)
	if err != nil {
		panic(fmt.Sprintf("mpi: recv type mismatch: %v", err))
	}
	return v
}

// Send transmits data to dst under tag, encoded as a wire frame. Buffered
// semantics: it never blocks on the receiver, and the caller keeps ownership
// of data (the frame is an independent encoding).
func Send[T any](c *Comm, dst int, tag int64, data []T) {
	frame := wire.Marshal(data)
	c.sendRaw(dst, tag, frame, wire.DataLen(frame))
}

// Recv blocks until the matching Send arrives and returns its decoded
// payload, which never aliases the sender's memory.
func Recv[T any](c *Comm, src int, tag int64) []T {
	return mustUnmarshal[T](c.recvRaw(src, tag))
}

// SendOne transmits a single value.
func SendOne[T any](c *Comm, dst int, tag int64, v T) {
	frame := wire.MarshalOne(v)
	c.sendRaw(dst, tag, frame, wire.DataLen(frame))
}

// RecvOne receives a single value.
func RecvOne[T any](c *Comm, src int, tag int64) T {
	return mustUnmarshalOne[T](c.recvRaw(src, tag))
}

// SendChunked splits data into MaxMessageBytes-sized chunks, mirroring how
// ELBA works around the MPI 2^31-1 count limit for read-sequence buffers.
// The element count is sent first so the receiver can size its buffer.
func SendChunked[T any](c *Comm, dst int, tag int64, data []T) {
	esz := sizeOf[T]()
	if esz == 0 {
		esz = 1
	}
	maxElems := int(MaxMessageBytes / esz)
	if maxElems < 1 {
		maxElems = 1
	}
	SendOne(c, dst, tag, int64(len(data)))
	for off := 0; off < len(data); off += maxElems {
		end := off + maxElems
		if end > len(data) {
			end = len(data)
		}
		Send(c, dst, tag, data[off:end])
	}
}

// RecvChunked receives a buffer sent with SendChunked.
func RecvChunked[T any](c *Comm, src int, tag int64) []T {
	n := RecvOne[int64](c, src, tag)
	out := make([]T, 0, n)
	for int64(len(out)) < n {
		out = append(out, Recv[T](c, src, tag)...)
	}
	return out
}
