// Package mpi implements a simulated distributed-memory message-passing
// runtime with MPI-like semantics.
//
// The ELBA paper targets MPI on thousands of ranks. Go has no MPI ecosystem,
// so this package substitutes a faithful in-process simulation: every rank is
// a goroutine with a private heap, point-to-point messages copy their payload
// through per-rank mailboxes, and the usual collectives (Barrier, Bcast,
// Gather(v), Allgather(v), Alltoall(v), Reduce, Allreduce, ReduceScatter,
// Exscan) are built on top of point-to-point exchange exactly as a small MPI
// implementation would. Communicators can be Split into sub-communicators
// (used for the row/column communicators of the 2D process grid).
//
// Because payloads are copied on send, a rank can never observe another
// rank's memory: algorithmic errors (reading a vector entry the rank does not
// own) fail in tests the same way they would on real distributed hardware.
//
// The runtime also keeps per-rank traffic counters so experiments can report
// machine-independent communication volumes.
package mpi

import (
	"fmt"
	"hash/maphash"
	"runtime/debug"
	"sync/atomic"
	"time"
	"unsafe"
)

// DefaultRecvTimeout bounds how long a Recv waits before the runtime declares
// a deadlock. Simulated runs are local, so a multi-minute wait always means a
// mismatched send/receive pattern; panicking with context beats hanging.
var DefaultRecvTimeout = 120 * time.Second

// MaxMessageBytes mirrors the MPI count limit of 2^31-1 that the paper's
// sequence-communication step must work around. Sends larger than this panic,
// forcing callers to chunk exactly as ELBA does. Tests lower it to exercise
// the chunking path at small scale.
var MaxMessageBytes = int64(1<<31 - 1)

// World owns the mailboxes and counters for one simulated machine.
type World struct {
	size        int
	mailboxes   []*mailbox
	stats       []RankStats
	recvTimeout time.Duration
}

// RankStats counts traffic originated by one rank.
type RankStats struct {
	MsgsSent  int64
	BytesSent int64
	_         [6]int64 // pad to a cache line to avoid false sharing
}

// NewWorld creates a world with p ranks.
func NewWorld(p int) *World {
	if p <= 0 {
		panic(fmt.Sprintf("mpi: world size %d must be positive", p))
	}
	w := &World{
		size:        p,
		mailboxes:   make([]*mailbox, p),
		stats:       make([]RankStats, p),
		recvTimeout: DefaultRecvTimeout,
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// SetRecvTimeout overrides the deadlock watchdog for this world.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Stats returns a snapshot of per-rank traffic counters.
func (w *World) Stats() []RankStats {
	out := make([]RankStats, w.size)
	for i := range out {
		out[i].MsgsSent = atomic.LoadInt64(&w.stats[i].MsgsSent)
		out[i].BytesSent = atomic.LoadInt64(&w.stats[i].BytesSent)
	}
	return out
}

// TotalBytes returns the total bytes sent by all ranks so far.
func (w *World) TotalBytes() int64 {
	var t int64
	for i := range w.stats {
		t += atomic.LoadInt64(&w.stats[i].BytesSent)
	}
	return t
}

// Comm returns the world communicator for the given rank. Each rank goroutine
// must use its own Comm; Comms are not shared between goroutines.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{world: w, ctx: 1, rank: rank, group: group}
}

// RankError reports a panic raised inside one rank of a Run.
type RankError struct {
	Rank  int
	Value any
	Stack string
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v\n%s", e.Rank, e.Value, e.Stack)
}

// Run executes fn on p simulated ranks and waits for all of them. Panics in
// rank goroutines are recovered and returned as errors (first one wins).
func Run(p int, fn func(*Comm)) error {
	w := NewWorld(p)
	return w.Run(fn)
}

// Run executes fn on every rank of the world and waits for completion.
func (w *World) Run(fn func(*Comm)) error {
	errs := make(chan *RankError, w.size)
	done := make(chan struct{})
	var pending atomic.Int64
	pending.Store(int64(w.size))
	for r := 0; r < w.size; r++ {
		c := w.Comm(r)
		go func(rank int, c *Comm) {
			defer func() {
				if v := recover(); v != nil {
					errs <- &RankError{Rank: rank, Value: v, Stack: string(debug.Stack())}
				}
				if pending.Add(-1) == 0 {
					close(done)
				}
			}()
			fn(c)
		}(r, c)
	}
	<-done
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// message is a single point-to-point transmission.
type message struct {
	ctx     uint64 // communicator context id
	src     int    // communicator rank of the sender
	tag     int64
	payload any
	bytes   int64
}

// mailbox is the single-consumer queue of messages addressed to one rank.
// Only the owning rank goroutine consumes; any rank may push.
type mailbox struct {
	mu    chan struct{} // binary semaphore guarding queue
	queue []message
	sig   chan struct{}
}

func newMailbox() *mailbox {
	m := &mailbox{mu: make(chan struct{}, 1), sig: make(chan struct{}, 1)}
	m.mu <- struct{}{}
	return m
}

func (m *mailbox) push(msg message) {
	<-m.mu
	m.queue = append(m.queue, msg)
	m.mu <- struct{}{}
	select {
	case m.sig <- struct{}{}:
	default:
	}
}

// take removes and returns the first message matching (ctx, src, tag),
// preserving FIFO order among matching messages.
func (m *mailbox) take(ctx uint64, src int, tag int64) (message, bool) {
	<-m.mu
	defer func() { m.mu <- struct{}{} }()
	for i, msg := range m.queue {
		if msg.ctx == ctx && msg.src == src && msg.tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg, true
		}
	}
	return message{}, false
}

// pendingDump formats queued messages for deadlock diagnostics.
func (m *mailbox) pendingDump() string {
	<-m.mu
	defer func() { m.mu <- struct{}{} }()
	s := ""
	for i, msg := range m.queue {
		if i == 8 {
			s += fmt.Sprintf(" …(%d more)", len(m.queue)-8)
			break
		}
		s += fmt.Sprintf(" (ctx=%d src=%d tag=%d)", msg.ctx, msg.src, msg.tag)
	}
	return s
}

// Comm is a communicator: a group of ranks with a private context id so
// concurrent collectives on different communicators never interfere.
type Comm struct {
	world *World
	ctx   uint64
	rank  int   // rank within this communicator
	group []int // world rank of each communicator rank
	seq   uint64
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// World returns the underlying world (shared state; read-only use).
func (c *Comm) World() *World { return c.world }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

// BytesSent returns the bytes this rank has sent so far (any communicator).
func (c *Comm) BytesSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].BytesSent)
}

// MsgsSent returns the messages this rank has sent so far.
func (c *Comm) MsgsSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].MsgsSent)
}

// nextSeq reserves a fresh operation sequence number. SPMD programs call
// collectives in the same order on every rank, so sequence numbers line up
// across the communicator without coordination (the MPI matching rule).
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// sendRaw transmits payload to dst (communicator rank) under (ctx, tag).
// The payload must already be an owned copy.
func (c *Comm) sendRaw(dst int, tag int64, payload any, bytes int64) {
	if bytes > MaxMessageBytes {
		panic(fmt.Sprintf("mpi: message of %d bytes exceeds MaxMessageBytes=%d (chunk the send as ELBA does)", bytes, MaxMessageBytes))
	}
	wdst := c.group[dst]
	wsrc := c.group[c.rank]
	atomic.AddInt64(&c.world.stats[wsrc].MsgsSent, 1)
	atomic.AddInt64(&c.world.stats[wsrc].BytesSent, bytes)
	c.world.mailboxes[wdst].push(message{ctx: c.ctx, src: c.rank, tag: tag, payload: payload, bytes: bytes})
}

// recvRaw blocks until a message from src (communicator rank) with tag
// arrives, subject to the world deadlock watchdog.
func (c *Comm) recvRaw(src int, tag int64) any {
	box := c.world.mailboxes[c.group[c.rank]]
	deadline := time.Now().Add(c.world.recvTimeout)
	for {
		if msg, ok := box.take(c.ctx, src, tag); ok {
			return msg.payload
		}
		var timer *time.Timer
		var expire <-chan time.Time
		if c.world.recvTimeout > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				panic(fmt.Sprintf("mpi: rank %d (world %d) deadlocked waiting for ctx=%d src=%d tag=%d; pending:%s",
					c.rank, c.group[c.rank], c.ctx, src, tag, box.pendingDump()))
			}
			timer = time.NewTimer(remain)
			expire = timer.C
		}
		select {
		case <-box.sig:
			if timer != nil {
				timer.Stop()
			}
		case <-expire:
			// Loop re-checks the queue, then panics via the deadline branch.
		}
	}
}

// Split partitions the communicator by color; ranks passing the same color
// form a new communicator ordered by (key, old rank). It must be called by
// every rank of c (a collective), like MPI_Comm_split.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := Allgather(c, ck{Color: color, Key: key, Rank: c.rank})
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	// Insertion sort by (key, rank): deterministic on every rank.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j-1].Key > members[j].Key ||
			(members[j-1].Key == members[j].Key && members[j-1].Rank > members[j].Rank)); j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	// A context id all members derive identically: hash of parent context,
	// split sequence number and color.
	var h maphash.Hash
	h.SetSeed(fixedSeed)
	writeUint64(&h, c.ctx)
	writeUint64(&h, c.seq)
	writeUint64(&h, uint64(int64(color)))
	ctx := h.Sum64() | 1 // never zero
	return &Comm{world: c.world, ctx: ctx, rank: newRank, group: group}
}

// fixedSeed makes Split context ids identical across all ranks of a world.
var fixedSeed = maphash.MakeSeed()

func writeUint64(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// sizeOf returns the in-memory size of T's top-level representation; used
// only for traffic accounting (nested slices count as headers).
func sizeOf[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// Send transmits a copy of data to dst under tag. Buffered semantics: it
// never blocks on the receiver.
func Send[T any](c *Comm, dst int, tag int64, data []T) {
	cp := make([]T, len(data))
	copy(cp, data)
	c.sendRaw(dst, tag, cp, int64(len(cp))*sizeOf[T]())
}

// Recv blocks until the matching Send arrives and returns its payload.
func Recv[T any](c *Comm, src int, tag int64) []T {
	return c.recvRaw(src, tag).([]T)
}

// SendOne transmits a single value.
func SendOne[T any](c *Comm, dst int, tag int64, v T) {
	c.sendRaw(dst, tag, v, sizeOf[T]())
}

// RecvOne receives a single value.
func RecvOne[T any](c *Comm, src int, tag int64) T {
	return c.recvRaw(src, tag).(T)
}

// SendChunked splits data into MaxMessageBytes-sized chunks, mirroring how
// ELBA works around the MPI 2^31-1 count limit for read-sequence buffers.
// The element count is sent first so the receiver can size its buffer.
func SendChunked[T any](c *Comm, dst int, tag int64, data []T) {
	esz := sizeOf[T]()
	if esz == 0 {
		esz = 1
	}
	maxElems := int(MaxMessageBytes / esz)
	if maxElems < 1 {
		maxElems = 1
	}
	SendOne(c, dst, tag, int64(len(data)))
	for off := 0; off < len(data); off += maxElems {
		end := off + maxElems
		if end > len(data) {
			end = len(data)
		}
		Send(c, dst, tag, data[off:end])
	}
}

// RecvChunked receives a buffer sent with SendChunked.
func RecvChunked[T any](c *Comm, src int, tag int64) []T {
	n := RecvOne[int64](c, src, tag)
	out := make([]T, 0, n)
	for int64(len(out)) < n {
		out = append(out, Recv[T](c, src, tag)...)
	}
	return out
}
