// Package mpi implements a simulated distributed-memory message-passing
// runtime with MPI-like semantics.
//
// The ELBA paper targets MPI on thousands of ranks. Go has no MPI ecosystem,
// so this package substitutes a faithful in-process simulation: every rank is
// a goroutine with a private heap, point-to-point messages copy their payload
// through per-rank mailboxes, and the usual collectives (Barrier, Bcast,
// Gather(v), Allgather(v), Alltoall(v), Reduce, Allreduce, ReduceScatter,
// Exscan) are built on top of point-to-point exchange exactly as a small MPI
// implementation would. Communicators can be Split into sub-communicators
// (used for the row/column communicators of the 2D process grid).
//
// Because payloads are copied on send, a rank can never observe another
// rank's memory: algorithmic errors (reading a vector entry the rank does not
// own) fail in tests the same way they would on real distributed hardware.
//
// Besides the blocking operations, the package provides a nonblocking layer
// (Isend/Irecv/Request/Waitall, IBcast, IAlltoallv — see nonblocking.go)
// that lets ranks overlap communication with local computation the way
// diBELLA hides its SUMMA broadcasts and sequence exchanges.
//
// The runtime also keeps per-rank traffic counters — total and
// nonblocking-path bytes/messages plus per-communicator in-flight bytes —
// so experiments can report machine-independent communication volumes and
// how much of them was overlappable.
package mpi

import (
	"fmt"
	"hash/maphash"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/obs"
)

// DefaultRecvTimeout bounds how long a Recv waits before the runtime declares
// a deadlock. Simulated runs are local, so a multi-minute wait always means a
// mismatched send/receive pattern; panicking with context beats hanging.
var DefaultRecvTimeout = 120 * time.Second

// MaxMessageBytes mirrors the MPI count limit of 2^31-1 that the paper's
// sequence-communication step must work around. Sends larger than this panic,
// forcing callers to chunk exactly as ELBA does. Tests lower it to exercise
// the chunking path at small scale.
var MaxMessageBytes = int64(1<<31 - 1)

// World owns the mailboxes and counters for one simulated machine.
type World struct {
	size        int
	mailboxes   []*mailbox
	stats       []RankStats
	recvTimeout time.Duration
	// inflight tracks bytes sent but not yet received, per communicator
	// context id (uint64 → *int64). Incremented at send, decremented when the
	// receiver takes the message; a rank can read its communicator's gauge
	// with Comm.InflightBytes.
	inflight sync.Map
	// Cancellation (see cancel.go): cancelCh is closed exactly once, after
	// cancelErr is set, so readers woken by the close always see the cause.
	cancelMu  sync.Mutex
	cancelCh  chan struct{}
	cancelErr error
	// obs holds the optional tracing/metrics handles (see obs.go). Written
	// only by SetObs before ranks start; read without synchronization after.
	obs *worldObs
}

// RankStats counts traffic originated by one rank. The Async counters are
// the subset of the totals that was sent through the nonblocking layer
// (Isend and the collectives built on it) — the traffic a rank could have
// overlapped with computation; package trace turns their deltas into the
// comm_overlap/comm_exposed split.
type RankStats struct {
	MsgsSent   int64
	BytesSent  int64
	MsgsAsync  int64
	BytesAsync int64
	_          [4]int64 // pad to a cache line to avoid false sharing
}

// NewWorld creates a world with p ranks.
func NewWorld(p int) *World {
	if p <= 0 {
		panic(fmt.Sprintf("mpi: world size %d must be positive", p))
	}
	w := &World{
		size:        p,
		mailboxes:   make([]*mailbox, p),
		stats:       make([]RankStats, p),
		recvTimeout: DefaultRecvTimeout,
		cancelCh:    make(chan struct{}),
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// SetRecvTimeout overrides the deadlock watchdog for this world.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Stats returns a snapshot of per-rank traffic counters.
func (w *World) Stats() []RankStats {
	out := make([]RankStats, w.size)
	for i := range out {
		out[i].MsgsSent = atomic.LoadInt64(&w.stats[i].MsgsSent)
		out[i].BytesSent = atomic.LoadInt64(&w.stats[i].BytesSent)
		out[i].MsgsAsync = atomic.LoadInt64(&w.stats[i].MsgsAsync)
		out[i].BytesAsync = atomic.LoadInt64(&w.stats[i].BytesAsync)
	}
	return out
}

// TotalBytes returns the total bytes sent by all ranks so far.
func (w *World) TotalBytes() int64 {
	var t int64
	for i := range w.stats {
		t += atomic.LoadInt64(&w.stats[i].BytesSent)
	}
	return t
}

// TotalMsgs returns the total messages sent by all ranks so far.
func (w *World) TotalMsgs() int64 {
	var t int64
	for i := range w.stats {
		t += atomic.LoadInt64(&w.stats[i].MsgsSent)
	}
	return t
}

// inflightCounter returns the in-flight byte gauge for a communicator
// context, creating it on first use.
func (w *World) inflightCounter(ctx uint64) *int64 {
	if v, ok := w.inflight.Load(ctx); ok {
		return v.(*int64)
	}
	v, _ := w.inflight.LoadOrStore(ctx, new(int64))
	return v.(*int64)
}

// InflightBytes returns the bytes currently sent but not yet received across
// all communicators of the world.
func (w *World) InflightBytes() int64 {
	var t int64
	w.inflight.Range(func(_, v any) bool {
		t += atomic.LoadInt64(v.(*int64))
		return true
	})
	return t
}

// Comm returns the world communicator for the given rank. Each rank goroutine
// must use its own Comm; Comms are not shared between goroutines.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{world: w, ctx: 1, rank: rank, group: group}
}

// RankError reports a panic raised inside one rank of a Run.
type RankError struct {
	Rank  int
	Value any
	Stack string
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v\n%s", e.Rank, e.Value, e.Stack)
}

// Run executes fn on p simulated ranks and waits for all of them. Panics in
// rank goroutines are recovered and returned as errors (first one wins).
func Run(p int, fn func(*Comm)) error {
	w := NewWorld(p)
	return w.Run(fn)
}

// Run executes fn on every rank of the world and waits for completion.
func (w *World) Run(fn func(*Comm)) error {
	errs := make(chan *RankError, w.size)
	done := make(chan struct{})
	var pending atomic.Int64
	pending.Store(int64(w.size))
	for r := 0; r < w.size; r++ {
		c := w.Comm(r)
		go func(rank int, c *Comm) {
			defer func() {
				if v := recover(); v != nil {
					// Cancellation unwinds ranks by design; only genuine
					// panics become rank errors.
					if _, cancelled := v.(cancelPanic); !cancelled {
						errs <- &RankError{Rank: rank, Value: v, Stack: string(debug.Stack())}
					}
				}
				if pending.Add(-1) == 0 {
					close(done)
				}
			}()
			fn(c)
		}(r, c)
	}
	<-done
	if err := w.Err(); err != nil {
		return err
	}
	select {
	case e := <-errs:
		return e
	default:
		return nil
	}
}

// message is a single point-to-point transmission.
type message struct {
	ctx     uint64 // communicator context id
	src     int    // communicator rank of the sender
	tag     int64
	payload any
	bytes   int64
}

// mailbox is the queue of messages addressed to one rank. Any rank may push;
// the owning rank goroutine AND its posted nonblocking-receive goroutines
// consume concurrently, so wakeups must reach every waiter: push closes the
// current generation channel (a broadcast), and each waiter re-scans the
// queue whenever the generation it grabbed under the lock is closed. A
// single-slot signal channel would wake one arbitrary waiter and strand the
// message's actual addressee until its watchdog timer fired.
type mailbox struct {
	mu    sync.Mutex
	queue []message
	gen   chan struct{} // closed and replaced on every push
	// depth is the optional mpi.mailbox_depth gauge (nil-safe; set by
	// World.SetObs before ranks start).
	depth *obs.Gauge
}

func newMailbox() *mailbox {
	return &mailbox{gen: make(chan struct{})}
}

func (m *mailbox) push(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.depth.Add(1)
	close(m.gen)
	m.gen = make(chan struct{})
	m.mu.Unlock()
}

// take removes and returns the first message matching (ctx, src, tag),
// preserving FIFO order among matching messages. When no match is queued it
// returns the current generation channel, which is closed by the next push —
// grabbing it under the same lock as the scan means a waiter can never miss
// the push that delivers its message.
func (m *mailbox) take(ctx uint64, src int, tag int64) (message, chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if msg.ctx == ctx && msg.src == src && msg.tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.depth.Add(-1)
			return msg, nil, true
		}
	}
	return message{}, m.gen, false
}

// pendingDump formats queued messages for deadlock diagnostics.
func (m *mailbox) pendingDump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ""
	for i, msg := range m.queue {
		if i == 8 {
			s += fmt.Sprintf(" …(%d more)", len(m.queue)-8)
			break
		}
		s += fmt.Sprintf(" (ctx=%d src=%d tag=%d)", msg.ctx, msg.src, msg.tag)
	}
	return s
}

// Comm is a communicator: a group of ranks with a private context id so
// concurrent collectives on different communicators never interfere.
type Comm struct {
	world *World
	ctx   uint64
	rank  int   // rank within this communicator
	group []int // world rank of each communicator rank
	seq   uint64
	// async marks sends issued through the nonblocking layer, counting them
	// into the BytesAsync/MsgsAsync overlap counters. Set only on the private
	// views Isend & friends derive via asyncView; user-held Comms are sync.
	async bool
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// World returns the underlying world (shared state; read-only use).
func (c *Comm) World() *World { return c.world }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

// BytesSent returns the bytes this rank has sent so far (any communicator).
func (c *Comm) BytesSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].BytesSent)
}

// MsgsSent returns the messages this rank has sent so far.
func (c *Comm) MsgsSent() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].MsgsSent)
}

// BytesAsync returns the bytes this rank has sent through the nonblocking
// layer so far (a subset of BytesSent).
func (c *Comm) BytesAsync() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].BytesAsync)
}

// MsgsAsync returns the messages this rank has sent through the nonblocking
// layer so far (a subset of MsgsSent).
func (c *Comm) MsgsAsync() int64 {
	return atomic.LoadInt64(&c.world.stats[c.group[c.rank]].MsgsAsync)
}

// InflightBytes returns the bytes currently sent but not yet received on
// this communicator (all ranks' traffic; a live gauge, not a monotone
// counter). After a Barrier following a fully-drained exchange it is zero.
func (c *Comm) InflightBytes() int64 {
	return atomic.LoadInt64(c.world.inflightCounter(c.ctx))
}

// nextSeq reserves a fresh operation sequence number. SPMD programs call
// collectives in the same order on every rank, so sequence numbers line up
// across the communicator without coordination (the MPI matching rule).
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// sendRaw transmits payload to dst (communicator rank) under (ctx, tag).
// The payload must already be an owned copy.
func (c *Comm) sendRaw(dst int, tag int64, payload any, bytes int64) {
	if bytes > MaxMessageBytes {
		panic(fmt.Sprintf("mpi: message of %d bytes exceeds MaxMessageBytes=%d (chunk the send as ELBA does)", bytes, MaxMessageBytes))
	}
	wdst := c.group[dst]
	wsrc := c.group[c.rank]
	atomic.AddInt64(&c.world.stats[wsrc].MsgsSent, 1)
	atomic.AddInt64(&c.world.stats[wsrc].BytesSent, bytes)
	if c.async {
		atomic.AddInt64(&c.world.stats[wsrc].MsgsAsync, 1)
		atomic.AddInt64(&c.world.stats[wsrc].BytesAsync, bytes)
	}
	atomic.AddInt64(c.world.inflightCounter(c.ctx), bytes)
	if o := c.world.obs; o != nil {
		o.msgBytes[wsrc].Observe(bytes)
		if c.async {
			o.msgBytesAsync[wsrc].Observe(bytes)
		}
		if l := o.lanes[wsrc]; l != nil {
			async := int64(0)
			if c.async {
				async = 1
			}
			l.Instant(0, "mpi", "send",
				obs.Arg{K: "dst", V: int64(wdst)}, obs.Arg{K: "tag", V: tag},
				obs.Arg{K: "bytes", V: bytes}, obs.Arg{K: "async", V: async})
		}
	}
	c.world.mailboxes[wdst].push(message{ctx: c.ctx, src: c.rank, tag: tag, payload: payload, bytes: bytes})
}

// armedNow is pre-closed: blocking receives arm their watchdog immediately.
var armedNow = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// recvRaw blocks until a message from src (communicator rank) with tag
// arrives, subject to the world deadlock watchdog.
func (c *Comm) recvRaw(src int, tag int64) any {
	return c.recvRawArmed(src, tag, armedNow)
}

// recvRawArmed is recvRaw with a deferred deadlock watchdog: the deadline
// starts only once armed is closed. Posted nonblocking receives pass their
// Wait signal, so a receive parked behind a long compute phase (whose
// matching send has legitimately not been posted yet) is never declared
// deadlocked — only a rank actually blocked in Wait/Recv trips the timer.
func (c *Comm) recvRawArmed(src int, tag int64, armed <-chan struct{}) any {
	box := c.world.mailboxes[c.group[c.rank]]
	// Blocked-receive tracing: only direct blocking receives (armed ==
	// armedNow) record a span, and only if the first queue scan misses —
	// posted matchers report their exposed time via Wait instead.
	var lane *obs.Lane
	if o := c.world.obs; o != nil && armed == (<-chan struct{})(armedNow) {
		lane = o.lanes[c.group[c.rank]]
	}
	blockStart := int64(-1)
	var deadline time.Time
	armedCh := armed // set to nil once consumed; a nil case blocks forever
	select {
	case <-armedCh:
		armedCh = nil
		deadline = time.Now().Add(c.world.recvTimeout)
	default:
	}
	for {
		c.world.checkCancel()
		msg, gen, ok := box.take(c.ctx, src, tag)
		if ok {
			atomic.AddInt64(c.world.inflightCounter(c.ctx), -msg.bytes)
			if blockStart >= 0 {
				lane.Span(0, "mpi", "recv.wait", blockStart,
					obs.Arg{K: "src", V: int64(c.group[src])}, obs.Arg{K: "tag", V: tag},
					obs.Arg{K: "bytes", V: msg.bytes})
			}
			return msg.payload
		}
		if lane != nil && blockStart < 0 {
			blockStart = lane.Start()
		}
		var timer *time.Timer
		var expire <-chan time.Time
		if c.world.recvTimeout > 0 && armedCh == nil {
			remain := time.Until(deadline)
			if remain <= 0 {
				panic(fmt.Sprintf("mpi: rank %d (world %d) deadlocked waiting for ctx=%d src=%d tag=%d; pending:%s",
					c.rank, c.group[c.rank], c.ctx, src, tag, box.pendingDump()))
			}
			timer = time.NewTimer(remain)
			expire = timer.C
		}
		select {
		case <-gen:
			if timer != nil {
				timer.Stop()
			}
		case <-armedCh:
			// Wait just started: the deadline runs from here.
			armedCh = nil
			deadline = time.Now().Add(c.world.recvTimeout)
		case <-expire:
			// Loop re-checks the queue, then panics via the deadline branch.
		case <-c.world.cancelCh:
			if timer != nil {
				timer.Stop()
			}
			panic(cancelPanic{c.world.cancelErr})
		}
	}
}

// Split partitions the communicator by color; ranks passing the same color
// form a new communicator ordered by (key, old rank). It must be called by
// every rank of c (a collective), like MPI_Comm_split.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := Allgather(c, ck{Color: color, Key: key, Rank: c.rank})
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	// Insertion sort by (key, rank): deterministic on every rank.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j-1].Key > members[j].Key ||
			(members[j-1].Key == members[j].Key && members[j-1].Rank > members[j].Rank)); j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	// A context id all members derive identically: hash of parent context,
	// split sequence number and color.
	var h maphash.Hash
	h.SetSeed(fixedSeed)
	writeUint64(&h, c.ctx)
	writeUint64(&h, c.seq)
	writeUint64(&h, uint64(int64(color)))
	ctx := h.Sum64() | 1 // never zero
	return &Comm{world: c.world, ctx: ctx, rank: newRank, group: group}
}

// fixedSeed makes Split context ids identical across all ranks of a world.
var fixedSeed = maphash.MakeSeed()

func writeUint64(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// sizeOf returns the in-memory size of T's top-level representation; used
// only for traffic accounting (nested slices count as headers).
func sizeOf[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// Send transmits a copy of data to dst under tag. Buffered semantics: it
// never blocks on the receiver.
func Send[T any](c *Comm, dst int, tag int64, data []T) {
	cp := make([]T, len(data))
	copy(cp, data)
	c.sendRaw(dst, tag, cp, int64(len(cp))*sizeOf[T]())
}

// Recv blocks until the matching Send arrives and returns its payload.
func Recv[T any](c *Comm, src int, tag int64) []T {
	return c.recvRaw(src, tag).([]T)
}

// SendOne transmits a single value.
func SendOne[T any](c *Comm, dst int, tag int64, v T) {
	c.sendRaw(dst, tag, v, sizeOf[T]())
}

// RecvOne receives a single value.
func RecvOne[T any](c *Comm, src int, tag int64) T {
	return c.recvRaw(src, tag).(T)
}

// SendChunked splits data into MaxMessageBytes-sized chunks, mirroring how
// ELBA works around the MPI 2^31-1 count limit for read-sequence buffers.
// The element count is sent first so the receiver can size its buffer.
func SendChunked[T any](c *Comm, dst int, tag int64, data []T) {
	esz := sizeOf[T]()
	if esz == 0 {
		esz = 1
	}
	maxElems := int(MaxMessageBytes / esz)
	if maxElems < 1 {
		maxElems = 1
	}
	SendOne(c, dst, tag, int64(len(data)))
	for off := 0; off < len(data); off += maxElems {
		end := off + maxElems
		if end > len(data) {
			end = len(data)
		}
		Send(c, dst, tag, data[off:end])
	}
}

// RecvChunked receives a buffer sent with SendChunked.
func RecvChunked[T any](c *Comm, src int, tag int64) []T {
	n := RecvOne[int64](c, src, tag)
	out := make([]T, 0, n)
	for int64(len(out)) < n {
		out = append(out, Recv[T](c, src, tag)...)
	}
	return out
}
