package mpi

import (
	"fmt"
	"testing"
)

func BenchmarkSendRecv(b *testing.B) {
	for _, size := range []int{64, 4096, 1 << 20} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			err := Run(2, func(c *Comm) {
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						Send(c, 1, 0, payload)
					} else {
						Recv[byte](c, 0, 0)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAllgatherv(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := Run(p, func(c *Comm) {
				local := make([]int64, 1024)
				for i := 0; i < b.N; i++ {
					Allgatherv(c, local)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := Run(p, func(c *Comm) {
				send := make([][]int64, p)
				for r := range send {
					send[r] = make([]int64, 256)
				}
				for i := 0; i < b.N; i++ {
					Alltoallv(c, send)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := Run(p, func(c *Comm) {
				for i := 0; i < b.N; i++ {
					Barrier(c)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
