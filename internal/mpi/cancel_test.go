package mpi

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutinesBelow polls until the process goroutine count drops back to
// the captured baseline (cancellation unwinds asynchronously).
func waitGoroutinesBelow(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancellation: %d, baseline %d", runtime.NumGoroutine(), base)
}

func TestRunCtxCancelUnblocksBlockedRecv(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := w.RunCtx(ctx, func(c *Comm) {
		if c.Rank() == 0 {
			// Rank 0 blocks on a message nobody sends; the others block in a
			// collective that can never complete without rank 0.
			Recv[int64](c, 1, 999)
			return
		}
		Barrier(c)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx after cancel: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwind", d)
	}
	waitGoroutinesBelow(t, base)
}

func TestRunCtxCancelUnwindsPostedIrecv(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	posted := make(chan struct{})
	go func() {
		<-posted
		cancel()
	}()
	err := w.RunCtx(ctx, func(c *Comm) {
		if c.Rank() == 0 {
			// A posted receive whose matching send never comes: its background
			// matcher must also unwind on cancellation.
			req := Irecv[int64](c, 1, 777)
			close(posted)
			req.Wait()
			return
		}
		Recv[int64](c, 0, 778)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx after cancel: err = %v, want context.Canceled", err)
	}
	waitGoroutinesBelow(t, base)
}

func TestRunCtxPreCancelledDoesNotRun(t *testing.T) {
	w := NewWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := w.RunCtx(ctx, func(c *Comm) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("rank body ran on a pre-cancelled context")
	}
}

func TestCancelledWorldStaysCancelled(t *testing.T) {
	w := NewWorld(2)
	cause := errors.New("operator abort")
	w.Cancel(cause)
	w.Cancel(errors.New("second cause loses"))
	if err := w.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err() = %v, want first cause", err)
	}
	// Both Run and RunCtx refuse a poisoned world.
	if err := w.RunCtx(context.Background(), func(c *Comm) {
		Barrier(c)
	}); !errors.Is(err, cause) {
		t.Fatalf("RunCtx on cancelled world: err = %v, want cause", err)
	}
}

func TestRunCtxNilContextCompletes(t *testing.T) {
	w := NewWorld(4)
	sum := make([]int64, 4)
	err := w.RunCtx(nil, func(c *Comm) {
		vals := Allgather(c, int64(c.Rank()))
		var s int64
		for _, v := range vals {
			s += v
		}
		sum[c.Rank()] = s
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sum {
		if s != 6 {
			t.Fatalf("rank %d: sum = %d, want 6", r, s)
		}
	}
}
