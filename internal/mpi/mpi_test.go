package mpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 9, 16}

func forSizes(t *testing.T, fn func(t *testing.T, p int)) {
	t.Helper()
	for _, p := range testSizes {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) { fn(t, p) })
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []int{1, 2, 3})
		} else {
			got := Recv[int](c, 0, 7)
			if !reflect.DeepEqual(got, []int{1, 2, 3}) {
				panic(fmt.Sprintf("got %v", got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			Send(c, 1, 0, buf)
			buf[0] = 99 // must not be visible to the receiver
			Send(c, 1, 1, []int{0})
		} else {
			got := Recv[int](c, 0, 0)
			Recv[int](c, 0, 1)
			if got[0] != 1 {
				panic("send did not copy its payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 100, []byte("first"))
			Send(c, 1, 200, []byte("second"))
		} else {
			// Receive in reverse tag order.
			b := Recv[byte](c, 0, 200)
			a := Recv[byte](c, 0, 100)
			if string(a) != "first" || string(b) != "second" {
				panic("tag matching broken")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFIFOWithinTag(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				Send(c, 1, 5, []int{i})
			}
		} else {
			for i := 0; i < 10; i++ {
				got := Recv[int](c, 0, 5)
				if got[0] != i {
					panic(fmt.Sprintf("FIFO violated: want %d got %d", i, got[0]))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
	re, ok := err.(*RankError)
	if !ok || re.Rank != 1 {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBarrier(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		var mu sync.Mutex
		phase := make([]int, p)
		err := Run(p, func(c *Comm) {
			mu.Lock()
			phase[c.Rank()] = 1
			mu.Unlock()
			Barrier(c)
			mu.Lock()
			for r, v := range phase {
				if v != 1 {
					panic(fmt.Sprintf("rank %d passed barrier before rank %d arrived", c.Rank(), r))
				}
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBcast(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		for root := 0; root < p; root++ {
			err := Run(p, func(c *Comm) {
				var data []int32
				if c.Rank() == root {
					data = []int32{int32(root), 42, -7}
				}
				got := Bcast(c, root, data)
				want := []int32{int32(root), 42, -7}
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("rank %d: got %v want %v", c.Rank(), got, want))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestGatherAndGatherv(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			got := Gather(c, 0, c.Rank()*10)
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					if got[r] != r*10 {
						panic("gather wrong")
					}
				}
			}
			// Variable-length: rank r contributes r elements.
			local := make([]int, c.Rank())
			for i := range local {
				local[i] = c.Rank()
			}
			gv := Gatherv(c, 0, local)
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					if len(gv[r]) != r {
						panic("gatherv count wrong")
					}
					for _, v := range gv[r] {
						if v != r {
							panic("gatherv value wrong")
						}
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestScatterv(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			var parts [][]string
			if c.Rank() == 0 {
				parts = make([][]string, p)
				for r := range parts {
					for i := 0; i <= r; i++ {
						parts[r] = append(parts[r], fmt.Sprintf("%d-%d", r, i))
					}
				}
			}
			got := Scatterv(c, 0, parts)
			if len(got) != c.Rank()+1 {
				panic("scatterv count wrong")
			}
			if got[0] != fmt.Sprintf("%d-0", c.Rank()) {
				panic("scatterv value wrong")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllgatherAndAllgatherv(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			all := Allgather(c, int64(c.Rank()*c.Rank()))
			for r := 0; r < p; r++ {
				if all[r] != int64(r*r) {
					panic("allgather wrong")
				}
			}
			local := make([]int32, (c.Rank()%3)+1)
			for i := range local {
				local[i] = int32(c.Rank())
			}
			parts := Allgatherv(c, local)
			for r := 0; r < p; r++ {
				if len(parts[r]) != (r%3)+1 {
					panic("allgatherv count wrong")
				}
				for _, v := range parts[r] {
					if v != int32(r) {
						panic("allgatherv value wrong")
					}
				}
			}
			flat, counts := AllgathervFlat(c, local)
			want := 0
			for r := 0; r < p; r++ {
				want += (r % 3) + 1
				if counts[r] != (r%3)+1 {
					panic("flat counts wrong")
				}
			}
			if len(flat) != want {
				panic("flat length wrong")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			send := make([][]int, p)
			for r := 0; r < p; r++ {
				// rank i sends (i+1)*(r+1) copies of i*100+r to rank r
				n := (c.Rank() + 1) * (r + 1) % 5
				for k := 0; k < n; k++ {
					send[r] = append(send[r], c.Rank()*100+r)
				}
			}
			recv := Alltoallv(c, send)
			for r := 0; r < p; r++ {
				wantN := (r + 1) * (c.Rank() + 1) % 5
				if len(recv[r]) != wantN {
					panic(fmt.Sprintf("alltoallv count from %d: got %d want %d", r, len(recv[r]), wantN))
				}
				for _, v := range recv[r] {
					if v != r*100+c.Rank() {
						panic("alltoallv value wrong")
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallvChunkedHonoursLimit(t *testing.T) {
	old := MaxMessageBytes
	MaxMessageBytes = 64 // force chunking of anything bigger than 64 bytes
	defer func() { MaxMessageBytes = old }()
	p := 4
	err := Run(p, func(c *Comm) {
		send := make([][]byte, p)
		for r := 0; r < p; r++ {
			buf := make([]byte, 300+r*17)
			for i := range buf {
				buf[i] = byte((c.Rank() + r + i) % 251)
			}
			send[r] = buf
		}
		recv := AlltoallvChunked(c, send)
		for r := 0; r < p; r++ {
			want := make([]byte, 300+c.Rank()*17)
			for i := range want {
				want[i] = byte((r + c.Rank() + i) % 251)
			}
			if !reflect.DeepEqual(recv[r], want) {
				panic("chunked alltoallv corrupted data")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendPanicsOverLimit(t *testing.T) {
	old := MaxMessageBytes
	MaxMessageBytes = 16
	defer func() { MaxMessageBytes = old }()
	w := NewWorld(2)
	// Rank 1 will block forever once rank 0's send panics; keep the
	// watchdog short so the test finishes promptly.
	w.SetRecvTimeout(200 * time.Millisecond)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]int64, 100)) // 800 bytes > 16
		} else {
			Recv[int64](c, 0, 0)
		}
	})
	if err == nil {
		t.Fatal("expected over-limit send to panic")
	}
}

func TestReduceAllreduce(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		for root := 0; root < p; root += 2 {
			err := Run(p, func(c *Comm) {
				sum := Reduce(c, root, c.Rank()+1, func(a, b int) int { return a + b })
				if c.Rank() == root && sum != p*(p+1)/2 {
					panic(fmt.Sprintf("reduce sum: got %d want %d", sum, p*(p+1)/2))
				}
				mx := Allreduce(c, c.Rank(), func(a, b int) int {
					if a > b {
						return a
					}
					return b
				})
				if mx != p-1 {
					panic("allreduce max wrong")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestReduceSliceAndAllreduceSlice(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			vals := []int64{int64(c.Rank()), int64(c.Rank() * 2), 1}
			got := AllreduceSlice(c, vals, func(a, b int64) int64 { return a + b })
			wantSum := int64(p * (p - 1) / 2)
			if got[0] != wantSum || got[1] != 2*wantSum || got[2] != int64(p) {
				panic(fmt.Sprintf("allreduce slice wrong: %v", got))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestReduceScatterBlocks(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			// Every rank contributes a block of 3 values for every rank:
			// contrib[r][k] = rank*1000 + r*10 + k.
			contrib := make([][]int, p)
			for r := 0; r < p; r++ {
				contrib[r] = []int{c.Rank()*1000 + r*10, c.Rank()*1000 + r*10 + 1, c.Rank()*1000 + r*10 + 2}
			}
			got := ReduceScatterBlocks(c, contrib, func(a, b int) int { return a + b })
			// Expected: sum over ranks i of i*1000 + myrank*10 + k.
			base := 1000 * (p * (p - 1) / 2)
			for k := 0; k < 3; k++ {
				want := base + p*(c.Rank()*10+k)
				if got[k] != want {
					panic(fmt.Sprintf("reduce-scatter: got %d want %d", got[k], want))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestExscan(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			got := Exscan(c, c.Rank()+1, func(a, b int) int { return a + b })
			want := c.Rank() * (c.Rank() + 1) / 2
			if got != want {
				panic(fmt.Sprintf("exscan rank %d: got %d want %d", c.Rank(), got, want))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestSplitRowsAndCols(t *testing.T) {
	// 3x3 grid: split world into row and column communicators and verify
	// collectives stay inside the subgroup.
	p, dim := 9, 3
	err := Run(p, func(c *Comm) {
		row, col := c.Rank()/dim, c.Rank()%dim
		rowComm := c.Split(row, col)
		colComm := c.Split(col, row)
		if rowComm.Size() != dim || colComm.Size() != dim {
			panic("split size wrong")
		}
		if rowComm.Rank() != col || colComm.Rank() != row {
			panic("split rank ordering wrong")
		}
		sum := Allreduce(rowComm, c.Rank(), func(a, b int) int { return a + b })
		wantRow := 0
		for j := 0; j < dim; j++ {
			wantRow += row*dim + j
		}
		if sum != wantRow {
			panic(fmt.Sprintf("row allreduce: got %d want %d", sum, wantRow))
		}
		sumC := Allreduce(colComm, c.Rank(), func(a, b int) int { return a + b })
		wantCol := 0
		for i := 0; i < dim; i++ {
			wantCol += i*dim + col
		}
		if sumC != wantCol {
			panic(fmt.Sprintf("col allreduce: got %d want %d", sumC, wantCol))
		}
		// Concurrent collectives on row and col comms must not cross-match.
		a := Bcast(rowComm, 0, []int{row * 111})
		b := Bcast(colComm, 0, []int{col * 222})
		if a[0] != row*111 || b[0] != col*222 {
			panic("split contexts interfered")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByKeyReordering(t *testing.T) {
	p := 6
	err := Run(p, func(c *Comm) {
		// All same color, keys reverse the order.
		sub := c.Split(0, -c.Rank())
		if sub.Size() != p {
			panic("size")
		}
		if sub.Rank() != p-1-c.Rank() {
			panic(fmt.Sprintf("key reorder wrong: world %d got sub rank %d", c.Rank(), sub.Rank()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]int64, 10)) // 80 bytes
		} else {
			Recv[int64](c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st[0].MsgsSent != 1 || st[0].BytesSent != 80 {
		t.Fatalf("stats: %+v", st[0])
	}
	if w.TotalBytes() != 80 {
		t.Fatalf("total: %d", w.TotalBytes())
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(200 * time.Millisecond)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Recv[int](c, 1, 99) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected deadlock panic")
	}
}

// TestCollectivesMatchSequentialReference drives random sequences of
// collectives and checks them against a sequential model.
func TestCollectivesMatchSequentialReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testSizes[rng.Intn(len(testSizes))]
		n := rng.Intn(20) + 1
		inputs := make([][]int, p)
		for r := range inputs {
			inputs[r] = make([]int, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Intn(1000) - 500
			}
		}
		// Sequential reference: element-wise min over ranks.
		want := make([]int, n)
		copy(want, inputs[0])
		for r := 1; r < p; r++ {
			for i := range want {
				if inputs[r][i] < want[i] {
					want[i] = inputs[r][i]
				}
			}
		}
		ok := true
		var mu sync.Mutex
		err := Run(p, func(c *Comm) {
			got := AllreduceSlice(c, inputs[c.Rank()], func(a, b int) int {
				if a < b {
					return a
				}
				return b
			})
			mu.Lock()
			if !reflect.DeepEqual(got, want) {
				ok = false
			}
			mu.Unlock()
		})
		return err == nil && ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvRandomizedRoundtrip checks that data sent in a random
// all-to-all pattern arrives intact, sorted comparison per destination.
func TestAlltoallvRandomizedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		p := testSizes[rng.Intn(len(testSizes))]
		sends := make([][][]int64, p) // [rank][dest][items]
		for r := 0; r < p; r++ {
			sends[r] = make([][]int64, p)
			for d := 0; d < p; d++ {
				n := rng.Intn(8)
				for k := 0; k < n; k++ {
					sends[r][d] = append(sends[r][d], int64(r)<<32|int64(d)<<16|int64(k))
				}
			}
		}
		var mu sync.Mutex
		received := make([][]int64, p)
		err := Run(p, func(c *Comm) {
			recv := Alltoallv(c, sends[c.Rank()])
			var flat []int64
			for _, part := range recv {
				flat = append(flat, part...)
			}
			mu.Lock()
			received[c.Rank()] = flat
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < p; d++ {
			var want []int64
			for r := 0; r < p; r++ {
				want = append(want, sends[r][d]...)
			}
			got := received[d]
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("P=%d dest=%d: got %v want %v", p, d, got, want)
			}
		}
	}
}
