package mpi

// Collectives built on point-to-point exchange. Every collective must be
// called by all ranks of the communicator in the same order (the standard
// MPI matching rule); each call consumes one sequence number that becomes
// the message tag, so back-to-back collectives never cross-match.

import "repro/internal/mpi/wire"

// collTag derives the private tag for one collective call.
func collTag(c *Comm) int64 {
	return -int64(c.nextSeq())
}

// Barrier blocks until every rank of the communicator has entered it.
func Barrier(c *Comm) {
	tag := collTag(c)
	p := c.Size()
	if p == 1 {
		return
	}
	// Dissemination barrier: log2(p) rounds.
	for off := 1; off < p; off *= 2 {
		dst := (c.rank + off) % p
		src := (c.rank - off + p) % p
		SendOne(c, dst, tag, struct{}{})
		RecvOne[struct{}](c, src, tag)
	}
}

// Bcast distributes root's data to every rank and returns it. Non-root ranks
// may pass nil. Binomial tree, log2(p) rounds.
func Bcast[T any](c *Comm, root int, data []T) []T {
	var frame []byte
	if c.rank == root {
		frame = wire.Marshal(data)
	}
	return mustUnmarshal[T](bcastFrames(c, root, collTag(c), frame, armedNow))
}

// bcastFrames is the binomial-tree broadcast body shared by Bcast and
// IBcast, operating on an encoded frame: the root encodes once and every
// hop forwards the frame verbatim, so all P-1 tree messages carry identical
// bytes and the per-hop counters match a fresh Send exactly. The tag is
// pre-reserved so background goroutines never touch the communicator's
// sequence counter, and the parent receive's deadlock watchdog arms per the
// armed channel (immediately for the blocking Bcast, at Wait for IBcast).
func bcastFrames(c *Comm, root int, tag int64, frame []byte, armed <-chan struct{}) []byte {
	p := c.Size()
	vrank := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := (c.rank - mask + p) % p
			frame = c.recvRawArmed(parent, tag, armed)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < p {
			dst := (c.rank + mask) % p
			c.sendRaw(dst, tag, frame, wire.DataLen(frame))
		}
	}
	return frame
}

// Gather collects one value from every rank at root; root receives a slice
// indexed by rank, others receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	tag := collTag(c)
	if c.rank != root {
		SendOne(c, root, tag, v)
		return nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = RecvOne[T](c, r, tag)
	}
	return out
}

// Gatherv collects a variable-length slice from every rank at root; root
// receives per-rank slices, others nil.
func Gatherv[T any](c *Comm, root int, local []T) [][]T {
	tag := collTag(c)
	if c.rank != root {
		Send(c, root, tag, local)
		return nil
	}
	out := make([][]T, c.Size())
	cp := make([]T, len(local))
	copy(cp, local)
	out[root] = cp
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = Recv[T](c, r, tag)
	}
	return out
}

// Scatterv distributes parts[r] from root to rank r. Non-root ranks pass nil.
func Scatterv[T any](c *Comm, root int, parts [][]T) []T {
	tag := collTag(c)
	if c.rank == root {
		if len(parts) != c.Size() {
			panic("mpi: Scatterv needs one part per rank")
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			Send(c, r, tag, parts[r])
		}
		cp := make([]T, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	return Recv[T](c, root, tag)
}

// Allgather collects one value from every rank on every rank.
func Allgather[T any](c *Comm, v T) []T {
	tag := collTag(c)
	p := c.Size()
	out := make([]T, p)
	out[c.rank] = v
	// Ring: p-1 steps, each forwarding the block received last step.
	cur := v
	curIdx := c.rank
	for step := 0; step < p-1; step++ {
		dst := (c.rank + 1) % p
		src := (c.rank - 1 + p) % p
		type blk struct {
			Idx int
			V   T
		}
		SendOne(c, dst, tag, blk{Idx: curIdx, V: cur})
		b := RecvOne[blk](c, src, tag)
		out[b.Idx] = b.V
		cur, curIdx = b.V, b.Idx
	}
	return out
}

// Allgatherv collects a variable-length slice from every rank on every rank,
// returned as per-rank slices.
func Allgatherv[T any](c *Comm, local []T) [][]T {
	tag := collTag(c)
	p := c.Size()
	out := make([][]T, p)
	cp := make([]T, len(local))
	copy(cp, local)
	out[c.rank] = cp
	cur, curIdx := local, c.rank
	for step := 0; step < p-1; step++ {
		dst := (c.rank + 1) % p
		src := (c.rank - 1 + p) % p
		SendOne(c, dst, tag, int64(curIdx))
		Send(c, dst, tag, cur)
		idx := int(RecvOne[int64](c, src, tag))
		blk := Recv[T](c, src, tag)
		out[idx] = blk
		cur, curIdx = blk, idx
	}
	return out
}

// AllgathervFlat collects variable-length slices and concatenates them in
// rank order, also returning the per-rank counts.
func AllgathervFlat[T any](c *Comm, local []T) ([]T, []int) {
	parts := Allgatherv(c, local)
	counts := make([]int, len(parts))
	total := 0
	for i, p := range parts {
		counts[i] = len(p)
		total += len(p)
	}
	flat := make([]T, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return flat, counts
}

// Alltoallv sends send[r] to rank r and returns recv where recv[r] came from
// rank r. This is the paper's "custom all-to-all" used to redistribute
// matrix triples and read sequences.
func Alltoallv[T any](c *Comm, send [][]T) [][]T {
	tag := collTag(c)
	p := c.Size()
	if len(send) != p {
		panic("mpi: Alltoallv needs one slice per rank")
	}
	recv := make([][]T, p)
	cp := make([]T, len(send[c.rank]))
	copy(cp, send[c.rank])
	recv[c.rank] = cp
	// Pairwise exchange schedule; posts sends first, so it cannot deadlock
	// with buffered semantics.
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		Send(c, dst, tag, send[dst])
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		recv[src] = Recv[T](c, src, tag)
	}
	return recv
}

// AlltoallvChunked is Alltoallv for potentially huge buffers: every pairwise
// message honours MaxMessageBytes via SendChunked, mirroring ELBA's handling
// of the MPI 2^31-1 count limit for read sequences.
func AlltoallvChunked[T any](c *Comm, send [][]T) [][]T {
	tag := collTag(c)
	p := c.Size()
	if len(send) != p {
		panic("mpi: AlltoallvChunked needs one slice per rank")
	}
	recv := make([][]T, p)
	cp := make([]T, len(send[c.rank]))
	copy(cp, send[c.rank])
	recv[c.rank] = cp
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		SendChunked(c, dst, tag, send[dst])
	}
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		recv[src] = RecvChunked[T](c, src, tag)
	}
	return recv
}

// Reduce folds one value per rank with op at root (op must be associative
// and commutative). Non-root ranks receive the zero value.
func Reduce[T any](c *Comm, root int, v T, op func(T, T) T) T {
	tag := collTag(c)
	p := c.Size()
	// Binomial tree reduction in coordinates shifted so root is 0.
	vrank := (c.rank - root + p) % p
	acc := v
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % p
			SendOne(c, parent, tag, acc)
			var zero T
			return zero
		}
		if vrank|mask < p {
			child := ((vrank | mask) + root) % p
			acc = op(acc, RecvOne[T](c, child, tag))
		}
		mask <<= 1
	}
	return acc
}

// Allreduce folds one value per rank with op and distributes the result.
func Allreduce[T any](c *Comm, v T, op func(T, T) T) T {
	total := Reduce(c, 0, v, op)
	res := Bcast(c, 0, []T{total})
	return res[0]
}

// ReduceSlice element-wise folds equal-length slices at root.
func ReduceSlice[T any](c *Comm, root int, vals []T, op func(T, T) T) []T {
	tag := collTag(c)
	p := c.Size()
	vrank := (c.rank - root + p) % p
	acc := make([]T, len(vals))
	copy(acc, vals)
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % p
			Send(c, parent, tag, acc)
			return nil
		}
		if vrank|mask < p {
			child := ((vrank | mask) + root) % p
			other := Recv[T](c, child, tag)
			if len(other) != len(acc) {
				panic("mpi: ReduceSlice length mismatch across ranks")
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
		mask <<= 1
	}
	return acc
}

// AllreduceSlice element-wise folds equal-length slices on every rank.
func AllreduceSlice[T any](c *Comm, vals []T, op func(T, T) T) []T {
	acc := ReduceSlice(c, 0, vals, op)
	return Bcast(c, 0, acc)
}

// ReduceScatterBlocks reduces P per-rank contribution blocks element-wise and
// scatters block r to rank r: rank i passes contrib[r] destined for rank r,
// and receives op-folded contrib_allranks[i]. This is the MPI_Reduce_scatter
// the paper uses to compute global contig sizes.
func ReduceScatterBlocks[T any](c *Comm, contrib [][]T, op func(T, T) T) []T {
	parts := Alltoallv(c, contrib)
	var acc []T
	for _, p := range parts {
		if acc == nil {
			acc = make([]T, len(p))
			copy(acc, p)
			continue
		}
		if len(p) != len(acc) {
			panic("mpi: ReduceScatterBlocks block length mismatch")
		}
		for i := range acc {
			acc[i] = op(acc[i], p[i])
		}
	}
	return acc
}

// Exscan returns the op-fold of the values of ranks strictly below the
// caller (zero value on rank 0); used to assign globally consecutive ids.
func Exscan[T any](c *Comm, v T, op func(T, T) T) T {
	all := Allgather(c, v)
	var acc T
	for r := 0; r < c.rank; r++ {
		if r == 0 {
			acc = all[0]
		} else {
			acc = op(acc, all[r])
		}
	}
	return acc
}
