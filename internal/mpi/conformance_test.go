package mpi

// Transport conformance suite: every behavior the mpi layer promises —
// ordering, matching, collectives, chunking, cancellation — exercised
// through the same table of programs over every registered Transport
// implementation. A new transport earns its place by passing this file
// unchanged (add a row to conformanceTransports); the suite runs under
// -race in CI for both the in-process mailbox and the loopback TCP mesh.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/mpi/transport/tcp"
)

// conformanceTransport builds a fresh world of p ranks over one transport.
type conformanceTransport struct {
	name string
	make func(t *testing.T, p int) *World
}

func conformanceTransports() []conformanceTransport {
	return []conformanceTransport{
		{name: "inproc", make: func(t *testing.T, p int) *World {
			return NewWorld(p)
		}},
		{name: "tcp", make: func(t *testing.T, p int) *World {
			eps, err := tcp.NewLocal(p)
			if err != nil {
				t.Fatalf("tcp mesh: %v", err)
			}
			w := NewWorldTransport(eps...)
			t.Cleanup(func() { w.Close() })
			return w
		}},
	}
}

// forTransports runs fn on a fresh world of every transport × size.
func forTransports(t *testing.T, sizes []int, fn func(t *testing.T, w *World)) {
	t.Helper()
	for _, tr := range conformanceTransports() {
		for _, p := range sizes {
			t.Run(fmt.Sprintf("%s/P=%d", tr.name, p), func(t *testing.T) {
				fn(t, tr.make(t, p))
			})
		}
	}
}

// conformanceSizes keeps the socket meshes small; the inproc-only unit tests
// cover larger worlds.
var conformanceSizes = []int{1, 2, 4}

func TestConformanceFIFOAndTagMatching(t *testing.T) {
	forTransports(t, []int{2}, func(t *testing.T, w *World) {
		err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < 20; i++ {
					Send(c, 1, 5, []int{i})
				}
				Send(c, 1, 100, []byte("first"))
				Send(c, 1, 200, []byte("second"))
			} else {
				for i := 0; i < 20; i++ {
					if got := Recv[int](c, 0, 5); got[0] != i {
						panic(fmt.Sprintf("FIFO violated: want %d got %d", i, got[0]))
					}
				}
				// Receive in reverse tag order: matching is by (src, tag).
				b := Recv[byte](c, 0, 200)
				a := Recv[byte](c, 0, 100)
				if string(a) != "first" || string(b) != "second" {
					panic("tag matching broken")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceSelfSend(t *testing.T) {
	forTransports(t, conformanceSizes, func(t *testing.T, w *World) {
		err := w.Run(func(c *Comm) {
			Send(c, c.Rank(), 3, []int64{int64(c.Rank()), 42})
			got := Recv[int64](c, c.Rank(), 3)
			if got[0] != int64(c.Rank()) || got[1] != 42 {
				panic("self-send corrupted payload")
			}
			r := Irecv[int64](c, c.Rank(), 4)
			Isend(c, c.Rank(), 4, []int64{7}).Wait()
			if v := r.WaitValue(); v[0] != 7 {
				panic("nonblocking self-send corrupted payload")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceZeroLengthAlltoallv(t *testing.T) {
	forTransports(t, conformanceSizes, func(t *testing.T, w *World) {
		err := w.Run(func(c *Comm) {
			p := c.Size()
			send := make([][]int32, p)
			for r := 0; r < p; r++ {
				// Rank i sends r+i elements to rank r — zero-length for the
				// first pair, so empty segments must round-trip cleanly.
				n := (c.Rank() + r) % p
				seg := make([]int32, n)
				for i := range seg {
					seg[i] = int32(c.Rank()*100 + r)
				}
				send[r] = seg
			}
			recv := Alltoallv(c, send)
			for r := 0; r < p; r++ {
				wantN := (r + c.Rank()) % p
				if len(recv[r]) != wantN {
					panic(fmt.Sprintf("rank %d from %d: got %d elems, want %d", c.Rank(), r, len(recv[r]), wantN))
				}
				for _, v := range recv[r] {
					if v != int32(r*100+c.Rank()) {
						panic("zero-length alltoallv corrupted data")
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceChunkedHonoursLimit(t *testing.T) {
	old := MaxMessageBytes
	MaxMessageBytes = 64
	defer func() { MaxMessageBytes = old }()
	forTransports(t, []int{4}, func(t *testing.T, w *World) {
		err := w.Run(func(c *Comm) {
			p := c.Size()
			send := make([][]byte, p)
			for r := 0; r < p; r++ {
				buf := make([]byte, 300+r*17)
				for i := range buf {
					buf[i] = byte((c.Rank() + r + i) % 251)
				}
				send[r] = buf
			}
			recv := AlltoallvChunked(c, send)
			for r := 0; r < p; r++ {
				want := make([]byte, 300+c.Rank()*17)
				for i := range want {
					want[i] = byte((r + c.Rank() + i) % 251)
				}
				if !reflect.DeepEqual(recv[r], want) {
					panic("chunked alltoallv corrupted data")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceInterleavedCollectivesOnSplitComms(t *testing.T) {
	forTransports(t, []int{4}, func(t *testing.T, w *World) {
		err := w.Run(func(c *Comm) {
			row := c.Split(c.Rank()/2, c.Rank()%2)
			col := c.Split(c.Rank()%2, c.Rank()/2)
			// Interleave world, row and col collectives: contexts and
			// per-collective tags must keep them all separate.
			sum := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
			rowSum := Allreduce(row, c.Rank(), func(a, b int) int { return a + b })
			req := IBcast(c, 0, []int{sum})
			colSum := Allreduce(col, c.Rank(), func(a, b int) int { return a + b })
			got := req.WaitValue()
			if sum != 0+1+2+3 || got[0] != sum {
				panic(fmt.Sprintf("world collectives broken: sum=%d bcast=%d", sum, got[0]))
			}
			wantRow := 2*(c.Rank()/2)*2 + 1 // ranks 2k and 2k+1
			if rowSum != wantRow {
				panic(fmt.Sprintf("row sum = %d, want %d", rowSum, wantRow))
			}
			wantCol := c.Rank()%2 + (c.Rank()%2 + 2) // ranks k and k+2
			if colSum != wantCol {
				panic(fmt.Sprintf("col sum = %d, want %d", colSum, wantCol))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceCancelUnblocksReceive(t *testing.T) {
	forTransports(t, []int{2}, func(t *testing.T, w *World) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		err := w.RunCtx(ctx, func(c *Comm) {
			// Every rank blocks on a message nobody sends; only the
			// cancellation can unblock them.
			Recv[int64](c, (c.Rank()+1)%c.Size(), 999)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx after cancel: err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt unwind", d)
		}
	})
}

// TestConformanceFailureDeliveryOrdering pins the failure contract the
// engine's fault handling builds on, at the world level over the socket
// transport (the in-process transport cannot lose a rank by construction —
// its Abort is a no-op and cancellation flows through the World itself):
//
//   - a rank's abort cancels every peer's world with a cause that
//     errors.As-unwraps to a *transport.RankFailure naming the aborting rank;
//   - OnCancel fires exactly once with that cause, and a handler registered
//     after the failure fires immediately with the buffered cause;
//   - messages delivered before the failure stay matchable at the transport,
//     so a receiver can drain what arrived before deciding how to unwind.
func TestConformanceFailureDeliveryOrdering(t *testing.T) {
	const p = 3
	eps, err := tcp.NewLocal(p)
	if err != nil {
		t.Fatalf("tcp mesh: %v", err)
	}
	w := NewWorldTransport(eps...)
	var fired atomic.Int32
	causeCh := make(chan error, 1)
	w.OnCancel(func(err error) {
		fired.Add(1)
		select {
		case causeCh <- err:
		default:
		}
	})
	runErr := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Data first, then death: the tag-1 payload precedes the abort on
			// the wire, so it must survive the failure.
			Send(c, 1, 1, []int64{42})
			eps[0].Abort(-1, "injected fault: rank 0 dies")
		default:
			// Blocked on a message nobody will send; only the failure
			// propagation can unwind this.
			Recv[int64](c, 0, 99)
		}
	})
	if runErr == nil {
		t.Fatal("world survived a rank abort")
	}
	var rf *transport.RankFailure
	if !errors.As(runErr, &rf) {
		t.Fatalf("run error is not rank-attributed: %v", runErr)
	}
	if rf.Rank != 0 {
		t.Fatalf("failure names rank %d, want 0: %v", rf.Rank, runErr)
	}
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnCancel fired %d times, want exactly once", n)
	}
	if cause := <-causeCh; !errors.Is(runErr, cause) && runErr.Error() != cause.Error() {
		t.Fatalf("OnCancel cause %v differs from run error %v", cause, runErr)
	}
	// Late registration replays the buffered cause immediately.
	late := make(chan error, 1)
	w.OnCancel(func(err error) { late <- err })
	select {
	case err := <-late:
		if !errors.As(err, &rf) || rf.Rank != 0 {
			t.Fatalf("late OnCancel cause lost rank attribution: %v", err)
		}
	default:
		t.Fatal("OnCancel on a failed world did not fire immediately")
	}
	// The pre-failure message is still matchable at rank 1's endpoint
	// (scan-then-wait: its reader may still be draining).
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, notify, ok := eps[1].Match(0, 1)
		if ok {
			if v := mustUnmarshal[int64](m.Payload); v[0] != 42 {
				t.Fatalf("pre-failure payload corrupted: %v", v)
			}
			break
		}
		select {
		case <-notify:
		case <-time.After(time.Until(deadline)):
			t.Fatal("message delivered before the failure is no longer matchable")
		}
	}
	w.Close()
}

// TestConformanceCountersEqualAcrossTransports runs one traffic-heavy SPMD
// program on every transport and requires bit-equal byte/message counters —
// the invariant that makes perf numbers comparable across transports.
func TestConformanceCountersEqualAcrossTransports(t *testing.T) {
	type totals struct{ bytes, msgs int64 }
	program := func(c *Comm) {
		p := c.Size()
		send := make([][]int64, p)
		for r := 0; r < p; r++ {
			seg := make([]int64, (c.Rank()+r)%3*5)
			for i := range seg {
				seg[i] = int64(i)
			}
			send[r] = seg
		}
		IAlltoallv(c, send).Wait()
		Bcast(c, 0, []byte("counter probe"))
		Allreduce(c, int64(c.Rank()), func(a, b int64) int64 { return a + b })
		Gatherv(c, 0, []int32{int32(c.Rank())})
		Barrier(c)
	}
	const p = 4
	got := map[string]totals{}
	for _, tr := range conformanceTransports() {
		w := tr.make(t, p)
		if err := w.Run(program); err != nil {
			t.Fatalf("%s: %v", tr.name, err)
		}
		got[tr.name] = totals{w.TotalBytes(), w.TotalMsgs()}
	}
	ref := got["inproc"]
	if ref.bytes == 0 || ref.msgs == 0 {
		t.Fatalf("inproc counted no traffic: %+v", ref)
	}
	for name, tot := range got {
		if tot != ref {
			t.Errorf("%s counters %+v differ from inproc %+v", name, tot, ref)
		}
	}
}
