package mpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestIsendIrecvRoundtrip(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			// Every rank sends its rank id repeated to every other rank,
			// receives with pre-posted Irecvs, and checks contents.
			tag := ReserveTag(c)
			reqs := make([]*RecvRequest[int], p)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				reqs[src] = Irecv[int](c, src, tag)
			}
			for dst := 0; dst < p; dst++ {
				if dst == c.Rank() {
					continue
				}
				Isend(c, dst, tag, []int{c.Rank(), c.Rank() * 10}).Wait()
			}
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				got := reqs[src].WaitValue()
				if !reflect.DeepEqual(got, []int{src, src * 10}) {
					panic(fmt.Sprintf("rank %d: from %d got %v", c.Rank(), src, got))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestIsendSelf(t *testing.T) {
	// A rank may Isend to itself: the buffered send completes immediately and
	// the posted receive matches it (blocking self-sends work for the same
	// reason).
	err := Run(3, func(c *Comm) {
		tag := ReserveTag(c)
		req := Irecv[int](c, c.Rank(), tag)
		Isend(c, c.Rank(), tag, []int{41 + c.Rank()}).Wait()
		got := req.WaitValue()
		if len(got) != 1 || got[0] != 41+c.Rank() {
			panic(fmt.Sprintf("self-send got %v", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvOverlapsCompute(t *testing.T) {
	// The message must land while the receiver is "computing" (not blocked in
	// Wait): after a barrier that orders the send before the check, Done
	// reports completion without any Wait having run.
	err := Run(2, func(c *Comm) {
		const tag = 9
		if c.Rank() == 1 {
			req := Irecv[int](c, 0, tag)
			Barrier(c) // rank 0 sends before entering the barrier
			for !req.Done() {
			} // the matcher drains without Wait being called
			if got := req.WaitValue(); got[0] != 7 {
				panic(fmt.Sprintf("got %v", got))
			}
		} else {
			Send(c, 1, tag, []int{7})
			Barrier(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	err := Run(2, func(c *Comm) {
		const tag = 3
		if c.Rank() == 0 {
			req := Isend(c, 1, tag, []int{1})
			req.Wait()
			func() {
				defer func() {
					if recover() == nil {
						panic("second Wait on a send request did not panic")
					}
				}()
				req.Wait()
			}()
		} else {
			Recv[int](c, 0, tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleWaitRecvPanics(t *testing.T) {
	err := Run(2, func(c *Comm) {
		const tag = 4
		if c.Rank() == 0 {
			Send(c, 1, tag, []int{1})
		} else {
			req := Irecv[int](c, 0, tag)
			req.Wait()
			func() {
				defer func() {
					if recover() == nil {
						panic("second Wait on a recv request did not panic")
					}
				}()
				req.Wait()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallMixedRequests(t *testing.T) {
	err := Run(4, func(c *Comm) {
		tag := ReserveTag(c)
		p := c.Size()
		var reqs []Request
		recvs := make([]*RecvRequest[byte], 0, p-1)
		for off := 1; off < p; off++ {
			src := (c.Rank() - off + p) % p
			r := Irecv[byte](c, src, tag)
			recvs = append(recvs, r)
			reqs = append(reqs, r)
		}
		for off := 1; off < p; off++ {
			dst := (c.Rank() + off) % p
			reqs = append(reqs, Isend(c, dst, tag, []byte{byte(c.Rank())}))
		}
		Waitall(reqs...)
		for _, r := range recvs {
			if len(r.Value()) != 1 {
				panic("recv value missing after Waitall")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIBcastMatchesBcast(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			for root := 0; root < p; root++ {
				var data []int32
				if c.Rank() == root {
					data = []int32{int32(root), 100 + int32(root)}
				}
				got := IBcast(c, root, data).WaitValue()
				want := []int32{int32(root), 100 + int32(root)}
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("rank %d root %d: got %v", c.Rank(), root, got))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestIBcastPrefetchPipeline(t *testing.T) {
	// The SUMMA schedule: several IBcasts with different roots in flight at
	// once, waited in posting order — payloads must never cross rounds.
	forSizes(t, func(t *testing.T, p int) {
		err := Run(p, func(c *Comm) {
			reqs := make([]*BcastRequest[int], p)
			for root := 0; root < p; root++ {
				var data []int
				if c.Rank() == root {
					data = []int{root * 7}
				}
				reqs[root] = IBcast(c, root, data)
			}
			for root := 0; root < p; root++ {
				got := reqs[root].WaitValue()
				if len(got) != 1 || got[0] != root*7 {
					panic(fmt.Sprintf("rank %d round %d: got %v", c.Rank(), root, got))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// alltoallvCases builds a deterministic ragged send matrix including empty
// segments (to every destination from some ranks) and the self segment.
func alltoallvCases(rng *rand.Rand, p, rank int) [][]int64 {
	send := make([][]int64, p)
	for dst := 0; dst < p; dst++ {
		n := rng.Intn(4)
		if (rank+dst)%3 == 0 {
			n = 0 // exercise zero-length segments
		}
		for k := 0; k < n; k++ {
			send[dst] = append(send[dst], int64(rank)<<32|int64(dst)<<16|int64(k))
		}
	}
	return send
}

func TestIAlltoallvMatchesBlocking(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		// Two worlds, same payloads: the blocking and nonblocking alltoallv
		// must deliver identical results and identical traffic counters.
		var syncStats, asyncStats []RankStats
		var syncRes, asyncRes [][][]int64

		runOne := func(async bool) ([]RankStats, [][][]int64) {
			w := NewWorld(p)
			res := make([][][]int64, p)
			err := w.Run(func(c *Comm) {
				rng := rand.New(rand.NewSource(int64(31*p + c.Rank())))
				send := alltoallvCases(rng, p, c.Rank())
				if async {
					res[c.Rank()] = IAlltoallv(c, send).WaitValue()
				} else {
					res[c.Rank()] = Alltoallv(c, send)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			return w.Stats(), res
		}
		syncStats, syncRes = runOne(false)
		asyncStats, asyncRes = runOne(true)

		if !reflect.DeepEqual(syncRes, asyncRes) {
			t.Fatalf("results differ between blocking and nonblocking alltoallv")
		}
		for r := range syncStats {
			if syncStats[r].BytesSent != asyncStats[r].BytesSent || syncStats[r].MsgsSent != asyncStats[r].MsgsSent {
				t.Fatalf("rank %d traffic differs: sync %d B/%d msgs, async %d B/%d msgs",
					r, syncStats[r].BytesSent, syncStats[r].MsgsSent,
					asyncStats[r].BytesSent, asyncStats[r].MsgsSent)
			}
			if syncStats[r].BytesAsync != 0 {
				t.Fatalf("rank %d: blocking run counted %d async bytes", r, syncStats[r].BytesAsync)
			}
			if asyncStats[r].BytesAsync == 0 && asyncStats[r].BytesSent > 0 && p > 1 {
				t.Fatalf("rank %d: nonblocking run counted no async bytes (sent %d)", r, asyncStats[r].BytesSent)
			}
		}
	})
}

func TestIAlltoallvChunkedHonoursLimit(t *testing.T) {
	defer func(old int64) { MaxMessageBytes = old }(MaxMessageBytes)
	MaxMessageBytes = 64 // force chunking of every segment
	err := Run(4, func(c *Comm) {
		p := c.Size()
		send := make([][]int64, p)
		for dst := 0; dst < p; dst++ {
			for k := 0; k < 40; k++ { // 320 bytes per segment → 5 chunks
				send[dst] = append(send[dst], int64(c.Rank()*1000+dst*100+k))
			}
		}
		got := IAlltoallvChunked(c, send).WaitValue()
		for src := 0; src < p; src++ {
			for k := 0; k < 40; k++ {
				if got[src][k] != int64(src*1000+c.Rank()*100+k) {
					panic(fmt.Sprintf("rank %d: bad element from %d", c.Rank(), src))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInflightAccountingDrainsToZero(t *testing.T) {
	err := Run(4, func(c *Comm) {
		send := make([][]int32, c.Size())
		for dst := range send {
			send[dst] = []int32{int32(c.Rank()), int32(dst)}
		}
		IAlltoallv(c, send).Wait()
		// Two barriers: the first orders every rank past its own Wait (all
		// alltoallv messages taken), the second orders every rank past the
		// first barrier's own messages.
		Barrier(c)
		Barrier(c)
		if c.Rank() == 0 {
			// Barrier messages themselves are taken before the sender leaves
			// the barrier, so after the second barrier at most the second
			// barrier's own traffic could linger — and its receives completed
			// too. The world gauge must be zero for this communicator.
			if got := c.InflightBytes(); got != 0 {
				panic(fmt.Sprintf("inflight bytes after drain: %d", got))
			}
		}
		Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvZeroLengthAndSelfOnly(t *testing.T) {
	// Blocking collective edge cases: every segment empty, and traffic only
	// to self — both must round-trip without deadlock in both modes.
	for _, async := range []bool{false, true} {
		err := Run(3, func(c *Comm) {
			p := c.Size()
			empty := make([][]int, p)
			var got [][]int
			if async {
				got = IAlltoallv(c, empty).WaitValue()
			} else {
				got = Alltoallv(c, empty)
			}
			for r := range got {
				if len(got[r]) != 0 {
					panic("zero-length alltoallv produced elements")
				}
			}
			selfOnly := make([][]int, p)
			selfOnly[c.Rank()] = []int{c.Rank() * 3}
			if async {
				got = IAlltoallv(c, selfOnly).WaitValue()
			} else {
				got = Alltoallv(c, selfOnly)
			}
			if len(got[c.Rank()]) != 1 || got[c.Rank()][0] != c.Rank()*3 {
				panic("self segment lost")
			}
		})
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
	}
}

func TestIsendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		const tag = 11
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			Isend(c, 1, tag, buf).Wait()
			buf[0] = 99 // must not be visible to the receiver
			Send(c, 1, tag+1, []int{0})
		} else {
			got := Irecv[int](c, 0, tag).WaitValue()
			Recv[int](c, 0, tag+1)
			if got[0] != 1 {
				panic("Isend did not copy its payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedAsyncAndCollectives(t *testing.T) {
	// A posted IAlltoallv must not cross-match with collectives issued while
	// it is in flight (distinct tags via the shared sequence counter).
	err := Run(4, func(c *Comm) {
		p := c.Size()
		send := make([][]int, p)
		for dst := range send {
			send[dst] = []int{c.Rank()*10 + dst}
		}
		req := IAlltoallv(c, send)
		sum := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
		if sum != 6 {
			panic(fmt.Sprintf("allreduce under in-flight alltoallv: %d", sum))
		}
		got := req.WaitValue()
		for src := 0; src < p; src++ {
			if len(got[src]) != 1 || got[src][0] != src*10+c.Rank() {
				panic(fmt.Sprintf("rank %d: bad part from %d: %v", c.Rank(), src, got[src]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPostedIrecvOutlivesWatchdogWhileComputing(t *testing.T) {
	// The overlap schedule posts receives long before the matching sends
	// exist; the deadlock watchdog must not fire while the request is merely
	// posted (it arms only when Wait blocks).
	w := NewWorld(2)
	w.SetRecvTimeout(100 * time.Millisecond)
	err := w.Run(func(c *Comm) {
		const tag = 21
		if c.Rank() == 0 {
			time.Sleep(300 * time.Millisecond) // compute far past the timeout
			Send(c, 1, tag, []int{5})
		} else {
			req := Irecv[int](c, 0, tag)
			time.Sleep(300 * time.Millisecond) // "compute" with the recv posted
			if got := req.WaitValue(); got[0] != 5 {
				panic("bad payload after deferred wait")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitOnOrphanIrecvTripsWatchdog(t *testing.T) {
	// A rank actually blocked in Wait with no matching send must still be
	// caught by the watchdog and surface as a RankError.
	w := NewWorld(1)
	w.SetRecvTimeout(50 * time.Millisecond)
	err := w.Run(func(c *Comm) {
		Irecv[int](c, 0, 99).Wait() // nothing will ever arrive
	})
	if err == nil {
		t.Fatal("expected the watchdog to fire through Wait")
	}
	if !strings.Contains(err.Error(), "deadlocked") {
		t.Fatalf("unexpected error: %v", err)
	}
}
