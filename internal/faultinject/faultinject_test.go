package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"kill:rank=2,stage=Alignment", Fault{Mode: ModeKill, Rank: 2, Stage: "Alignment", N: 1, Delay: 2 * time.Second}},
		{"hang:rank=1,stage=CountKmer,n=2", Fault{Mode: ModeHang, Rank: 1, Stage: "CountKmer", N: 2, Delay: 2 * time.Second}},
		{"slow:rank=0,stage=ExtractContig,delay=5s", Fault{Mode: ModeSlow, Rank: 0, Stage: "ExtractContig", N: 1, Delay: 5 * time.Second}},
		{"slow:rank=3,stage=FastaReader,n=4,delay=250ms", Fault{Mode: ModeSlow, Rank: 3, Stage: "FastaReader", N: 4, Delay: 250 * time.Millisecond}},
	}
	for _, c := range cases {
		f, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if *f != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, *f, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ spec, frag string }{
		{"kill", "want MODE:"},
		{"boom:rank=1,stage=Alignment", "unknown mode"},
		{"kill:rank=1", "missing stage"},
		{"kill:stage=Alignment", "missing rank"},
		{"kill:rank=-1,stage=Alignment", "bad rank"},
		{"kill:rank=x,stage=Alignment", "bad rank"},
		{"kill:rank=1,stage=", "empty stage"},
		{"kill:rank=1,stage=Alignment,n=0", "bad occurrence count"},
		{"kill:rank=1,stage=Alignment,n=z", "bad occurrence count"},
		{"slow:rank=1,stage=Alignment,delay=nope", "bad delay"},
		{"kill:rank=1,stage=Alignment,color=red", "unknown field"},
		{"kill:rank=1,stage=Alignment,nonsense", "bad field"},
	}
	for _, c := range bad {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): want error, got nil", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.spec, err, c.frag)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Cleanup(func() { Arm(nil) })

	t.Setenv(EnvVar, "")
	if f, err := FromEnv(); err != nil || f != nil {
		t.Fatalf("FromEnv(empty) = %v, %v; want nil, nil", f, err)
	}

	t.Setenv(EnvVar, "kill:rank=2,stage=Alignment")
	f, err := FromEnv()
	if err != nil || f == nil {
		t.Fatalf("FromEnv(valid) = %v, %v", f, err)
	}
	if got := armed.Load(); got != f {
		t.Fatalf("FromEnv did not arm the parsed fault")
	}

	t.Setenv(EnvVar, "garbage")
	if _, err := FromEnv(); err == nil {
		t.Fatal("FromEnv(malformed) = nil error, want error")
	}
	if armed.Load() != nil {
		t.Fatal("malformed spec left a fault armed")
	}
}

func TestAtFiresOnNthOccurrence(t *testing.T) {
	t.Cleanup(func() { Arm(nil); SetAction(nil) })

	var fired []string
	SetAction(func(f *Fault) { fired = append(fired, f.String()) })

	Arm(&Fault{Mode: ModeKill, Rank: 2, Stage: "Alignment", N: 2})

	At("Alignment", 1) // wrong rank
	At("CountKmer", 2) // wrong stage
	At("Alignment", 2) // 1st occurrence: below n
	if len(fired) != 0 {
		t.Fatalf("fault fired early: %v", fired)
	}
	At("Alignment", 2) // 2nd occurrence: fires
	if len(fired) != 1 {
		t.Fatalf("fault did not fire on nth occurrence: %v", fired)
	}
	At("Alignment", 2) // 3rd occurrence: already spent
	if len(fired) != 1 {
		t.Fatalf("fault fired more than once: %v", fired)
	}
}

func TestAtDisarmed(t *testing.T) {
	t.Cleanup(func() { Arm(nil); SetAction(nil) })
	var fired int
	SetAction(func(*Fault) { fired++ })
	Arm(nil)
	At("Alignment", 2)
	if fired != 0 {
		t.Fatal("disarmed fault fired")
	}
}

func TestSlowSleeps(t *testing.T) {
	t.Cleanup(func() { Arm(nil) })
	Arm(&Fault{Mode: ModeSlow, Rank: 0, Stage: "CountKmer", N: 1, Delay: 50 * time.Millisecond})
	start := time.Now()
	At("CountKmer", 0)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("slow fault slept %v, want ≥ 50ms", d)
	}
}
