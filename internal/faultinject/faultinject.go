// Package faultinject arms deterministic faults for the recovery tests and
// the nightly chaos job: kill, hang or slow one rank when it reaches a named
// pipeline stage for the nth time. A fault is dormant until armed — by the
// ELBA_FAULT environment variable in a worker process, or by Arm in a test —
// and the hooks compiled into the engine's stage boundaries reduce to one
// atomic load when nothing is armed, so production runs pay nothing.
//
// Spec syntax (the ELBA_FAULT value):
//
//	MODE:rank=R,stage=S[,n=N][,delay=D]
//
//	kill:rank=2,stage=Alignment          exit the process as rank 2 enters Alignment
//	hang:rank=1,stage=CountKmer,n=2      freeze (SIGSTOP) on the 2nd entry
//	slow:rank=0,stage=ExtractContig,delay=5s   sleep 5s at the boundary
//
// Modes:
//
//   - kill — os.Exit(ExitKilled): the abrupt process death a crashed or
//     OOM-killed rank produces. Peers see a broken connection.
//   - hang — SIGSTOP to the own process: everything freezes (compute,
//     socket readers, heartbeats) with every connection left open — the
//     wedged-but-not-dead failure only heartbeat timeouts can surface.
//   - slow — sleep for delay (default 2s): exercises straggler tolerance
//     without failing anything.
//
// n counts occurrences of the (rank, stage) boundary within one process
// lifetime (default 1: the first). Supervised relaunch strips ELBA_FAULT
// from the worker environment, so an injected fault fires once per job, not
// once per attempt.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// EnvVar is the environment variable FromEnv reads the fault spec from.
const EnvVar = "ELBA_FAULT"

// ExitKilled is the exit code of a kill-mode fault — distinct from the
// ordinary failure exit (1) so the supervisor's classification and the chaos
// job can tell an injected kill from a genuine assembly error.
const ExitKilled = 87

// Fault modes.
const (
	ModeKill = "kill"
	ModeHang = "hang"
	ModeSlow = "slow"
)

// Fault is one armed fault: mode applied to rank when it enters stage for
// the nth time.
type Fault struct {
	Mode  string
	Rank  int
	Stage string
	N     int           // occurrence count to trigger on (1 = first)
	Delay time.Duration // slow mode: how long to sleep
}

// String renders the fault in spec syntax.
func (f *Fault) String() string {
	s := fmt.Sprintf("%s:rank=%d,stage=%s,n=%d", f.Mode, f.Rank, f.Stage, f.N)
	if f.Mode == ModeSlow {
		s += ",delay=" + f.Delay.String()
	}
	return s
}

// Parse decodes a fault spec (see the package comment for syntax).
func Parse(spec string) (*Fault, error) {
	mode, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("faultinject: spec %q: want MODE:rank=R,stage=S[,n=N][,delay=D]", spec)
	}
	switch mode {
	case ModeKill, ModeHang, ModeSlow:
	default:
		return nil, fmt.Errorf("faultinject: spec %q: unknown mode %q (want kill|hang|slow)", spec, mode)
	}
	f := &Fault{Mode: mode, Rank: -1, N: 1, Delay: 2 * time.Second}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: spec %q: bad field %q (want key=value)", spec, kv)
		}
		switch k {
		case "rank":
			r, err := strconv.Atoi(v)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("faultinject: spec %q: bad rank %q", spec, v)
			}
			f.Rank = r
		case "stage":
			if v == "" {
				return nil, fmt.Errorf("faultinject: spec %q: empty stage", spec)
			}
			f.Stage = v
		case "n":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: spec %q: bad occurrence count %q (want ≥ 1)", spec, v)
			}
			f.N = n
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: spec %q: bad delay %q", spec, v)
			}
			f.Delay = d
		default:
			return nil, fmt.Errorf("faultinject: spec %q: unknown field %q", spec, k)
		}
	}
	if f.Rank < 0 {
		return nil, fmt.Errorf("faultinject: spec %q: missing rank", spec)
	}
	if f.Stage == "" {
		return nil, fmt.Errorf("faultinject: spec %q: missing stage", spec)
	}
	return f, nil
}

// armed holds the active fault (nil when disarmed) and its occurrence count.
var (
	mu       sync.Mutex
	armed    atomic.Pointer[Fault]
	hits     int
	onAction func(f *Fault) // test override for the kill/hang actions
)

// Arm activates f process-wide (nil disarms) and resets the occurrence
// counter. Tests arm directly; workers arm from the environment.
func Arm(f *Fault) {
	mu.Lock()
	defer mu.Unlock()
	hits = 0
	armed.Store(f)
}

// FromEnv parses EnvVar and arms the result. An unset or empty variable
// disarms and returns nil; a malformed spec is returned as an error with
// nothing armed (a chaos job with a typo must fail loudly, not run the
// undisturbed assembly and "pass").
func FromEnv() (*Fault, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		Arm(nil)
		return nil, nil
	}
	f, err := Parse(spec)
	if err != nil {
		Arm(nil)
		return nil, err
	}
	Arm(f)
	return f, nil
}

// SetAction overrides the kill and hang actions (tests only: an in-process
// test cannot os.Exit). fn receives the fault that fired; nil restores the
// real actions.
func SetAction(fn func(f *Fault)) {
	mu.Lock()
	defer mu.Unlock()
	onAction = fn
}

// At is the injection hook: the engine calls it as world rank `rank` reaches
// the named stage boundary. When the armed fault matches (rank, stage) and
// this is its nth occurrence, the fault fires; otherwise At is one atomic
// load and a comparison.
func At(stage string, rank int) {
	f := armed.Load()
	if f == nil || f.Rank != rank || f.Stage != stage {
		return
	}
	mu.Lock()
	hits++
	fire := hits == f.N
	act := onAction
	mu.Unlock()
	if !fire {
		return
	}
	if act != nil && f.Mode != ModeSlow {
		act(f)
		return
	}
	switch f.Mode {
	case ModeKill:
		fmt.Fprintf(os.Stderr, "faultinject: killing rank %d at stage %s (exit %d)\n", rank, stage, ExitKilled)
		os.Exit(ExitKilled)
	case ModeHang:
		fmt.Fprintf(os.Stderr, "faultinject: hanging rank %d at stage %s (SIGSTOP)\n", rank, stage)
		// Freeze the whole process — compute, socket readers, heartbeats —
		// with every connection still open: the failure only a peer's
		// heartbeat timeout can detect. SIGCONT resumes it (the supervisor
		// kills stopped workers outright).
		syscall.Kill(os.Getpid(), syscall.SIGSTOP)
	case ModeSlow:
		fmt.Fprintf(os.Stderr, "faultinject: slowing rank %d at stage %s by %v\n", rank, stage, f.Delay)
		time.Sleep(f.Delay)
	}
}
