package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

func TestExtendExactMatch(t *testing.T) {
	p := DefaultParams(10)
	s := []byte("ACGTACGTAC")
	score, si, ti := extend(s, s, p)
	if score != int32(len(s)) || si != int32(len(s)) || ti != int32(len(s)) {
		t.Fatalf("score=%d si=%d ti=%d", score, si, ti)
	}
}

func TestExtendStopsAtDivergence(t *testing.T) {
	p := DefaultParams(4)
	s := []byte("AAAAAAAAAA" + "CCCCCCCCCCCCCCCC")
	u := []byte("AAAAAAAAAA" + "GGGGGGGGGGGGGGGG")
	score, si, ti := extend(s, u, p)
	if score != 10 || si != 10 || ti != 10 {
		t.Fatalf("divergence: score=%d si=%d ti=%d, want 10,10,10", score, si, ti)
	}
}

func TestExtendCrossesSubstitution(t *testing.T) {
	p := DefaultParams(10)
	a := []byte("ACGTACGTAAACGTACGTAC")
	b := append([]byte(nil), a...)
	b[10] = 'T' // one substitution in the middle (A->T)
	score, si, ti := extend(a, b, p)
	if si != int32(len(a)) || ti != int32(len(b)) {
		t.Fatalf("did not cross substitution: si=%d ti=%d", si, ti)
	}
	// 19 matches + 1 mismatch (-2) = 17.
	if score != int32(len(a))-3 {
		t.Fatalf("score=%d want %d", score, len(a)-3)
	}
}

func TestExtendCrossesIndel(t *testing.T) {
	p := DefaultParams(12)
	a := []byte("ACGTACGTACGTACGTACGT")
	// b = a with one base deleted at position 9.
	b := append(append([]byte(nil), a[:9]...), a[10:]...)
	score, si, ti := extend(a, b, p)
	if si != int32(len(a)) || ti != int32(len(b)) {
		t.Fatalf("did not cross deletion: si=%d ti=%d (lens %d %d)", si, ti, len(a), len(b))
	}
	// 19 matches + 1 gap (-2) = 17.
	if score != 17 {
		t.Fatalf("score=%d want 17", score)
	}
}

func TestExtendEmptyInputs(t *testing.T) {
	p := DefaultParams(5)
	if s, i, j := extend(nil, []byte("ACGT"), p); s != 0 || i != 0 || j != 0 {
		t.Fatal("empty s must be zero extension")
	}
	if s, i, j := extend([]byte("ACGT"), nil, p); s != 0 || i != 0 || j != 0 {
		t.Fatal("empty t must be zero extension")
	}
}

func TestSeedExtendPerfectOverlapForward(t *testing.T) {
	// u suffix overlaps v prefix by 30 bases.
	g := readsim.Genome(readsim.GenomeConfig{Length: 200, Seed: 1})
	u, v := g[:120], g[90:]
	k := int32(15)
	// Seed: k-mer at u position 95 == v position 5.
	a := SeedExtend(u, v, k, Seed{PU: 95, PV: 5, RC: false}, DefaultParams(15))
	if a.BU != 90 || a.EU != 120 || a.BV != 0 || a.EV != 30 {
		t.Fatalf("coords: u[%d,%d) v[%d,%d), want u[90,120) v[0,30)", a.BU, a.EU, a.BV, a.EV)
	}
	if a.Score != 30 {
		t.Fatalf("score=%d want 30", a.Score)
	}
	if a.RC {
		t.Fatal("RC must be false")
	}
}

func TestSeedExtendPerfectOverlapRC(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 200, Seed: 2})
	u := g[:120]
	v := dna.RevComp(g[90:]) // v is the reverse complement of the genome tail
	k := int32(15)
	// The shared canonical k-mer at genome position 95: on u it starts at 95;
	// on v (forward coords of the stored read) it starts at LV-(95-90)-k =
	// len(v) - 5 - 15.
	pv := int32(len(v)) - 5 - k
	a := SeedExtend(u, v, k, Seed{PU: 95, PV: pv, RC: true}, DefaultParams(15))
	if a.BU != 90 || a.EU != 120 {
		t.Fatalf("u coords [%d,%d), want [90,120)", a.BU, a.EU)
	}
	// On v forward coords the overlap is the last 30 bases.
	if a.BV != int32(len(v))-30 || a.EV != int32(len(v)) {
		t.Fatalf("v coords [%d,%d), want [%d,%d)", a.BV, a.EV, len(v)-30, len(v))
	}
	if !a.RC {
		t.Fatal("RC must be true")
	}
}

func TestSeedExtendWithErrors(t *testing.T) {
	// Two erroneous reads drawn from overlapping windows must still align
	// across most of the true overlap at a 3% error rate.
	g := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	_ = rng
	reads := readsim.Simulate(g, readsim.ReadConfig{Depth: 0.1, MeanLen: 1500, ErrorRate: 0.03, Seed: 5, ForwardOnly: true})
	if len(reads) < 1 {
		t.Skip("no reads")
	}
	u := g[:2000]
	v := reads[0].Seq
	// Find a shared exact 17-mer as seed.
	k := 17
	idx := map[string]int{}
	for i := 0; i+k <= len(u); i++ {
		idx[string(u[i:i+k])] = i
	}
	seedFound := false
	var seed Seed
	for j := 0; j+k <= len(v); j++ {
		if i, ok := idx[string(v[j:j+k])]; ok {
			seed = Seed{PU: int32(i), PV: int32(j)}
			seedFound = true
			break
		}
	}
	if !seedFound {
		t.Skip("no shared seed at this error rate")
	}
	a := SeedExtend(u, v, int32(k), seed, DefaultParams(25))
	alnLenV := a.EV - a.BV
	trueOverlap := int32(min(reads[0].End, 2000) - reads[0].Pos)
	if trueOverlap <= 0 {
		t.Skip("read does not overlap the window")
	}
	if alnLenV < trueOverlap*7/10 {
		t.Fatalf("aligned %d of %d true overlap", alnLenV, trueOverlap)
	}
}

func TestBestPicksHigherScore(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 300, Seed: 6})
	u, v := g[:200], g[150:]
	k := int32(15)
	good := Seed{PU: 160, PV: 10}
	// A bogus seed pointing at unrelated regions extends poorly.
	bogus := Seed{PU: 10, PV: 60}
	a := Best(u, v, k, []Seed{bogus, good}, DefaultParams(15))
	if a.EU-a.BU < 40 {
		t.Fatalf("Best picked a poor alignment: u span %d", a.EU-a.BU)
	}
}

func TestXDropLimitsWastedWork(t *testing.T) {
	// Unrelated sequences must terminate with a short extension, not scan
	// the whole quadratic table.
	a := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 7})
	b := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 8})
	score, si, ti := extend(a, b, DefaultParams(8))
	if si > 200 || ti > 200 {
		t.Fatalf("x-drop failed to stop: si=%d ti=%d score=%d", si, ti, score)
	}
}
