// Package align implements the x-drop seed-and-extend pairwise aligner used
// for the Alignment stage of Algorithm 1 (the SeqAn/LOGAN substitute): from
// a shared k-mer seed, a banded antidiagonal dynamic program extends the
// alignment left and right, pruning cells whose score falls more than x
// below the running best (Zhang et al.'s x-drop rule). The x-drop can stop
// an extension early, which is exactly why the string graph stores post(e)
// (§4.4).
package align

import (
	"repro/internal/bidir"
	"repro/internal/dna"
)

// Params are the scoring parameters; the paper runs ELBA with x = 15 for the
// low-error datasets and x = 7 for H. sapiens.
type Params struct {
	Match    int32 // score per matching base (> 0)
	Mismatch int32 // score per mismatching base (< 0)
	Gap      int32 // score per inserted/deleted base (< 0)
	XDrop    int32 // give up when score < best - XDrop
	// Cells, when non-nil, accumulates the number of DP cells visited — the
	// work counter behind the performance model (package perfmodel).
	Cells *int64
}

// DefaultParams uses +1 match, -2 mismatch, -2 gap. (BELLA scores +1/-1/-1,
// but with linear gaps that scheme has a positive expected score drift on
// random DNA — the Chvátal–Sankoff constant for 4 letters is ≈0.65 — so an
// x-drop would never fire; -2 penalties restore the negative drift that
// makes the x-drop terminate while still crossing isolated errors.)
func DefaultParams(xdrop int32) Params {
	return Params{Match: 1, Mismatch: -2, Gap: -2, XDrop: xdrop}
}

const negInf = int32(-1 << 30)

// extend runs a gapped x-drop extension of s against t starting at (0,0) and
// moving forward. Cell (i, j) scores the best alignment of s[0:i) with
// t[0:j); it returns the best score and its half-open extents (si, ti).
func extend(s, t []byte, p Params) (score, si, ti int32) {
	ns, nt := int32(len(s)), int32(len(t))
	if ns == 0 || nt == 0 {
		return 0, 0, 0
	}
	// Antidiagonal DP: cell (i, j) lives on antidiagonal d = i + j; arrays
	// are indexed by i-lo for the active band [lo, hi] of each antidiagonal.
	// Only the band of live (un-pruned) cells is visited: the x-drop keeps
	// it O(XDrop) wide, so a perfect overlap costs O(len · band), not
	// O(len²).
	best, bi, bj := int32(0), int32(0), int32(0)
	var cells int64
	defer func() {
		if p.Cells != nil {
			*p.Cells += cells
		}
	}()
	prev1 := []int32{0} // antidiagonal 0: the single cell (0,0)
	lo1, hi1 := int32(0), int32(0)
	prev2 := []int32(nil)
	lo2, hi2 := int32(0), int32(-1)
	for d := int32(1); d <= ns+nt; d++ {
		// Geometric bounds of the antidiagonal...
		lo := d - nt
		if lo < 0 {
			lo = 0
		}
		hi := d
		if hi > ns {
			hi = ns
		}
		// ...intersected with cells reachable from the live bands of the
		// two previous antidiagonals (moves: i-1 from d-2 and d-1, i from
		// d-1).
		reachLo := lo1
		if lo2 < reachLo {
			reachLo = lo2
		}
		reachHi := hi1 + 1
		if hi2+1 > reachHi {
			reachHi = hi2 + 1
		}
		if reachLo > lo {
			lo = reachLo
		}
		if reachHi < hi {
			hi = reachHi
		}
		if lo > hi {
			break
		}
		cur := make([]int32, hi-lo+1)
		cells += int64(hi - lo + 1)
		alive := false
		liveLo, liveHi := hi+1, lo-1
		for i := lo; i <= hi; i++ {
			j := d - i
			v := negInf
			// Diagonal move (match/mismatch) from (i-1, j-1) on d-2.
			if i > 0 && j > 0 && prev2 != nil {
				pi := i - 1 - lo2
				if pi >= 0 && pi < int32(len(prev2)) && prev2[pi] > negInf/2 {
					sc := p.Mismatch
					if s[i-1] == t[j-1] {
						sc = p.Match
					}
					if w := prev2[pi] + sc; w > v {
						v = w
					}
				}
			}
			// Gap moves from d-1: (i-1, j) and (i, j-1).
			if i > 0 {
				pi := i - 1 - lo1
				if pi >= 0 && pi < int32(len(prev1)) && prev1[pi] > negInf/2 {
					if w := prev1[pi] + p.Gap; w > v {
						v = w
					}
				}
			}
			if j > 0 {
				pi := i - lo1
				if pi >= 0 && pi < int32(len(prev1)) && prev1[pi] > negInf/2 {
					if w := prev1[pi] + p.Gap; w > v {
						v = w
					}
				}
			}
			// X-drop prune.
			if v < best-p.XDrop {
				v = negInf
			} else if v > negInf/2 {
				alive = true
				if i < liveLo {
					liveLo = i
				}
				if i > liveHi {
					liveHi = i
				}
				if v > best || (v == best && i+j > bi+bj) || (v == best && i+j == bi+bj && i > bi) {
					best, bi, bj = v, i, j
				}
			}
			cur[i-lo] = v
		}
		if !alive {
			break
		}
		// Shrink the stored band to the live cells.
		prev2, lo2, hi2 = prev1, lo1, hi1
		prev1, lo1, hi1 = cur[liveLo-lo:liveHi-lo+1], liveLo, liveHi
	}
	return best, bi, bj
}

// Scratch holds the reusable byte buffers of the seed-extension wrapper: the
// reverse complement of v for RC seeds and the two reversed prefixes of the
// left extension. Aligner backends embed one per instance (instances are
// single-goroutine by contract), so the per-alignment RevComp/reverse copies
// of SeedExtendWith stop allocating on the Alignment hot path. The audited
// alternative — dna.RevCompInPlace on v itself — is off the table because u
// and v alias the rank's shared row/column sequence stores.
type Scratch struct {
	rc, ru, rv []byte
}

// reverseInto writes the reverse of src into buf and returns the filled
// slice.
func reverseInto(buf, src []byte) []byte {
	if cap(buf) < len(src) {
		buf = make([]byte, len(src))
	}
	buf = buf[:len(src)]
	for i, b := range src {
		buf[len(src)-1-i] = b
	}
	return buf
}

// Seed is a shared k-mer occurrence: the window starts at PU on u (forward
// coords) and PV on v (forward coords); RC says the canonical k-mer appears
// with opposite orientations, i.e. v overlaps u's reverse complement.
type Seed struct {
	PU, PV int32
	RC     bool
}

// ExtendFunc is the extension primitive an alignment backend supplies: the
// best-scoring local extension of s versus t starting at (0,0) and moving
// forward, returning the classic (match/mismatch/gap) score and the half-open
// extents reached on each sequence. Both the x-drop DP and the wavefront
// aligner (package wfa) implement this contract.
type ExtendFunc func(s, t []byte) (score, si, ti int32)

// SeedExtend aligns u and v around the seed and returns the alignment in
// forward coordinates of both reads (a bidir.Aln with U/V ids left zero for
// the caller to fill).
func SeedExtend(u, v []byte, k int32, seed Seed, p Params) bidir.Aln {
	return SeedExtendWith(u, v, k, seed, p.Match,
		func(s, t []byte) (int32, int32, int32) { return extend(s, t, p) })
}

// SeedExtendWith runs the seed-anchored bidirectional extension with an
// arbitrary extension primitive: right extension from the seed end, left
// extension on the reversed prefixes, reverse-complement handling for RC
// seeds. Backends share this wrapper so their coordinate semantics (and the
// agreement tests built on them) are identical by construction. It allocates
// fresh working copies per call; backends hold a Scratch and call
// SeedExtendWithScratch instead.
func SeedExtendWith(u, v []byte, k int32, seed Seed, matchScore int32, ext ExtendFunc) bidir.Aln {
	return SeedExtendWithScratch(new(Scratch), u, v, k, seed, matchScore, ext)
}

// SeedExtendWithScratch is SeedExtendWith with caller-owned buffers: the
// reverse-complement and reversed-prefix copies land in sc and are reused
// across calls.
func SeedExtendWithScratch(sc *Scratch, u, v []byte, k int32, seed Seed, matchScore int32, ext ExtendFunc) bidir.Aln {
	work := v
	pv := seed.PV
	if seed.RC {
		// Align u against revcomp(v); the seed window [PV, PV+k) on v maps
		// to [LV-PV-k, LV-PV) on revcomp(v).
		sc.rc = dna.RevCompInto(sc.rc, v)
		work = sc.rc
		pv = int32(len(v)) - seed.PV - k
	}
	// Right extension from the seed end.
	rs, rExtU, rExtV := ext(u[seed.PU+k:], work[pv+k:])
	// Left extension: reverse the prefixes.
	sc.ru = reverseInto(sc.ru, u[:seed.PU])
	sc.rv = reverseInto(sc.rv, work[:pv])
	ls, lExtU, lExtV := ext(sc.ru, sc.rv)
	score := rs + ls + k*matchScore
	bu, eu := seed.PU-lExtU, seed.PU+k+rExtU
	bw, ew := pv-lExtV, pv+k+rExtV
	a := bidir.Aln{
		BU: bu, EU: eu,
		RC:    seed.RC,
		Score: score,
		LU:    int32(len(u)), LV: int32(len(v)),
	}
	if seed.RC {
		// Map [bw, ew) on revcomp(v) back to forward coordinates.
		a.BV, a.EV = int32(len(v))-ew, int32(len(v))-bw
	} else {
		a.BV, a.EV = bw, ew
	}
	return a
}

// Best runs SeedExtend for every seed with the given params — BestOf over
// an aligner view that honors p verbatim (including any Cells pointer).
func Best(u, v []byte, k int32, seeds []Seed, p Params) bidir.Aln {
	return BestOf(paramsAligner{p}, u, v, k, seeds)
}

// paramsAligner adapts raw Params to the Aligner interface without taking
// over the work counter the way NewXDrop does; safe to use from multiple
// goroutines as long as p.Cells is nil.
type paramsAligner struct{ p Params }

func (a paramsAligner) Name() string { return "xdrop" }
func (a paramsAligner) Work() int64  { return 0 }
func (a paramsAligner) SeedExtend(u, v []byte, k int32, seed Seed) Result {
	return SeedExtend(u, v, k, seed, a.p)
}
