package align

import "repro/internal/bidir"

// Result is the outcome of a seed-and-extend alignment: score and half-open
// extents on both reads in forward coordinates. It is an alias of bidir.Aln
// so backends plug straight into the overlap matrix without conversion.
type Result = bidir.Aln

// Aligner is the pluggable backend contract for the Alignment stage: a seed
// goes in, a Result-compatible score and extents come out. Implementations
// exist for the x-drop DP (this package) and wavefront alignment (package
// wfa); the overlap stage dispatches through this interface, one instance
// per simulated rank (instances need not be safe for concurrent use).
type Aligner interface {
	// Name identifies the backend ("xdrop", "wfa").
	Name() string
	// SeedExtend aligns u and v around the shared k-mer seed.
	SeedExtend(u, v []byte, k int32, seed Seed) Result
	// Work returns the cumulative DP work units (cells or wavefront offsets
	// visited) since construction — the counter behind package perfmodel.
	Work() int64
}

// BestOf runs al.SeedExtend for every seed and keeps the highest-scoring
// alignment (ties: the first seed), BELLA's "up to two seeds" policy.
func BestOf(al Aligner, u, v []byte, k int32, seeds []Seed) Result {
	var best Result
	bestScore := negInf
	for _, s := range seeds {
		a := al.SeedExtend(u, v, k, s)
		if a.Score > bestScore {
			best, bestScore = a, a.Score
		}
	}
	return best
}

// XDropAligner adapts the banded antidiagonal x-drop DP of this package to
// the Aligner interface. Instances keep a Scratch (and a pre-bound extension
// func, so the hot loop closes over nothing per call) and are not safe for
// concurrent use — the overlap stage builds one per pool worker.
type XDropAligner struct {
	p       Params
	cells   int64
	scratch Scratch
	ext     ExtendFunc
}

// NewXDrop builds the x-drop backend; any Cells pointer in p is replaced by
// the aligner's own work counter.
func NewXDrop(p Params) *XDropAligner {
	a := &XDropAligner{p: p}
	a.p.Cells = &a.cells
	a.ext = a.Extend
	return a
}

// Name implements Aligner.
func (a *XDropAligner) Name() string { return "xdrop" }

// Work implements Aligner.
func (a *XDropAligner) Work() int64 { return a.cells }

// SeedExtend implements Aligner.
func (a *XDropAligner) SeedExtend(u, v []byte, k int32, seed Seed) Result {
	return SeedExtendWithScratch(&a.scratch, u, v, k, seed, a.p.Match, a.ext)
}

// Extend is the backend's extension primitive (an ExtendFunc), exposed so
// cross-backend agreement tests and benchmarks can compare primitives
// directly.
func (a *XDropAligner) Extend(s, t []byte) (score, si, ti int32) {
	return extend(s, t, a.p)
}
