package align

import (
	"fmt"
	"testing"

	"repro/internal/readsim"
)

func BenchmarkExtendPerfectOverlap(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			g := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 1})
			p := DefaultParams(15)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				extend(g, g, p)
			}
		})
	}
}

func BenchmarkExtendWithErrors(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 8000, Seed: 2})
	reads := readsim.Simulate(g, readsim.ReadConfig{Depth: 0.999, MeanLen: 7500, ErrorRate: 0.05, Seed: 3, ForwardOnly: true})
	if len(reads) == 0 {
		b.Skip("no reads")
	}
	r := reads[0]
	p := DefaultParams(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extend(g[r.Pos:], r.Seq, p)
	}
}

// BenchmarkBestOfDispatch measures the Aligner-interface dispatch against
// the direct call: the overlap stage pays this per candidate pair, so the
// indirection must stay in the noise.
func BenchmarkBestOfDispatch(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 4000, Seed: 9})
	u, v := g[:2500], g[1500:]
	k := int32(17)
	seeds := []Seed{{PU: 2000, PV: 500}}
	p := DefaultParams(15)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Best(u, v, k, seeds, p)
		}
	})
	b.Run("interface", func(b *testing.B) {
		al := NewXDrop(p)
		for i := 0; i < b.N; i++ {
			BestOf(al, u, v, k, seeds)
		}
	})
}

func BenchmarkSeedExtendRC(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 4})
	u := g[:4000]
	v := g[2000:]
	// rc seed in the middle of the overlap
	k := int32(17)
	seed := Seed{PU: 3000, PV: int32(len(v)) - (3000 - 2000) - k, RC: true}
	vr := make([]byte, len(v))
	for i := range v {
		vr[len(v)-1-i] = map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}[v[i]]
	}
	p := DefaultParams(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SeedExtend(u, vr, k, seed, p)
	}
}
