package align

import (
	"fmt"
	"testing"

	"repro/internal/readsim"
)

func BenchmarkExtendPerfectOverlap(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			g := readsim.Genome(readsim.GenomeConfig{Length: n, Seed: 1})
			p := DefaultParams(15)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				extend(g, g, p)
			}
		})
	}
}

func BenchmarkExtendWithErrors(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 8000, Seed: 2})
	reads := readsim.Simulate(g, readsim.ReadConfig{Depth: 0.999, MeanLen: 7500, ErrorRate: 0.05, Seed: 3, ForwardOnly: true})
	if len(reads) == 0 {
		b.Skip("no reads")
	}
	r := reads[0]
	p := DefaultParams(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extend(g[r.Pos:], r.Seq, p)
	}
}

func BenchmarkSeedExtendRC(b *testing.B) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 4})
	u := g[:4000]
	v := g[2000:]
	// rc seed in the middle of the overlap
	k := int32(17)
	seed := Seed{PU: 3000, PV: int32(len(v)) - (3000 - 2000) - k, RC: true}
	vr := make([]byte, len(v))
	for i := range v {
		vr[len(v)-1-i] = map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}[v[i]]
	}
	p := DefaultParams(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SeedExtend(u, vr, k, seed, p)
	}
}
