// Package core implements the paper's primary contribution: the distributed
// contig generation of Algorithm 2.
//
//	L    ← BranchRemoval(S)          (§4.2: mask vertices with degree ≥ 3)
//	v    ← ConnectedComponent(L)     (§4.2: LACC over the linear components)
//	p    ← GreedyPartitioning(v, P)  (§4.3: LPT multiway number partitioning)
//	P    ← InducedSubgraph(L, p)     (§4.3: Figure 2 communication + all-to-all)
//	cset ← LocalAssembly(P, reads)   (§4.4: per-rank CSC linear walks)
//
// Every step is a collective over the √P × √P grid; after the induced
// subgraph and read-sequence communication, local assembly runs with no
// further communication — the localization property the paper credits for
// ExtractContig never exceeding 5% of total runtime.
package core

import (
	"fmt"
	"sort"

	"repro/internal/bidir"
	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/lacc"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/spmat"
	"repro/internal/trace"
)

// Contig is one assembled chain of reads.
type Contig struct {
	Seq      []byte
	Reads    []int32 // global read ids in walk order
	Circular bool    // true if the chain closed on itself (no root vertices)
}

// Result is the outcome of contig generation on one rank.
type Result struct {
	// Contigs assembled locally on this rank (the paper's cset is the union
	// over ranks).
	Contigs []Contig
	// Global statistics (replicated on every rank).
	NumContigs     int64 // components with ≥ 2 reads
	BranchVertices int64 // vertices masked by branch removal
	AssignedReads  int64 // reads redistributed for local assembly
	MaxLoad        int64 // largest per-rank read load after LPT
	MinLoad        int64 // smallest per-rank read load after LPT
}

// ContigGeneration runs Algorithm 2 on the string matrix s. Sub-stage
// timings land in tm under CG:* names (the paper's contig-phase breakdown:
// the induced subgraph step dominates with 65–85% of the phase).
// packSeqs enables the 2-bit sequence-communication encoding (§7 future
// work); false matches the paper's raw char-buffer protocol.
//
// async selects the nonblocking schedule: the read-sequence exchange — the
// dominant traffic of the phase — is started as soon as the assignment
// vector exists and stays in flight while the induced subgraph is routed,
// re-indexed, and DFS-walked into chains; only the final chain-to-sequence
// assembly waits for it. The contig set and all byte/message counters are
// identical in both modes.
func ContigGeneration(s *spmat.Dist[bidir.Edge], store *fasta.DistStore, tm *trace.Timers, packSeqs, async bool) *Result {
	g := s.G
	res := &Result{}

	// --- BranchRemoval (Algorithm 2 line 2) ---
	var l *spmat.Dist[bidir.Edge]
	var deg *spmat.DistVec[int32]
	tm.Stage("CG:BranchRemoval", g.Comm, func() {
		l, deg, res.BranchVertices = BranchRemoval(s)
	})
	tm.AddWork("CG:BranchRemoval", int64(s.Local.Nnz()))

	// --- ConnectedComponent (line 3) ---
	var labels *spmat.DistVec[int32]
	tm.Stage("CG:ConnectedComponent", g.Comm, func() {
		labels = lacc.Components(l)
	})
	tm.AddWork("CG:ConnectedComponent", int64(l.Local.Nnz()))

	// --- GreedyPartitioning (line 4) ---
	var assign *spmat.DistVec[int32]
	tm.Stage("CG:Partitioning", g.Comm, func() {
		assign = PartitionContigs(labels, deg, res)
	})
	tm.AddWork("CG:Partitioning", int64(len(assign.Local)))

	// --- Read sequence communication, nonblocking start (§4.3) ---
	// Posted before the induced subgraph so the sequence bytes travel while
	// edges are routed and walked; Stage accumulates, so the finish below
	// lands under the same CG:SequenceComm name.
	var seqComm *SeqCommHandle
	if async {
		tm.Stage("CG:SequenceComm", g.Comm, func() {
			seqComm = StartCommunicateSequences(store, assign, packSeqs)
		})
	}

	// --- InducedSubgraph (line 5) ---
	var local *LocalGraph
	tm.Stage("CG:InducedSubgraph", g.Comm, func() {
		local = inducedSubgraph(l, assign, async)
	})
	tm.AddWork("CG:InducedSubgraph", int64(len(local.CSC.IR)))

	// --- LocalAssembly traversal (line 6, §4.4): the DFS walks need only
	// the re-indexed graph, so in async mode they run while the sequence
	// exchange is still in flight. ---
	var chains []chain
	if async {
		tm.Stage("CG:LocalAssembly", g.Comm, func() {
			chains = traverseChains(local)
		})
	}

	// --- Read sequence communication, completion ---
	var seqs map[int32][]byte
	tm.Stage("CG:SequenceComm", g.Comm, func() {
		if async {
			seqs = seqComm.Finish()
		} else {
			seqs = CommunicateSequences(store, assign, packSeqs)
		}
	})
	var seqBytes int64
	for _, sq := range seqs {
		seqBytes += int64(len(sq))
	}
	tm.AddWork("CG:SequenceComm", seqBytes)

	// --- LocalAssembly sequence concatenation ---
	tm.Stage("CG:LocalAssembly", g.Comm, func() {
		if !async {
			chains = traverseChains(local)
		}
		res.Contigs = assembleChains(local, seqs, chains)
	})
	var asmBases int64
	for _, c := range res.Contigs {
		asmBases += int64(len(c.Seq))
	}
	tm.AddWork("CG:LocalAssembly", asmBases)
	loads := mpi.Allgather(g.Comm, int64(len(local.Globals)))
	res.MaxLoad, res.MinLoad = loads[0], loads[0]
	for _, ld := range loads {
		if ld > res.MaxLoad {
			res.MaxLoad = ld
		}
		if ld < res.MinLoad {
			res.MinLoad = ld
		}
	}
	return res
}

// BranchRemoval computes vertex degrees with a row-dimension summation
// reduction, extracts the branch vector b of vertices with degree ≥ 3, and
// clears their rows and columns without re-indexing the matrix (§4.2). It
// returns the linear-chain matrix L, the post-masking degree vector, and the
// global branch count.
func BranchRemoval(s *spmat.Dist[bidir.Edge]) (*spmat.Dist[bidir.Edge], *spmat.DistVec[int32], int64) {
	deg := s.RowDegrees()
	var branchLocal []int32
	for i, d := range deg.Local {
		if d >= 3 {
			branchLocal = append(branchLocal, deg.Lo+int32(i))
		}
	}
	// The branch vector is replicated so every rank can mask its block.
	branch, _ := mpi.AllgathervFlat(s.G.Comm, branchLocal)
	sort.Slice(branch, func(i, j int) bool { return branch[i] < branch[j] })
	l := s.Clone()
	l.MaskRowsCols(branch)
	deg2 := l.RowDegrees()
	return l, deg2, int64(len(branch))
}

// PartitionContigs estimates contig sizes (vertices per component), gathers
// them on rank 0, runs LPT, and broadcasts the contig→processor assignment;
// the result is the distributed vector v of §4.3 mapping each vertex to its
// owner processor (or -1 for vertices in no contig: branch-masked, isolated,
// or in components of fewer than 2 reads).
func PartitionContigs(labels *spmat.DistVec[int32], deg *spmat.DistVec[int32], res *Result) *spmat.DistVec[int32] {
	g := labels.G
	p := g.Comm.Size()

	// Local size estimate per component label, counting only vertices that
	// survived masking (degree ≥ 1).
	localSize := map[int32]int64{}
	for i, lab := range labels.Local {
		if deg.Local[i] >= 1 {
			localSize[lab]++
		}
	}
	// Sparse reduce-scatter: each label's counts are summed on the rank
	// owning the label's index (labels are vertex ids, so ownership follows
	// the vector distribution).
	type lc struct {
		Label int32
		Count int64
	}
	send := make([][]lc, p)
	for lab, cnt := range localSize {
		o := labels.Owner(lab)
		send[o] = append(send[o], lc{Label: lab, Count: cnt})
	}
	for r := range send {
		sort.Slice(send[r], func(i, j int) bool { return send[r][i].Label < send[r][j].Label })
	}
	parts := mpi.Alltoallv(g.Comm, send)
	sizeOf := map[int32]int64{}
	for _, part := range parts {
		for _, e := range part {
			sizeOf[e.Label] += e.Count
		}
	}
	// Contigs are components with at least 2 reads (§4.4).
	var mine []lc
	for lab, sz := range sizeOf {
		if sz >= 2 {
			mine = append(mine, lc{Label: lab, Count: sz})
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].Label < mine[j].Label })

	// Gather contig sizes on a single processor and run LPT there (§4.3:
	// "we collect the global information about contig lengths in a single
	// processor ... to avoid the unnecessary communication of small
	// messages").
	gathered := mpi.Gatherv(g.Comm, 0, mine)
	type asg struct {
		Label int32
		Proc  int32
	}
	var table []asg
	if g.Comm.Rank() == 0 {
		var all []lc
		for _, part := range gathered {
			all = append(all, part...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Label < all[j].Label })
		sizes := make([]int64, len(all))
		for i, e := range all {
			sizes[i] = e.Count
		}
		procOf, _ := partition.LPT(sizes, p)
		table = make([]asg, len(all))
		for i, e := range all {
			table[i] = asg{Label: e.Label, Proc: procOf[i]}
		}
	}
	table = mpi.Bcast(g.Comm, 0, table)
	res.NumContigs = mpi.Bcast(g.Comm, 0, []int64{int64(len(table))})[0]

	procOf := make(map[int32]int32, len(table))
	for _, e := range table {
		procOf[e.Label] = e.Proc
	}
	// Build the assignment vector block.
	assign := spmat.NewDistVec[int32](g, labels.N)
	var assigned int64
	for i := range assign.Local {
		assign.Local[i] = -1
		if deg.Local[i] >= 1 {
			if proc, ok := procOf[labels.Local[i]]; ok {
				assign.Local[i] = proc
				assigned++
			}
		}
	}
	res.AssignedReads = mpi.Allreduce(g.Comm, assigned, func(a, b int64) int64 { return a + b })
	return assign
}

// LocalGraph is the re-indexed induced subgraph a rank assembles locally:
// a CSC whose column j holds the outgoing edges of local vertex j, plus the
// map back to global read ids (§4.3: "while we re-index the local matrix to
// fit its new, smaller size, we also keep a map of the original global
// vertex indices").
type LocalGraph struct {
	Globals []int32 // local index → global read id (ascending)
	CSC     spmat.CSC[bidir.Edge]
}

// InducedSubgraph redistributes the edges of l so each rank receives exactly
// the edges of the contigs assigned to it (§4.3, Figure 2): the assignment
// vector entries for local rows arrive via an Allgatherv on the row
// communicator; entries for local columns via the point-to-point exchange
// with the transposed rank; then a custom all-to-all routes each triple
// (u, v, L(u,v)) with v[u] = v[v] = d to processor d.
func InducedSubgraph(l *spmat.Dist[bidir.Edge], assign *spmat.DistVec[int32]) *LocalGraph {
	return inducedSubgraph(l, assign, false)
}

// inducedSubgraph is the shared body; async routes the edge triples with the
// nonblocking all-to-all. The request is collected immediately (re-indexing
// needs every edge), so the gain here is bounded — remote transfers proceed
// while this rank issues its own sends — and the traffic is accounted as
// overlappable; the phase-level overlap comes from the sequence exchange
// that ContigGeneration keeps in flight across this whole step.
func inducedSubgraph(l *spmat.Dist[bidir.Edge], assign *spmat.DistVec[int32], async bool) *LocalGraph {
	g := l.G
	p := g.Comm.Size()
	rowAsg, colAsg := assign.RowColGather()
	send := make([][]spmat.Triple[bidir.Edge], p)
	for _, t := range l.Local.Ts {
		du := rowAsg[t.Row-l.RowLo]
		dw := colAsg[t.Col-l.ColLo]
		if du < 0 || du != dw {
			continue
		}
		send[du] = append(send[du], t)
	}
	var parts [][]spmat.Triple[bidir.Edge]
	if async {
		parts = mpi.IAlltoallv(g.Comm, send).WaitValue()
	} else {
		parts = mpi.Alltoallv(g.Comm, send)
	}

	// Re-index: collect the vertex set, sort ascending for determinism.
	vset := map[int32]struct{}{}
	var edges []spmat.Triple[bidir.Edge]
	for _, part := range parts {
		for _, t := range part {
			vset[t.Row] = struct{}{}
			vset[t.Col] = struct{}{}
			edges = append(edges, t)
		}
	}
	globals := make([]int32, 0, len(vset))
	for v := range vset {
		globals = append(globals, v)
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i] < globals[j] })
	localIdx := make(map[int32]int32, len(globals))
	for i, v := range globals {
		localIdx[v] = int32(i)
	}
	// Local triples with column = SOURCE vertex so the CSC walk reads
	// outgoing edges: edge (u → w, e) is stored at (row lw, col lu).
	ts := make([]spmat.Triple[bidir.Edge], len(edges))
	for i, t := range edges {
		ts[i] = spmat.Triple[bidir.Edge]{Row: localIdx[t.Col], Col: localIdx[t.Row], Val: t.Val}
	}
	n := int32(len(globals))
	coo := spmat.NewCOO(n, n, ts, nil)
	// The distributed stages store blocks in DCSC (hypersparse); local
	// assembly converts to plain CSC for O(1) column indexing (§4.4).
	dcsc := coo.ToCSC().ToDCSC()
	return &LocalGraph{Globals: globals, CSC: dcsc.ToCSC()}
}

// CommunicateSequences routes every assigned read's bytes to its owner
// processor (§4.3 "Read Sequence Communication"): reads are packed into
// per-destination char buffers and exchanged with an all-to-all that chunks
// each message to respect the MPI 2³¹−1 count limit. With packed=true the
// buffers travel 2-bit-encoded (quarter the volume), falling back to raw
// bytes if any local read has a non-ACGT base.
func CommunicateSequences(store *fasta.DistStore, assign *spmat.DistVec[int32], packed bool) map[int32][]byte {
	return startCommunicateSequences(store, assign, packed, false).Finish()
}

// SeqCommHandle is an in-flight read-sequence exchange: every send has been
// posted (buffered, so they are already complete) and the receives drain in
// the background while the caller computes; Finish assembles the result. In
// blocking mode the exchange completes inside start and Finish only
// assembles — one wire protocol, two schedules.
type SeqCommHandle struct {
	store  *fasta.DistStore
	p      int
	packed bool // 2-bit packed protocol agreed by all ranks
	// Nonblocking mode: posted exchanges, collected at Finish.
	idsReq  *mpi.AlltoallvRequest[int32]
	packReq *mpi.AlltoallvRequest[uint64]
	rawReq  *mpi.AlltoallvRequest[byte]
	// Blocking mode: completed exchanges.
	gotIDs   [][]int32
	gotWords [][]uint64
	gotBufs  [][]byte
}

// StartCommunicateSequences posts the full sequence exchange nonblocking and
// returns immediately — the transfers complete while the caller routes edges
// and walks chains. Wire protocol, bytes, and messages are identical to the
// blocking CommunicateSequences.
func StartCommunicateSequences(store *fasta.DistStore, assign *spmat.DistVec[int32], packed bool) *SeqCommHandle {
	return startCommunicateSequences(store, assign, packed, true)
}

// startCommunicateSequences is the shared body: async posts nonblocking
// exchanges, blocking completes them in place.
func startCommunicateSequences(store *fasta.DistStore, assign *spmat.DistVec[int32], packed, async bool) *SeqCommHandle {
	g := assign.G
	p := g.Comm.Size()
	h := &SeqCommHandle{store: store, p: p}
	ids := make([][]int32, p)
	raw := make([][][]byte, p)
	for i, proc := range assign.Local {
		if proc < 0 {
			continue
		}
		gid := assign.Lo + int32(i)
		ids[proc] = append(ids[proc], gid)
		raw[proc] = append(raw[proc], store.Get(int(gid)))
	}
	if async {
		h.idsReq = mpi.IAlltoallv(g.Comm, ids)
	} else {
		h.gotIDs = mpi.Alltoallv(g.Comm, ids)
	}

	if packed {
		// All ranks must agree on the encoding: fall back to raw everywhere
		// if any rank holds a non-ACGT read. The agreement allreduce is tiny
		// and stays blocking in both modes.
		okLocal := true
		words := make([][]uint64, p)
		for r := 0; r < p && okLocal; r++ {
			words[r], okLocal = dna.PackAll(raw[r])
		}
		if mpi.Allreduce(g.Comm, okLocal, func(a, b bool) bool { return a && b }) {
			h.packed = true
			if async {
				h.packReq = mpi.IAlltoallvChunked(g.Comm, words)
			} else {
				h.gotWords = mpi.AlltoallvChunked(g.Comm, words)
			}
			return h
		}
	}
	bufs := make([][]byte, p)
	for r := 0; r < p; r++ {
		for _, seq := range raw[r] {
			bufs[r] = append(bufs[r], seq...)
		}
	}
	if async {
		h.rawReq = mpi.IAlltoallvChunked(g.Comm, bufs)
	} else {
		h.gotBufs = mpi.AlltoallvChunked(g.Comm, bufs)
	}
	return h
}

// Finish waits for any posted exchange and returns the received sequences
// keyed by global read id.
func (h *SeqCommHandle) Finish() map[int32][]byte {
	gotIDs := h.gotIDs
	if h.idsReq != nil {
		gotIDs = h.idsReq.WaitValue()
	}
	out := map[int32][]byte{}
	if h.packed {
		gotWords := h.gotWords
		if h.packReq != nil {
			gotWords = h.packReq.WaitValue()
		}
		for r := 0; r < h.p; r++ {
			lens := make([]int, len(gotIDs[r]))
			for i, gid := range gotIDs[r] {
				lens[i] = h.store.Len(int(gid))
			}
			for i, seq := range dna.UnpackAll(gotWords[r], lens) {
				out[gotIDs[r][i]] = seq
			}
		}
		return out
	}
	gotBufs := h.gotBufs
	if h.rawReq != nil {
		gotBufs = h.rawReq.WaitValue()
	}
	for r := 0; r < h.p; r++ {
		off := 0
		for _, gid := range gotIDs[r] {
			ln := h.store.Len(int(gid))
			out[gid] = gotBufs[r][off : off+ln]
			off += ln
		}
	}
	return out
}

// LocalAssembly walks every linear chain of the local graph and concatenates
// the read subsequences into contigs (§4.4): scan for unvisited root
// vertices (degree 1), walk to the opposite root marking vertices visited,
// and join l_r[α:pre(e₀)] ⊕ l_c₁[post(e₀):pre(e₁)] ⊕ … with descending
// slices meaning reverse complement. Cycles left by root walks (circular
// chains) are walked from their smallest vertex. No communication happens
// here — the contigs' reads are all local by construction.
//
// Internally it is two phases — traverseChains needs only the graph,
// assembleChains additionally needs the sequences — so the async schedule
// can run the walks while the sequence exchange is still in flight.
func LocalAssembly(lg *LocalGraph, seqs map[int32][]byte) []Contig {
	return assembleChains(lg, seqs, traverseChains(lg))
}

// chain is one traversed read chain, pending sequence assembly.
type chain struct {
	steps    []step
	circular bool
}

// traverseChains runs every DFS walk of §4.4 — root-to-root first, then the
// cycles the root walks left — returning the chains in deterministic
// (ascending root vertex) order. No sequences are touched.
func traverseChains(lg *LocalGraph) []chain {
	n := lg.CSC.NC
	visited := make([]bool, n)
	var chains []chain

	// Root-to-root walks.
	for v := int32(0); v < n; v++ {
		if !visited[v] && lg.CSC.ColDegree(v) == 1 {
			chains = append(chains, walk(lg, v, visited, false))
		}
	}
	// Remaining unvisited vertices with edges form cycles.
	for v := int32(0); v < n; v++ {
		if !visited[v] && lg.CSC.ColDegree(v) > 0 {
			chains = append(chains, walk(lg, v, visited, true))
		}
	}
	return chains
}

// assembleChains concatenates every traversed chain into contigs, cutting at
// bidirected validity violations.
func assembleChains(lg *LocalGraph, seqs map[int32][]byte, chains []chain) []Contig {
	var contigs []Contig
	for _, ch := range chains {
		contigs = append(contigs, assembleSegments(lg, seqs, ch.steps, ch.circular)...)
	}
	return contigs
}

// step is one traversal move: the edge cur→next.
type step struct {
	vertex int32 // next (local index)
	edge   bidir.Edge
}

// walk traverses the chain starting at root, marking vertices visited.
func walk(lg *LocalGraph, root int32, visited []bool, circular bool) chain {
	csc := lg.CSC
	visited[root] = true
	steps := []step{{vertex: root}}
	cur := root
	for {
		// Pick the unvisited neighbor; for the first step of a cycle walk
		// both neighbors are unvisited — take the smaller global id.
		next := int32(-1)
		var e bidir.Edge
		for ptr := csc.JC[cur]; ptr < csc.JC[cur+1]; ptr++ {
			cand := csc.IR[ptr]
			if visited[cand] {
				continue
			}
			if next == -1 || lg.Globals[cand] < lg.Globals[next] {
				next = cand
				e = csc.V[ptr]
			}
		}
		if next == -1 {
			break
		}
		visited[next] = true
		steps = append(steps, step{vertex: next, edge: e})
		cur = next
	}
	// Valid-walk violations (a vertex entered and exited through the same
	// end, possible with noisy alignments) are cut later by assembleSegments.
	return chain{steps: steps, circular: circular}
}

// assembleSegments splits the chain at valid-walk violations and builds a
// contig from every segment with ≥ 2 reads.
func assembleSegments(lg *LocalGraph, seqs map[int32][]byte, steps []step, circular bool) []Contig {
	var out []Contig
	segStart := 0
	for i := 2; i < len(steps); i++ {
		// Edge i-1 enters steps[i-1].vertex; edge i leaves it.
		if steps[i].edge.SrcBit() == steps[i-1].edge.DstBit() {
			if c, ok := assembleChain(lg, seqs, steps[segStart:i], circular && segStart == 0 && i == len(steps)); ok {
				out = append(out, c)
			}
			segStart = i - 1 // the cut vertex starts the next segment
		}
	}
	if c, ok := assembleChain(lg, seqs, steps[segStart:], circular && segStart == 0); ok {
		out = append(out, c)
	}
	return out
}

// assembleChain concatenates one valid chain into a contig.
func assembleChain(lg *LocalGraph, seqs map[int32][]byte, steps []step, circular bool) (Contig, bool) {
	q := len(steps)
	if q < 2 {
		return Contig{}, false
	}
	reads := make([]int32, q)
	for i, st := range steps {
		reads[i] = lg.Globals[st.vertex]
	}
	var seq []byte
	for i, st := range steps {
		gid := lg.Globals[st.vertex]
		l, ok := seqs[gid]
		if !ok {
			panic(fmt.Sprintf("core: read %d missing from local sequence store", gid))
		}
		L := int32(len(l))
		var fwd bool
		if i == 0 {
			fwd = steps[1].edge.SrcForward()
		} else {
			fwd = steps[i].edge.DstForward()
		}
		// Inclusive slice bounds on the read in walk order.
		var from, to int32 // from..to in walk direction
		if i == 0 {
			if fwd {
				from, to = 0, steps[1].edge.Pre
			} else {
				from, to = L-1, steps[1].edge.Pre
			}
		} else if i < q-1 {
			// Middle read: from the first overlap base with the previous
			// read to the last base before the overlap with the next;
			// walk order (ascending/descending) is implied by fwd.
			from, to = steps[i].edge.Post, steps[i+1].edge.Pre
		} else {
			if fwd {
				from, to = steps[i].edge.Post, L-1
			} else {
				from, to = steps[i].edge.Post, 0
			}
		}
		seq = appendPiece(seq, l, from, to, fwd)
	}
	return Contig{Seq: seq, Reads: reads, Circular: circular}, true
}

// appendPiece appends the inclusive walk-ordered slice l[from..to]: forward
// slices ascend and copy in bulk; reverse slices descend and are
// complemented through the dna package's table (the paper's l[j:i]
// notation). Audit note for the RevComp call-site sweep: this is the one
// reverse-complement loop of contig generation, and it already writes
// straight into the contig buffer — dna.RevCompRange here would allocate a
// temporary per read piece.
func appendPiece(dst, l []byte, from, to int32, fwd bool) []byte {
	if fwd {
		if from < 0 {
			from = 0
		}
		if to >= int32(len(l)) {
			to = int32(len(l)) - 1
		}
		if from > to {
			return dst
		}
		return append(dst, l[from:to+1]...)
	}
	if from >= int32(len(l)) {
		from = int32(len(l)) - 1
	}
	if to < 0 {
		to = 0
	}
	for i := from; i >= to; i-- {
		dst = append(dst, dna.Complement(l[i]))
	}
	return dst
}
