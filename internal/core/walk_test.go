package core

import (
	"fmt"
	"testing"

	"repro/internal/bidir"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/readsim"
	"repro/internal/spmat"
)

// TestWalkCutsInvalidJunction: a "hairpin" vertex whose two edges use the
// same end is not a valid walk; the chain must be cut there and both sides
// assembled separately instead of producing a corrupt contig.
func TestWalkCutsInvalidJunction(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 600, Seed: 21})
	r0 := g[0:200]
	r1 := g[150:350]
	// r2 overlaps r1's SUFFIX region but with an orientation that enters r1
	// through the same end the walk entered: build it artificially by
	// claiming r2 overlaps r1 at r1's PREFIX end (same end as r0's edge).
	r2 := g[150:300] // truly overlaps r1's prefix region
	e01, e10 := classifyPair(t, bidir.Aln{U: 0, V: 1, BU: 150, EU: 200, BV: 0, EV: 50, LU: 200, LV: 200})
	// r1→r2: r1's prefix again (r2 contained-ish but force a dovetail shape:
	// overlap r1[0:150) with r2[0:150) is containment, so instead use a
	// partial: r1[0:100) ~ r2[50:150).
	e12, e21 := classifyPair(t, bidir.Aln{U: 1, V: 2, BU: 0, EU: 100, BV: 50, EV: 150, LU: 200, LV: 150})
	// Both e10-mirror (enters r1 at prefix) and e12 (leaves r1 at prefix)
	// use r1's prefix: the junction is invalid iff e12.SrcBit == e01.DstBit.
	if e12.SrcBit() != e01.DstBit() {
		t.Skip("construction did not produce a hairpin (classification moved)")
	}
	lg := buildLocalGraph(3, []spmat.Triple[bidir.Edge]{
		{Row: 0, Col: 1, Val: e01}, {Row: 1, Col: 0, Val: e10},
		{Row: 1, Col: 2, Val: e12}, {Row: 2, Col: 1, Val: e21},
	})
	seqs := map[int32][]byte{0: r0, 1: r1, 2: r2}
	contigs := LocalAssembly(lg, seqs)
	// The invalid junction must yield two 2-read contigs, not one 3-read one.
	for _, c := range contigs {
		if len(c.Reads) == 3 {
			t.Fatal("walked through an invalid junction")
		}
	}
	if len(contigs) != 2 {
		t.Fatalf("got %d contigs, want 2 segments", len(contigs))
	}
}

// TestPartitionContigsFewerThanRanks: the paper notes n < P leaves ranks
// idle in the final phase; the assignment must still be valid.
func TestPartitionContigsFewerThanRanks(t *testing.T) {
	// Two 3-vertex chains on a 16-rank grid.
	n := int32(6)
	var ts []spmat.Triple[bidir.Edge]
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: e[0], Col: e[1]},
			spmat.Triple[bidir.Edge]{Row: e[1], Col: e[0]})
	}
	err := mpi.Run(16, func(c *mpi.Comm) {
		g := grid.New(c)
		l := spmat.FromGlobalTriples(g, n, n, ts, nil)
		deg := l.RowDegrees()
		labels := spmat.VecFromGlobal(g, []int32{0, 0, 0, 3, 3, 3})
		res := &Result{}
		assign := PartitionContigs(labels, deg, res)
		if res.NumContigs != 2 {
			panic(fmt.Sprintf("%d contigs, want 2", res.NumContigs))
		}
		full := assign.AllgatherFull()
		// Both contigs assigned, each to one rank; 14 ranks idle.
		procs := map[int32]bool{}
		for _, p := range full {
			if p >= 0 {
				procs[p] = true
			}
		}
		if len(procs) != 2 {
			panic(fmt.Sprintf("contigs spread over %d ranks, want 2", len(procs)))
		}
		// Same-contig vertices must share a destination.
		if full[0] != full[1] || full[1] != full[2] || full[3] != full[4] || full[4] != full[5] {
			panic("contig split across ranks")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherContigsCanonicalOrder: gathered contigs arrive sorted by
// (length desc, sequence), independent of which rank assembled them.
func TestGatherContigsCanonicalOrder(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		var mine []Contig
		// Each rank contributes different contigs.
		switch c.Rank() {
		case 0:
			mine = []Contig{{Seq: []byte("AAAA")}}
		case 1:
			mine = []Contig{{Seq: []byte("CCCCCC")}, {Seq: []byte("GG")}}
		case 3:
			mine = []Contig{{Seq: []byte("TTTT")}}
		}
		all := GatherContigs(c, mine)
		if c.Rank() == 0 {
			want := []string{"CCCCCC", "AAAA", "TTTT", "GG"}
			if len(all) != len(want) {
				panic(fmt.Sprintf("%d contigs", len(all)))
			}
			for i, w := range want {
				if string(all[i].Seq) != w {
					panic(fmt.Sprintf("order wrong at %d: %s", i, all[i].Seq))
				}
			}
		} else if all != nil {
			panic("non-root must get nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAppendPieceBounds exercises the inclusive-slice clamping.
func TestAppendPieceBounds(t *testing.T) {
	l := []byte("ACGT")
	// Forward, pre=-1 (empty prefix).
	if got := appendPiece(nil, l, 0, -1, true); len(got) != 0 {
		t.Fatalf("empty forward piece: %q", got)
	}
	// Forward full.
	if got := appendPiece(nil, l, 0, 3, true); string(got) != "ACGT" {
		t.Fatalf("full forward: %q", got)
	}
	// Reverse full: revcomp(ACGT) = ACGT.
	if got := appendPiece(nil, l, 3, 0, false); string(got) != "ACGT" {
		t.Fatalf("full reverse: %q", got)
	}
	// Reverse of GT (indices 2..3, descending) = AC.
	if got := appendPiece(nil, l, 3, 2, false); string(got) != "AC" {
		t.Fatalf("partial reverse: %q", got)
	}
	// Reverse empty (from < to).
	if got := appendPiece(nil, l, 1, 2, false); len(got) != 0 {
		t.Fatalf("empty reverse piece: %q", got)
	}
	// Out-of-range clamps.
	if got := appendPiece(nil, l, 0, 100, true); string(got) != "ACGT" {
		t.Fatalf("clamped forward: %q", got)
	}
	if got := appendPiece(nil, l, 100, 0, false); string(got) != "ACGT" {
		t.Fatalf("clamped reverse: %q", got)
	}
}
