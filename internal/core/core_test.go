package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/bidir"
	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/overlap"
	"repro/internal/readsim"
	"repro/internal/spmat"
	"repro/internal/tr"
	"repro/internal/trace"
)

// buildLocalGraph hand-assembles a LocalGraph from directed edges.
func buildLocalGraph(n int32, edges []spmat.Triple[bidir.Edge]) *LocalGraph {
	globals := make([]int32, n)
	for i := range globals {
		globals[i] = int32(i)
	}
	// Column = source convention.
	ts := make([]spmat.Triple[bidir.Edge], len(edges))
	for i, e := range edges {
		ts[i] = spmat.Triple[bidir.Edge]{Row: e.Col, Col: e.Row, Val: e.Val}
	}
	coo := spmat.NewCOO(n, n, ts, nil)
	return &LocalGraph{Globals: globals, CSC: coo.ToCSC()}
}

func classifyPair(t *testing.T, a bidir.Aln) (fwd, rev bidir.Edge) {
	t.Helper()
	e, kind := bidir.Classify(a, bidir.Params{MaxOverhang: 3})
	if kind != bidir.Dovetail {
		t.Fatalf("expected dovetail, got %v", kind)
	}
	m, kind2 := bidir.Classify(a.Mirror(), bidir.Params{MaxOverhang: 3})
	if kind2 != bidir.Dovetail {
		t.Fatalf("mirror not dovetail: %v", kind2)
	}
	return e, m
}

// TestLocalAssemblyFigure3 reproduces the paper's Figure 3: reads
// l0=AGAACT, l1=AACTGAAG, l2=TGAAGAA concatenate to AGAACTGAAGAA.
func TestLocalAssemblyFigure3(t *testing.T) {
	l0 := []byte("AGAACT")
	l1 := []byte("AACTGAAG")
	l2 := []byte("TGAAGAA")
	want := "AGAACTGAAGAA"

	e01, e10 := classifyPair(t, bidir.Aln{U: 0, V: 1, BU: 2, EU: 6, BV: 0, EV: 4, LU: 6, LV: 8})
	e12, e21 := classifyPair(t, bidir.Aln{U: 1, V: 2, BU: 3, EU: 8, BV: 0, EV: 5, LU: 8, LV: 7})
	lg := buildLocalGraph(3, []spmat.Triple[bidir.Edge]{
		{Row: 0, Col: 1, Val: e01}, {Row: 1, Col: 0, Val: e10},
		{Row: 1, Col: 2, Val: e12}, {Row: 2, Col: 1, Val: e21},
	})
	seqs := map[int32][]byte{0: l0, 1: l1, 2: l2}
	contigs := LocalAssembly(lg, seqs)
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs", len(contigs))
	}
	got := string(contigs[0].Seq)
	if got != want && got != string(dna.RevComp([]byte(want))) {
		t.Fatalf("contig %q, want %q", got, want)
	}
	if len(contigs[0].Reads) != 3 {
		t.Fatalf("reads %v", contigs[0].Reads)
	}
}

// TestLocalAssemblyFigure3XDropTruncated uses the paper's truncated
// alignment for the second edge (pre=4, post=2): the contig must be
// identical — the reason post(e) is stored.
func TestLocalAssemblyFigure3XDropTruncated(t *testing.T) {
	l0 := []byte("AGAACT")
	l1 := []byte("AACTGAAG")
	l2 := []byte("TGAAGAA")
	want := "AGAACTGAAGAA"

	e01, e10 := classifyPair(t, bidir.Aln{U: 0, V: 1, BU: 2, EU: 6, BV: 0, EV: 4, LU: 6, LV: 8})
	// x-drop stopped early: l1[5:7] ~ l2[2:4] inclusive.
	e12, e21 := classifyPair(t, bidir.Aln{U: 1, V: 2, BU: 5, EU: 8, BV: 2, EV: 5, LU: 8, LV: 7})
	if e12.Pre != 4 || e12.Post != 2 {
		t.Fatalf("pre/post = %d/%d, want 4/2 (paper)", e12.Pre, e12.Post)
	}
	lg := buildLocalGraph(3, []spmat.Triple[bidir.Edge]{
		{Row: 0, Col: 1, Val: e01}, {Row: 1, Col: 0, Val: e10},
		{Row: 1, Col: 2, Val: e12}, {Row: 2, Col: 1, Val: e21},
	})
	contigs := LocalAssembly(lg, map[int32][]byte{0: l0, 1: l1, 2: l2})
	if len(contigs) != 1 || string(contigs[0].Seq) != want {
		t.Fatalf("got %v", contigs)
	}
}

// TestLocalAssemblyReverseComplementChain builds a chain where the middle
// read is stored reverse-complemented; the contig must still spell the
// genome (or its reverse complement).
func TestLocalAssemblyReverseComplementChain(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 400, Seed: 5})
	r0 := append([]byte(nil), g[0:200]...)
	r1 := dna.RevComp(g[120:320]) // stored flipped
	r2 := append([]byte(nil), g[250:400]...)

	// r0 (fwd) overlaps r1 (rc): genome [120,200). On r1's forward coords
	// the genome window [120,320) maps reversed: genome pos x → r1 index
	// 319-x; so [120,200) → r1 indices [120,200) → wait: 319-120=199,
	// 319-199=120: indices [120,199] i.e. [120,200).
	a01 := bidir.Aln{U: 0, V: 1, BU: 120, EU: 200, BV: 120, EV: 200, RC: true, LU: 200, LV: 200}
	// r1 (rc) overlaps r2 (fwd): genome [250,320) → r1 indices [0,70).
	a12 := bidir.Aln{U: 1, V: 2, BU: 0, EU: 70, BV: 0, EV: 70, RC: true, LU: 200, LV: 150}
	e01, e10 := classifyPair(t, a01)
	e12, e21 := classifyPair(t, a12)
	lg := buildLocalGraph(3, []spmat.Triple[bidir.Edge]{
		{Row: 0, Col: 1, Val: e01}, {Row: 1, Col: 0, Val: e10},
		{Row: 1, Col: 2, Val: e12}, {Row: 2, Col: 1, Val: e21},
	})
	contigs := LocalAssembly(lg, map[int32][]byte{0: r0, 1: r1, 2: r2})
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs", len(contigs))
	}
	got := contigs[0].Seq
	if !bytes.Equal(got, g) && !bytes.Equal(got, dna.RevComp(g)) {
		t.Fatalf("contig (%d bases) does not spell the 400-base genome", len(got))
	}
}

// TestLocalAssemblyTwoReadContig: the minimal contig (q=2).
func TestLocalAssemblyTwoReadContig(t *testing.T) {
	g := readsim.Genome(readsim.GenomeConfig{Length: 150, Seed: 9})
	r0, r1 := g[0:100], g[50:150]
	a := bidir.Aln{U: 0, V: 1, BU: 50, EU: 100, BV: 0, EV: 50, LU: 100, LV: 100}
	e01, e10 := classifyPair(t, a)
	lg := buildLocalGraph(2, []spmat.Triple[bidir.Edge]{
		{Row: 0, Col: 1, Val: e01}, {Row: 1, Col: 0, Val: e10},
	})
	contigs := LocalAssembly(lg, map[int32][]byte{0: r0, 1: r1})
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs", len(contigs))
	}
	if !bytes.Equal(contigs[0].Seq, g) && !bytes.Equal(contigs[0].Seq, dna.RevComp(g)) {
		t.Fatalf("2-read contig wrong: %d bases, want 150", len(contigs[0].Seq))
	}
}

// TestLocalAssemblyCycle: a circular chain has no roots; the cycle pass must
// recover it and flag it circular.
func TestLocalAssemblyCycle(t *testing.T) {
	// Ring of 4 reads from a circular mini-genome.
	g := readsim.Genome(readsim.GenomeConfig{Length: 400, Seed: 13})
	circ := append(append([]byte(nil), g...), g[:100]...) // wrap 100
	reads := [][]byte{circ[0:200], circ[100:300], circ[200:400], circ[300:500]}
	var ts []spmat.Triple[bidir.Edge]
	addPair := func(u, v int32, a bidir.Aln) {
		e, m := classifyPair(t, a)
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: u, Col: v, Val: e},
			spmat.Triple[bidir.Edge]{Row: v, Col: u, Val: m})
	}
	for i := int32(0); i < 4; i++ {
		j := (i + 1) % 4
		addPair(i, j, bidir.Aln{U: i, V: j, BU: 100, EU: 200, BV: 0, EV: 100, LU: 200, LV: 200})
	}
	lg := buildLocalGraph(4, ts)
	seqs := map[int32][]byte{}
	for i, r := range reads {
		seqs[int32(i)] = r
	}
	contigs := LocalAssembly(lg, seqs)
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs from ring", len(contigs))
	}
	if !contigs[0].Circular {
		t.Fatal("ring contig not flagged circular")
	}
	if len(contigs[0].Reads) != 4 {
		t.Fatalf("ring walked %d reads", len(contigs[0].Reads))
	}
}

// pipelineToContigs runs the full distributed pipeline on the given reads.
func pipelineToContigs(t *testing.T, p int, seqs [][]byte, k int, xdrop int32) ([]Contig, *Result) {
	t.Helper()
	cfg := overlap.Config{
		K:            k,
		ReliableLow:  2,
		ReliableHigh: 100,
		Align:        align.DefaultParams(xdrop),
		MinOverlap:   100,
		MinScoreFrac: 0.5,
		MaxOverhang:  60,
	}
	var contigs []Contig
	var resOut Result
	err := mpi.Run(p, func(c *mpi.Comm) {
		g := grid.New(c)
		store := fasta.FromGlobal(c, seqs)
		tm := trace.New()
		ores := overlap.Run(g, store, cfg, tm)
		s := overlap.ToStringGraph(ores.R, cfg.MaxOverhang)
		tr.Reduce(s, 150, 10, false)
		res := ContigGeneration(s, store, tm, false, false)
		all := GatherContigs(c, res.Contigs)
		if c.Rank() == 0 {
			contigs = all
			resOut = *res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return contigs, &resOut
}

// TestEndToEndErrorFreeGenomeRoundTrip is the central correctness property:
// on error-free reads every assembled contig must be an exact substring of
// the reference genome or of its reverse complement, and the contigs must
// cover most of the genome.
func TestEndToEndErrorFreeGenomeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 41})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 15, MeanLen: 2200, Seed: 42}))
	rc := string(dna.RevComp(genome))
	fw := string(genome)

	for _, p := range []int{1, 4} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			contigs, res := pipelineToContigs(t, p, reads, 21, 25)
			if len(contigs) == 0 {
				t.Fatal("no contigs")
			}
			var covered int
			for i, ct := range contigs {
				s := string(ct.Seq)
				if !strings.Contains(fw, s) && !strings.Contains(rc, s) {
					t.Fatalf("contig %d (%d bases, %d reads) is not a genome substring", i, len(s), len(ct.Reads))
				}
				if len(ct.Seq) > covered {
					covered = len(ct.Seq)
				}
			}
			// The longest contig should span most of the genome at depth 15.
			if covered < len(genome)*6/10 {
				t.Fatalf("longest contig %d of %d bases", covered, len(genome))
			}
			if res.NumContigs < 1 {
				t.Fatal("no contigs counted")
			}
			t.Logf("P=%d: %d contigs, longest %d/%d, branches=%d",
				p, len(contigs), covered, len(genome), res.BranchVertices)
		})
	}
}

// TestEndToEndDeterministicAcrossP: the contig set must be identical no
// matter how many ranks computed it.
func TestEndToEndDeterministicAcrossP(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 51})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1800, Seed: 52}))
	var sets [][]Contig
	for _, p := range []int{1, 4, 9} {
		contigs, _ := pipelineToContigs(t, p, reads, 21, 25)
		sets = append(sets, contigs)
	}
	for i := 1; i < len(sets); i++ {
		if len(sets[i]) != len(sets[0]) {
			t.Fatalf("run %d: %d contigs vs %d at P=1", i, len(sets[i]), len(sets[0]))
		}
		for j := range sets[0] {
			if !bytes.Equal(sets[0][j].Seq, sets[i][j].Seq) {
				t.Fatalf("run %d contig %d differs", i, j)
			}
		}
	}
}

// TestEndToEndWithErrors: at a realistic low error rate the pipeline must
// still produce long contigs highly similar to the genome (exact-substring
// no longer holds).
func TestEndToEndWithErrors(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 25000, Seed: 61})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 14, MeanLen: 2200, ErrorRate: 0.005, Seed: 62}))
	contigs, _ := pipelineToContigs(t, 4, reads, 21, 30)
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	if len(contigs[0].Seq) < len(genome)/2 {
		t.Fatalf("longest contig only %d of %d", len(contigs[0].Seq), len(genome))
	}
}

// TestBranchRemovalPaperExample reproduces the §4.2 example: chains
// 0→1→2, 2→3→4→5, 2→6→7 make vertex 2 a branch (degree 3 in the original
// graph: edges to 1, 3, 6); after masking, components {0,1}, {3,4,5}, {6,7}.
func TestBranchRemovalPaperExample(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {2, 6}, {6, 7}}
	var ts []spmat.Triple[bidir.Edge]
	for _, e := range edges {
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: e[0], Col: e[1]},
			spmat.Triple[bidir.Edge]{Row: e[1], Col: e[0]})
	}
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		s := spmat.FromGlobalTriples(g, 8, 8, ts, nil)
		l, deg, branches := BranchRemoval(s)
		if branches != 1 {
			panic(fmt.Sprintf("%d branch vertices, want 1 (vertex 2)", branches))
		}
		full := deg.AllgatherFull()
		want := []int32{1, 1, 0, 1, 2, 1, 1, 1}
		for i := range want {
			if full[i] != want[i] {
				panic(fmt.Sprintf("deg[%d]=%d want %d", i, full[i], want[i]))
			}
		}
		if l.Nnz() != 2*4 { // edges (0,1),(3,4),(4,5),(6,7) survive
			panic(fmt.Sprintf("L has %d nnz", l.Nnz()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInducedSubgraphFigure2 checks the Figure 2 communication on a 4×4
// grid: edges whose endpoints are assigned to the same processor arrive
// exactly there, and nothing else arrives.
func TestInducedSubgraphFigure2(t *testing.T) {
	n := int32(16)
	// Two chains: vertices 0..7 → contig A, 8..15 → contig B.
	var ts []spmat.Triple[bidir.Edge]
	for i := int32(0); i < 7; i++ {
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: i, Col: i + 1},
			spmat.Triple[bidir.Edge]{Row: i + 1, Col: i})
	}
	for i := int32(8); i < 15; i++ {
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: i, Col: i + 1},
			spmat.Triple[bidir.Edge]{Row: i + 1, Col: i})
	}
	err := mpi.Run(16, func(c *mpi.Comm) {
		g := grid.New(c)
		l := spmat.FromGlobalTriples(g, n, n, ts, nil)
		// Hand assignment: contig A → rank 5, contig B → rank 11.
		full := make([]int32, n)
		for i := int32(0); i < 8; i++ {
			full[i] = 5
		}
		for i := int32(8); i < 16; i++ {
			full[i] = 11
		}
		assign := spmat.VecFromGlobal(g, full)
		lg := InducedSubgraph(l, assign)
		switch c.Rank() {
		case 5:
			if len(lg.Globals) != 8 || lg.Globals[0] != 0 || lg.Globals[7] != 7 {
				panic(fmt.Sprintf("rank 5 got vertices %v", lg.Globals))
			}
			if len(lg.CSC.IR) != 14 {
				panic(fmt.Sprintf("rank 5 got %d directed edges, want 14", len(lg.CSC.IR)))
			}
		case 11:
			if len(lg.Globals) != 8 || lg.Globals[0] != 8 {
				panic(fmt.Sprintf("rank 11 got vertices %v", lg.Globals))
			}
		default:
			if len(lg.Globals) != 0 {
				panic(fmt.Sprintf("rank %d unexpectedly got %v", c.Rank(), lg.Globals))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommunicateSequencesChunked exercises the 2^31-1 workaround path with
// a tiny limit.
func TestCommunicateSequencesChunked(t *testing.T) {
	old := mpi.MaxMessageBytes
	mpi.MaxMessageBytes = 64
	defer func() { mpi.MaxMessageBytes = old }()
	reads := make([][]byte, 12)
	for i := range reads {
		reads[i] = bytes.Repeat([]byte{"ACGT"[i%4]}, 50+i)
	}
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		store := fasta.FromGlobal(c, reads)
		full := make([]int32, len(reads))
		for i := range full {
			full[i] = int32(i % 4) // scatter reads across all ranks
		}
		assign := spmat.VecFromGlobal(g, full)
		seqs := CommunicateSequences(store, assign, false)
		for gid, seq := range seqs {
			if int(gid)%4 != c.Rank() {
				panic("read delivered to wrong rank")
			}
			if !bytes.Equal(seq, reads[gid]) {
				panic("read bytes corrupted")
			}
		}
		want := 0
		for i := range reads {
			if i%4 == c.Rank() {
				want++
			}
		}
		if len(seqs) != want {
			panic(fmt.Sprintf("rank %d got %d reads, want %d", c.Rank(), len(seqs), want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
