package core

import (
	"sort"

	"repro/internal/mpi"
)

// flatContig is the wire form of a contig for gathering.
type flatContig struct {
	Seq      []byte
	Reads    []int32
	Circular bool
}

// GatherContigs collects every rank's contigs at root (nil elsewhere),
// sorted deterministically by (length desc, sequence) so the result is
// independent of the processor count (collective).
func GatherContigs(c *mpi.Comm, contigs []Contig) []Contig {
	mine := make([]flatContig, len(contigs))
	for i, ct := range contigs {
		mine[i] = flatContig{Seq: ct.Seq, Reads: ct.Reads, Circular: ct.Circular}
	}
	parts := mpi.Gatherv(c, 0, mine)
	if c.Rank() != 0 {
		return nil
	}
	var all []Contig
	for _, part := range parts {
		for _, fc := range part {
			all = append(all, Contig{Seq: fc.Seq, Reads: fc.Reads, Circular: fc.Circular})
		}
	}
	SortContigs(all)
	return all
}

// SortContigs orders contigs by (length desc, sequence asc) — the canonical
// order used for determinism checks and N50-style reporting.
func SortContigs(cs []Contig) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].Seq) != len(cs[j].Seq) {
			return len(cs[i].Seq) > len(cs[j].Seq)
		}
		return string(cs[i].Seq) < string(cs[j].Seq)
	})
}
