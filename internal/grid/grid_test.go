package grid

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		p := int(parts%32) + 1
		nn := int(n % 5000)
		prev := 0
		for i := 0; i < p; i++ {
			lo, hi := BlockRange(nn, p, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOwnerMatchesRange(t *testing.T) {
	f := func(n uint16, parts uint8, idx uint16) bool {
		p := int(parts%32) + 1
		nn := int(n%5000) + 1
		i := int(idx) % nn
		o := BlockOwner(nn, p, i)
		lo, hi := BlockRange(nn, p, o)
		return i >= lo && i < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowRangeEqualsUnionOfVecRanges(t *testing.T) {
	// The property the induced-subgraph row-allgather relies on: the matrix
	// row range of grid row i equals the union of vector blocks of the world
	// ranks in row i.
	for _, p := range []int{1, 4, 9, 16, 25} {
		dim := isqrt(p)
		for _, n := range []int{0, 1, 5, 97, 1000, 12345} {
			for i := 0; i < dim; i++ {
				rlo, rhi := BlockRange(n, dim, i)
				vlo, _ := BlockRange(n, p, i*dim)
				_, vhi := BlockRange(n, p, i*dim+dim-1)
				if rlo != vlo || rhi != vhi {
					t.Fatalf("P=%d n=%d row=%d: matrix [%d,%d) vs vec union [%d,%d)", p, n, i, rlo, rhi, vlo, vhi)
				}
			}
		}
	}
}

func TestGridLayoutAndComms(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := New(c)
				if g.Dim*g.Dim != p {
					panic("dim wrong")
				}
				if g.Rank(g.Row, g.Col) != c.Rank() {
					panic("rank layout wrong")
				}
				// Row communicator: rank within must equal grid col.
				if g.RowComm.Rank() != g.Col || g.RowComm.Size() != g.Dim {
					panic("row comm wrong")
				}
				if g.ColComm.Rank() != g.Row || g.ColComm.Size() != g.Dim {
					panic("col comm wrong")
				}
				// Transposed rank round-trips.
				tr := g.TransposedRank()
				if tr/g.Dim != g.Col || tr%g.Dim != g.Row {
					panic("transposed rank wrong")
				}
				// Row allgather of grid cols must yield 0..dim-1.
				cols := mpi.Allgather(g.RowComm, g.Col)
				for j, v := range cols {
					if v != j {
						panic("row comm ordering wrong")
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGridRequiresSquare(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) {
		New(c)
	})
	if err == nil {
		t.Fatal("expected panic for non-square world")
	}
}
