// Package grid organizes the P simulated ranks into the √P × √P process
// grid that ELBA (via CombBLAS) uses for its 2D matrix decomposition, and
// provides the block-range arithmetic shared by matrices and vectors.
//
// Ranks are laid out row-major: world rank r sits at grid position
// (r / √P, r % √P). Vectors of length n are block-distributed across all P
// ranks in world-rank order. With the balanced block formula used here, the
// union of the vector blocks owned by the ranks of grid row i is exactly the
// matrix row range of grid row i — the property the paper's induced-subgraph
// algorithm exploits when it allgathers the assignment vector over the row
// communicator (Figure 2).
package grid

import (
	"fmt"

	"repro/internal/mpi"
)

// Grid is one rank's view of the √P × √P process grid.
type Grid struct {
	Comm *mpi.Comm // the full communicator (all P ranks)
	Dim  int       // √P
	Row  int       // this rank's grid row
	Col  int       // this rank's grid column

	// RowComm connects the ranks of this grid row (rank within = grid col).
	RowComm *mpi.Comm
	// ColComm connects the ranks of this grid column (rank within = grid row).
	ColComm *mpi.Comm
}

// New builds the grid; the communicator size must be a perfect square
// (the paper's rank counts 576..4096 all are).
func New(c *mpi.Comm) *Grid {
	p := c.Size()
	dim := isqrt(p)
	if dim*dim != p {
		panic(fmt.Sprintf("grid: communicator size %d is not a perfect square", p))
	}
	row, col := c.Rank()/dim, c.Rank()%dim
	g := &Grid{Comm: c, Dim: dim, Row: row, Col: col}
	g.RowComm = c.Split(row, col)
	g.ColComm = c.Split(col, row)
	return g
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Rank returns the world rank of grid position (i, j).
func (g *Grid) Rank(i, j int) int { return i*g.Dim + j }

// TransposedRank returns the world rank of the grid-transposed position,
// the partner in the induced-subgraph point-to-point exchange.
func (g *Grid) TransposedRank() int { return g.Rank(g.Col, g.Row) }

// BlockRange splits n elements into parts balanced blocks and returns the
// half-open range [lo, hi) of block idx.
func BlockRange(n, parts, idx int) (lo, hi int) {
	return idx * n / parts, (idx + 1) * n / parts
}

// BlockOwner returns which of parts balanced blocks owns element idx.
func BlockOwner(n, parts, idx int) int {
	if n == 0 {
		return 0
	}
	// Initial guess, then correct for integer-division rounding.
	o := idx * parts / n
	for {
		lo, hi := BlockRange(n, parts, o)
		if idx < lo {
			o--
		} else if idx >= hi {
			o++
		} else {
			return o
		}
	}
}

// RowRange returns the global matrix row range owned by grid row i for an
// n-row matrix.
func (g *Grid) RowRange(n, i int) (lo, hi int) { return BlockRange(n, g.Dim, i) }

// ColRange returns the global matrix column range owned by grid column j
// for an n-column matrix.
func (g *Grid) ColRange(n, j int) (lo, hi int) { return BlockRange(n, g.Dim, j) }

// MyRowRange returns this rank's global row range for an n-row matrix.
func (g *Grid) MyRowRange(n int) (lo, hi int) { return BlockRange(n, g.Dim, g.Row) }

// MyColRange returns this rank's global column range for an n-col matrix.
func (g *Grid) MyColRange(n int) (lo, hi int) { return BlockRange(n, g.Dim, g.Col) }

// VecRange returns the block of an n-vector owned by world rank r.
func (g *Grid) VecRange(n, r int) (lo, hi int) { return BlockRange(n, g.Comm.Size(), r) }

// MyVecRange returns this rank's block of an n-vector.
func (g *Grid) MyVecRange(n int) (lo, hi int) { return BlockRange(n, g.Comm.Size(), g.Comm.Rank()) }

// VecOwner returns the world rank owning element idx of an n-vector.
func (g *Grid) VecOwner(n, idx int) int { return BlockOwner(n, g.Comm.Size(), idx) }

// RowBlockOwner returns the grid row owning global matrix row idx.
func (g *Grid) RowBlockOwner(n, idx int) int { return BlockOwner(n, g.Dim, idx) }

// ColBlockOwner returns the grid column owning global matrix column idx.
func (g *Grid) ColBlockOwner(n, idx int) int { return BlockOwner(n, g.Dim, idx) }

// BlockOwnerRank returns the world rank owning matrix entry (r, c) of an
// nr × nc matrix.
func (g *Grid) BlockOwnerRank(nr, nc, r, c int) int {
	return g.Rank(BlockOwner(nr, g.Dim, r), BlockOwner(nc, g.Dim, c))
}
