package spmat

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
)

// TestSpGEMMAsyncMatchesBlocking: the IBcast prefetch pipeline must produce
// the same product, the same work counter, and the same traffic as the
// blocking SUMMA on every grid size.
func TestSpGEMMAsyncMatchesBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	aT := globalTriples(rng, 33, 29, 0.15)
	bT := globalTriples(rng, 29, 31, 0.15)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 33, 29, aT, nil)
		b := FromGlobalTriples(g, 29, 31, bT, nil)

		var prodSync, prodAsync int64
		cs := SpGEMMCounted(a, b, plusTimes, &prodSync)
		bytesBefore := g.Comm.BytesSent()
		asyncBefore := g.Comm.BytesAsync()
		ca := SpGEMMAsync(a, b, plusTimes, &prodAsync)
		asyncSent := g.Comm.BytesAsync() - asyncBefore
		totalSent := g.Comm.BytesSent() - bytesBefore

		if prodSync != prodAsync {
			panic("async SUMMA computed a different product count")
		}
		gs := cs.GatherTriples(0)
		ga := ca.GatherTriples(0)
		if g.Comm.Rank() == 0 && !reflect.DeepEqual(gs, ga) {
			panic("async SUMMA product differs from blocking product")
		}
		// Every SUMMA byte of the async run travelled through the
		// nonblocking layer (GatherTriples excluded from the window).
		if asyncSent != totalSent {
			panic("async SUMMA sent bytes outside the nonblocking layer")
		}
	})
}
