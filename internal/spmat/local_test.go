package spmat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// plusTimes is the ordinary (+, ×) semiring on int64.
var plusTimes = Semiring[int64, int64, int64]{
	Mul: func(a, b int64) (int64, bool) { return a * b, true },
	Add: func(a, b int64) int64 { return a + b },
}

func randCOO(rng *rand.Rand, nr, nc int32, density float64) COO[int64] {
	var ts []Triple[int64]
	for r := int32(0); r < nr; r++ {
		for c := int32(0); c < nc; c++ {
			if rng.Float64() < density {
				ts = append(ts, Triple[int64]{Row: r, Col: c, Val: int64(rng.Intn(9) + 1)})
			}
		}
	}
	return NewCOO(nr, nc, ts, nil)
}

func toDense(a COO[int64]) [][]int64 {
	d := make([][]int64, a.NR)
	for i := range d {
		d[i] = make([]int64, a.NC)
	}
	for _, t := range a.Ts {
		d[t.Row][t.Col] = t.Val
	}
	return d
}

func denseMul(a, b [][]int64) [][]int64 {
	nr, k, nc := len(a), len(b), len(b[0])
	c := make([][]int64, nr)
	for i := range c {
		c[i] = make([]int64, nc)
		for j := 0; j < nc; j++ {
			var s int64
			for x := 0; x < k; x++ {
				s += a[i][x] * b[x][j]
			}
			c[i][j] = s
		}
	}
	return c
}

func TestNewCOOSortsAndCombines(t *testing.T) {
	ts := []Triple[int64]{
		{Row: 1, Col: 1, Val: 5},
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 1, Val: 3},
		{Row: 2, Col: 0, Val: 1},
	}
	a := NewCOO(3, 2, ts, func(x, y int64) int64 { return x + y })
	want := []Triple[int64]{
		{Row: 2, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 1, Val: 8},
	}
	if !reflect.DeepEqual(a.Ts, want) {
		t.Fatalf("got %v", a.Ts)
	}
}

func TestNewCOOPanicsOnDuplicateWithoutCombiner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2, []Triple[int64]{{0, 0, 1}, {0, 0, 2}}, nil)
}

func TestNewCOOPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2, []Triple[int64]{{5, 0, 1}}, nil)
}

func TestCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randCOO(rng, int32(rng.Intn(20)+1), int32(rng.Intn(20)+1), 0.3)
		back := a.ToCSC().ToCOO()
		return reflect.DeepEqual(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// hypersparse: many empty columns
		a := randCOO(rng, int32(rng.Intn(30)+1), int32(rng.Intn(30)+1), 0.05)
		csc := a.ToCSC()
		d := csc.ToDCSC()
		if d.Nnz() != a.Nnz() {
			return false
		}
		back := d.ToCSC()
		return reflect.DeepEqual(csc, back) || (a.Nnz() == 0 && back.ToCOO().Nnz() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSCOnlyStoresNonEmptyColumns(t *testing.T) {
	a := NewCOO(4, 100, []Triple[int64]{{0, 3, 1}, {2, 3, 2}, {1, 97, 3}}, nil)
	d := a.ToCSC().ToDCSC()
	if len(d.JC) != 2 || d.JC[0] != 3 || d.JC[1] != 97 {
		t.Fatalf("JC = %v", d.JC)
	}
	if len(d.CP) != 3 || d.CP[2] != 3 {
		t.Fatalf("CP = %v", d.CP)
	}
}

func TestColDegree(t *testing.T) {
	a := NewCOO(4, 3, []Triple[int64]{{0, 0, 1}, {1, 0, 1}, {3, 2, 1}}, nil)
	csc := a.ToCSC()
	for j, want := range []int32{2, 0, 1} {
		if got := csc.ColDegree(int32(j)); got != want {
			t.Fatalf("deg(%d) = %d, want %d", j, got, want)
		}
	}
}

func TestMultiplyMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, k, nc := int32(rng.Intn(15)+1), int32(rng.Intn(15)+1), int32(rng.Intn(15)+1)
		a := randCOO(rng, nr, k, 0.35)
		b := randCOO(rng, k, nc, 0.35)
		got := toDense(COO[int64]{NR: nr, NC: nc, Ts: Multiply(a.ToCSC(), b.ToCSC(), plusTimes).Ts})
		want := denseMul(toDense(a), toDense(b))
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyAnnihilation(t *testing.T) {
	// A semiring whose Mul rejects products with odd results must produce
	// only entries built from surviving products.
	sr := Semiring[int64, int64, int64]{
		Mul: func(a, b int64) (int64, bool) { v := a * b; return v, v%2 == 0 },
		Add: func(a, b int64) int64 { return a + b },
	}
	a := NewCOO(2, 2, []Triple[int64]{{0, 0, 3}, {0, 1, 2}}, nil)
	b := NewCOO(2, 1, []Triple[int64]{{0, 0, 5}, {1, 0, 7}}, nil)
	got := Multiply(a.ToCSC(), b.ToCSC(), sr)
	// products: 3*5=15 (dropped), 2*7=14 (kept)
	want := []Triple[int64]{{0, 0, 14}}
	if !reflect.DeepEqual(got.Ts, want) {
		t.Fatalf("got %v", got.Ts)
	}
}

func TestTransposeLocalInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randCOO(rng, int32(rng.Intn(12)+1), int32(rng.Intn(12)+1), 0.3)
		back := TransposeLocal(TransposeLocal(a, nil), nil)
		return reflect.DeepEqual(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeLocalMirror(t *testing.T) {
	a := NewCOO(2, 2, []Triple[int64]{{0, 1, 5}}, nil)
	b := TransposeLocal(a, func(v int64) int64 { return -v })
	want := []Triple[int64]{{1, 0, -5}}
	if !reflect.DeepEqual(b.Ts, want) {
		t.Fatalf("got %v", b.Ts)
	}
}
