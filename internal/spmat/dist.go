package spmat

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Dist is a 2D block-distributed sparse matrix: grid rank (i, j) owns the
// block rows BlockRange(NR, √P, i) × cols BlockRange(NC, √P, j). Local
// triples keep their global indices.
type Dist[T any] struct {
	G                          *grid.Grid
	NR, NC                     int32
	RowLo, RowHi, ColLo, ColHi int32
	Local                      COO[T] // dims NR×NC with global indices restricted to this block
}

// newDistShell prepares an empty matrix with the block geometry filled in.
func newDistShell[T any](g *grid.Grid, nr, nc int32) *Dist[T] {
	rlo, rhi := g.MyRowRange(int(nr))
	clo, chi := g.MyColRange(int(nc))
	return &Dist[T]{
		G: g, NR: nr, NC: nc,
		RowLo: int32(rlo), RowHi: int32(rhi),
		ColLo: int32(clo), ColHi: int32(chi),
		Local: COO[T]{NR: nr, NC: nc},
	}
}

// owns reports whether (r, c) belongs to this rank's block.
func (a *Dist[T]) owns(r, c int32) bool {
	return r >= a.RowLo && r < a.RowHi && c >= a.ColLo && c < a.ColHi
}

// NewDist builds a distributed matrix from arbitrarily located triples: each
// rank contributes any triples it produced; they are routed to their block
// owner with one Alltoallv and combined there (collective).
func NewDist[T any](g *grid.Grid, nr, nc int32, mine []Triple[T], combine func(T, T) T) *Dist[T] {
	a := newDistShell[T](g, nr, nc)
	p := g.Comm.Size()
	send := make([][]Triple[T], p)
	for _, t := range mine {
		o := g.BlockOwnerRank(int(nr), int(nc), int(t.Row), int(t.Col))
		send[o] = append(send[o], t)
	}
	parts := mpi.Alltoallv(g.Comm, send)
	var ts []Triple[T]
	for _, part := range parts {
		ts = append(ts, part...)
	}
	for _, t := range ts {
		if !a.owns(t.Row, t.Col) {
			panic(fmt.Sprintf("spmat: routed triple (%d,%d) outside block", t.Row, t.Col))
		}
	}
	a.Local = NewCOO(nr, nc, ts, combine)
	return a
}

// FromGlobalTriples builds the matrix when every rank deterministically holds
// the full triple set (tests): each rank keeps its block, no communication.
func FromGlobalTriples[T any](g *grid.Grid, nr, nc int32, all []Triple[T], combine func(T, T) T) *Dist[T] {
	a := newDistShell[T](g, nr, nc)
	var ts []Triple[T]
	for _, t := range all {
		if a.owns(t.Row, t.Col) {
			ts = append(ts, t)
		}
	}
	a.Local = NewCOO(nr, nc, ts, combine)
	return a
}

// FromLocalTriples rebuilds a distributed matrix from one rank's previously
// dumped local block — the checkpoint restore path. The triples must already
// be canonical (column-major, no duplicates) and lie inside this rank's block
// of the nr×nc grid distribution, which holds for any slice taken from
// Local.Ts of a matrix with the same grid and dims. No communication.
func FromLocalTriples[T any](g *grid.Grid, nr, nc int32, ts []Triple[T]) *Dist[T] {
	a := newDistShell[T](g, nr, nc)
	for _, t := range ts {
		if !a.owns(t.Row, t.Col) {
			panic(fmt.Sprintf("spmat: restored triple (%d,%d) outside block [%d,%d)x[%d,%d)",
				t.Row, t.Col, a.RowLo, a.RowHi, a.ColLo, a.ColHi))
		}
	}
	if len(ts) > 0 {
		a.Local.Ts = ts
	}
	return a
}

// Nnz returns the global nonzero count (collective).
func (a *Dist[T]) Nnz() int64 {
	return mpi.Allreduce(a.G.Comm, int64(a.Local.Nnz()), func(x, y int64) int64 { return x + y })
}

// GatherTriples collects the full matrix at root (collective; nil elsewhere).
func (a *Dist[T]) GatherTriples(root int) []Triple[T] {
	parts := mpi.Gatherv(a.G.Comm, root, a.Local.Ts)
	if a.G.Comm.Rank() != root {
		return nil
	}
	var ts []Triple[T]
	for _, p := range parts {
		ts = append(ts, p...)
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Col != ts[j].Col {
			return ts[i].Col < ts[j].Col
		}
		return ts[i].Row < ts[j].Row
	})
	return ts
}

// Apply transforms every local nonzero in place; returning false drops the
// entry (the paper's Prune). Purely local.
func (a *Dist[T]) Apply(f func(r, c int32, v T) (T, bool)) {
	out := a.Local.Ts[:0]
	for _, t := range a.Local.Ts {
		if v, keep := f(t.Row, t.Col, t.Val); keep {
			t.Val = v
			out = append(out, t)
		}
	}
	a.Local.Ts = out
}

// Clone deep-copies the distributed matrix (local block only; no comm).
func (a *Dist[T]) Clone() *Dist[T] {
	b := *a
	b.Local = a.Local.Clone()
	return &b
}

// Transpose returns Aᵀ, mirroring each value with mirror (nil = unchanged).
// Triples are routed to the transposed block owner (collective). For square
// matrices on a square grid this is the pairwise exchange with the
// transposed rank that the paper describes.
func Transpose[T any](a *Dist[T], mirror func(T) T) *Dist[T] {
	g := a.G
	b := newDistShell[T](g, a.NC, a.NR)
	p := g.Comm.Size()
	send := make([][]Triple[T], p)
	for _, t := range a.Local.Ts {
		v := t.Val
		if mirror != nil {
			v = mirror(v)
		}
		o := g.BlockOwnerRank(int(a.NC), int(a.NR), int(t.Col), int(t.Row))
		send[o] = append(send[o], Triple[T]{Row: t.Col, Col: t.Row, Val: v})
	}
	parts := mpi.Alltoallv(g.Comm, send)
	var ts []Triple[T]
	for _, part := range parts {
		ts = append(ts, part...)
	}
	b.Local = NewCOO(a.NC, a.NR, ts, nil)
	return b
}

// Add merges two equally-shaped distributed matrices entry-wise (local op;
// both operands share block geometry by construction).
func Add[T any](a, b *Dist[T], combine func(T, T) T) *Dist[T] {
	if a.NR != b.NR || a.NC != b.NC {
		panic("spmat: Add shape mismatch")
	}
	out := a.Clone()
	ts := append(out.Local.Ts, b.Local.Ts...)
	out.Local = NewCOO(a.NR, a.NC, ts, combine)
	return out
}

// RowDegrees returns the global row nonzero counts as a block-distributed
// vector (collective): local per-row counts are summed across the grid row
// with an allreduce on the row communicator — the "summation reduction over
// the row dimension" of §4.2 — then each rank keeps its vector block.
func (a *Dist[T]) RowDegrees() *DistVec[int32] {
	span := int(a.RowHi - a.RowLo)
	counts := make([]int32, span)
	for _, t := range a.Local.Ts {
		counts[t.Row-a.RowLo]++
	}
	full := mpi.AllreduceSlice(a.G.RowComm, counts, func(x, y int32) int32 { return x + y })
	v := NewDistVec[int32](a.G, int(a.NR))
	copy(v.Local, full[int(v.Lo)-int(a.RowLo):int(v.Hi)-int(a.RowLo)])
	return v
}

// MaskRowsCols removes every nonzero whose row or column appears in ids
// (which must be identical on all ranks — the branch vector after its
// allgather). Indices stay valid: the matrix is not re-indexed, exactly as
// §4.2 prescribes.
func (a *Dist[T]) MaskRowsCols(ids []int32) {
	if len(ids) == 0 {
		return
	}
	sorted := make([]int32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	in := func(x int32) bool {
		k := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
		return k < len(sorted) && sorted[k] == x
	}
	a.Apply(func(r, c int32, v T) (T, bool) {
		return v, !in(r) && !in(c)
	})
}

// BuildIndex returns a lookup map from packed (row,col) to the value — used
// for the element-wise compare in transitive reduction, where both operands
// share the same distribution.
func (a *Dist[T]) BuildIndex() map[int64]T {
	m := make(map[int64]T, a.Local.Nnz())
	for _, t := range a.Local.Ts {
		m[int64(t.Row)<<32|int64(uint32(t.Col))] = t.Val
	}
	return m
}

// SpGEMM computes A ⊗ B with the SUMMA algorithm: √P stages; in stage s the
// ranks of grid column s broadcast their A blocks along their grid row, the
// ranks of grid row s broadcast their B blocks along their grid column, and
// every rank accumulates the local product (collective).
func SpGEMM[A, B, C any](a *Dist[A], b *Dist[B], sr Semiring[A, B, C]) *Dist[C] {
	return SpGEMMCounted(a, b, sr, nil)
}

// SpGEMMCounted is SpGEMM with a semiring-product work counter for the
// performance model (products may be nil).
func SpGEMMCounted[A, B, C any](a *Dist[A], b *Dist[B], sr Semiring[A, B, C], products *int64) *Dist[C] {
	return spgemm(a, b, sr, products, false)
}

// SpGEMMAsync is SpGEMMCounted with nonblocking SUMMA broadcasts: round
// r+1's A/B panels are prefetched with IBcast while round r multiplies, so
// panel transfer hides behind the local product. Accumulation order,
// results, and byte/message counters are identical to the blocking form —
// only the overlap attribution and wall time change.
func SpGEMMAsync[A, B, C any](a *Dist[A], b *Dist[B], sr Semiring[A, B, C], products *int64) *Dist[C] {
	return spgemm(a, b, sr, products, true)
}

// spgemm is the shared SUMMA body; async selects blocking broadcasts or the
// IBcast prefetch pipeline. The local product of each round is a Gustavson
// pass with the generation-tagged sparse accumulator of local.go over the
// block's row span; per-round emissions are column-clustered, so the final
// cross-round merge is the radix path of NewCOO with the semiring Add as the
// combiner (Add is associative and commutative — the precondition SUMMA's
// stage-order-independent accumulation already imposes).
func spgemm[A, B, C any](a *Dist[A], b *Dist[B], sr Semiring[A, B, C], products *int64, async bool) *Dist[C] {
	if a.G != b.G {
		panic("spmat: SpGEMM operands on different grids")
	}
	if a.NC != b.NR {
		panic(fmt.Sprintf("spmat: SpGEMM inner dims %d != %d", a.NC, b.NR))
	}
	g := a.G
	out := newDistShell[C](g, a.NR, b.NC)
	acc := newSPA[C](out.RowHi - out.RowLo)
	var ts []Triple[C]
	lane := g.Comm.Lane()
	panelNnz := g.Comm.Metrics().Histogram("spmat.panel_nnz")
	var prod0 int64
	if products != nil {
		prod0 = *products
	}

	// post starts the round-s panel broadcasts (nonblocking path only). The
	// post order (A then B) matches the blocking call order, so tag sequences
	// line up across ranks.
	post := func(s int) (*mpi.BcastRequest[Triple[A]], *mpi.BcastRequest[Triple[B]]) {
		var ablk []Triple[A]
		if g.Col == s {
			ablk = a.Local.Ts
		}
		var bblk []Triple[B]
		if g.Row == s {
			bblk = b.Local.Ts
		}
		return mpi.IBcast(g.RowComm, s, ablk), mpi.IBcast(g.ColComm, s, bblk)
	}
	var reqA *mpi.BcastRequest[Triple[A]]
	var reqB *mpi.BcastRequest[Triple[B]]
	if async {
		reqA, reqB = post(0)
	}
	for s := 0; s < g.Dim; s++ {
		var ablk []Triple[A]
		var bblk []Triple[B]
		if async {
			// Collect round s, then immediately post round s+1 so its panels
			// travel while this round multiplies.
			ablk = reqA.WaitValue()
			bblk = reqB.WaitValue()
			if s+1 < g.Dim {
				reqA, reqB = post(s + 1)
			}
		} else {
			// Broadcast A(:, s-block) along grid rows, B(s-block, :) along
			// grid columns.
			if g.Col == s {
				ablk = a.Local.Ts
			}
			ablk = mpi.Bcast(g.RowComm, s, ablk)
			if g.Row == s {
				bblk = b.Local.Ts
			}
			bblk = mpi.Bcast(g.ColComm, s, bblk)
		}
		panelNnz.Observe(int64(len(ablk)))
		panelNnz.Observe(int64(len(bblk)))
		roundStart := lane.Start()
		// Local product: bucket A by inner index with a counting scatter
		// (exact sizes, no per-bucket append growth), then walk B's column
		// runs — bblk is canonical column-major — accumulating each output
		// column in the SPA.
		kLo, kHi := grid.BlockRange(int(a.NC), g.Dim, s)
		span := kHi - kLo
		starts := make([]int32, span+1)
		for _, t := range ablk {
			starts[int(t.Col)-kLo+1]++
		}
		for i := 0; i < span; i++ {
			starts[i+1] += starts[i]
		}
		flat := make([]Triple[A], len(ablk))
		next := make([]int32, span)
		copy(next, starts[:span])
		for _, t := range ablk {
			idx := int(t.Col) - kLo
			flat[next[idx]] = t
			next[idx]++
		}
		for lo := 0; lo < len(bblk); {
			j := bblk[lo].Col
			hi := lo + 1
			for hi < len(bblk) && bblk[hi].Col == j {
				hi++
			}
			acc.reset()
			for _, bt := range bblk[lo:hi] {
				kidx := int(bt.Row) - kLo
				for q := starts[kidx]; q < starts[kidx+1]; q++ {
					at := flat[q]
					if products != nil {
						*products++
					}
					if cv, ok := sr.Mul(at.Val, bt.Val); ok {
						acc.accumulate(at.Row-out.RowLo, cv, sr.Add)
					}
				}
			}
			nBefore := len(ts)
			ts = acc.emit(ts, j)
			for i := nBefore; i < len(ts); i++ {
				ts[i].Row += out.RowLo // SPA indices are span-relative
			}
			lo = hi
		}
		if lane != nil {
			lane.Span(0, "spmat", "summa.round", roundStart,
				obs.Arg{K: "s", V: int64(s)}, obs.Arg{K: "a_nnz", V: int64(len(ablk))},
				obs.Arg{K: "b_nnz", V: int64(len(bblk))})
		}
	}
	if products != nil {
		g.Comm.Metrics().Counter("spmat.spgemm_products").Add(*products - prod0)
	}
	out.Local = NewCOO(a.NR, b.NC, ts, sr.Add)
	return out
}

// DistVec is a dense vector block-distributed across all P ranks in
// world-rank order; rank r owns BlockRange(N, P, r). With the row-major grid
// layout, the union of the blocks of grid row i is exactly the matrix row
// range of grid row i (see package grid) — the property behind the paper's
// induced-subgraph communication (Figure 2).
type DistVec[T any] struct {
	G      *grid.Grid
	N      int
	Lo, Hi int32
	Local  []T
}

// NewDistVec allocates a zero vector of length n.
func NewDistVec[T any](g *grid.Grid, n int) *DistVec[T] {
	lo, hi := g.MyVecRange(n)
	return &DistVec[T]{G: g, N: n, Lo: int32(lo), Hi: int32(hi), Local: make([]T, hi-lo)}
}

// VecFromGlobal builds a vector when all ranks hold the full content
// deterministically (no comm; each keeps its block).
func VecFromGlobal[T any](g *grid.Grid, full []T) *DistVec[T] {
	v := NewDistVec[T](g, len(full))
	copy(v.Local, full[v.Lo:v.Hi])
	return v
}

// Owns reports whether index i is in this rank's block.
func (v *DistVec[T]) Owns(i int32) bool { return i >= v.Lo && i < v.Hi }

// Get returns a locally-owned element.
func (v *DistVec[T]) Get(i int32) T {
	if !v.Owns(i) {
		panic(fmt.Sprintf("spmat: vec index %d outside local block [%d,%d)", i, v.Lo, v.Hi))
	}
	return v.Local[i-v.Lo]
}

// Set updates a locally-owned element.
func (v *DistVec[T]) Set(i int32, val T) {
	if !v.Owns(i) {
		panic(fmt.Sprintf("spmat: vec index %d outside local block [%d,%d)", i, v.Lo, v.Hi))
	}
	v.Local[i-v.Lo] = val
}

// Owner returns the rank owning element i.
func (v *DistVec[T]) Owner(i int32) int { return v.G.VecOwner(v.N, int(i)) }

// AllgatherFull replicates the vector on every rank (collective).
func (v *DistVec[T]) AllgatherFull() []T {
	flat, _ := mpi.AllgathervFlat(v.G.Comm, v.Local)
	return flat
}

// RowColGather implements the Figure 2 exchange for a square-matrix-aligned
// vector: an Allgatherv over the row communicator yields the entries for
// this rank's row range; a point-to-point exchange with the transposed rank
// then yields the entries for the column range (diagonal ranks already have
// them). Returned slices are indexed from RowLo / ColLo of an NxN matrix
// with N = v.N.
func (v *DistVec[T]) RowColGather() (rowVals, colVals []T) {
	g := v.G
	rowVals, _ = mpi.AllgathervFlat(g.RowComm, v.Local)
	if g.Row == g.Col {
		colVals = make([]T, len(rowVals))
		copy(colVals, rowVals)
		return rowVals, colVals
	}
	partner := g.TransposedRank()
	const tag = 0x51d // private tag for this exchange pattern
	mpi.Send(g.Comm, partner, tag, rowVals)
	colVals = mpi.Recv[T](g.Comm, partner, tag)
	return rowVals, colVals
}

// Fetch returns the values at arbitrary global indices, aligned with ids
// (collective: every rank must call, possibly with no ids). Routed to owners
// and answered with a mirrored Alltoallv — the pattern LACC uses to chase
// parent pointers.
func (v *DistVec[T]) Fetch(ids []int32) []T {
	p := v.G.Comm.Size()
	req := make([][]int32, p)
	backIdx := make([][]int, p) // position in ids for each routed request
	for pos, id := range ids {
		o := v.Owner(id)
		req[o] = append(req[o], id)
		backIdx[o] = append(backIdx[o], pos)
	}
	got := mpi.Alltoallv(v.G.Comm, req)
	resp := make([][]T, p)
	for r := 0; r < p; r++ {
		resp[r] = make([]T, len(got[r]))
		for i, id := range got[r] {
			resp[r][i] = v.Get(id)
		}
	}
	back := mpi.Alltoallv(v.G.Comm, resp)
	out := make([]T, len(ids))
	for r := 0; r < p; r++ {
		for i, pos := range backIdx[r] {
			out[pos] = back[r][i]
		}
	}
	return out
}

// ScatterMin routes (index, value) proposals to their owners and folds them
// into the vector with a minimum — the hooking write of connected
// components (collective).
func ScatterMin(v *DistVec[int32], idx []int32, vals []int32) {
	p := v.G.Comm.Size()
	type prop struct{ I, V int32 }
	send := make([][]prop, p)
	for k := range idx {
		o := v.Owner(idx[k])
		send[o] = append(send[o], prop{I: idx[k], V: vals[k]})
	}
	got := mpi.Alltoallv(v.G.Comm, send)
	for _, part := range got {
		for _, pr := range part {
			if pr.V < v.Get(pr.I) {
				v.Set(pr.I, pr.V)
			}
		}
	}
}

// ScatterBoolAnd routes (index, value) proposals to their owners and ANDs
// them into a bool vector — the star-correction write of connected
// components (collective).
func ScatterBoolAnd(v *DistVec[bool], idx []int32, vals []bool) {
	p := v.G.Comm.Size()
	type prop struct {
		I int32
		V bool
	}
	send := make([][]prop, p)
	for k := range idx {
		o := v.Owner(idx[k])
		send[o] = append(send[o], prop{I: idx[k], V: vals[k]})
	}
	got := mpi.Alltoallv(v.G.Comm, send)
	for _, part := range got {
		for _, pr := range part {
			v.Set(pr.I, v.Get(pr.I) && pr.V)
		}
	}
}
