package spmat

import (
	"repro/internal/mpi"
)

// SpMV computes y = A ⊗ x over a semiring on the 2D grid — the
// matrix-vector kernel CombBLAS-style graph algorithms (like LACC's
// hooking) are written in.
//
// Communication pattern (standard 2D SpMV):
//  1. every rank obtains x over its COLUMN range — for a square matrix this
//     is the transposed-rank exchange of Figure 2 (x is distributed like
//     all vectors, block over ranks in row-major order);
//  2. each rank multiplies its local block into partial y values for its
//     ROW range;
//  3. partials are combined across each grid row with an element-wise
//     reduction on the row communicator, and each rank keeps its vector
//     block of the result.
//
// Mul may annihilate (return false); rows with no surviving product are
// left at identity. identity must be neutral for combine (e.g. +∞ for min,
// 0 for sum): the row reduction folds one identity-initialized partial per
// grid-row rank.
func SpMV[T, V, W any](a *Dist[T], x *DistVec[V], sr Semiring[T, V, W], identity W, combine func(W, W) W) *DistVec[W] {
	if int32(x.N) != a.NC {
		panic("spmat: SpMV dimension mismatch")
	}
	g := a.G
	_, colX := x.RowColGather()
	span := int(a.RowHi - a.RowLo)
	partial := make([]W, span)
	for i := range partial {
		partial[i] = identity
	}
	for _, t := range a.Local.Ts {
		w, ok := sr.Mul(t.Val, colX[t.Col-a.ColLo])
		if !ok {
			continue
		}
		partial[t.Row-a.RowLo] = combine(partial[t.Row-a.RowLo], w)
	}
	full := mpi.AllreduceSlice(g.RowComm, partial, combine)
	// A rank's vector block always sits inside its matrix row range (the
	// package grid layout invariant), so the result block is a plain slice.
	y := NewDistVec[W](g, int(a.NR))
	lo, _ := g.MyVecRange(int(a.NR))
	copy(y.Local, full[int32(lo)-a.RowLo:int32(lo)-a.RowLo+int32(len(y.Local))])
	return y
}
