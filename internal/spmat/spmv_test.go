package spmat

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestSpMVMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := int32(30)
	all := globalTriples(rng, n, n, 0.2)
	xFull := make([]int64, n)
	for i := range xFull {
		xFull[i] = int64(rng.Intn(20) - 10)
	}
	// Dense reference: y_i = Σ_j A(i,j)·x_j.
	want := make([]int64, n)
	for _, tr := range all {
		want[tr.Row] += tr.Val * xFull[tr.Col]
	}
	sr := Semiring[int64, int64, int64]{
		Mul: func(a, x int64) (int64, bool) { return a * x, true },
		Add: nil, // SpMV uses the explicit combine
	}
	for _, p := range gridSizes {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				a := FromGlobalTriples(g, n, n, all, nil)
				x := VecFromGlobal(g, xFull)
				y := SpMV(a, x, sr, 0, func(u, v int64) int64 { return u + v })
				got := y.AllgatherFull()
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("SpMV mismatch\n got %v\nwant %v", got, want))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSpMVMinSemiring(t *testing.T) {
	// The LACC hooking shape: y_u = min over neighbors v of x_v.
	n := int32(8)
	edges := [][2]int32{{0, 1}, {1, 2}, {3, 4}, {6, 7}}
	var ts []Triple[int64]
	for _, e := range edges {
		ts = append(ts, Triple[int64]{Row: e[0], Col: e[1], Val: 1},
			Triple[int64]{Row: e[1], Col: e[0], Val: 1})
	}
	xFull := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	const inf = int64(1 << 40)
	sr := Semiring[int64, int64, int64]{
		Mul: func(_ int64, x int64) (int64, bool) { return x, true },
	}
	want := []int64{20, 10, 20, 50, 40, inf, 80, 70}
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		a := FromGlobalTriples(g, n, n, ts, nil)
		x := VecFromGlobal(g, xFull)
		y := SpMV(a, x, sr, inf, func(u, v int64) int64 {
			if u < v {
				return u
			}
			return v
		})
		got := y.AllgatherFull()
		if !reflect.DeepEqual(got, want) {
			panic(fmt.Sprintf("min-SpMV: got %v want %v", got, want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpMVAnnihilation(t *testing.T) {
	// Mul that drops every product leaves the identity everywhere.
	n := int32(6)
	ts := []Triple[int64]{{Row: 0, Col: 1, Val: 1}, {Row: 2, Col: 3, Val: 1}}
	sr := Semiring[int64, int64, int64]{
		Mul: func(_, _ int64) (int64, bool) { return 0, false },
	}
	err := mpi.Run(1, func(c *mpi.Comm) {
		g := grid.New(c)
		a := FromGlobalTriples(g, n, n, ts, nil)
		x := VecFromGlobal(g, make([]int64, n))
		y := SpMV(a, x, sr, -7, func(u, v int64) int64 { return u + v })
		for _, v := range y.AllgatherFull() {
			if v != -7 {
				panic("identity not preserved under annihilation")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
