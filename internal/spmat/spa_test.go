package spmat

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// newCOOSortRef is the pre-radix NewCOO reference: a global comparison sort
// followed by the same dedup pass. The differential tests pin the
// column-clustered / bucketing / fallback paths to it.
func newCOOSortRef[T any](nr, nc int32, ts []Triple[T], combine func(T, T) T) COO[T] {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= nr || t.Col < 0 || t.Col >= nc {
			panic("ref: triple out of range")
		}
	}
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Col != ts[j].Col {
			return ts[i].Col < ts[j].Col
		}
		return ts[i].Row < ts[j].Row
	})
	out := ts[:0]
	for _, t := range ts {
		if n := len(out); n > 0 && out[n-1].Row == t.Row && out[n-1].Col == t.Col {
			if combine == nil {
				panic("ref: duplicate without combiner")
			}
			out[n-1].Val = combine(out[n-1].Val, t.Val)
			continue
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		out = nil
	}
	return COO[T]{NR: nr, NC: nc, Ts: out}
}

// TestNewCOOMatchesSortReference drives every sortColumnMajor path —
// clustered input, dense-enough-to-bucket shuffles, and the hypersparse
// fallback — with duplicates, against the comparison-sort reference.
func TestNewCOOMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nr := int32(1 + rng.Intn(40))
		// Mix shapes: small nc (bucket path), huge nc (fallback path).
		nc := int32(1 + rng.Intn(40))
		if trial%5 == 0 {
			nc = int32(1 << 20)
		}
		n := rng.Intn(120)
		ts := make([]Triple[int64], n)
		for i := range ts {
			c := rng.Int31n(nc)
			if nc > 1000 {
				c = rng.Int31n(50) * (nc / 64) // sparse spread over the huge range
			}
			ts[i] = Triple[int64]{Row: rng.Int31n(nr), Col: c, Val: int64(rng.Intn(50))}
		}
		if trial%3 == 0 {
			// Column-clustered variant (the SPA emission shape).
			sort.SliceStable(ts, func(i, j int) bool { return ts[i].Col < ts[j].Col })
		}
		ref := newCOOSortRef(nr, nc, append([]Triple[int64](nil), ts...), func(a, b int64) int64 { return a + b })
		got := NewCOO(nr, nc, append([]Triple[int64](nil), ts...), func(a, b int64) int64 { return a + b })
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d (nr=%d nc=%d n=%d): NewCOO diverged from sort reference", trial, nr, nc, n)
		}
	}
}

// TestNewCOOStableCombineOrder checks duplicates combine in input order on
// every path — the property the distributed SpGEMM merge relies on for
// bit-reproducible accumulation.
func TestNewCOOStableCombineOrder(t *testing.T) {
	first := func(a, b []int32) []int32 { return append(append([]int32(nil), a...), b...) }
	mk := func(vals ...int32) []Triple[[]int32] {
		ts := make([]Triple[[]int32], len(vals))
		for i, v := range vals {
			ts[i] = Triple[[]int32]{Row: 1, Col: 2, Val: []int32{v}}
		}
		return ts
	}
	// All duplicates of one cell, plus clutter to steer path choice.
	for _, pad := range []int{0, 3000} {
		ts := mk(10, 20, 30)
		for i := 0; i < pad; i++ {
			ts = append(ts, Triple[[]int32]{Row: int32(i % 7), Col: int32(i % 11), Val: nil})
		}
		got := NewCOO(40, 4000, ts, first)
		for _, tr := range got.Ts {
			if tr.Row == 1 && tr.Col == 2 {
				if !reflect.DeepEqual(tr.Val, []int32{10, 20, 30}) {
					t.Fatalf("pad=%d: combine order %v, want input order", pad, tr.Val)
				}
			}
		}
	}
}

// TestMultiplyMatchesMapKernel pins the SPA Gustavson kernel to the retained
// map-based reference on random matrices under (+,×).
func TestMultiplyMatchesMapKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nr := int32(1 + rng.Intn(30))
		k := int32(1 + rng.Intn(30))
		nc := int32(1 + rng.Intn(30))
		a := randCOO(rng, nr, k, rng.Float64()*0.4).ToCSC()
		b := randCOO(rng, k, nc, rng.Float64()*0.4).ToCSC()
		got := Multiply(a, b, plusTimes)
		ref := MultiplyMap(a, b, plusTimes)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: SPA multiply diverged from map reference", trial)
		}
	}
}

// TestMultiplyMatchesMapKernelAnnihilation repeats the differential check
// under a semiring whose Mul annihilates (the candidate-matrix pattern):
// rows whose every product annihilates must not appear.
func TestMultiplyMatchesMapKernelAnnihilation(t *testing.T) {
	odd := Semiring[int64, int64, int64]{
		Mul: func(a, b int64) (int64, bool) { p := a * b; return p, p%2 == 1 },
		Add: func(a, b int64) int64 { return a + b },
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		nr := int32(1 + rng.Intn(25))
		k := int32(1 + rng.Intn(25))
		nc := int32(1 + rng.Intn(25))
		a := randCOO(rng, nr, k, 0.3).ToCSC()
		b := randCOO(rng, k, nc, 0.3).ToCSC()
		got := Multiply(a, b, odd)
		ref := MultiplyMap(a, b, odd)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: annihilating multiply diverged from map reference", trial)
		}
	}
}

// TestMultiplyEmptyOperands checks the canonical nil form survives the SPA
// path (no touched rows must mean no emitted triples).
func TestMultiplyEmptyOperands(t *testing.T) {
	empty := COO[int64]{NR: 5, NC: 4}.ToCSC()
	b := randCOO(rand.New(rand.NewSource(3)), 4, 6, 0.5).ToCSC()
	if got := Multiply(empty, b, plusTimes); got.Ts != nil || got.NR != 5 || got.NC != 6 {
		t.Fatalf("empty ⊗ b = %+v, want nil triples", got)
	}
}

// TestSPAGenerationWraparound forces the uint32 generation counter over its
// wrap and checks stale tags cannot leak rows between columns.
func TestSPAGenerationWraparound(t *testing.T) {
	s := newSPA[int64](4)
	s.cur = ^uint32(0) - 1 // two resets from wrapping
	s.reset()
	s.accumulate(2, 7, nil)
	s.reset() // wraps: gen array must be hard-cleared
	if s.cur != 1 {
		t.Fatalf("cur = %d after wrap, want 1", s.cur)
	}
	if len(s.rows) != 0 {
		t.Fatal("rows not reset")
	}
	s.accumulate(1, 5, func(a, b int64) int64 { return a + b })
	ts := s.emit(nil, 0)
	want := []Triple[int64]{{Row: 1, Col: 0, Val: 5}}
	if !reflect.DeepEqual(ts, want) {
		t.Fatalf("post-wrap emit = %v, want %v (stale generation leaked)", ts, want)
	}
}
