package spmat

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

var gridSizes = []int{1, 4, 9, 16}

// runGrid executes fn on a P-rank grid for each test grid size.
func runGrid(t *testing.T, fn func(g *grid.Grid)) {
	t.Helper()
	for _, p := range gridSizes {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				fn(grid.New(c))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func globalTriples(rng *rand.Rand, nr, nc int32, density float64) []Triple[int64] {
	var ts []Triple[int64]
	for r := int32(0); r < nr; r++ {
		for c := int32(0); c < nc; c++ {
			if rng.Float64() < density {
				ts = append(ts, Triple[int64]{Row: r, Col: c, Val: int64(rng.Intn(9) + 1)})
			}
		}
	}
	return ts
}

func sortTriples(ts []Triple[int64]) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Col != ts[j].Col {
			return ts[i].Col < ts[j].Col
		}
		return ts[i].Row < ts[j].Row
	})
}

func TestNewDistRoutesToOwners(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all := globalTriples(rng, 37, 23, 0.2)
	runGrid(t, func(g *grid.Grid) {
		// Scatter triples round-robin over ranks as the "producers".
		var mine []Triple[int64]
		for i, tr := range all {
			if i%g.Comm.Size() == g.Comm.Rank() {
				mine = append(mine, tr)
			}
		}
		a := NewDist(g, 37, 23, mine, nil)
		// Every local triple must be inside the block.
		for _, tr := range a.Local.Ts {
			if !a.owns(tr.Row, tr.Col) {
				panic("triple outside block")
			}
		}
		got := a.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			want := append([]Triple[int64](nil), all...)
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				panic("gathered triples differ from input")
			}
		}
	})
}

func TestFromGlobalMatchesNewDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := globalTriples(rng, 19, 19, 0.25)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 19, 19, all, nil)
		var mine []Triple[int64]
		if g.Comm.Rank() == 0 {
			mine = all
		}
		b := NewDist(g, 19, 19, mine, nil)
		if !reflect.DeepEqual(a.Local, b.Local) {
			panic("FromGlobal and NewDist disagree")
		}
	})
}

func TestNnzGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := globalTriples(rng, 31, 17, 0.3)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 31, 17, all, nil)
		if a.Nnz() != int64(len(all)) {
			panic("global nnz wrong")
		}
	})
}

func TestTransposeInvolutionAndMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := globalTriples(rng, 26, 14, 0.3)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 26, 14, all, nil)
		at := Transpose(a, func(v int64) int64 { return -v })
		if at.NR != 14 || at.NC != 26 {
			panic("transpose dims wrong")
		}
		back := Transpose(at, func(v int64) int64 { return -v })
		got := back.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			want := append([]Triple[int64](nil), all...)
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				panic("transpose round-trip failed")
			}
		}
	})
}

func TestSpGEMMMatchesSerialMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nr, k, nc := int32(33), int32(29), int32(21)
	aT := globalTriples(rng, nr, k, 0.2)
	bT := globalTriples(rng, k, nc, 0.2)
	// Serial reference.
	ref := Multiply(NewCOO(nr, k, append([]Triple[int64](nil), aT...), nil).ToCSC(),
		NewCOO(k, nc, append([]Triple[int64](nil), bT...), nil).ToCSC(), plusTimes)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, nr, k, aT, nil)
		b := FromGlobalTriples(g, k, nc, bT, nil)
		c := SpGEMM(a, b, plusTimes)
		got := c.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			if !reflect.DeepEqual(got, ref.Ts) {
				panic("SpGEMM differs from serial reference")
			}
		}
	})
}

func TestSpGEMMSquareAAT(t *testing.T) {
	// The pipeline's shape: C = A·Aᵀ must be symmetric.
	rng := rand.New(rand.NewSource(7))
	nr, k := int32(24), int32(40)
	aT := globalTriples(rng, nr, k, 0.15)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, nr, k, aT, nil)
		at := Transpose(a, nil)
		c := SpGEMM(a, at, plusTimes)
		got := c.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			m := map[[2]int32]int64{}
			for _, tr := range got {
				m[[2]int32{tr.Row, tr.Col}] = tr.Val
			}
			for _, tr := range got {
				if m[[2]int32{tr.Col, tr.Row}] != tr.Val {
					panic("A·Aᵀ not symmetric")
				}
			}
		}
	})
}

func TestApplyPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	all := globalTriples(rng, 20, 20, 0.4)
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 20, 20, all, nil)
		a.Apply(func(r, c int32, v int64) (int64, bool) {
			return v * 10, v%2 == 0 // keep evens, scale by 10
		})
		got := a.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			var want []Triple[int64]
			for _, tr := range all {
				if tr.Val%2 == 0 {
					want = append(want, Triple[int64]{tr.Row, tr.Col, tr.Val * 10})
				}
			}
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				panic("apply/prune mismatch")
			}
		}
	})
}

func TestRowDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := int32(41)
	all := globalTriples(rng, n, n, 0.15)
	wantDeg := make([]int32, n)
	for _, tr := range all {
		wantDeg[tr.Row]++
	}
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, n, n, all, nil)
		deg := a.RowDegrees()
		full := deg.AllgatherFull()
		if !reflect.DeepEqual(full, wantDeg) {
			panic(fmt.Sprintf("degrees %v want %v", full, wantDeg))
		}
	})
}

func TestMaskRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := int32(25)
	all := globalTriples(rng, n, n, 0.3)
	mask := []int32{3, 11, 19}
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, n, n, all, nil)
		a.MaskRowsCols(mask)
		got := a.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			bad := map[int32]bool{3: true, 11: true, 19: true}
			var want []Triple[int64]
			for _, tr := range all {
				if !bad[tr.Row] && !bad[tr.Col] {
					want = append(want, tr)
				}
			}
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				panic("mask mismatch")
			}
		}
	})
}

func TestAddMerges(t *testing.T) {
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 10, 10, []Triple[int64]{{1, 1, 5}, {2, 3, 7}}, nil)
		b := FromGlobalTriples(g, 10, 10, []Triple[int64]{{1, 1, 3}, {4, 4, 1}}, nil)
		c := Add(a, b, func(x, y int64) int64 { return x + y })
		got := c.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			want := []Triple[int64]{{1, 1, 8}, {2, 3, 7}, {4, 4, 1}}
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("add mismatch: %v", got))
			}
		}
	})
}

func TestBuildIndex(t *testing.T) {
	runGrid(t, func(g *grid.Grid) {
		a := FromGlobalTriples(g, 10, 10, []Triple[int64]{{1, 2, 5}, {7, 9, 3}}, nil)
		idx := a.BuildIndex()
		for _, tr := range a.Local.Ts {
			if idx[int64(tr.Row)<<32|int64(uint32(tr.Col))] != tr.Val {
				panic("index lookup wrong")
			}
		}
	})
}

func TestDistVecFullAndRowCol(t *testing.T) {
	n := 35
	full := make([]int64, n)
	for i := range full {
		full[i] = int64(i * i)
	}
	runGrid(t, func(g *grid.Grid) {
		v := VecFromGlobal(g, full)
		if !reflect.DeepEqual(v.AllgatherFull(), full) {
			panic("allgather full wrong")
		}
		rowVals, colVals := v.RowColGather()
		rlo, rhi := g.MyRowRange(n)
		if len(rowVals) != rhi-rlo {
			panic("row span wrong")
		}
		for i, val := range rowVals {
			if val != full[rlo+i] {
				panic("row value wrong")
			}
		}
		clo, chi := g.MyColRange(n)
		if len(colVals) != chi-clo {
			panic("col span wrong")
		}
		for i, val := range colVals {
			if val != full[clo+i] {
				panic("col value wrong")
			}
		}
	})
}

func TestDistVecFetch(t *testing.T) {
	n := 29
	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i * 3)
	}
	runGrid(t, func(g *grid.Grid) {
		v := VecFromGlobal(g, full)
		// Every rank fetches a different stride, with duplicates.
		var ids []int32
		for i := g.Comm.Rank() % 3; i < n; i += 3 {
			ids = append(ids, int32(i), int32(i))
		}
		got := v.Fetch(ids)
		for k, id := range ids {
			if got[k] != full[id] {
				panic("fetch value wrong")
			}
		}
	})
}

func TestScatterMin(t *testing.T) {
	n := 12
	runGrid(t, func(g *grid.Grid) {
		full := make([]int32, n)
		for i := range full {
			full[i] = 100
		}
		v := VecFromGlobal(g, full)
		// Every rank proposes rank+5 at index (rank mod n): min wins.
		idx := []int32{int32(g.Comm.Rank() % n)}
		vals := []int32{int32(g.Comm.Rank() + 5)}
		ScatterMin(v, idx, vals)
		out := v.AllgatherFull()
		for i := 0; i < n; i++ {
			want := int32(100)
			for r := 0; r < g.Comm.Size(); r++ {
				if r%n == i && int32(r+5) < want {
					want = int32(r + 5)
				}
			}
			if out[i] != want {
				panic(fmt.Sprintf("scatter-min idx %d: got %d want %d", i, out[i], want))
			}
		}
	})
}
