package spmat

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func benchTriples(n int32, nnzPerRow int) []Triple[int64] {
	rng := rand.New(rand.NewSource(3))
	var ts []Triple[int64]
	for r := int32(0); r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			ts = append(ts, Triple[int64]{Row: r, Col: int32(rng.Intn(int(n))), Val: 1})
		}
	}
	return NewCOO(n, n, ts, func(a, b int64) int64 { return a + b }).Ts
}

func BenchmarkLocalMultiply(b *testing.B) {
	n := int32(2000)
	ts := benchTriples(n, 8)
	a := NewCOO(n, n, append([]Triple[int64](nil), ts...), nil).ToCSC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Multiply(a, a, plusTimes)
	}
}

// BenchmarkLocalMultiplyMap is the retained map-accumulator reference, kept
// benchmarked so the SPA kernel's advantage stays visible in the artifacts.
func BenchmarkLocalMultiplyMap(b *testing.B) {
	n := int32(2000)
	ts := benchTriples(n, 8)
	a := NewCOO(n, n, append([]Triple[int64](nil), ts...), nil).ToCSC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiplyMap(a, a, plusTimes)
	}
}

// BenchmarkNewCOO drives the three sortColumnMajor paths: column-clustered
// input (row-run sorts only), shuffled input on a bucketable column count
// (radix scatter), and shuffled hypersparse input (global sort fallback).
func BenchmarkNewCOO(b *testing.B) {
	n := int32(4000)
	clustered := benchTriples(n, 8) // canonical: already column-clustered
	shuffled := append([]Triple[int64](nil), clustered...)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	run := func(name string, nc int32, src []Triple[int64]) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cp := make([]Triple[int64], len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(cp, src)
				NewCOO(n, nc, cp, func(a, b int64) int64 { return a + b })
			}
		})
	}
	run("clustered", n, clustered)
	run("shuffled_bucket", n, shuffled)
	// Hypersparse: same triples, column space far wider than nnz.
	wide := append([]Triple[int64](nil), shuffled...)
	for i := range wide {
		wide[i].Col *= 50000
	}
	run("shuffled_sortfallback", n*50000, wide)
}

func BenchmarkSpGEMMDistributed(b *testing.B) {
	n := int32(2000)
	ts := benchTriples(n, 8)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				a := FromGlobalTriples(g, n, n, ts, nil)
				for i := 0; i < b.N; i++ {
					SpGEMM(a, a, plusTimes)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkDistributedTranspose(b *testing.B) {
	n := int32(4000)
	ts := benchTriples(n, 8)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				a := FromGlobalTriples(g, n, n, ts, nil)
				for i := 0; i < b.N; i++ {
					Transpose(a, nil)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFormatConversions(b *testing.B) {
	n := int32(5000)
	coo := NewCOO(n, n, benchTriples(n, 6), nil)
	b.Run("COO_to_CSC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			coo.ToCSC()
		}
	})
	csc := coo.ToCSC()
	b.Run("CSC_to_DCSC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			csc.ToDCSC()
		}
	})
	dcsc := csc.ToDCSC()
	b.Run("DCSC_to_CSC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dcsc.ToCSC()
		}
	})
}
