package spmat

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func benchTriples(n int32, nnzPerRow int) []Triple[int64] {
	rng := rand.New(rand.NewSource(3))
	var ts []Triple[int64]
	for r := int32(0); r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			ts = append(ts, Triple[int64]{Row: r, Col: int32(rng.Intn(int(n))), Val: 1})
		}
	}
	return NewCOO(n, n, ts, func(a, b int64) int64 { return a + b }).Ts
}

func BenchmarkLocalMultiply(b *testing.B) {
	n := int32(2000)
	ts := benchTriples(n, 8)
	a := NewCOO(n, n, append([]Triple[int64](nil), ts...), nil).ToCSC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Multiply(a, a, plusTimes)
	}
}

func BenchmarkSpGEMMDistributed(b *testing.B) {
	n := int32(2000)
	ts := benchTriples(n, 8)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				a := FromGlobalTriples(g, n, n, ts, nil)
				for i := 0; i < b.N; i++ {
					SpGEMM(a, a, plusTimes)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkDistributedTranspose(b *testing.B) {
	n := int32(4000)
	ts := benchTriples(n, 8)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				a := FromGlobalTriples(g, n, n, ts, nil)
				for i := 0; i < b.N; i++ {
					Transpose(a, nil)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFormatConversions(b *testing.B) {
	n := int32(5000)
	coo := NewCOO(n, n, benchTriples(n, 6), nil)
	b.Run("COO_to_CSC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coo.ToCSC()
		}
	})
	csc := coo.ToCSC()
	b.Run("CSC_to_DCSC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csc.ToDCSC()
		}
	})
	dcsc := csc.ToDCSC()
	b.Run("DCSC_to_CSC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dcsc.ToCSC()
		}
	})
}
