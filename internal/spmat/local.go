// Package spmat is the sparse-matrix substrate standing in for CombBLAS:
// local COO/CSC/DCSC formats with a semiring abstraction, and distributed
// 2D block matrices on the √P × √P grid with SUMMA SpGEMM, distributed
// transpose, element-wise transforms, row-degree reductions and row/column
// masking — the operations Algorithm 1 and Algorithm 2 are written in.
//
// Indices are int32 (the simulated scale never approaches 2^31 rows); values
// are generic so each pipeline stage can carry its own nonzero payload
// (k-mer positions, shared seeds, alignments, bidirected edges).
package spmat

import (
	"fmt"
	"slices"
)

// Triple is one nonzero. Distributed matrices store triples with global
// indices; local kernels may re-base them.
type Triple[T any] struct {
	Row, Col int32
	Val      T
}

// COO is a canonical coordinate-format matrix: triples sorted column-major
// (Col, then Row), no duplicates.
type COO[T any] struct {
	NR, NC int32
	Ts     []Triple[T]
}

// NewCOO builds a canonical COO from arbitrary triples, combining duplicates
// with combine (which must be associative and commutative; nil panics on
// duplicates). Ordering is stable: duplicates combine in input order. The
// column-major sort takes a radix-style path for the two shapes the pipeline
// actually produces (see sortColumnMajor) instead of a global comparison
// sort.
func NewCOO[T any](nr, nc int32, ts []Triple[T], combine func(T, T) T) COO[T] {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= nr || t.Col < 0 || t.Col >= nc {
			panic(fmt.Sprintf("spmat: triple (%d,%d) outside %dx%d", t.Row, t.Col, nr, nc))
		}
	}
	sortColumnMajor(ts, nc)
	out := ts[:0]
	for _, t := range ts {
		if n := len(out); n > 0 && out[n-1].Row == t.Row && out[n-1].Col == t.Col {
			if combine == nil {
				panic(fmt.Sprintf("spmat: duplicate entry (%d,%d) with no combiner", t.Row, t.Col))
			}
			out[n-1].Val = combine(out[n-1].Val, t.Val)
			continue
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		out = nil // canonical form: empty is nil, so equality is structural
	}
	return COO[T]{NR: nr, NC: nc, Ts: out}
}

// sortColumnMajor orders ts by (Col, Row), stably. Three paths, cheapest
// first:
//
//   - already column-clustered (columns non-decreasing — SPA kernel output,
//     concatenations of per-column emissions): only the row runs within each
//     column need sorting, no global movement at all;
//   - column-bucketing radix when the column count is of the order of the
//     triple count (one counting pass, one stable scatter, then per-column
//     row sorts) — the local blocks routed by NewDist/Transpose/Add;
//   - a global stable comparison sort otherwise (hypersparse inputs where a
//     per-column counting array would dwarf the triples).
func sortColumnMajor[T any](ts []Triple[T], nc int32) {
	if len(ts) < 2 {
		return
	}
	clustered := true
	for i := 1; i < len(ts); i++ {
		if ts[i].Col < ts[i-1].Col {
			clustered = false
			break
		}
	}
	if !clustered {
		if int(nc) > 2*len(ts)+1024 {
			slices.SortStableFunc(ts, func(a, b Triple[T]) int {
				if a.Col != b.Col {
					return int(a.Col - b.Col)
				}
				return int(a.Row - b.Row)
			})
			return
		}
		// Stable counting scatter by column.
		starts := make([]int32, nc+1)
		for _, t := range ts {
			starts[t.Col+1]++
		}
		for j := int32(0); j < nc; j++ {
			starts[j+1] += starts[j]
		}
		tmp := make([]Triple[T], len(ts))
		next := starts[:nc:nc]
		for _, t := range ts {
			tmp[next[t.Col]] = t
			next[t.Col]++
		}
		copy(ts, tmp)
	}
	sortRowRuns(ts)
}

// sortRowRuns stably sorts each equal-column run of a column-clustered slice
// by row: insertion sort for the short runs that dominate sparse matrices, a
// stable merge sort above that.
func sortRowRuns[T any](ts []Triple[T]) {
	for lo := 0; lo < len(ts); {
		hi := lo + 1
		for hi < len(ts) && ts[hi].Col == ts[lo].Col {
			hi++
		}
		run := ts[lo:hi]
		if len(run) > 1 {
			if len(run) <= 24 {
				for i := 1; i < len(run); i++ {
					t := run[i]
					j := i - 1
					for j >= 0 && run[j].Row > t.Row {
						run[j+1] = run[j]
						j--
					}
					run[j+1] = t
				}
			} else {
				slices.SortStableFunc(run, func(a, b Triple[T]) int { return int(a.Row - b.Row) })
			}
		}
		lo = hi
	}
}

// Nnz returns the number of stored nonzeros.
func (a COO[T]) Nnz() int { return len(a.Ts) }

// Clone deep-copies the triple slice (values are copied by assignment).
func (a COO[T]) Clone() COO[T] {
	ts := make([]Triple[T], len(a.Ts))
	copy(ts, a.Ts)
	return COO[T]{NR: a.NR, NC: a.NC, Ts: ts}
}

// CSC is compressed sparse column: JC has NC+1 column pointers into IR/V.
// The paper's local-assembly stage (§4.4) walks exactly this structure.
type CSC[T any] struct {
	NR, NC int32
	JC     []int32
	IR     []int32
	V      []T
}

// ToCSC converts canonical COO to CSC.
func (a COO[T]) ToCSC() CSC[T] {
	jc := make([]int32, a.NC+1)
	for _, t := range a.Ts {
		jc[t.Col+1]++
	}
	for j := int32(0); j < a.NC; j++ {
		jc[j+1] += jc[j]
	}
	ir := make([]int32, len(a.Ts))
	v := make([]T, len(a.Ts))
	for i, t := range a.Ts {
		ir[i] = t.Row
		v[i] = t.Val
	}
	return CSC[T]{NR: a.NR, NC: a.NC, JC: jc, IR: ir, V: v}
}

// ToCOO converts CSC back to canonical COO.
func (a CSC[T]) ToCOO() COO[T] {
	if len(a.IR) == 0 {
		return COO[T]{NR: a.NR, NC: a.NC} // canonical empty form is nil
	}
	ts := make([]Triple[T], 0, len(a.IR))
	for j := int32(0); j < a.NC; j++ {
		for p := a.JC[j]; p < a.JC[j+1]; p++ {
			ts = append(ts, Triple[T]{Row: a.IR[p], Col: j, Val: a.V[p]})
		}
	}
	return COO[T]{NR: a.NR, NC: a.NC, Ts: ts}
}

// ColDegree returns the number of nonzeros in column j — the vertex degree
// when the matrix is a symmetric graph adjacency.
func (a CSC[T]) ColDegree(j int32) int32 { return a.JC[j+1] - a.JC[j] }

// DCSC is the doubly-compressed format of Buluç & Gilbert that ELBA uses for
// hypersparse distributed blocks: only non-empty columns are stored. JC lists
// the non-empty column ids, CP the pointer range of each into IR/V.
type DCSC[T any] struct {
	NR, NC int32
	JC     []int32 // non-empty column ids, ascending
	CP     []int32 // len(JC)+1 pointers
	IR     []int32
	V      []T
}

// ToDCSC compresses the column dimension.
func (a CSC[T]) ToDCSC() DCSC[T] {
	var jc, cp []int32
	cp = append(cp, 0)
	for j := int32(0); j < a.NC; j++ {
		if a.JC[j+1] > a.JC[j] {
			jc = append(jc, j)
			cp = append(cp, a.JC[j+1])
		}
	}
	ir := make([]int32, len(a.IR))
	copy(ir, a.IR)
	v := make([]T, len(a.V))
	copy(v, a.V)
	return DCSC[T]{NR: a.NR, NC: a.NC, JC: jc, CP: cp, IR: ir, V: v}
}

// ToCSC uncompresses the column pointers — the linear-time conversion §4.4
// performs before local assembly ("only column pointers need to be
// uncompressed and the row indices array stays intact").
func (d DCSC[T]) ToCSC() CSC[T] {
	jc := make([]int32, d.NC+1)
	for i, j := range d.JC {
		jc[j+1] = d.CP[i+1] - d.CP[i]
	}
	for j := int32(0); j < d.NC; j++ {
		jc[j+1] += jc[j]
	}
	ir := make([]int32, len(d.IR))
	copy(ir, d.IR)
	v := make([]T, len(d.V))
	copy(v, d.V)
	return CSC[T]{NR: d.NR, NC: d.NC, JC: jc, IR: ir, V: v}
}

// Nnz returns the number of stored nonzeros.
func (d DCSC[T]) Nnz() int { return len(d.IR) }

// Semiring overloads multiplication and addition for SpGEMM, CombBLAS-style.
// Mul may annihilate a product by returning false (the implicit zero).
type Semiring[A, B, C any] struct {
	Mul func(A, B) (C, bool)
	Add func(C, C) C
}

// spa is a generation-tagged sparse accumulator over a dense row span — the
// classic Gustavson SPA: vals and gen are allocated once for the whole
// multiply and invalidated per column by bumping cur instead of clearing, so
// the per-column cost is proportional to the rows actually touched.
type spa[C any] struct {
	vals []C
	gen  []uint32
	cur  uint32
	rows []int32 // rows touched this generation, insertion order
}

func newSPA[C any](n int32) *spa[C] {
	return &spa[C]{vals: make([]C, n), gen: make([]uint32, n), cur: 1}
}

// reset opens a fresh generation (O(1); a hard clear only on tag wraparound).
func (s *spa[C]) reset() {
	s.rows = s.rows[:0]
	s.cur++
	if s.cur == 0 {
		clear(s.gen)
		s.cur = 1
	}
}

// accumulate folds v into row i under add, first touch stores v directly.
func (s *spa[C]) accumulate(i int32, v C, add func(C, C) C) {
	if s.gen[i] == s.cur {
		s.vals[i] = add(s.vals[i], v)
		return
	}
	s.gen[i], s.vals[i] = s.cur, v
	s.rows = append(s.rows, i)
}

// emit appends this generation's entries for column j to ts in ascending row
// order and returns the extended slice.
func (s *spa[C]) emit(ts []Triple[C], j int32) []Triple[C] {
	if len(s.rows) == 0 {
		return ts
	}
	slices.Sort(s.rows)
	for _, i := range s.rows {
		ts = append(ts, Triple[C]{Row: i, Col: j, Val: s.vals[i]})
	}
	return ts
}

// Multiply computes a ⊗ b over the semiring with Gustavson's column
// algorithm and a reusable sparse accumulator (dense values plus
// generation-tagged flags — no per-column map). a is NR×K, b is K×NC. The
// output is emitted column by column with sorted rows, so it is canonical by
// construction and skips the NewCOO sort entirely.
func Multiply[A, B, C any](a CSC[A], b CSC[B], sr Semiring[A, B, C]) COO[C] {
	if a.NC != b.NR {
		panic(fmt.Sprintf("spmat: inner dims %d != %d", a.NC, b.NR))
	}
	acc := newSPA[C](a.NR)
	cap0 := len(a.V)
	if len(b.V) > cap0 {
		cap0 = len(b.V)
	}
	ts := make([]Triple[C], 0, cap0)
	for j := int32(0); j < b.NC; j++ {
		acc.reset()
		for p := b.JC[j]; p < b.JC[j+1]; p++ {
			k := b.IR[p]
			bv := b.V[p]
			for q := a.JC[k]; q < a.JC[k+1]; q++ {
				if cv, ok := sr.Mul(a.V[q], bv); ok {
					acc.accumulate(a.IR[q], cv, sr.Add)
				}
			}
		}
		ts = acc.emit(ts, j)
	}
	if len(ts) == 0 {
		ts = nil
	}
	return COO[C]{NR: a.NR, NC: b.NC, Ts: ts}
}

// MultiplyMap is the retained map-accumulator reference kernel Multiply
// replaced: the randomized differential tests pin the SPA kernel to it, and
// cmd/experiments -exp mem prints the before/after allocation table from the
// pair. Not used on any hot path.
func MultiplyMap[A, B, C any](a CSC[A], b CSC[B], sr Semiring[A, B, C]) COO[C] {
	if a.NC != b.NR {
		panic(fmt.Sprintf("spmat: inner dims %d != %d", a.NC, b.NR))
	}
	var ts []Triple[C]
	acc := make(map[int32]C)
	for j := int32(0); j < b.NC; j++ {
		clear(acc)
		for p := b.JC[j]; p < b.JC[j+1]; p++ {
			k := b.IR[p]
			bv := b.V[p]
			for q := a.JC[k]; q < a.JC[k+1]; q++ {
				cv, ok := sr.Mul(a.V[q], bv)
				if !ok {
					continue
				}
				if old, exists := acc[a.IR[q]]; exists {
					acc[a.IR[q]] = sr.Add(old, cv)
				} else {
					acc[a.IR[q]] = cv
				}
			}
		}
		for i, v := range acc {
			ts = append(ts, Triple[C]{Row: i, Col: j, Val: v})
		}
	}
	return NewCOO(a.NR, b.NC, ts, nil)
}

// TransposeLocal returns the transpose of a local COO, mirroring values
// (mirror nil keeps them unchanged).
func TransposeLocal[T any](a COO[T], mirror func(T) T) COO[T] {
	ts := make([]Triple[T], len(a.Ts))
	for i, t := range a.Ts {
		v := t.Val
		if mirror != nil {
			v = mirror(v)
		}
		ts[i] = Triple[T]{Row: t.Col, Col: t.Row, Val: v}
	}
	return NewCOO(a.NC, a.NR, ts, nil)
}
