// Package tr implements the distributed transitive reduction of Algorithm 1
// line 10, turning the overlap matrix R into the string matrix S: an edge
// (u,w) is redundant when a two-edge walk u→v→w with compatible bidirected
// directions composes to (almost) the same overhang, and can be removed
// without losing information (§2). The reduction is expressed as a sparse
// matrix computation: N = S ⊗ S under a direction-composing min-plus
// semiring, followed by an element-wise comparison of N against S, iterated
// to a fixpoint exactly like diBELLA 2D.
package tr

import (
	"repro/internal/bidir"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// inf is the "no path" overhang.
const inf = int32(1 << 30)

// PathMin records, per composed direction, the minimum overhang over all
// two-edge walks between a vertex pair. Element-wise min is associative and
// commutative, as SUMMA accumulation requires.
type PathMin struct {
	Min [4]int32
}

func newPathMin() PathMin {
	return PathMin{Min: [4]int32{inf, inf, inf, inf}}
}

// pathSemiring composes edges u→v and v→w into candidate u→w walks.
var pathSemiring = spmat.Semiring[bidir.Edge, bidir.Edge, PathMin]{
	Mul: func(e1, e2 bidir.Edge) (PathMin, bool) {
		d, ok := bidir.ComposeDirs(e1.Dir, e2.Dir)
		if !ok {
			return PathMin{}, false
		}
		p := newPathMin()
		p.Min[d] = e1.Suf + e2.Suf
		return p, true
	},
	Add: func(a, b PathMin) PathMin {
		for i := range a.Min {
			if b.Min[i] < a.Min[i] {
				a.Min[i] = b.Min[i]
			}
		}
		return a
	},
}

// Stats reports what the reduction did.
type Stats struct {
	Iterations   int
	EdgesRemoved int64
	Products     int64 // semiring products this rank computed (work units)
}

// Reduce removes transitive edges from s in place (collective). fuzz
// tolerates alignment-coordinate noise like miniasm's fuzz parameter;
// maxIter bounds the fixpoint loop (diBELLA iterates until no edge is
// removed). async runs the SUMMA SpGEMM with nonblocking panel prefetch and
// routes the mirror marks with a nonblocking all-to-all that overlaps the
// local kill-set construction; results and traffic counters are identical
// in both modes.
func Reduce(s *spmat.Dist[bidir.Edge], fuzz int32, maxIter int, async bool) Stats {
	g := s.G
	var st Stats
	for iter := 0; iter < maxIter; iter++ {
		st.Iterations = iter + 1
		var n *spmat.Dist[PathMin]
		if async {
			n = spmat.SpGEMMAsync(s, s, pathSemiring, &st.Products)
		} else {
			n = spmat.SpGEMMCounted(s, s, pathSemiring, &st.Products)
		}
		paths := n.BuildIndex()
		// Mark local transitive edges.
		type pair struct{ R, C int32 }
		var marked []pair
		for _, t := range s.Local.Ts {
			pm, ok := paths[int64(t.Row)<<32|int64(uint32(t.Col))]
			if !ok {
				continue
			}
			if m := pm.Min[t.Val.Dir]; m < inf && m <= t.Val.Suf+fuzz {
				marked = append(marked, pair{t.Row, t.Col})
			}
		}
		// Symmetrize the marks: an edge dies in both directions or neither,
		// so S stays a symmetric matrix. Mirrors are routed to the owner of
		// the transposed entry; the async path folds the local marks into
		// the kill set while the mirrors are still in flight.
		send := make([][]pair, g.Comm.Size())
		for _, m := range marked {
			o := g.BlockOwnerRank(int(s.NR), int(s.NC), int(m.C), int(m.R))
			send[o] = append(send[o], pair{m.C, m.R})
		}
		var req *mpi.AlltoallvRequest[pair]
		if async {
			req = mpi.IAlltoallv(g.Comm, send)
		}
		kill := make(map[int64]bool, len(marked)*2)
		for _, m := range marked {
			kill[int64(m.R)<<32|int64(uint32(m.C))] = true
		}
		var recv [][]pair
		if async {
			recv = req.WaitValue()
		} else {
			recv = mpi.Alltoallv(g.Comm, send)
		}
		for _, part := range recv {
			for _, m := range part {
				kill[int64(m.R)<<32|int64(uint32(m.C))] = true
			}
		}
		before := int64(s.Local.Nnz())
		s.Apply(func(r, c int32, v bidir.Edge) (bidir.Edge, bool) {
			return v, !kill[int64(r)<<32|int64(uint32(c))]
		})
		removedLocal := before - int64(s.Local.Nnz())
		removed := mpi.Allreduce(g.Comm, removedLocal, func(a, b int64) int64 { return a + b })
		st.EdgesRemoved += removed
		if removed == 0 {
			break
		}
	}
	return st
}
