package tr

import (
	"fmt"
	"testing"

	"repro/internal/bidir"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// chainGraph builds the overlap graph of n reads of length rl spaced step
// apart on a forward genome, with every pair closer than rl overlapping —
// so the graph contains skip edges up to span rl/step that TR must remove.
func chainGraph(n int, rl, step int32) []spmat.Triple[bidir.Edge] {
	var ts []spmat.Triple[bidir.Edge]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			off := int32(j-i) * step
			if off >= rl {
				break
			}
			a := bidir.Aln{
				U: int32(i), V: int32(j),
				BU: off, EU: rl,
				BV: 0, EV: rl - off,
				LU: rl, LV: rl,
			}
			e, kind := bidir.Classify(a, bidir.Params{MaxOverhang: 0})
			if kind != bidir.Dovetail {
				panic("test graph must be dovetails")
			}
			m, _ := bidir.Classify(a.Mirror(), bidir.Params{MaxOverhang: 0})
			ts = append(ts,
				spmat.Triple[bidir.Edge]{Row: int32(i), Col: int32(j), Val: e},
				spmat.Triple[bidir.Edge]{Row: int32(j), Col: int32(i), Val: m})
		}
	}
	return ts
}

func TestReduceChainLeavesOnlyConsecutiveEdges(t *testing.T) {
	n := 30
	all := chainGraph(n, 100, 20) // spans up to 4: plenty of skip edges
	for _, p := range []int{1, 4, 9} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
				st := Reduce(s, 0, 10, false)
				got := s.GatherTriples(0)
				if c.Rank() == 0 {
					if st.EdgesRemoved == 0 {
						panic("nothing removed")
					}
					for _, tr := range got {
						d := tr.Row - tr.Col
						if d != 1 && d != -1 {
							panic(fmt.Sprintf("non-consecutive edge (%d,%d) survived", tr.Row, tr.Col))
						}
					}
					// The full chain must remain: 2(n-1) directed edges.
					if len(got) != 2*(n-1) {
						panic(fmt.Sprintf("%d edges left, want %d", len(got), 2*(n-1)))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceKeepsSymmetry(t *testing.T) {
	n := 24
	all := chainGraph(n, 90, 15)
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
		Reduce(s, 5, 10, false)
		got := s.GatherTriples(0)
		if c.Rank() == 0 {
			set := map[[2]int32]bool{}
			for _, tr := range got {
				set[[2]int32{tr.Row, tr.Col}] = true
			}
			for _, tr := range got {
				if !set[[2]int32{tr.Col, tr.Row}] {
					panic(fmt.Sprintf("asymmetric edge (%d,%d)", tr.Row, tr.Col))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAlreadyReducedIsNoop(t *testing.T) {
	n := 12
	// Only consecutive edges: nothing to remove.
	var all []spmat.Triple[bidir.Edge]
	for _, tr := range chainGraph(n, 100, 60) { // span 1 only
		all = append(all, tr)
	}
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
		st := Reduce(s, 0, 10, false)
		if st.EdgesRemoved != 0 {
			panic("removed edges from an already-reduced chain")
		}
		if st.Iterations != 1 {
			panic("should converge in one iteration")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceFuzzTolerance(t *testing.T) {
	// Perturb one skip edge's Suf by 3: with fuzz≥3 it is still removed.
	n := 3
	rl, step := int32(100), int32(30)
	all := chainGraph(n, rl, step)
	for i := range all {
		if all[i].Row == 0 && all[i].Col == 2 {
			all[i].Val.Suf -= 3 // path length (60) now exceeds edge+0
		}
	}
	run := func(fuzz int32) (left int) {
		err := mpi.Run(1, func(c *mpi.Comm) {
			g := grid.New(c)
			s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
			Reduce(s, fuzz, 10, false)
			left = s.Local.Nnz()
		})
		if err != nil {
			panic(err)
		}
		return left
	}
	// With fuzz 3 the perturbed skip edge is removed: 4 directed edges left.
	if got := run(3); got != 4 {
		t.Fatalf("fuzz=3: %d edges left, want 4", got)
	}
	// With fuzz 0 the (0,2) direction survives but (2,0) is marked and the
	// symmetric kill still removes both — verify against one-sided marking.
	if got := run(0); got != 4 && got != 6 {
		t.Fatalf("fuzz=0: unexpected %d edges", got)
	}
}

// TestReducePreservesConnectivity: removing transitive edges must never
// split a connected component — checked with union-find before and after
// over randomized chain graphs.
func TestReducePreservesConnectivity(t *testing.T) {
	find := func(parent []int32, x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	components := func(n int, ts []spmat.Triple[bidir.Edge]) []int32 {
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = int32(i)
		}
		for _, tr := range ts {
			a, b := find(parent, tr.Row), find(parent, tr.Col)
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = find(parent, int32(i))
		}
		return out
	}
	for trial := 0; trial < 5; trial++ {
		n := 20 + trial*13
		rl := int32(100 + 10*trial)
		step := int32(15 + 5*trial)
		all := chainGraph(n, rl, step)
		before := components(n, all)
		var after []int32
		err := mpi.Run(4, func(c *mpi.Comm) {
			g := grid.New(c)
			s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
			Reduce(s, 10, 10, false)
			got := s.GatherTriples(0)
			if c.Rank() == 0 {
				after = components(n, got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range before {
			if before[v] != after[v] {
				t.Fatalf("trial %d: TR changed component of vertex %d", trial, v)
			}
		}
	}
}

func TestReduceCircularGenomeChain(t *testing.T) {
	// A circular chain (ring) has no endpoints; TR must still reduce skip
	// edges and keep the ring intact.
	n := 20
	rl, step := int32(100), int32(25)
	var ts []spmat.Triple[bidir.Edge]
	for i := 0; i < n; i++ {
		for s := 1; int32(s)*step < rl; s++ {
			j := (i + s) % n
			off := int32(s) * step
			a := bidir.Aln{
				U: int32(i), V: int32(j),
				BU: off, EU: rl, BV: 0, EV: rl - off,
				LU: rl, LV: rl,
			}
			e, kind := bidir.Classify(a, bidir.Params{MaxOverhang: 0})
			if kind != bidir.Dovetail {
				panic("ring edges must be dovetails")
			}
			m, _ := bidir.Classify(a.Mirror(), bidir.Params{MaxOverhang: 0})
			ts = append(ts,
				spmat.Triple[bidir.Edge]{Row: int32(i), Col: int32(j), Val: e},
				spmat.Triple[bidir.Edge]{Row: int32(j), Col: int32(i), Val: m})
		}
	}
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		s := spmat.FromGlobalTriples(g, int32(n), int32(n), ts, nil)
		Reduce(s, 0, 10, false)
		if got := s.Nnz(); got != int64(2*n) {
			panic(fmt.Sprintf("ring: %d edges left, want %d", got, 2*n))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
