package tr

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

func BenchmarkReduce(b *testing.B) {
	// 600 reads with skip edges up to span 4 — the post-alignment shape.
	n := 600
	all := chainGraph(n, 100, 20)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				for i := 0; i < b.N; i++ {
					s := spmat.FromGlobalTriples(g, int32(n), int32(n), all, nil)
					Reduce(s, 0, 10, false)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
