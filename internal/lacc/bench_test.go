package lacc

import (
	"fmt"
	"testing"

	"repro/internal/bidir"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// benchChains builds the contig workload shape: many short linear chains.
func benchChains(n, chainLen int) []spmat.Triple[bidir.Edge] {
	var ts []spmat.Triple[bidir.Edge]
	for start := 0; start+chainLen <= n; start += chainLen {
		for k := 0; k < chainLen-1; k++ {
			u, v := int32(start+k), int32(start+k+1)
			ts = append(ts, spmat.Triple[bidir.Edge]{Row: u, Col: v},
				spmat.Triple[bidir.Edge]{Row: v, Col: u})
		}
	}
	return ts
}

func BenchmarkComponents(b *testing.B) {
	n := 4000
	ts := benchChains(n, 25)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				l := spmat.FromGlobalTriples(g, int32(n), int32(n), ts, nil)
				for i := 0; i < b.N; i++ {
					Components(l)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkComponentsLongChain(b *testing.B) {
	// One chain spanning all vertices: maximum pointer-jumping depth.
	n := 4000
	ts := benchChains(n, n)
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		l := spmat.FromGlobalTriples(g, int32(n), int32(n), ts, nil)
		for i := 0; i < b.N; i++ {
			Components(l)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
