package lacc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bidir"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// unionFind is the sequential reference.
type unionFind struct{ p []int32 }

func newUF(n int) *unionFind {
	u := &unionFind{p: make([]int32, n)}
	for i := range u.p {
		u.p[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.p[x] != x {
		u.p[x] = u.p[u.p[x]]
		x = u.p[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.p[rb] = ra
		} else {
			u.p[ra] = rb
		}
	}
}

// minLabels computes the expected labels: min vertex id per component.
func minLabels(n int, edges [][2]int32) []int32 {
	uf := newUF(n)
	for _, e := range edges {
		uf.union(e[0], e[1])
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = uf.find(int32(i))
	}
	return out
}

// symTriples converts undirected edges to a symmetric Dist-ready triple set.
func symTriples(edges [][2]int32) []spmat.Triple[bidir.Edge] {
	var ts []spmat.Triple[bidir.Edge]
	for _, e := range edges {
		ts = append(ts,
			spmat.Triple[bidir.Edge]{Row: e[0], Col: e[1]},
			spmat.Triple[bidir.Edge]{Row: e[1], Col: e[0]})
	}
	return ts
}

func checkComponents(t *testing.T, n int, edges [][2]int32, sizes []int) {
	t.Helper()
	want := minLabels(n, edges)
	ts := symTriples(edges)
	for _, p := range sizes {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				l := spmat.FromGlobalTriples(g, int32(n), int32(n), ts, func(a, b bidir.Edge) bidir.Edge { return a })
				v := Components(l)
				got := v.AllgatherFull()
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("labels differ\n got %v\nwant %v", got, want))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPaperExample(t *testing.T) {
	// §4.2: chains v1→v2, v4→v5→v6, v7→v8 after masking v3 (0-indexed:
	// 0-1, 3-4-5, 6-7; vertex 2 isolated).
	edges := [][2]int32{{0, 1}, {3, 4}, {4, 5}, {6, 7}}
	checkComponents(t, 9, edges, []int{1, 4, 9})
}

func TestLongChain(t *testing.T) {
	// A single long path: the worst case for label propagation, fine for
	// pointer jumping.
	n := 200
	var edges [][2]int32
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	checkComponents(t, n, edges, []int{1, 4, 16})
}

func TestReversedChain(t *testing.T) {
	// Chain labeled against the hook direction: 199-198-...-0.
	n := 120
	var edges [][2]int32
	for i := n - 1; i > 0; i-- {
		edges = append(edges, [2]int32{int32(i), int32(i - 1)})
	}
	checkComponents(t, n, edges, []int{4, 9})
}

func TestManySmallComponents(t *testing.T) {
	// The contig workload shape: thousands of short linear chains.
	n := 300
	var edges [][2]int32
	for start := 0; start+4 < n; start += 5 {
		for k := 0; k < 4; k++ {
			edges = append(edges, [2]int32{int32(start + k), int32(start + k + 1)})
		}
	}
	checkComponents(t, n, edges, []int{1, 4, 16})
}

func TestRandomGraphsMatchUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(120) + 10
		m := rng.Intn(2 * n)
		seen := map[[2]int32]bool{}
		var edges [][2]int32
		for k := 0; k < m; k++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int32{a, b}] {
				continue
			}
			seen[[2]int32{a, b}] = true
			edges = append(edges, [2]int32{a, b})
		}
		want := minLabels(n, edges)
		ts := symTriples(edges)
		err := mpi.Run(4, func(c *mpi.Comm) {
			g := grid.New(c)
			l := spmat.FromGlobalTriples(g, int32(n), int32(n), ts, func(a, b bidir.Edge) bidir.Edge { return a })
			v := Components(l)
			got := v.AllgatherFull()
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("trial %d labels differ", trial))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRingComponent(t *testing.T) {
	// Cycles (circular contigs) must still form one component.
	n := 50
	var edges [][2]int32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % n)})
	}
	checkComponents(t, n, edges, []int{4})
}

func TestEmptyGraphAllSingletons(t *testing.T) {
	checkComponents(t, 17, nil, []int{1, 4})
}
