// Package lacc implements distributed connected components in the style of
// LACC (Azad & Buluç, IPDPS 2019): the Awerbuch–Shiloach algorithm expressed
// over the distributed graph with a block-distributed parent vector —
// conditional star hooking onto smaller neighbors, star detection, and
// pointer-jumping shortcuts, iterated until the parent vector stabilizes
// (O(log n) rounds). ELBA uses it to decompose the branch-masked string
// matrix L into its linear components (Algorithm 2 line 3).
//
// Parent values travel with the same communication patterns the rest of the
// pipeline uses: the Figure 2 row-allgather + transposed exchange supplies
// the endpoints of local edges, and owner-routed fetch/scatter collectives
// chase and write parent pointers.
package lacc

import (
	"repro/internal/bidir"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/spmat"
)

// Components labels every vertex of the symmetric graph l with its
// component: the returned distributed vector maps vertex → smallest vertex
// id in its component (collective). Isolated vertices label themselves.
func Components(l *spmat.Dist[bidir.Edge]) *spmat.DistVec[int32] {
	g := l.G
	n := int(l.NR)
	f := spmat.NewDistVec[int32](g, n)
	for i := range f.Local {
		f.Local[i] = f.Lo + int32(i)
	}
	for iter := 0; ; iter++ {
		changed := hookAndShortcut(g, l, f)
		if !mpi.Allreduce(g.Comm, changed, func(a, b bool) bool { return a || b }) {
			break
		}
		if iter > 64 {
			panic("lacc: failed to converge (graph corrupt?)")
		}
	}
	return f
}

// noParent marks "no neighbor": larger than any vertex id.
const noParent = int32(1<<31 - 1)

// minNeighborSemiring implements the hooking SpMV: y_u = min over neighbors
// v of f[v] (the select2nd/min semiring of LACC).
var minNeighborSemiring = spmat.Semiring[bidir.Edge, int32, int32]{
	Mul: func(_ bidir.Edge, fv int32) (int32, bool) { return fv, true },
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// hookAndShortcut performs one Awerbuch–Shiloach round; reports whether any
// parent changed on this rank.
func hookAndShortcut(g *grid.Grid, l *spmat.Dist[bidir.Edge], f *spmat.DistVec[int32]) bool {
	star := computeStars(g, f)

	// Conditional star hooking, in the language of linear algebra: one SpMV
	// under the (select2nd, min) semiring yields each vertex's smallest
	// neighboring parent; star members with a smaller neighbor propose that
	// value to their root (an owner-routed scatter-min, LACC's hooking
	// write).
	minN := spmat.SpMV(l, f, minNeighborSemiring, noParent, min32)
	var hookIdx, hookVal []int32
	for i, fu := range f.Local {
		if star.Local[i] && minN.Local[i] < fu {
			hookIdx = append(hookIdx, fu)
			hookVal = append(hookVal, minN.Local[i])
		}
	}
	old := make([]int32, len(f.Local))
	copy(old, f.Local)
	spmat.ScatterMin(f, hookIdx, hookVal)

	// Shortcut: f[v] = f[f[v]] (pointer jumping).
	parents := f.Fetch(f.Local)
	copy(f.Local, parents)

	changed := false
	for i := range f.Local {
		if f.Local[i] != old[i] {
			changed = true
			break
		}
	}
	return changed
}

// computeStars returns the star flags of Awerbuch–Shiloach: star[v] is true
// iff v belongs to a depth-1 tree. Three passes:
//  1. star[v] = (f[f[v]] == f[v]);
//  2. a vertex with a grandparent ≠ parent also un-stars its grandparent;
//  3. star[v] = star[f[v]] (children inherit the root's flag).
func computeStars(g *grid.Grid, f *spmat.DistVec[int32]) *spmat.DistVec[bool] {
	star := spmat.NewDistVec[bool](g, f.N)
	grand := f.Fetch(f.Local) // f[f[v]] for local v
	var unstarIdx []int32
	var unstarVal []bool
	for i := range f.Local {
		star.Local[i] = grand[i] == f.Local[i]
		if grand[i] != f.Local[i] {
			unstarIdx = append(unstarIdx, grand[i])
			unstarVal = append(unstarVal, false)
		}
	}
	spmat.ScatterBoolAnd(star, unstarIdx, unstarVal)
	// Children inherit the parent's (root's) flag.
	parentStar := star.Fetch(f.Local)
	copy(star.Local, parentStar)
	return star
}
