// Package par is the intra-rank parallel execution subsystem: a bounded
// worker pool that multiplies each simulated MPI rank by a set of threads,
// the hybrid distributed/shared-memory model of the paper (MPI ranks ×
// OpenMP threads inside each rank). The pipeline's compute-heavy stages —
// pairwise alignment and k-mer extraction — run their per-item loops through
// a pool instead of serially inside the rank goroutine.
//
// Two properties the pipeline depends on are built in:
//
//   - Per-worker state. Each worker owns one instance of S (e.g. its own
//     align.Aligner), created once and reused across items, so backends that
//     keep internal buffers and cumulative work counters need not be safe
//     for concurrent use. Summing a counter over Pool.States after a run
//     yields the same total regardless of how items were scheduled, because
//     every item is processed exactly once.
//
//   - Deterministic result ordering. Workers write results by item index
//     (the caller passes an indexed fn and owns an indexed output slice), so
//     downstream folds see items in input order no matter which worker ran
//     them or when it finished. Combined with ForEachBalanced's static LPT
//     schedule, even the per-worker assignment is reproducible run to run.
package par

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/partition"
)

// Pool is a fixed set of workers, each owning private state of type S.
// A Pool is cheap (no goroutines are retained between runs: simulated rank
// goroutines come and go, so keeping idle OS-scheduled workers per rank
// would leak); each ForEach spawns its workers for the duration of the call.
type Pool[S any] struct {
	states []S
	// Optional tracing (SetTrace): every chunk a worker processes becomes a
	// span named spanName on the worker's thread lane (tid 1+w; tid 0 is the
	// rank's main goroutine).
	lane     *obs.Lane
	spanName string
}

// NewPool creates a pool of max(1, workers) workers; newState(w) builds
// worker w's private state.
func NewPool[S any](workers int, newState func(worker int) S) *Pool[S] {
	if workers < 1 {
		workers = 1
	}
	p := &Pool[S]{states: make([]S, workers)}
	for w := range p.states {
		p.states[w] = newState(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool[S]) Workers() int { return len(p.states) }

// States exposes the per-worker states, e.g. to sum work counters after a
// run. Callers must not use them while a ForEach is in flight.
func (p *Pool[S]) States() []S { return p.states }

// SetTrace enables per-chunk task spans on lane, named name, one thread lane
// per worker. A nil lane (tracing off) keeps the pool span-free; calling it
// while a ForEach is in flight is a race.
func (p *Pool[S]) SetTrace(lane *obs.Lane, name string) {
	p.lane = lane
	p.spanName = name
}

// span records one worker chunk [lo,hi) as a task span on worker w's thread
// lane. Nil-safe via the lane.
func (p *Pool[S]) span(w, lo, hi int, start int64) {
	if p.lane == nil {
		return
	}
	p.lane.Span(int32(1+w), "pool", p.spanName, start,
		obs.Arg{K: "lo", V: int64(lo)}, obs.Arg{K: "n", V: int64(hi - lo)})
}

// ForEach processes item indices [0, n) across the pool's workers and
// returns when all are done. Items are handed out in contiguous chunks from
// an atomic cursor (dynamic schedule, good when per-item cost is uniform or
// unknown); fn receives the running worker's state and the item index.
// Result ordering is the caller's: write out[i] inside fn.
//
// With one worker (or n ≤ 1) fn runs inline on the calling goroutine — the
// Threads=1 configuration is byte-for-byte the old serial loop, with no
// scheduling overhead.
func ForEach[S any](p *Pool[S], n int, fn func(s S, i int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 || n == 1 {
		st := p.lane.Start()
		for i := 0; i < n; i++ {
			fn(p.states[0], i)
		}
		p.span(0, 0, n, st)
		return
	}
	chunk := n / (p.Workers() * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.Workers(); w++ {
		wg.Add(1)
		go func(w int, s S) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				st := p.lane.Start()
				for i := lo; i < hi; i++ {
					fn(s, i)
				}
				p.span(w, lo, hi, st)
			}
		}(w, p.states[w])
	}
	wg.Wait()
}

// ForEachBalanced processes item indices [0, len(weights)) with a static
// LPT schedule (partition.LPT): item i, weighted weights[i], always runs on
// the same worker for a given (weights, pool size), and each worker visits
// its items in ascending index order. Use it when per-item cost is known and
// skewed — e.g. alignment candidates weighted by sequence length — so the
// longest items don't serialize behind a naive block split, and when
// per-worker state must accumulate identically across runs.
func ForEachBalanced[S any](p *Pool[S], weights []int64, fn func(s S, i int)) {
	n := len(weights)
	if n <= 0 {
		return
	}
	if p.Workers() == 1 || n == 1 {
		st := p.lane.Start()
		for i := 0; i < n; i++ {
			fn(p.states[0], i)
		}
		p.span(0, 0, n, st)
		return
	}
	assign, _ := partition.LPT(weights, p.Workers())
	items := make([][]int32, p.Workers())
	for i, w := range assign {
		items[w] = append(items[w], int32(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < p.Workers(); w++ {
		if len(items[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, s S, mine []int32) {
			defer wg.Done()
			st := p.lane.Start()
			for _, i := range mine {
				fn(s, int(i))
			}
			p.span(w, int(mine[0]), int(mine[0])+len(mine), st)
		}(w, p.states[w], items[w])
	}
	wg.Wait()
}
