package par

import (
	"sync/atomic"
	"testing"
)

// state is a fake per-worker aligner: it accumulates work like the real
// backends do.
type state struct {
	id   int
	work int64
}

func newStates() func(int) *state {
	return func(w int) *state { return &state{id: w} }
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			p := NewPool(workers, newStates())
			visits := make([]int32, n)
			ForEach(p, n, func(s *state, i int) {
				atomic.AddInt32(&visits[i], 1)
				s.work += int64(i)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
			var total int64
			for _, s := range p.States() {
				total += s.work
			}
			want := int64(n) * int64(n-1) / 2
			if n == 0 {
				want = 0
			}
			if total != want {
				t.Fatalf("workers=%d n=%d: summed work %d, want %d", workers, n, total, want)
			}
		}
	}
}

func TestForEachDeterministicIndexedOutput(t *testing.T) {
	n := 500
	ref := make([]int, n)
	for i := range ref {
		ref[i] = i * i
	}
	for trial := 0; trial < 5; trial++ {
		p := NewPool(4, newStates())
		out := make([]int, n)
		ForEach(p, n, func(_ *state, i int) { out[i] = i * i })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("trial %d: out[%d]=%d, want %d", trial, i, out[i], ref[i])
			}
		}
	}
}

func TestForEachBalancedStaticAssignment(t *testing.T) {
	weights := []int64{100, 1, 1, 50, 1, 80, 1, 1, 1, 40}
	// The same (weights, workers) must give every worker the same item set
	// and per-worker work totals on every run — the property that keeps
	// per-worker aligner counters reproducible.
	var refWork []int64
	for trial := 0; trial < 5; trial++ {
		p := NewPool(3, newStates())
		visits := make([]int32, len(weights))
		ForEachBalanced(p, weights, func(s *state, i int) {
			atomic.AddInt32(&visits[i], 1)
			s.work += weights[i]
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
		work := make([]int64, p.Workers())
		for w, s := range p.States() {
			work[w] = s.work
		}
		if trial == 0 {
			refWork = work
			continue
		}
		for w := range work {
			if work[w] != refWork[w] {
				t.Fatalf("trial %d: worker %d work %d, want %d (static schedule broken)", trial, w, work[w], refWork[w])
			}
		}
	}
}

func TestForEachBalancedOrderWithinWorker(t *testing.T) {
	// Equal weights: each worker must still see its items in ascending index
	// order (stable LPT + ordered walk).
	weights := make([]int64, 200)
	for i := range weights {
		weights[i] = 1
	}
	p := NewPool(4, newStates())
	last := make([]int, p.Workers())
	for i := range last {
		last[i] = -1
	}
	ForEachBalanced(p, weights, func(s *state, i int) {
		if i <= last[s.id] {
			t.Errorf("worker %d saw index %d after %d", s.id, i, last[s.id])
		}
		last[s.id] = i
	})
}

func TestNewPoolClampsWorkers(t *testing.T) {
	p := NewPool(0, newStates())
	if p.Workers() != 1 {
		t.Fatalf("workers=%d, want 1", p.Workers())
	}
	ran := false
	ForEach(p, 1, func(s *state, i int) { ran = true })
	if !ran {
		t.Fatal("single-item run skipped")
	}
}
