package bidir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Figure 3 of the paper, first edge: l0 = AGAACT overlaps l1 = AACTGAAG with
// l0[2:5] ~ l1[0:3] (inclusive): pre(e) = 1, post(e) = 0.
func TestClassifyFigure3FirstEdge(t *testing.T) {
	a := Aln{U: 0, V: 1, BU: 2, EU: 6, BV: 0, EV: 4, RC: false, LU: 6, LV: 8}
	e, kind := Classify(a, Params{MaxOverhang: 0})
	if kind != Dovetail {
		t.Fatalf("kind = %v", kind)
	}
	if e.Dir != 2 { // su=1 (suffix of l0), sv=0 (prefix of l1)
		t.Fatalf("dir = %d, want 2", e.Dir)
	}
	if e.Pre != 1 || e.Post != 0 {
		t.Fatalf("pre=%d post=%d, want 1,0", e.Pre, e.Post)
	}
	if e.Suf != 4 { // GAAG extends beyond the overlap
		t.Fatalf("suf = %d, want 4", e.Suf)
	}
	if !e.SrcForward() || !e.DstForward() {
		t.Fatal("both reads traversed forward in Figure 3")
	}
}

// Figure 3, second edge with the x-drop-truncated alignment: l1 = AACTGAAG,
// l2 = TGAAGAA, alignment l1[5:7] ~ l2[2:4] (inclusive): the paper explains
// pre(e) = 4 and post(e) = 2 even though the alignment stopped early.
func TestClassifyFigure3SecondEdgeXDropTruncated(t *testing.T) {
	a := Aln{U: 1, V: 2, BU: 5, EU: 8, BV: 2, EV: 5, RC: false, LU: 8, LV: 7}
	e, kind := Classify(a, Params{MaxOverhang: 2})
	if kind != Dovetail {
		t.Fatalf("kind = %v", kind)
	}
	if e.Dir != 2 {
		t.Fatalf("dir = %d, want 2", e.Dir)
	}
	if e.Pre != 4 || e.Post != 2 {
		t.Fatalf("pre=%d post=%d, want 4,2 (paper §4.4)", e.Pre, e.Post)
	}
}

// Figure 3's full (non-truncated) second overlap: l1[3:7] ~ l2[0:4].
func TestClassifyFigure3SecondEdgeFull(t *testing.T) {
	a := Aln{U: 1, V: 2, BU: 3, EU: 8, BV: 0, EV: 5, RC: false, LU: 8, LV: 7}
	e, kind := Classify(a, Params{MaxOverhang: 0})
	if kind != Dovetail {
		t.Fatalf("kind = %v", kind)
	}
	if e.Pre != 2 || e.Post != 0 || e.Suf != 2 {
		t.Fatalf("pre=%d post=%d suf=%d, want 2,0,2", e.Pre, e.Post, e.Suf)
	}
}

// Reverse-complement case from §4.4: l0 = AGAACT against the read
// w = CTTCAGTT (the reverse complement of l1). w's forward segment [4,8)
// (AGTT) reverse-complements to AACT, matching l0's suffix.
func TestClassifyReverseComplement(t *testing.T) {
	a := Aln{U: 0, V: 9, BU: 2, EU: 6, BV: 4, EV: 8, RC: true, LU: 6, LV: 8}
	e, kind := Classify(a, Params{MaxOverhang: 0})
	if kind != Dovetail {
		t.Fatalf("kind = %v", kind)
	}
	if e.Dir != 3 { // su=1, sv=1: suffix-suffix, opposite strands
		t.Fatalf("dir = %d, want 3", e.Dir)
	}
	if e.Pre != 1 {
		t.Fatalf("pre = %d, want 1", e.Pre)
	}
	// Entering w through its suffix: first overlap base in walk order is the
	// highest forward index of the overlap, EV-1 = 7.
	if e.Post != 7 {
		t.Fatalf("post = %d, want 7", e.Post)
	}
	// Walking on, w contributes its bases before the overlap: BV = 4.
	if e.Suf != 4 {
		t.Fatalf("suf = %d, want 4", e.Suf)
	}
	if !e.SrcForward() || e.DstForward() {
		t.Fatal("u forward, v reverse expected")
	}
}

func TestClassifyContainment(t *testing.T) {
	// v fully inside u.
	a := Aln{U: 0, V: 1, BU: 100, EU: 150, BV: 0, EV: 50, RC: false, LU: 400, LV: 50}
	if _, kind := Classify(a, Params{MaxOverhang: 5}); kind != ContainsV {
		t.Fatalf("kind = %v, want ContainsV", kind)
	}
	// u fully inside v.
	b := Aln{U: 0, V: 1, BU: 0, EU: 50, BV: 100, EV: 150, RC: false, LU: 50, LV: 400}
	if _, kind := Classify(b, Params{MaxOverhang: 5}); kind != ContainedU {
		t.Fatalf("kind = %v, want ContainedU", kind)
	}
	// Near-identical reads: larger id loses, deterministically.
	c := Aln{U: 3, V: 7, BU: 0, EU: 100, BV: 0, EV: 100, RC: false, LU: 100, LV: 100}
	if _, kind := Classify(c, Params{MaxOverhang: 5}); kind != ContainsV {
		t.Fatalf("kind = %v, want ContainsV (id 7 contained)", kind)
	}
	if _, kind := Classify(c.Mirror(), Params{MaxOverhang: 5}); kind != ContainedU {
		t.Fatal("mirror of identical-read containment must contain the other side")
	}
}

func TestClassifyInternalMatch(t *testing.T) {
	// A match in the middle of both long reads: repeat-induced, not a
	// dovetail.
	a := Aln{U: 0, V: 1, BU: 500, EU: 700, BV: 400, EV: 600, RC: false, LU: 2000, LV: 2000}
	if _, kind := Classify(a, Params{MaxOverhang: 50}); kind != Internal {
		t.Fatalf("kind = %v, want Internal", kind)
	}
}

func TestComposeDirs(t *testing.T) {
	// Walking u→v with dir (su,sv) must continue through v's opposite end:
	// validity and the composed direction follow directly from the rule.
	for d1 := uint8(0); d1 < 4; d1++ {
		for d2 := uint8(0); d2 < 4; d2++ {
			enterBit := d1 & 1       // end of v used by edge 1
			exitBit := (d2 >> 1) & 1 // end of v used by edge 2
			got, ok := ComposeDirs(d1, d2)
			wantOK := exitBit != enterBit
			if ok != wantOK {
				t.Fatalf("ComposeDirs(%d,%d) ok=%v want %v", d1, d2, ok, wantOK)
			}
			if ok {
				want := (d1 & 2) | (d2 & 1)
				if got != want {
					t.Fatalf("ComposeDirs(%d,%d) = %d want %d", d1, d2, got, want)
				}
			}
		}
	}
}

func TestComposeSameStrandChain(t *testing.T) {
	// A chain of same-strand forward overlaps composes to a same-strand
	// forward overlap: (1,0)∘(1,0) = (1,0).
	d, ok := ComposeDirs(2, 2)
	if !ok || d != 2 {
		t.Fatalf("got %d,%v", d, ok)
	}
	// Strand flip then flip back: (1,1)∘(0,0) = (1,0).
	d, ok = ComposeDirs(3, 0)
	if !ok || d != 2 {
		t.Fatalf("flip-flip: got %d,%v", d, ok)
	}
}

// randomDovetailAln builds a random valid dovetail alignment.
func randomDovetailAln(rng *rand.Rand) Aln {
	lu := int32(rng.Intn(500) + 100)
	lv := int32(rng.Intn(500) + 100)
	ov := int32(rng.Intn(80) + 10) // overlap length
	if ov > lu {
		ov = lu
	}
	if ov > lv {
		ov = lv
	}
	rc := rng.Intn(2) == 1
	uSuffix := rng.Intn(2) == 1
	var a Aln
	a.U, a.V = int32(rng.Intn(100)), int32(rng.Intn(100)+100)
	a.LU, a.LV = lu, lv
	a.RC = rc
	a.Score = ov
	if uSuffix {
		a.BU, a.EU = lu-ov, lu
	} else {
		a.BU, a.EU = 0, ov
	}
	// v side: same strand wants the opposite end; rc wants the same end.
	vSuffix := !uSuffix
	if rc {
		vSuffix = uSuffix
	}
	if vSuffix {
		a.BV, a.EV = lv-ov, lv
	} else {
		a.BV, a.EV = 0, ov
	}
	return a
}

// TestClassifyMirrorConsistency: classifying the mirrored alignment must
// yield the mirrored edge: bits swapped, pre/post roles exchanged.
func TestClassifyMirrorConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDovetailAln(rng)
		p := Params{MaxOverhang: 0}
		e1, k1 := Classify(a, p)
		e2, k2 := Classify(a.Mirror(), p)
		if k1 != Dovetail || k2 != Dovetail {
			return false
		}
		// Bits must swap.
		if e1.SrcBit() != e2.DstBit() || e1.DstBit() != e2.SrcBit() {
			return false
		}
		// The walk directions must be opposite traversals of the same chain:
		// going u→v forward through u means going v→u backward through u.
		return e1.SrcForward() == !e2.DstForward() && e1.DstForward() == !e2.SrcForward()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifySymmetricOverlapIsDeterministicContainment: exactly symmetric
// overhangs cannot pick a direction; the larger read id is declared
// contained, and the mirror agrees on which read dies.
func TestClassifySymmetricOverlapIsDeterministicContainment(t *testing.T) {
	p := Params{MaxOverhang: 4}
	for _, rc := range []bool{false, true} {
		a := Aln{U: 1, V: 2, BU: 2, EU: 8, BV: 2, EV: 8, RC: rc, LU: 10, LV: 10}
		_, k1 := Classify(a, p)
		_, k2 := Classify(a.Mirror(), p)
		if k1 != ContainsV { // read 2 contained
			t.Fatalf("rc=%v: kind %v, want ContainsV", rc, k1)
		}
		if k2 != ContainedU { // mirror: source read is 2, still the one contained
			t.Fatalf("rc=%v: mirror kind %v, want ContainedU", rc, k2)
		}
	}
}

// TestClassifyStrandParity: same-strand edges must have su≠sv, opposite
// strand su=sv (§2's three bidirected edge types).
func TestClassifyStrandParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDovetailAln(rng)
		e, kind := Classify(a, Params{MaxOverhang: 0})
		if kind != Dovetail {
			return false
		}
		if a.RC {
			return e.SrcBit() == e.DstBit()
		}
		return e.SrcBit() != e.DstBit()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSufMatchesExtension: the suffix weight must equal the number of bases v
// contributes beyond the overlap.
func TestSufMatchesExtension(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDovetailAln(rng)
		e, kind := Classify(a, Params{MaxOverhang: 0})
		if kind != Dovetail {
			return false
		}
		if e.DstForward() {
			return e.Suf == a.LV-a.EV
		}
		return e.Suf == a.BV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
