// Package bidir defines the bidirected string-graph edge semantics of §2 and
// §4.4: overlap classification into direction bits, overhang (suffix)
// lengths, the pre/post concatenation coordinates, edge mirroring, and the
// valid-walk composition rule used by transitive reduction.
//
// Conventions (documented in DESIGN.md §5):
//
//   - An alignment between reads u and v is stored with half-open
//     coordinates on each read's FORWARD strand; RC says whether v matched
//     as its reverse complement.
//   - A directed edge u→v carries Dir = su<<1 | sv, where su (resp. sv) is 1
//     when the overlap occupies the suffix of u (resp. v) in forward
//     coordinates. Same-strand overlaps have su≠sv; opposite-strand have
//     su=sv.
//   - Walking u→v, u is traversed forward iff su=1 (the walk leaves u
//     through its suffix) and v is traversed forward iff sv=0 (the walk
//     enters v through its prefix).
//   - Suf is the number of bases of v beyond the overlap when walking u→v —
//     the edge weight of §2 ("overhang or suffix length").
//   - Pre is the inclusive index on u of the last base before the overlap in
//     walk order; Post is the inclusive index on v of the first overlap base
//     in walk order. These are exactly the pre(e)/post(e) of §4.4 and
//     reproduce the paper's Figure 3 values (see tests).
package bidir

// Aln is a pairwise alignment between reads U and V in forward coordinates.
type Aln struct {
	U, V   int32 // global read ids (the deterministic mirror tie-break)
	BU, EU int32 // aligned range on u, half-open, forward coords
	BV, EV int32 // aligned range on v, half-open, forward coords
	RC     bool  // v matched as reverse complement
	Score  int32
	LU, LV int32 // read lengths
}

// Mirror swaps the roles of U and V: the alignment seen from v's side.
func (a Aln) Mirror() Aln {
	return Aln{
		U: a.V, V: a.U,
		BU: a.BV, EU: a.EV,
		BV: a.BU, EV: a.EU,
		RC:    a.RC,
		Score: a.Score,
		LU:    a.LV, LV: a.LU,
	}
}

// Kind classifies an alignment.
type Kind uint8

const (
	// Dovetail is a proper suffix/prefix overlap: the edge survives.
	Dovetail Kind = iota
	// ContainsV: v is fully aligned within u — v is the redundant vertex of
	// §2 and must be removed from the graph.
	ContainsV
	// ContainedU: u is fully aligned within v — u must be removed.
	ContainedU
	// Internal: the alignment stops in the middle of both reads (a
	// repeat-induced or low-quality match); the edge is dropped.
	Internal
)

// Edge is the nonzero payload of the string matrix S: a directed u→v edge.
type Edge struct {
	Dir  uint8 // su<<1 | sv
	Suf  int32 // overhang of v beyond the overlap, walking u→v
	Pre  int32 // pre_u(e), inclusive index on u (may be -1 or LU)
	Post int32 // post_v(e), inclusive index on v
}

// SrcBit returns su: 1 when the overlap occupies u's suffix.
func (e Edge) SrcBit() uint8 { return e.Dir >> 1 }

// DstBit returns sv: 1 when the overlap occupies v's suffix.
func (e Edge) DstBit() uint8 { return e.Dir & 1 }

// SrcForward reports whether u is traversed forward when walking u→v.
func (e Edge) SrcForward() bool { return e.SrcBit() == 1 }

// DstForward reports whether v is traversed forward when walking u→v.
func (e Edge) DstForward() bool { return e.DstBit() == 0 }

// ComposeDirs combines the directions of edges u→v and v→w into the
// direction of the implied walk u→w, if the walk is valid: the walk must
// leave v through the end opposite to the one it entered, i.e. the v-bit of
// the second edge must differ from the v-bit of the first.
func ComposeDirs(d1, d2 uint8) (uint8, bool) {
	if (d1&1)^(d2>>1) == 0 {
		return 0, false
	}
	return (d1 & 2) | (d2 & 1), true
}

// Params controls overlap classification.
type Params struct {
	// MaxOverhang tolerates this many unaligned bases on the overlap side of
	// each read (x-drop alignments can stop a little early — the reason
	// post(e) exists, §4.4).
	MaxOverhang int32
}

// Classify turns an alignment into a directed edge u→v, following the
// overhang-comparison scheme of Li's miniasm (Algorithm 5) adapted to the
// paper's bidirected-edge encoding:
//
//   - Orient v's unaligned overhangs along the walk (reverse-complement
//     swaps v's left and right).
//   - If the combined inner overhang exceeds MaxOverhang, the match is
//     Internal (repeat-induced): dropped.
//   - If one read's overhangs are dominated on both sides, it is contained.
//   - Otherwise exactly one read extends left and the other right, which
//     determines the direction bits with no ties (exact symmetric overlaps
//     fall into the containment branch and break by read id).
func Classify(a Aln, p Params) (Edge, Kind) {
	leftU, rightU := a.BU, a.LU-a.EU
	// v's overhangs in walk orientation.
	vLeft, vRight := a.BV, a.LV-a.EV
	if a.RC {
		vLeft, vRight = vRight, vLeft
	}
	inner := min32(leftU, vLeft) + min32(rightU, vRight)
	if inner > p.MaxOverhang {
		return Edge{}, Internal
	}
	switch {
	case leftU == vLeft && rightU == vRight:
		// Perfectly symmetric (typically near-identical reads): the larger
		// id is contained, so exactly one read survives deterministically
		// and the mirrored classification agrees.
		if a.U < a.V {
			return Edge{}, ContainsV
		}
		return Edge{}, ContainedU
	case leftU <= vLeft && rightU <= vRight:
		return Edge{}, ContainedU
	case leftU >= vLeft && rightU >= vRight:
		return Edge{}, ContainsV
	}
	var su, sv int32
	if leftU > vLeft {
		su = 1 // u extends left of the overlap: the walk leaves its suffix
	}
	// Strand parity fixes sv (§2: same strand su≠sv, opposite su=sv).
	if a.RC {
		sv = su
	} else {
		sv = 1 - su
	}
	e := Edge{Dir: uint8(su<<1 | sv)}
	if sv == 0 {
		e.Suf = a.LV - a.EV
		e.Post = a.BV
	} else {
		e.Suf = a.BV
		e.Post = a.EV - 1
	}
	if su == 1 {
		e.Pre = a.BU - 1
	} else {
		e.Pre = a.EU
	}
	return e, Dovetail
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
