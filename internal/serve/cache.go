package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// CacheStage is the stage boundary cache entries snapshot. Alignment is the
// cost cliff the paper measures (Figure 5: alignment dominates wall time),
// and everything downstream of it — the TR and contig-generation parameters
// users actually sweep — is outside the entry's option prefix, so one cached
// alignment serves the whole sweep.
const CacheStage = pipeline.StageAlignment

// entryInfoName is the per-entry commit marker. An entry directory without
// it is garbage from an interrupted commit or eviction and is removed at
// startup; eviction deletes it first, so a crash mid-removal can never leave
// a half-deleted directory that still looks committed.
const entryInfoName = "ENTRY.json"

// entryInfo is the ENTRY.json payload: enough to audit what an entry holds
// without decoding the checkpoint inside it.
type entryInfo struct {
	Key           string `json:"key"`
	Stage         string `json:"stage"`
	ReadsChecksum string `json:"reads_checksum"`
	Fingerprint   string `json:"prefix_fingerprint"`
	Bytes         int64  `json:"bytes"`
}

// Cache is the content-addressed artifact store behind the daemon: each
// entry is one committed post-Alignment pipeline checkpoint, keyed by
// (read-set checksum, options-prefix fingerprint through Alignment). A job
// whose key matches resumes via Engine.LoadCheckpoint/ResumeFrom instead of
// re-aligning; a miss runs cold with CheckpointDir pointed at a staging
// directory and commits the result with one atomic rename. Entries are
// evicted least-recently-used by byte budget; in-flight loads hold a
// refcount so eviction never deletes an entry under a reader.
type Cache struct {
	dir    string
	budget int64 // bytes; <= 0 means unlimited

	// Counters live in an internal/obs registry so the daemon's /cache
	// endpoint and tests read them with the same snapshot machinery as the
	// pipeline's own metrics.
	reg       *obs.Registry
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter

	mu      sync.Mutex
	entries map[string]*cacheEntry
	bytes   int64
}

type cacheEntry struct {
	key      string
	dir      string
	bytes    int64
	lastUsed time.Time
	refs     int
}

// OpenCache opens (creating if needed) the cache rooted at dir with the
// given byte budget (<= 0: unlimited). Leftover staging directories and
// uncommitted entries from an interrupted process are removed; committed
// entries are indexed with their ENTRY.json mtime as the LRU timestamp, so
// recency survives restarts.
func OpenCache(dir string, budget int64) (*Cache, error) {
	reg := obs.NewRegistry()
	c := &Cache{
		dir: dir, budget: budget,
		reg:       reg,
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
		entries:   map[string]*cacheEntry{},
	}
	if err := os.RemoveAll(filepath.Join(dir, "staging")); err != nil {
		return nil, fmt.Errorf("serve: clearing cache staging: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "staging"), 0o777); err != nil {
		return nil, fmt.Errorf("serve: opening cache: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning cache: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() || ent.Name() == "staging" {
			continue
		}
		entDir := filepath.Join(dir, ent.Name())
		st, err := os.Stat(filepath.Join(entDir, entryInfoName))
		if err != nil {
			// No commit marker: garbage from an interrupted commit/eviction.
			if err := os.RemoveAll(entDir); err != nil {
				return nil, fmt.Errorf("serve: removing uncommitted cache entry %s: %w", entDir, err)
			}
			continue
		}
		blob, err := os.ReadFile(filepath.Join(entDir, entryInfoName))
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", filepath.Join(entDir, entryInfoName), err)
		}
		var info entryInfo
		if err := json.Unmarshal(blob, &info); err != nil || info.Key != ent.Name() {
			// Torn or mislabeled marker: treat as uncommitted.
			if err := os.RemoveAll(entDir); err != nil {
				return nil, fmt.Errorf("serve: removing bad cache entry %s: %w", entDir, err)
			}
			continue
		}
		e := &cacheEntry{key: info.Key, dir: entDir, bytes: info.Bytes, lastUsed: st.ModTime()}
		c.entries[e.key] = e
		c.bytes += e.bytes
	}
	return c, nil
}

// Key derives the content address for reads assembled under opt: the
// read-set checksum plus the options-prefix fingerprint through CacheStage —
// the same FingerprintThrough the checkpoint inside the entry embeds, so the
// cache and LoadCheckpoint can never disagree about what matches.
func Key(opt pipeline.Options, reads [][]byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "elba/cache/v1 reads=%s prefix=%s",
		obs.ChecksumSeqs(reads), opt.FingerprintThrough(CacheStage))
	return hex.EncodeToString(h.Sum(nil))[:40]
}

// CacheStats is the /cache endpoint payload.
type CacheStats struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget"` // 0: unlimited
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
}

// Stats snapshots the cache's occupancy and counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	budget := c.budget
	if budget < 0 {
		budget = 0
	}
	return CacheStats{
		Dir: c.dir, Entries: len(c.entries), Bytes: c.bytes, Budget: budget,
		Hits: c.hits.Value(), Misses: c.misses.Value(), Evictions: c.evictions.Value(),
	}
}

// entryLoadError marks a hit whose on-disk entry failed to load (corrupt,
// truncated, evicted by another process): the caller drops the entry and
// falls back to a cold run instead of failing the job.
type entryLoadError struct{ err error }

func (e entryLoadError) Error() string { return e.err.Error() }
func (e entryLoadError) Unwrap() error { return e.err }

// Assemble runs reads under opt through the cache: a key match resumes from
// the shared post-Alignment entry, a miss runs cold and commits one. The
// second return value reports which ("hit" or "miss") for the job's manifest
// and is valid only when err is nil. A nil cache runs cold without
// checkpointing and reports "". Contigs and traffic counters are
// bit-identical between a hit and a cold run at the same options — the
// checkpoint round-trip equivalence the pipeline suite enforces.
func (c *Cache) Assemble(ctx context.Context, opt pipeline.Options, reads [][]byte, observers ...pipeline.Observer) (*pipeline.Output, string, error) {
	if c == nil {
		eng, err := pipeline.Plan(opt, observers...)
		if err != nil {
			return nil, "", err
		}
		out, err := eng.Run(ctx, reads)
		return out, "", err
	}
	key := Key(opt, reads)
	if ent := c.acquire(key); ent != nil {
		out, err := c.resume(ctx, opt, reads, ent, observers...)
		c.release(ent)
		switch {
		case err == nil:
			c.hits.Add(1)
			return out, "hit", nil
		case errors.As(err, &entryLoadError{}) && ctx.Err() == nil:
			// The entry is unreadable (bit rot, torn files): drop it and
			// align from scratch — a damaged cache costs time, never output.
			c.drop(key)
		default:
			return nil, "", err
		}
	}
	c.misses.Add(1)
	staging, err := os.MkdirTemp(filepath.Join(c.dir, "staging"), "job-*")
	if err != nil {
		return nil, "", fmt.Errorf("serve: cache staging: %w", err)
	}
	copt := opt
	copt.CheckpointDir = staging
	copt.CheckpointEvery = CacheStage
	eng, err := pipeline.Plan(copt, observers...)
	if err != nil {
		os.RemoveAll(staging)
		return nil, "", err
	}
	out, err := eng.Run(ctx, reads)
	if err != nil {
		os.RemoveAll(staging)
		return nil, "", err
	}
	// Commit failures (budget too small for the entry, full of in-use
	// entries, disk errors) degrade reuse, not the finished job.
	if err := c.commit(key, staging, opt, reads); err != nil {
		os.RemoveAll(staging)
	}
	return out, "miss", nil
}

// resume finishes an assembly from a committed entry: LoadCheckpoint
// verifies the prefix fingerprint and per-rank hashes, ResumeFrom runs the
// remaining stages under the job's (possibly downstream-different) options.
func (c *Cache) resume(ctx context.Context, opt pipeline.Options, reads [][]byte, ent *cacheEntry, observers ...pipeline.Observer) (*pipeline.Output, error) {
	eng, err := pipeline.Plan(opt, observers...)
	if err != nil {
		return nil, err
	}
	arts, err := eng.LoadCheckpoint(ctx, reads, ent.dir)
	if err != nil {
		return nil, entryLoadError{err}
	}
	defer arts.Close()
	fin, err := eng.ResumeFrom(ctx, arts, pipeline.StageExtractContig)
	if err != nil {
		return nil, err
	}
	return fin.Output()
}

// acquire looks up key and pins the entry against eviction (refcount) while
// a load is in flight. Returns nil on a miss.
func (c *Cache) acquire(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.entries[key]
	if ent == nil {
		return nil
	}
	ent.refs++
	ent.lastUsed = time.Now()
	// Persist recency so the LRU order survives a daemon restart.
	os.Chtimes(filepath.Join(ent.dir, entryInfoName), ent.lastUsed, ent.lastUsed)
	return ent
}

func (c *Cache) release(ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent.refs--
}

// drop removes a damaged entry without counting it as an eviction.
func (c *Cache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent := c.entries[key]; ent != nil && ent.refs == 0 {
		c.removeLocked(ent)
	}
}

// commit publishes a staged checkpoint as the committed entry for key:
// ENTRY.json is written (atomically) into the staging directory, LRU entries
// are evicted until the budget fits, and one rename moves the whole
// directory under its content address — the commit point. A concurrent
// commit of the same key keeps the first winner.
func (c *Cache) commit(key, staging string, opt pipeline.Options, reads [][]byte) error {
	size, err := dirSize(staging)
	if err != nil {
		return err
	}
	info := entryInfo{
		Key: key, Stage: CacheStage,
		ReadsChecksum: obs.ChecksumSeqs(reads),
		Fingerprint:   opt.FingerprintThrough(CacheStage),
		Bytes:         size,
	}
	blob, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(staging, entryInfoName), append(blob, '\n')); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return os.RemoveAll(staging)
	}
	if c.budget > 0 {
		if size > c.budget {
			os.RemoveAll(staging)
			return fmt.Errorf("serve: cache entry (%d bytes) exceeds the whole budget (%d)", size, c.budget)
		}
		for c.bytes+size > c.budget {
			victim := c.lruIdleLocked()
			if victim == nil {
				os.RemoveAll(staging)
				return fmt.Errorf("serve: cache budget full of in-use entries")
			}
			c.removeLocked(victim)
			c.evictions.Add(1)
		}
	}
	final := filepath.Join(c.dir, key)
	if err := os.Rename(staging, final); err != nil {
		os.RemoveAll(staging)
		return err
	}
	c.entries[key] = &cacheEntry{key: key, dir: final, bytes: size, lastUsed: time.Now()}
	c.bytes += size
	return nil
}

// lruIdleLocked picks the least-recently-used entry no load currently pins.
func (c *Cache) lruIdleLocked() *cacheEntry {
	var victim *cacheEntry
	for _, ent := range c.entries {
		if ent.refs > 0 {
			continue
		}
		if victim == nil || ent.lastUsed.Before(victim.lastUsed) {
			victim = ent
		}
	}
	return victim
}

// removeLocked deletes an entry: the commit marker first (uncommitting it,
// so an interrupted removal is startup garbage, never a corrupt committed
// entry), then the payload.
func (c *Cache) removeLocked(ent *cacheEntry) {
	os.Remove(filepath.Join(ent.dir, entryInfoName))
	os.RemoveAll(ent.dir)
	delete(c.entries, ent.key)
	c.bytes -= ent.bytes
}

// dirSize sums the regular-file bytes under root.
func dirSize(root string) (int64, error) {
	var n int64
	err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			n += info.Size()
		}
		return nil
	})
	return n, err
}

// writeFileAtomic writes data via temp + fsync + rename (the same
// crash-consistency dance the checkpoint layer uses).
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
