package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/elba"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// cacheFixture builds a small read set and base options for cache tests.
func cacheFixture(t *testing.T, genomeLen int, seed int64) (pipeline.Options, [][]byte) {
	t.Helper()
	ds := elba.SimulateDataset(elba.CElegansLike, genomeLen, seed)
	reads := elba.ReadSeqs(ds.Reads)
	opt := pipeline.PresetOptions(elba.CElegansLike, 4)
	opt.Threads = 1
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	return opt, reads
}

// coldManifest runs opt/reads through the bare pipeline and returns the run
// manifest — the ground truth cached runs must reproduce bit-identically.
func coldManifest(t *testing.T, opt pipeline.Options, reads [][]byte) *obs.Manifest {
	t.Helper()
	opt.Trace = obs.NewTrace(opt.P)
	opt.Metrics = obs.NewMetricSet(opt.P)
	eng, err := pipeline.Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), reads)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	return out.Manifest(opt)
}

// assemble runs one cache-mediated assembly with fresh per-run observability
// (mirroring the daemon's per-job isolation) and returns its manifest plus
// the hit/miss report.
func assemble(t *testing.T, c *Cache, opt pipeline.Options, reads [][]byte) (*obs.Manifest, string) {
	t.Helper()
	opt.Trace = obs.NewTrace(opt.P)
	opt.Metrics = obs.NewMetricSet(opt.P)
	out, how, err := c.Assemble(context.Background(), opt, reads)
	if err != nil {
		t.Fatalf("cache assemble: %v", err)
	}
	return out.Manifest(opt), how
}

// TestCacheHitMatchesCold is the artifact cache's correctness gate: a job
// differing from a committed entry only downstream of Alignment must hit,
// skip alignment entirely (align.cells = 0 in its own metrics), and still
// produce a manifest bit-identical to a cold run at the same options —
// contigs checksum and comm totals included, because the checkpoint restores
// the upstream traffic the resumed run never re-sent.
func TestCacheHitMatchesCold(t *testing.T) {
	opt, reads := cacheFixture(t, 15000, 7)
	optA, optB := opt, opt
	optA.TRFuzz = 150
	optB.TRFuzz = 500
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	if _, how := assemble(t, c, optA, reads); how != "miss" {
		t.Fatalf("first job: %q, want miss", how)
	}
	got, how := assemble(t, c, optB, reads)
	if how != "hit" {
		t.Fatalf("swept job: %q, want hit (prefixes: A %s, B %s)", how,
			optA.FingerprintThrough(CacheStage), optB.FingerprintThrough(CacheStage))
	}
	want := coldManifest(t, optB, reads)
	if got.Contigs != want.Contigs {
		t.Errorf("hit contigs %+v, cold %+v", got.Contigs, want.Contigs)
	}
	if got.Comm != want.Comm {
		t.Errorf("hit comm %+v, cold %+v", got.Comm, want.Comm)
	}
	if cells := metricSum(t, got, "align.cells"); cells != 0 {
		t.Errorf("hit performed %d alignment cells, want 0 (metrics counted work the hit skipped)", cells)
	}
	if cells := metricSum(t, want, "align.cells"); cells == 0 {
		t.Error("cold run reports 0 alignment cells; the hit assertion proves nothing")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestCacheKeySensitivity: any in-prefix option change or a different read
// set must miss — only downstream-of-Alignment changes may reuse an entry.
func TestCacheKeySensitivity(t *testing.T) {
	opt, reads := cacheFixture(t, 15000, 3)
	_, otherReads := cacheFixture(t, 15000, 4)

	inPrefix := opt
	inPrefix.XDrop += 5
	downstream := opt
	downstream.TRFuzz += 100
	key := Key(opt, reads)
	for name, miss := range map[string]string{
		"in-prefix xdrop change": Key(inPrefix, reads),
		"different reads":        Key(opt, otherReads),
	} {
		if miss == key {
			t.Errorf("%s: key unchanged (%s)", name, key)
		}
	}
	if k := Key(downstream, reads); k != key {
		t.Errorf("downstream tr_fuzz change moved the key: %s vs %s", k, key)
	}
	if testing.Short() {
		// The pure Key() table above runs everywhere; the four end-to-end
		// assemblies below ride the full (non-short) CI lap.
		return
	}

	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, how := assemble(t, c, opt, reads); how != "miss" {
		t.Fatalf("cold: %q", how)
	}
	if _, how := assemble(t, c, inPrefix, reads); how != "miss" {
		t.Fatalf("in-prefix change: %q, want miss", how)
	}
	if _, how := assemble(t, c, opt, otherReads); how != "miss" {
		t.Fatalf("different reads: %q, want miss", how)
	}
	if _, how := assemble(t, c, downstream, reads); how != "hit" {
		t.Fatalf("downstream change: %q, want hit", how)
	}
}

// TestCacheReopen: committed entries survive a daemon restart — a fresh
// OpenCache over the same directory indexes them and serves hits.
func TestCacheReopen(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline cache test; runs in the non-short CI lap")
	}
	opt, reads := cacheFixture(t, 15000, 9)
	dir := t.TempDir()
	c1, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, how := assemble(t, c1, opt, reads); how != "miss" {
		t.Fatalf("first run: %q", how)
	}

	c2, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("reopened cache stats %+v, want the committed entry indexed", st)
	}
	swept := opt
	swept.TRFuzz += 200
	got, how := assemble(t, c2, swept, reads)
	if how != "hit" {
		t.Fatalf("post-reopen: %q, want hit", how)
	}
	if want := coldManifest(t, swept, reads); got.Contigs != want.Contigs {
		t.Errorf("post-reopen hit contigs %+v, cold %+v", got.Contigs, want.Contigs)
	}
}

// TestCacheCorruptEntryFallsBack: a hit whose on-disk entry no longer loads
// (bit rot, torn write) is dropped and the job silently re-aligns — a
// damaged cache costs time, never output.
func TestCacheCorruptEntryFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline cache test; runs in the non-short CI lap")
	}
	opt, reads := cacheFixture(t, 15000, 21)
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, how := assemble(t, c, opt, reads); how != "miss" {
		t.Fatalf("first run: %q", how)
	}
	// Truncate every rank file inside the committed entry.
	key := Key(opt, reads)
	ranks, err := filepath.Glob(filepath.Join(dir, key, CacheStage, "rank-*"))
	if err != nil || len(ranks) == 0 {
		t.Fatalf("no rank files under the entry (err %v)", err)
	}
	for _, path := range ranks {
		if err := os.Truncate(path, 10); err != nil {
			t.Fatal(err)
		}
	}
	got, how := assemble(t, c, opt, reads)
	if how != "miss" {
		t.Fatalf("corrupt entry: %q, want miss (fallback to cold)", how)
	}
	if want := coldManifest(t, opt, reads); got.Contigs != want.Contigs {
		t.Errorf("fallback contigs %+v, cold %+v", got.Contigs, want.Contigs)
	}
	// The recomputed entry replaced the damaged one and serves hits again.
	if _, how := assemble(t, c, opt, reads); how != "hit" {
		t.Fatalf("after recompute: %q, want hit", how)
	}
}

// TestCacheEviction: under a budget that fits one entry but not two, a new
// commit evicts the LRU entry, and the survivor still loads bit-identically —
// eviction never corrupts committed entries.
func TestCacheEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline cache test; runs in the non-short CI lap")
	}
	optA, reads := cacheFixture(t, 15000, 31)
	optB := optA
	optB.XDrop += 5 // in-prefix: a second, distinct entry

	// Measure entry sizes with an unbounded throwaway cache.
	probe, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assemble(t, probe, optA, reads)
	sizeA := probe.Stats().Bytes
	assemble(t, probe, optB, reads)
	sizeB := probe.Stats().Bytes - sizeA
	if sizeA == 0 || sizeB == 0 {
		t.Fatalf("probe entry sizes %d/%d", sizeA, sizeB)
	}

	// Budget fits either entry alone, never both.
	budget := max(sizeA, sizeB) + min(sizeA, sizeB)/2
	c, err := OpenCache(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if _, how := assemble(t, c, optA, reads); how != "miss" {
		t.Fatalf("A: %q", how)
	}
	if _, how := assemble(t, c, optB, reads); how != "miss" {
		t.Fatalf("B: %q", how)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats after displacement %+v, want 1 eviction / 1 entry", st)
	}
	if st.Bytes > budget {
		t.Fatalf("cache holds %d bytes over budget %d", st.Bytes, budget)
	}
	// The survivor (B) serves an uncorrupted hit…
	got, how := assemble(t, c, optB, reads)
	if how != "hit" {
		t.Fatalf("survivor: %q, want hit", how)
	}
	if want := coldManifest(t, optB, reads); got.Contigs != want.Contigs {
		t.Errorf("survivor contigs %+v, cold %+v", got.Contigs, want.Contigs)
	}
	// …and the evicted key left no readable debris: A misses and recommits,
	// displacing B in turn.
	if _, how := assemble(t, c, optA, reads); how != "miss" {
		t.Fatalf("evicted key: %q, want miss", how)
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 1 {
		t.Fatalf("stats after re-displacement %+v, want 2 evictions / 1 entry", st)
	}
}

// TestNilCacheRunsCold: a daemon without -cache still assembles, reporting
// neither hit nor miss.
func TestNilCacheRunsCold(t *testing.T) {
	opt, reads := cacheFixture(t, 15000, 41)
	var c *Cache
	out, how, err := c.Assemble(context.Background(), opt, reads)
	if err != nil {
		t.Fatal(err)
	}
	if how != "" {
		t.Fatalf("nil cache reported %q", how)
	}
	if len(out.Contigs) == 0 {
		t.Fatal("nil-cache run produced no contigs")
	}
}
