package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// startDaemon spins up a Server plus an httptest front end and tears both
// down with the test.
func startDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob submits spec and returns the job id, failing on any non-202.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	id, status := tryPostJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", status)
	}
	return id
}

func tryPostJob(t *testing.T, ts *httptest.Server, spec JobSpec) (string, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding POST /jobs response: %v", err)
	}
	return out.ID, resp.StatusCode
}

// waitJob polls GET /jobs/{id} until the job is terminal.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	// Generous: a -race lap on a loaded CI runner slows the pipeline ~10×.
	deadline := time.Now().Add(10 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// jobManifest fetches and parses GET /jobs/{id}/manifest.
func jobManifest(t *testing.T, ts *httptest.Server, id string) *obs.Manifest {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/manifest")
	if err != nil {
		t.Fatalf("GET manifest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/manifest: status %d", id, resp.StatusCode)
	}
	man, err := obs.ReadManifest(resp.Body)
	if err != nil {
		t.Fatalf("parsing manifest: %v", err)
	}
	return man
}

func jobContigs(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/contigs")
	if err != nil {
		t.Fatalf("GET contigs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/contigs: status %d", id, resp.StatusCode)
	}
	fa, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fa
}

// standalone runs the same spec through the bare pipeline (no daemon, no
// cache) and returns its manifest — the ground truth daemon jobs must match.
func standalone(t *testing.T, s *Server, spec JobSpec) *obs.Manifest {
	t.Helper()
	opt, reads, err := s.jobInputs(spec)
	if err != nil {
		t.Fatalf("jobInputs: %v", err)
	}
	opt.Trace = obs.NewTrace(opt.P)
	opt.Metrics = obs.NewMetricSet(opt.P)
	eng, err := pipeline.Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), reads)
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	return out.Manifest(opt)
}

// metricSum returns the named metric's Sum (histograms) or Value (counters)
// from a manifest, 0 if absent — a stage that never ran records nothing
// (that's exactly how a cache hit shows zero alignment work).
func metricSum(t *testing.T, man *obs.Manifest, name string) int64 {
	t.Helper()
	for _, m := range man.Metrics {
		if m.Name == name {
			if m.Kind == "histogram" {
				return m.Sum
			}
			return m.Value
		}
	}
	return 0
}

// TestConcurrentJobsMatchStandalone is the isolation gate: two jobs with
// different parameters running concurrently in one daemon must each produce
// output bit-identical to a standalone pipeline run at the same options,
// with per-job manifests whose work metrics match their own standalone run
// exactly — any cross-job trace or metric bleed moves a counter and fails
// the comparison. Run under -race this also proves the job plumbing is
// data-race-free.
func TestConcurrentJobsMatchStandalone(t *testing.T) {
	specA := JobSpec{Preset: "celegans", GenomeLen: 15000, Seed: 7, P: 4, Threads: 1, TRFuzz: 150}
	specB := JobSpec{Preset: "celegans", GenomeLen: 18000, Seed: 11, P: 4, Threads: 1, XDrop: 20}
	s, ts := startDaemon(t, Config{Workers: 2})

	idA := postJob(t, ts, specA)
	idB := postJob(t, ts, specB)
	stA := waitJob(t, ts, idA)
	stB := waitJob(t, ts, idB)
	if stA.State != JobDone || stB.State != JobDone {
		t.Fatalf("states: %s=%q (%s), %s=%q (%s)", idA, stA.State, stA.Error, idB, stB.State, stB.Error)
	}

	wantA := standalone(t, s, specA)
	wantB := standalone(t, s, specB)
	for _, tc := range []struct {
		id   string
		want *obs.Manifest
	}{{idA, wantA}, {idB, wantB}} {
		got := jobManifest(t, ts, tc.id)
		if bad := got.Verify(); len(bad) > 0 {
			t.Errorf("%s manifest invalid: %v", tc.id, bad)
		}
		if got.Contigs != tc.want.Contigs {
			t.Errorf("%s contigs %+v, standalone %+v", tc.id, got.Contigs, tc.want.Contigs)
		}
		if got.Comm != tc.want.Comm {
			t.Errorf("%s comm %+v, standalone %+v", tc.id, got.Comm, tc.want.Comm)
		}
		for _, metric := range []string{"align.cells", "align.pairs"} {
			if g, w := metricSum(t, got, metric), metricSum(t, tc.want, metric); g != w {
				t.Errorf("%s metric %s = %d, standalone %d (cross-job bleed?)", tc.id, metric, g, w)
			}
		}
		if got.Cache != "" {
			t.Errorf("%s manifest cache = %q, want empty (daemon has no cache)", tc.id, got.Cache)
		}
	}
	// The two jobs differ by construction; identical checksums would mean
	// one job's output leaked into the other.
	if wantA.Contigs.Checksum == wantB.Contigs.Checksum {
		t.Fatalf("test needs distinguishable jobs, both checksum %s", wantA.Contigs.Checksum)
	}
}

// TestJobEventsStream checks the SSE endpoint replays a completed job's
// whole progress log: queued, started, every stage boundary in pipeline
// order, and the terminal done event.
func TestJobEventsStream(t *testing.T) {
	_, ts := startDaemon(t, Config{})
	id := postJob(t, ts, JobSpec{Preset: "celegans", GenomeLen: 15000, Seed: 3, P: 1, Threads: 1})
	if st := waitJob(t, ts, id); st.State != JobDone {
		t.Fatalf("job %s: %q (%s)", id, st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	want := []string{"queued", "started"}
	for range pipeline.StageNames() {
		want = append(want, "stage_start", "stage_end")
	}
	want = append(want, "done")
	if got, wanted := fmt.Sprint(types), fmt.Sprint(want); got != wanted {
		t.Fatalf("event sequence %v, want %v", types, want)
	}
}

// TestAdmissionAndCancel covers the bounded queue and both cancellation
// paths: a full queue answers 429, a queued job cancels instantly, and a
// running job unwinds via its context and lands in cancelled.
func TestAdmissionAndCancel(t *testing.T) {
	big := JobSpec{Preset: "celegans", GenomeLen: 60000, Seed: 5, P: 4, Threads: 1}
	_, ts := startDaemon(t, Config{Queue: 1, Workers: 1})

	running := postJob(t, ts, big) // dequeued immediately, occupies the worker
	queued := postJob(t, ts, big)  // fills the queue
	if _, status := tryPostJob(t, ts, big); status != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", status)
	}

	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE /jobs/%s: %v", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := del(queued); status != http.StatusOK {
		t.Fatalf("cancelling queued job: status %d", status)
	}
	if st := waitJob(t, ts, queued); st.State != JobCancelled {
		t.Fatalf("queued job state %q, want cancelled", st.State)
	}
	if status := del(running); status != http.StatusOK {
		t.Fatalf("cancelling running job: status %d", status)
	}
	if st := waitJob(t, ts, running); st.State != JobCancelled {
		t.Fatalf("running job state %q, want cancelled", st.State)
	}
	// Terminal jobs refuse further cancels.
	if status := del(running); status != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", status)
	}
	// Output endpoints explain themselves for jobs without output.
	resp, err := http.Get(ts.URL + "/jobs/" + running + "/contigs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contigs of cancelled job: status %d, want 409", resp.StatusCode)
	}
}

// TestUploadedDatasetRoundTrip uploads reads as FASTA, assembles the
// dataset by id, and checks the daemon's contigs match a standalone run on
// the same sequences. Bad submissions get 400s.
func TestUploadedDatasetRoundTrip(t *testing.T) {
	s, ts := startDaemon(t, Config{})
	opt, reads, err := s.jobInputs(JobSpec{Preset: "celegans", GenomeLen: 15000, Seed: 13, P: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fa bytes.Buffer
	for i, r := range reads {
		fmt.Fprintf(&fa, ">read%d\n%s\n", i, r)
	}
	resp, err := http.Post(ts.URL+"/datasets", "text/plain", bytes.NewReader(fa.Bytes()))
	if err != nil {
		t.Fatalf("POST /datasets: %v", err)
	}
	var ds struct {
		ID    string `json:"id"`
		Reads int    `json:"reads"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Reads != len(reads) || ds.ID != obs.ChecksumSeqs(reads) {
		t.Fatalf("dataset %+v, want %d reads id %s", ds, len(reads), obs.ChecksumSeqs(reads))
	}

	spec := JobSpec{Dataset: ds.ID, P: 1, Threads: 1, K: opt.K}
	id := postJob(t, ts, spec)
	if st := waitJob(t, ts, id); st.State != JobDone {
		t.Fatalf("job %s: %q (%s)", id, st.State, st.Error)
	}
	want := standalone(t, s, spec)
	if got := jobManifest(t, ts, id); got.Contigs != want.Contigs {
		t.Fatalf("uploaded-dataset contigs %+v, standalone %+v", got.Contigs, want.Contigs)
	}

	for _, bad := range []JobSpec{
		{},                                   // no input
		{Dataset: "nope"},                    // unknown dataset
		{Preset: "celegans", Dataset: ds.ID}, // both inputs
		{Preset: "martian"},                  // unknown preset
		{Preset: "celegans", P: 3},           // invalid options (P not a square)
	} {
		if _, status := tryPostJob(t, ts, bad); status != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", bad, status)
		}
	}
}
