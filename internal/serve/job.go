package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/elba"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// JobState is a job's lifecycle position: queued → running → one terminal
// state (done, failed, cancelled).
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state accepts no further transitions.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobSpec is the POST /jobs request body. Exactly one input is named: an
// uploaded dataset (by the id POST /datasets returned) or a simulation
// preset. Zero-valued parameters keep the preset/paper defaults, so a sweep
// submits the same spec varying only the swept field.
type JobSpec struct {
	Dataset   string `json:"dataset,omitempty"`    // uploaded dataset id (sha256:…)
	Preset    string `json:"preset,omitempty"`     // celegans | osativa | hsapiens
	GenomeLen int    `json:"genome_len,omitempty"` // preset genome length (default 100000)
	Seed      int64  `json:"seed,omitempty"`       // preset simulation seed (default 1)

	P           int    `json:"p,omitempty"`            // simulated ranks (perfect square; default 4)
	Threads     int    `json:"threads,omitempty"`      // intra-rank workers (0: auto)
	K           int    `json:"k,omitempty"`            // k-mer length override
	XDrop       int32  `json:"xdrop,omitempty"`        // x-drop threshold override
	MinOverlap  int32  `json:"min_overlap,omitempty"`  // overlap-length floor override
	MaxOverhang int32  `json:"max_overhang,omitempty"` // overhang classification bound override
	TRFuzz      int32  `json:"tr_fuzz,omitempty"`      // transitive-reduction fuzz override
	TRMaxIter   int    `json:"tr_max_iter,omitempty"`  // transitive-reduction iteration cap override
	Backend     string `json:"backend,omitempty"`      // xdrop | wfa
	NoCache     bool   `json:"no_cache,omitempty"`     // bypass the artifact cache for this job
}

// Event is one entry of a job's progress stream, replayed and then streamed
// live by GET /jobs/{id}/events (SSE: the Type field is the SSE event name,
// the JSON-encoded Event the data line).
type Event struct {
	Seq    int    `json:"seq"`
	Type   string `json:"type"` // queued|started|cache|stage_start|stage_end|done|failed|cancelled
	Stage  string `json:"stage,omitempty"`
	Detail string `json:"detail,omitempty"`
	WallMS int64  `json:"wall_ms,omitempty"`
	Time   string `json:"time"` // RFC 3339
}

// Job is one queued or executed assembly. All mutable fields are guarded by
// mu; changed is closed and replaced on every mutation, which is what lets
// any number of SSE streams wait for news without polling.
type Job struct {
	ID   string
	Spec JobSpec

	opt   pipeline.Options
	reads [][]byte

	mu       sync.Mutex
	changed  chan struct{}
	state    JobState
	stage    string // currently executing stage (running jobs)
	cache    string // "hit" | "miss" | "" (cache off or not yet decided)
	errMsg   string
	events   []Event
	output   *pipeline.Output
	manifest *obs.Manifest
	trace    *obs.Trace
	cancel   context.CancelFunc
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, spec JobSpec, opt pipeline.Options, reads [][]byte) *Job {
	j := &Job{
		ID: id, Spec: spec, opt: opt, reads: reads,
		changed: make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}
	j.event("queued", "", "", 0)
	return j
}

// event appends one progress event and wakes every waiting stream. Callers
// may hold mu (eventLocked) or not (event).
func (j *Job) event(typ, stage, detail string, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.eventLocked(typ, stage, detail, wall)
}

func (j *Job) eventLocked(typ, stage, detail string, wall time.Duration) {
	j.events = append(j.events, Event{
		Seq: len(j.events), Type: typ, Stage: stage, Detail: detail,
		WallMS: wall.Milliseconds(), Time: time.Now().UTC().Format(time.RFC3339Nano),
	})
	close(j.changed)
	j.changed = make(chan struct{})
}

// eventsSince returns the events from seq on, whether the job is terminal,
// and the channel the next mutation closes — the SSE handler's wait point.
func (j *Job) eventsSince(seq int) ([]Event, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.state.terminal(), j.changed
}

// JobStatus is the GET /jobs/{id} payload.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Stage    string   `json:"stage,omitempty"` // currently executing stage
	Cache    string   `json:"cache,omitempty"` // hit | miss
	Error    string   `json:"error,omitempty"`
	Contigs  int      `json:"contigs,omitempty"`
	Spec     JobSpec  `json:"spec"`
	Created  string   `json:"created"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
}

// Status snapshots the job for the HTTP API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Stage: j.stage, Cache: j.cache,
		Error: j.errMsg, Spec: j.Spec,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.output != nil {
		st.Contigs = len(j.output.Contigs)
	}
	return st
}

// result returns the finished output and manifest (nil until JobDone).
func (j *Job) result() (*pipeline.Output, *obs.Manifest, *obs.Trace) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.manifest, j.trace
}

// requestCancel cancels the job from the API: a queued job goes terminal
// immediately (the worker skips it on dequeue), a running one has its
// context cancelled and goes terminal when the engine unwinds. Terminal
// jobs are left alone. Reports whether anything was cancelled.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCancelled
		j.finished = time.Now()
		j.eventLocked("cancelled", "", "cancelled while queued", 0)
		j.mu.Unlock()
		return true
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	j.mu.Unlock()
	return false
}

// run executes the job on the worker goroutine: per-job context, observer,
// trace and metric set (isolation — nothing observable is shared between
// jobs), then the cache-mediated assembly.
func (s *Server) run(j *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.eventLocked("started", "", "", 0)
	j.mu.Unlock()

	// Per-job observability: a fresh trace and metric set per run, so
	// concurrent jobs cannot bleed spans or counters into each other and
	// each manifest records exactly its own run.
	opt := j.opt
	opt.Trace = obs.NewTrace(opt.P)
	opt.Metrics = obs.NewMetricSet(opt.P)

	observer := pipeline.Observer{
		StageStart: func(stage string, _, _ int) {
			j.mu.Lock()
			j.stage = stage
			j.eventLocked("stage_start", stage, "", 0)
			j.mu.Unlock()
		},
		StageEnd: func(stage string, _ *trace.Summary, wall time.Duration) {
			j.mu.Lock()
			j.stage = ""
			j.eventLocked("stage_end", stage, "", wall)
			j.mu.Unlock()
		},
	}

	var cache *Cache
	if !j.Spec.NoCache {
		cache = s.cache
	}
	out, how, err := cache.Assemble(ctx, opt, j.reads, observer)
	if how != "" {
		j.mu.Lock()
		j.cache = how
		j.eventLocked("cache", CacheStage, how, 0)
		j.mu.Unlock()
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.stage = ""
	switch {
	case err == nil:
		man := out.Manifest(opt)
		man.Cache = how
		j.output, j.manifest, j.trace = out, man, opt.Trace
		j.state = JobDone
		j.eventLocked("done", "", fmt.Sprintf("%d contigs", len(out.Contigs)), out.Stats.WallTime)
	case errors.Is(err, context.Canceled):
		j.state = JobCancelled
		j.eventLocked("cancelled", "", "", 0)
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		if rank, ok := elba.FailedRank(err); ok {
			j.errMsg = fmt.Sprintf("rank %d failed: %s", rank, err)
		}
		j.eventLocked("failed", "", j.errMsg, 0)
	}
}
