// Package serve is the assembly-as-a-service layer: a long-running job
// manager with an HTTP/JSON API (cmd/elbad) on top of the pipeline's stage
// graph. Datasets are uploaded once and addressed by content checksum; jobs
// queue behind a bounded admission gate, run on a fixed pool of workers with
// per-job isolation (own engine, world, trace and metric set, cancellable
// context), and stream per-stage progress as server-sent events. The
// content-addressed artifact cache (Cache) is the service's reuse engine:
// parameter-sweep jobs whose option prefix through Alignment matches a
// committed entry resume from the shared post-Alignment checkpoint instead
// of re-aligning.
//
// Endpoints (all request/response bodies JSON unless noted):
//
//	GET    /healthz           liveness probe ("ok")
//	POST   /datasets          upload a FASTA body; returns {id, reads, bases}
//	GET    /datasets          list uploaded datasets
//	POST   /jobs              submit a JobSpec; 202 {id} or 429 when the queue is full
//	GET    /jobs              list job statuses, submission order
//	GET    /jobs/{id}         one job's status
//	DELETE /jobs/{id}         cancel (queued or running); 409 if already terminal
//	GET    /jobs/{id}/events  SSE progress stream (replay + live; ends at a terminal state)
//	GET    /jobs/{id}/contigs contigs as FASTA (once done)
//	GET    /jobs/{id}/manifest RUN.json run manifest (once done)
//	GET    /jobs/{id}/trace   Perfetto trace JSON (once done)
//	GET    /cache             artifact-cache occupancy and hit/miss/eviction counters
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"context"

	"repro/elba"
	"repro/internal/fasta"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Config parameterizes a Server.
type Config struct {
	// Queue bounds the admission gate: jobs waiting to run beyond the ones
	// executing. A full queue rejects POST /jobs with 429 (back-pressure,
	// not unbounded memory). Default 8.
	Queue int
	// Workers is the number of jobs executing concurrently. Each job runs
	// its own P-rank world, so this multiplies CPU footprint. Default 1.
	Workers int
	// CacheDir enables the content-addressed artifact cache under this
	// directory ("" disables caching).
	CacheDir string
	// CacheBudget bounds the cache's on-disk bytes (LRU eviction; <= 0
	// means unlimited). Ignored without CacheDir.
	CacheBudget int64
	// DefaultP is the rank count for jobs that do not set one. Default 4.
	DefaultP int
	// MaxUpload bounds a POST /datasets body in bytes. Default 1 GiB.
	MaxUpload int64
}

// dataset is one uploaded read set, addressed by content checksum so
// re-uploading is idempotent and the id slots straight into the cache key.
type dataset struct {
	ID    string `json:"id"`
	Reads int    `json:"reads"`
	Bases int64  `json:"bases"`
	reads [][]byte
}

// Server owns the job table, the worker pool and the cache. Create with
// New, serve Handler() on any http.Server, Close on shutdown.
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for GET /jobs
	datasets map[string]*dataset
	nextID   int
}

// New builds a Server and starts its workers.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.DefaultP <= 0 {
		cfg.DefaultP = 4
	}
	if cfg.MaxUpload <= 0 {
		cfg.MaxUpload = 1 << 30
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    make(chan *Job, cfg.Queue),
		jobs:     map[string]*Job{},
		datasets: map[string]*dataset{},
	}
	if cfg.CacheDir != "" {
		c, err := OpenCache(cfg.CacheDir, cfg.CacheBudget)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.routes()
	for range cfg.Workers {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache returns the artifact cache (nil when disabled) — test and
// operational introspection.
func (s *Server) Cache() *Cache { return s.cache }

// Close cancels every running job, stops the workers and waits for them.
// Queued jobs are left in the queue (their worlds never started); in-flight
// HTTP requests are the http.Server's to drain.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("POST /datasets", s.handleUpload)
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/contigs", s.handleContigs)
	s.mux.HandleFunc("GET /jobs/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /cache", s.handleCache)
}

// writeJSON writes v as a compact JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the API's error shape.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUpload+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxUpload {
		writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUpload)
		return
	}
	recs, err := fasta.Read(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing FASTA: %v", err)
		return
	}
	if len(recs) == 0 {
		writeError(w, http.StatusBadRequest, "no sequences in upload")
		return
	}
	reads := make([][]byte, len(recs))
	var bases int64
	for i, rec := range recs {
		reads[i] = rec.Seq
		bases += int64(len(rec.Seq))
	}
	ds := &dataset{ID: obs.ChecksumSeqs(reads), Reads: len(reads), Bases: bases, reads: reads}
	s.mu.Lock()
	if _, ok := s.datasets[ds.ID]; !ok {
		s.datasets[ds.ID] = ds
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ds)
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		list = append(list, ds)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeJSON(w, http.StatusOK, list)
}

// jobInputs resolves a spec to (options, reads): the validation half of
// admission, run before the job is ever queued so a bad spec is a 400 at
// submit time, not a failed job later.
func (s *Server) jobInputs(spec JobSpec) (pipeline.Options, [][]byte, error) {
	p := spec.P
	if p == 0 {
		p = s.cfg.DefaultP
	}
	var opt pipeline.Options
	var reads [][]byte
	switch {
	case spec.Dataset != "" && spec.Preset != "":
		return opt, nil, fmt.Errorf("dataset and preset are mutually exclusive")
	case spec.Dataset != "":
		s.mu.Lock()
		ds := s.datasets[spec.Dataset]
		s.mu.Unlock()
		if ds == nil {
			return opt, nil, fmt.Errorf("unknown dataset %q (POST it to /datasets first)", spec.Dataset)
		}
		reads = ds.reads
		opt = pipeline.DefaultOptions(p)
	case spec.Preset != "":
		pr, err := elba.ParsePreset(spec.Preset)
		if err != nil {
			return opt, nil, err
		}
		size := spec.GenomeLen
		if size == 0 {
			size = 100000
		}
		seed := spec.Seed
		if seed == 0 {
			seed = 1
		}
		ds := elba.SimulateDataset(pr, size, seed)
		reads = elba.ReadSeqs(ds.Reads)
		opt = pipeline.PresetOptions(pr, p)
	default:
		return opt, nil, fmt.Errorf("need dataset or preset")
	}
	opt.Threads = spec.Threads
	if spec.K > 0 {
		opt.K = spec.K
	}
	if spec.XDrop > 0 {
		opt.XDrop = spec.XDrop
	}
	if spec.MinOverlap > 0 {
		opt.MinOverlap = spec.MinOverlap
	}
	if spec.MaxOverhang > 0 {
		opt.MaxOverhang = spec.MaxOverhang
	}
	if spec.TRFuzz > 0 {
		opt.TRFuzz = spec.TRFuzz
	}
	if spec.TRMaxIter > 0 {
		opt.TRMaxIter = spec.TRMaxIter
	}
	if spec.Backend != "" {
		opt.AlignBackend = spec.Backend
	}
	if err := opt.Validate(); err != nil {
		return opt, nil, err
	}
	return opt, reads, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "parsing job spec: %v", err)
		return
	}
	opt, reads, err := s.jobInputs(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), spec, opt, reads)
	select {
	case s.queue <- j:
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID})
	default:
		s.nextID--
		s.mu.Unlock()
		// Admission control: a bounded queue sheds load explicitly instead
		// of buffering unboundedly; the client retries with backoff.
		writeError(w, http.StatusTooManyRequests, "job queue full (%d waiting); retry later", s.cfg.Queue)
	}
}

// job looks up a path's {id}; a nil return means the 404 was written.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return j
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id])
	}
	s.mu.Unlock()
	statuses := make([]JobStatus, len(list))
	for i, j := range list {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job %s already %s", j.ID, j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents is the SSE progress stream: replay the job's event log from
// the start, then stream live events as they land, ending after the
// terminal event. Disconnection is detected via the request context; the
// job is never slowed by a slow consumer (events are buffered in the job,
// not the connection).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	seq := 0
	for {
		evs, terminal, changed := j.eventsSince(seq)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		}
		if len(evs) > 0 {
			fl.Flush()
			seq += len(evs)
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		}
	}
}

// finished returns the job's result if it is done; otherwise writes the
// explanatory non-200 and returns nils.
func (s *Server) finished(w http.ResponseWriter, r *http.Request) (*pipeline.Output, *obs.Manifest, *obs.Trace) {
	j := s.job(w, r)
	if j == nil {
		return nil, nil, nil
	}
	out, man, tr := j.result()
	if out == nil {
		st := j.Status()
		if st.State.terminal() {
			writeError(w, http.StatusConflict, "job %s %s: no output", j.ID, st.State)
		} else {
			writeError(w, http.StatusConflict, "job %s is %s; output exists once done", j.ID, st.State)
		}
		return nil, nil, nil
	}
	return out, man, tr
}

func (s *Server) handleContigs(w http.ResponseWriter, r *http.Request) {
	out, _, _ := s.finished(w, r)
	if out == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	elba.WriteContigs(w, out.Contigs)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	_, man, _ := s.finished(w, r)
	if man == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	man.WriteJSON(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	_, _, tr := s.finished(w, r)
	if tr == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteJSON(w)
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]bool{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, s.cache.Stats())
}
