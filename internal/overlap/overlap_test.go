package overlap

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/align"
	"repro/internal/bidir"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/readsim"
	"repro/internal/spmat"
	"repro/internal/trace"
)

func testConfig(k int, xdrop int32) Config {
	return Config{
		K:            k,
		ReliableLow:  2,
		ReliableHigh: 80,
		Align:        align.DefaultParams(xdrop),
		MinOverlap:   100,
		MinScoreFrac: 0.5,
		MaxOverhang:  60,
	}
}

// trueOverlap returns the genomic overlap length of two simulated reads.
func trueOverlap(a, b readsim.Read) int {
	lo := max(a.Pos, b.Pos)
	hi := min(a.End, b.End)
	if hi < lo {
		return 0
	}
	return hi - lo
}

func TestSeedsMergeKeepsTwoSmallestDistinct(t *testing.T) {
	s1 := align.Seed{PU: 10, PV: 5}
	s2 := align.Seed{PU: 3, PV: 7}
	s3 := align.Seed{PU: 20, PV: 1}
	var a Seeds
	a = a.addSeed(s1)
	a = a.addSeed(s1) // duplicate ignored
	if a.N != 1 {
		t.Fatalf("N=%d", a.N)
	}
	a = a.addSeed(s3)
	a = a.addSeed(s2)
	if a.N != 2 || a.S[0] != s2 || a.S[1] != s1 {
		t.Fatalf("got %+v", a)
	}
	// Merge must be order-insensitive (semiring Add commutativity).
	var b Seeds
	b = b.addSeed(s2)
	var c1 Seeds
	c1 = c1.addSeed(s1)
	c1 = c1.addSeed(s3)
	m1 := c1.merge(b)
	m2 := b.merge(c1)
	if m1 != m2 {
		t.Fatalf("merge not commutative: %+v vs %+v", m1, m2)
	}
}

func TestRunErrorFreeFindsTrueOverlapsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 40000, Seed: 17})
	reads := readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 2500, Seed: 18})
	seqs := readsim.Seqs(reads)
	cfg := testConfig(21, 25)

	for _, p := range []int{1, 4} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			var edges []spmat.Triple[bidir.Aln]
			var contained []int32
			err := mpi.Run(p, func(c *mpi.Comm) {
				g := grid.New(c)
				store := fasta.FromGlobal(c, seqs)
				res := Run(g, store, cfg, trace.New())
				all := res.R.GatherTriples(0)
				if c.Rank() == 0 {
					edges = all
					contained = res.Contained
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(edges) == 0 {
				t.Fatal("no overlaps found")
			}
			// Soundness: every edge connects truly overlapping reads.
			for _, e := range edges {
				ov := trueOverlap(reads[e.Row], reads[e.Col])
				if ov < 50 {
					t.Fatalf("edge (%d,%d) between non-overlapping reads (true ov %d)", e.Row, e.Col, ov)
				}
			}
			// Symmetry.
			set := map[[2]int32]bool{}
			for _, e := range edges {
				set[[2]int32{e.Row, e.Col}] = true
			}
			for _, e := range edges {
				if !set[[2]int32{e.Col, e.Row}] {
					t.Fatalf("edge (%d,%d) has no mirror", e.Row, e.Col)
				}
			}
			// Completeness: most substantial true dovetail overlaps between
			// surviving reads are found.
			dead := map[int32]bool{}
			for _, id := range contained {
				dead[id] = true
			}
			found, missed := 0, 0
			for i := range reads {
				for j := i + 1; j < len(reads); j++ {
					if dead[int32(i)] || dead[int32(j)] {
						continue
					}
					ov := trueOverlap(reads[i], reads[j])
					// Require a solid dovetail: long overlap but neither
					// contains the other.
					cont := (reads[i].Pos <= reads[j].Pos && reads[i].End >= reads[j].End) ||
						(reads[j].Pos <= reads[i].Pos && reads[j].End >= reads[i].End)
					if ov < 500 || cont {
						continue
					}
					if set[[2]int32{int32(i), int32(j)}] {
						found++
					} else {
						missed++
					}
				}
			}
			if found == 0 || missed > found/5 {
				t.Fatalf("found %d, missed %d true overlaps", found, missed)
			}
		})
	}
}

func TestRunDeterministicAcrossP(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 15000, Seed: 23})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 8, MeanLen: 1500, Seed: 24}))
	cfg := testConfig(17, 20)
	var results [][]spmat.Triple[bidir.Aln]
	for _, p := range []int{1, 4, 9} {
		var edges []spmat.Triple[bidir.Aln]
		err := mpi.Run(p, func(c *mpi.Comm) {
			g := grid.New(c)
			store := fasta.FromGlobal(c, reads)
			res := Run(g, store, cfg, trace.New())
			all := res.R.GatherTriples(0)
			if c.Rank() == 0 {
				edges = all
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		results = append(results, edges)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("overlap graph differs between P=1 and run %d", i)
		}
	}
}

func TestRunWithErrorsStillFindsOverlaps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 30000, Seed: 29})
	reads := readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 2500, ErrorRate: 0.03, Seed: 30})
	seqs := readsim.Seqs(reads)
	cfg := testConfig(17, 30)
	cfg.MinScoreFrac = 0.3
	var nEdges int64
	var bad int
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		store := fasta.FromGlobal(c, seqs)
		res := Run(g, store, cfg, trace.New())
		all := res.R.GatherTriples(0)
		if c.Rank() == 0 {
			nEdges = int64(len(all))
			for _, e := range all {
				if trueOverlap(reads[e.Row], reads[e.Col]) < 50 {
					bad++
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if nEdges < 10 {
		t.Fatalf("only %d edges at 3%% error", nEdges)
	}
	if bad > 0 {
		t.Fatalf("%d spurious edges", bad)
	}
}

func TestContainedReadsAreRemoved(t *testing.T) {
	// Construct a scenario with a guaranteed containment: one short read
	// inside a long one.
	genome := readsim.Genome(readsim.GenomeConfig{Length: 12000, Seed: 31})
	var seqs [][]byte
	// Tile the genome with long reads.
	step, rl := 800, 2400
	for pos := 0; pos+rl <= len(genome); pos += step {
		seqs = append(seqs, genome[pos:pos+rl])
	}
	// Append a short read strictly inside read 0.
	containedID := int32(len(seqs))
	seqs = append(seqs, genome[600:1400])
	cfg := testConfig(21, 20)
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		store := fasta.FromGlobal(c, seqs)
		res := Run(g, store, cfg, trace.New())
		isContained := false
		for _, id := range res.Contained {
			if id == containedID {
				isContained = true
			}
		}
		if !isContained {
			panic("short embedded read not detected as contained")
		}
		for _, t := range res.R.Local.Ts {
			if t.Row == containedID || t.Col == containedID {
				panic("contained read still has edges")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestToStringGraphClassifiesAll(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 37})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 2000, Seed: 38}))
	cfg := testConfig(21, 20)
	err := mpi.Run(4, func(c *mpi.Comm) {
		g := grid.New(c)
		store := fasta.FromGlobal(c, reads)
		res := Run(g, store, cfg, trace.New())
		s := ToStringGraph(res.R, cfg.MaxOverhang)
		if s.Nnz() != res.R.Nnz() {
			panic("string graph lost edges")
		}
		// Directed values must be mirror-consistent: gather and check.
		all := s.GatherTriples(0)
		if g.Comm.Rank() == 0 {
			vals := map[[2]int32]bidir.Edge{}
			for _, t := range all {
				vals[[2]int32{t.Row, t.Col}] = t.Val
			}
			for _, t := range all {
				m, ok := vals[[2]int32{t.Col, t.Row}]
				if !ok {
					panic("missing mirror")
				}
				if t.Val.SrcBit() != m.DstBit() || t.Val.DstBit() != m.SrcBit() {
					panic("mirror direction bits inconsistent")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
