// Package overlap implements the overlap-detection and alignment stages of
// Algorithm 1 (lines 3–9): building the |reads| × |k-mers| matrix A,
// computing the candidate matrix C = A·Aᵀ with a seed-collecting semiring
// via distributed SUMMA SpGEMM, running x-drop alignment on every candidate
// pair, and pruning low-quality alignments and contained reads to obtain the
// overlap matrix R.
package overlap

import (
	"sort"

	"repro/internal/align"
	"repro/internal/bidir"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/kmer"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/spmat"
	"repro/internal/trace"
)

// Seeds is the nonzero payload of the candidate matrix C: up to two shared
// k-mer seeds per read pair (BELLA's policy). The two lexicographically
// smallest distinct seeds are kept, which makes the semiring addition
// associative and commutative — required for SUMMA's stage-order-independent
// accumulation.
type Seeds struct {
	N int32
	S [2]align.Seed
}

func seedLess(a, b align.Seed) bool {
	if a.PU != b.PU {
		return a.PU < b.PU
	}
	if a.PV != b.PV {
		return a.PV < b.PV
	}
	return !a.RC && b.RC
}

// addSeed inserts s keeping the two smallest distinct seeds.
func (c Seeds) addSeed(s align.Seed) Seeds {
	for i := int32(0); i < c.N; i++ {
		if c.S[i] == s {
			return c
		}
	}
	switch {
	case c.N == 0:
		c.S[0] = s
		c.N = 1
	case c.N == 1:
		if seedLess(s, c.S[0]) {
			c.S[0], c.S[1] = s, c.S[0]
		} else {
			c.S[1] = s
		}
		c.N = 2
	default:
		if seedLess(s, c.S[0]) {
			c.S[1] = c.S[0]
			c.S[0] = s
		} else if seedLess(s, c.S[1]) {
			c.S[1] = s
		}
	}
	return c
}

// merge combines two seed sets (the semiring Add).
func (c Seeds) merge(d Seeds) Seeds {
	for i := int32(0); i < d.N; i++ {
		c = c.addSeed(d.S[i])
	}
	return c
}

// seedSemiring builds C = A·Aᵀ: multiplying occurrence A(i,k) with
// Aᵀ(k,j) yields a shared-seed candidate for pair (i,j).
var seedSemiring = spmat.Semiring[kmer.Occur, kmer.Occur, Seeds]{
	Mul: func(a, b kmer.Occur) (Seeds, bool) {
		var s Seeds
		return s.addSeed(align.Seed{PU: a.Pos, PV: b.Pos, RC: a.RC != b.RC}), true
	},
	Add: func(a, b Seeds) Seeds { return a.merge(b) },
}

// Config parameterizes overlap detection.
type Config struct {
	K            int   // k-mer length (paper: 31 low-error, 17 H. sapiens)
	ReliableLow  int32 // minimum read-count for a reliable k-mer
	ReliableHigh int32 // maximum read-count (repeat guard)
	Align        align.Params
	// NewAligner, when non-nil, constructs the per-rank alignment backend
	// the stage dispatches through; nil falls back to the x-drop aligner
	// built from Align. Each rank gets its own instance, so backends need
	// not be safe for concurrent use.
	NewAligner   func() align.Aligner
	MinOverlap   int32   // minimum aligned length on both reads
	MinScoreFrac float64 // score must be ≥ frac × aligned length
	MaxOverhang  int32   // dovetail tolerance (x-drop early stop slack)
	// Threads is the intra-rank worker count for the compute-heavy loops
	// (k-mer extraction, pairwise alignment); ≤ 1 runs them serially. Each
	// worker gets its own aligner instance, so NewAligner is called Threads
	// times per rank.
	Threads int
	// Async runs the communication-heavy loops with the nonblocking layer:
	// the k-mer exchange posts its receives before packing sends, and the
	// SUMMA SpGEMM prefetches round r+1's panels while multiplying round r.
	// Results and traffic counters are identical in both modes.
	Async bool
}

// aligner instantiates this rank's alignment backend.
func (c Config) aligner() align.Aligner {
	if c.NewAligner != nil {
		return c.NewAligner()
	}
	return align.NewXDrop(c.Align)
}

// Result carries the stage outputs and counters.
type Result struct {
	NumReads  int
	NumKmers  int
	A         *spmat.Dist[kmer.Occur]
	R         *spmat.Dist[bidir.Aln] // symmetric overlap matrix
	Contained []int32                // reads removed as contained (global, replicated)
	// Counters (global, replicated); each candidate pair is counted once
	// (the checkerboard keeps one direction per pair).
	CandidatePairs int64 // aligned read pairs
	KeptOverlaps   int64 // pairs surviving as dovetails
}

// Run executes k-mer counting, overlap detection and alignment. Stage timing
// lands in tm under the paper's breakdown names (CountKmer, DetectOverlap,
// Alignment). It is the monolithic composition of the three stage functions
// below, which the pipeline engine also invokes one at a time.
func Run(g *grid.Grid, store *fasta.DistStore, cfg Config, tm *trace.Timers) *Result {
	res := &Result{NumReads: store.N}
	kres := CountKmers(g, store, cfg, tm, res)
	c := DetectCandidates(g, store, kres, cfg, tm, res)
	AlignCandidates(g, store, c, cfg, tm, res)
	return res
}

// CountKmers is the CountKmer stage: distributed counting and reliable-k-mer
// selection. It records the column count and work units into res and returns
// the per-rank counting result consumed by DetectCandidates.
func CountKmers(g *grid.Grid, store *fasta.DistStore, cfg Config, tm *trace.Timers, res *Result) *kmer.Result {
	var kres *kmer.Result
	tm.Stage("CountKmer", g.Comm, func() {
		kres = kmer.CountAndBuild(store, cfg.K, cfg.ReliableLow, cfg.ReliableHigh, cfg.Threads, cfg.Async)
	})
	res.NumKmers = kres.NumCols
	tm.AddWork("CountKmer", kres.Occurrences)
	return kres
}

// DetectCandidates is the DetectOverlap stage: A, Aᵀ, C = A·Aᵀ. C is
// symmetric and each pair must be aligned exactly once; keeping only the
// upper triangle would idle the lower-triangle ranks of the grid, so the
// surviving direction of each pair is chosen checkerboard-style — (min,max)
// when i+j is even, (max,min) when odd — which splits the alignment work
// evenly across both triangles. The mirror entry is reconstructed after
// alignment. The returned candidate matrix is not mutated by
// AlignCandidates, so one candidate set can feed several alignment runs.
func DetectCandidates(g *grid.Grid, store *fasta.DistStore, kres *kmer.Result, cfg Config, tm *trace.Timers, res *Result) *spmat.Dist[Seeds] {
	var c *spmat.Dist[Seeds]
	var products int64
	tm.Stage("DetectOverlap", g.Comm, func() {
		ts := make([]spmat.Triple[kmer.Occur], len(kres.Triples))
		for i, t := range kres.Triples {
			ts[i] = spmat.Triple[kmer.Occur]{Row: t.Row, Col: t.Col, Val: t.Val}
		}
		res.A = spmat.NewDist(g, int32(store.N), int32(kres.NumCols), ts, nil)
		at := spmat.Transpose(res.A, nil)
		if cfg.Async {
			c = spmat.SpGEMMAsync(res.A, at, seedSemiring, &products)
		} else {
			c = spmat.SpGEMMCounted(res.A, at, seedSemiring, &products)
		}
		c.Apply(func(r, cc int32, v Seeds) (Seeds, bool) {
			if r == cc {
				return v, false
			}
			if (r+cc)%2 == 0 {
				return v, r < cc
			}
			return v, r > cc
		})
		res.CandidatePairs = c.Nnz()
	})
	tm.AddWork("DetectOverlap", products)
	return c
}

// AlignCandidates is the Alignment stage: one backend extension per
// candidate (x-drop or wavefront, per cfg), classification, containment
// pruning, symmetrization into res.R. The candidates are spread over an
// intra-rank worker pool; each worker owns its aligner, and summing the
// per-worker counters afterwards gives the same total as a serial run
// (every pair is aligned exactly once).
func AlignCandidates(g *grid.Grid, store *fasta.DistStore, c *spmat.Dist[Seeds], cfg Config, tm *trace.Timers, res *Result) {
	pool := par.NewPool(cfg.Threads, func(int) align.Aligner { return cfg.aligner() })
	pool.SetTrace(g.Comm.Lane(), "align")
	tm.Stage("Alignment", g.Comm, func() {
		res.R = alignAndPrune(g, store, c, pool, cfg, res)
	})
	var work int64
	for _, al := range pool.States() {
		work += al.Work()
	}
	tm.AddWork("Alignment", work)
}

// alignAndPrune aligns every surviving candidate (one direction per pair)
// through the worker pool's backends, prunes, removes contained reads, and
// returns the symmetric overlap matrix.
func alignAndPrune(g *grid.Grid, store *fasta.DistStore, c *spmat.Dist[Seeds], pool *par.Pool[align.Aligner], cfg Config, res *Result) *spmat.Dist[bidir.Aln] {
	// diBELLA's sequence exchange: row-range sequences via the row
	// communicator, column-range sequences via the transposed rank.
	rowSeqs, colSeqs := store.RowColSequences(g)

	cls := bidir.Params{MaxOverhang: cfg.MaxOverhang}
	// Parallel phase: align and classify each candidate independently,
	// writing by index so the downstream fold is order-deterministic. The
	// LPT weights are the banded-DP cost proxy seeds × (|u|+|v|), keeping
	// the few longest pairs from serializing one worker.
	ts := c.Local.Ts
	kinds := make([]bidir.Kind, len(ts))
	alns := make([]bidir.Aln, len(ts))
	// align.cells: per-pair DP-cell distribution via the aligner's cumulative
	// work counter (each pair is aligned exactly once, so the histogram's
	// count/sum are schedule- and thread-invariant).
	cells := g.Comm.Metrics().Histogram("align.cells")
	alignOne := func(al align.Aligner, i int) {
		t := ts[i]
		u, v := rowSeqs[t.Row-c.RowLo], colSeqs[t.Col-c.ColLo]
		var w0 int64
		if cells != nil {
			w0 = al.Work()
		}
		a := align.BestOf(al, u, v, int32(cfg.K), t.Val.S[:t.Val.N])
		if cells != nil {
			cells.Observe(al.Work() - w0)
		}
		a.U, a.V = t.Row, t.Col
		// Quality gates first: length and score density.
		alnLen := min32(a.EU-a.BU, a.EV-a.BV)
		if alnLen < cfg.MinOverlap || float64(a.Score) < cfg.MinScoreFrac*float64(alnLen) {
			kinds[i] = bidir.Internal // dropped either way
			return
		}
		_, kinds[i] = bidir.Classify(a, cls)
		alns[i] = a
	}
	if pool.Workers() == 1 {
		// Serial pool: skip the weight pass, LPT would ignore it anyway.
		par.ForEach(pool, len(ts), alignOne)
	} else {
		weights := make([]int64, len(ts))
		for i, t := range ts {
			u, v := rowSeqs[t.Row-c.RowLo], colSeqs[t.Col-c.ColLo]
			weights[i] = int64(t.Val.N) * int64(len(u)+len(v))
		}
		par.ForEachBalanced(pool, weights, alignOne)
	}
	// Serial fold in candidate order: identical upper/contained slices for
	// every pool size.
	var upper []spmat.Triple[bidir.Aln]
	var contained []int32
	for i, t := range ts {
		switch kinds[i] {
		case bidir.Dovetail:
			upper = append(upper, spmat.Triple[bidir.Aln]{Row: t.Row, Col: t.Col, Val: alns[i]})
		case bidir.ContainsV:
			contained = append(contained, t.Col)
		case bidir.ContainedU:
			contained = append(contained, t.Row)
		case bidir.Internal:
			// repeat-induced, low-quality, or gate-filtered: drop
		}
	}
	if reg := g.Comm.Metrics(); reg != nil {
		reg.Counter("align.pairs").Add(int64(len(ts)))
		reg.Counter("align.dovetails").Add(int64(len(upper)))
		reg.Counter("align.contained").Add(int64(len(contained)))
	}
	// Replicate the contained-read set (Prune(R, IsContainedRead())).
	flat, _ := mpi.AllgathervFlat(g.Comm, contained)
	sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
	flat = dedup(flat)
	res.Contained = flat

	rHalf := spmat.NewDist(g, int32(store.N), int32(store.N), upper, nil)
	rHalf.MaskRowsCols(flat)
	res.KeptOverlaps = rHalf.Nnz()
	// Symmetrize: R = half + mirror(half)ᵀ (each pair has exactly one
	// stored direction, so the merge cannot collide).
	rMirror := spmat.Transpose(rHalf, bidir.Aln.Mirror)
	return spmat.Add(rHalf, rMirror, nil)
}

// ToStringGraph classifies every directed overlap into its bidirected edge —
// the value conversion from R to the string matrix domain. Classification
// cannot fail here: containment and internal matches were pruned.
func ToStringGraph(r *spmat.Dist[bidir.Aln], maxOverhang int32) *spmat.Dist[bidir.Edge] {
	p := bidir.Params{MaxOverhang: maxOverhang}
	out := spmat.FromGlobalTriples[bidir.Edge](r.G, r.NR, r.NC, nil, nil)
	ts := make([]spmat.Triple[bidir.Edge], 0, r.Local.Nnz())
	for _, t := range r.Local.Ts {
		e, kind := bidir.Classify(t.Val, p)
		if kind != bidir.Dovetail {
			panic("overlap: non-dovetail alignment survived pruning")
		}
		ts = append(ts, spmat.Triple[bidir.Edge]{Row: t.Row, Col: t.Col, Val: e})
	}
	out.Local = spmat.NewCOO(r.NR, r.NC, ts, nil)
	return out
}

func dedup(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
