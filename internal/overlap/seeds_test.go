package overlap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/align"
)

// randSeeds builds a random seed set through addSeed (so it is canonical).
func randSeeds(rng *rand.Rand) Seeds {
	var s Seeds
	for k := rng.Intn(4); k > 0; k-- {
		s = s.addSeed(align.Seed{
			PU: int32(rng.Intn(50)),
			PV: int32(rng.Intn(50)),
			RC: rng.Intn(2) == 1,
		})
	}
	return s
}

// TestSeedsMergeCommutative: SUMMA accumulates partial products in a stage
// order that depends on the grid, so the semiring Add must be commutative.
func TestSeedsMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSeeds(rng), randSeeds(rng)
		return a.merge(b) == b.merge(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedsMergeAssociative: likewise for associativity.
func TestSeedsMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSeeds(rng), randSeeds(rng), randSeeds(rng)
		return a.merge(b).merge(c) == a.merge(b.merge(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedsMergeIdempotent: merging a set with itself changes nothing.
func TestSeedsMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeeds(rng)
		return a.merge(a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedsKeepSmallest: the canonical set holds the two lexicographically
// smallest distinct seeds ever inserted.
func TestSeedsKeepSmallest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		var all []align.Seed
		var s Seeds
		for k := 0; k < n; k++ {
			sd := align.Seed{PU: int32(rng.Intn(30)), PV: int32(rng.Intn(30)), RC: rng.Intn(2) == 1}
			all = append(all, sd)
			s = s.addSeed(sd)
		}
		// Reference: sort distinct seeds, take two smallest.
		distinct := map[align.Seed]bool{}
		for _, sd := range all {
			distinct[sd] = true
		}
		var best []align.Seed
		for sd := range distinct {
			best = append(best, sd)
		}
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if seedLess(best[j], best[i]) {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		want := int32(2)
		if int32(len(best)) < want {
			want = int32(len(best))
		}
		if s.N != want {
			return false
		}
		for i := int32(0); i < want; i++ {
			if s.S[i] != best[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
