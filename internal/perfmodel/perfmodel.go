// Package perfmodel reproduces the paper's scaling figures (4 and 6) on
// hosts with fewer cores than simulated ranks — the substitution for the
// missing supercomputer (DESIGN.md §2).
//
// The simulated runtime measures, per rank and per stage, (a) wall time,
// (b) abstract work units (alignment DP cells, SpGEMM semiring products,
// k-mer occurrences, routed edges) and (c) bytes/messages sent. Wall time
// on an oversubscribed host says nothing about distributed scaling, but the
// work and traffic counters are exact algorithmic quantities, independent
// of the host. The model predicts the distributed runtime of a stage as
//
//	T(stage, P) = maxWork(P)/rate(stage) + maxBytes(P)/bandwidth + maxMsgs(P)·latency
//
// where rate(stage) is calibrated from a measured single-rank run of the
// same dataset (at P=1 the measured time is pure compute, so the model is
// exact there by construction) and the network constants default to an
// Aries-like interconnect matching the paper's Cori platform (Table 1).
// Intra-rank worker parallelism (the hybrid ranks × threads model, package
// par) enters through Threading: the compute term divides by the stage's
// Amdahl speedup while communication terms stay fixed.
// Nonblocking communication enters through the overlap term: the share of a
// stage's traffic sent through the nonblocking mpi layer hides behind the
// compute term, and only the exposed remainder — max(0, overlappable comm −
// overlappable compute) plus all blocking comm — lands on the critical path
// (see StageTimeT).
// Load imbalance and communication growth — the real drivers of the paper's
// efficiency curves — enter through the max-per-rank counters.
package perfmodel

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/trace"
)

// Network models the interconnect.
type Network struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second per rank
}

// Aries approximates the Cray Aries Dragonfly of Cori (Table 1): ~1.5 µs
// MPI latency, ~8 GB/s injection bandwidth per node shared by ranks.
func Aries() Network { return Network{Latency: 1.5e-6, Bandwidth: 8e9} }

// InfiniBand approximates Summit's fat tree (Table 1): similar latency,
// higher per-node bandwidth but shared across more ranks; the paper notes
// Summit's lower per-core network performance, modeled here as a slower
// effective per-rank bandwidth.
func InfiniBand() Network { return Network{Latency: 2.0e-6, Bandwidth: 5e9} }

// Calibration maps stage name → work units per second (per worker: calibrate
// from a Threads=1 run so the rate means single-thread throughput).
type Calibration map[string]float64

// Threading models intra-rank worker parallelism — the hybrid ranks ×
// threads model. A stage's compute term shrinks by its Amdahl speedup
// 1/((1−f) + f/t), where f is the stage's parallelizable fraction and t the
// worker count; communication terms are unaffected (workers share the
// rank's network ports).
type Threading struct {
	Threads int                // workers per rank (≤ 1 = serial)
	Frac    map[string]float64 // stage → parallelizable fraction in [0,1]
}

// Serial is the single-worker configuration (no intra-rank speedup).
func Serial() Threading { return Threading{Threads: 1} }

// DefaultFrac reflects which loops the worker pool actually drives:
// alignment is embarrassingly parallel across candidate pairs (the residue
// is the sequence exchange and the fold), and k-mer counting parallelizes
// its extraction scan but not the routing/counting protocol. Stages with no
// entry get f = 0.
func DefaultFrac() map[string]float64 {
	return map[string]float64{
		"Alignment": 0.95,
		"CountKmer": 0.60,
	}
}

// WithThreads builds a Threading at t workers with the default fractions.
func WithThreads(t int) Threading { return Threading{Threads: t, Frac: DefaultFrac()} }

// Speedup returns the modeled compute speedup of a stage under th.
func (th Threading) Speedup(stage string) float64 {
	if th.Threads <= 1 {
		return 1
	}
	f := th.Frac[stage]
	if f <= 0 {
		return 1
	}
	if f > 1 {
		f = 1
	}
	return 1 / ((1 - f) + f/float64(th.Threads))
}

// Calibrate derives per-stage compute rates from a baseline run (typically
// P=1, where measured time contains no off-rank communication or core
// contention).
func Calibrate(base *trace.Summary, stages []string) Calibration {
	cal := Calibration{}
	for _, s := range stages {
		e := base.Get(s)
		if e.SumWork > 0 && e.MaxDur > 0 {
			cal[s] = float64(e.SumWork) / e.MaxDur.Seconds()
		}
	}
	return cal
}

// StageTime predicts the distributed wall time of one stage with one worker
// per rank.
func StageTime(sum *trace.Summary, stage string, cal Calibration, net Network) float64 {
	return StageTimeT(sum, stage, cal, net, Serial())
}

// StageTimeT predicts the distributed wall time of one stage when every
// rank runs th.Threads intra-rank workers.
//
// Communication enters through the overlap model: traffic sent through the
// nonblocking layer (the stage's MaxOverlapBytes/MaxOverlapMsgs) hides
// behind the compute term, so only its excess over the compute time is
// charged — exposed = max(0, overlappable comm − overlappable compute) —
// while the blocking remainder is charged in full:
//
//	T = max(compute, overlapComm) + exposedComm
//
// A blocking run has zero overlap counters, reducing T to the additive
// compute + comm form, so sync and async runs of the same program differ
// exactly by the hidden communication.
func StageTimeT(sum *trace.Summary, stage string, cal Calibration, net Network, th Threading) float64 {
	e := sum.Get(stage)
	var t float64
	if rate, ok := cal[stage]; ok && rate > 0 {
		// Work counters are thread-invariant, so dividing the single-worker
		// compute estimate by the Amdahl speedup is well-defined.
		t = float64(e.MaxWork) / rate / th.Speedup(stage)
	} else {
		// No work counter for this stage: fall back to the measured max
		// duration (documented limitation; all five main stages have
		// counters). The measurement already reflects however many workers
		// the run used, so it must NOT be divided by the speedup again.
		t = e.MaxDur.Seconds()
	}
	overlapComm, exposedComm := CommSplit(e, net)
	if overlapComm > t {
		t = overlapComm
	}
	return t + exposedComm
}

// CommSplit returns the stage's modeled communication time split into the
// overlappable share (sent nonblocking; can hide behind compute) and the
// exposed share (blocking; always on the critical path). The two sum to the
// stage's total modeled communication time.
func CommSplit(e trace.SummaryEntry, net Network) (overlap, exposed float64) {
	total := float64(e.MaxBytes)/net.Bandwidth + float64(e.MaxMsgs)*net.Latency
	overlap = float64(e.MaxOverlapBytes)/net.Bandwidth + float64(e.MaxOverlapMsgs)*net.Latency
	if overlap > total {
		overlap = total
	}
	return overlap, total - overlap
}

// Total predicts the end-to-end runtime over the given stages.
func Total(sum *trace.Summary, stages []string, cal Calibration, net Network) float64 {
	return TotalT(sum, stages, cal, net, Serial())
}

// TotalT predicts the end-to-end runtime over the given stages under th.
func TotalT(sum *trace.Summary, stages []string, cal Calibration, net Network, th Threading) float64 {
	var t float64
	for _, s := range stages {
		t += StageTimeT(sum, s, cal, net, th)
	}
	return t
}

// Efficiency computes strong-scaling parallel efficiency between a baseline
// (pBase ranks, tBase seconds) and a larger run: eff = tBase·pBase/(t·p).
func Efficiency(pBase int, tBase float64, p int, t float64) float64 {
	if t <= 0 || p <= 0 {
		return 0
	}
	return tBase * float64(pBase) / (t * float64(p))
}

// ScalingRow is one P-point of a Figure 4/6-style curve.
type ScalingRow struct {
	P          int
	Modeled    float64 // modeled seconds (the headline number)
	Wall       time.Duration
	Efficiency float64
	CommBytes  int64
}

// FormatScaling renders rows as a small table.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %14s %12s %12s\n", "P", "modeled(s)", "wall", "efficiency", "comm(MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14.4f %14s %11.1f%% %12.2f\n",
			r.P, r.Modeled, r.Wall.Round(time.Millisecond), 100*r.Efficiency, float64(r.CommBytes)/1e6)
	}
	return b.String()
}
