package perfmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// summary builds a Summary via a 1-rank MergeMax round-trip.
func summary(t *testing.T, fill func(tm *trace.Timers)) *trace.Summary {
	t.Helper()
	var out *trace.Summary
	err := mpi.Run(1, func(c *mpi.Comm) {
		tm := trace.New()
		fill(tm)
		out = trace.MergeMax(c, tm)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCalibrateAndExactAtBaseline(t *testing.T) {
	base := summary(t, func(tm *trace.Timers) {
		tm.Add("comp", 2*time.Second)
		tm.AddWork("comp", 1000)
	})
	cal := Calibrate(base, []string{"comp"})
	if math.Abs(cal["comp"]-500) > 1e-9 {
		t.Fatalf("rate %f, want 500 units/s", cal["comp"])
	}
	// The model must reproduce the baseline exactly (no comm there).
	if got := StageTime(base, "comp", cal, Aries()); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("baseline stage time %f, want 2.0", got)
	}
}

func TestStageTimeAddsCommTerms(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("s", time.Second)
		tm.AddWork("s", 100)
		tm.AddComm("s", 8e9, 1e6) // 1s of bandwidth + 1.5s of latency on Aries
	})
	cal := Calibration{"s": 100} // 1s of compute
	got := StageTime(sum, "s", cal, Aries())
	want := 1.0 + 1.0 + 1.5
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %f want %f", got, want)
	}
}

func TestStageTimeFallsBackToMeasured(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("nocounter", 3*time.Second)
	})
	got := StageTime(sum, "nocounter", Calibration{}, Aries())
	if math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("fallback %f, want 3.0", got)
	}
}

func TestTotalSumsStages(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("a", time.Second)
		tm.AddWork("a", 10)
		tm.Add("b", time.Second)
		tm.AddWork("b", 20)
	})
	cal := Calibrate(sum, []string{"a", "b"})
	if got := Total(sum, []string{"a", "b"}, cal, Aries()); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("total %f", got)
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: T(4) = T(1)/4 → efficiency 1.
	if e := Efficiency(1, 8.0, 4, 2.0); math.Abs(e-1.0) > 1e-9 {
		t.Fatalf("perfect efficiency %f", e)
	}
	// No scaling: T(4) = T(1) → 25%.
	if e := Efficiency(1, 8.0, 4, 8.0); math.Abs(e-0.25) > 1e-9 {
		t.Fatalf("flat efficiency %f", e)
	}
	if Efficiency(1, 1, 0, 0) != 0 {
		t.Fatal("degenerate efficiency")
	}
}

func TestFormatScaling(t *testing.T) {
	rows := []ScalingRow{{P: 4, Modeled: 1.5, Wall: time.Second, Efficiency: 0.9, CommBytes: 1 << 20}}
	out := FormatScaling(rows)
	if len(out) == 0 || out[0] != ' ' {
		t.Fatalf("format: %q", out)
	}
}

func TestStageTimeOverlapTerm(t *testing.T) {
	// 1s of compute, 2s of overlappable bandwidth, 0.5s of exposed
	// bandwidth: the overlappable share hides behind compute up to the
	// compute time, so T = max(1, 2) + 0.5 = 2.5 — not 1 + 2.5.
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("s", time.Second)
		tm.AddWork("s", 100)
		tm.AddCommOverlap("s", 16e9, 0) // 2s on Aries bandwidth
		tm.AddComm("s", 4e9, 0)         // 0.5s, blocking
	})
	cal := Calibration{"s": 100}
	if got := StageTime(sum, "s", cal, Aries()); math.Abs(got-2.5) > 1e-6 {
		t.Fatalf("comm-bound overlapped stage: got %f want 2.5", got)
	}

	// Compute-bound case: 4s of compute fully hides the 2s of overlappable
	// comm; only the exposed 0.5s adds.
	cal2 := Calibration{"s": 25}
	if got := StageTime(sum, "s", cal2, Aries()); math.Abs(got-4.5) > 1e-6 {
		t.Fatalf("compute-bound overlapped stage: got %f want 4.5", got)
	}

	// The same traffic fully blocking is strictly worse: 4 + 2.5.
	blocking := summary(t, func(tm *trace.Timers) {
		tm.Add("s", time.Second)
		tm.AddWork("s", 100)
		tm.AddComm("s", 20e9, 0)
	})
	if got := StageTime(blocking, "s", cal2, Aries()); math.Abs(got-6.5) > 1e-6 {
		t.Fatalf("blocking stage: got %f want 6.5", got)
	}
}

func TestCommSplitSumsToTotal(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.AddCommOverlap("s", 8e9, 2e6)
		tm.AddComm("s", 8e9, 1e6)
	})
	e := sum.Get("s")
	overlap, exposed := CommSplit(e, Aries())
	total := float64(e.MaxBytes)/Aries().Bandwidth + float64(e.MaxMsgs)*Aries().Latency
	if math.Abs(overlap+exposed-total) > 1e-9 {
		t.Fatalf("overlap %f + exposed %f != total %f", overlap, exposed, total)
	}
	if overlap <= 0 || exposed <= 0 {
		t.Fatalf("split degenerate: overlap %f exposed %f", overlap, exposed)
	}
}
