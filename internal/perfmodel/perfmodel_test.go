package perfmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// summary builds a Summary via a 1-rank MergeMax round-trip.
func summary(t *testing.T, fill func(tm *trace.Timers)) *trace.Summary {
	t.Helper()
	var out *trace.Summary
	err := mpi.Run(1, func(c *mpi.Comm) {
		tm := trace.New()
		fill(tm)
		out = trace.MergeMax(c, tm)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCalibrateAndExactAtBaseline(t *testing.T) {
	base := summary(t, func(tm *trace.Timers) {
		tm.Add("comp", 2*time.Second)
		tm.AddWork("comp", 1000)
	})
	cal := Calibrate(base, []string{"comp"})
	if math.Abs(cal["comp"]-500) > 1e-9 {
		t.Fatalf("rate %f, want 500 units/s", cal["comp"])
	}
	// The model must reproduce the baseline exactly (no comm there).
	if got := StageTime(base, "comp", cal, Aries()); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("baseline stage time %f, want 2.0", got)
	}
}

func TestStageTimeAddsCommTerms(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("s", time.Second)
		tm.AddWork("s", 100)
		tm.AddComm("s", 8e9, 1e6) // 1s of bandwidth + 1.5s of latency on Aries
	})
	cal := Calibration{"s": 100} // 1s of compute
	got := StageTime(sum, "s", cal, Aries())
	want := 1.0 + 1.0 + 1.5
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %f want %f", got, want)
	}
}

func TestStageTimeFallsBackToMeasured(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("nocounter", 3*time.Second)
	})
	got := StageTime(sum, "nocounter", Calibration{}, Aries())
	if math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("fallback %f, want 3.0", got)
	}
}

func TestTotalSumsStages(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("a", time.Second)
		tm.AddWork("a", 10)
		tm.Add("b", time.Second)
		tm.AddWork("b", 20)
	})
	cal := Calibrate(sum, []string{"a", "b"})
	if got := Total(sum, []string{"a", "b"}, cal, Aries()); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("total %f", got)
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: T(4) = T(1)/4 → efficiency 1.
	if e := Efficiency(1, 8.0, 4, 2.0); math.Abs(e-1.0) > 1e-9 {
		t.Fatalf("perfect efficiency %f", e)
	}
	// No scaling: T(4) = T(1) → 25%.
	if e := Efficiency(1, 8.0, 4, 8.0); math.Abs(e-0.25) > 1e-9 {
		t.Fatalf("flat efficiency %f", e)
	}
	if Efficiency(1, 1, 0, 0) != 0 {
		t.Fatal("degenerate efficiency")
	}
}

func TestFormatScaling(t *testing.T) {
	rows := []ScalingRow{{P: 4, Modeled: 1.5, Wall: time.Second, Efficiency: 0.9, CommBytes: 1 << 20}}
	out := FormatScaling(rows)
	if len(out) == 0 || out[0] != ' ' {
		t.Fatalf("format: %q", out)
	}
}
