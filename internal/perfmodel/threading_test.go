package perfmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestThreadingSpeedup(t *testing.T) {
	th := Threading{Threads: 4, Frac: map[string]float64{"Alignment": 1.0, "CountKmer": 0.5}}
	if got := th.Speedup("Alignment"); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("fully parallel stage at 4 threads: speedup %f, want 4", got)
	}
	// Amdahl at f=0.5, t=4: 1/(0.5 + 0.125) = 1.6.
	if got := th.Speedup("CountKmer"); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("half-parallel stage: speedup %f, want 1.6", got)
	}
	if got := th.Speedup("TrReduction"); got != 1 {
		t.Fatalf("stage without a fraction must not speed up, got %f", got)
	}
	if got := Serial().Speedup("Alignment"); got != 1 {
		t.Fatalf("serial threading sped up: %f", got)
	}
	if got := (Threading{Threads: 8, Frac: map[string]float64{"x": 2.0}}).Speedup("x"); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("fraction must clamp to 1: speedup %f, want 8", got)
	}
}

func TestStageTimeTDividesComputeOnly(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("Alignment", time.Second)
		tm.AddWork("Alignment", 100)
		tm.AddComm("Alignment", 8e9, 1e6) // 1s bandwidth + 1.5s latency on Aries
	})
	cal := Calibration{"Alignment": 100} // 1s of compute at one worker
	th := Threading{Threads: 4, Frac: map[string]float64{"Alignment": 1.0}}
	got := StageTimeT(sum, "Alignment", cal, Aries(), th)
	want := 0.25 + 1.0 + 1.5 // compute/4, comm unchanged
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %f want %f", got, want)
	}
	// StageTime must equal the serial special case.
	if s, s1 := StageTime(sum, "Alignment", cal, Aries()), StageTimeT(sum, "Alignment", cal, Aries(), Serial()); s != s1 {
		t.Fatalf("StageTime %f != StageTimeT serial %f", s, s1)
	}
}

func TestTotalTAndDefaults(t *testing.T) {
	sum := summary(t, func(tm *trace.Timers) {
		tm.Add("Alignment", time.Second)
		tm.AddWork("Alignment", 100)
		tm.Add("TrReduction", time.Second)
		tm.AddWork("TrReduction", 100)
	})
	cal := Calibration{"Alignment": 100, "TrReduction": 100}
	th := WithThreads(4)
	got := TotalT(sum, []string{"Alignment", "TrReduction"}, cal, Aries(), th)
	// Alignment shrinks (f=0.95 → speedup 1/(0.05+0.95/4)), TrReduction does not.
	wantAlign := 1.0 / (1 / (0.05 + 0.95/4))
	if math.Abs(got-(wantAlign+1.0)) > 1e-6 {
		t.Fatalf("got %f want %f", got, wantAlign+1.0)
	}
	f := DefaultFrac()
	if f["Alignment"] <= f["CountKmer"] {
		t.Fatal("alignment must be modeled as more parallel than k-mer counting")
	}
}
