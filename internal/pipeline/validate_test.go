package pipeline

import (
	"strings"
	"testing"

	"repro/internal/readsim"
)

// TestValidateReportsAllViolationsWithFieldNames: a single Validate pass
// must surface every bad field, each error naming its field.
func TestValidateReportsAllViolationsWithFieldNames(t *testing.T) {
	o := Options{
		P:            3,         // not a perfect square
		K:            99,        // > kmer.MaxK
		AlignBackend: "quantum", // unknown
		Threads:      -1,
		XDrop:        -5,
		ReliableLow:  -2,
		MinOverlap:   -1,
		MinScoreFrac: -0.5,
		MaxOverhang:  -3,
		TRFuzz:       -150,
		TRMaxIter:    -1,
	}
	err := o.Validate()
	if err == nil {
		t.Fatal("invalid options validated clean")
	}
	msg := err.Error()
	for _, field := range []string{"Options.P", "Options.K", "Options.AlignBackend", "Options.Threads",
		"Options.XDrop", "Options.ReliableLow", "Options.MinOverlap", "Options.MinScoreFrac",
		"Options.MaxOverhang", "Options.TRFuzz", "Options.TRMaxIter"} {
		if !strings.Contains(msg, field) {
			t.Errorf("error does not name %s:\n%s", field, msg)
		}
	}
}

func TestValidateAcceptsDefaultsAndPresets(t *testing.T) {
	for _, p := range []int{1, 4, 16, 64} {
		if err := DefaultOptions(p).Validate(); err != nil {
			t.Errorf("DefaultOptions(%d): %v", p, err)
		}
	}
	for _, preset := range []readsim.Preset{readsim.CElegansLike, readsim.OSativaLike, readsim.HSapiensLike} {
		if err := PresetOptions(preset, 4).Validate(); err != nil {
			t.Errorf("PresetOptions(%v): %v", preset, err)
		}
	}
	o := DefaultOptions(4)
	o.AlignBackend = BackendWFA
	if err := o.Validate(); err != nil {
		t.Errorf("wfa backend: %v", err)
	}
}

func TestValidateReliableRange(t *testing.T) {
	o := DefaultOptions(4)
	o.ReliableLow, o.ReliableHigh = 10, 5
	if err := o.Validate(); err == nil || !strings.Contains(err.Error(), "ReliableHigh") {
		t.Fatalf("inverted reliable range not reported: %v", err)
	}
}

// TestRunValidatesUpfront: Run must fail before any rank starts, with every
// violation in one error (previously only the P check was upfront; a bad K
// surfaced as a rank panic deep in kmer).
func TestRunValidatesUpfront(t *testing.T) {
	opt := DefaultOptions(3)
	opt.K = 99
	_, err := Run(nil, opt)
	if err == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(err.Error(), "Options.P") || !strings.Contains(err.Error(), "Options.K") {
		t.Fatalf("want both P and K reported, got: %v", err)
	}
}
