package pipeline

// Distributed-run suite: each "process" of a multi-host job is simulated by
// its own engine over a world holding exactly one tcp endpoint, joined
// through a shared rendezvous — the in-test replica of cmd/elba -join
// workers, with distinct loopback interfaces standing in for machines.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/mpi/transport/tcp"
)

// startTestRendezvous serves a p-rank bootstrap on loopback and returns its
// address; the cleanup asserts the server wired all ranks.
func startTestRendezvous(t *testing.T, p int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tcp.ServeRendezvous(ln, p) }()
	t.Cleanup(func() {
		if err := <-done; err != nil {
			t.Errorf("rendezvous: %v", err)
		}
	})
	return ln.Addr().String()
}

// joinOptions configures base as rank r of a distributed job whose world
// holds a single endpoint joined at rdv, listening on host. The endpoint is
// stored through ep (when non-nil) for fault injection.
func joinOptions(base Options, rdv, host string, rank int, ep **tcp.Endpoint) Options {
	opt := base
	opt.Transport = TransportTCP
	opt.NewWorld = func(p int) (*mpi.World, error) {
		e, err := tcp.Join(rdv, rank, p, tcp.JoinConfig{Listen: net.JoinHostPort(host, "0")})
		if err != nil {
			return nil, err
		}
		if ep != nil {
			*ep = e
		}
		return mpi.NewWorldTransport(e), nil
	}
	return opt
}

// waitGoroutines waits for the process goroutine count to return to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedTwoHostEquivalence is the cross-transport invariant over a
// simulated two-host deployment: a P=4 assembly split across two process
// groups (ranks 0,1 on 127.0.0.1; ranks 2,3 on 127.0.0.2, each rank its own
// engine and endpoint) must produce bit-identical contigs and equal
// byte/message counters to the in-process reference, with outputs living
// only at rank 0 — no shared state between the "processes" beyond sockets.
func TestDistributedTwoHostEquivalence(t *testing.T) {
	if ln, err := net.Listen("tcp", "127.0.0.2:0"); err != nil {
		t.Skipf("second loopback interface unavailable: %v", err)
	} else {
		ln.Close()
	}
	reads := testReads(8000, 619)
	const p = 4
	base := DefaultOptions(p)
	base.K = 21
	base.XDrop = 25

	inproc, err := Run(reads, base)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}

	goroutines := runtime.NumGoroutine()
	rdv := startTestRendezvous(t, p)
	hosts := []string{"127.0.0.1", "127.0.0.1", "127.0.0.2", "127.0.0.2"}
	outs := make([]*Output, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = Run(reads, joinOptions(base, rdv, hosts[r], r, nil))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSameRun(t, inproc, outs[0], "two-host rank 0 vs inproc")
	for r := 1; r < p; r++ {
		// Contigs are gathered at rank 0 only; the job-wide traffic totals
		// are allreduced on the control plane, so every process agrees.
		if len(outs[r].Contigs) != 0 {
			t.Errorf("rank %d holds %d contigs; gathering should leave them at rank 0 only", r, len(outs[r].Contigs))
		}
		if outs[r].Stats.CommBytes != inproc.Stats.CommBytes || outs[r].Stats.CommMsgs != inproc.Stats.CommMsgs {
			t.Errorf("rank %d counters (%d B, %d msgs) disagree with inproc (%d B, %d msgs)",
				r, outs[r].Stats.CommBytes, outs[r].Stats.CommMsgs, inproc.Stats.CommBytes, inproc.Stats.CommMsgs)
		}
	}
	waitGoroutines(t, goroutines)
}

// TestDistributedRankFailure kills rank 2 at the start of Alignment in a
// 4-process distributed job and requires:
//
//   - every surviving process aborts promptly with an error naming the dead
//     rank, the failed stage, and the restart point (the last snapshotted
//     stage), still errors.As-unwrappable to *transport.RankFailure;
//   - the Options.OnFailure handler fires exactly once with the cause;
//   - the pre-failure artifacts are poisoned (dead world, resume refused);
//   - every rank goroutine and socket reader unwinds — no leaks.
func TestDistributedRankFailure(t *testing.T) {
	reads := testReads(8000, 631)
	const p = 4
	base := DefaultOptions(p)
	base.K = 21
	base.XDrop = 25

	goroutines := runtime.NumGoroutine()
	rdv := startTestRendezvous(t, p)
	var failures atomic.Int32
	failCause := make(chan error, 1)
	// The simulated processes share this test's address space, so the kill
	// can be synchronized deterministically: every engine signals when it
	// reaches Alignment's StageStart (i.e. has fully left DetectOverlap's
	// cross-process barrier), and rank 2 dies only once all four have — the
	// failure then lands in stage bodies, never in the engine's own
	// control-plane exchange.
	var atAlignment sync.WaitGroup
	atAlignment.Add(p)

	type result struct {
		resumeErr error // error of the killed resume
		deadErr   error // error of resuming the poisoned snapshot again
	}
	results := make([]result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				var ep *tcp.Endpoint
				opt := joinOptions(base, rdv, "127.0.0.1", r, &ep)
				if r == 0 {
					opt.OnFailure = func(err error) {
						failures.Add(1)
						select {
						case failCause <- err:
						default:
						}
					}
				}
				eng, err := Plan(opt)
				if err != nil {
					return err
				}
				arts, err := eng.RunUntil(context.Background(), reads, StageDetectOverlap)
				if err != nil {
					return fmt.Errorf("run until DetectOverlap: %w", err)
				}
				defer arts.Close()
				// Rank 2 dies as Alignment starts: cancelling its world aborts
				// its endpoint, which is how a killed worker process appears to
				// its peers (the observer runs on the engine goroutine, before
				// the stage body executes anywhere locally).
				obs := Observer{StageStart: func(stage string, _, _ int) {
					if stage != StageAlignment {
						return
					}
					atAlignment.Done()
					if r == 2 {
						atAlignment.Wait()
						arts.World.Cancel(errors.New("injected fault: rank 2 killed"))
					}
				}}
				killed, err := Plan(opt, obs)
				if err != nil {
					return err
				}
				_, resumeErr := killed.ResumeFrom(context.Background(), arts, StageExtractContig)
				if resumeErr == nil {
					return errors.New("resume survived the death of rank 2")
				}
				if arts.World.Err() == nil {
					return errors.New("world not poisoned after rank failure")
				}
				_, deadErr := eng.ResumeFrom(context.Background(), arts, StageExtractContig)
				if deadErr == nil {
					return errors.New("poisoned artifacts accepted a resume")
				}
				results[r] = result{resumeErr: resumeErr, deadErr: deadErr}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, r := range []int{0, 1, 3} {
		err := results[r].resumeErr
		var rf *transport.RankFailure
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: abort is not rank-attributed: %v", r, err)
		}
		if rf.Rank != 2 {
			t.Fatalf("rank %d: abort names rank %d, want 2: %v", r, rf.Rank, err)
		}
		for _, want := range []string{"loss of rank 2", `stage "Alignment"`, StageDetectOverlap} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("rank %d: abort error lacks %q: %v", r, want, err)
			}
		}
		if !strings.Contains(results[r].deadErr.Error(), "dead") {
			t.Errorf("rank %d: poisoned-resume error does not say the artifacts are dead: %v", r, results[r].deadErr)
		}
	}
	if !strings.Contains(results[2].resumeErr.Error(), "injected fault") {
		t.Errorf("rank 2's own error lost the injected cause: %v", results[2].resumeErr)
	}
	if n := failures.Load(); n != 1 {
		t.Fatalf("OnFailure fired %d times on rank 0, want exactly once", n)
	}
	var rf *transport.RankFailure
	if cause := <-failCause; !errors.As(cause, &rf) || rf.Rank != 2 {
		t.Errorf("OnFailure cause does not name rank 2: %v", cause)
	}
	waitGoroutines(t, goroutines)
}
