package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/readsim"
)

// TestLargeGridSmoke runs the pipeline at P=64 (8×8 grid) on a small
// dataset: many more ranks than contigs, deep sub-communicator nesting, and
// the n < P idle-rank path of §4.3 all at once. Output must match P=1.
func TestLargeGridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank world in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 12000, Seed: 401})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 1500, Seed: 402}))
	opt := DefaultOptions(1)
	opt.K = 21
	opt.XDrop = 25
	ref, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.P = 64
	got, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contigs) != len(ref.Contigs) {
		t.Fatalf("P=64: %d contigs vs %d at P=1", len(got.Contigs), len(ref.Contigs))
	}
	for i := range ref.Contigs {
		if !bytes.Equal(ref.Contigs[i].Seq, got.Contigs[i].Seq) {
			t.Fatalf("P=64 contig %d differs", i)
		}
	}
}
