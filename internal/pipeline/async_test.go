package pipeline

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/readsim"
	"repro/internal/trace"
)

// runPair assembles the same reads with blocking and nonblocking
// communication and returns both outputs.
func runPair(t *testing.T, reads [][]byte, opt Options) (syncOut, asyncOut *Output) {
	t.Helper()
	opt.Async = false
	syncOut, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Async = true
	asyncOut, err = Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	return syncOut, asyncOut
}

// assertSameContigs fails unless the two outputs carry byte-identical
// contig sets.
func assertSameContigs(t *testing.T, a, b *Output, label string) {
	t.Helper()
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("%s: contig count differs: %d vs %d", label, len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i].Seq, b.Contigs[i].Seq) {
			t.Fatalf("%s: contig %d differs", label, i)
		}
	}
}

// assertOverlapInvariants checks the counter contract on an async run
// against its sync twin: per stage, overlap+exposed == total, the sync run
// has zero overlap, and total traffic is identical between modes.
func assertOverlapInvariants(t *testing.T, syncOut, asyncOut *Output, label string) {
	t.Helper()
	if syncOut.Stats.CommBytes != asyncOut.Stats.CommBytes {
		t.Fatalf("%s: total bytes differ: sync %d, async %d", label, syncOut.Stats.CommBytes, asyncOut.Stats.CommBytes)
	}
	if syncOut.Stats.CommMsgs != asyncOut.Stats.CommMsgs {
		t.Fatalf("%s: total messages differ: sync %d, async %d", label, syncOut.Stats.CommMsgs, asyncOut.Stats.CommMsgs)
	}
	var sawOverlap bool
	for _, tm := range []*trace.Summary{syncOut.Stats.Timers, asyncOut.Stats.Timers} {
		isAsync := tm == asyncOut.Stats.Timers
		for _, s := range tm.Names() {
			e := tm.Get(s)
			if e.SumOverlapBytes < 0 || e.SumExposedBytes() < 0 {
				t.Fatalf("%s: stage %s negative counter: overlap %d, exposed %d",
					label, s, e.SumOverlapBytes, e.SumExposedBytes())
			}
			if e.SumOverlapBytes+e.SumExposedBytes() != e.SumBytes {
				t.Fatalf("%s: stage %s overlap+exposed != total: %d+%d != %d",
					label, s, e.SumOverlapBytes, e.SumExposedBytes(), e.SumBytes)
			}
			if e.MaxOverlapBytes > e.MaxBytes {
				t.Fatalf("%s: stage %s max overlap %d exceeds max bytes %d",
					label, s, e.MaxOverlapBytes, e.MaxBytes)
			}
			if !isAsync && e.SumOverlapBytes != 0 {
				t.Fatalf("%s: blocking run reports %d overlap bytes in %s", label, e.SumOverlapBytes, s)
			}
			if isAsync && e.SumOverlapBytes > 0 {
				sawOverlap = true
			}
		}
	}
	if !sawOverlap && asyncOut.Stats.P > 1 {
		t.Fatalf("%s: nonblocking run recorded no overlappable traffic", label)
	}
}

// TestAsyncSyncEquivalence is the acceptance gate of the nonblocking layer:
// for every tested (P, threads, backend) combination the contigs must be
// bit-identical between blocking and nonblocking modes, total traffic must
// match, and comm_overlap + comm_exposed == comm_total must hold per stage.
func TestAsyncSyncEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline matrix in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 24000, Seed: 501})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1600, Seed: 502}))

	cases := []struct {
		p, threads int
		backend    string
	}{
		{1, 1, BackendXDrop},
		{4, 1, BackendXDrop},
		{4, 2, BackendXDrop},
		{9, 1, BackendXDrop},
		{4, 1, BackendWFA},
		{4, 2, BackendWFA},
	}
	var ref *Output
	for _, tc := range cases {
		opt := DefaultOptions(tc.p)
		opt.K = 21
		opt.XDrop = 25
		opt.Threads = tc.threads
		opt.AlignBackend = tc.backend
		label := tc.backend + "/P=" + strconv.Itoa(tc.p) + "/T=" + strconv.Itoa(tc.threads)
		syncOut, asyncOut := runPair(t, reads, opt)
		assertSameContigs(t, syncOut, asyncOut, label)
		assertOverlapInvariants(t, syncOut, asyncOut, label)
		// The nonblocking schedule must also not change contigs across P or
		// threads within one backend.
		if tc.backend == BackendXDrop {
			if ref == nil {
				ref = asyncOut
			} else {
				assertSameContigs(t, ref, asyncOut, label+" vs P=1")
			}
		}
	}
}

// TestAsyncPackedSeqComm drives the chunked nonblocking sequence exchange
// (packed and raw protocols) through the full pipeline.
func TestAsyncPackedSeqComm(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 503})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 1500, Seed: 504}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	opt.PackSeqComm = true
	syncOut, asyncOut := runPair(t, reads, opt)
	assertSameContigs(t, syncOut, asyncOut, "packed")
	assertOverlapInvariants(t, syncOut, asyncOut, "packed")
}
