package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestObserverOrderingUnderCancellation extends TestCancellationMidAlignment
// to the observer contract on the failure path: a run cancelled mid-stage
// emits EventRunStart first and EventRunEnd (with the cancellation error)
// last, the cancelled stage gets its StageStart but never a StageEnd, no
// callback of any kind fires after RunUntil returns, and the rank goroutines
// still unwind completely.
func TestObserverOrderingUnderCancellation(t *testing.T) {
	reads := testReads(15000, 611)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var returned atomic.Bool
	var log []string // callbacks run on the calling goroutine; no mutex needed
	var lateCalls atomic.Int64
	record := func(entry string) {
		if returned.Load() {
			lateCalls.Add(1)
			return
		}
		log = append(log, entry)
	}
	ob := Observer{
		StageStart: func(stage string, _, _ int) {
			record("start:" + stage)
			if stage == StageAlignment {
				cancel()
			}
		},
		StageEnd: func(stage string, _ *trace.Summary, _ time.Duration) {
			record("end:" + stage)
		},
		Event: func(ev EngineEvent) {
			switch ev.Kind {
			case EventRunStart:
				record("run-start")
			case EventRunEnd:
				record(fmt.Sprintf("run-end:%v", ev.Err))
			}
		},
	}
	eng, err := Plan(opt, ob)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(ctx, reads, StageExtractContig)
	returned.Store(true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if arts != nil {
		t.Fatal("cancelled run returned artifacts")
	}

	if len(log) == 0 || log[0] != "run-start" {
		t.Fatalf("first callback %v, want run-start (log: %v)", log[:1], log)
	}
	last := log[len(log)-1]
	if last != "run-end:"+context.Canceled.Error() {
		t.Fatalf("last callback %q, want run-end with context.Canceled (log: %v)", last, log)
	}
	seen := map[string]bool{}
	for _, e := range log {
		seen[e] = true
	}
	if !seen["start:"+StageAlignment] {
		t.Fatalf("cancelled stage got no StageStart: %v", log)
	}
	if seen["end:"+StageAlignment] {
		t.Fatalf("cancelled stage got a StageEnd: %v", log)
	}
	// Stages before the cancellation point completed normally.
	if !seen["start:"+StageCountKmer] || !seen["end:"+StageCountKmer] {
		t.Fatalf("pre-cancellation stage callbacks missing: %v", log)
	}
	if n := lateCalls.Load(); n != 0 {
		t.Fatalf("%d observer callbacks fired after RunUntil returned", n)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("rank goroutines leaked after cancellation: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTracingEquivalence is the zero-interference gate: a run with tracing
// and metrics attached must produce bit-identical contigs and identical
// byte/message counters to the bare run, across (P, threads, backend,
// sync/async) — observability is read-only. The traced run must actually
// have traced (non-empty lanes, the expected metric families present, the
// msg-size histogram's count/sum equal to the traffic counters) and its
// manifest must satisfy every internal invariant.
func TestTracingEquivalence(t *testing.T) {
	reads := testReads(15000, 613)
	cases := []struct {
		p, threads int
		backend    string
		async      bool
	}{
		{1, 1, BackendXDrop, false},
		{4, 1, BackendXDrop, true},
		{4, 2, BackendWFA, true},
		{9, 1, BackendXDrop, false},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		label := fmt.Sprintf("%s/P=%d/T=%d/async=%v", tc.backend, tc.p, tc.threads, tc.async)
		opt := DefaultOptions(tc.p)
		opt.K = 21
		opt.XDrop = 25
		opt.Threads = tc.threads
		opt.AlignBackend = tc.backend
		opt.Async = tc.async

		bare, err := Run(reads, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		tr := obs.NewTrace(tc.p)
		ms := obs.NewMetricSet(tc.p)
		opt.Trace = tr
		opt.Metrics = ms
		traced, err := Run(reads, opt)
		if err != nil {
			t.Fatalf("%s traced: %v", label, err)
		}

		if len(traced.Contigs) != len(bare.Contigs) {
			t.Fatalf("%s: %d contigs traced vs %d bare", label, len(traced.Contigs), len(bare.Contigs))
		}
		for i := range bare.Contigs {
			if !bytes.Equal(traced.Contigs[i].Seq, bare.Contigs[i].Seq) {
				t.Fatalf("%s: contig %d differs with tracing on", label, i)
			}
		}
		if traced.Stats.CommBytes != bare.Stats.CommBytes || traced.Stats.CommMsgs != bare.Stats.CommMsgs {
			t.Fatalf("%s: traffic differs with tracing on: %d/%d bytes, %d/%d msgs",
				label, traced.Stats.CommBytes, bare.Stats.CommBytes,
				traced.Stats.CommMsgs, bare.Stats.CommMsgs)
		}

		// The trace is real: every rank recorded its six stage spans.
		for r := 0; r < tc.p; r++ {
			var stageSpans int
			for _, e := range tr.Rank(r).Events() {
				if e.Cat == "stage" {
					stageSpans++
				}
			}
			if stageSpans != len(StageNames()) {
				t.Fatalf("%s: rank %d recorded %d stage spans, want %d", label, r, stageSpans, len(StageNames()))
			}
		}
		merged := ms.Merged()
		byName := map[string]obs.Metric{}
		for _, m := range merged {
			byName[m.Name] = m
		}
		for _, name := range []string{"align.cells", "align.pairs", "kmer.occurrences", "kmer.reliable", "pipeline.reads_local"} {
			if _, ok := byName[name]; !ok {
				t.Fatalf("%s: metric %s missing from merged snapshot (have %d metrics)", label, name, len(merged))
			}
		}
		// The mpi msg-size histogram and the traffic counters are two
		// observers of the same sends; they must agree exactly.
		if tc.p > 1 {
			h, ok := byName["mpi.msg_bytes"]
			if !ok {
				t.Fatalf("%s: mpi.msg_bytes missing", label)
			}
			if h.Count != traced.Stats.CommMsgs || h.Sum != traced.Stats.CommBytes {
				t.Fatalf("%s: msg histogram count/sum %d/%d vs traffic counters %d/%d",
					label, h.Count, h.Sum, traced.Stats.CommMsgs, traced.Stats.CommBytes)
			}
		}

		man := traced.Manifest(opt)
		if bad := man.Verify(); len(bad) > 0 {
			t.Fatalf("%s: manifest invariants violated: %v", label, bad)
		}
		if man.Contigs.Checksum != bareChecksum(bare) {
			t.Fatalf("%s: manifest checksum differs from the bare run's contigs", label)
		}
	}
}

func bareChecksum(out *Output) string {
	seqs := make([][]byte, len(out.Contigs))
	for i, c := range out.Contigs {
		seqs[i] = c.Seq
	}
	return obs.ChecksumSeqs(seqs)
}
