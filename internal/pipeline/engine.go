package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
	"repro/internal/trace"
)

// EngineEventKind classifies Observer.Event callbacks.
type EngineEventKind int

const (
	// EventRunStart fires once per RunUntil/ResumeFrom call, before any
	// stage executes. Stage names the first pending stage ("" when the call
	// has nothing left to run).
	EventRunStart EngineEventKind = iota
	// EventRunEnd fires once per call, after the last stage's barrier (or
	// the failure). Stage names the last completed stage; Err carries the
	// run's error (nil on success, ctx.Err() on cancellation). A cancelled
	// run sees its cancelled stage's StageStart with no matching StageEnd,
	// then EventRunEnd — no callbacks follow it.
	EventRunEnd
)

// EngineEvent is one run-lifecycle notification.
type EngineEvent struct {
	Kind  EngineEventKind
	Stage string
	Err   error
}

// Observer receives engine progress callbacks. Fields may be nil. Callbacks
// run on the engine's calling goroutine between stage executions — never on
// a rank goroutine — so they may cancel the run's context, read the
// artifacts, or feed the Summary straight into perfmodel without locking.
type Observer struct {
	// StageStart fires before stage index (of total) begins executing.
	StageStart func(stage string, index, total int)
	// StageEnd fires after a stage's barrier with the wall time of the stage
	// and the cross-rank aggregate of all per-rank timers so far (the
	// finished stage's entry sits under its own name; aggregation is local,
	// so observing never perturbs the run's traffic counters).
	StageEnd func(stage string, ranks *trace.Summary, wall time.Duration)
	// Event fires at run-lifecycle boundaries (EventRunStart before the
	// first StageStart, EventRunEnd after the last StageEnd or the failure).
	Event func(EngineEvent)
}

// Engine runs the pipeline's stage graph. Plan validates the options once;
// RunUntil executes a prefix of the graph on a fresh simulated world and
// ResumeFrom continues from a previous run's Artifacts — under this engine's
// options, which may differ in parameters downstream of the resume point
// (the TR/overhang sweep use case). Contigs are bit-identical, and
// byte/message counters equal, between a monolithic run and any chain of
// partial runs, for every (P, threads, backend, sync/async) combination.
type Engine struct {
	opt    Options
	stages []Stage
	obs    []Observer
}

// Plan validates opt (reporting all violations at once) and builds an
// engine over the paper's stage graph.
func Plan(opt Options, obs ...Observer) (*Engine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Engine{opt: opt, stages: defaultStages(), obs: obs}, nil
}

// Options returns the engine's validated options.
func (e *Engine) Options() Options { return e.opt }

// emit delivers a lifecycle event to every observer that registered for it.
func (e *Engine) emit(ev EngineEvent) {
	for _, ob := range e.obs {
		if ob.Event != nil {
			ob.Event(ev)
		}
	}
}

// Stages lists the engine's stage names in execution order.
func (e *Engine) Stages() []string {
	names := make([]string, len(e.stages))
	for i, s := range e.stages {
		names[i] = s.Name()
	}
	return names
}

// stageIndex resolves a stage name to its graph position.
func (e *Engine) stageIndex(name string) (int, error) {
	for i, s := range e.stages {
		if s.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown stage %q (stages: %s)", name, strings.Join(e.Stages(), " → "))
}

// Run assembles reads end to end: the whole graph on a fresh world. The
// world is closed before returning (the artifacts are not exposed, so there
// is nothing to resume) — for the socket-backed transports this is the
// polite connection drain; for inproc it is a no-op.
func (e *Engine) Run(ctx context.Context, reads [][]byte) (*Output, error) {
	a, err := e.RunUntil(ctx, reads, StageExtractContig)
	if err != nil {
		return nil, err
	}
	defer a.Close()
	return a.Output()
}

// RunUntil executes the graph on a fresh simulated world of e.Options().P
// ranks, stopping after stage `until` completes, and returns the Artifacts
// snapshot. If ctx is cancelled mid-stage the world is cancelled, every rank
// goroutine unwinds promptly, and RunUntil returns ctx.Err(); the artifacts
// are then dead (their world is poisoned).
func (e *Engine) RunUntil(ctx context.Context, reads [][]byte, until string) (*Artifacts, error) {
	idx, err := e.stageIndex(until)
	if err != nil {
		return nil, err
	}
	a, err := newArtifacts(e.opt, reads)
	if err != nil {
		return nil, err
	}
	return e.resume(ctx, a, idx)
}

// ResumeFrom continues the graph from the last stage recorded in a, running
// the remaining stages up to and including `until` under this engine's
// options. The given artifacts are forked, not modified: one snapshot can
// seed any number of resumed chains (a parameter sweep re-runs only the
// stages downstream of the snapshot). The engine's options must agree with
// the snapshot's on everything upstream of the resume point — P is checked
// (the world's shape is baked into the artifacts); upstream algorithmic
// parameters (K, alignment settings, …) are the caller's responsibility.
func (e *Engine) ResumeFrom(ctx context.Context, a *Artifacts, until string) (*Artifacts, error) {
	idx, err := e.stageIndex(until)
	if err != nil {
		return nil, err
	}
	if e.opt.P != len(a.Ranks) {
		return nil, fmt.Errorf("pipeline: engine P=%d cannot resume artifacts of a %d-rank world", e.opt.P, len(a.Ranks))
	}
	if err := a.World.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: artifacts are dead (world cancelled: %w)", err)
	}
	if idx < len(a.done) {
		return nil, fmt.Errorf("pipeline: stage %q already complete in these artifacts (resume point: after %q)", until, a.Stage())
	}
	return e.resume(ctx, a.fork(e.opt), idx)
}

// resume drives stages len(a.done)..untilIdx on a's world, one engine-level
// barrier per stage. Stage bodies reuse the communicators stored in the
// RankStates, so the op (and therefore traffic) sequence is identical to a
// monolithic run; the per-stage world.Run only adds a goroutine join.
func (e *Engine) resume(ctx context.Context, a *Artifacts, untilIdx int) (out *Artifacts, err error) {
	a.exec.Lock()
	defer a.exec.Unlock()
	first := ""
	if len(a.done) <= untilIdx {
		first = e.stages[len(a.done)].Name()
	}
	e.emit(EngineEvent{Kind: EventRunStart, Stage: first})
	defer func() {
		e.emit(EngineEvent{Kind: EventRunEnd, Stage: a.Stage(), Err: err})
	}()
	total := len(e.stages)
	for i := len(a.done); i <= untilIdx; i++ {
		st := e.stages[i]
		for _, dep := range st.Deps() {
			if !slices.Contains(a.done, dep) {
				return nil, fmt.Errorf("pipeline: stage %q needs %q, which the artifacts have not run", st.Name(), dep)
			}
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				a.World.Cancel(err)
				return nil, err
			}
		}
		for _, ob := range e.obs {
			if ob.StageStart != nil {
				ob.StageStart(st.Name(), i, total)
			}
		}
		b0, m0 := a.World.TotalBytes(), a.World.TotalMsgs()
		dist := a.World.Distributed()
		var distBytes, distMsgs atomic.Int64
		start := time.Now()
		stageIdx := i
		runErr := a.World.RunCtx(ctx, func(c *mpi.Comm) {
			rank := c.Rank()
			// Deterministic fault injection (chaos tests and the nightly CI
			// job): one atomic load when nothing is armed.
			faultinject.At(st.Name(), rank)
			var rb0, rm0 int64
			if dist {
				rb0, rm0 = c.BytesSent(), c.MsgsSent()
			}
			lane := c.Lane()
			spanStart := lane.Start()
			// pprof labels let CPU profiles slice samples by stage and rank
			// (`go tool pprof -tagfocus stage=Alignment`).
			pprof.Do(context.Background(),
				pprof.Labels("stage", st.Name(), "rank", strconv.Itoa(rank)),
				func(context.Context) { st.Run(e.opt, a, rank) })
			lane.Span(0, "stage", st.Name(), spanStart, obs.Arg{K: "index", V: int64(stageIdx)})
			if dist {
				// Sum this stage's traffic across all processes on the
				// uncounted control plane (a rank's deltas are final here:
				// every request is waited inside the stage body). The
				// allreduce doubles as the cross-process stage barrier.
				d := mpi.AllreduceSlice(a.ctl[rank],
					[]int64{c.BytesSent() - rb0, c.MsgsSent() - rm0},
					func(x, y int64) int64 { return x + y })
				distBytes.Store(d[0])
				distMsgs.Store(d[1])
				if st.Name() == StageExtractContig {
					// Each process populated only its own rank's metrics;
					// stream every snapshot to rank 0 on the control plane so
					// the -metrics file and the manifest cover the whole
					// world with no shared-filesystem assumption. The gather
					// runs whether or not this process collects metrics: in a
					// -join job every process has its own command line, and a
					// sequence conditional on a local flag would deadlock the
					// world the moment rank 0 asks for a manifest and a
					// worker was launched without.
					streamMetrics(a.ctl[rank], e.opt.Metrics)
				}
			}
		})
		wall := time.Since(start)
		if runErr != nil {
			return nil, e.abortError(st.Name(), a, runErr)
		}
		if dist {
			a.commBytes += distBytes.Load()
			a.commMsgs += distMsgs.Load()
		} else {
			a.commBytes += a.World.TotalBytes() - b0
			a.commMsgs += a.World.TotalMsgs() - m0
		}
		a.wall += wall
		a.done = append(a.done, st.Name())
		if e.checkpointAfter(st.Name()) {
			// Durable resume point: persisted after the stage's accounting
			// lands (so the manifest's totals match the chain's) and before
			// observers see the stage as complete. Checkpoint I/O and the
			// hash gather run outside the stage's traffic window, on the
			// uncounted control plane — totals stay equal to an
			// unobserved run's.
			if cerr := e.writeCheckpoint(ctx, a); cerr != nil {
				return nil, cerr
			}
		}
		for _, ob := range e.obs {
			if ob.StageEnd != nil {
				ob.StageEnd(st.Name(), a.Aggregate(), wall)
			}
		}
	}
	return a, nil
}

// abortError decorates a failed stage execution. A transport-attributed rank
// death (a worker process died, its connection broke, or it aborted) is
// wrapped to name the failed stage, the dead rank, and — when earlier stages
// completed — the per-stage restart point a pre-failure snapshot could
// ResumeFrom on a fresh world. The original chain is preserved, so
// errors.As(err, **transport.RankFailure) still identifies the rank.
func (e *Engine) abortError(stage string, a *Artifacts, err error) error {
	var rf *transport.RankFailure
	if !errors.As(err, &rf) {
		return err
	}
	if restart := a.Stage(); restart != "" {
		return fmt.Errorf("pipeline: stage %q aborted by the loss of rank %d (restart point: a snapshot completed through %q can resume from there): %w",
			stage, rf.Rank, restart, err)
	}
	return fmt.Errorf("pipeline: stage %q aborted by the loss of rank %d (no completed stages; restart the run from scratch): %w",
		stage, rf.Rank, err)
}

// streamMetrics gathers every rank's metric snapshot at rank 0 on the
// uncounted control communicator and imports them into rank 0's MetricSet.
// Snapshots travel JSON-encoded: metric names are strings, which the typed
// wire codec deliberately does not carry, and the control plane is invisible
// to every counter, so the encoding never perturbs what it reports. A
// process without a MetricSet still participates — it contributes an empty
// snapshot and discards the gather — so the collective sequence is identical
// on every process regardless of per-process observability flags.
func streamMetrics(ctl *mpi.Comm, ms *obs.MetricSet) {
	self := ctl.WorldRank(ctl.Rank())
	var buf []byte
	if ms != nil {
		b, err := json.Marshal(ms.Rank(self).Snapshot())
		if err != nil {
			panic(fmt.Sprintf("pipeline: encoding rank %d metrics: %v", self, err))
		}
		buf = b
	}
	parts := mpi.Gatherv(ctl, 0, buf)
	if ctl.Rank() != 0 || ms == nil {
		return
	}
	for r, part := range parts {
		wr := ctl.WorldRank(r)
		if wr == self || len(part) == 0 {
			continue
		}
		var snap []obs.Metric
		if err := json.Unmarshal(part, &snap); err != nil {
			panic(fmt.Sprintf("pipeline: decoding rank %d metrics: %v", wr, err))
		}
		ms.SetSnapshot(wr, snap)
	}
}
