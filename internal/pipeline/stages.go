package pipeline

import (
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/overlap"
	"repro/internal/tr"
	"repro/internal/trace"
)

// Stage names, in graph order. The five compute stages carry the paper's
// Figure 5 breakdown names, so their trace entries line up with MainStages.
const (
	StageFastaReader   = "FastaReader"   // grid + distributed read store
	StageCountKmer     = "CountKmer"     // reliable k-mer selection, A-matrix triples
	StageDetectOverlap = "DetectOverlap" // C = A·Aᵀ candidate pairs
	StageAlignment     = "Alignment"     // per-pair extension, pruning, overlap matrix R
	StageTrReduction   = "TrReduction"   // string graph + bidirected transitive reduction
	StageExtractContig = "ExtractContig" // Algorithm 2 contig generation + gather
)

// StageNames returns the pipeline's stage graph in execution order.
func StageNames() []string {
	return []string{StageFastaReader, StageCountKmer, StageDetectOverlap,
		StageAlignment, StageTrReduction, StageExtractContig}
}

func init() {
	// CG:* timer entries are contig-generation sub-stages nested inside
	// ExtractContig; deterministic breakdowns group them under it.
	trace.RegisterSubStages("CG", StageExtractContig)
}

// Stage is one node of the pipeline graph. Run executes the stage's body on
// one simulated rank: it reads the outputs of the stages named by Deps from
// a.Ranks[rank] and replaces its own output fields there, never mutating an
// input — the property that makes any Artifacts snapshot a reusable resume
// point. The engine provides the barrier between stages; within Run, the
// rank is free to communicate through its stored communicators.
type Stage interface {
	Name() string
	// Deps names the stages whose artifact fields this stage consumes.
	Deps() []string
	Run(opt Options, a *Artifacts, rank int)
}

// defaultStages builds the paper's linear graph: FastaReader → KmerCounter →
// A·Aᵀ → Alignment → TrReduction → ContigGeneration.
func defaultStages() []Stage {
	return []Stage{
		fastaReaderStage{}, countKmerStage{}, detectOverlapStage{},
		alignmentStage{}, trReductionStage{}, extractContigStage{},
	}
}

// overlapCfg derives the overlap-stage config; the backend was validated at
// Plan time, so the factory error cannot fire here.
func overlapCfg(opt Options) overlap.Config {
	newAligner, err := opt.alignerFactory()
	if err != nil {
		panic(err)
	}
	return opt.overlapConfig(newAligner)
}

// fastaReaderStage builds the process grid and the block-distributed read
// store from the input reads (the FastaReader of Algorithm 1).
type fastaReaderStage struct{}

func (fastaReaderStage) Name() string   { return StageFastaReader }
func (fastaReaderStage) Deps() []string { return nil }
func (fastaReaderStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	rs.Grid = grid.New(rs.Comm)
	rs.Store = fasta.FromGlobal(rs.Comm, a.Reads)
	rs.Timers = trace.New()
	rs.Comm.Metrics().Gauge("pipeline.reads_local").Set(int64(rs.Store.Hi - rs.Store.Lo))
}

// countKmerStage runs distributed k-mer counting and reliable selection.
type countKmerStage struct{}

func (countKmerStage) Name() string   { return StageCountKmer }
func (countKmerStage) Deps() []string { return []string{StageFastaReader} }
func (countKmerStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	rs.Overlap = &overlap.Result{NumReads: rs.Store.N}
	rs.Kmers = overlap.CountKmers(rs.Grid, rs.Store, overlapCfg(opt), rs.Timers, rs.Overlap)
}

// detectOverlapStage computes the candidate matrix C = A·Aᵀ.
type detectOverlapStage struct{}

func (detectOverlapStage) Name() string   { return StageDetectOverlap }
func (detectOverlapStage) Deps() []string { return []string{StageCountKmer} }
func (detectOverlapStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	rs.Candidates = overlap.DetectCandidates(rs.Grid, rs.Store, rs.Kmers, overlapCfg(opt), rs.Timers, rs.Overlap)
}

// alignmentStage extends every candidate pair through the configured backend
// and prunes to the symmetric overlap matrix R.
type alignmentStage struct{}

func (alignmentStage) Name() string   { return StageAlignment }
func (alignmentStage) Deps() []string { return []string{StageDetectOverlap} }
func (alignmentStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	overlap.AlignCandidates(rs.Grid, rs.Store, rs.Candidates, overlapCfg(opt), rs.Timers, rs.Overlap)
}

// trReductionStage classifies R into the bidirected string graph and runs
// the transitive reduction. The string graph is derived fresh from R on
// every execution (tr.Reduce reduces in place), which is what lets a
// post-Alignment snapshot feed many TR/overhang parameter points.
type trReductionStage struct{}

func (trReductionStage) Name() string   { return StageTrReduction }
func (trReductionStage) Deps() []string { return []string{StageAlignment} }
func (trReductionStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	s := overlap.ToStringGraph(rs.Overlap.R, opt.MaxOverhang)
	rs.Timers.Stage("TrReduction", rs.Grid.Comm, func() {
		rs.TRStats = tr.Reduce(s, opt.TRFuzz, opt.TRMaxIter, opt.Async)
	})
	rs.Timers.AddWork("TrReduction", rs.TRStats.Products)
	rs.StringGraph = s
}

// extractContigStage runs Algorithm 2 (contig generation), then gathers the
// contigs and cross-rank timer aggregates at rank 0 and stores the run's
// Output into the artifacts — the same op sequence, and therefore the same
// traffic, as the tail of a monolithic run.
type extractContigStage struct{}

func (extractContigStage) Name() string   { return StageExtractContig }
func (extractContigStage) Deps() []string { return []string{StageTrReduction} }
func (extractContigStage) Run(opt Options, a *Artifacts, rank int) {
	rs := a.Ranks[rank]
	var cres *core.Result
	cgTimers := trace.New()
	rs.Timers.Stage("ExtractContig", rs.Grid.Comm, func() {
		cres = core.ContigGeneration(rs.StringGraph, rs.Store, cgTimers, opt.PackSeqComm, opt.Async)
	})
	// ExtractContig's work units: edges routed plus bases assembled.
	rs.Timers.AddWork("ExtractContig",
		cgTimers.Entry("CG:InducedSubgraph").Work+cgTimers.Entry("CG:LocalAssembly").Work)
	// Fold the CG sub-stages into the same timer set under CG:* names
	// (nested inside ExtractContig, so breakdown callers use MainStages
	// as the denominator — see Stats accessors).
	rs.Timers.Merge(cgTimers)
	rs.Contig = cres

	contigs := core.GatherContigs(rs.Grid.Comm, cres.Contigs)
	merged := trace.MergeMax(rs.Grid.Comm, rs.Timers)
	if rank == 0 {
		ores := rs.Overlap
		a.storeOutput(contigs, Stats{
			P:              opt.P,
			Threads:        opt.EffectiveThreads(),
			NumReads:       ores.NumReads,
			NumKmers:       ores.NumKmers,
			CandidatePairs: ores.CandidatePairs,
			KeptOverlaps:   ores.KeptOverlaps,
			ContainedReads: len(ores.Contained),
			TR:             rs.TRStats,
			NumContigs:     cres.NumContigs,
			BranchVertices: cres.BranchVertices,
			AssignedReads:  cres.AssignedReads,
			MaxLoad:        cres.MaxLoad,
			MinLoad:        cres.MinLoad,
			Timers:         merged,
		})
	}
}
