package pipeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bidir"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/kmer"
	"repro/internal/mpi"
	"repro/internal/overlap"
	"repro/internal/spmat"
	"repro/internal/tr"
	"repro/internal/trace"
)

// RankState is one simulated rank's slot of the Artifacts bag. Each field is
// the output of the stage of the same position in the graph; a stage reads
// the fields of its dependencies and replaces (never mutates) its own, which
// is what makes a snapshot safe to resume from any number of times.
type RankState struct {
	Comm   *mpi.Comm        // this rank's world communicator (persistent across stages)
	Grid   *grid.Grid       // FastaReader: √P×√P process grid
	Store  *fasta.DistStore // FastaReader: block-distributed read store
	Timers *trace.Timers    // per-rank stage accounting (forked on resume)

	Kmers       *kmer.Result               // CountKmer: reliable k-mer columns + A-matrix triples
	Candidates  *spmat.Dist[overlap.Seeds] // DetectOverlap: C = A·Aᵀ, one direction per pair
	Overlap     *overlap.Result            // CountKmer…Alignment: accumulating counters, A and R
	StringGraph *spmat.Dist[bidir.Edge]    // TrReduction: reduced bidirected string graph
	TRStats     tr.Stats                   // TrReduction: iteration/edge counters
	Contig      *core.Result               // ExtractContig: this rank's contigs + global stats
}

// Artifacts is the typed bag a (partial) pipeline run produces: the
// simulated world, the per-rank stage outputs, and — once the final stage
// has run — the gathered contigs and statistics. An Artifacts value is a
// resume point: Engine.ResumeFrom continues the graph from the last
// completed stage, under the same or downstream-modified options.
//
// Snapshot semantics: ResumeFrom never modifies the artifacts it is given
// (it forks them), so one post-Alignment snapshot can seed an entire
// TR-parameter sweep without re-running the expensive overlap phase. All
// chains forked from one snapshot share the underlying simulated world;
// their stage executions are serialized internally (communicator sequence
// counters must advance identically on every rank), so forks may be resumed
// from any goroutine, one run at a time. A cancelled world poisons every
// chain sharing it — cancellation is for abandoning a run, not pausing it.
type Artifacts struct {
	Opt   Options    // options of the most recent engine to run stages
	World *mpi.World // the simulated machine (shared by all forks)
	Reads [][]byte   // FastaReader input
	Ranks []*RankState

	done []string // completed stage names, in graph order

	// ctl holds one uncounted control communicator per rank: the engine's
	// cross-process stage accounting runs on it, invisible to the traffic
	// counters the pipeline reports. Shared by forks, like the world.
	ctl []*mpi.Comm

	// Chain-local accounting: deltas of the world's counters summed over
	// this chain's stage executions only, so Output reports the same totals
	// a dedicated monolithic run would even when sibling forks share the
	// world.
	commBytes int64
	commMsgs  int64
	wall      time.Duration

	// exec serializes stage execution across all forks sharing the world.
	exec *sync.Mutex

	// Final-stage output, stored by rank 0 under mu.
	mu      sync.Mutex
	contigs []core.Contig
	stats   Stats
}

// newArtifacts prepares the bag for a fresh run: a new world (built per
// Options.Transport) and one RankState per rank holding its persistent
// communicator.
func newArtifacts(opt Options, reads [][]byte) (*Artifacts, error) {
	w, err := opt.newWorld()
	if err != nil {
		return nil, err
	}
	// Observability attaches to the world before any rank starts; forks share
	// the world and therefore the same trace lanes and metric registries.
	w.SetObs(opt.Trace, opt.Metrics)
	if opt.OnFailure != nil {
		w.OnCancel(opt.OnFailure)
	}
	a := &Artifacts{
		Opt:   opt,
		World: w,
		Reads: reads,
		Ranks: make([]*RankState, opt.P),
		ctl:   make([]*mpi.Comm, opt.P),
		exec:  &sync.Mutex{},
	}
	for r := range a.Ranks {
		a.Ranks[r] = &RankState{Comm: w.Comm(r)}
		a.ctl[r] = w.ControlComm(r)
	}
	return a, nil
}

// Close releases the world's transport endpoints (sockets, for the tcp and
// proc transports; a no-op for inproc). After Close the artifacts — and
// every fork sharing the world — can no longer be resumed. Callers that only
// need the Output of a finished run may skip it for inproc worlds.
func (a *Artifacts) Close() error { return a.World.Close() }

// Stage returns the name of the last completed stage ("" before any).
func (a *Artifacts) Stage() string {
	if len(a.done) == 0 {
		return ""
	}
	return a.done[len(a.done)-1]
}

// Completed lists the completed stage names in graph order.
func (a *Artifacts) Completed() []string { return append([]string(nil), a.done...) }

// Aggregate folds every rank's timers into one cross-rank Summary, locally
// (no simulated communication, so it never perturbs the traffic counters).
// Valid between stage executions; observers receive the same view.
func (a *Artifacts) Aggregate() *trace.Summary {
	ts := make([]*trace.Timers, 0, len(a.Ranks))
	for _, rs := range a.Ranks {
		if rs != nil && rs.Timers != nil {
			ts = append(ts, rs.Timers)
		}
	}
	return trace.Aggregate(ts)
}

// Output returns the assembly result. It is available only once the final
// stage (ExtractContig) has completed; partial artifacts return an error
// naming the stage they stopped at.
func (a *Artifacts) Output() (*Output, error) {
	if a.Stage() != StageExtractContig {
		return nil, fmt.Errorf("pipeline: artifacts stop after stage %q; resume through %q for contigs",
			a.Stage(), StageExtractContig)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := &Output{Contigs: a.contigs, Stats: a.stats}
	out.Stats.CommBytes = a.commBytes
	out.Stats.CommMsgs = a.commMsgs
	out.Stats.WallTime = a.wall
	return out, nil
}

// storeOutput records the final stage's rank-0 view.
func (a *Artifacts) storeOutput(contigs []core.Contig, stats Stats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.contigs = contigs
	a.stats = stats
}

// fork snapshots the bag for an independent continuation: per-rank states
// are copied, timers deep-copied, and the accumulating overlap result
// copied by value, so stages run on the fork never touch the original.
// World, reads and the execution lock are shared.
func (a *Artifacts) fork(opt Options) *Artifacts {
	f := &Artifacts{
		Opt:       opt,
		World:     a.World,
		Reads:     a.Reads,
		Ranks:     make([]*RankState, len(a.Ranks)),
		done:      append([]string(nil), a.done...),
		ctl:       a.ctl,
		commBytes: a.commBytes,
		commMsgs:  a.commMsgs,
		wall:      a.wall,
		exec:      a.exec,
	}
	for i, rs := range a.Ranks {
		cp := *rs
		if rs.Timers != nil {
			cp.Timers = rs.Timers.Clone()
		}
		if rs.Overlap != nil {
			o := *rs.Overlap
			cp.Overlap = &o
		}
		f.Ranks[i] = &cp
	}
	return f
}
