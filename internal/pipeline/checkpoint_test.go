package pipeline

// Durable-checkpoint suite: the on-disk resume path must be exactly as
// invisible as the in-memory one — bit-identical contigs, equal traffic
// counters — across ranks, transports and sync/async, and a damaged
// checkpoint must fail loudly, naming the rank and file, never producing
// output.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkpointedRun runs reads to `until` with checkpointing into dir, then
// finishes the assembly from the durable checkpoint on a completely fresh
// engine and world — the crash-and-restart path without the crash.
func checkpointedRun(t *testing.T, reads [][]byte, opt Options, dir, until string) *Output {
	t.Helper()
	ckOpt := opt
	ckOpt.CheckpointDir = dir
	eng, err := Plan(ckOpt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, until)
	if err != nil {
		t.Fatalf("run until %s: %v", until, err)
	}
	arts.Close()

	fresh, err := Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fresh.LoadCheckpoint(context.Background(), reads, dir)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	defer loaded.Close()
	if got := loaded.Stage(); got != until {
		t.Fatalf("loaded checkpoint resumes after %q, want %q", got, until)
	}
	fin, err := fresh.ResumeFrom(context.Background(), loaded, StageExtractContig)
	if err != nil {
		t.Fatalf("resume from checkpoint: %v", err)
	}
	out, err := fin.Output()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointRoundTripEquivalence is the durable analog of the staged-run
// equivalence gate: RunUntil(stage) → on-disk checkpoint → fresh engine
// LoadCheckpoint → finish must produce bit-identical contigs and equal
// byte/message counters for every (P, transport, sync/async) combination,
// and for every checkpointable resume point.
func TestCheckpointRoundTripEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full checkpoint matrix in -short mode (see TestCheckpointSmoke)")
	}
	reads := testReads(8000, 641)
	for _, p := range []int{1, 4} {
		base := DefaultOptions(p)
		base.K = 21
		base.XDrop = 25
		ref, err := Run(reads, base)
		if err != nil {
			t.Fatalf("P=%d reference: %v", p, err)
		}
		for _, transport := range []string{TransportInproc, TransportTCP} {
			for _, async := range []bool{true, false} {
				opt := base
				opt.Transport = transport
				opt.Async = async
				label := fmt.Sprintf("P=%d %s async=%t", p, transport, async)
				t.Run(label, func(t *testing.T) {
					got := checkpointedRun(t, reads, opt, t.TempDir(), StageAlignment)
					assertSameRun(t, ref, got, label)
				})
			}
		}
	}
}

// TestCheckpointEveryResumePoint walks every checkpointable stage boundary:
// finishing from each must reproduce the reference run exactly.
func TestCheckpointEveryResumePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("per-stage resume matrix in -short mode (see TestCheckpointSmoke)")
	}
	reads := testReads(8000, 643)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	ref, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range StageNames() {
		if stage == StageExtractContig {
			continue
		}
		t.Run(stage, func(t *testing.T) {
			got := checkpointedRun(t, reads, opt, t.TempDir(), stage)
			assertSameRun(t, ref, got, "resume after "+stage)
		})
	}
}

// TestCheckpointSmoke is the -short member of the family: one P=4 inproc
// round trip through a post-CountKmer checkpoint.
func TestCheckpointSmoke(t *testing.T) {
	reads := testReads(5000, 647)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	ref, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := checkpointedRun(t, reads, opt, t.TempDir(), StageCountKmer)
	assertSameRun(t, ref, got, "checkpoint smoke")
}

// TestCheckpointLatestWins checkpoints after every stage of one run and
// requires LoadCheckpoint to pick the most advanced committed stage, while a
// stage dir passed directly selects that stage.
func TestCheckpointLatestWins(t *testing.T) {
	reads := testReads(5000, 653)
	opt := DefaultOptions(1)
	opt.K = 21
	opt.XDrop = 25
	dir := t.TempDir()
	ckOpt := opt
	ckOpt.CheckpointDir = dir
	ckOpt.CheckpointEvery = "all"
	if _, err := Run(reads, ckOpt); err != nil {
		t.Fatal(err)
	}
	stageDir, man, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Stage != StageTrReduction {
		t.Fatalf("latest checkpoint = %+v at %s, want stage %s", man, stageDir, StageTrReduction)
	}
	if want := StageNames()[:5]; len(man.Done) != len(want) {
		t.Fatalf("latest manifest done = %v, want %v", man.Done, want)
	}

	// Operator override: point straight at an earlier stage dir.
	eng, err := Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := eng.LoadCheckpoint(context.Background(), reads, filepath.Join(dir, StageCountKmer))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Stage(); got != StageCountKmer {
		t.Fatalf("stage-dir load resumes after %q, want %q", got, StageCountKmer)
	}
}

// TestCheckpointCorruption damages a committed checkpoint in each of the
// ways a real deployment sees — truncation, bit rot, deletion — and requires
// LoadCheckpoint to fail with an error naming the rank and the file, never
// to hang or produce artifacts.
func TestCheckpointCorruption(t *testing.T) {
	reads := testReads(5000, 659)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	dir := t.TempDir()
	ckOpt := opt
	ckOpt.CheckpointDir = dir
	ckOpt.CheckpointEvery = StageCountKmer
	eng, err := Plan(ckOpt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, StageCountKmer)
	if err != nil {
		t.Fatal(err)
	}
	arts.Close()
	stageDir := filepath.Join(dir, StageCountKmer)
	victim := filepath.Join(stageDir, "rank-2.ckpt")
	pristine, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}

	load := func() error {
		fresh, err := Plan(opt)
		if err != nil {
			t.Fatal(err)
		}
		a, err := fresh.LoadCheckpoint(context.Background(), reads, dir)
		if err == nil {
			a.Close()
		}
		return err
	}
	damage := []struct {
		name  string
		mutie func(t *testing.T)
	}{
		{"truncated", func(t *testing.T) {
			if err := os.WriteFile(victim, pristine[:len(pristine)/2], 0o666); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T) {
			bad := append([]byte(nil), pristine...)
			bad[len(bad)/2] ^= 0x40
			if err := os.WriteFile(victim, bad, 0o666); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing", func(t *testing.T) {
			if err := os.Remove(victim); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			d.mutie(t)
			defer os.WriteFile(victim, pristine, 0o666)
			err := load()
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if !strings.Contains(err.Error(), "rank 2") {
				t.Errorf("error does not name rank 2: %v", err)
			}
			if !strings.Contains(err.Error(), victim) {
				t.Errorf("error does not name the damaged file %s: %v", victim, err)
			}
		})
	}

	// Intact again: the load must succeed (guards the restore helper above).
	if err := load(); err != nil {
		t.Fatalf("pristine checkpoint refused: %v", err)
	}
}

// TestCheckpointRefusesMismatch: a checkpoint must only resume under the
// options and reads it was written for — mismatches are refused with an
// explanatory error, not silently wrong output.
func TestCheckpointRefusesMismatch(t *testing.T) {
	reads := testReads(5000, 661)
	opt := DefaultOptions(1)
	opt.K = 21
	opt.XDrop = 25
	dir := t.TempDir()
	ckOpt := opt
	ckOpt.CheckpointDir = dir
	eng, err := Plan(ckOpt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, StageCountKmer)
	if err != nil {
		t.Fatal(err)
	}
	arts.Close()

	refuse := func(t *testing.T, o Options, rds [][]byte, frag string) {
		t.Helper()
		e, err := Plan(o)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.LoadCheckpoint(context.Background(), rds, dir)
		if err == nil {
			a.Close()
			t.Fatal("mismatched checkpoint accepted")
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("refusal lacks %q: %v", frag, err)
		}
	}
	t.Run("different options", func(t *testing.T) {
		o := opt
		o.K = 17
		refuse(t, o, reads, "different algorithmic options")
	})
	t.Run("different reads", func(t *testing.T) {
		refuse(t, opt, testReads(5000, 997), "different read set")
	})
	t.Run("different P", func(t *testing.T) {
		o := DefaultOptions(4)
		o.K = 21
		o.XDrop = 25
		refuse(t, o, reads, "1-rank world")
	})
	t.Run("no checkpoint", func(t *testing.T) {
		e, err := Plan(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.LoadCheckpoint(context.Background(), reads, t.TempDir()); err == nil ||
			!strings.Contains(err.Error(), "no committed checkpoint") {
			t.Errorf("empty dir load = %v, want a no-committed-checkpoint error", err)
		}
	})

	// Plumbing knobs are fingerprint-invariant: a sync engine resumes an
	// async checkpoint (results are bit-identical by the standing invariant).
	t.Run("async invariant", func(t *testing.T) {
		o := opt
		o.Async = !opt.Async
		e, err := Plan(o)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.LoadCheckpoint(context.Background(), reads, dir)
		if err != nil {
			t.Fatalf("sync/async flip refused the checkpoint: %v", err)
		}
		a.Close()
	})
}

// TestFingerprintThrough pins the prefix-fingerprint contract the checkpoint
// validation and the serve-layer artifact cache share: options first consumed
// downstream of a stage do not enter that stage's prefix, options at or
// upstream of it do, and plumbing knobs never enter any prefix.
func TestFingerprintThrough(t *testing.T) {
	base := DefaultOptions(4)
	fp := base.FingerprintThrough(StageAlignment)

	downstream := base
	downstream.TRFuzz = 500
	downstream.TRMaxIter = 3
	downstream.PackSeqComm = true
	if got := downstream.FingerprintThrough(StageAlignment); got != fp {
		t.Error("TR/contig options changed the Alignment prefix fingerprint")
	}
	if got := downstream.Fingerprint(); got == base.Fingerprint() {
		t.Error("TR options do not change the full fingerprint")
	}

	plumbing := base
	plumbing.Threads = 7
	plumbing.Async = !base.Async
	plumbing.Transport = TransportTCP
	if got := plumbing.Fingerprint(); got != base.Fingerprint() {
		t.Error("plumbing knobs changed the fingerprint")
	}

	for name, mut := range map[string]func(*Options){
		"P":           func(o *Options) { o.P = 1 },
		"K":           func(o *Options) { o.K = 17 },
		"XDrop":       func(o *Options) { o.XDrop = 30 },
		"MaxOverhang": func(o *Options) { o.MaxOverhang = 999 },
		"Backend":     func(o *Options) { o.AlignBackend = BackendWFA },
	} {
		o := base
		mut(&o)
		if o.FingerprintThrough(StageAlignment) == fp {
			t.Errorf("%s change did not move the Alignment prefix fingerprint", name)
		}
	}
	if base.Fingerprint() != base.FingerprintThrough(StageExtractContig) {
		t.Error("Fingerprint() is not the full-graph prefix")
	}
}

// TestCheckpointPrefixResume is the sweep-reuse contract: a post-Alignment
// checkpoint must resume under changed TR parameters (downstream of the
// resume point) and reproduce a cold run at those parameters exactly, while
// an in-prefix change (MaxOverhang feeds the Alignment-stage overlap
// classification) is still refused.
func TestCheckpointPrefixResume(t *testing.T) {
	reads := testReads(5000, 673)
	base := DefaultOptions(4)
	base.K = 21
	base.XDrop = 25
	dir := t.TempDir()
	ckOpt := base
	ckOpt.CheckpointDir = dir
	ckOpt.CheckpointEvery = StageAlignment
	eng, err := Plan(ckOpt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, StageAlignment)
	if err != nil {
		t.Fatal(err)
	}
	arts.Close()

	swept := base
	swept.TRFuzz = 400
	swept.TRMaxIter = 5
	cold, err := Run(reads, swept)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Plan(swept)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fresh.LoadCheckpoint(context.Background(), reads, dir)
	if err != nil {
		t.Fatalf("post-Alignment checkpoint refused a downstream-only option change: %v", err)
	}
	defer loaded.Close()
	fin, err := fresh.ResumeFrom(context.Background(), loaded, StageExtractContig)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fin.Output()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, cold, out, "prefix resume under swept TR options")

	inPrefix := base
	inPrefix.MaxOverhang = 999
	e, err := Plan(inPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := e.LoadCheckpoint(context.Background(), reads, dir); err == nil {
		a.Close()
		t.Fatal("in-prefix option change (MaxOverhang) accepted a post-Alignment checkpoint")
	} else if !strings.Contains(err.Error(), "different algorithmic options") {
		t.Errorf("refusal lacks the options message: %v", err)
	}
}

// TestCheckpointEveryValidation covers the CheckpointEvery option gate.
func TestCheckpointEveryValidation(t *testing.T) {
	opt := DefaultOptions(1)
	opt.CheckpointDir = t.TempDir()
	for _, ok := range []string{"", "all", StageCountKmer, StageTrReduction} {
		opt.CheckpointEvery = ok
		if err := opt.Validate(); err != nil {
			t.Errorf("CheckpointEvery=%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"bogus", StageExtractContig} {
		opt.CheckpointEvery = bad
		if err := opt.Validate(); err == nil {
			t.Errorf("CheckpointEvery=%q accepted", bad)
		}
	}
	opt.CheckpointDir = ""
	opt.CheckpointEvery = "all"
	if err := opt.Validate(); err == nil {
		t.Error("CheckpointEvery without CheckpointDir accepted")
	}
}
