// Package pipeline assembles the full ELBA computation of Algorithm 1:
// FastaReader → KmerCounter → A → C = A·Aᵀ → Alignment → Prune →
// TransitiveReduction → ContigGeneration, on a simulated distributed-memory
// machine of P ranks arranged as a √P × √P grid. Execution is hybrid, like
// the paper's MPI + threads design: every rank drives its compute-heavy
// loops (k-mer extraction, pairwise alignment) through an intra-rank worker
// pool of Options.Threads workers (package par). The Alignment stage
// dispatches through a pluggable backend (Options.AlignBackend: x-drop DP
// or wavefront alignment). It reports per-stage
// timings under the paper's breakdown names (CountKmer, DetectOverlap,
// Alignment, TrReduction, ExtractContig) plus the contig-phase sub-stages
// (CG:*) used for the §6.1 induced-subgraph claim.
//
// The computation is organized as a typed stage graph (Stage, Artifacts)
// driven by an Engine: Plan(opt) validates the options, RunUntil executes a
// prefix of the graph, ResumeFrom continues a snapshot — possibly many
// times, under different downstream parameters — and context cancellation
// unwinds every simulated rank promptly. Run is the monolithic convenience
// wrapper over the same engine, so monolithic, staged and resumed execution
// produce bit-identical contigs and equal traffic counters.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi/transport/tcp"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/readsim"
	"repro/internal/tr"
	"repro/internal/trace"
	"repro/internal/wfa"
)

// Alignment backend names accepted by Options.AlignBackend.
const (
	BackendXDrop = "xdrop" // banded antidiagonal x-drop DP (package align)
	BackendWFA   = "wfa"   // gap-affine wavefront alignment (package wfa)
)

// AlignBackends lists the built-in alignment backends.
func AlignBackends() []string { return []string{BackendXDrop, BackendWFA} }

// Transport names accepted by Options.Transport.
const (
	// TransportInproc runs all P ranks as goroutines of this process over
	// the in-process mailbox transport ("" is an alias; the reference
	// configuration).
	TransportInproc = "inproc"
	// TransportTCP runs the same program over a loopback TCP socket mesh:
	// every message crosses a real wire codec and socket, still within one
	// process. Contigs and traffic counters are identical to inproc.
	TransportTCP = "tcp"
	// TransportProc marks a run where each rank is a separate OS process
	// (cmd/elba -transport proc). It requires the NewWorld hook: only the
	// launcher knows how to dial this process's endpoint into the mesh.
	TransportProc = "proc"
)

// Transports lists the transport names a library caller can select directly
// (TransportProc needs the cmd/elba process launcher on top).
func Transports() []string { return []string{TransportInproc, TransportTCP} }

// Options parameterizes a pipeline run.
type Options struct {
	P int // simulated ranks; must be a perfect square
	K int // k-mer length (paper: 31 low-error, 17 high-error)
	// AlignBackend selects the Alignment-stage implementation: "xdrop"
	// (default; "" is an alias) or "wfa". Both consume the same seeds and
	// produce compatible scores/extents; WFA's work scales with alignment
	// penalty rather than band area, so it wins on low-error reads.
	AlignBackend string
	// Threads is the intra-rank worker count (the hybrid ranks × threads
	// model: the paper runs multithreaded alignment inside every MPI rank).
	// The k-mer extraction and pairwise-alignment loops of each rank run on
	// a worker pool of this size (package par), with one aligner instance
	// per worker. 0 means auto: GOMAXPROCS split evenly across the P
	// simulated ranks, never below 1. Contig output is bit-identical for
	// every thread count.
	Threads      int
	XDrop        int32 // x-drop / wavefront-prune threshold (paper: 15 low-error, 7 high-error)
	ReliableLow  int32
	ReliableHigh int32
	MinOverlap   int32
	MinScoreFrac float64
	MaxOverhang  int32
	TRFuzz       int32
	TRMaxIter    int
	// PackSeqComm sends read sequences 2-bit packed during contig
	// generation (§7 future work); false matches the paper's protocol.
	PackSeqComm bool
	// Trace, when non-nil, collects per-rank event spans (stage bodies,
	// worker-pool chunks, mpi sends/receives/waits) into ring-buffered lanes
	// for Perfetto export. It must cover at least P ranks. Tracing never
	// changes contigs or byte/message counters; with Trace nil the hooks
	// reduce to a pointer check. Excluded from the run manifest's options
	// (observability configuration is not an algorithmic parameter).
	Trace *obs.Trace `json:"-"`
	// Metrics, when non-nil, collects per-rank typed counters, gauges and
	// histograms (mpi.*, kmer.*, spmat.*, align.*, pipeline.*) for the
	// -metrics snapshot and the manifest. Same contract as Trace: ≥ P ranks,
	// no effect on results, nil means zero-cost. In a multi-process run every
	// process must agree on whether Metrics is set (the engine streams the
	// snapshots to rank 0 over the control plane at the end of the final
	// stage, an SPMD exchange all processes must join).
	Metrics *obs.MetricSet `json:"-"`
	// Transport selects how the P ranks exchange messages: "" or "inproc"
	// (goroutines over the in-process mailbox), "tcp" (a loopback socket
	// mesh inside this process — the real wire path), or "proc" (one OS
	// process per rank, orchestrated by cmd/elba -transport proc, which
	// supplies the NewWorld hook). Contigs are bit-identical and traffic
	// counters equal across transports; only wall time differs.
	Transport string
	// NewWorld, when non-nil, overrides world construction — the expert
	// hook the multi-process launcher uses to dial this process's endpoint
	// into the rank mesh. The returned world must span p ranks. Excluded
	// from the manifest (plumbing, not an algorithmic parameter).
	NewWorld func(p int) (*mpi.World, error) `json:"-"`
	// OnFailure, when non-nil, runs exactly once if the run's world is
	// cancelled — a rank process died, a peer aborted the job, or the
	// context was cancelled — with the cause. Unwrap it with errors.As to a
	// *transport.RankFailure to name a dead rank. It runs on the goroutine
	// that detected the failure, before the run returns; keep it quick and
	// do not communicate from it. Excluded from the manifest (plumbing, not
	// an algorithmic parameter).
	OnFailure func(error) `json:"-"`
	// CheckpointDir, when non-empty, makes the engine write a durable
	// checkpoint of the per-rank artifacts after each completed stage (see
	// CheckpointEvery): one wire-encoded file per rank plus a
	// rank-0-committed MANIFEST.json, under CheckpointDir/<stage>/. A later
	// run with equal algorithmic options resumes via Engine.LoadCheckpoint.
	// Checkpoint traffic runs on the uncounted control plane and checkpoint
	// time is excluded from WallTime, so a checkpointed run's manifest is
	// identical to an unobserved one. Excluded from the run manifest
	// (operational plumbing, not an algorithmic parameter).
	CheckpointDir string `json:"-"`
	// CheckpointEvery narrows CheckpointDir: "" or "all" checkpoints after
	// every stage but the final one; a stage name checkpoints only after
	// that stage. Ignored when CheckpointDir is empty.
	CheckpointEvery string `json:"-"`
	// Async runs the communication-heavy loops on the nonblocking mpi layer
	// so transfers overlap local computation: the SUMMA SpGEMM (overlap
	// detection and transitive reduction) prefetches the next round's panels
	// while multiplying, the k-mer exchange posts receives before packing
	// sends, and contig generation pipelines the read-sequence exchange
	// against edge routing and the DFS walks. Contigs and all byte/message
	// counters are bit-identical with Async on or off; only the
	// comm_overlap/comm_exposed split and wall time differ. Sync(false) is
	// the paper's blocking baseline; DefaultOptions enables Async.
	Async bool
}

// DefaultOptions returns the low-error configuration at P ranks.
func DefaultOptions(p int) Options {
	return Options{
		P:            p,
		K:            31,
		XDrop:        15,
		ReliableLow:  2,
		ReliableHigh: 160,
		MinOverlap:   100,
		MinScoreFrac: 0.5,
		MaxOverhang:  80,
		TRFuzz:       150,
		TRMaxIter:    10,
		Async:        true,
	}
}

// PresetOptions tunes the parameters for a Table 2 dataset substitute,
// mirroring the paper's per-dataset settings (k=31/x=15 for the low-error
// datasets, k=17 for H. sapiens). The x-drop and score threshold for the
// 15%-error preset are recalibrated for this aligner's -2 penalties
// (DESIGN.md §2).
func PresetOptions(preset readsim.Preset, p int) Options {
	o := DefaultOptions(p)
	switch preset {
	case readsim.HSapiensLike:
		o.K = 17
		o.XDrop = 30
		o.MinScoreFrac = 0.05
		o.MinOverlap = 60
		o.MaxOverhang = 300
		o.TRFuzz = 400
		o.ReliableHigh = 60
	case readsim.OSativaLike, readsim.CElegansLike:
		// paper defaults
	}
	return o
}

// Stats aggregates the run's counters and timings (rank-0 view).
type Stats struct {
	P              int
	Threads        int // intra-rank workers actually used (EffectiveThreads)
	NumReads       int
	NumKmers       int
	CandidatePairs int64
	KeptOverlaps   int64
	ContainedReads int
	TR             tr.Stats
	NumContigs     int64
	BranchVertices int64
	AssignedReads  int64
	MaxLoad        int64 // LPT load balance extremes (reads per rank)
	MinLoad        int64
	Timers         *trace.Summary // per-stage aggregates across ranks
	CommBytes      int64          // total bytes moved by all ranks
	CommMsgs       int64          // total messages moved by all ranks
	WallTime       time.Duration  // end-to-end wall clock of the mpi run
}

// Output is the assembly result plus statistics.
type Output struct {
	Contigs []core.Contig // gathered and canonically sorted
	Stats   Stats
}

// alignerFactory maps AlignBackend to a per-rank backend constructor.
func (o Options) alignerFactory() (func() align.Aligner, error) {
	switch o.AlignBackend {
	case "", BackendXDrop:
		p := align.DefaultParams(o.XDrop)
		return func() align.Aligner { return align.NewXDrop(p) }, nil
	case BackendWFA:
		p := wfa.DualParams(align.DefaultParams(o.XDrop))
		return func() align.Aligner { return wfa.New(p) }, nil
	}
	return nil, fmt.Errorf("pipeline: unknown AlignBackend %q (want %s)",
		o.AlignBackend, strings.Join(AlignBackends(), "|"))
}

// overlapConfig converts Options to the overlap stage config.
func (o Options) overlapConfig(newAligner func() align.Aligner) overlap.Config {
	return overlap.Config{
		K:            o.K,
		ReliableLow:  o.ReliableLow,
		ReliableHigh: o.ReliableHigh,
		Align:        align.DefaultParams(o.XDrop),
		NewAligner:   newAligner,
		MinOverlap:   o.MinOverlap,
		MinScoreFrac: o.MinScoreFrac,
		MaxOverhang:  o.MaxOverhang,
		Threads:      o.EffectiveThreads(),
		Async:        o.Async,
	}
}

// EffectiveThreads resolves the Threads option: an explicit value wins,
// otherwise GOMAXPROCS is split across the simulated ranks so a run never
// oversubscribes the host by default.
func (o Options) EffectiveThreads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	p := o.P
	if p < 1 {
		p = 1
	}
	t := runtime.GOMAXPROCS(0) / p
	if t < 1 {
		t = 1
	}
	return t
}

// newWorld builds the rank mesh the run executes on, per Options.Transport.
// The NewWorld hook wins when set (the proc launcher's endpoint dial);
// otherwise inproc and tcp worlds are built locally.
func (o Options) newWorld() (*mpi.World, error) {
	if o.NewWorld != nil {
		w, err := o.NewWorld(o.P)
		if err != nil {
			return nil, fmt.Errorf("pipeline: NewWorld hook: %w", err)
		}
		if w.Size() != o.P {
			w.Close()
			return nil, fmt.Errorf("pipeline: NewWorld hook built a %d-rank world, want P = %d", w.Size(), o.P)
		}
		return w, nil
	}
	switch o.Transport {
	case "", TransportInproc:
		return mpi.NewWorld(o.P), nil
	case TransportTCP:
		eps, err := tcp.NewLocal(o.P)
		if err != nil {
			return nil, fmt.Errorf("pipeline: tcp transport: %w", err)
		}
		return mpi.NewWorldTransport(eps...), nil
	case TransportProc:
		return nil, fmt.Errorf("pipeline: Transport %q needs the process launcher (run via cmd/elba -transport proc)", o.Transport)
	}
	return nil, fmt.Errorf("pipeline: unknown Transport %q (want %s)", o.Transport, strings.Join(Transports(), "|"))
}

// Run assembles reads on a fresh simulated world of opt.P ranks — the
// monolithic compatibility wrapper: it plans an engine and runs the whole
// stage graph in one call. Callers that want partial runs, resume points,
// progress observers or cancellation use Plan/RunUntil/ResumeFrom directly.
func Run(reads [][]byte, opt Options) (*Output, error) {
	eng, err := Plan(opt)
	if err != nil {
		return nil, err
	}
	return eng.Run(context.Background(), reads)
}

// MainStages are the paper's Figure 5 breakdown categories in pipeline
// order.
var MainStages = []string{"CountKmer", "DetectOverlap", "Alignment", "TrReduction", "ExtractContig"}

// ContigStages are the ExtractContig sub-stages (Algorithm 2 steps).
var ContigStages = []string{
	"CG:BranchRemoval", "CG:ConnectedComponent", "CG:Partitioning",
	"CG:InducedSubgraph", "CG:SequenceComm", "CG:LocalAssembly",
}

// StageTotal sums the five main stages — the denominator for breakdown
// percentages (CG:* stages are nested inside ExtractContig and excluded).
func (s *Stats) StageTotal() time.Duration {
	var t time.Duration
	for _, n := range MainStages {
		t += s.Timers.Dur(n)
	}
	return t
}

// ContigPhaseShare returns stage / ExtractContig — used to verify the
// paper's claim that the induced subgraph step takes 65–85% of contig
// generation.
func (s *Stats) ContigPhaseShare(stage string) float64 {
	total := s.Timers.Dur("ExtractContig")
	if total == 0 {
		return 0
	}
	return float64(s.Timers.Dur(stage)) / float64(total)
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
