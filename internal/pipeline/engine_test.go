package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/readsim"
	"repro/internal/trace"
)

func testReads(length int, seed int64) [][]byte {
	genome := readsim.Genome(readsim.GenomeConfig{Length: length, Seed: seed})
	return readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1500, Seed: seed + 1}))
}

// stagedRun splits one assembly into RunUntil(split) + ResumeFrom(rest).
func stagedRun(t *testing.T, reads [][]byte, opt Options, split string) *Output {
	t.Helper()
	eng, err := Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, split)
	if err != nil {
		t.Fatal(err)
	}
	if got := arts.Stage(); got != split {
		t.Fatalf("RunUntil(%s) stopped at %q", split, got)
	}
	if _, err := arts.Output(); err == nil {
		t.Fatalf("partial artifacts (at %s) yielded an Output", split)
	}
	rest, err := eng.ResumeFrom(context.Background(), arts, StageExtractContig)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rest.Output()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStagedMatchesMonolithic is the engine's acceptance gate: splitting the
// run at every stage boundary must reproduce the monolithic run bit for bit
// — contigs, traffic totals, and per-stage traffic attribution — across
// (P, threads, backend, sync/async) combinations.
func TestStagedMatchesMonolithic(t *testing.T) {
	reads := testReads(18000, 601)
	cases := []struct {
		p, threads int
		backend    string
		async      bool
	}{
		{1, 1, BackendXDrop, false},
		{4, 1, BackendXDrop, true},
		{4, 2, BackendWFA, true},
		{9, 1, BackendXDrop, false},
		{4, 1, BackendWFA, false},
		{4, 2, BackendXDrop, true},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		label := fmt.Sprintf("%s/P=%d/T=%d/async=%v", tc.backend, tc.p, tc.threads, tc.async)
		opt := DefaultOptions(tc.p)
		opt.K = 21
		opt.XDrop = 25
		opt.Threads = tc.threads
		opt.AlignBackend = tc.backend
		opt.Async = tc.async

		mono, err := Run(reads, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		splits := []string{StageAlignment}
		if !testing.Short() {
			splits = []string{StageFastaReader, StageCountKmer, StageDetectOverlap,
				StageAlignment, StageTrReduction}
		}
		for _, split := range splits {
			staged := stagedRun(t, reads, opt, split)
			if len(staged.Contigs) != len(mono.Contigs) {
				t.Fatalf("%s split@%s: %d contigs vs %d monolithic",
					label, split, len(staged.Contigs), len(mono.Contigs))
			}
			for i := range mono.Contigs {
				if !bytes.Equal(staged.Contigs[i].Seq, mono.Contigs[i].Seq) {
					t.Fatalf("%s split@%s: contig %d differs", label, split, i)
				}
			}
			if staged.Stats.CommBytes != mono.Stats.CommBytes || staged.Stats.CommMsgs != mono.Stats.CommMsgs {
				t.Fatalf("%s split@%s: traffic %d bytes/%d msgs vs monolithic %d/%d",
					label, split, staged.Stats.CommBytes, staged.Stats.CommMsgs,
					mono.Stats.CommBytes, mono.Stats.CommMsgs)
			}
			for _, s := range append(append([]string{}, MainStages...), ContigStages...) {
				se, me := staged.Stats.Timers.Get(s), mono.Stats.Timers.Get(s)
				if se.SumBytes != me.SumBytes || se.MaxMsgs != me.MaxMsgs || se.SumWork != me.SumWork {
					t.Fatalf("%s split@%s: stage %s accounting differs: bytes %d/%d msgs %d/%d work %d/%d",
						label, split, s, se.SumBytes, me.SumBytes, se.MaxMsgs, me.MaxMsgs, se.SumWork, me.SumWork)
				}
			}
		}
	}
}

// TestResumeSweepReusesOverlapArtifacts pins the parameter-sweep contract:
// one post-Alignment snapshot resumed under several TR configurations must
// (a) leave the snapshot reusable, (b) match a dedicated full run of each
// configuration contig for contig, and (c) perform the alignment work
// exactly once across the whole sweep.
func TestResumeSweepReusesOverlapArtifacts(t *testing.T) {
	reads := testReads(15000, 603)
	base := DefaultOptions(4)
	base.K = 21
	base.XDrop = 25
	eng, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, StageAlignment)
	if err != nil {
		t.Fatal(err)
	}
	alignOnce := arts.Aggregate().Get("Alignment").SumWork
	if alignOnce <= 0 {
		t.Fatal("no alignment work recorded in the snapshot")
	}

	fuzzes := []int32{0, 150, 500}
	for _, fuzz := range fuzzes {
		opt := base
		opt.TRFuzz = fuzz
		swept, err := Plan(opt)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := swept.ResumeFrom(context.Background(), arts, StageExtractContig)
		if err != nil {
			t.Fatalf("fuzz=%d: %v", fuzz, err)
		}
		sweptOut, err := chain.Output()
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(sweptOut.Contigs) != len(full.Contigs) {
			t.Fatalf("fuzz=%d: swept %d contigs, full %d", fuzz, len(sweptOut.Contigs), len(full.Contigs))
		}
		for i := range full.Contigs {
			if !bytes.Equal(sweptOut.Contigs[i].Seq, full.Contigs[i].Seq) {
				t.Fatalf("fuzz=%d: contig %d differs between swept and full run", fuzz, i)
			}
		}
		// The resumed chain carries the snapshot's alignment counters but ran
		// no new alignment: its align work must equal the single execution.
		if got := sweptOut.Stats.Timers.Get("Alignment").SumWork; got != alignOnce {
			t.Fatalf("fuzz=%d: resumed chain reports %d align work, snapshot had %d", fuzz, got, alignOnce)
		}
		if sweptOut.Stats.TR.Products <= 0 && fuzz > 0 {
			t.Fatalf("fuzz=%d: TR ran no products", fuzz)
		}
	}
	// Snapshot unchanged: still resumable, still parked after Alignment.
	if got := arts.Stage(); got != StageAlignment {
		t.Fatalf("snapshot advanced to %q during the sweep", got)
	}
}

// TestCancellationMidAlignment cancels the context the moment the Alignment
// stage starts: RunUntil must return ctx.Err() and every simulated rank
// goroutine (and posted-receive matcher) must unwind — checked against the
// process goroutine count.
func TestCancellationMidAlignment(t *testing.T) {
	reads := testReads(15000, 605)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := Observer{StageStart: func(stage string, _, _ int) {
		if stage == StageAlignment {
			cancel()
		}
	}}
	eng, err := Plan(opt, obs)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(ctx, reads, StageExtractContig)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if arts != nil {
		t.Fatal("cancelled run returned artifacts")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("rank goroutines leaked after cancellation: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelledArtifactsAreDead: a snapshot whose world was cancelled must
// refuse to resume with a useful error.
func TestCancelledArtifactsAreDead(t *testing.T) {
	reads := testReads(12000, 607)
	opt := DefaultOptions(1)
	opt.K = 21
	opt.XDrop = 25
	eng, err := Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := eng.RunUntil(context.Background(), reads, StageCountKmer)
	if err != nil {
		t.Fatal(err)
	}
	arts.World.Cancel(errors.New("operator abort"))
	if _, err := eng.ResumeFrom(context.Background(), arts, StageExtractContig); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("resume on cancelled world: err = %v", err)
	}
}

// TestObserverSequence: observers see every stage start and end in graph
// order, with the finished stage's aggregate available at StageEnd.
func TestObserverSequence(t *testing.T) {
	reads := testReads(12000, 609)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	var starts, ends []string
	obs := Observer{
		StageStart: func(stage string, i, n int) {
			if n != len(StageNames()) {
				t.Errorf("StageStart total = %d, want %d", n, len(StageNames()))
			}
			starts = append(starts, stage)
		},
		StageEnd: func(stage string, sum *trace.Summary, wall time.Duration) {
			if wall <= 0 {
				t.Errorf("stage %s: non-positive wall time", stage)
			}
			if stage == StageAlignment && sum.Get("Alignment").SumWork <= 0 {
				t.Errorf("Alignment StageEnd aggregate has no work")
			}
			ends = append(ends, stage)
		},
	}
	eng, err := Plan(opt, obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), reads); err != nil {
		t.Fatal(err)
	}
	want := strings.Join(StageNames(), ",")
	if got := strings.Join(starts, ","); got != want {
		t.Fatalf("StageStart order %q, want %q", got, want)
	}
	if got := strings.Join(ends, ","); got != want {
		t.Fatalf("StageEnd order %q, want %q", got, want)
	}
}

// TestEngineAPIErrors covers the engine's misuse surface.
func TestEngineAPIErrors(t *testing.T) {
	opt := DefaultOptions(4)
	eng, err := Plan(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunUntil(context.Background(), nil, "NoSuchStage"); err == nil {
		t.Fatal("unknown stage accepted")
	}
	arts, err := eng.RunUntil(context.Background(), [][]byte{[]byte(strings.Repeat("ACGT", 200))}, StageAlignment)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ResumeFrom(context.Background(), arts, StageCountKmer); err == nil {
		t.Fatal("resume to an already-complete stage accepted")
	}
	other, err := Plan(DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ResumeFrom(context.Background(), arts, StageExtractContig); err == nil {
		t.Fatal("resume with mismatched P accepted")
	}
}
