package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

func TestRunRejectsNonSquareP(t *testing.T) {
	if _, err := Run(nil, Options{P: 3}); err == nil {
		t.Fatal("expected error for P=3")
	}
}

func TestRunEndToEndAllStagesTimed(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 71})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1800, Seed: 72}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	// Every Figure 5 stage must have been timed and carry work units.
	for _, name := range MainStages {
		if out.Stats.Timers.Dur(name) <= 0 {
			t.Fatalf("stage %s not timed", name)
		}
		if out.Stats.Timers.Get(name).SumWork <= 0 {
			t.Fatalf("stage %s has no work counter", name)
		}
	}
	for _, name := range ContigStages {
		if _, ok := find(out.Stats.Timers.Names(), name); !ok {
			t.Fatalf("contig sub-stage %s missing", name)
		}
	}
	if out.Stats.CommBytes <= 0 {
		t.Fatal("no communication recorded")
	}
	if out.Stats.NumContigs <= 0 || out.Stats.NumReads != len(reads) {
		t.Fatalf("stats: %+v", out.Stats)
	}
	// Genome round-trip (error-free input).
	fw, rc := string(genome), string(dna.RevComp(genome))
	for _, c := range out.Contigs {
		if !strings.Contains(fw, string(c.Seq)) && !strings.Contains(rc, string(c.Seq)) {
			t.Fatal("contig not a genome substring")
		}
	}
}

func find(names []string, want string) (int, bool) {
	for i, n := range names {
		if n == want {
			return i, true
		}
	}
	return 0, false
}

func TestRunContigsIndependentOfP(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 15000, Seed: 73})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1500, Seed: 74}))
	opt := DefaultOptions(1)
	opt.K = 21
	opt.XDrop = 25
	ref, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, 16} {
		opt.P = p
		got, err := Run(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Contigs) != len(ref.Contigs) {
			t.Fatalf("P=%d: %d contigs vs %d", p, len(got.Contigs), len(ref.Contigs))
		}
		for i := range ref.Contigs {
			if !bytes.Equal(ref.Contigs[i].Seq, got.Contigs[i].Seq) {
				t.Fatalf("P=%d contig %d differs", p, i)
			}
		}
	}
}

func TestPresetOptionsHighError(t *testing.T) {
	o := PresetOptions(readsim.HSapiensLike, 4)
	if o.K != 17 {
		t.Fatalf("H. sapiens preset must use k=17 (paper §5), got %d", o.K)
	}
	low := PresetOptions(readsim.CElegansLike, 4)
	if low.K != 31 || low.XDrop != 15 {
		t.Fatalf("low-error preset must use k=31, x=15 (paper §5), got k=%d x=%d", low.K, low.XDrop)
	}
}

func TestRunHighErrorPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	// A small H. sapiens-like run: 15% error, k=17. Success = some contigs
	// that map back to the genome region (exact substring no longer holds).
	ds := readsim.Generate(readsim.HSapiensLike, 60000, 75)
	opt := PresetOptions(readsim.HSapiensLike, 4)
	out, err := Run(readsim.Seqs(ds.Reads), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) == 0 {
		t.Fatal("no contigs at 15% error")
	}
	if len(out.Contigs[0].Seq) < 2000 {
		t.Fatalf("longest contig only %d bases", len(out.Contigs[0].Seq))
	}
}

func TestContigPhaseShareAccessors(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeConfig{Length: 12000, Seed: 77})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 10, MeanLen: 1500, Seed: 78}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range ContigStages {
		share := out.Stats.ContigPhaseShare(s)
		if share < 0 || share > 1.5 {
			t.Fatalf("share of %s = %f", s, share)
		}
		sum += share
	}
	if sum <= 0 {
		t.Fatal("contig phase shares all zero")
	}
	if out.Stats.StageTotal() <= 0 {
		t.Fatal("stage total zero")
	}
}
