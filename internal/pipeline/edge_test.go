package pipeline

import (
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

// TestEmptyAndDegenerateInputs: the pipeline must handle pathological
// inputs without deadlock or panic.
func TestEmptyAndDegenerateInputs(t *testing.T) {
	opt := DefaultOptions(4)
	opt.K = 15
	cases := map[string][][]byte{
		"no reads":      {},
		"one read":      {[]byte(strings.Repeat("ACGT", 200))},
		"short reads":   {[]byte("ACG"), []byte("TGCA"), []byte("AC")}, // all < k
		"two identical": {[]byte(strings.Repeat("ACGTT", 100)), []byte(strings.Repeat("ACGTT", 100))},
	}
	for name, reads := range cases {
		name, reads := name, reads
		t.Run(name, func(t *testing.T) {
			out, err := Run(reads, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(out.Contigs) != 0 {
				// Identical reads collapse by containment; nothing else can
				// form a ≥2-read contig here.
				t.Fatalf("%s: unexpected contigs %d", name, len(out.Contigs))
			}
		})
	}
}

// TestNoOverlapsAtAll: disjoint reads produce an empty contig set.
func TestNoOverlapsAtAll(t *testing.T) {
	var reads [][]byte
	for i := 0; i < 8; i++ {
		reads = append(reads, readsim.Genome(readsim.GenomeConfig{Length: 800, Seed: int64(100 + i)}))
	}
	opt := DefaultOptions(4)
	opt.K = 21
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) != 0 || out.Stats.NumContigs != 0 {
		t.Fatalf("disjoint reads assembled: %d contigs", len(out.Contigs))
	}
}

// TestInvalidKPropagatesAsError: a rank panic (k out of range) must surface
// as an error, not hang the world.
func TestInvalidKPropagatesAsError(t *testing.T) {
	reads := [][]byte{[]byte(strings.Repeat("ACGT", 100))}
	opt := DefaultOptions(1)
	opt.K = 99 // > kmer.MaxK
	if _, err := Run(reads, opt); err == nil {
		t.Fatal("expected error for k=99")
	}
}

// TestRepeatGenomeCreatesBranchesButExactContigs: planted repeats longer
// than any read force branch vertices; contigs must break there but stay
// exact substrings of the reference (the §4.2 masking behaviour).
func TestRepeatGenomeCreatesBranchesButExactContigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{
		Length: 30000, Seed: 201, RepeatCount: 2, RepeatLen: 4000,
	})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{
		Depth: 14, MeanLen: 2000, Seed: 202,
	}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.BranchVertices == 0 {
		t.Fatal("4 kbp repeats with 2 kbp reads must create branch vertices")
	}
	if len(out.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	fw, rc := string(genome), string(dna.RevComp(genome))
	for i, c := range out.Contigs {
		if !strings.Contains(fw, string(c.Seq)) && !strings.Contains(rc, string(c.Seq)) {
			t.Fatalf("repeat-genome contig %d not an exact substring (%d bases)", i, len(c.Seq))
		}
	}
	t.Logf("repeats: %d branches, %d contigs, longest %d",
		out.Stats.BranchVertices, len(out.Contigs), len(out.Contigs[0].Seq))
}

// TestPackSeqCommEquivalentAndSmaller: the §7 packed sequence exchange must
// not change the contig set and must shrink the sequence-communication
// traffic roughly 4×.
func TestPackSeqCommEquivalentAndSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 301})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{Depth: 12, MeanLen: 1800, Seed: 302}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	plain, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.PackSeqComm = true
	packed, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Contigs) != len(packed.Contigs) {
		t.Fatalf("packing changed the contig count: %d vs %d", len(plain.Contigs), len(packed.Contigs))
	}
	for i := range plain.Contigs {
		if string(plain.Contigs[i].Seq) != string(packed.Contigs[i].Seq) {
			t.Fatalf("packing changed contig %d", i)
		}
	}
	pb := plain.Stats.Timers.Get("CG:SequenceComm").SumBytes
	qb := packed.Stats.Timers.Get("CG:SequenceComm").SumBytes
	if qb*3 >= pb {
		t.Fatalf("packed exchange not smaller: %d vs %d bytes", qb, pb)
	}
	t.Logf("sequence comm: raw %d bytes, packed %d bytes", pb, qb)
}

// TestLoadBalanceReported: LPT must distribute assigned reads across ranks
// within a sane imbalance bound on a many-contig workload.
func TestLoadBalanceReported(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run in -short mode")
	}
	genome := readsim.Genome(readsim.GenomeConfig{Length: 40000, Seed: 203})
	reads := readsim.Seqs(readsim.Simulate(genome, readsim.ReadConfig{
		Depth: 10, MeanLen: 1200, Seed: 204,
	}))
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.AssignedReads == 0 {
		t.Fatal("no reads assigned")
	}
	if out.Stats.MaxLoad < out.Stats.MinLoad {
		t.Fatal("load accounting broken")
	}
	t.Logf("loads: min=%d max=%d contigs=%d", out.Stats.MinLoad, out.Stats.MaxLoad, out.Stats.NumContigs)
}
