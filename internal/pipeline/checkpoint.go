package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bidir"
	"repro/internal/fasta"
	"repro/internal/grid"
	"repro/internal/kmer"
	"repro/internal/mpi"
	"repro/internal/mpi/wire"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/spmat"
	"repro/internal/tr"
	"repro/internal/trace"
)

// Durable checkpoints: after a completed stage the engine serializes every
// rank's artifact state to CheckpointDir/<stage>/ — one wire-encoded file per
// rank plus a MANIFEST.json that rank 0 commits last. The commit protocol
// makes the layout crash-consistent with nothing but POSIX rename:
//
//  1. Each rank encodes its state with the mpi/wire typed codec (the same
//     deterministic encoding messages travel in, so checkpoint bytes are
//     transport- and schedule-invariant), writes it to a temp file in the
//     stage dir, fsyncs, and renames it to rank-<r>.ckpt.
//  2. The ranks gather their content hashes at rank 0 on the uncounted
//     control plane (so checkpointing never perturbs the traffic counters
//     the pipeline reports).
//  3. Rank 0 writes MANIFEST.json — stage, completed-stage list, options
//     fingerprint, reads checksum, per-rank hashes, accumulated traffic
//     totals — via the same temp+fsync+rename dance. The manifest rename is
//     the commit point: a stage dir without MANIFEST.json is garbage from an
//     interrupted attempt and LatestCheckpoint ignores it.
//
// LoadCheckpoint inverts the process with a two-phase protocol that can
// never hang on a corrupt file: every rank first reads, hash-verifies and
// decodes its file locally, then all ranks agree on success with one control
// allreduce; only when every rank loaded cleanly do they run the collective
// state rebuild (the grid exchange). A bad file surfaces as an error naming
// the rank and the file on every process.

// CheckpointSchema identifies the on-disk checkpoint layout version. v2
// switched the embedded options fingerprint from the full option set to the
// prefix through the checkpointed stage (FingerprintThrough), so a
// post-Alignment checkpoint resumes under different TR parameters — the
// sweep-reuse semantics the artifact cache is built on.
const CheckpointSchema = "elba/checkpoint/v2"

// ckptSchema is the per-rank file's schema number (bumped with ckptRank).
const ckptSchema uint32 = 2

// CheckpointManifestName is the per-stage commit file written by rank 0.
const CheckpointManifestName = "MANIFEST.json"

// CheckpointManifest is the committed description of one stage checkpoint.
type CheckpointManifest struct {
	Schema        string   `json:"schema"`
	Stage         string   `json:"stage"`
	Done          []string `json:"done"`
	P             int      `json:"p"`
	Fingerprint   string   `json:"options_fingerprint"`
	ReadsChecksum string   `json:"reads_checksum"`
	RankHashes    []string `json:"rank_hashes"` // sha256 of rank-<r>.ckpt, world-rank order
	CommBytes     int64    `json:"comm_bytes"`  // chain totals through Stage
	CommMsgs      int64    `json:"comm_msgs"`
	WallNS        int64    `json:"wall_ns"`
}

// FingerprintThrough returns a stable hex digest of the algorithmic options
// the stage prefix ending at `stage` (inclusive) depends on. Each option
// enters the digest at the first stage that consumes it:
//
//	FastaReader    P (the grid shape every distributed artifact is laid out on)
//	CountKmer      K, ReliableLow, ReliableHigh
//	DetectOverlap  — (pure SpGEMM over CountKmer's A matrix)
//	Alignment      AlignBackend, XDrop, MinOverlap, MinScoreFrac, MaxOverhang
//	TrReduction    TRFuzz, TRMaxIter
//	ExtractContig  PackSeqComm
//
// Two uses share this one implementation: a checkpoint committed after a
// stage embeds the prefix through that stage, so LoadCheckpoint accepts a
// resuming engine whose options differ only downstream of the resume point
// (the TR-parameter sweep); and the serve-layer artifact cache keys entries
// by (reads checksum, prefix through the cached stage) so sweep jobs reuse
// one alignment. Plumbing and observability knobs (Threads, Async,
// Transport, Trace, Metrics, the checkpoint settings themselves) never enter
// any prefix: they are result-invariant by the pipeline's standing
// equivalences. Unknown stage names panic — callers pass stage constants or
// names validated against StageNames.
func (o Options) FingerprintThrough(stage string) string {
	idx := slices.Index(StageNames(), stage)
	if idx < 0 {
		panic(fmt.Sprintf("pipeline: FingerprintThrough(%q): unknown stage", stage))
	}
	backend := o.AlignBackend
	if backend == "" {
		backend = BackendXDrop
	}
	h := sha256.New()
	fmt.Fprintf(h, "elba/options/v2 through=%s p=%d", stage, o.P)
	if idx >= 1 { // CountKmer
		fmt.Fprintf(h, " k=%d rlow=%d rhigh=%d", o.K, o.ReliableLow, o.ReliableHigh)
	}
	if idx >= 3 { // Alignment
		fmt.Fprintf(h, " backend=%s xdrop=%d minov=%d minfrac=%g maxovh=%d",
			backend, o.XDrop, o.MinOverlap, o.MinScoreFrac, o.MaxOverhang)
	}
	if idx >= 4 { // TrReduction
		fmt.Fprintf(h, " trfuzz=%d trmaxiter=%d", o.TRFuzz, o.TRMaxIter)
	}
	if idx >= 5 { // ExtractContig
		fmt.Fprintf(h, " packseq=%t", o.PackSeqComm)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint digests the full algorithmic option set — the prefix through
// the final stage. Two option values with equal fingerprints produce
// bit-identical contigs on the same reads.
func (o Options) Fingerprint() string { return o.FingerprintThrough(StageExtractContig) }

// ckptRank is one rank's serialized artifact state: a single wire frame.
// Distributed matrices are flattened to dims + the rank's local triples (the
// block geometry is a pure function of grid position and dims, rebuilt on
// load); pointers never cross the codec. Only the fields downstream stages
// still consume are populated — see rankCheckpoint.
type ckptRank struct {
	Schema      uint32
	Rank, P     int32
	Fingerprint string
	Stage       string
	Timers      []trace.Record

	HasOverlap     bool
	OvNumReads     int64
	OvNumKmers     int64
	OvCandPairs    int64
	OvKeptOverlaps int64
	OvContained    []int32

	HasKmers        bool
	KmerK           int32
	KmerNumCols     int32
	KmerOccurrences int64
	KmerTriples     []kmer.ATriple

	HasCands    bool
	CandNR      int32
	CandNC      int32
	CandTriples []spmat.Triple[overlap.Seeds]

	HasR     bool
	RNR, RNC int32
	RTriples []spmat.Triple[bidir.Aln]

	HasSG      bool
	SGNR, SGNC int32
	SGTriples  []spmat.Triple[bidir.Edge]

	TRIterations   int64
	TREdgesRemoved int64
	TRProducts     int64
}

// rankFile names rank r's checkpoint file within a stage dir.
func rankFile(rank int) string { return fmt.Sprintf("rank-%d.ckpt", rank) }

// rankCheckpoint snapshots rank's state for the current resume point. Fields
// no downstream stage consumes are dropped — the same liveness the stage
// graph's Deps encode: Kmers feed only DetectOverlap, Candidates only
// Alignment, R only TrReduction (which rederives the string graph from it),
// and after TrReduction the reduced StringGraph plus the replicated Overlap
// counters carry everything ExtractContig needs.
func (a *Artifacts) rankCheckpoint(rank int) ckptRank {
	rs := a.Ranks[rank]
	has := func(stage string) bool { return slices.Contains(a.done, stage) }
	ck := ckptRank{
		Schema: ckptSchema, Rank: int32(rank), P: int32(a.Opt.P),
		Fingerprint: a.Opt.FingerprintThrough(a.Stage()), Stage: a.Stage(),
		Timers: rs.Timers.Records(),
	}
	if rs.Overlap != nil {
		ck.HasOverlap = true
		ck.OvNumReads = int64(rs.Overlap.NumReads)
		ck.OvNumKmers = int64(rs.Overlap.NumKmers)
		ck.OvCandPairs = rs.Overlap.CandidatePairs
		ck.OvKeptOverlaps = rs.Overlap.KeptOverlaps
		ck.OvContained = rs.Overlap.Contained
	}
	if has(StageCountKmer) && !has(StageDetectOverlap) {
		ck.HasKmers = true
		ck.KmerK = int32(rs.Kmers.K)
		ck.KmerNumCols = int32(rs.Kmers.NumCols)
		ck.KmerOccurrences = rs.Kmers.Occurrences
		ck.KmerTriples = rs.Kmers.Triples
	}
	if has(StageDetectOverlap) && !has(StageAlignment) {
		ck.HasCands = true
		ck.CandNR, ck.CandNC = rs.Candidates.NR, rs.Candidates.NC
		ck.CandTriples = rs.Candidates.Local.Ts
	}
	if has(StageAlignment) && !has(StageTrReduction) {
		ck.HasR = true
		ck.RNR, ck.RNC = rs.Overlap.R.NR, rs.Overlap.R.NC
		ck.RTriples = rs.Overlap.R.Local.Ts
	}
	if has(StageTrReduction) {
		ck.HasSG = true
		ck.SGNR, ck.SGNC = rs.StringGraph.NR, rs.StringGraph.NC
		ck.SGTriples = rs.StringGraph.Local.Ts
		ck.TRIterations = int64(rs.TRStats.Iterations)
		ck.TREdgesRemoved = rs.TRStats.EdgesRemoved
		ck.TRProducts = rs.TRStats.Products
	}
	return ck
}

// installRank writes a decoded checkpoint into rs. The caller has already
// rebuilt rs.Grid and rs.Store (the only artifact fields whose construction
// communicates).
func installRank(rs *RankState, ck *ckptRank) {
	rs.Timers = trace.FromRecords(ck.Timers)
	if ck.HasOverlap {
		rs.Overlap = &overlap.Result{
			NumReads:       int(ck.OvNumReads),
			NumKmers:       int(ck.OvNumKmers),
			CandidatePairs: ck.OvCandPairs,
			KeptOverlaps:   ck.OvKeptOverlaps,
			Contained:      ck.OvContained,
		}
	}
	if ck.HasKmers {
		rs.Kmers = &kmer.Result{
			K: int(ck.KmerK), NumCols: int(ck.KmerNumCols),
			Triples: ck.KmerTriples, Occurrences: ck.KmerOccurrences,
		}
	}
	if ck.HasCands {
		rs.Candidates = spmat.FromLocalTriples(rs.Grid, ck.CandNR, ck.CandNC, ck.CandTriples)
	}
	if ck.HasR {
		rs.Overlap.R = spmat.FromLocalTriples(rs.Grid, ck.RNR, ck.RNC, ck.RTriples)
	}
	if ck.HasSG {
		rs.StringGraph = spmat.FromLocalTriples(rs.Grid, ck.SGNR, ck.SGNC, ck.SGTriples)
		rs.TRStats = tr.Stats{
			Iterations:   int(ck.TRIterations),
			EdgesRemoved: ck.TREdgesRemoved,
			Products:     ck.TRProducts,
		}
	}
}

// checkpointAfter reports whether the engine checkpoints after this stage.
// The final stage never checkpoints: its output is the run result.
func (e *Engine) checkpointAfter(stage string) bool {
	if e.opt.CheckpointDir == "" || stage == StageExtractContig {
		return false
	}
	switch e.opt.CheckpointEvery {
	case "", "all":
		return true
	}
	return e.opt.CheckpointEvery == stage
}

// writeCheckpoint persists the artifacts' current resume point (steps 1–3 of
// the commit protocol above). Called by resume between a stage's completion
// and its observers, on every process of the world; collective on the
// control plane.
func (e *Engine) writeCheckpoint(ctx context.Context, a *Artifacts) error {
	stage := a.Stage()
	stageDir := filepath.Join(e.opt.CheckpointDir, stage)
	if err := os.MkdirAll(stageDir, 0o777); err != nil {
		return fmt.Errorf("pipeline: checkpoint after %q: %w", stage, err)
	}
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		errs = append(errs, err)
	}
	runErr := a.World.RunCtx(ctx, func(c *mpi.Comm) {
		rank := c.Rank()
		frame := wire.MarshalOne(a.rankCheckpoint(rank))
		sum := sha256.Sum256(frame)
		hash := hex.EncodeToString(sum[:])
		path := filepath.Join(stageDir, rankFile(rank))
		if err := writeFileAtomic(path, frame); err != nil {
			fail(fmt.Errorf("pipeline: checkpoint rank %d: %w", rank, err))
			hash = "" // rank 0 sees the hole and never commits the manifest
		}
		ctl := a.ctl[rank]
		parts := mpi.Gatherv(ctl, 0, []byte(hash))
		if ctl.Rank() != 0 {
			return
		}
		hashes := make([]string, e.opt.P)
		for r, part := range parts {
			hashes[ctl.WorldRank(r)] = string(part)
		}
		for r, h := range hashes {
			if h == "" {
				fail(fmt.Errorf("pipeline: checkpoint after %q not committed: rank %d reported no content hash (its write failed; see that process's log)", stage, r))
				return
			}
		}
		man := CheckpointManifest{
			Schema: CheckpointSchema, Stage: stage,
			Done: append([]string(nil), a.done...),
			P:    e.opt.P, Fingerprint: e.opt.FingerprintThrough(stage),
			ReadsChecksum: obs.ChecksumSeqs(a.Reads),
			RankHashes:    hashes,
			CommBytes:     a.commBytes, CommMsgs: a.commMsgs,
			WallNS: int64(a.wall),
		}
		blob, err := json.MarshalIndent(man, "", "  ")
		if err != nil {
			fail(fmt.Errorf("pipeline: checkpoint manifest: %w", err))
			return
		}
		if err := writeFileAtomic(filepath.Join(stageDir, CheckpointManifestName), append(blob, '\n')); err != nil {
			fail(fmt.Errorf("pipeline: committing checkpoint manifest: %w", err))
		}
	})
	if runErr != nil {
		return e.abortError(stage, a, runErr)
	}
	return errors.Join(errs...)
}

// LatestCheckpoint scans a checkpoint dir for the most advanced committed
// stage checkpoint (the longest completed-stage list whose MANIFEST.json
// exists) and returns its stage dir and manifest. Passing a stage dir
// itself (one directly containing MANIFEST.json) selects that stage — the
// operator override for resuming an earlier stage on purpose. A missing or
// empty dir — or one holding only uncommitted stage dirs — returns
// ("", nil, nil): no checkpoint, not an error, so a supervisor can ask
// before the first commit.
func LatestCheckpoint(dir string) (stageDir string, man *CheckpointManifest, err error) {
	if blob, err := os.ReadFile(filepath.Join(dir, CheckpointManifestName)); err == nil {
		var m CheckpointManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return "", nil, fmt.Errorf("pipeline: checkpoint manifest %s: %w", filepath.Join(dir, CheckpointManifestName), err)
		}
		if m.Schema != CheckpointSchema {
			return "", nil, fmt.Errorf("pipeline: checkpoint manifest %s: schema %q (this build reads %q)", filepath.Join(dir, CheckpointManifestName), m.Schema, CheckpointSchema)
		}
		return dir, &m, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", nil, nil
		}
		return "", nil, fmt.Errorf("pipeline: scanning checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		mp := filepath.Join(dir, ent.Name(), CheckpointManifestName)
		blob, err := os.ReadFile(mp)
		if err != nil {
			continue // uncommitted stage dir (interrupted attempt): ignore
		}
		var m CheckpointManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return "", nil, fmt.Errorf("pipeline: checkpoint manifest %s: %w", mp, err)
		}
		if m.Schema != CheckpointSchema {
			return "", nil, fmt.Errorf("pipeline: checkpoint manifest %s: schema %q (this build reads %q)", mp, m.Schema, CheckpointSchema)
		}
		if man == nil || len(m.Done) > len(man.Done) {
			man, stageDir = &m, filepath.Join(dir, ent.Name())
		}
	}
	return stageDir, man, nil
}

// LoadCheckpoint builds Artifacts from the most advanced committed
// checkpoint under dir, on a fresh world of this engine's options: the
// resume point a crashed run left behind. reads must be the original input
// (verified against the manifest's checksum, like the options fingerprint —
// resuming under different parameters or data is refused, not silently
// wrong). The returned artifacts continue through Engine.ResumeFrom exactly
// like an in-memory snapshot, with bit-identical contigs and equal traffic
// counters to an undisturbed run.
//
// In a multi-process world every process must call LoadCheckpoint (the state
// rebuild communicates); each loads only its local ranks' files. A corrupt
// or truncated rank file fails the load everywhere, with the owning process
// naming the rank and file.
func (e *Engine) LoadCheckpoint(ctx context.Context, reads [][]byte, dir string) (*Artifacts, error) {
	stageDir, man, err := LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		return nil, fmt.Errorf("pipeline: no committed checkpoint under %s", dir)
	}
	if man.P != e.opt.P {
		return nil, fmt.Errorf("pipeline: checkpoint %s holds a %d-rank world; engine P = %d", stageDir, man.P, e.opt.P)
	}
	if !slices.Contains(StageNames(), man.Stage) {
		return nil, fmt.Errorf("pipeline: checkpoint manifest %s names unknown stage %q", stageDir, man.Stage)
	}
	// The manifest carries the option prefix through its stage: options that
	// only stages downstream of the resume point consume (the TR sweep
	// parameters, for a post-Alignment checkpoint) may differ freely.
	if fp := e.opt.FingerprintThrough(man.Stage); man.Fingerprint != fp {
		return nil, fmt.Errorf("pipeline: checkpoint %s was written under different algorithmic options (fingerprint %.12s…, this engine %.12s… through %s); refusing to resume", stageDir, man.Fingerprint, fp, man.Stage)
	}
	if rc := obs.ChecksumSeqs(reads); man.ReadsChecksum != rc {
		return nil, fmt.Errorf("pipeline: checkpoint %s was written for a different read set (checksum %.12s…, these reads %.12s…); refusing to resume", stageDir, man.ReadsChecksum, rc)
	}
	if len(man.RankHashes) != e.opt.P {
		return nil, fmt.Errorf("pipeline: checkpoint manifest %s lists %d rank hashes, want %d", stageDir, len(man.RankHashes), e.opt.P)
	}
	a, err := newArtifacts(e.opt, reads)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var errs []error
	var peerFail atomic.Bool
	runErr := a.World.RunCtx(ctx, func(c *mpi.Comm) {
		rank := c.Rank()
		ck, err := readRankCheckpoint(filepath.Join(stageDir, rankFile(rank)), man, rank, e.opt)
		flag := []int64{0}
		if err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			flag[0] = 1
		}
		// Phase 1 barrier: every rank — including ones whose file is bad —
		// joins this agreement, so a corrupt checkpoint can fail the load
		// without wedging a collective. Phase 2 communicates only when all
		// ranks decoded cleanly.
		bad := mpi.AllreduceSlice(a.ctl[rank], flag, func(x, y int64) int64 { return x + y })
		if bad[0] > 0 {
			peerFail.Store(true)
			return
		}
		rs := a.Ranks[rank]
		rs.Grid = grid.New(rs.Comm)
		rs.Store = fasta.FromGlobal(rs.Comm, a.Reads)
		installRank(rs, ck)
		rs.Comm.Metrics().Gauge("pipeline.reads_local").Set(int64(rs.Store.Hi - rs.Store.Lo))
	})
	if runErr != nil {
		a.Close()
		return nil, fmt.Errorf("pipeline: loading checkpoint %s: %w", stageDir, runErr)
	}
	if len(errs) > 0 || peerFail.Load() {
		a.Close()
		if len(errs) > 0 {
			return nil, errors.Join(errs...)
		}
		return nil, fmt.Errorf("pipeline: checkpoint %s: a peer process failed to load its rank files (see its log)", stageDir)
	}
	a.done = append([]string(nil), man.Done...)
	a.commBytes, a.commMsgs = man.CommBytes, man.CommMsgs
	a.wall = time.Duration(man.WallNS)
	return a, nil
}

// readRankCheckpoint loads and verifies one rank's file: content hash
// against the committed manifest first (so truncation or bit rot is caught
// before the codec sees the bytes), then the decoded self-description
// against the resuming engine. Every failure names the rank and the file.
func readRankCheckpoint(path string, man *CheckpointManifest, rank int, opt Options) (*ckptRank, error) {
	frame, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: reading %s: %w", rank, path, err)
	}
	sum := sha256.Sum256(frame)
	if got := hex.EncodeToString(sum[:]); got != man.RankHashes[rank] {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: %s is corrupt or truncated: content hash %.12s… does not match the committed manifest (%.12s…)",
			rank, path, got, man.RankHashes[rank])
	}
	ck, err := wire.UnmarshalOne[ckptRank](frame)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: decoding %s: %w", rank, path, err)
	}
	if ck.Schema != ckptSchema {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: %s has schema %d (this build reads %d)", rank, path, ck.Schema, ckptSchema)
	}
	if int(ck.Rank) != rank || int(ck.P) != opt.P {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: %s describes rank %d of a %d-rank world (want rank %d of %d)",
			rank, path, ck.Rank, ck.P, rank, opt.P)
	}
	if ck.Stage != man.Stage {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: %s snapshots stage %q, manifest committed %q",
			rank, path, ck.Stage, man.Stage)
	}
	if fp := opt.FingerprintThrough(man.Stage); ck.Fingerprint != fp {
		return nil, fmt.Errorf("pipeline: checkpoint rank %d: %s carries options fingerprint %.12s…, engine has %.12s… through %s",
			rank, path, ck.Fingerprint, fp, man.Stage)
	}
	return &ck, nil
}

// writeFileAtomic writes data crash-consistently: temp file in the target's
// dir, fsync, rename. Readers see either the old file or the complete new
// one, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself (the commit point must survive power loss).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
