package pipeline

import "repro/internal/obs"

// Manifest builds the machine-readable run record (RUN.json) from a
// completed run's output and the options it ran under: the full option set,
// per-stage wall/work/traffic rows with the overlap/exposed split, the
// run-wide communication totals, a contig checksum that identifies the
// assembly bit-exactly, and — when the run collected metrics — the
// deterministic cross-rank metric merge. The result satisfies
// obs.(*Manifest).Verify; benchguard's -manifest mode gates on it.
func (o *Output) Manifest(opt Options) *obs.Manifest {
	// Observability handles are run plumbing, not algorithmic parameters:
	// scrub them so the recorded options are plain data and two runs that
	// differ only in tracing produce comparable manifests.
	scrubbed := opt
	scrubbed.Trace, scrubbed.Metrics = nil, nil
	m := &obs.Manifest{
		Schema:  obs.ManifestSchema,
		Options: scrubbed,
		P:       o.Stats.P,
		Threads: o.Stats.Threads,
		WallNS:  int64(o.Stats.WallTime),
		Comm:    obs.CommTotals{Bytes: o.Stats.CommBytes, Msgs: o.Stats.CommMsgs},
	}
	if t := o.Stats.Timers; t != nil {
		for _, name := range t.OrderedNames() {
			e := t.Get(name)
			m.Stages = append(m.Stages, obs.StageStats{
				Name:         name,
				WallNS:       int64(e.MaxDur),
				Work:         e.SumWork,
				Bytes:        e.SumBytes,
				Msgs:         e.SumMsgs,
				OverlapBytes: e.SumOverlapBytes,
				OverlapMsgs:  e.SumOverlapMsgs,
				ExposedBytes: e.SumExposedBytes(),
				ExposedMsgs:  e.SumExposedMsgs(),
			})
		}
	}
	seqs := make([][]byte, len(o.Contigs))
	var bases int64
	for i, c := range o.Contigs {
		seqs[i] = c.Seq
		bases += int64(len(c.Seq))
	}
	m.Contigs = obs.ContigSummary{Count: len(o.Contigs), TotalBases: bases}
	if len(seqs) > 0 {
		m.Contigs.Checksum = obs.ChecksumSeqs(seqs)
	}
	m.Metrics = opt.Metrics.Merged()
	return m
}
