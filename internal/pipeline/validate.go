package pipeline

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"repro/internal/kmer"
)

// Validate checks every option in one pass and reports all violations
// together, each error naming its field — so a caller who got three
// parameters wrong fixes them in one round trip instead of three. It is the
// single gate in front of every execution path: Run, Engine.Plan and the
// elba facade all call it before any rank starts, which is why the deep
// kmer/grid code may simply panic on impossible values.
func (o Options) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, fmt.Errorf("pipeline: Options.%s %s", field, fmt.Sprintf(format, args...)))
	}
	if o.P < 1 {
		bad("P", "= %d: must be at least 1", o.P)
	} else if d := isqrt(o.P); d*d != o.P {
		bad("P", "= %d: not a perfect square (the paper's √P×√P grid requirement)", o.P)
	}
	if o.K < 1 || o.K > kmer.MaxK {
		bad("K", "= %d: out of range 1..%d (2 bits per base in a 64-bit word)", o.K, kmer.MaxK)
	}
	switch o.AlignBackend {
	case "", BackendXDrop, BackendWFA:
	default:
		bad("AlignBackend", "= %q: unknown backend (want %s)", o.AlignBackend, strings.Join(AlignBackends(), "|"))
	}
	switch o.Transport {
	case "", TransportInproc, TransportTCP:
	case TransportProc:
		if o.NewWorld == nil {
			bad("Transport", "= %q: needs the NewWorld endpoint hook (run via cmd/elba -transport proc)", o.Transport)
		}
	default:
		bad("Transport", "= %q: unknown transport (want %s)", o.Transport, strings.Join(Transports(), "|"))
	}
	if o.Threads < 0 {
		bad("Threads", "= %d: must be ≥ 0 (0 = auto split of GOMAXPROCS)", o.Threads)
	}
	if o.XDrop < 0 {
		bad("XDrop", "= %d: threshold must be ≥ 0", o.XDrop)
	}
	if o.ReliableLow < 0 {
		bad("ReliableLow", "= %d: threshold must be ≥ 0", o.ReliableLow)
	}
	if o.ReliableHigh < 0 {
		bad("ReliableHigh", "= %d: threshold must be ≥ 0", o.ReliableHigh)
	} else if o.ReliableHigh < o.ReliableLow {
		bad("ReliableHigh", "= %d: below ReliableLow = %d (selects no reliable k-mers)", o.ReliableHigh, o.ReliableLow)
	}
	if o.MinOverlap < 0 {
		bad("MinOverlap", "= %d: threshold must be ≥ 0", o.MinOverlap)
	}
	if o.MinScoreFrac < 0 {
		bad("MinScoreFrac", "= %g: threshold must be ≥ 0", o.MinScoreFrac)
	}
	if o.MaxOverhang < 0 {
		bad("MaxOverhang", "= %d: threshold must be ≥ 0", o.MaxOverhang)
	}
	if o.TRFuzz < 0 {
		bad("TRFuzz", "= %d: threshold must be ≥ 0", o.TRFuzz)
	}
	if o.TRMaxIter < 0 {
		bad("TRMaxIter", "= %d: must be ≥ 0", o.TRMaxIter)
	}
	switch o.CheckpointEvery {
	case "", "all":
	case StageExtractContig:
		bad("CheckpointEvery", "= %q: the final stage is never checkpointed (its output is the result; use -manifest/-contigs)", o.CheckpointEvery)
	default:
		if !slices.Contains(StageNames(), o.CheckpointEvery) {
			bad("CheckpointEvery", "= %q: unknown stage (want all|%s)", o.CheckpointEvery, strings.Join(StageNames()[:len(StageNames())-1], "|"))
		}
	}
	if o.CheckpointEvery != "" && o.CheckpointDir == "" {
		bad("CheckpointEvery", "= %q: set without CheckpointDir", o.CheckpointEvery)
	}
	if o.Trace != nil && o.Trace.Ranks() < o.P {
		bad("Trace", "covers %d ranks: needs at least P = %d", o.Trace.Ranks(), o.P)
	}
	if o.Metrics != nil && o.Metrics.Ranks() < o.P {
		bad("Metrics", "covers %d ranks: needs at least P = %d", o.Metrics.Ranks(), o.P)
	}
	return errors.Join(errs...)
}
