package pipeline

import (
	"bytes"
	"strings"
	"testing"
)

// assertSameRun fails unless the two outputs carry byte-identical contigs and
// equal traffic counters — the cross-transport equivalence contract.
func assertSameRun(t *testing.T, ref, got *Output, label string) {
	t.Helper()
	assertSameContigs(t, ref, got, label)
	if ref.Stats.CommBytes != got.Stats.CommBytes {
		t.Fatalf("%s: comm bytes differ: %d vs %d", label, ref.Stats.CommBytes, got.Stats.CommBytes)
	}
	if ref.Stats.CommMsgs != got.Stats.CommMsgs {
		t.Fatalf("%s: comm messages differ: %d vs %d", label, ref.Stats.CommMsgs, got.Stats.CommMsgs)
	}
}

// TestTransportEquivalence extends the sync/async equivalence gate with the
// transport dimension: for every (transport, async) combination the contigs
// must be bit-identical to the in-process baseline and the byte/message
// counters must match exactly. The TCP rows run the full pipeline over real
// loopback sockets, so perf numbers recorded on either transport describe the
// same computation.
func TestTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline transport matrix in -short mode (see TestTCPTransportSmoke)")
	}
	reads := testReads(18000, 617)
	const p = 4
	base := DefaultOptions(p)
	base.K = 21
	base.XDrop = 25

	var ref *Output
	for _, transport := range Transports() {
		for _, async := range []bool{false, true} {
			label := transport + "/async=" + map[bool]string{false: "off", true: "on"}[async]
			opt := base
			opt.Transport = transport
			opt.Async = async
			out, err := Run(reads, opt)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(out.Contigs) == 0 {
				t.Fatalf("%s: no contigs", label)
			}
			if ref == nil {
				ref = out
				continue
			}
			assertSameRun(t, ref, out, label)
		}
	}
}

// TestTCPTransportSmoke keeps a socket-backed assembly in the -short suite:
// a small run over the TCP transport must finish, emit contigs, and agree
// with the in-process run on contigs and counters.
func TestTCPTransportSmoke(t *testing.T) {
	reads := testReads(8000, 619)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25

	inproc, err := Run(reads, opt)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	opt.Transport = TransportTCP
	tcpOut, err := Run(reads, opt)
	if err != nil {
		t.Fatalf("tcp: %v", err)
	}
	if len(tcpOut.Contigs) == 0 {
		t.Fatal("tcp run produced no contigs")
	}
	assertSameRun(t, inproc, tcpOut, "tcp vs inproc")

	var total int
	for _, c := range tcpOut.Contigs {
		total += len(c.Seq)
	}
	if total == 0 {
		t.Fatal("tcp contigs are empty")
	}
	if !bytes.ContainsAny(tcpOut.Contigs[0].Seq, "ACGT") {
		t.Fatalf("tcp contig 0 is not a DNA sequence: %q", tcpOut.Contigs[0].Seq[:min(16, len(tcpOut.Contigs[0].Seq))])
	}
}

// TestTransportValidation pins the Options seam: unknown transports are
// rejected up front, and the proc transport refuses to run without the
// launcher's endpoint hook instead of silently falling back to inproc.
func TestTransportValidation(t *testing.T) {
	opt := DefaultOptions(4)
	opt.Transport = "carrier-pigeon"
	if _, err := Run(nil, opt); err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("unknown transport: err = %v, want mention of the bad name", err)
	}
	opt.Transport = TransportProc
	if _, err := Run(nil, opt); err == nil || !strings.Contains(err.Error(), "cmd/elba -transport proc") {
		t.Fatalf("proc without NewWorld hook: err = %v, want pointer at the launcher", err)
	}
}
