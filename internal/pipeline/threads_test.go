package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/readsim"
)

// TestThreadsDeterminism asserts the hybrid-parallelism contract: for both
// alignment backends, a run with 8 intra-rank workers produces byte-identical
// contigs AND identical per-backend work counters to the single-worker run.
// Work totals are schedule-invariant because every candidate pair is aligned
// exactly once by exactly one worker's aligner.
func TestThreadsDeterminism(t *testing.T) {
	size := 30000
	if testing.Short() {
		// Keep the race-detector CI lap fast; the full size runs in tier-1.
		size = 10000
	}
	ds := readsim.Generate(readsim.CElegansLike, size, 91)
	reads := readsim.Seqs(ds.Reads)
	for _, backend := range AlignBackends() {
		t.Run(backend, func(t *testing.T) {
			runAt := func(threads int) *Output {
				opt := PresetOptions(readsim.CElegansLike, 4)
				opt.AlignBackend = backend
				opt.Threads = threads
				out, err := Run(reads, opt)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			ref := runAt(1)
			if len(ref.Contigs) == 0 {
				t.Fatal("reference run produced no contigs")
			}
			got := runAt(8)
			if got.Stats.Threads != 8 || ref.Stats.Threads != 1 {
				t.Fatalf("threads not plumbed: ref=%d got=%d", ref.Stats.Threads, got.Stats.Threads)
			}
			if len(got.Contigs) != len(ref.Contigs) {
				t.Fatalf("contig count: %d at T=8 vs %d at T=1", len(got.Contigs), len(ref.Contigs))
			}
			for i := range ref.Contigs {
				if !bytes.Equal(ref.Contigs[i].Seq, got.Contigs[i].Seq) {
					t.Fatalf("contig %d differs between T=1 and T=8", i)
				}
			}
			for _, stage := range []string{"CountKmer", "DetectOverlap", "Alignment"} {
				w1 := ref.Stats.Timers.Get(stage).SumWork
				w8 := got.Stats.Timers.Get(stage).SumWork
				if w1 != w8 {
					t.Fatalf("%s work counter: %d at T=1 vs %d at T=8", stage, w1, w8)
				}
				if w1 <= 0 {
					t.Fatalf("%s work counter empty", stage)
				}
			}
		})
	}
}

// TestEffectiveThreadsResolution pins the auto-split rule: explicit values
// win, otherwise GOMAXPROCS/P clamped to ≥ 1.
func TestEffectiveThreadsResolution(t *testing.T) {
	if got := (Options{P: 4, Threads: 3}).EffectiveThreads(); got != 3 {
		t.Fatalf("explicit Threads=3 resolved to %d", got)
	}
	if got := (Options{P: 1 << 20}).EffectiveThreads(); got != 1 {
		t.Fatalf("huge P must clamp to 1 worker, got %d", got)
	}
	if got := (Options{}).EffectiveThreads(); got < 1 {
		t.Fatalf("zero options resolved to %d workers", got)
	}
}
