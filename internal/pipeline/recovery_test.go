package pipeline

// Supervised-recovery suite: the crash half of the durability story. A rank
// dies mid-run in a distributed job, the survivors abort with the attributed
// error, and a fresh worker group resumed from the checkpoint the doomed run
// left behind must finish with contigs and traffic counters bit-identical to
// an undisturbed run — the standing invariant the chaos CI job enforces on
// the real process launcher.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/mpi/transport/tcp"
)

// TestFaultInjectionHookFiresInEngine pins the engine-side injection seam:
// an armed fault fires exactly once, at the named stage, on the named rank's
// engine goroutine, and the run is otherwise unperturbed (the test action
// replaces the real kill). This is the in-process proof that ELBA_FAULT
// specs reach real stage boundaries.
func TestFaultInjectionHookFiresInEngine(t *testing.T) {
	type hit struct {
		mode  string
		stage string
	}
	var (
		mu   sync.Mutex
		hits []hit
	)
	faultinject.Arm(&faultinject.Fault{Mode: faultinject.ModeKill, Rank: 2, Stage: StageAlignment, N: 1})
	faultinject.SetAction(func(f *faultinject.Fault) {
		mu.Lock()
		hits = append(hits, hit{f.Mode, f.Stage})
		mu.Unlock()
	})
	defer func() {
		faultinject.Arm(nil)
		faultinject.SetAction(nil)
	}()

	reads := testReads(5000, 677)
	opt := DefaultOptions(4)
	opt.K = 21
	opt.XDrop = 25
	out, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hits) != 1 || hits[0] != (hit{faultinject.ModeKill, StageAlignment}) {
		t.Fatalf("fault fired %+v, want exactly once at %s", hits, StageAlignment)
	}
}

// TestRecoveryFromCheckpointAfterRankLoss is the full crash-and-recover
// equivalence over a simulated 4-process distributed job:
//
//  1. a checkpointed run loses rank 2 as Alignment starts — every process
//     aborts with the PR 8 attributed error naming the dead rank and the
//     restart point;
//  2. the most advanced committed checkpoint is DetectOverlap's (every rank
//     passed its commit before the kill);
//  3. a completely fresh worker group — new rendezvous, new worlds, exactly
//     what the proc supervisor relaunches — resumes from that checkpoint and
//     finishes with contigs and traffic counters bit-identical to an
//     undisturbed single-process run.
func TestRecoveryFromCheckpointAfterRankLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed recovery run in -short mode")
	}
	reads := testReads(8000, 673)
	const p = 4
	base := DefaultOptions(p)
	base.K = 21
	base.XDrop = 25
	ref, err := Run(reads, base)
	if err != nil {
		t.Fatalf("undisturbed reference: %v", err)
	}

	dir := t.TempDir()
	ck := base
	ck.CheckpointDir = dir // CheckpointEvery "": every stage boundary

	// distOptions wires rank r of a distributed job, capturing its world so
	// the kill below can use the documented death path (Cancel aborts the
	// endpoint — how a dying worker process appears to its peers).
	distOptions := func(rdv string, r int, w **mpi.World) Options {
		opt := ck
		opt.Transport = TransportTCP
		opt.NewWorld = func(np int) (*mpi.World, error) {
			ep, err := tcp.Join(rdv, r, np, tcp.JoinConfig{Listen: "127.0.0.1:0"})
			if err != nil {
				return nil, err
			}
			world := mpi.NewWorldTransport(ep)
			if w != nil {
				*w = world
			}
			return world, nil
		}
		return opt
	}

	// Doomed attempt: rank 2 dies only once every engine has reached
	// Alignment's StageStart — i.e. after all four committed the
	// DetectOverlap checkpoint — so the surviving commit is deterministic.
	rdv := startTestRendezvous(t, p)
	var atAlignment sync.WaitGroup
	atAlignment.Add(p)
	attemptErrs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var world *mpi.World
			obs := Observer{StageStart: func(stage string, _, _ int) {
				if stage != StageAlignment {
					return
				}
				atAlignment.Done()
				if r == 2 {
					atAlignment.Wait()
					world.Cancel(errors.New("injected fault: rank 2 killed"))
				}
			}}
			eng, err := Plan(distOptions(rdv, r, &world), obs)
			if err != nil {
				attemptErrs[r] = err
				return
			}
			_, attemptErrs[r] = eng.Run(context.Background(), reads)
		}(r)
	}
	wg.Wait()
	for r, err := range attemptErrs {
		if err == nil {
			t.Fatalf("rank %d survived the death of rank 2", r)
		}
	}
	var rf *transport.RankFailure
	if !errors.As(attemptErrs[0], &rf) || rf.Rank != 2 {
		t.Fatalf("rank 0's abort is not attributed to rank 2: %v", attemptErrs[0])
	}
	if !strings.Contains(attemptErrs[0].Error(), StageDetectOverlap) {
		t.Errorf("rank 0's abort does not name the restart point: %v", attemptErrs[0])
	}

	// The doomed run's legacy: a committed DetectOverlap checkpoint.
	stageDir, man, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Stage != StageDetectOverlap {
		t.Fatalf("latest committed checkpoint = %+v, want stage %s", man, StageDetectOverlap)
	}

	// Recovery: a fresh group loads the pinned commit and finishes — the
	// in-test replica of the supervisor's relaunch with ELBA_PROC_RESUME.
	rdv2 := startTestRendezvous(t, p)
	outs := make([]*Output, p)
	recErrs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recErrs[r] = func() error {
				eng, err := Plan(distOptions(rdv2, r, nil))
				if err != nil {
					return err
				}
				arts, err := eng.LoadCheckpoint(context.Background(), reads, stageDir)
				if err != nil {
					return err
				}
				defer arts.Close()
				fin, err := eng.ResumeFrom(context.Background(), arts, StageExtractContig)
				if err != nil {
					return err
				}
				outs[r], err = fin.Output()
				return err
			}()
		}(r)
	}
	wg.Wait()
	for r, err := range recErrs {
		if err != nil {
			t.Fatalf("recovery rank %d: %v", r, err)
		}
	}
	assertSameRun(t, ref, outs[0], "recovered run vs undisturbed")
	for r := 1; r < p; r++ {
		if outs[r].Stats.CommBytes != ref.Stats.CommBytes || outs[r].Stats.CommMsgs != ref.Stats.CommMsgs {
			t.Errorf("recovered rank %d counters (%d B, %d msgs) disagree with undisturbed (%d B, %d msgs)",
				r, outs[r].Stats.CommBytes, outs[r].Stats.CommMsgs, ref.Stats.CommBytes, ref.Stats.CommMsgs)
		}
	}
}
