package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = Bases[rng.Intn(4)]
	}
	return s
}

func TestPaperExample(t *testing.T) {
	// §2: "Given a string v = ATTCG, its reverse complement is v' = CGAAT".
	got := RevComp([]byte("ATTCG"))
	if string(got) != "CGAAT" {
		t.Fatalf("RevComp(ATTCG) = %s, want CGAAT", got)
	}
}

func TestComplementPairs(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for b, c := range pairs {
		if Complement(b) != c {
			t.Errorf("Complement(%c) = %c, want %c", b, Complement(b), c)
		}
		if Complement(b|0x20) != c {
			t.Errorf("lower-case complement broken for %c", b)
		}
	}
}

func TestCodeRoundTrip(t *testing.T) {
	for code := byte(0); code < 4; code++ {
		if Code(Base(code)) != code {
			t.Fatalf("code %d does not round-trip", code)
		}
	}
	if Code('N') != 0xFF || IsBase('N') {
		t.Fatal("N must not be a base")
	}
	if !IsBase('a') || Code('a') != 0 {
		t.Fatal("lower-case bases must code")
	}
}

func TestComplementCodeMatchesASCII(t *testing.T) {
	for code := byte(0); code < 4; code++ {
		if Base(ComplementCode(code)) != Complement(Base(code)) {
			t.Fatalf("code complement mismatch at %d", code)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, int(n))
		return bytes.Equal(RevComp(RevComp(s)), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRevCompInPlaceMatches(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, int(n))
		want := RevComp(s)
		cp := append([]byte(nil), s...)
		RevCompInPlace(cp)
		return bytes.Equal(cp, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRevCompRange(t *testing.T) {
	s := []byte("AACTGAAG")
	// Paper Fig 3: l1 = AACTGAAG, its reverse complement is CTTCAGTT.
	if got := RevCompRange(s, 0, len(s)-1); string(got) != "CTTCAGTT" {
		t.Fatalf("full-range revcomp = %s", got)
	}
	// l[j:i] with j>i — descending slice semantics: l1[7:4] on the original
	// read means revcomp of l1[4..7] = revcomp(GAAG) = CTTC.
	if got := RevCompRange(s, 4, 7); string(got) != "CTTC" {
		t.Fatalf("RevCompRange(4,7) = %s, want CTTC", got)
	}
	if got := RevCompRange(s, 5, 4); got != nil {
		t.Fatalf("inverted range must be empty, got %s", got)
	}
	// Single element.
	if got := RevCompRange(s, 2, 2); string(got) != "G" {
		t.Fatalf("single-base revcomp = %s, want G (complement of C)", got)
	}
}

func TestRevCompRangeMatchesFull(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, int(n%64)+2)
		lo := rng.Intn(len(s))
		hi := lo + rng.Intn(len(s)-lo)
		want := RevComp(s[lo : hi+1])
		got := RevCompRange(s, lo, hi)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValid(t *testing.T) {
	if !Valid([]byte("ACGTacgt")) {
		t.Fatal("ACGTacgt must be valid")
	}
	if Valid([]byte("ACGNT")) {
		t.Fatal("N must be invalid")
	}
	if !Valid(nil) {
		t.Fatal("empty must be valid")
	}
}

func TestRevCompIntoMatchesRevComp(t *testing.T) {
	var buf []byte
	for _, s := range [][]byte{nil, []byte("A"), []byte("ATTCG"), []byte("acgtNxACGT")} {
		buf = RevCompInto(buf, s)
		if want := RevComp(s); !bytes.Equal(buf, want) {
			t.Fatalf("RevCompInto(%q) = %q, want %q", s, buf, want)
		}
	}
	// The buffer is reused when large enough: shrinking input must not
	// leave stale bytes visible.
	buf = RevCompInto(buf, []byte("GGGGGGGG"))
	if buf = RevCompInto(buf, []byte("AT")); string(buf) != "AT" {
		t.Fatalf("reused buffer = %q, want AT", buf)
	}
}
