package dna

import "fmt"

// Packed is a 2-bit-per-base DNA sequence — the memory-reduction direction
// the paper lists as future work (§7). Packing read payloads quarters the
// volume of the read-sequence communication step.
type Packed struct {
	Bits []uint64 // 32 bases per word, first base in the low bits
	N    int      // number of bases
}

// Pack compresses an ACGT sequence; ok is false if seq contains any other
// byte (callers fall back to raw bytes).
func Pack(seq []byte) (Packed, bool) {
	p := Packed{Bits: make([]uint64, (len(seq)+31)/32), N: len(seq)}
	for i, b := range seq {
		c := Code(b)
		if c == 0xFF {
			return Packed{}, false
		}
		p.Bits[i/32] |= uint64(c) << (2 * uint(i%32))
	}
	return p, true
}

// At returns base i as an ASCII byte.
func (p Packed) At(i int) byte {
	if i < 0 || i >= p.N {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.N))
	}
	return Base(byte(p.Bits[i/32] >> (2 * uint(i%32)) & 3))
}

// Unpack expands back to ASCII.
func (p Packed) Unpack() []byte {
	out := make([]byte, p.N)
	for i := 0; i < p.N; i++ {
		out[i] = Base(byte(p.Bits[i/32] >> (2 * uint(i%32)) & 3))
	}
	return out
}

// PackAll packs a batch into one word stream (reads back-to-back, each
// starting on a word boundary for simple slicing); ok is false if any read
// has a non-ACGT byte.
func PackAll(seqs [][]byte) (words []uint64, ok bool) {
	for _, s := range seqs {
		p, valid := Pack(s)
		if !valid {
			return nil, false
		}
		words = append(words, p.Bits...)
	}
	return words, true
}

// UnpackAll reverses PackAll given the original lengths.
func UnpackAll(words []uint64, lens []int) [][]byte {
	out := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		nw := (n + 31) / 32
		p := Packed{Bits: words[off : off+nw], N: n}
		out[i] = p.Unpack()
		off += nw
	}
	return out
}

// PackedWords returns how many words PackAll uses for these lengths.
func PackedWords(lens []int) int {
	total := 0
	for _, n := range lens {
		total += (n + 31) / 32
	}
	return total
}
