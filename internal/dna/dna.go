// Package dna provides the DNA alphabet Σ = {A, C, G, T}, Watson–Crick
// complements, reverse complements and 2-bit base codes shared by the whole
// pipeline (paper §2).
package dna

// Bases in code order: code 0..3 = A, C, G, T. The complement of code b is
// 3-b, which is what makes the 2-bit k-mer reverse complement cheap.
const Bases = "ACGT"

// codeTab maps ASCII (upper or lower case) to the 2-bit base code, or 0xFF
// for non-bases.
var codeTab [256]byte

// compTab maps an ASCII base to its Watson–Crick complement.
var compTab [256]byte

func init() {
	for i := range codeTab {
		codeTab[i] = 0xFF
		compTab[i] = 'N'
	}
	set := func(b, c byte, code byte) {
		codeTab[b] = code
		codeTab[b|0x20] = code // lower case
		compTab[b] = c
		compTab[b|0x20] = c
	}
	set('A', 'T', 0)
	set('C', 'G', 1)
	set('G', 'C', 2)
	set('T', 'A', 3)
}

// Code returns the 2-bit code of an ASCII base, or 0xFF if b is not a base.
func Code(b byte) byte { return codeTab[b] }

// Base returns the ASCII base for a 2-bit code.
func Base(code byte) byte { return Bases[code&3] }

// IsBase reports whether b is one of ACGT (either case).
func IsBase(b byte) bool { return codeTab[b] != 0xFF }

// Complement returns the Watson–Crick complement of an ASCII base.
func Complement(b byte) byte { return compTab[b] }

// ComplementCode returns the complement of a 2-bit base code.
func ComplementCode(code byte) byte { return 3 - (code & 3) }

// RevComp returns a new slice holding the reverse complement of seq.
func RevComp(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = compTab[b]
	}
	return out
}

// RevCompInto writes the reverse complement of src into buf (grown only when
// too small) and returns the filled slice — the allocation-free variant hot
// loops use with a reusable buffer (e.g. align.Scratch). buf and src must
// not overlap.
func RevCompInto(buf, src []byte) []byte {
	if cap(buf) < len(src) {
		buf = make([]byte, len(src))
	}
	buf = buf[:len(src)]
	for i, b := range src {
		buf[len(src)-1-i] = compTab[b]
	}
	return buf
}

// RevCompInPlace reverse-complements seq in place.
func RevCompInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = compTab[seq[j]], compTab[seq[i]]
		i++
		j--
	}
	if i == j {
		seq[i] = compTab[seq[i]]
	}
}

// RevCompRange returns the reverse complement of seq[lo..hi] (inclusive
// bounds), the "descending slice" l[hi:lo] of the paper's §4.4 notation.
func RevCompRange(seq []byte, lo, hi int) []byte {
	if lo > hi {
		return nil
	}
	out := make([]byte, hi-lo+1)
	for k := 0; k < len(out); k++ {
		out[k] = compTab[seq[hi-k]]
	}
	return out
}

// Valid reports whether every byte of seq is an ACGT base.
func Valid(seq []byte) bool {
	for _, b := range seq {
		if codeTab[b] == 0xFF {
			return false
		}
	}
	return true
}
