package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeq(rng, int(n%500))
		p, ok := Pack(s)
		if !ok {
			return false
		}
		return bytes.Equal(p.Unpack(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackRejectsNonBases(t *testing.T) {
	if _, ok := Pack([]byte("ACGNT")); ok {
		t.Fatal("N must not pack")
	}
	if p, ok := Pack(nil); !ok || p.N != 0 {
		t.Fatal("empty must pack")
	}
}

func TestPackedAt(t *testing.T) {
	s := []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACG") // 35 bases, crosses a word
	p, ok := Pack(s)
	if !ok {
		t.Fatal("pack failed")
	}
	for i := range s {
		if p.At(i) != s[i] {
			t.Fatalf("At(%d) = %c, want %c", i, p.At(i), s[i])
		}
	}
}

func TestPackedAtPanicsOutOfRange(t *testing.T) {
	p, _ := Pack([]byte("ACGT"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.At(4)
}

func TestPackAllUnpackAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		seqs := make([][]byte, n)
		lens := make([]int, n)
		for i := range seqs {
			seqs[i] = randSeq(rng, rng.Intn(150))
			lens[i] = len(seqs[i])
		}
		words, ok := PackAll(seqs)
		if !ok {
			return false
		}
		if len(words) != PackedWords(lens) {
			return false
		}
		back := UnpackAll(words, lens)
		for i := range seqs {
			if !bytes.Equal(back[i], seqs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPackCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 3200)
	p, _ := Pack(s)
	if got := len(p.Bits) * 8; got != 800 {
		t.Fatalf("3200 bases use %d bytes, want 800", got)
	}
}
