// Command readsim generates synthetic genomes and simulated long reads —
// the stand-in for the paper's Table 2 PacBio datasets (see DESIGN.md §2).
//
// Generate a C. elegans-like dataset (depth 40, 0.5% error) at 200 kbp:
//
//	readsim -preset celegans -size 200000 -seed 1 -out reads.fa -ref ref.fa
//
// Or a fully custom dataset:
//
//	readsim -size 100000 -depth 20 -len 3000 -err 0.01 -out reads.fa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fasta"
	"repro/internal/readsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("readsim: ")
	var (
		preset  = flag.String("preset", "", "dataset preset: celegans | osativa | hsapiens (empty = custom)")
		size    = flag.Int("size", 100000, "genome length in bases")
		seed    = flag.Int64("seed", 1, "RNG seed (same seed → same dataset)")
		depth   = flag.Float64("depth", 20, "coverage depth (custom mode)")
		meanLen = flag.Int("len", 3000, "mean read length (custom mode)")
		errRate = flag.Float64("err", 0, "error rate, e.g. 0.005 (custom mode)")
		repeats = flag.Int("repeats", 0, "number of repeat segments to plant in the genome")
		repLen  = flag.Int("replen", 2000, "length of each planted repeat")
		out     = flag.String("out", "reads.fa", "output FASTA of simulated reads")
		refOut  = flag.String("ref", "", "optional output FASTA of the reference genome")
	)
	flag.Parse()

	var genome []byte
	var reads []readsim.Read
	var label string
	if *preset != "" {
		p, err := parsePreset(*preset)
		if err != nil {
			log.Fatal(err)
		}
		ds := readsim.Generate(p, *size, *seed)
		genome, reads, label = ds.Genome, ds.Reads, ds.Name
		fmt.Println(ds.Table2Row())
	} else {
		genome = readsim.Genome(readsim.GenomeConfig{
			Length: *size, Seed: *seed, RepeatCount: *repeats, RepeatLen: *repLen,
		})
		reads = readsim.Simulate(genome, readsim.ReadConfig{
			Depth: *depth, MeanLen: *meanLen, ErrorRate: *errRate, Seed: *seed + 1,
		})
		label = "custom"
		fmt.Printf("%s: genome=%d reads=%d depth=%.1f err=%.2f%%\n",
			label, len(genome), len(reads), *depth, *errRate*100)
	}

	recs := make([]fasta.Record, len(reads))
	for i, r := range reads {
		strand := "+"
		if r.RC {
			strand = "-"
		}
		recs[i] = fasta.Record{
			ID:  fmt.Sprintf("read_%06d pos=%d end=%d strand=%s", i, r.Pos, r.End, strand),
			Seq: r.Seq,
		}
	}
	if err := writeFasta(*out, recs); err != nil {
		log.Fatal(err)
	}
	if *refOut != "" {
		ref := []fasta.Record{{ID: fmt.Sprintf("%s_reference len=%d seed=%d", label, len(genome), *seed), Seq: genome}}
		if err := writeFasta(*refOut, ref); err != nil {
			log.Fatal(err)
		}
	}
}

func parsePreset(s string) (readsim.Preset, error) {
	switch s {
	case "celegans":
		return readsim.CElegansLike, nil
	case "osativa":
		return readsim.OSativaLike, nil
	case "hsapiens":
		return readsim.HSapiensLike, nil
	}
	return 0, fmt.Errorf("unknown preset %q (want celegans|osativa|hsapiens)", s)
}

func writeFasta(path string, recs []fasta.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fasta.Write(f, recs, 80)
}
