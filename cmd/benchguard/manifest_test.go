package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema:  obs.ManifestSchema,
		P:       4,
		Threads: 2,
		WallNS:  1e9,
		Stages: []obs.StageStats{
			{Name: "Alignment", WallNS: 5e8, Work: 1000, Bytes: 100, Msgs: 10,
				OverlapBytes: 60, OverlapMsgs: 6, ExposedBytes: 40, ExposedMsgs: 4},
		},
		Comm:    obs.CommTotals{Bytes: 100, Msgs: 10},
		Contigs: obs.ContigSummary{Count: 3, TotalBases: 3000, Checksum: "sha256:abc"},
	}
}

func TestVerifyManifestInternalInvariants(t *testing.T) {
	if bad := verifyManifest(sampleManifest(), nil); len(bad) != 0 {
		t.Fatalf("valid manifest flagged: %v", bad)
	}
	// The overlap/exposed split must account for every byte and message.
	m := sampleManifest()
	m.Stages[0].ExposedBytes = 0
	bad := verifyManifest(m, nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "overlap_bytes") {
		t.Fatalf("broken byte split produced %v", bad)
	}
	m = sampleManifest()
	m.Stages[0].OverlapMsgs = 99
	bad = verifyManifest(m, nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "overlap_msgs") {
		t.Fatalf("broken msg split produced %v", bad)
	}
}

func TestManifestMetrics(t *testing.T) {
	m := sampleManifest()
	m.Restarts = 2
	m.Metrics = []obs.Metric{
		{Name: "align.cells", Kind: obs.KindHistogram, Count: 4, Sum: 5000, Max: 2000},
		{Name: "align.pairs", Kind: obs.KindCounter, Value: 7},
	}
	got := manifestMetrics(m)
	want := map[string]float64{
		"align_cells": 5000, "cache_hit": 0, "comm_bytes": 100,
		"comm_msgs": 10, "contigs": 3, "restarts": 2,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %g, want %g", name, got[name], w)
		}
	}

	// A cache-hit manifest: Cache flips cache_hit, and a run that never
	// aligned (no align.cells metric at all) derives align_cells = 0 —
	// absence of work is the signal, not an error.
	m.Cache = "hit"
	m.Metrics = nil
	got = manifestMetrics(m)
	if got["cache_hit"] != 1 || got["align_cells"] != 0 {
		t.Fatalf("hit manifest derived cache_hit=%g align_cells=%g, want 1 and 0",
			got["cache_hit"], got["align_cells"])
	}
}

// TestManifestAsserts covers the -manifest mode assertion surface: bare
// 'metric<=value' assertions default to the synthetic "manifest" benchmark,
// and pair ratios divide current by companion per metric.
func TestManifestAsserts(t *testing.T) {
	cur, pair := sampleManifest(), sampleManifest()
	cur.Cache = "hit"
	pair.Cache = "miss"
	pair.Metrics = []obs.Metric{{Name: "align.cells", Kind: obs.KindHistogram, Count: 4, Sum: 5000}}

	metrics := manifestMetrics(cur)
	for name, pv := range manifestMetrics(pair) {
		if pv > 0 {
			metrics[name+"_ratio"] = metrics[name] / pv
		}
	}
	rec := &Record{Benchmarks: map[string]map[string]float64{manifestBench: metrics}}

	if bad := checkAsserts(rec, "cache_hit>=1,align_cells_ratio<=0.5"); len(bad) != 0 {
		t.Fatalf("smoke-job assertions flagged on a clean hit: %v", bad)
	}
	if bad := checkAsserts(rec, "cache_hit<=0"); len(bad) != 1 {
		t.Fatalf("hit passed a no-hit ceiling: %v", bad)
	}
	// The explicit name form still works in manifest mode.
	if bad := checkAsserts(rec, "manifest:comm_bytes_ratio<=1"); len(bad) != 0 {
		t.Fatalf("named manifest assertion flagged: %v", bad)
	}
	// cache_hit is 0 in the pair's metrics, so no cache_hit_ratio is
	// derived — asserting on it must fail loudly, not silently pass.
	if bad := checkAsserts(rec, "cache_hit_ratio>=1"); len(bad) != 1 {
		t.Fatalf("missing ratio metric passed: %v", bad)
	}
}

func TestVerifyManifestAgainstBaseline(t *testing.T) {
	if bad := verifyManifest(sampleManifest(), sampleManifest()); len(bad) != 0 {
		t.Fatalf("identical manifests flagged: %v", bad)
	}
	// Checksum drift is the determinism-contract violation.
	cur := sampleManifest()
	cur.Contigs.Checksum = "sha256:def"
	bad := verifyManifest(cur, sampleManifest())
	if len(bad) != 1 || !strings.Contains(bad[0], "checksum drifted") {
		t.Fatalf("checksum drift produced %v", bad)
	}
	// Traffic counters are schedule-invariant; any drift fails.
	cur = sampleManifest()
	cur.Comm.Msgs = 11
	bad = verifyManifest(cur, sampleManifest())
	if len(bad) != 1 || !strings.Contains(bad[0], "comm totals drifted") {
		t.Fatalf("comm drift produced %v", bad)
	}
	// Wall time is noisy and must never be compared.
	cur = sampleManifest()
	cur.WallNS = 9e9
	cur.Stages[0].WallNS = 7e9
	if bad := verifyManifest(cur, sampleManifest()); len(bad) != 0 {
		t.Fatalf("wall-clock drift flagged: %v", bad)
	}
	// A corrupt baseline fails loudly instead of vacuously passing.
	base := sampleManifest()
	base.Schema = "bogus/v0"
	bad = verifyManifest(sampleManifest(), base)
	if len(bad) != 1 || !strings.HasPrefix(bad[0], "baseline:") {
		t.Fatalf("corrupt baseline produced %v", bad)
	}
}
