package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema:  obs.ManifestSchema,
		P:       4,
		Threads: 2,
		WallNS:  1e9,
		Stages: []obs.StageStats{
			{Name: "Alignment", WallNS: 5e8, Work: 1000, Bytes: 100, Msgs: 10,
				OverlapBytes: 60, OverlapMsgs: 6, ExposedBytes: 40, ExposedMsgs: 4},
		},
		Comm:    obs.CommTotals{Bytes: 100, Msgs: 10},
		Contigs: obs.ContigSummary{Count: 3, TotalBases: 3000, Checksum: "sha256:abc"},
	}
}

func TestVerifyManifestInternalInvariants(t *testing.T) {
	if bad := verifyManifest(sampleManifest(), nil); len(bad) != 0 {
		t.Fatalf("valid manifest flagged: %v", bad)
	}
	// The overlap/exposed split must account for every byte and message.
	m := sampleManifest()
	m.Stages[0].ExposedBytes = 0
	bad := verifyManifest(m, nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "overlap_bytes") {
		t.Fatalf("broken byte split produced %v", bad)
	}
	m = sampleManifest()
	m.Stages[0].OverlapMsgs = 99
	bad = verifyManifest(m, nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "overlap_msgs") {
		t.Fatalf("broken msg split produced %v", bad)
	}
}

func TestVerifyManifestAgainstBaseline(t *testing.T) {
	if bad := verifyManifest(sampleManifest(), sampleManifest()); len(bad) != 0 {
		t.Fatalf("identical manifests flagged: %v", bad)
	}
	// Checksum drift is the determinism-contract violation.
	cur := sampleManifest()
	cur.Contigs.Checksum = "sha256:def"
	bad := verifyManifest(cur, sampleManifest())
	if len(bad) != 1 || !strings.Contains(bad[0], "checksum drifted") {
		t.Fatalf("checksum drift produced %v", bad)
	}
	// Traffic counters are schedule-invariant; any drift fails.
	cur = sampleManifest()
	cur.Comm.Msgs = 11
	bad = verifyManifest(cur, sampleManifest())
	if len(bad) != 1 || !strings.Contains(bad[0], "comm totals drifted") {
		t.Fatalf("comm drift produced %v", bad)
	}
	// Wall time is noisy and must never be compared.
	cur = sampleManifest()
	cur.WallNS = 9e9
	cur.Stages[0].WallNS = 7e9
	if bad := verifyManifest(cur, sampleManifest()); len(bad) != 0 {
		t.Fatalf("wall-clock drift flagged: %v", bad)
	}
	// A corrupt baseline fails loudly instead of vacuously passing.
	base := sampleManifest()
	base.Schema = "bogus/v0"
	bad = verifyManifest(sampleManifest(), base)
	if len(bad) != 1 || !strings.HasPrefix(bad[0], "baseline:") {
		t.Fatalf("corrupt baseline produced %v", bad)
	}
}
