package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// runManifestMode loads the manifest (and optional baseline), verifies, and
// exits nonzero on any violation. restarts ≥ 0 additionally requires the
// run's supervised restart count to equal it exactly — the chaos job's proof
// that a fault was injected AND recovered from (0 restarts means the fault
// never fired; more means the job thrashed).
func runManifestMode(curPath, basePath string, restarts int) {
	cur, err := obs.ReadManifestFile(curPath)
	if err != nil {
		fatal(err)
	}
	var base *obs.Manifest
	if basePath != "" {
		base, err = obs.ReadManifestFile(basePath)
		if err != nil {
			fatal(err)
		}
	}
	bad := verifyManifest(cur, base)
	if restarts >= 0 && cur.Restarts != restarts {
		bad = append(bad, fmt.Sprintf("restarts = %d, want exactly %d", cur.Restarts, restarts))
	}
	if len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: manifest verified")
}

// verifyManifest is the -manifest mode: it checks the RUN.json record's
// internal invariants (schema match, non-negative counters, the per-stage
// comm_overlap + comm_exposed == comm_total identities via Manifest.Verify)
// and, when a baseline manifest is given, the cross-run determinism
// contract: the contig checksum and the byte/message traffic totals must be
// identical — they are schedule-invariant for a pinned dataset, so any
// drift is an algorithmic change, not noise. Wall-clock fields and gauges
// are never compared. Returns one message per violation.
func verifyManifest(cur *obs.Manifest, base *obs.Manifest) []string {
	bad := cur.Verify()
	if base == nil {
		return bad
	}
	if vb := base.Verify(); len(vb) > 0 {
		for _, m := range vb {
			bad = append(bad, "baseline: "+m)
		}
		return bad
	}
	if cur.Contigs.Checksum != base.Contigs.Checksum {
		bad = append(bad, fmt.Sprintf("contig checksum drifted: %s -> %s (contigs must be bit-identical)",
			base.Contigs.Checksum, cur.Contigs.Checksum))
	}
	if cur.Contigs.Count != base.Contigs.Count || cur.Contigs.TotalBases != base.Contigs.TotalBases {
		bad = append(bad, fmt.Sprintf("contig summary drifted: %d contigs/%d bases -> %d contigs/%d bases",
			base.Contigs.Count, base.Contigs.TotalBases, cur.Contigs.Count, cur.Contigs.TotalBases))
	}
	if cur.Comm.Bytes != base.Comm.Bytes || cur.Comm.Msgs != base.Comm.Msgs {
		bad = append(bad, fmt.Sprintf("comm totals drifted: %d bytes/%d msgs -> %d bytes/%d msgs",
			base.Comm.Bytes, base.Comm.Msgs, cur.Comm.Bytes, cur.Comm.Msgs))
	}
	return bad
}
