package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// manifestBench is the synthetic benchmark name the manifest's derived
// metrics live under, so -assert works unchanged in -manifest mode (a bare
// 'metric<=value' assertion defaults to it).
const manifestBench = "manifest"

// runManifestMode loads the manifest (and optional baseline), verifies, and
// exits nonzero on any violation. restarts ≥ 0 additionally requires the
// run's supervised restart count to equal it exactly — the chaos job's proof
// that a fault was injected AND recovered from (0 restarts means the fault
// never fired; more means the job thrashed). asserts are evaluated against
// the manifest's derived metrics (align_cells, cache_hit, comm_bytes, …);
// with pairPath every derived metric additionally gains a <name>_ratio
// against the companion manifest, which is how the elbad smoke job proves a
// cache hit re-did at most half the sweep pair's alignment work.
func runManifestMode(curPath, basePath, pairPath string, restarts int, asserts string) {
	cur, err := obs.ReadManifestFile(curPath)
	if err != nil {
		fatal(err)
	}
	var base *obs.Manifest
	if basePath != "" {
		base, err = obs.ReadManifestFile(basePath)
		if err != nil {
			fatal(err)
		}
	}
	bad := verifyManifest(cur, base)
	if restarts >= 0 && cur.Restarts != restarts {
		bad = append(bad, fmt.Sprintf("restarts = %d, want exactly %d", cur.Restarts, restarts))
	}
	if asserts != "" {
		metrics := manifestMetrics(cur)
		if pairPath != "" {
			pair, err := obs.ReadManifestFile(pairPath)
			if err != nil {
				fatal(err)
			}
			for name, pv := range manifestMetrics(pair) {
				if pv > 0 {
					metrics[name+"_ratio"] = metrics[name] / pv
				}
			}
		}
		rec := &Record{Benchmarks: map[string]map[string]float64{manifestBench: metrics}}
		bad = append(bad, checkAsserts(rec, asserts)...)
	} else if pairPath != "" {
		bad = append(bad, "-manifest-pair without -assert checks nothing")
	}
	if len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: manifest verified")
}

// manifestMetrics flattens a manifest into assertable scalars: the traffic
// and contig totals, the supervised restart count, cache_hit (1 when the
// daemon's artifact cache satisfied the run's alignment), and the run's own
// performed work from its metric snapshot — align_cells is 0 for a cache
// hit, because the resumed run never aligned (absent metrics read as 0 for
// exactly that reason).
func manifestMetrics(m *obs.Manifest) map[string]float64 {
	out := map[string]float64{
		"comm_bytes": float64(m.Comm.Bytes),
		"comm_msgs":  float64(m.Comm.Msgs),
		"contigs":    float64(m.Contigs.Count),
		"restarts":   float64(m.Restarts),
		"cache_hit":  0,
	}
	if m.Cache == "hit" {
		out["cache_hit"] = 1
	}
	for _, metric := range m.Metrics {
		if metric.Name != "align.cells" {
			continue
		}
		if metric.Kind == obs.KindHistogram {
			out["align_cells"] = float64(metric.Sum)
		} else {
			out["align_cells"] = float64(metric.Value)
		}
	}
	if _, ok := out["align_cells"]; !ok {
		out["align_cells"] = 0
	}
	return out
}

// verifyManifest is the -manifest mode: it checks the RUN.json record's
// internal invariants (schema match, non-negative counters, the per-stage
// comm_overlap + comm_exposed == comm_total identities via Manifest.Verify)
// and, when a baseline manifest is given, the cross-run determinism
// contract: the contig checksum and the byte/message traffic totals must be
// identical — they are schedule-invariant for a pinned dataset, so any
// drift is an algorithmic change, not noise. Wall-clock fields and gauges
// are never compared. Returns one message per violation.
func verifyManifest(cur *obs.Manifest, base *obs.Manifest) []string {
	bad := cur.Verify()
	if base == nil {
		return bad
	}
	if vb := base.Verify(); len(vb) > 0 {
		for _, m := range vb {
			bad = append(bad, "baseline: "+m)
		}
		return bad
	}
	if cur.Contigs.Checksum != base.Contigs.Checksum {
		bad = append(bad, fmt.Sprintf("contig checksum drifted: %s -> %s (contigs must be bit-identical)",
			base.Contigs.Checksum, cur.Contigs.Checksum))
	}
	if cur.Contigs.Count != base.Contigs.Count || cur.Contigs.TotalBases != base.Contigs.TotalBases {
		bad = append(bad, fmt.Sprintf("contig summary drifted: %d contigs/%d bases -> %d contigs/%d bases",
			base.Contigs.Count, base.Contigs.TotalBases, cur.Contigs.Count, cur.Contigs.TotalBases))
	}
	if cur.Comm.Bytes != base.Comm.Bytes || cur.Comm.Msgs != base.Comm.Msgs {
		bad = append(bad, fmt.Sprintf("comm totals drifted: %d bytes/%d msgs -> %d bytes/%d msgs",
			base.Comm.Bytes, base.Comm.Msgs, cur.Comm.Bytes, cur.Comm.Msgs))
	}
	return bad
}
