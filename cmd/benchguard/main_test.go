package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBackends_ErrorRates/C.elegans-like/xdrop-8         1  66970473994 ns/op  1792722574 align_cells  22218 align_wall_ms  180029282 comm_bytes  22290 comm_messages
BenchmarkThreads/T=4                                        1  33199992548 ns/op  1792722574 align_cells  1.022 align_speedup_x
PASS
ok  repro 222.414s
`

func parseSample(t *testing.T, text string) *Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestParseStripsProcsSuffixAndReadsMetrics(t *testing.T) {
	rec := parseSample(t, sample)
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(rec.Benchmarks), rec.Benchmarks)
	}
	m, ok := rec.Benchmarks["BenchmarkBackends_ErrorRates/C.elegans-like/xdrop"]
	if !ok {
		t.Fatal("-8 GOMAXPROCS suffix not stripped")
	}
	if m["align_cells"] != 1792722574 {
		t.Fatalf("align_cells = %v", m["align_cells"])
	}
	if m["ns/op"] == 0 || m["align_wall_ms"] != 22218 {
		t.Fatalf("metrics misparsed: %v", m)
	}
	// T=4 has no procs suffix (GOMAXPROCS=1 host) and must NOT lose the =4.
	if _, ok := rec.Benchmarks["BenchmarkThreads/T=4"]; !ok {
		t.Fatalf("unsuffixed name mangled: %v", rec.Benchmarks)
	}
}

func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile(`^align_cells$`)
	base := parseSample(t, sample)

	if bad := compare(base, base, []gateRule{{gate, 2.0}}); len(bad) != 0 {
		t.Fatalf("identical runs flagged: %v", bad)
	}

	reg := parseSample(t, strings.ReplaceAll(sample, "1792722574 align_cells", "9999999999 align_cells"))
	bad := compare(base, reg, []gateRule{{gate, 2.0}})
	if len(bad) != 2 {
		t.Fatalf("5x work regression produced %d findings, want 2: %v", len(bad), bad)
	}

	// Wall-clock noise is not gated.
	noisy := parseSample(t, strings.ReplaceAll(sample, "22218 align_wall_ms", "99999 align_wall_ms"))
	if bad := compare(base, noisy, []gateRule{{gate, 2.0}}); len(bad) != 0 {
		t.Fatalf("wall-clock noise gated: %v", bad)
	}

	// Deleting a gated benchmark without refreshing the baseline fails.
	missing := parseSample(t, strings.Join(strings.Split(sample, "\n")[:5], "\n"))
	if bad := compare(base, missing, []gateRule{{gate, 2.0}}); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestCompareGatesCommCounters(t *testing.T) {
	gate := regexp.MustCompile(`^(align_cells|comm_bytes|comm_messages)$`)
	base := parseSample(t, sample)
	if bad := compare(base, base, []gateRule{{gate, 2.0}}); len(bad) != 0 {
		t.Fatalf("identical runs flagged: %v", bad)
	}
	// A collective going quadratic shows up as a message-count regression.
	reg := parseSample(t, strings.ReplaceAll(sample, "22290 comm_messages", "99999 comm_messages"))
	bad := compare(base, reg, []gateRule{{gate, 2.0}})
	if len(bad) != 1 || !strings.Contains(bad[0], "comm_messages") {
		t.Fatalf("comm_messages regression produced %v", bad)
	}
}

func TestCompareFlagsZeroBaselineAppearance(t *testing.T) {
	// A gated metric whose baseline is 0 must stay 0: traffic appearing in a
	// previously traffic-free benchmark (e.g. a P=1 run starting to send
	// bytes) is an infinite-ratio regression, not a skip.
	gate := regexp.MustCompile(`^comm_bytes$`)
	zeroed := parseSample(t, strings.ReplaceAll(sample, "180029282 comm_bytes", "0 comm_bytes"))
	appeared := parseSample(t, sample)
	bad := compare(zeroed, appeared, []gateRule{{gate, 2.0}})
	if len(bad) != 1 || !strings.Contains(bad[0], "appeared") {
		t.Fatalf("zero-baseline appearance produced %v", bad)
	}
	if bad := compare(zeroed, zeroed, []gateRule{{gate, 2.0}}); len(bad) != 0 {
		t.Fatalf("zero stayed zero but was flagged: %v", bad)
	}
}

const memSample = `goos: linux
BenchmarkCountAndBuildDistributed/P=1    2  114169832 ns/op  41414656 B/op  222 allocs/op
BenchmarkSpGEMMDistributed/P=1           2  8132181 ns/op  12736992 B/op  68 allocs/op
PASS
`

func TestParseNormalizesBenchmemUnits(t *testing.T) {
	rec := parseSample(t, memSample)
	m := rec.Benchmarks["BenchmarkCountAndBuildDistributed/P=1"]
	if m["allocs_per_op"] != 222 || m["bytes_per_op"] != 41414656 {
		t.Fatalf("benchmem units not normalized: %v", m)
	}
	if _, stale := m["B/op"]; stale {
		t.Fatalf("raw B/op unit leaked through: %v", m)
	}
}

func TestCompareAllocGateIsTighter(t *testing.T) {
	// The allocation gate trips at its own (tighter) ratio: a 1.6x allocs
	// growth passes the 2.0x work gate but must fail the 1.5x alloc gate,
	// and bytes_per_op is recorded but never gated.
	rules := []gateRule{
		{regexp.MustCompile(`^align_cells$`), 2.0},
		{regexp.MustCompile(`^allocs_per_op$`), 1.5},
	}
	base := parseSample(t, memSample)
	if bad := compare(base, base, rules); len(bad) != 0 {
		t.Fatalf("identical runs flagged: %v", bad)
	}
	grew := parseSample(t, strings.ReplaceAll(memSample, "222 allocs/op", "356 allocs/op"))
	bad := compare(base, grew, rules)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs_per_op") {
		t.Fatalf("1.6x alloc growth produced %v", bad)
	}
	bytes := parseSample(t, strings.ReplaceAll(memSample, "41414656 B/op", "999999999 B/op"))
	if bad := compare(base, bytes, rules); len(bad) != 0 {
		t.Fatalf("ungated bytes_per_op growth flagged: %v", bad)
	}
	// An allocation reduction (the point of the lean kernels) passes.
	lean := parseSample(t, strings.ReplaceAll(memSample, "222 allocs/op", "50 allocs/op"))
	if bad := compare(base, lean, rules); len(bad) != 0 {
		t.Fatalf("alloc reduction flagged: %v", bad)
	}
}

func TestCompareFirstMatchingRuleWins(t *testing.T) {
	// A metric matching several rules uses the first: listing the alloc rule
	// first pins allocs_per_op to 1.2x even if a broad rule would allow 10x.
	rules := []gateRule{
		{regexp.MustCompile(`^allocs_per_op$`), 1.2},
		{regexp.MustCompile(`per_op`), 10.0},
	}
	base := parseSample(t, memSample)
	grew := parseSample(t, strings.ReplaceAll(memSample, "222 allocs/op", "300 allocs/op"))
	bad := compare(base, grew, rules)
	if len(bad) != 1 || !strings.Contains(bad[0], "limit 1.2x") {
		t.Fatalf("rule precedence broken: %v", bad)
	}
}

func TestAsserts(t *testing.T) {
	rec := parseSample(t, sample)

	if bad := checkAsserts(rec, "BenchmarkThreads/T=4:align_speedup_x>=1.0"); len(bad) != 0 {
		t.Fatalf("passing floor flagged: %v", bad)
	}
	if bad := checkAsserts(rec, "BenchmarkThreads/T=4:align_speedup_x>=2"); len(bad) != 1 {
		t.Fatalf("failing floor not flagged: %v", bad)
	}
	if bad := checkAsserts(rec, "BenchmarkThreads/T=4:align_speedup_x<=2"); len(bad) != 0 {
		t.Fatalf("passing ceiling flagged: %v", bad)
	}
	// Benchmark names keep their GOMAXPROCS suffix on multi-core runners;
	// assertions must match after stripping, like the gate.
	if bad := checkAsserts(rec, "BenchmarkBackends_ErrorRates/C.elegans-like/xdrop-8:align_cells>=1"); len(bad) != 0 {
		t.Fatalf("suffixed name not matched: %v", bad)
	}
	// Missing benchmarks or metrics must fail, not silently pass.
	if bad := checkAsserts(rec, "BenchmarkNope:align_cells>=1"); len(bad) != 1 {
		t.Fatalf("missing benchmark passed: %v", bad)
	}
	if bad := checkAsserts(rec, "BenchmarkThreads/T=4:nope>=1"); len(bad) != 1 {
		t.Fatalf("missing metric passed: %v", bad)
	}
	// Multiple comma-separated assertions evaluate independently.
	bad := checkAsserts(rec, "BenchmarkThreads/T=4:align_speedup_x>=2, BenchmarkThreads/T=4:align_cells>=1")
	if len(bad) != 1 {
		t.Fatalf("combined assertions produced %v", bad)
	}
}
