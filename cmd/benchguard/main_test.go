package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBackends_ErrorRates/C.elegans-like/xdrop-8         1  66970473994 ns/op  1792722574 align_cells  22218 align_wall_ms
BenchmarkThreads/T=4                                        1  33199992548 ns/op  1792722574 align_cells  1.022 align_speedup_x
PASS
ok  repro 222.414s
`

func parseSample(t *testing.T, text string) *Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestParseStripsProcsSuffixAndReadsMetrics(t *testing.T) {
	rec := parseSample(t, sample)
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(rec.Benchmarks), rec.Benchmarks)
	}
	m, ok := rec.Benchmarks["BenchmarkBackends_ErrorRates/C.elegans-like/xdrop"]
	if !ok {
		t.Fatal("-8 GOMAXPROCS suffix not stripped")
	}
	if m["align_cells"] != 1792722574 {
		t.Fatalf("align_cells = %v", m["align_cells"])
	}
	if m["ns/op"] == 0 || m["align_wall_ms"] != 22218 {
		t.Fatalf("metrics misparsed: %v", m)
	}
	// T=4 has no procs suffix (GOMAXPROCS=1 host) and must NOT lose the =4.
	if _, ok := rec.Benchmarks["BenchmarkThreads/T=4"]; !ok {
		t.Fatalf("unsuffixed name mangled: %v", rec.Benchmarks)
	}
}

func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile(`^align_cells$`)
	base := parseSample(t, sample)

	if bad := compare(base, base, gate, 2.0); len(bad) != 0 {
		t.Fatalf("identical runs flagged: %v", bad)
	}

	reg := parseSample(t, strings.ReplaceAll(sample, "1792722574 align_cells", "9999999999 align_cells"))
	bad := compare(base, reg, gate, 2.0)
	if len(bad) != 2 {
		t.Fatalf("5x work regression produced %d findings, want 2: %v", len(bad), bad)
	}

	// Wall-clock noise is not gated.
	noisy := parseSample(t, strings.ReplaceAll(sample, "22218 align_wall_ms", "99999 align_wall_ms"))
	if bad := compare(base, noisy, gate, 2.0); len(bad) != 0 {
		t.Fatalf("wall-clock noise gated: %v", bad)
	}

	// Deleting a gated benchmark without refreshing the baseline fails.
	missing := parseSample(t, strings.Join(strings.Split(sample, "\n")[:5], "\n"))
	if bad := compare(base, missing, gate, 2.0); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}
