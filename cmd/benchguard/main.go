// Command benchguard turns `go test -bench` output into a JSON record and
// enforces the CI benchmark-regression gate.
//
//	go test -run '^$' -bench 'Backends|Threads' -benchtime=1x -short . | tee bench.txt
//	benchguard -bench bench.txt -out BENCH_ci.json -baseline ci/bench_baseline.json
//
// The gate compares the Alignment stage's work counter (align_cells) and the
// pipeline's communication counters (comm_bytes, comm_messages) against the
// committed baseline and fails on more than -max-ratio growth. Work and
// traffic units — DP cells / wavefront offsets, bytes and messages moved —
// are deterministic for a pinned dataset seed and identical on every host
// (and in blocking vs nonblocking comm modes), so the gate is immune to the
// noisy shared runners that make wall-clock gates flap; an algorithmic
// regression (a backend losing its pruning, a band blowing up, a collective
// going quadratic) shows up as a work or traffic regression first.
// Wall-clock metrics (align_wall_ms & friends) are recorded in the JSON
// artifact for trend reading but not gated.
//
// Allocation metrics get their own, tighter gate: -benchmem output is
// normalized to allocs_per_op / bytes_per_op, and allocs_per_op fails on
// more than -max-alloc-ratio growth (default 1.5x — allocation counts are
// near-deterministic for a pinned seed, and the hot kernels are kept
// allocation-lean on purpose, so churn creep must not ride in under the
// loose work-counter ratio). bytes_per_op is recorded but not gated: heap
// bytes shift with map/slice growth thresholds across Go versions.
//
// Absolute floors/ceilings — e.g. the nightly multi-core job asserting the
// worker-pool speedup — are expressed with -assert:
//
//	benchguard -bench bench.txt -assert 'BenchmarkThreads/T=4:align_speedup_x>=2'
//
// -manifest switches to run-manifest verification: the RUN.json written by
// `elba -manifest` is checked for its internal invariants (schema,
// non-negative counters, comm_overlap + comm_exposed == comm_total per
// stage), and with -manifest-baseline also for the determinism contract —
// the contig checksum and the byte/message traffic totals must be identical
// across runs (they are schedule-invariant for a pinned seed; wall-clock
// fields and gauges are never compared):
//
//	benchguard -manifest RUN.json -manifest-baseline ci/RUN_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is the persisted form of one bench run.
type Record struct {
	Note       string                        `json:"note,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var (
	benchPath     = flag.String("bench", "", "go test -bench output to parse (default: stdin)")
	outPath       = flag.String("out", "", "write the parsed run as JSON here")
	basePath      = flag.String("baseline", "", "baseline JSON to gate against (omit to skip the gate)")
	maxRatio      = flag.Float64("max-ratio", 2.0, "fail when current/baseline of a gated metric exceeds this")
	gateExpr      = flag.String("gate", `^(align_cells|comm_bytes|comm_messages)$`, "regexp of metric names the gate enforces")
	maxAllocRatio = flag.Float64("max-alloc-ratio", 1.5, "fail when current/baseline of an alloc-gated metric exceeds this")
	allocGateExpr = flag.String("alloc-gate", `^allocs_per_op$`, "regexp of metric names the allocation gate enforces")
	asserts       = flag.String("assert", "", "comma-separated absolute assertions 'Benchmark/name:metric>=value' (also <=); checked against the current run")
	note          = flag.String("note", "", "free-form note stored in the JSON")
	manifestPath  = flag.String("manifest", "", "verify a RUN.json run manifest instead of parsing bench output")
	manifestBase  = flag.String("manifest-baseline", "", "baseline manifest: contig checksum and comm totals must match -manifest exactly")
	manifestPair  = flag.String("manifest-pair", "", "companion manifest for -assert ratios: every derived metric gains <name>_ratio = manifest/pair (the elbad smoke job pairs a sweep's cache-hit run with its cold predecessor)")
	manifestRst   = flag.Int("manifest-restarts", -1, "require the -manifest run's supervised restart count to equal this exactly (-1: don't check); chaos CI uses it to prove a recovery actually happened")
)

func main() {
	flag.Parse()
	if *manifestPath != "" {
		runManifestMode(*manifestPath, *manifestBase, *manifestPair, *manifestRst, *asserts)
		return
	}
	if *manifestBase != "" {
		fatal(fmt.Errorf("-manifest-baseline requires -manifest"))
	}
	if *manifestPair != "" {
		fatal(fmt.Errorf("-manifest-pair requires -manifest"))
	}
	if *manifestRst >= 0 {
		fatal(fmt.Errorf("-manifest-restarts requires -manifest"))
	}
	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rec, err := parse(in)
	if err != nil {
		fatal(err)
	}
	rec.Note = *note
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	if *outPath != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *outPath)
	}
	if *asserts != "" {
		if bad := checkAsserts(rec, *asserts); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "benchguard: FAIL:", m)
			}
			os.Exit(1)
		}
		fmt.Println("benchguard: assertions passed")
	}
	if *basePath == "" {
		return
	}
	baseBuf, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base Record
	if err := json.Unmarshal(baseBuf, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}
	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		fatal(err)
	}
	allocGate, err := regexp.Compile(*allocGateExpr)
	if err != nil {
		fatal(err)
	}
	rules := []gateRule{{gate, *maxRatio}, {allocGate, *maxAllocRatio}}
	if bad := compare(&base, rec, rules); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: gate passed")
}

// gateRule pairs a metric-name pattern with its allowed growth ratio.
type gateRule struct {
	re       *regexp.Regexp
	maxRatio float64
}

// parse reads go test -bench output: lines of the form
//
//	BenchmarkName/sub-8   1   123 ns/op   456 metric_a   7.8 metric_b
//
// The trailing -<GOMAXPROCS> suffix is stripped so records from hosts with
// different core counts compare against each other.
func parse(f *os.File) (*Record, error) {
	rec := &Record{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		metrics := map[string]float64{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q: %w", name, fields[i], err)
			}
			metrics[metricName(fields[i+1])] = v
		}
		rec.Benchmarks[name] = metrics
	}
	return rec, sc.Err()
}

var procsSuffix = regexp.MustCompile(`-\d+$`)

func stripProcs(name string) string { return procsSuffix.ReplaceAllString(name, "") }

// metricName normalizes the -benchmem units to identifier-shaped metric
// names so they can be gated and asserted like the custom counters; every
// other unit is stored verbatim.
func metricName(unit string) string {
	switch unit {
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	return unit
}

// compare returns one message per gated metric that regressed past its
// rule's maxRatio or disappeared. The first rule whose pattern matches a
// metric decides its ratio. Benchmarks present only in the current run are
// fine (new coverage); benchmarks present only in the baseline fail, so the
// gate cannot be dodged by deleting the benchmark without refreshing the
// baseline.
func compare(base, cur *Record, rules []gateRule) []string {
	var bad []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for metric, bv := range base.Benchmarks[name] {
			maxRatio := 0.0
			for _, r := range rules {
				if r.re.MatchString(metric) {
					maxRatio = r.maxRatio
					break
				}
			}
			if maxRatio == 0 {
				continue
			}
			curMetrics, ok := cur.Benchmarks[name]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: benchmark missing from current run (baseline has %s=%.0f)", name, metric, bv))
				continue
			}
			cv, ok := curMetrics[metric]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: metric %s missing from current run (baseline %.0f)", name, metric, bv))
				continue
			}
			if bv == 0 && cv != 0 {
				// A zero baseline means the quantity must stay zero (e.g.
				// comm counters of a single-rank run): any appearance is an
				// infinite-ratio regression, not a skip.
				bad = append(bad, fmt.Sprintf("%s: %s appeared (baseline 0 -> %.0f)", name, metric, cv))
				continue
			}
			if bv > 0 && cv/bv > maxRatio {
				bad = append(bad, fmt.Sprintf("%s: %s regressed %.2fx (%.0f -> %.0f, limit %.1fx)",
					name, metric, cv/bv, bv, cv, maxRatio))
			}
		}
	}
	return bad
}

// checkAsserts evaluates comma-separated 'Benchmark/name:metric>=value' (or
// <=) absolute assertions against the current run. Benchmark names match
// after GOMAXPROCS-suffix stripping, like the gate. A missing benchmark or
// metric fails the assertion — an absent measurement must not pass a floor.
func checkAsserts(rec *Record, spec string) []string {
	var bad []string
	for _, as := range strings.Split(spec, ",") {
		as = strings.TrimSpace(as)
		if as == "" {
			continue
		}
		name, metric, op, want, err := parseAssert(as)
		if err != nil {
			fatal(err)
		}
		metrics, ok := rec.Benchmarks[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: benchmark missing from run", as))
			continue
		}
		got, ok := metrics[metric]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: metric %s missing from run", as, metric))
			continue
		}
		holds := got >= want
		if op == "<=" {
			holds = got <= want
		}
		if !holds {
			bad = append(bad, fmt.Sprintf("%s: got %g, want %s %g", as, got, op, want))
		}
	}
	return bad
}

// parseAssert splits 'name:metric>=value' into its parts. The name part is
// optional: a bare 'metric>=value' targets the synthetic "manifest"
// benchmark that -manifest mode derives its metrics under.
func parseAssert(s string) (name, metric, op string, value float64, err error) {
	name, cond := manifestBench, s
	if i := strings.LastIndex(s, ":"); i >= 0 {
		name, cond = stripProcs(s[:i]), s[i+1:]
	}
	for _, candidate := range []string{">=", "<="} {
		if j := strings.Index(cond, candidate); j >= 0 {
			metric, op = cond[:j], candidate
			value, err = strconv.ParseFloat(cond[j+len(candidate):], 64)
			if err != nil {
				return "", "", "", 0, fmt.Errorf("bad -assert value in %q: %w", s, err)
			}
			return name, metric, op, value, nil
		}
	}
	return "", "", "", 0, fmt.Errorf("bad -assert %q: want >= or <=", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
