// Command elbad is the assembly daemon: it serves the internal/serve HTTP
// API, accepting uploaded datasets and assembly jobs, running them through
// the pipeline on a bounded worker pool, and reusing post-Alignment
// artifacts across parameter-sweep jobs via the content-addressed cache.
//
//	elbad -listen :8080 -cache /var/cache/elba -cache-budget 2147483648
//
// Exit codes: 0 after a clean shutdown (SIGINT/SIGTERM), 1 on serve or
// startup error, 2 on flag errors. The full table lives in OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve the HTTP API on")
	queue := flag.Int("queue", 8, "max queued jobs before POST /jobs returns 429")
	workers := flag.Int("workers", 1, "jobs executed concurrently")
	cacheDir := flag.String("cache", "", "artifact cache directory (empty: caching off)")
	cacheBudget := flag.Int64("cache-budget", 0, "artifact cache size budget in bytes (0: unlimited)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "elbad: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		Queue:       *queue,
		Workers:     *workers,
		CacheDir:    *cacheDir,
		CacheBudget: *cacheBudget,
	})
	if err != nil {
		log.Fatalf("elbad: %v", err)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("elbad: listening on %s (queue %d, workers %d, cache %q)",
		*listen, *queue, *workers, *cacheDir)

	select {
	case <-ctx.Done():
		log.Printf("elbad: shutting down")
		sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sdCtx); err != nil {
			log.Printf("elbad: shutdown: %v", err)
		}
		srv.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			log.Fatalf("elbad: %v", err)
		}
	}
}
